package ripki

import (
	"net"
	"strings"
	"testing"

	"ripki/internal/netutil"
	"ripki/internal/rtr"
)

func newStudy(t *testing.T) *Study {
	t.Helper()
	s, err := NewStudy(StudyConfig{Domains: 12000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStudyEndToEnd(t *testing.T) {
	s := newStudy(t)
	if s.Dataset.Totals.Domains != 12000 {
		t.Fatalf("domains = %d", s.Dataset.Totals.Domains)
	}
	if len(s.Validation.Problems) != 0 {
		t.Fatalf("validation problems: %v", s.Validation.Problems[:1])
	}
	for _, fig := range []*Figure{s.Figure1(), s.Figure2(VariantWWW), s.Figure3(), s.Figure4(VariantApex)} {
		if len(fig.Series) == 0 || len(fig.Series[0].Points) == 0 {
			t.Errorf("figure %q empty", fig.Title)
		}
		var sb strings.Builder
		if err := fig.WriteTSV(&sb); err != nil {
			t.Errorf("figure %q TSV: %v", fig.Title, err)
		}
	}
	tbl := s.Table1(10)
	if len(tbl.Rows) == 0 {
		t.Error("Table1 empty")
	}
	if got := s.Summary(); len(got.Rows) == 0 {
		t.Error("Summary empty")
	}
	rows := s.CDNStudy()
	if len(rows) != 16 {
		t.Errorf("CDN study rows = %d", len(rows))
	}
	if tbl := CDNStudyTable(rows); len(tbl.Rows) != 17 {
		t.Errorf("CDN study table rows = %d", len(tbl.Rows))
	}
}

func TestStudyValidateAndRTR(t *testing.T) {
	s := newStudy(t)
	// Find one VRP and validate through the public API.
	all := s.VRPs.All()
	if len(all) == 0 {
		t.Fatal("no VRPs")
	}
	v := all[0]
	if got := s.Validate(v.Prefix, v.ASN); got != StateValid {
		t.Errorf("Validate(%v, %d) = %v", v.Prefix, v.ASN, got)
	}
	if got := s.Validate(v.Prefix, v.ASN+1); got != StateInvalid {
		t.Errorf("wrong-origin Validate = %v", got)
	}
	if got := s.Validate(netutil.MustPrefix("192.0.2.0/24"), 1); got != StateNotFound {
		t.Errorf("uncovered Validate = %v", got)
	}

	// Serve the VRPs over RTR and sync a client.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := s.ServeRTR(ln)
	defer srv.Close()
	c, err := rtr.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != s.VRPs.Len() {
		t.Errorf("RTR client has %d VRPs, study has %d", c.Len(), s.VRPs.Len())
	}
	got := c.Set()
	if st := got.Validate(v.Prefix, v.ASN); st != StateValid {
		t.Errorf("via RTR: Validate = %v", st)
	}
}

func TestStudyServeService(t *testing.T) {
	s, err := NewStudy(StudyConfig{Domains: 6000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := s.ServeStudy()
	if err != nil {
		t.Fatal(err)
	}
	sn := svc.Current()
	if sn == nil || sn.Index.Len() != s.VRPs.Len() {
		t.Fatalf("service snapshot does not match the study's VRPs: %+v", sn)
	}
	if sn.Domains.Len() != 6000 {
		t.Fatalf("domain table has %d domains, want 6000", sn.Domains.Len())
	}
	// The snapshot's lock-free index agrees with the study's set.
	v := s.VRPs.All()[0]
	if res := sn.ValidateRoute(v.Prefix, v.ASN); res.State != "valid" {
		t.Fatalf("ValidateRoute = %+v, want valid", res)
	}
	// Its aggregate exposure matches the study's measured coverage in
	// direction: partially covered, far from fully covered.
	if sn.Exposure.Coverage <= 0 || sn.Exposure.Coverage >= 0.5 {
		t.Fatalf("exposure coverage = %v, want small but positive", sn.Exposure.Coverage)
	}
	// The domain endpoint agrees with the dataset for a measured domain.
	name := s.World.List.Entries()[0].Domain
	verdict, ok := sn.Domain(name)
	if !ok {
		t.Fatalf("domain %q missing from the service", name)
	}
	if verdict.Rank != 1 {
		t.Fatalf("rank = %d, want 1", verdict.Rank)
	}
}
