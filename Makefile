# Developer and CI entry points. The benchmark-regression gate keeps
# BENCH_baseline.json honest: `make bench-check` fails when ns/op,
# B/op or allocs/op of a gated benchmark worsens by >30% against the
# committed baseline; `make bench-baseline` refreshes it (run on the
# reference machine — ns/op baselines are machine-relative, B/op and
# allocs/op are portable).

GO          ?= go
BENCH_COUNT ?= 3
BENCH_FILE  ?= BENCH_baseline.json
# ns/op threshold for bench-check. 0.30 on the baseline machine; CI
# passes a looser value (see .github/workflows/ci.yml) to absorb
# runner-vs-baseline hardware skew — B/op always stays at 30%.
BENCH_NS_THRESHOLD ?= 0.30
# allocs/op threshold. Allocation counts are deterministic across
# machines, so this stays tight everywhere, like B/op.
BENCH_ALLOCS_THRESHOLD ?= 0.30
# Set BENCH_JSON to a path to also write bench-check's comparison as a
# machine-readable report (CI archives it as an artifact).
BENCH_JSON ?=

.PHONY: build test race vet fmt-check bench bench-baseline bench-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt; prints the offenders.
fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$files"; exit 1; \
	fi

# The gated benchmark set: the sweep engine (all execution modes), the
# sim engine's hot tick loop (single and composed scenarios), its
# incremental steady-state paths (dirty-subtree probe refresh and the
# cache's single-VRP delta apply), the
# serving layer's lock-free lookup path at 1/4/8 goroutines, the radix
# covering walk it rests on, the distributed coordinator's
# decode-and-assemble merge path, and the web-scale path — sharded
# world generation throughput, the packed domain table's build cost and
# bytes/domain, and the lookup path against a million-domain table.
# Fixed -benchtime keeps run time bounded; -count $(BENCH_COUNT) gives
# benchgate best-of folding.
bench:
	@$(GO) test -run '^$$' -bench 'BenchmarkSweep$$' -benchtime 2x -benchmem -count $(BENCH_COUNT) ./internal/sweep
	@$(GO) test -run '^$$' -bench 'BenchmarkSimTick$$' -benchtime 200x -benchmem -count $(BENCH_COUNT) .
	@$(GO) test -run '^$$' -bench 'BenchmarkComposedSimTick$$' -benchtime 200x -benchmem -count $(BENCH_COUNT) .
	@$(GO) test -run '^$$' -bench 'BenchmarkProbeIncremental$$' -benchtime 100x -benchmem -count $(BENCH_COUNT) .
	@$(GO) test -run '^$$' -bench 'BenchmarkTruthSetDelta$$' -benchtime 10000x -benchmem -count $(BENCH_COUNT) .
	@$(GO) test -run '^$$' -bench 'BenchmarkServeValidate$$' -benchtime 50000x -benchmem -count $(BENCH_COUNT) ./internal/serve
	@$(GO) test -run '^$$' -bench 'BenchmarkCovering$$' -benchtime 200000x -benchmem -count $(BENCH_COUNT) ./internal/radix
	@$(GO) test -run '^$$' -bench 'BenchmarkDistMerge$$' -benchtime 20x -benchmem -count $(BENCH_COUNT) ./internal/distsweep
	@$(GO) test -run '^$$' -bench 'BenchmarkWorldgen$$' -benchtime 1x -benchmem -count $(BENCH_COUNT) ./internal/webworld
	@$(GO) test -run '^$$' -bench 'BenchmarkBuildDomainTable$$' -benchtime 1x -benchmem -count $(BENCH_COUNT) ./internal/serve
	@$(GO) test -run '^$$' -bench 'BenchmarkServeValidate1M$$' -benchtime 20000x -benchmem -count $(BENCH_COUNT) ./internal/serve

bench-baseline:
	@$(MAKE) --no-print-directory bench | $(GO) run ./tools/benchgate -write $(BENCH_FILE)

bench-check:
	@$(MAKE) --no-print-directory bench | $(GO) run ./tools/benchgate -check $(BENCH_FILE) -ns-threshold $(BENCH_NS_THRESHOLD) -allocs-threshold $(BENCH_ALLOCS_THRESHOLD) $(if $(BENCH_JSON),-json $(BENCH_JSON))

ci: build vet fmt-check test
