package ripki

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index, E1..E8).
// Each benchmark times the analysis and, on the first iteration,
// reports the headline values of the reproduced result as custom
// metrics, so `go test -bench . -benchmem` doubles as the reproduction
// log (captured into bench_output.txt).
//
// The world size defaults to 100k domains (a tenth of the paper's 1M;
// the shapes are scale-stable — see BenchmarkAblationScale). Set
// RIPKI_BENCH_DOMAINS=1000000 to run at full paper scale.

import (
	"fmt"
	"math"
	"net"
	"net/netip"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"ripki/internal/bgp"
	"ripki/internal/dns"
	"ripki/internal/httparchive"
	"ripki/internal/measure"
	"ripki/internal/netutil"
	"ripki/internal/router"
	"ripki/internal/rpki/vrp"
	"ripki/internal/rtr"
	"ripki/internal/stats"
	"ripki/internal/webworld"
)

var (
	benchOnce  sync.Once
	benchStudy *Study
	benchErr   error
)

func benchDomains() int {
	if s := os.Getenv("RIPKI_BENCH_DOMAINS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 100000
}

func setupStudy(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = NewStudy(StudyConfig{Domains: benchDomains(), Seed: 2015})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy
}

func meanY(ps []stats.Point) float64 {
	var sum, n float64
	for _, p := range ps {
		if !math.IsNaN(p.Y) {
			sum += p.Y
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / n
}

func headTail(ps []stats.Point) (head, tail float64) {
	k := len(ps) / 10
	if k == 0 {
		k = 1
	}
	return meanY(ps[:k]), meanY(ps[len(ps)-k:])
}

// BenchmarkFigure1 regenerates Figure 1 (equal prefixes between www and
// w/o-www names). Paper: >76% in the first 100k ranks, >94% beyond.
func BenchmarkFigure1(b *testing.B) {
	s := setupStudy(b)
	var fig *Figure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Figure1()
	}
	head, tail := headTail(fig.Series[0].Points)
	b.ReportMetric(head*100, "headEqual%")
	b.ReportMetric(tail*100, "tailEqual%")
}

// BenchmarkFigure2 regenerates Figure 2 (validation outcome by rank).
// Paper: valid ≈4.0% in the top 100k rising to ≈5.5%; invalid ≈0.09%
// flat; not found ≈93–96%.
func BenchmarkFigure2(b *testing.B) {
	s := setupStudy(b)
	var fig *Figure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Figure2(VariantWWW)
	}
	headValid, tailValid := headTail(fig.Series[0].Points)
	b.ReportMetric(headValid*100, "headValid%")
	b.ReportMetric(tailValid*100, "tailValid%")
	b.ReportMetric(meanY(fig.Series[1].Points)*100, "invalid%")
	b.ReportMetric(meanY(fig.Series[2].Points)*100, "notfound%")
}

// BenchmarkFigure3 regenerates Figure 3 (CDN popularity, two
// heuristics). Paper: both decay with rank; HTTPArchive sits above the
// conservative indirection heuristic.
func BenchmarkFigure3(b *testing.B) {
	s := setupStudy(b)
	var fig *Figure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Figure3()
	}
	haHead, _ := headTail(fig.Series[0].Points)
	chHead, chTail := headTail(fig.Series[1].Points)
	b.ReportMetric(haHead*100, "httparchiveHead%")
	b.ReportMetric(chHead*100, "chainHead%")
	b.ReportMetric(chTail*100, "chainTail%")
}

// BenchmarkFigure4 regenerates Figure 4 (RPKI-enabled: overall vs
// CDN-hosted). Paper: CDN-hosted fluctuates around 0.9%, an order of
// magnitude below the overall deployment.
func BenchmarkFigure4(b *testing.B) {
	s := setupStudy(b)
	var fig *Figure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Figure4(VariantWWW)
	}
	b.ReportMetric(meanY(fig.Series[0].Points)*100, "overall%")
	b.ReportMetric(meanY(fig.Series[1].Points)*100, "cdnHosted%")
}

// BenchmarkTable1 regenerates Table 1 (top covered domains).
func BenchmarkTable1(b *testing.B) {
	s := setupStudy(b)
	var tbl *Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = s.Table1(10)
	}
	b.ReportMetric(float64(len(tbl.Rows)), "rows")
}

// BenchmarkCDNStudy regenerates the §4.2 analysis. Paper: 199 CDN ASes,
// 4 RPKI prefixes tied to 3 origin ASes, all Internap's.
func BenchmarkCDNStudy(b *testing.B) {
	s := setupStudy(b)
	var rows []CDNStudyRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = s.CDNStudy()
	}
	ases, prefixes, origins := 0, 0, 0
	for _, r := range rows {
		ases += r.ASes
		prefixes += r.RPKIPrefix
		origins += r.RPKIASes
	}
	b.ReportMetric(float64(ases), "cdnASes")
	b.ReportMetric(float64(prefixes), "rpkiPrefixes")
	b.ReportMetric(float64(origins), "rpkiOrigins")
}

// BenchmarkPipeline times the full §3 methodology (steps 2–4) over the
// prebuilt world — the end-to-end measurement cost per run.
func BenchmarkPipeline(b *testing.B) {
	s := setupStudy(b)
	ha := httparchive.New(s.World.CDNSuffixes)
	ha.Limit = s.World.Cfg.Domains * 3 / 10
	cfg := measure.Config{
		Resolver:    dns.RegistryResolver{Registry: s.World.Registry},
		RIB:         s.World.RIB,
		VRPs:        s.VRPs,
		HTTPArchive: ha,
		BinWidth:    s.Dataset.BinWidth,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := measure.Run(s.World.List, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.World.Cfg.Domains)/1000, "kdomains")
}

// BenchmarkWorldGen times synthetic-world generation (the substitute
// for the paper's data collection).
func BenchmarkWorldGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := webworld.Generate(webworld.Config{Seed: int64(i), Domains: 20000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPKIValidation times relying-party validation of the world's
// full repository (step 4's crypto).
func BenchmarkRPKIValidation(b *testing.B) {
	s := setupStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.World.Repo.Validate(s.World.MeasureTime())
		if res.VRPs.Len() == 0 {
			b.Fatal("no VRPs")
		}
	}
}

// BenchmarkHijack exercises the §2.3 experiment: an origin-validating
// router processing a stream with a 1% hijack mix.
func BenchmarkHijack(b *testing.B) {
	s := setupStudy(b)
	all := s.VRPs.All()
	if len(all) == 0 {
		b.Fatal("no VRPs")
	}
	r := router.New(router.StaticVRPs{VRPs: s.VRPs}, true)
	events := make([]bgp.RouteEvent, 0, 1000)
	for i := 0; i < 1000; i++ {
		v := all[i%len(all)]
		origin := v.ASN
		if i%100 == 0 {
			origin = 65551 // the attacker
		}
		events = append(events, bgp.RouteEvent{
			PeerAS: 3333, PeerID: netutil.MustAddr("10.0.0.1"),
			Prefix:  v.Prefix,
			Path:    []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: []uint32{3333, origin}}},
			NextHop: netutil.MustAddr("10.0.0.1"),
		})
	}
	b.ResetTimer()
	dropped := 0
	for i := 0; i < b.N; i++ {
		d, err := r.Process(events[i%len(events)])
		if err != nil {
			b.Fatal(err)
		}
		if !d.Accepted {
			dropped++
		}
	}
	if b.N >= len(events) && dropped == 0 {
		b.Fatal("no hijacks dropped")
	}
}

// BenchmarkOriginValidation times raw RFC 6811 classification against
// the study's VRP set.
func BenchmarkOriginValidation(b *testing.B) {
	s := setupStudy(b)
	all := s.VRPs.All()
	if len(all) == 0 {
		b.Fatal("no VRPs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := all[i%len(all)]
		if st := s.VRPs.Validate(v.Prefix, v.ASN); st != vrp.Valid {
			b.Fatalf("unexpected state %v", st)
		}
	}
}

// BenchmarkExposure runs the §5.2 business-relation analysis: the
// planted standby arrangements must surface from the VRPs alone.
func BenchmarkExposure(b *testing.B) {
	s := setupStudy(b)
	var rels []ExposedRelation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rels = s.ExposedRelations()
	}
	b.ReportMetric(float64(len(rels)), "relations")
	b.ReportMetric(float64(len(s.World.PlantedBackups)), "planted")
}

// BenchmarkDNSSECStudy runs the future-work extension: DNSSEC adoption
// measured alongside RPKI coverage (independent by construction).
func BenchmarkDNSSECStudy(b *testing.B) {
	s := setupStudy(b)
	cfg := measure.Config{
		Resolver: dns.RegistryResolver{Registry: s.World.Registry},
		RIB:      s.World.RIB,
		VRPs:     s.VRPs,
		BinWidth: s.Dataset.BinWidth,
		DNSSEC:   true,
	}
	var ds *measure.Dataset
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err = measure.Run(s.World.List, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	signed := 0
	for i := range ds.Results {
		if ds.Results[i].DNSSEC {
			signed++
		}
	}
	b.ReportMetric(float64(signed)/float64(len(ds.Results))*100, "dnssec%")
}

// BenchmarkSimTick times the scenario engine's hot loop: one virtual
// tick of the roa-churn scenario — scenario events, VRP flush over the
// RTR wire, relying-party refresh, and revalidation (the probe is
// sampled out of the loop).
func BenchmarkSimTick(b *testing.B) {
	tick := 10 * time.Second
	s, err := NewSimulation(SimConfig{
		Scenario:      "roa-churn",
		Seed:          3,
		Domains:       5000,
		Tick:          tick,
		Duration:      time.Duration(b.N+2) * tick,
		SampleEvery:   1 << 20, // keep the probe out of the measured loop
		SampleDomains: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Step() {
			b.Fatal("simulation ended early")
		}
	}
	b.StopTimer()
	if err := s.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkComposedSimTick times the same hot loop under a composed
// scenario: roa-churn's event stream plus rp-lag's validator staircase
// (three RTR clients at 1/5/20-tick lag) in one world — the compound
// workload the composition layer exists for, gated so composition
// overhead in the tick path can never regress silently.
func BenchmarkComposedSimTick(b *testing.B) {
	tick := 10 * time.Second
	s, err := NewSimulation(SimConfig{
		Scenario:      "roa-churn+rp-lag",
		Seed:          3,
		Domains:       5000,
		Tick:          tick,
		Duration:      time.Duration(b.N+2) * tick,
		SampleEvery:   1 << 20, // keep the probe out of the measured loop
		SampleDomains: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Step() {
			b.Fatal("simulation ended early")
		}
	}
	b.StopTimer()
	if err := s.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRTRChurn times one full cache churn round trip: a real
// Update (diff, delta, serial bump, notify) followed by two connected
// routers completing an incremental sync over TCP.
func BenchmarkRTRChurn(b *testing.B) {
	base := vrp.NewSet()
	for i := 0; i < 1000; i++ {
		v := vrp.VRP{
			Prefix:    netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24),
			MaxLength: 24,
			ASN:       uint32(64500 + i%64),
		}
		if err := base.Add(v); err != nil {
			b.Fatal(err)
		}
	}
	srv := rtr.NewServer(base, 1)
	srv.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	clients := make([]*rtr.Client, 2)
	for i := range clients {
		c, err := rtr.Dial(ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if err := c.Reset(); err != nil {
			b.Fatal(err)
		}
		clients[i] = c
	}
	// Both alternating sets are built outside the loop: Update never
	// mutates the set it is handed, so the timed region is purely the
	// churn round trip (diff, delta, notify, incremental syncs).
	flip := vrp.VRP{Prefix: netutil.MustPrefix("192.0.2.0/24"), MaxLength: 24, ASN: 64999}
	withFlip, err := vrp.FromVRPs(append(base.All(), flip))
	if err != nil {
		b.Fatal(err)
	}
	sets := []*vrp.Set{withFlip, base}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Update(sets[i%2])
		for _, c := range clients {
			if err := c.Poll(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkProbeIncremental times the steady-state probe under low
// churn: one VRP flips per iteration, so each Refresh re-measures only
// the flipped prefix's dirty subtree instead of the whole 5k-domain
// world. This is the O(changes) contract the incremental dataset
// exists for, gated so a regression back toward O(world) cannot land
// silently.
func BenchmarkProbeIncremental(b *testing.B) {
	w, err := webworld.Generate(webworld.Config{Seed: 3, Domains: 5000})
	if err != nil {
		b.Fatal(err)
	}
	set := w.Validation().VRPs.Clone()
	inc, err := measure.NewIncremental(w.List, measure.Config{
		Resolver: dns.RegistryResolver{Registry: w.Registry},
		RIB:      w.RIB,
		VRPs:     set,
		BinWidth: 500,
	})
	if err != nil {
		b.Fatal(err)
	}
	var flip vrp.VRP
	for _, p := range w.RoutedV4Prefixes() {
		origin, ok := w.PinnedOriginOf(p)
		if !ok {
			continue
		}
		v := vrp.VRP{Prefix: p, MaxLength: p.Bits(), ASN: origin}
		if !set.Contains(v) {
			flip = v
			break
		}
	}
	if !flip.Prefix.IsValid() {
		b.Fatal("no uncovered routed prefix to flip")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if err := set.Add(flip); err != nil {
				b.Fatal(err)
			}
		} else {
			set.Remove(flip)
		}
		inc.DirtyVRP(flip.Prefix)
		if err := inc.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTruthSetDelta times the cache's delta-apply path: a
// single-VRP UpdateDelta against a 1000-VRP server — membership check,
// in-place apply, delta record, serial bump — without the full-set
// diff Update pays. The sim's flush rides this on every mutation tick.
func BenchmarkTruthSetDelta(b *testing.B) {
	base := vrp.NewSet()
	for i := 0; i < 1000; i++ {
		v := vrp.VRP{
			Prefix:    netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24),
			MaxLength: 24,
			ASN:       uint32(64500 + i%64),
		}
		if err := base.Add(v); err != nil {
			b.Fatal(err)
		}
	}
	srv := rtr.NewServer(base, 1)
	srv.Logf = func(string, ...any) {}
	flip := vrp.VRP{Prefix: netutil.MustPrefix("192.0.2.0/24"), MaxLength: 24, ASN: 64999}
	announce, withdraw := []vrp.VRP{flip}, []vrp.VRP{flip}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			srv.UpdateDelta(announce, nil)
		} else {
			srv.UpdateDelta(nil, withdraw)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---------------

// BenchmarkAblationBinWidth re-runs Figure 2 with the bin sizes the
// paper says it experimented with before settling on 10k.
func BenchmarkAblationBinWidth(b *testing.B) {
	s := setupStudy(b)
	for _, width := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			ds := *s.Dataset
			ds.BinWidth = width
			var fig *Figure
			for i := 0; i < b.N; i++ {
				fig = ds.Figure2(VariantWWW)
			}
			head, tail := headTail(fig.Series[0].Points)
			b.ReportMetric(head*100, "headValid%")
			b.ReportMetric(tail*100, "tailValid%")
		})
	}
}

// BenchmarkAblationCDNThreshold varies the CNAME-indirection cutoff.
// The paper argues ≥2 is a deliberate under-estimate that sharpens the
// CDN picture; ≥1 sweeps in non-CDN aliases.
func BenchmarkAblationCDNThreshold(b *testing.B) {
	s := setupStudy(b)
	ha := httparchive.New(s.World.CDNSuffixes)
	ha.Limit = s.World.Cfg.Domains * 3 / 10
	for _, threshold := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("threshold=%d", threshold), func(b *testing.B) {
			cfg := measure.Config{
				Resolver:     dns.RegistryResolver{Registry: s.World.Registry},
				RIB:          s.World.RIB,
				VRPs:         s.VRPs,
				HTTPArchive:  ha,
				CDNThreshold: threshold,
				BinWidth:     s.Dataset.BinWidth,
			}
			var ds *measure.Dataset
			var err error
			for i := 0; i < b.N; i++ {
				ds, err = measure.Run(s.World.List, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			cdnShare := 0.0
			for i := range ds.Results {
				if ds.Results[i].CDNByChain {
					cdnShare++
				}
			}
			b.ReportMetric(cdnShare/float64(len(ds.Results))*100, "cdnDomains%")
		})
	}
}

// BenchmarkAblationVariant compares the www and w/o-www views (the
// paper's Figure 1 motivates why both are measured).
func BenchmarkAblationVariant(b *testing.B) {
	s := setupStudy(b)
	for _, v := range []Variant{VariantWWW, VariantApex} {
		b.Run(v.String(), func(b *testing.B) {
			var fig *Figure
			for i := 0; i < b.N; i++ {
				fig = s.Figure4(v)
			}
			b.ReportMetric(meanY(fig.Series[0].Points)*100, "overall%")
		})
	}
}

// BenchmarkAblationScale verifies trend stability across world sizes:
// the head-vs-tail coverage gap must persist at every scale.
func BenchmarkAblationScale(b *testing.B) {
	for _, domains := range []int{20000, 50000} {
		b.Run(fmt.Sprintf("domains=%d", domains), func(b *testing.B) {
			var head, tail float64
			for i := 0; i < b.N; i++ {
				s, err := NewStudy(StudyConfig{Domains: domains, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				fig := s.Figure4(VariantWWW)
				head, tail = headTail(fig.Series[0].Points)
			}
			b.ReportMetric(head*100, "headCoverage%")
			b.ReportMetric(tail*100, "tailCoverage%")
		})
	}
}
