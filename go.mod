module ripki

go 1.24
