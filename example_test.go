package ripki_test

import (
	"fmt"

	"ripki"
)

// ExampleNewStudy reproduces the paper's §4.2 headline on a small
// world: sixteen CDNs, 199 ASes, four RPKI prefixes — all Internap's.
func ExampleNewStudy() {
	study, err := ripki.NewStudy(ripki.StudyConfig{Domains: 5000, Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rows := study.CDNStudy()
	totalASes, totalPrefixes := 0, 0
	var signer string
	for _, r := range rows {
		totalASes += r.ASes
		totalPrefixes += r.RPKIPrefix
		if r.RPKIPrefix > 0 {
			signer = r.CDN
		}
	}
	fmt.Printf("CDNs: %d\n", len(rows))
	fmt.Printf("CDN ASes: %d\n", totalASes)
	fmt.Printf("RPKI prefixes: %d (all %s)\n", totalPrefixes, signer)
	// Output:
	// CDNs: 16
	// CDN ASes: 199
	// RPKI prefixes: 4 (all internap)
}

// ExampleStudy_Validate shows RFC 6811 origin validation through the
// public API.
func ExampleStudy_Validate() {
	study, err := ripki.NewStudy(ripki.StudyConfig{Domains: 5000, Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	v := study.VRPs.All()[0]
	fmt.Println("authorised origin:", study.Validate(v.Prefix, v.ASN))
	fmt.Println("wrong origin:     ", study.Validate(v.Prefix, v.ASN+1))
	// Output:
	// authorised origin: valid
	// wrong origin:      invalid
}
