// Package ripki reproduces "RiPKI: The Tragic Story of RPKI Deployment
// in the Web Ecosystem" (Wählisch et al., ACM HotNets 2015).
//
// The paper measures how much of the web's hosting infrastructure is
// protected by RPKI prefix origin validation, and finds that popular,
// CDN-hosted websites are *less* protected than obscure ones. This
// module rebuilds the full measurement stack — DNS, BGP, MRT, RPKI
// (certificates, ROAs, relying-party validation), the RPKI-to-Router
// protocol, and a synthetic web ecosystem standing in for the live
// Internet — and re-runs the paper's methodology end to end.
//
// The simplest entry point is Study:
//
//	study, err := ripki.NewStudy(ripki.StudyConfig{Domains: 100000, Seed: 1})
//	...
//	fig := study.Figure2(ripki.VariantWWW)
//	fig.WriteTSV(os.Stdout)
//
// Beyond the snapshot methodology, the module simulates time-evolving
// RPKI worlds: a deterministic discrete-event engine (internal/sim)
// replays ROA churn, hijack campaigns, cache restarts, and CDN
// migrations over virtual time, pushing VRP deltas through the RTR wire
// protocol to lag-bound relying parties and recording per-tick exposure
// time series:
//
//	series, err := ripki.RunSimScenario(ripki.SimConfig{Scenario: "hijack-window", Seed: 1})
//	...
//	series.WriteTSV(os.Stdout)
//
// Lower-level building blocks live in the internal packages and are
// surfaced here only as far as downstream users need them: the world
// generator, the measurement dataset, origin validation, RTR serving,
// and the scenario engine.
package ripki

import (
	"context"
	"fmt"
	"net"
	"net/netip"

	"ripki/internal/distsweep"
	"ripki/internal/dns"
	"ripki/internal/httparchive"
	"ripki/internal/measure"
	"ripki/internal/obs"
	"ripki/internal/rpki/repo"
	"ripki/internal/rpki/vrp"
	"ripki/internal/rtr"
	"ripki/internal/serve"
	"ripki/internal/sim"
	"ripki/internal/stats"
	"ripki/internal/sweep"
	"ripki/internal/webworld"
)

// Re-exported result types, so callers need only this package.
type (
	// Figure is a named set of data series (one paper figure).
	Figure = stats.Figure
	// Table is a labelled text table (one paper table).
	Table = stats.Table
	// Dataset is the full measurement output.
	Dataset = measure.Dataset
	// DomainResult is one domain's measurement.
	DomainResult = measure.DomainResult
	// WorldConfig parameterises the synthetic ecosystem.
	WorldConfig = webworld.Config
	// World is the generated ecosystem.
	World = webworld.World
	// VRP is one validated ROA payload.
	VRP = vrp.VRP
	// State is an RFC 6811 validation outcome.
	State = vrp.State
	// Variant selects the www or w/o-www name.
	Variant = measure.Variant
	// CDNStudyRow is one CDN's RPKI engagement summary.
	CDNStudyRow = measure.CDNStudyRow
)

// Validation states.
const (
	StateNotFound = vrp.NotFound
	StateValid    = vrp.Valid
	StateInvalid  = vrp.Invalid
)

// Name variants.
const (
	VariantWWW  = measure.VariantWWW
	VariantApex = measure.VariantApex
)

// StudyConfig configures an end-to-end reproduction run.
type StudyConfig struct {
	// Domains is the ranked-list size (default 1,000,000 — the paper's
	// scale; use less for quick runs).
	Domains int
	// Seed drives the deterministic world generation.
	Seed int64
	// BinWidth groups ranks in figures (default 10,000, as the paper).
	BinWidth int
	// CDNThreshold is the CNAME-indirection cutoff (default 2).
	CDNThreshold int
	// HTTPArchiveLimit bounds the pattern classifier's corpus; the
	// default scales the paper's 300k/1M proportionally to Domains.
	HTTPArchiveLimit int
	// DNSSEC additionally measures DNSSEC zone signing per domain (the
	// paper's stated future-work comparison).
	DNSSEC bool
	// World overrides the full world configuration; Domains/Seed above
	// are ignored when set.
	World *WorldConfig
}

// Study is a completed end-to-end run: the generated world, the
// validated RPKI payloads, and the measured dataset.
type Study struct {
	World      *World
	VRPs       *vrp.Set
	Validation *repo.ValidationResult
	Dataset    *Dataset
}

// NewStudy generates a world, validates its RPKI repository, and runs
// the paper's four-step methodology over the ranked domain list.
func NewStudy(cfg StudyConfig) (*Study, error) {
	wcfg := webworld.Config{Seed: cfg.Seed, Domains: cfg.Domains}
	if cfg.World != nil {
		wcfg = *cfg.World
	}
	world, err := webworld.Generate(wcfg)
	if err != nil {
		return nil, fmt.Errorf("ripki: generating world: %w", err)
	}
	return NewStudyFromWorld(world, cfg)
}

// NewStudyFromWorld runs the pipeline over an existing world.
func NewStudyFromWorld(world *World, cfg StudyConfig) (*Study, error) {
	validation := world.Repo.Validate(world.MeasureTime())
	ha := httparchive.New(world.CDNSuffixes)
	if cfg.HTTPArchiveLimit > 0 {
		ha.Limit = cfg.HTTPArchiveLimit
	} else {
		// Scale the paper's 300k-of-1M corpus to this world.
		ha.Limit = world.Cfg.Domains * 3 / 10
	}
	binWidth := cfg.BinWidth
	if binWidth == 0 {
		// Scale the paper's 10k-of-1M binning to this world.
		binWidth = world.Cfg.Domains / 100
		if binWidth == 0 {
			binWidth = 1
		}
	}
	ds, err := measure.Run(world.List, measure.Config{
		Resolver:     dns.RegistryResolver{Registry: world.Registry},
		RIB:          world.RIB,
		VRPs:         validation.VRPs,
		HTTPArchive:  ha,
		BinWidth:     binWidth,
		CDNThreshold: cfg.CDNThreshold,
		DNSSEC:       cfg.DNSSEC,
	})
	if err != nil {
		return nil, fmt.Errorf("ripki: measuring: %w", err)
	}
	return &Study{
		World:      world,
		VRPs:       validation.VRPs,
		Validation: validation,
		Dataset:    ds,
	}, nil
}

// Figure1 is the www vs w/o-www prefix-equality comparison.
func (s *Study) Figure1() *Figure { return s.Dataset.Figure1() }

// Figure2 is the RPKI validation outcome by rank.
func (s *Study) Figure2(v Variant) *Figure { return s.Dataset.Figure2(v) }

// Figure3 compares the two CDN detection heuristics.
func (s *Study) Figure3() *Figure { return s.Dataset.Figure3() }

// Figure4 compares RPKI deployment overall vs CDN-hosted.
func (s *Study) Figure4(v Variant) *Figure { return s.Dataset.Figure4(v) }

// FigureDNSSEC compares DNSSEC and RPKI adoption by rank (requires
// StudyConfig.DNSSEC).
func (s *Study) FigureDNSSEC(v Variant) *Figure { return s.Dataset.FigureDNSSEC(v) }

// Table1 lists the top-ranked domains with any RPKI coverage.
func (s *Study) Table1(n int) *Table { return s.Dataset.Table1(n) }

// Summary prints the dataset headline counts.
func (s *Study) Summary() *Table { return s.Dataset.Summary() }

// CDNStudy runs the §4.2 keyword-spotting analysis.
func (s *Study) CDNStudy() []CDNStudyRow {
	names := make([]string, 0, len(s.World.Cfg.CDNs))
	for _, spec := range s.World.Cfg.CDNs {
		names = append(names, spec.Name)
	}
	reg := make([]measure.ASRegistryEntry, 0, len(s.World.ASRegistry))
	for _, e := range s.World.ASRegistry {
		reg = append(reg, measure.ASRegistryEntry{ASN: e.ASN, Name: e.Name})
	}
	return measure.CDNStudy(names, reg, s.VRPs)
}

// CDNStudyTable renders the study rows.
func CDNStudyTable(rows []CDNStudyRow) *Table { return measure.CDNStudyTable(rows) }

// ExposedRelation is one business relationship readable from the RPKI.
type ExposedRelation = measure.ExposedRelation

// ExposedRelations runs the §5.2 analysis: which business relations
// does the public RPKI disclose? (One of the paper's explanations for
// why operators hesitate to deploy.)
func (s *Study) ExposedRelations() []ExposedRelation {
	reg := make([]measure.ASRegistryEntry, 0, len(s.World.ASRegistry))
	byASN := make(map[uint32]string, len(s.World.ASRegistry))
	for _, e := range s.World.ASRegistry {
		reg = append(reg, measure.ASRegistryEntry{ASN: e.ASN, Name: e.Name})
		byASN[e.ASN] = e.Org
	}
	return measure.ExposedRelations(s.VRPs, reg, func(asn uint32) (string, bool) {
		org, ok := byASN[asn]
		return org, ok
	})
}

// ExposureTable renders exposed relations.
func ExposureTable(rels []ExposedRelation) *Table { return measure.ExposureTable(rels) }

// Validate classifies one route against the study's VRPs (RFC 6811).
func (s *Study) Validate(prefix netip.Prefix, originAS uint32) State {
	return s.VRPs.Validate(prefix, originAS)
}

// ServeRTR serves the study's validated payloads over the RPKI-to-
// Router protocol on the given listener until the returned server is
// closed.
func (s *Study) ServeRTR(ln net.Listener) *rtr.Server {
	srv := rtr.NewServer(s.VRPs, uint16(s.World.Cfg.Seed))
	go srv.Serve(ln)
	return srv
}

// --- simulation --------------------------------------------------------

// Re-exported scenario-engine types, so callers need only this package.
type (
	// Simulation is one configured discrete-event run.
	Simulation = sim.Simulation
	// SimConfig parameterises a simulation (scenario, seed, tick,
	// duration, relying-party roster).
	SimConfig = sim.Config
	// SimParams carries free-form scenario parameters.
	SimParams = sim.Params
	// SimEvent is one bus message (ROA issued, hijack started, cache
	// flushed, ...).
	SimEvent = sim.Event
	// Scenario seeds a simulation with events; implement and Register
	// to add one.
	Scenario = sim.Scenario
	// SimComposite runs several registered scenarios' event streams in
	// one world — built from a "+"-joined spec like "roa-churn+rp-lag",
	// with per-component params ("roa-churn.issue=5"), per-component
	// splitmix64 RNG streams, and a by-name relying-party roster merge.
	SimComposite = sim.Composite
	// TimeSeries is the per-tick simulation output.
	TimeSeries = sim.TimeSeries
	// SimSampleData is the typed payload on sample-topic SimEvents.
	SimSampleData = sim.SampleData
	// Incident is one typed incident record (hijack announce, ROA move,
	// trust-anchor outage, RP lag episode) derived from the bus; attach
	// a recorder with Simulation.AttachIncidents.
	Incident = sim.Incident
	// IncidentSource names the feed and observer of an Incident.
	IncidentSource = sim.IncidentSource
	// IncidentLog accumulates incidents and exports canonical JSONL
	// (byte-identical per seed).
	IncidentLog = sim.IncidentLog
	// Trace is a deterministic structured trace recorder (attach to a
	// Simulation with AttachTrace; export with WriteJSONL/WriteChrome).
	Trace = obs.Trace
	// TraceEvent is one recorded trace event.
	TraceEvent = obs.TraceEvent
)

// NewTrace creates an empty trace recorder.
func NewTrace() *Trace { return obs.NewTrace() }

// NewSimulation builds a simulation: world, RTR cache, relying parties,
// scenario. Run it, then Close it.
func NewSimulation(cfg SimConfig) (*Simulation, error) { return sim.New(cfg) }

// RunSimScenario builds, runs, and closes a simulation in one call.
func RunSimScenario(cfg SimConfig) (*TimeSeries, error) { return sim.RunScenario(cfg) }

// Scenarios lists the registered scenario names.
func Scenarios() []string { return sim.Names() }

// DescribeScenario returns a registered scenario's (or composition
// spec's) one-line description.
func DescribeScenario(name string) string { return sim.Describe(name) }

// RegisterScenario adds a scenario to the registry under its name.
func RegisterScenario(name string, f func(SimParams) Scenario) { sim.Register(name, f) }

// NewScenario instantiates the scenario named by a spec — a registered
// name or a "+"-joined composition ("roa-churn+rp-lag"). Every spec
// comes back as a SimComposite; a single scenario is a one-component
// composition.
func NewScenario(spec string, p SimParams) (Scenario, error) { return sim.NewScenario(spec, p) }

// ScenarioComponents splits a scenario spec into its component names in
// canonical (sorted) order; single names come back as one element.
func ScenarioComponents(spec string) ([]string, error) { return sim.ParseSpec(spec) }

// SimComponentSeed derives a scenario component's RNG stream seed from
// the master seed, the component name, and its occurrence index — the
// derivation that makes a component's randomness identical whether it
// runs alone or inside any composition.
func SimComponentSeed(master int64, name string, occurrence int) int64 {
	return sim.ComponentSeed(master, name, occurrence)
}

// --- sweeps ------------------------------------------------------------

// Re-exported sweep types: parameter grids of simulations sharded
// across a worker pool with deterministic cross-run aggregation.
type (
	// SweepGrid is a parameter grid (scenario × seed × any SimConfig
	// knob); its cross product is the run list.
	SweepGrid = sweep.Grid
	// SweepOptions controls execution. Workers and ShareWorlds are pure
	// scheduling (they can never change the output bytes); Streaming
	// bounds memory by the grid at the price of estimated percentiles
	// past 25 replicates, still byte-identical at any worker count.
	SweepOptions = sweep.Options
	// SweepPlan is an expanded grid: every cell and run in grid order.
	SweepPlan = sweep.Plan
	// SweepResult is a completed sweep: runs in grid order plus
	// per-cell aggregates, exported via WriteTSV / WriteJSON.
	SweepResult = sweep.Result
	// SweepRunResult is one run's scalar summary.
	SweepRunResult = sweep.RunResult
	// SweepCell is one cell's cross-run aggregate (per-tick summaries,
	// per-RP hijack-success rates).
	SweepCell = sweep.Cell
	// WorldSnapshot is an immutable captured world; Clone hands each
	// simulation its own safely-mutable copy (shared-world sweeps).
	WorldSnapshot = webworld.Snapshot
	// StreamingSummary is the online (O(1)-memory) counterpart of
	// stats.Summarize: exact count/min/max/mean, exact p50/p95 up to 25
	// values (p99 up to 100), P² estimates beyond. Streaming sweeps keep
	// one per (cell, tick, metric).
	StreamingSummary = stats.StreamingSummary
	// StatsSummary is the count/min/max/mean/p50/p95/p99 description
	// sweep aggregation folds each metric into.
	StatsSummary = stats.Summary
)

// RunSweep expands the grid, runs every simulation across the worker
// pool, and aggregates. Same grid + master seed ⇒ byte-identical output
// at any worker count. Cancelling ctx stops dispatching and cancels
// in-flight simulations within one tick.
func RunSweep(ctx context.Context, g SweepGrid, opt SweepOptions) (*SweepResult, error) {
	return sweep.Run(ctx, g, opt)
}

// RunSweepPlan executes an already-expanded plan (SweepGrid.Plan), so
// callers needing the plan up front don't pay grid expansion twice.
func RunSweepPlan(ctx context.Context, p *SweepPlan, opt SweepOptions) (*SweepResult, error) {
	return sweep.RunPlan(ctx, p, opt)
}

// ParseSweepGrid reads a JSON grid file (durations as strings, unknown
// fields rejected).
func ParseSweepGrid(data []byte) (SweepGrid, error) { return sweep.ParseGrid(data) }

// MarshalSweepGrid renders a grid in the schema ParseSweepGrid accepts
// (ParseSweepGrid(MarshalSweepGrid(g)) re-expands the identical plan).
func MarshalSweepGrid(g SweepGrid) ([]byte, error) { return sweep.MarshalGrid(g) }

// --- distributed sweeps ------------------------------------------------

// Re-exported distributed-sweep types: one plan sharded across
// processes with the single-process byte-identical output contract
// intact (docs/sweep.md, "Distributed sweeps").
type (
	// DistCoordinator leases contiguous cell ranges to workers,
	// journals completed cells, and assembles the byte-identical Result.
	DistCoordinator = distsweep.Coordinator
	// DistCoordinatorConfig is the coordinator's grid, mode, lease and
	// checkpoint configuration.
	DistCoordinatorConfig = distsweep.CoordinatorConfig
	// DistWorkerConfig is the worker's local execution tuning.
	DistWorkerConfig = distsweep.WorkerConfig
	// SweepCellPartial is one completed cell crossing the
	// worker→coordinator wire.
	SweepCellPartial = sweep.CellPartial
	// DistProgress is a running distributed sweep's standing (the
	// coordinator's GET /progress body and the -status renderer's
	// input).
	DistProgress = distsweep.Progress
	// DistProgressWorker is one worker's live standing within a
	// DistProgress report.
	DistProgressWorker = distsweep.ProgressWorker
)

// NewDistCoordinator expands the grid, binds addr, and loads any
// matching checkpoint records so finished cells are never re-leased.
func NewDistCoordinator(addr string, cfg DistCoordinatorConfig) (*DistCoordinator, error) {
	return distsweep.NewCoordinator(addr, cfg)
}

// DistWork connects to a coordinator and runs leases until the sweep
// finishes (nil), the connection drops (in-flight runs are cancelled
// within a tick), or ctx is cancelled.
func DistWork(ctx context.Context, addr string, cfg DistWorkerConfig) error {
	return distsweep.Work(ctx, addr, cfg)
}

// --- serving -----------------------------------------------------------

// Re-exported serving types: the always-on origin-validation and
// web-exposure query service (cmd/ripki-served, docs/serve.md).
type (
	// ServeService publishes immutable snapshots behind an atomic
	// pointer and answers validation and exposure queries lock-free.
	ServeService = serve.Service
	// ServeSnapshot is one immutable, serial-stamped query state.
	ServeSnapshot = serve.Snapshot
	// ServeDomainTable is the VRP-independent domain→route exposure map.
	ServeDomainTable = serve.DomainTable
	// ServeRouteResult is one route's validation outcome with covering
	// VRPs.
	ServeRouteResult = serve.RouteResult
	// ServeDomainVerdict is a per-domain exposure verdict (both name
	// variants, strict-filtering reachability).
	ServeDomainVerdict = serve.DomainVerdict
	// VRPIndex is the immutable, lock-free counterpart of a VRP set.
	VRPIndex = vrp.Index
)

// NewServeService builds a query service from a generated world: the
// domain exposure table plus the world's own validated payloads as the
// first snapshot. Wire it to HTTP via its Handler method, and to live
// update sources via RunRTR / RunSim.
func NewServeService(w *World) (*ServeService, error) { return serve.NewFromWorld(w) }

// ServeStudy exposes a completed study as a query service: the study's
// world backs the domain table and its validated VRPs the snapshot
// (Study.VRPs is the world's own memoised validation, so this is
// NewServeService of the study's world).
func (s *Study) ServeStudy() (*ServeService, error) {
	return serve.NewFromWorld(s.World)
}

// NewVRPIndex freezes VRPs into a lock-free query index.
func NewVRPIndex(vs []VRP) (*VRPIndex, error) { return vrp.NewIndex(vs) }
