package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ripki/internal/netutil"
	"ripki/internal/rpki/vrp"
	"ripki/internal/serve"
)

// TestLoadgenAgainstInProcessService drives the real open-loop schedule
// against a real Service over HTTP and checks both the text report and
// the -json artifact: offered vs. achieved rate, per-status counts,
// and latencies measured from the scheduled start.
func TestLoadgenAgainstInProcessService(t *testing.T) {
	svc := serve.New(nil)
	if _, err := svc.Publish([]vrp.VRP{
		{Prefix: netutil.MustPrefix("10.0.0.0/16"), MaxLength: 24, ASN: 64500},
	}, "test", 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-addr", ts.URL, "-rate", "200", "-duration", "300ms", "-batch", "4",
		"-json", jsonPath,
	}, &out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	text := out.String()
	for _, want := range []string{"offered", "achieved", "0 errors", "p99=", "scheduled start"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("json report: %v", err)
	}
	if rep.Scheduled != 60 { // 200 req/s * 0.3s
		t.Errorf("scheduled = %d, want 60", rep.Scheduled)
	}
	if rep.Completed != rep.Scheduled {
		t.Errorf("completed = %d, want %d", rep.Completed, rep.Scheduled)
	}
	if rep.Errors != 0 || rep.StatusCounts["200"] != rep.Completed {
		t.Errorf("errors = %d, statusCounts = %v", rep.Errors, rep.StatusCounts)
	}
	if rep.OfferedRPS != 200 {
		t.Errorf("offered_rps = %v, want 200", rep.OfferedRPS)
	}
	if rep.AchievedRPS <= 0 {
		t.Errorf("achieved_rps = %v, want > 0", rep.AchievedRPS)
	}
	if rep.LatencyMS.P99 < rep.LatencyMS.P50 || rep.LatencyMS.Max <= 0 {
		t.Errorf("latency block inconsistent: %+v", rep.LatencyMS)
	}
	if rep.SLO != nil {
		t.Errorf("slo block present without -slo-p99: %+v", rep.SLO)
	}
}

// TestLoadgenSLOGate: an absurdly tight p99 target must fail the run
// (exit 1 path) while still recording the verdict in the JSON report.
func TestLoadgenSLOGate(t *testing.T) {
	svc := serve.New(nil)
	if _, err := svc.Publish(nil, "test", 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-addr", ts.URL, "-rate", "100", "-duration", "100ms",
		"-slo-p99", "1ns", "-json", jsonPath,
	}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "SLO violated") {
		t.Fatalf("run with 1ns p99 target: %v, want SLO violation", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SLO == nil || rep.SLO.Pass {
		t.Errorf("slo block = %+v, want failed gate", rep.SLO)
	}
}

// TestLoadgenUsageAndFailure: flag errors are errFlagParse; a dead
// server is a runtime error, not a hang.
func TestLoadgenUsageAndFailure(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-h"}, &out, &errBuf); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if err := run([]string{"-rate", "0"}, &out, &errBuf); !errors.Is(err, errFlagParse) {
		t.Fatalf("bad rate: %v, want errFlagParse", err)
	}
	if err := run([]string{"-batch", "0"}, &out, &errBuf); !errors.Is(err, errFlagParse) {
		t.Fatalf("bad batch: %v, want errFlagParse", err)
	}
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-duration", "100ms"}, &out, &errBuf); err == nil {
		t.Fatal("dead server accepted")
	}
}
