package main

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"ripki/internal/netutil"
	"ripki/internal/rpki/vrp"
	"ripki/internal/serve"
)

// TestLoadgenAgainstInProcessService drives the real client loop
// against a real Service over HTTP and checks the report shape.
func TestLoadgenAgainstInProcessService(t *testing.T) {
	svc := serve.New(nil)
	if _, err := svc.Publish([]vrp.VRP{
		{Prefix: netutil.MustPrefix("10.0.0.0/16"), MaxLength: 24, ASN: 64500},
	}, "test", 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var out, errBuf bytes.Buffer
	err := run([]string{
		"-addr", ts.URL, "-concurrency", "2", "-duration", "200ms", "-batch", "4",
	}, &out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	report := out.String()
	for _, want := range []string{"req/s", "routes/s", "0 errors", "p99="} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestLoadgenUsageAndFailure: flag errors are errFlagParse; a dead
// server is a runtime error, not a hang.
func TestLoadgenUsageAndFailure(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-h"}, &out, &errBuf); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if err := run([]string{"-concurrency", "0"}, &out, &errBuf); !errors.Is(err, errFlagParse) {
		t.Fatalf("bad concurrency: %v, want errFlagParse", err)
	}
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-duration", "100ms"}, &out, &errBuf); err == nil {
		t.Fatal("dead server accepted")
	}
}
