// Command loadgen is a closed-loop load generator for ripki-served:
// N concurrent workers each issue validate requests back-to-back for a
// fixed wall-clock window, then the tool reports achieved throughput
// and the latency distribution (p50/p95/p99 via internal/stats).
//
//	loadgen -addr http://127.0.0.1:8480 -concurrency 8 -duration 5s
//	loadgen -batch 16 -duration 10s     # 16 routes per request
//
// Routes are drawn from a seeded generator mixing covered and
// uncovered prefixes, so responses exercise all three RFC 6811
// outcomes. Exit code 1 when any request failed, 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"ripki/internal/stats"
)

var errFlagParse = errors.New("flag parsing failed")

// routeSpec mirrors the service's validate request schema.
type routeSpec struct {
	Prefix string `json:"prefix"`
	ASN    uint32 `json:"asn"`
}

// workerResult is one worker's tally.
type workerResult struct {
	latencies []float64 // seconds
	requests  int
	errors    int
}

// randomRoutes draws a batch: /8../24 prefixes across the unicast
// space with origins in the private 16-bit range — some will land
// under VRPs (valid/invalid), the rest answer notfound.
func randomRoutes(rnd *rand.Rand, n int) []routeSpec {
	specs := make([]routeSpec, n)
	for i := range specs {
		bits := 8 + rnd.Intn(17)
		specs[i] = routeSpec{
			Prefix: fmt.Sprintf("%d.%d.%d.0/%d", 1+rnd.Intn(223), rnd.Intn(256), rnd.Intn(256), bits),
			ASN:    uint32(64500 + rnd.Intn(1024)),
		}
	}
	return specs
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8480", "ripki-served base URL")
		concurrency = fs.Int("concurrency", 8, "closed-loop workers")
		duration    = fs.Duration("duration", 5*time.Second, "measurement window")
		batch       = fs.Int("batch", 1, "routes per validate request")
		seed        = fs.Int64("seed", 1, "route generator seed")
		timeout     = fs.Duration("timeout", 10*time.Second, "per-request timeout")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse
	}
	if *concurrency < 1 || *batch < 1 || *duration <= 0 {
		fmt.Fprintln(stderr, "concurrency, batch and duration must be positive")
		return errFlagParse
	}

	url := *addr + "/v1/validate"
	client := &http.Client{Timeout: *timeout}

	// One quick probe before unleashing the fleet, so "server is down"
	// is one clear error instead of thousands.
	probe, err := json.Marshal(map[string]any{"routes": randomRoutes(rand.New(rand.NewSource(*seed)), 1)})
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(probe))
	if err != nil {
		return fmt.Errorf("probe request: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("probe request: status %s", resp.Status)
	}

	results := make([]workerResult, *concurrency)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(*seed + int64(w)*7919))
			res := &results[w]
			for time.Now().Before(deadline) {
				body, err := json.Marshal(map[string]any{"routes": randomRoutes(rnd, *batch)})
				if err != nil {
					res.errors++
					continue
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				lat := time.Since(t0).Seconds()
				res.requests++
				if err != nil {
					res.errors++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					res.errors++
					continue
				}
				res.latencies = append(res.latencies, lat)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var latencies []float64
	requests, errCount := 0, 0
	for i := range results {
		latencies = append(latencies, results[i].latencies...)
		requests += results[i].requests
		errCount += results[i].errors
	}
	if requests == 0 {
		return errors.New("no requests completed")
	}
	s := stats.Summarize(latencies)
	qps := float64(requests) / elapsed.Seconds()
	fmt.Fprintf(stdout, "loadgen: %d requests (%d routes each, %d workers) in %.2fs: %.1f req/s, %.1f routes/s, %d errors\n",
		requests, *batch, *concurrency, elapsed.Seconds(), qps, qps*float64(*batch), errCount)
	fmt.Fprintf(stdout, "latency ms: min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f mean=%.3f\n",
		s.Min*1e3, s.P50*1e3, s.P95*1e3, s.P99*1e3, s.Max*1e3, s.Mean*1e3)
	if errCount > 0 {
		return fmt.Errorf("%d of %d requests failed", errCount, requests)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errFlagParse) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}
