// Command loadgen is an open-loop load generator for ripki-served:
// requests are scheduled at a fixed arrival rate and latency is
// measured from each request's *scheduled* start, not from when it was
// actually sent. A closed-loop generator (fixed workers, back-to-back
// requests) silently slows its own arrival rate when the server stalls
// — the coordinated-omission trap, which hides exactly the tail
// latencies an SLO cares about. Here a stall keeps the schedule intact:
// delayed sends accrue their queueing delay into the recorded latency,
// and the offered vs. achieved rate gap makes overload visible.
//
//	loadgen -addr http://127.0.0.1:8480 -rate 200 -duration 5s
//	loadgen -rate 500 -batch 16 -duration 10s      # 16 routes per request
//	loadgen -rate 150 -slo-p99 250ms -json report.json
//
// Routes are drawn from a seeded generator mixing covered and
// uncovered prefixes, so responses exercise all three RFC 6811
// outcomes. Exit code 1 when any request failed or the -slo-p99 gate
// tripped, 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"ripki/internal/stats"
)

var errFlagParse = errors.New("flag parsing failed")

// routeSpec mirrors the service's validate request schema.
type routeSpec struct {
	Prefix string `json:"prefix"`
	ASN    uint32 `json:"asn"`
}

// randomRoutes draws a batch: /8../24 prefixes across the unicast
// space with origins in the private 16-bit range — some will land
// under VRPs (valid/invalid), the rest answer notfound.
func randomRoutes(rnd *rand.Rand, n int) []routeSpec {
	specs := make([]routeSpec, n)
	for i := range specs {
		bits := 8 + rnd.Intn(17)
		specs[i] = routeSpec{
			Prefix: fmt.Sprintf("%d.%d.%d.0/%d", 1+rnd.Intn(223), rnd.Intn(256), rnd.Intn(256), bits),
			ASN:    uint32(64500 + rnd.Intn(1024)),
		}
	}
	return specs
}

// tally accumulates results across the in-flight request goroutines.
type tally struct {
	mu           sync.Mutex
	latencies    []float64 // seconds, from scheduled start
	statusCounts map[string]int
	maxSchedLag  time.Duration // worst dispatch delay behind schedule
}

func (t *tally) record(latency float64, status string, schedLag time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.latencies = append(t.latencies, latency)
	t.statusCounts[status]++
	if schedLag > t.maxSchedLag {
		t.maxSchedLag = schedLag
	}
}

// latencyMS is the report's latency block, in milliseconds.
type latencyMS struct {
	Min  float64 `json:"min"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// sloReport is present when -slo-p99 gates the run.
type sloReport struct {
	P99TargetMS float64 `json:"p99_target_ms"`
	Pass        bool    `json:"pass"`
}

// report is the -json machine-readable result. OfferedRPS is the rate
// the schedule demanded; AchievedRPS is what actually completed — a gap
// between them is coordinated omission made visible instead of hidden.
type report struct {
	Addr            string         `json:"addr"`
	RateRPS         float64        `json:"rate_rps"`
	DurationSeconds float64        `json:"duration_seconds"`
	Batch           int            `json:"batch"`
	Scheduled       int            `json:"scheduled"`
	Completed       int            `json:"completed"`
	Errors          int            `json:"errors"`
	OfferedRPS      float64        `json:"offered_rps"`
	AchievedRPS     float64        `json:"achieved_rps"`
	StatusCounts    map[string]int `json:"status_counts"`
	MaxSchedLagMS   float64        `json:"max_sched_lag_ms"`
	LatencyMS       latencyMS      `json:"latency_ms"`
	SLO             *sloReport     `json:"slo,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8480", "ripki-served base URL")
		rate     = fs.Float64("rate", 200, "open-loop arrival rate, requests/second")
		duration = fs.Duration("duration", 5*time.Second, "measurement window (schedule length)")
		batch    = fs.Int("batch", 1, "routes per validate request")
		seed     = fs.Int64("seed", 1, "route generator seed")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-request timeout")
		jsonPath = fs.String("json", "", "write the machine-readable report to this file")
		sloP99   = fs.Duration("slo-p99", 0, "fail (exit 1) when p99 latency from scheduled start exceeds this; 0 disables")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse
	}
	if *rate <= 0 || *batch < 1 || *duration <= 0 {
		fmt.Fprintln(stderr, "rate, batch and duration must be positive")
		return errFlagParse
	}

	url := *addr + "/v1/validate"
	client := &http.Client{Timeout: *timeout}

	// One quick probe before unleashing the fleet, so "server is down"
	// is one clear error instead of thousands.
	probe, err := json.Marshal(map[string]any{"routes": randomRoutes(rand.New(rand.NewSource(*seed)), 1)})
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(probe))
	if err != nil {
		return fmt.Errorf("probe request: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("probe request: status %s", resp.Status)
	}

	total := int(*rate * duration.Seconds())
	if total < 1 {
		total = 1
	}
	t := &tally{statusCounts: make(map[string]int)}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		// The schedule is fixed up front: request i departs at
		// start + i/rate regardless of how earlier requests fared.
		sched := start.Add(time.Duration(float64(i) * float64(time.Second) / *rate))
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, sched time.Time) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(*seed + int64(i)*7919))
			schedLag := time.Since(sched)
			body, err := json.Marshal(map[string]any{"routes": randomRoutes(rnd, *batch)})
			if err != nil {
				t.record(time.Since(sched).Seconds(), "error", schedLag)
				return
			}
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				t.record(time.Since(sched).Seconds(), "error", schedLag)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			t.record(time.Since(sched).Seconds(), strconv.Itoa(resp.StatusCode), schedLag)
		}(i, sched)
	}
	wg.Wait()
	elapsed := time.Since(start)

	completed := len(t.latencies)
	if completed == 0 {
		return errors.New("no requests completed")
	}
	errCount := 0
	for status, n := range t.statusCounts {
		if status != "200" {
			errCount += n
		}
	}
	s := stats.Summarize(t.latencies)
	rep := report{
		Addr:            *addr,
		RateRPS:         *rate,
		DurationSeconds: duration.Seconds(),
		Batch:           *batch,
		Scheduled:       total,
		Completed:       completed,
		Errors:          errCount,
		OfferedRPS:      *rate,
		AchievedRPS:     float64(completed) / elapsed.Seconds(),
		StatusCounts:    t.statusCounts,
		MaxSchedLagMS:   t.maxSchedLag.Seconds() * 1e3,
		LatencyMS: latencyMS{
			Min: s.Min * 1e3, P50: s.P50 * 1e3, P95: s.P95 * 1e3,
			P99: s.P99 * 1e3, Max: s.Max * 1e3, Mean: s.Mean * 1e3,
		},
	}
	sloPass := true
	if *sloP99 > 0 {
		sloPass = s.P99 <= sloP99.Seconds()
		rep.SLO = &sloReport{P99TargetMS: sloP99.Seconds() * 1e3, Pass: sloPass}
	}

	fmt.Fprintf(stdout, "loadgen: %d scheduled (%d routes each) over %.2fs: offered %.1f req/s, achieved %.1f req/s, %d errors\n",
		total, *batch, elapsed.Seconds(), rep.OfferedRPS, rep.AchievedRPS, errCount)
	statuses := make([]string, 0, len(t.statusCounts))
	for status := range t.statusCounts {
		statuses = append(statuses, status)
	}
	sort.Strings(statuses)
	fmt.Fprintf(stdout, "status:")
	for _, status := range statuses {
		fmt.Fprintf(stdout, " %s=%d", status, t.statusCounts[status])
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "latency ms (from scheduled start): min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f mean=%.3f (max sched lag %.3f)\n",
		rep.LatencyMS.Min, rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99, rep.LatencyMS.Max, rep.LatencyMS.Mean, rep.MaxSchedLagMS)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if errCount > 0 {
		return fmt.Errorf("%d of %d requests failed", errCount, completed)
	}
	if !sloPass {
		return fmt.Errorf("SLO violated: p99 %.3fms > target %.3fms at %.1f req/s offered",
			rep.LatencyMS.P99, rep.SLO.P99TargetMS, rep.OfferedRPS)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errFlagParse) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}
