package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ripki/internal/sweep
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweep/workers=4-8         	       2	3489621020 ns/op	         9.170 runs/s	1017605704 B/op	 6232998 allocs/op
BenchmarkSweep/workers=4-8         	       2	3300000000 ns/op	         9.600 runs/s	1017605800 B/op	 6232999 allocs/op
BenchmarkSweep/shared/workers=4-8  	       2	2359750430 ns/op	        13.56 runs/s	817745672 B/op	 3374609 allocs/op
BenchmarkSimTick   	     100	  11400000 ns/op	  131072 B/op	    2048 allocs/op
PASS
ok  	ripki/internal/sweep	24.037s
`

func TestParseFoldsBestOf(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	// GOMAXPROCS suffix stripped; repeated runs folded to the minimum.
	sweep, ok := got["BenchmarkSweep/workers=4"]
	if !ok {
		t.Fatalf("normalised name missing: %v", got)
	}
	if sweep.NsPerOp != 3300000000 {
		t.Errorf("ns/op not folded to min: %v", sweep.NsPerOp)
	}
	if sweep.BPerOp != 1017605704 {
		t.Errorf("B/op not folded to min: %v", sweep.BPerOp)
	}
	if sweep.AllocsPerOp != 6232998 {
		t.Errorf("allocs/op not folded to min: %v", sweep.AllocsPerOp)
	}
	// Custom metrics between ns/op and B/op don't confuse the parser,
	// and a name with no GOMAXPROCS suffix survives normalisation.
	if got["BenchmarkSimTick"].BPerOp != 131072 {
		t.Errorf("SimTick B/op: %v", got["BenchmarkSimTick"].BPerOp)
	}
	if got["BenchmarkSimTick"].AllocsPerOp != 2048 {
		t.Errorf("SimTick allocs/op: %v", got["BenchmarkSimTick"].AllocsPerOp)
	}
	if len(got) != 3 {
		t.Errorf("parsed %d benchmarks, want 3", len(got))
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("no benchmark lines accepted")
	}
}

func TestCompareGate(t *testing.T) {
	base := &Baseline{Benchmarks: map[string]Entry{
		"BenchmarkSweep/workers=4": {NsPerOp: 1000, BPerOp: 500},
		"BenchmarkSimTick":         {NsPerOp: 100, BPerOp: 50},
	}}
	// Within threshold (+20%, improvement): passes.
	ok := map[string]Entry{
		"BenchmarkSweep/workers=4": {NsPerOp: 1200, BPerOp: 480},
		"BenchmarkSimTick":         {NsPerOp: 90, BPerOp: 50},
	}
	if failures, _, _ := Compare(base, ok, 0.30, 0.30, 0.30); len(failures) != 0 {
		t.Errorf("in-threshold run failed the gate: %v", failures)
	}
	// A synthetic 2× slowdown on one benchmark: fails.
	slow := map[string]Entry{
		"BenchmarkSweep/workers=4": {NsPerOp: 2000, BPerOp: 500},
		"BenchmarkSimTick":         {NsPerOp: 100, BPerOp: 50},
	}
	failures, _, _ := Compare(base, slow, 0.30, 0.30, 0.30)
	if len(failures) != 1 || !strings.Contains(failures[0], "ns/op regressed 100.0%") {
		t.Errorf("2x slowdown not caught: %v", failures)
	}
	// A B/op regression alone: fails.
	alloc := map[string]Entry{
		"BenchmarkSweep/workers=4": {NsPerOp: 1000, BPerOp: 800},
		"BenchmarkSimTick":         {NsPerOp: 100, BPerOp: 50},
	}
	if failures, _, _ := Compare(base, alloc, 0.30, 0.30, 0.30); len(failures) != 1 {
		t.Errorf("B/op regression not caught: %v", failures)
	}
	// Split thresholds, the CI shape: a loose ns/op gate (absorbing
	// hardware skew from the baseline machine) still fails a 2×
	// slowdown and keeps B/op tight.
	if failures, _, _ := Compare(base, slow, 0.75, 0.30, 0.30); len(failures) != 1 {
		t.Errorf("2x slowdown passed the loose ns gate: %v", failures)
	}
	skewed := map[string]Entry{
		"BenchmarkSweep/workers=4": {NsPerOp: 1500, BPerOp: 800}, // ns +50% (machine skew), B/op +60% (real)
		"BenchmarkSimTick":         {NsPerOp: 150, BPerOp: 50},
	}
	failures, _, _ = Compare(base, skewed, 0.75, 0.30, 0.30)
	if len(failures) != 1 || !strings.Contains(failures[0], "B/op regressed") {
		t.Errorf("split thresholds: want the B/op failure alone, got %v", failures)
	}
	// A baselined benchmark vanishing from the input: fails.
	missing := map[string]Entry{
		"BenchmarkSimTick": {NsPerOp: 100, BPerOp: 50},
	}
	if failures, _, _ := Compare(base, missing, 0.30, 0.30, 0.30); len(failures) != 1 {
		t.Errorf("missing benchmark not caught: %v", failures)
	}
	// New benchmarks not yet baselined warn, never fail — the landing
	// path for a benchmark added before its baseline refresh.
	extra := map[string]Entry{
		"BenchmarkSweep/workers=4": {NsPerOp: 1000, BPerOp: 500},
		"BenchmarkSimTick":         {NsPerOp: 100, BPerOp: 50},
		"BenchmarkNew":             {NsPerOp: 7, BPerOp: 7},
	}
	failures, warnings, _ := Compare(base, extra, 0.30, 0.30, 0.30)
	if len(failures) != 0 {
		t.Errorf("unbaselined benchmark failed the gate: %v", failures)
	}
	if len(warnings) != 1 ||
		!strings.Contains(warnings[0], "BenchmarkNew") ||
		!strings.Contains(warnings[0], "not in baseline") {
		t.Errorf("unbaselined benchmark did not warn: %v", warnings)
	}
	// A fully-baselined run warns about nothing.
	if _, warnings, _ := Compare(base, ok, 0.30, 0.30, 0.30); len(warnings) != 0 {
		t.Errorf("spurious warnings: %v", warnings)
	}
}

// TestCompareAllocsGate: allocation counts gate independently of bytes
// and time, with their own threshold — and only when the baseline
// recorded a positive count, so baselines written before the allocation
// gate existed (AllocsPerOp zero-valued on decode) stay ungated.
func TestCompareAllocsGate(t *testing.T) {
	base := &Baseline{Benchmarks: map[string]Entry{
		"BenchmarkGated":   {NsPerOp: 1000, BPerOp: 500, AllocsPerOp: 100},
		"BenchmarkLegacy":  {NsPerOp: 1000, BPerOp: 500}, // pre-gate baseline: no allocs recorded
		"BenchmarkNoMemOp": {NsPerOp: 1000, BPerOp: -1, AllocsPerOp: -1},
	}}
	// allocs/op doubled while ns/op and B/op held: only the allocs gate
	// trips, and only on the benchmark whose baseline carries a count.
	cur := map[string]Entry{
		"BenchmarkGated":   {NsPerOp: 1000, BPerOp: 500, AllocsPerOp: 200},
		"BenchmarkLegacy":  {NsPerOp: 1000, BPerOp: 500, AllocsPerOp: 999999},
		"BenchmarkNoMemOp": {NsPerOp: 1000, BPerOp: -1, AllocsPerOp: -1},
	}
	failures, _, _ := Compare(base, cur, 0.30, 0.30, 0.30)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkGated: allocs/op regressed 100.0%") {
		t.Errorf("allocs regression not isolated: %v", failures)
	}
	// A dedicated looser allocs threshold absorbs the same doubling.
	if failures, _, _ := Compare(base, cur, 0.30, 0.30, 1.50); len(failures) != 0 {
		t.Errorf("loose allocs threshold still failed: %v", failures)
	}
	// Within threshold: passes, and the report carries the allocs line.
	ok := map[string]Entry{
		"BenchmarkGated":   {NsPerOp: 1000, BPerOp: 500, AllocsPerOp: 110},
		"BenchmarkLegacy":  {NsPerOp: 1000, BPerOp: 500, AllocsPerOp: 7},
		"BenchmarkNoMemOp": {NsPerOp: 1000, BPerOp: -1, AllocsPerOp: -1},
	}
	failures, _, report := Compare(base, ok, 0.30, 0.30, 0.30)
	if len(failures) != 0 {
		t.Errorf("in-threshold allocs failed the gate: %v", failures)
	}
	var allocLines int
	for _, line := range report {
		if strings.Contains(line, "allocs/op") {
			allocLines++
		}
	}
	if allocLines != 1 {
		t.Errorf("want exactly one allocs/op report line (the gated benchmark), got %d:\n%s",
			allocLines, strings.Join(report, "\n"))
	}
}

// TestBuildReport: the -json artifact carries the same verdict as the
// human-readable output — per-benchmark ratios, missing baselined
// benchmarks, unbaselined extras — and survives a JSON round trip.
func TestBuildReport(t *testing.T) {
	base := &Baseline{Benchmarks: map[string]Entry{
		"BenchmarkSweep/workers=4": {NsPerOp: 1000, BPerOp: 500},
		"BenchmarkSimTick":         {NsPerOp: 100, BPerOp: 50},
	}}
	cur := map[string]Entry{
		"BenchmarkSweep/workers=4": {NsPerOp: 2000, BPerOp: 400},
		"BenchmarkNew":             {NsPerOp: 7, BPerOp: 7},
	}
	failures, _, _ := Compare(base, cur, 0.30, 0.30, 0.30)
	rep := BuildReport("BENCH_baseline.json", base, cur, 0.30, 0.30, 0.30, failures)

	if rep.Pass {
		t.Error("report passes despite failures")
	}
	if rep.Baseline != "BENCH_baseline.json" || rep.NsThreshold != 0.30 {
		t.Errorf("report header: %+v", rep)
	}
	sweep := rep.Benchmarks["BenchmarkSweep/workers=4"]
	if sweep.NsRatio != 2.0 || sweep.BRatio != 0.8 || sweep.Missing {
		t.Errorf("sweep entry: %+v", sweep)
	}
	tick := rep.Benchmarks["BenchmarkSimTick"]
	if !tick.Missing || tick.CurrentNsPerOp != -1 {
		t.Errorf("missing benchmark entry: %+v", tick)
	}
	if len(rep.Unbaselined) != 1 || rep.Unbaselined[0] != "BenchmarkNew" {
		t.Errorf("unbaselined: %v", rep.Unbaselined)
	}
	if len(rep.Failures) != len(failures) {
		t.Errorf("failures not carried: %v", rep.Failures)
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks["BenchmarkSweep/workers=4"].NsRatio != 2.0 {
		t.Errorf("round trip lost data: %+v", back)
	}

	// A clean run reports pass and no failure list.
	clean := map[string]Entry{
		"BenchmarkSweep/workers=4": {NsPerOp: 1000, BPerOp: 500},
		"BenchmarkSimTick":         {NsPerOp: 100, BPerOp: 50},
	}
	cleanFailures, _, _ := Compare(base, clean, 0.30, 0.30, 0.30)
	if rep := BuildReport("b.json", base, clean, 0.30, 0.30, 0.30, cleanFailures); !rep.Pass || len(rep.Failures) != 0 || len(rep.Unbaselined) != 0 {
		t.Errorf("clean report: %+v", rep)
	}
}
