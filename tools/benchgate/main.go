// Command benchgate is the benchmark-regression gate: it parses `go
// test -bench -benchmem` output on stdin, folds repeated runs (-count N)
// to their best observation, and either records the result as a
// baseline or compares it against a committed one, failing on
// regression.
//
//	go test -run '^$' -bench 'BenchmarkSweep$' -benchmem -count 3 ./internal/sweep | \
//	    go run ./tools/benchgate -check BENCH_baseline.json
//	... | go run ./tools/benchgate -write BENCH_baseline.json
//	... | go run ./tools/benchgate -check BENCH_baseline.json -json bench-report.json
//
// -check -json also writes the comparison as a machine-readable report
// — per-benchmark baseline/current/ratio plus the pass/fail verdict —
// written on both pass and fail so CI can archive it as an artifact.
//
// The gate fails (exit 1) when any baselined benchmark's ns/op, B/op
// or allocs/op worsens by more than -threshold (default 0.30 = +30%;
// -ns-threshold and -allocs-threshold override per-axis), or when a
// baselined benchmark is missing from the input (a silent rename or
// deletion would otherwise retire its gate unnoticed). Benchmarks in
// the input but not the baseline WARN, never fail: a new benchmark must
// be able to land in the same change that introduces it, before the
// baseline refresh (make bench-baseline) starts gating it.
//
// Best-of folding makes the ns/op comparison noise-tolerant: with
// -count 3 a single slow run (GC pause, noisy neighbour) cannot fail
// the gate; only a change that slows every run can. B/op is
// deterministic for these benchmarks and is the sturdier signal across
// machines — ns/op baselines are only meaningful against the machine
// that wrote them (refresh on hardware changes). -ns-threshold exists
// for exactly that gap: CI runs with a looser ns/op threshold that
// absorbs runner-vs-baseline hardware differences while still failing
// a 2× slowdown, and keeps B/op at the tight default.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's baselined observation. AllocsPerOp is -1
// when the observation carried no allocs/op column (and 0 in baselines
// written before the allocation gate existed — both disable gating, so
// an old baseline keeps passing until `make bench-baseline` refreshes
// it with real counts).
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the committed gate file.
type Baseline struct {
	// Note documents how to refresh the file.
	Note string `json:"note"`
	// Benchmarks maps the normalised benchmark name (GOMAXPROCS suffix
	// stripped) to its best observation.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches one `go test -bench -benchmem` result line:
// name, iterations, ns/op, then optional custom metrics, B/op,
// allocs/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// gomaxprocsSuffix is the trailing -N go test appends when GOMAXPROCS
// exceeds 1; stripping it makes baselines portable across core counts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads benchmark output, folding repeated names (from -count N)
// to their minimum ns/op and B/op.
func Parse(r io.Reader) (map[string]Entry, error) {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		e := Entry{NsPerOp: ns, BPerOp: -1, AllocsPerOp: -1}
		for _, field := range strings.Split(m[3], "\t") {
			field = strings.TrimSpace(field)
			if v, ok := strings.CutSuffix(field, " B/op"); ok {
				b, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil {
					return nil, fmt.Errorf("benchgate: bad B/op in %q: %w", sc.Text(), err)
				}
				e.BPerOp = b
			}
			if v, ok := strings.CutSuffix(field, " allocs/op"); ok {
				a, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil {
					return nil, fmt.Errorf("benchgate: bad allocs/op in %q: %w", sc.Text(), err)
				}
				e.AllocsPerOp = a
			}
		}
		if prev, seen := out[name]; seen {
			if prev.NsPerOp < e.NsPerOp {
				e.NsPerOp = prev.NsPerOp
			}
			if prev.BPerOp >= 0 && (e.BPerOp < 0 || prev.BPerOp < e.BPerOp) {
				e.BPerOp = prev.BPerOp
			}
			if prev.AllocsPerOp >= 0 && (e.AllocsPerOp < 0 || prev.AllocsPerOp < e.AllocsPerOp) {
				e.AllocsPerOp = prev.AllocsPerOp
			}
		}
		out[name] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark lines on stdin")
	}
	return out, nil
}

// ReportBench is one baselined benchmark's comparison in the -json
// artifact. Ratios are current/baseline (1.0 = unchanged); B/op fields
// are -1 when the observation carried none.
type ReportBench struct {
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op"`
	CurrentNsPerOp      float64 `json:"current_ns_per_op"`
	NsRatio             float64 `json:"ns_ratio"`
	BaselineBPerOp      float64 `json:"baseline_b_per_op"`
	CurrentBPerOp       float64 `json:"current_b_per_op"`
	BRatio              float64 `json:"b_ratio"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op"`
	CurrentAllocsPerOp  float64 `json:"current_allocs_per_op"`
	AllocsRatio         float64 `json:"allocs_ratio"`
	// Missing marks a baselined benchmark absent from the input (always
	// a gate failure); its current fields are -1.
	Missing bool `json:"missing,omitempty"`
}

// Report is the machine-readable artifact -json writes after a -check
// run — the same verdict the human-readable output renders, in a shape
// CI can archive and diff across runs.
type Report struct {
	Baseline        string                 `json:"baseline"`
	NsThreshold     float64                `json:"ns_threshold"`
	BThreshold      float64                `json:"b_threshold"`
	AllocsThreshold float64                `json:"allocs_threshold"`
	Pass            bool                   `json:"pass"`
	Benchmarks      map[string]ReportBench `json:"benchmarks"`
	// Unbaselined lists input benchmarks the baseline doesn't gate yet
	// (warnings, never failures).
	Unbaselined []string `json:"unbaselined,omitempty"`
	Failures    []string `json:"failures,omitempty"`
}

// BuildReport assembles the -json artifact from the same inputs Compare
// judges, plus Compare's verdict.
func BuildReport(baselinePath string, base *Baseline, cur map[string]Entry, nsThr, bThr, allocsThr float64, failures []string) Report {
	rep := Report{
		Baseline:        baselinePath,
		NsThreshold:     nsThr,
		BThreshold:      bThr,
		AllocsThreshold: allocsThr,
		Pass:            len(failures) == 0,
		Benchmarks:      make(map[string]ReportBench, len(base.Benchmarks)),
		Failures:        failures,
	}
	for name, b := range base.Benchmarks {
		rb := ReportBench{
			BaselineNsPerOp: b.NsPerOp, CurrentNsPerOp: -1, NsRatio: -1,
			BaselineBPerOp: b.BPerOp, CurrentBPerOp: -1, BRatio: -1,
			BaselineAllocsPerOp: b.AllocsPerOp, CurrentAllocsPerOp: -1, AllocsRatio: -1,
		}
		if c, ok := cur[name]; ok {
			rb.CurrentNsPerOp = c.NsPerOp
			if b.NsPerOp > 0 {
				rb.NsRatio = c.NsPerOp / b.NsPerOp
			}
			rb.CurrentBPerOp = c.BPerOp
			if b.BPerOp > 0 && c.BPerOp >= 0 {
				rb.BRatio = c.BPerOp / b.BPerOp
			}
			rb.CurrentAllocsPerOp = c.AllocsPerOp
			if b.AllocsPerOp > 0 && c.AllocsPerOp >= 0 {
				rb.AllocsRatio = c.AllocsPerOp / b.AllocsPerOp
			}
		} else {
			rb.Missing = true
		}
		rep.Benchmarks[name] = rb
	}
	for name := range cur {
		if _, ok := base.Benchmarks[name]; !ok {
			rep.Unbaselined = append(rep.Unbaselined, name)
		}
	}
	sort.Strings(rep.Unbaselined)
	return rep
}

// Compare checks current observations against the baseline and returns
// the failures (empty = gate passes), the warnings (benchmarks in the
// input but not yet baselined — surfaced loudly but never fatal, so a
// new benchmark can land ahead of its baseline refresh), and an
// informational report. nsThreshold and bThreshold are the allowed
// fractional regressions for ns/op and B/op — separate because B/op is
// deterministic across machines while ns/op tracks the hardware that
// wrote the baseline. allocsThreshold gates allocs/op the same way as
// B/op — only for baselines that recorded a positive count, so old
// baselines (and benchmarks without -benchmem) stay ungated until the
// next refresh.
func Compare(base *Baseline, cur map[string]Entry, nsThreshold, bThreshold, allocsThreshold float64) (failures, warnings, report []string) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: baselined benchmark missing from input", name))
			continue
		}
		nsRatio := c.NsPerOp / b.NsPerOp
		report = append(report, fmt.Sprintf("%-55s ns/op %12.0f -> %12.0f (%+.1f%%)",
			name, b.NsPerOp, c.NsPerOp, (nsRatio-1)*100))
		if nsRatio > 1+nsThreshold {
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.1f%% (%.0f -> %.0f, threshold %.0f%%)",
				name, (nsRatio-1)*100, b.NsPerOp, c.NsPerOp, nsThreshold*100))
		}
		if b.BPerOp > 0 && c.BPerOp >= 0 {
			bRatio := c.BPerOp / b.BPerOp
			report = append(report, fmt.Sprintf("%-55s B/op  %12.0f -> %12.0f (%+.1f%%)",
				name, b.BPerOp, c.BPerOp, (bRatio-1)*100))
			if bRatio > 1+bThreshold {
				failures = append(failures, fmt.Sprintf("%s: B/op regressed %.1f%% (%.0f -> %.0f, threshold %.0f%%)",
					name, (bRatio-1)*100, b.BPerOp, c.BPerOp, bThreshold*100))
			}
		}
		if b.AllocsPerOp > 0 && c.AllocsPerOp >= 0 {
			aRatio := c.AllocsPerOp / b.AllocsPerOp
			report = append(report, fmt.Sprintf("%-55s allocs/op %8.0f -> %12.0f (%+.1f%%)",
				name, b.AllocsPerOp, c.AllocsPerOp, (aRatio-1)*100))
			if aRatio > 1+allocsThreshold {
				failures = append(failures, fmt.Sprintf("%s: allocs/op regressed %.1f%% (%.0f -> %.0f, threshold %.0f%%)",
					name, (aRatio-1)*100, b.AllocsPerOp, c.AllocsPerOp, allocsThreshold*100))
			}
		}
	}
	extra := make([]string, 0)
	for name := range cur {
		if _, ok := base.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		warnings = append(warnings, fmt.Sprintf("%s: not in baseline; run `make bench-baseline` to start gating it", name))
	}
	return failures, warnings, report
}

func main() {
	var (
		check       = flag.String("check", "", "baseline JSON to compare stdin against")
		write       = flag.String("write", "", "baseline JSON to (over)write from stdin")
		threshold   = flag.Float64("threshold", 0.30, "allowed fractional regression for ns/op, B/op and allocs/op")
		nsThreshold = flag.Float64("ns-threshold", -1, "override -threshold for ns/op only (CI uses a looser value to absorb hardware differences from the baseline machine)")
		allocsThr   = flag.Float64("allocs-threshold", -1, "override -threshold for allocs/op only (allocation counts are deterministic, so this can be tighter than the time gate)")
		jsonOut     = flag.String("json", "", "with -check: also write the comparison as a machine-readable JSON report to this file (written on pass and fail, for CI artifacts)")
	)
	flag.Parse()
	if (*check == "") == (*write == "") {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -check or -write is required")
		os.Exit(2)
	}
	if *jsonOut != "" && *check == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -json requires -check")
		os.Exit(2)
	}
	cur, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *write != "" {
		base := Baseline{
			Note:       "benchmark-regression baseline; refresh with `make bench-baseline` on the reference machine",
			Benchmarks: cur,
		}
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(cur), *write)
		return
	}

	data, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *check, err)
		os.Exit(2)
	}
	nsThr := *threshold
	if *nsThreshold >= 0 {
		nsThr = *nsThreshold
	}
	aThr := *threshold
	if *allocsThr >= 0 {
		aThr = *allocsThr
	}
	failures, warnings, report := Compare(&base, cur, nsThr, *threshold, aThr)
	// The JSON artifact is written before the verdict exits, so CI can
	// archive it for failing runs too — that's when it matters most.
	if *jsonOut != "" {
		rep := BuildReport(*check, &base, cur, nsThr, *threshold, aThr, failures)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	for _, line := range report {
		fmt.Println(line)
	}
	// Unbaselined benchmarks warn on stderr — visible in CI logs even
	// when the gate passes — but never fail the run.
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "WARNING:", w)
	}
	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Println("REGRESSION:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d gated benchmarks within thresholds (ns/op %.0f%%, B/op %.0f%%, allocs/op %.0f%%)\n",
		len(base.Benchmarks), nsThr*100, *threshold*100, aThr*100)
}
