// Origin validation walks the full relying-party chain over real
// sockets, the way a network operator would deploy it:
//
//	RPKI repository ──validate──▶ VRPs ──RTR/TCP──▶ router
//	                                                  │
//	web visitor ──DNS/UDP──▶ resolver ──▶ IP ─────────┴─▶ valid/invalid/not found
//
// A synthetic world provides the repository, the zones, and the routing
// table; everything in between (DNS wire format, RTR wire format,
// RFC 6811 validation) is the real protocol machinery.
//
//	go run ./examples/originvalidation
package main

import (
	"fmt"
	"log"
	"net"

	"ripki/internal/dns"
	"ripki/internal/rpki/vrp"
	"ripki/internal/rtr"
	"ripki/internal/webworld"
)

func main() {
	log.SetFlags(0)

	world, err := webworld.Generate(webworld.Config{Seed: 11, Domains: 8000})
	if err != nil {
		log.Fatal(err)
	}

	// Relying party: validate the repository, serve VRPs over RTR.
	result := world.Repo.Validate(world.MeasureTime())
	fmt.Printf("relying party: %d/%d ROAs valid -> %d VRPs\n",
		result.ROAsValid, result.ROAsSeen, result.VRPs.Len())
	rtrLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	cache := rtr.NewServer(result.VRPs, 7)
	go cache.Serve(rtrLn)
	defer cache.Close()

	// Router: sync the full VRP set over the wire.
	rc, err := rtr.Dial(rtrLn.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer rc.Close()
	if err := rc.Reset(); err != nil {
		log.Fatal(err)
	}
	vrps := rc.Set()
	fmt.Printf("router: synced %d VRPs over RTR from %s\n", vrps.Len(), rtrLn.Addr())

	// Resolver: serve the world's zones over UDP, query like a client.
	udp, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	dnsSrv := dns.NewServer(world.Registry)
	go dnsSrv.Serve(udp)
	defer dnsSrv.Close()
	client := dns.NewClient(udp.LocalAddr().String())

	// Validate the web presence of a handful of domains through the
	// whole chain.
	for _, e := range world.List.Top(8).Entries() {
		for _, name := range []string{"www." + e.Domain, e.Domain} {
			res, err := client.LookupWeb(name)
			if err != nil {
				log.Fatal(err)
			}
			if res.NXDomain || len(res.Addrs) == 0 {
				continue
			}
			a := res.Addrs[0]
			pairs := world.RIB.OriginPairs(a)
			if len(pairs) == 0 {
				fmt.Printf("%-34s %-16v (unreachable from vantage)\n", name, a)
				continue
			}
			for _, po := range pairs {
				state := vrps.Validate(po.Prefix, po.Origin)
				marker := map[vrp.State]string{
					vrp.Valid: "✔", vrp.Invalid: "✘", vrp.NotFound: "·",
				}[state]
				fmt.Printf("%-34s %-16v %-18v AS%-7d %s %s\n",
					name, a, po.Prefix, po.Origin, marker, state)
			}
		}
	}
}
