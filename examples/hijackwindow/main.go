// Hijackwindow walks through the scenario engine's headline story — the
// paper's tragedy on a clock:
//
//  1. a popular CDN serves the web's head ranks from prefixes with no
//     RPKI coverage (the paper's §4 finding);
//  2. an attacker announces a more-specific of one of those prefixes;
//     every router on the Internet — validating or not — accepts it,
//     because with no ROA the route validates NotFound;
//  3. mid-incident the CDN issues an emergency ROA for the aggregate.
//     The ground truth now brands the hijack Invalid — but each relying
//     party keeps forwarding traffic to the attacker until its own RTR
//     cache refresh delivers the new payload and revalidation drops the
//     route;
//  4. the accept-all legacy router stays hijacked until the attacker
//     walks away.
//
// The per-router attack windows — how long each one kept sending users
// to the attacker — are the cost of the deployment gap the paper
// measures, plus the cost of relying-party refresh lag on top.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"ripki"
)

func main() {
	log.SetFlags(0)

	cfg := ripki.SimConfig{
		Scenario: "hijack-window",
		Seed:     1,
		Domains:  20000,
		Tick:     30 * time.Second,
		Duration: 30 * time.Minute,
		// The attack lands at 10% of the run, the emergency ROA is
		// issued at 40%, the attacker gives up at 85%.
		Params: ripki.SimParams{
			"cdn":         "akamai",
			"hijack_frac": "0.10",
			"roa_frac":    "0.40",
			"end_frac":    "0.85",
		},
	}

	sim, err := ripki.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	// Narrate the event bus: every ROA, BGP, RTR, and relying-party
	// event as it happens on the virtual clock.
	fmt.Println("== event log ==")
	sim.Bus.SubscribeAll(func(e ripki.SimEvent) {
		if e.Topic != "sample" {
			fmt.Println(e)
		}
	})

	series, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Reconstruct each router's attack window from the recorded series.
	fmt.Println("\n== attack windows ==")
	times := series.Column("t")
	sample := times[1] - times[0]
	for _, name := range []string{"rp-fast", "rp-slow", "legacy"} {
		col := series.Column("hijacked_" + name)
		if col == nil {
			continue
		}
		var window time.Duration
		for _, v := range col {
			if v > 0 {
				window += time.Duration(sample) * time.Second
			}
		}
		fmt.Printf("%-8s hijacked for ~%s of the run\n", name, window)
	}
	fmt.Println("\nrp-fast escapes first (refreshes every tick), rp-slow pays for its")
	fmt.Println("cache lag, and the accept-all legacy router is hijacked wall to wall:")
	fmt.Println("exactly the protection gradient the paper says the web lacks.")

	fmt.Println("\n== time series (TSV) ==")
	if err := series.WriteTSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
