// Quickstart: generate a small synthetic web ecosystem, run the paper's
// measurement methodology over it, and print the headline results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"ripki"
)

func main() {
	log.SetFlags(0)

	// A 20k-domain world runs in a couple of seconds; the full paper
	// scale is Domains: 1000000.
	study, err := ripki.NewStudy(ripki.StudyConfig{Domains: 20000, Seed: 2015})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Dataset ==")
	if err := study.Summary().WriteAligned(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("== Figure 2: RPKI validation outcome by popularity ==")
	fig2 := study.Figure2(ripki.VariantWWW)
	fmt.Print(fig2.ASCIIPlot(72, 12))

	fmt.Println()
	fmt.Println("== Figure 4: overall vs CDN-hosted RPKI deployment ==")
	fmt.Print(study.Figure4(ripki.VariantWWW).ASCIIPlot(72, 12))

	fmt.Println()
	if err := study.Table1(10).WriteAligned(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("The perverse trend in one sentence: popular sites lean on CDNs,")
	fmt.Println("CDNs do not create ROAs, so the most visited websites end up the")
	fmt.Println("least protected against prefix hijacks.")
}
