// CDN audit reproduces the paper's §4.2 analysis as a standalone tool
// flow: keyword-spot CDN operators in an AS assignment registry, then
// check which of their ASes appear in the validated RPKI data — and
// cross-check that CDN-delivered content is protected only where caches
// sit inside third-party ISP networks.
//
//	go run ./examples/cdnaudit
package main

import (
	"fmt"
	"log"
	"os"

	"ripki"
	"ripki/internal/dns"
	"ripki/internal/webworld"
)

func main() {
	log.SetFlags(0)

	study, err := ripki.NewStudy(ripki.StudyConfig{Domains: 30000, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}

	rows := study.CDNStudy()
	if err := ripki.CDNStudyTable(rows).WriteAligned(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The paper's reading of this table, recomputed live.
	totalASes, signers := 0, 0
	var signerRow ripki.CDNStudyRow
	for _, r := range rows {
		totalASes += r.ASes
		if r.RPKIPrefix > 0 {
			signers++
			signerRow = r
		}
	}
	fmt.Println()
	fmt.Printf("We discover %d ASes operated by these CDNs. From these, we find\n", totalASes)
	fmt.Printf("only %d prefixes in the RPKI, tied to %d origin ASes, all belonging\n",
		signerRow.RPKIPrefix, signerRow.RPKIASes)
	fmt.Printf("to %s. %d of the %d CDNs made any deployment.\n", signerRow.CDN, signers, len(rows))

	// "Every RPKI-enabled CDN-content is served by a third party
	// network": for each CDN-hosted domain with coverage, check who owns
	// the covered prefix.
	resolver := dns.RegistryResolver{Registry: study.World.Registry}
	covered, viaThirdParty := 0, 0
	for i := range study.Dataset.Results {
		r := &study.Dataset.Results[i]
		if !r.CDNByChain || r.WWW.CoveredPrefixes == 0 {
			continue
		}
		covered++
		res, err := resolver.LookupWeb("www." + r.Name)
		if err != nil {
			continue
		}
		thirdParty := false
		for _, a := range res.Addrs {
			for _, po := range study.World.RIB.OriginPairs(a) {
				if study.Validate(po.Prefix, po.Origin) == ripki.StateNotFound {
					continue
				}
				if org := study.World.OrgOfPrefix(po.Prefix); org != nil && org.Kind == webworld.KindISP {
					thirdParty = true
				}
			}
		}
		if thirdParty {
			viaThirdParty++
		}
	}
	fmt.Println()
	fmt.Printf("CDN-hosted domains with some RPKI coverage: %d, of which %d owe\n", covered, viaThirdParty)
	fmt.Println("their protection to a third-party ISP hosting the CDN's cache —")
	fmt.Println("the CDNs' own networks contribute nothing.")
}
