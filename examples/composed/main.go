// Composed walks through scenario composition — the compound incident
// the paper's tragedy is actually made of. Single scenarios isolate one
// failure mode; real outages stack them. This walkthrough runs
//
//	hijack-window + rp-lag
//
// in ONE world: while relying parties at 1-, 5-, and 20-tick refresh
// lag chase a steady stream of ROA churn (rp-lag's event stream), an
// attacker sub-prefix hijacks an unprotected CDN prefix and the
// operator answers with an emergency ROA (hijack-window's stream). The
// composition's relying-party roster comes from rp-lag (the component
// that declares one), so the hijack window is measured at every lag
// tier — the interaction neither scenario can show alone.
//
// Composition syntax, usable anywhere a scenario is named (ripki-sim,
// ripki-sweep grids, ripki-served -scenario):
//
//   - "a+b" runs both components' event streams in one world, in
//     canonical (sorted-name) order — "b+a" is the same run, byte for
//     byte;
//   - "-param a.key=value" routes a parameter to one component;
//     undotted keys are shared;
//   - each component draws from its own splitmix64-derived RNG stream
//     keyed by (seed, name, occurrence), so composing with "baseline"
//     is a proven no-op and adding a component never perturbs
//     another's randomness.
package main

import (
	"fmt"
	"log"
	"time"

	"ripki"
)

func main() {
	log.SetFlags(0)

	cfg := ripki.SimConfig{
		// rp-lag brings the 1/5/20-tick validator staircase plus
		// background churn; hijack-window brings the attack. The spec
		// order is free — the engine canonicalises it.
		Scenario: "hijack-window+rp-lag",
		Seed:     1,
		Domains:  20000,
		Tick:     30 * time.Second,
		Duration: 30 * time.Minute,
		Params: ripki.SimParams{
			// Routed: only the churn driven by rp-lag's component sees
			// these (hijack-window has no "issue" knob to collide with,
			// but routing documents intent and scales to overlaps).
			"rp-lag.issue":  "4",
			"rp-lag.revoke": "1",
			// Routed to the attack: hijack at 15%, emergency ROA at
			// 45%, attacker gives up at 85% of the horizon.
			"hijack-window.hijack_frac": "0.15",
			"hijack-window.roa_frac":    "0.45",
			"hijack-window.end_frac":    "0.85",
		},
	}

	sc, err := ripki.NewScenario(cfg.Scenario, cfg.Params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== composition ==\n%s\n%s\n\n", sc.Name(), sc.Description())

	sim, err := ripki.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	// Narrate the merged event stream: churn (roa events tagged
	// "churn") and the hijack lifecycle interleave on one clock.
	fmt.Println("== event log (bgp + rtr events) ==")
	sim.Bus.SubscribeAll(func(e ripki.SimEvent) {
		if e.Topic == "bgp" || e.Topic == "rtr" {
			fmt.Println(e)
		}
	})

	series, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	// The payoff: the same attack, measured at three refresh-lag tiers
	// simultaneously — plus the accept-all baseline.
	fmt.Println("\n== attack window per relying party ==")
	times := series.Column("t")
	sample := times[1] - times[0]
	for _, name := range []string{"rp-1t", "rp-5t", "rp-20t", "legacy"} {
		col := series.Column("hijacked_" + name)
		if col == nil {
			log.Fatalf("roster column hijacked_%s missing — RP merge broken", name)
		}
		var window time.Duration
		for _, v := range col {
			if v > 0 {
				window += time.Duration(sample) * time.Second
			}
		}
		fmt.Printf("%-8s hijacked for ~%s of the run\n", name, window)
	}

	// And the churn kept ramping coverage underneath the incident.
	vrps := series.Column("vrps")
	fmt.Printf("\nground-truth VRPs %v -> %v while the incident ran:\n", vrps[0], vrps[len(vrps)-1])
	fmt.Println("the emergency ROA is one issuance inside a moving deployment —")
	fmt.Println("the compound exposure no single-scenario run can produce.")
}
