// Sweep demonstrates the multi-world question the single-run engine
// cannot answer: not "does this hijack land?" but "how often does it
// land, across many possible webs?".
//
// The grid below crosses three attack scenarios with four seeded worlds
// apiece. Each run is a full simulation — generated ecosystem, RTR
// cache over loopback TCP, lag-bound relying parties — and the sweep
// shards them across workers, then folds the per-tick series into
// cross-run distributions. The part worth staring at is the per-RP
// hijack-success table:
//
//   - route-leak lands on drop-invalid routers in every world (the
//     unsigned fraction always leaks through), but with a smaller
//     footprint than on accept-all routers;
//   - trust-anchor-outage lands everywhere while the anchor is dark —
//     origin validation cannot help when the ROAs are unreachable;
//   - delegated-ca-compromise lands *because* of the RPKI: the rogue
//     ROA validates the attack.
//
// Determinism carries over from single runs: the same grid and master
// seed produce byte-identical aggregates at any worker count.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"ripki"
)

func main() {
	log.SetFlags(0)

	grid := ripki.SweepGrid{
		Scenarios:  []string{"route-leak", "trust-anchor-outage", "delegated-ca-compromise"},
		MasterSeed: 1,
		Replicates: 4,
		Domains:    []int{4000},
		Ticks:      []time.Duration{10 * time.Second},
		Durations:  []time.Duration{8 * time.Minute},
		// Sample every 2 ticks so short attack windows can't slip
		// between probes.
		SampleEvery:   []int{2},
		SampleDomains: []int{400},
	}

	// ShareWorlds generates each of the 4 seed worlds once and clones it
	// across the 3 scenarios sharing it (never changes the output);
	// Streaming folds each run into online accumulators as it finishes,
	// so even a replicates=10000 version of this grid would hold only
	// per-cell state, never 10000 series.
	res, err := ripki.RunSweep(context.Background(), grid, ripki.SweepOptions{
		ShareWorlds: true,
		Streaming:   true,
		Progress: func(done, total int, rr *ripki.SweepRunResult) {
			fmt.Fprintf(os.Stderr, "[%2d/%d] %s\n", done, total, rr)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	table := &ripki.Table{
		Title:   "Hijack success across worlds (4 seeds per scenario)",
		Columns: []string{"scenario", "rp", "success rate", "mean hijacked ticks"},
	}
	for _, cell := range res.Cells {
		for _, h := range cell.Hijacks {
			table.Rows = append(table.Rows, []string{
				cell.Scenario, h.RP,
				fmt.Sprintf("%.2f", h.SuccessRate),
				fmt.Sprintf("%.1f", h.MeanHijackedTicks),
			})
		}
	}
	if err := table.WriteAligned(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Full per-tick distributions: ripki-sweep emits the same grid as TSV/JSON —")
	fmt.Println("  go run ./cmd/ripki-sweep -scenarios route-leak,trust-anchor-outage,delegated-ca-compromise \\")
	fmt.Println("    -replicates 4 -domains 4000 -tick 10s -duration 8m -sample-every 2 -sample-domains 400")
}
