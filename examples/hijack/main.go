// Hijack demonstrates the paper's §2.3 attacker model end to end, over
// real sockets:
//
//  1. a content owner signs a ROA for its web prefix; the RPKI
//     repository is validated and the resulting VRPs are served by an
//     RTR cache (RFC 6810) over TCP;
//  2. two BGP routers come up, both speaking RFC 4271 to an upstream;
//     one enforces origin validation fed by the RTR session, one does
//     not ("RPKI is not deployed");
//  3. the legitimate origin announces the prefix, then an attacker
//     announces a more-specific hijack of the website's prefix.
//
// The protected router drops the hijack and keeps routing user traffic
// to the real web server; the unprotected router prefers the attacker's
// more-specific route — the YouTube/Pakistan-Telecom scenario the paper
// opens with.
package main

import (
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"ripki/internal/bgp"
	"ripki/internal/netutil"
	"ripki/internal/router"
	"ripki/internal/rpki/cert"
	"ripki/internal/rpki/repo"
	"ripki/internal/rpki/roa"
	"ripki/internal/rtr"
)

const (
	victimAS   = 64500
	attackerAS = 64666
)

func main() {
	log.SetFlags(0)

	victimPrefix := netutil.MustPrefix("203.0.112.0/22")
	hijackPrefix := netutil.MustPrefix("203.0.112.0/24")
	userAddr := netutil.MustAddr("203.0.112.80") // a visitor hits the website here

	// --- 1. The content owner creates a ROA. ---------------------------
	clock := time.Now().Add(-time.Hour)
	rpki, err := repo.New([]string{"ripe"}, clock, 90*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	owner, err := rpki.NewCA(rpki.Anchor("ripe"), "victim-hosting", cert.Resources{
		Prefixes: []netip.Prefix{victimPrefix},
		ASNs:     []cert.ASRange{{Min: victimAS, Max: victimAS}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rpki.AddROA(owner, victimAS, []roa.Prefix{{Prefix: victimPrefix, MaxLength: victimPrefix.Bits()}}); err != nil {
		log.Fatal(err)
	}
	result := rpki.Validate(time.Now())
	fmt.Printf("RPKI: %d ROA validated, %d VRPs\n", result.ROAsValid, result.VRPs.Len())

	// --- 2. Serve the VRPs over RTR; a router client syncs. ------------
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	cache := rtr.NewServer(result.VRPs, 1)
	go cache.Serve(ln)
	defer cache.Close()

	client, err := rtr.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if err := client.Reset(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RTR: router synced %d VRPs from %s\n", client.Len(), ln.Addr())

	protected := router.New(client, true)
	unprotected := router.New(router.StaticVRPs{VRPs: result.VRPs}, false)

	// --- 3. Announcements arrive. ---------------------------------------
	legitimate := bgp.RouteEvent{
		PeerAS: 3333, PeerID: netutil.MustAddr("10.0.0.1"),
		Prefix:  victimPrefix,
		Path:    []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: []uint32{3333, victimAS}}},
		NextHop: netutil.MustAddr("10.0.0.1"),
	}
	hijack := bgp.RouteEvent{
		PeerAS: 3333, PeerID: netutil.MustAddr("10.0.0.1"),
		Prefix:  hijackPrefix,
		Path:    []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: []uint32{3333, attackerAS}}},
		NextHop: netutil.MustAddr("10.0.0.66"),
	}
	for _, r := range []*router.Router{protected, unprotected} {
		for _, ev := range []bgp.RouteEvent{legitimate, hijack} {
			d, err := r.Process(ev)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "accepted"
			if !d.Accepted {
				verdict = "REJECTED"
			}
			fmt.Printf("%s: %v from AS%d -> %s (%s)\n", r, ev.Prefix, ev.Path[0].ASNs[1], d.State, verdict)
		}
	}

	// Where does user traffic for the website go now?
	show := func(name string, r *router.Router) {
		pairs := r.Table().OriginPairs(userAddr)
		best := pairs[len(pairs)-1]
		owner := "the website (AS64500)"
		if best.Origin == attackerAS {
			owner = "THE ATTACKER (AS64666)"
		}
		fmt.Printf("%-22s traffic for %v follows %v and reaches %s\n", name+":", userAddr, best.Prefix, owner)
	}
	fmt.Println()
	show("protected router", protected)
	show("unprotected router", unprotected)
}
