package ripki

// This file proves the pipeline is generator-agnostic: every input can
// arrive from disk in the formats the real study consumed (ranked CSV,
// MRT table dump, VRP CSV, zone dump), exactly as ripki-worldgen writes
// them — so the same code would run against captured real-world data.

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"ripki/internal/alexa"
	"ripki/internal/dns"
	"ripki/internal/measure"
	"ripki/internal/rib"
	"ripki/internal/rpki/vrp"
	"ripki/internal/webworld"
)

func TestPipelineFromArtifacts(t *testing.T) {
	world, err := webworld.Generate(webworld.Config{Seed: 77, Domains: 8000})
	if err != nil {
		t.Fatal(err)
	}
	validation := world.Repo.Validate(world.MeasureTime())
	if len(validation.Problems) != 0 {
		t.Fatalf("validation: %v", validation.Problems[:1])
	}

	// Write all four artifacts the way ripki-worldgen does.
	dir := t.TempDir()
	writeFile := func(name string, fn func(f *os.File) error) string {
		t.Helper()
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	alexaPath := writeFile("alexa.csv", func(f *os.File) error { return world.List.WriteCSV(f) })
	mrtPath := writeFile("rib.mrt", func(f *os.File) error {
		return world.RIB.DumpMRT(f, world.RIB.Peers()[0].BGPID, "rrc00", world.Cfg.Clock)
	})
	vrpPath := writeFile("vrps.csv", func(f *os.File) error { return validation.VRPs.WriteCSV(f) })
	zonePath := writeFile("zones.tsv", func(f *os.File) error { return world.Registry.WriteZoneTSV(f) })

	// Reload everything from bytes alone.
	readBack := func(path string) *os.File {
		t.Helper()
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		return f
	}
	list, err := alexa.ReadCSV(readBack(alexaPath))
	if err != nil {
		t.Fatal(err)
	}
	table, err := rib.LoadMRT(readBack(mrtPath))
	if err != nil {
		t.Fatal(err)
	}
	vrps, err := vrp.ReadCSV(readBack(vrpPath))
	if err != nil {
		t.Fatal(err)
	}
	registry, err := dns.LoadZoneTSV(readBack(zonePath))
	if err != nil {
		t.Fatal(err)
	}

	// Run the methodology over the reloaded inputs and over the live
	// world; the headline outcomes must agree.
	run := func(l *alexa.List, reg *dns.Registry, tb *rib.Table, vs *vrp.Set) *measure.Dataset {
		t.Helper()
		ds, err := measure.Run(l, measure.Config{
			Resolver: dns.RegistryResolver{Registry: reg},
			RIB:      tb,
			VRPs:     vs,
			BinWidth: 800,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	fromFiles := run(list, registry, table, vrps)
	inMemory := run(world.List, world.Registry, world.RIB, validation.VRPs)

	if fromFiles.Totals != inMemory.Totals {
		t.Errorf("headline totals diverge:\n files: %+v\n live:  %+v", fromFiles.Totals, inMemory.Totals)
	}
	meanCoverage := func(ds *measure.Dataset) float64 {
		var sum, n float64
		for i := range ds.Results {
			if ds.Results[i].WWW.Pairs > 0 {
				sum += ds.Results[i].WWW.CoverageProb()
				n++
			}
		}
		return sum / n
	}
	a, b := meanCoverage(fromFiles), meanCoverage(inMemory)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("coverage differs: files %v vs live %v", a, b)
	}

	// Figure output must be byte-identical.
	var f1, f2 bytes.Buffer
	if err := fromFiles.Figure2(VariantWWW).WriteTSV(&f1); err != nil {
		t.Fatal(err)
	}
	if err := inMemory.Figure2(VariantWWW).WriteTSV(&f2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1.Bytes(), f2.Bytes()) {
		t.Error("Figure 2 differs between file-loaded and live inputs")
	}
}
