// Package distsweep shards one expanded sweep plan across processes:
// a coordinator leases contiguous cell ranges to workers over a
// length-prefixed JSON protocol, workers run their leases with the
// ordinary sweep pool (shared worlds, streaming, the lot) and stream
// back per-cell partials, and the coordinator places every partial at
// its grid position — so TSV and JSON output is byte-identical to a
// single-process run at any worker count, any lease size, and across
// kill-and-resume (see docs/sweep.md, "Distributed sweeps").
//
// The determinism argument is structural, not numerical: leases are
// whole cells, every replicate of a cell runs on one worker in
// replicate order (exactly like a local sweep), and the partial
// serialisations round-trip exactly (stats.Summary and
// stats.StreamingSummary marshal every bit of state). The coordinator
// never merges anything — it only places cells and runs at the indices
// the plan assigns them.
package distsweep

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"ripki/internal/sweep"
)

// protocolVersion gates the wire format. A coordinator and worker with
// different versions refuse to exchange leases: silently mismatched
// framing would corrupt results, loudly mismatched versions just ask
// the operator to rebuild one side.
const protocolVersion = 1

// maxFrame bounds a frame's payload. Streaming partials for a large
// cell carry per-(tick, metric) accumulator states, so the cap is
// generous; anything beyond it is a framing error, not a real partial.
const maxFrame = 1 << 30

// Frame types. The conversation is strictly worker-driven
// request/response: hello → hello, lease → lease|done, partial → ack.
const (
	frameHello   = "hello"   // worker→coord greeting; coord→worker reply carries the grid
	frameLease   = "lease"   // worker→coord request; coord→worker grant (Count=0 never granted)
	framePartial = "partial" // worker→coord one completed cell
	frameAck     = "ack"     // coord→worker: the partial is durable (fsynced when checkpointing)
	frameDone    = "done"    // coord→worker: no work left, disconnect cleanly
	frameError   = "error"   // either direction: fatal protocol-level refusal
)

// frame is every message on the wire; Type selects which fields are
// meaningful. Ints deliberately carry no omitempty — a lease for cell 0
// must look like one.
type frame struct {
	Type    string `json:"type"`
	Version int    `json:"version,omitempty"`
	// Hello reply: the grid (in the ParseGrid schema), the execution
	// mode, and the coordinator's plan hash. The worker re-expands the
	// grid itself and refuses the session if its own hash differs.
	Grid      json.RawMessage `json:"grid,omitempty"`
	Streaming bool            `json:"streaming,omitempty"`
	PlanHash  string          `json:"plan_hash,omitempty"`
	// Lease grant: the contiguous cell range [First, First+Count).
	First int `json:"first"`
	Count int `json:"count"`
	// Partial and its ack.
	Cell    int                `json:"cell"`
	Partial *sweep.CellPartial `json:"partial,omitempty"`
	// Error refusal.
	Err string `json:"error,omitempty"`
}

// writeFrame emits one length-prefixed frame: uint32 big-endian payload
// length, then the JSON payload.
func writeFrame(w io.Writer, f *frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("distsweep: encoding %s frame: %w", f.Type, err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame. An Err-carrying frame is
// returned as a Go error: refusals terminate the session either way.
func readFrame(r *bufio.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("distsweep: frame of %d bytes exceeds the %d-byte cap", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	var f frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return nil, fmt.Errorf("distsweep: decoding frame: %w", err)
	}
	if f.Type == frameError {
		return nil, fmt.Errorf("distsweep: peer refused: %s", f.Err)
	}
	return &f, nil
}

// refuse sends a best-effort error frame before hanging up.
func refuse(w io.Writer, format string, args ...any) {
	_ = writeFrame(w, &frame{Type: frameError, Err: fmt.Sprintf(format, args...)})
}
