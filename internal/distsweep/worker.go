package distsweep

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"ripki/internal/sweep"
)

// WorkerConfig configures a distributed sweep's worker side.
type WorkerConfig struct {
	// Options is the worker's local execution tuning (Workers,
	// ShareWorlds). Streaming is overwritten by the coordinator's mode;
	// Progress, if set, still fires per completed run.
	Options sweep.Options
	// DialTimeout bounds how long the worker retries connecting — a
	// worker may legitimately start before its coordinator (default 30s).
	DialTimeout time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Work connects to the coordinator at addr and runs leases until the
// coordinator says done (returns nil), the connection is lost (returns
// the transport error; in-flight simulations are cancelled within a
// tick), or ctx is cancelled.
func Work(ctx context.Context, addr string, cfg WorkerConfig) error {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	conn, err := dialRetry(ctx, addr, cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	logf := func(format string, args ...any) {
		if cfg.Logf != nil {
			cfg.Logf(format, args...)
		}
	}

	br := bufio.NewReader(conn)
	if err := writeFrame(conn, &frame{Type: frameHello, Version: protocolVersion}); err != nil {
		return err
	}
	hello, err := readFrame(br)
	if err != nil {
		return err
	}
	if hello.Type != frameHello {
		return fmt.Errorf("distsweep: expected hello reply, got %s", hello.Type)
	}
	if hello.Version != protocolVersion {
		return fmt.Errorf("distsweep: coordinator speaks protocol %d, this worker %d — rebuild the older side", hello.Version, protocolVersion)
	}

	// Re-expand the plan locally from the wire grid and prove both sides
	// expanded the same thing: leases and partials then only ever need
	// indices, never configs.
	grid, err := sweep.ParseGrid(hello.Grid)
	if err != nil {
		return fmt.Errorf("distsweep: coordinator grid: %w", err)
	}
	plan, err := grid.Plan()
	if err != nil {
		return fmt.Errorf("distsweep: expanding coordinator grid: %w", err)
	}
	if h := plan.Hash(); h != hello.PlanHash {
		return fmt.Errorf("distsweep: plan hash mismatch (coordinator %.12s…, local %.12s…) — differing builds cannot shard one sweep", hello.PlanHash, h)
	}
	opt := cfg.Options
	opt.Streaming = hello.Streaming
	logf("connected to %s: %d cells, %d runs, mode=%s", addr, len(plan.Cells), len(plan.Specs), mode(opt.Streaming))

	for {
		if err := writeFrame(conn, &frame{Type: frameLease}); err != nil {
			return err
		}
		grant, err := readFrame(br)
		if err != nil {
			return err
		}
		switch grant.Type {
		case frameDone:
			logf("coordinator done, exiting")
			return nil
		case frameLease:
		default:
			return fmt.Errorf("distsweep: expected lease or done, got %s", grant.Type)
		}
		logf("running cells [%d,%d)", grant.First, grant.First+grant.Count)

		// Watch the connection while simulating: the protocol is
		// synchronous, so ANY readable state mid-lease (EOF, reset, or a
		// stray byte) means the coordinator is gone or broken — cancel the
		// in-flight runs instead of computing for nobody.
		runCtx, cancel := context.WithCancel(ctx)
		stopWatch := watchConn(conn, br, cancel)
		partials, err := sweep.RunCells(runCtx, plan, opt, grant.First, grant.Count)
		stopWatch()
		cancel()
		if err != nil {
			if ctx.Err() == nil && runCtx.Err() != nil {
				return fmt.Errorf("distsweep: coordinator connection lost mid-lease: %w", err)
			}
			return err
		}
		for i := range partials {
			p := &partials[i]
			if err := writeFrame(conn, &frame{Type: framePartial, Cell: p.Cell, Partial: p}); err != nil {
				return err
			}
			ack, err := readFrame(br)
			if err != nil {
				return err
			}
			if ack.Type != frameAck || ack.Cell != p.Cell {
				return fmt.Errorf("distsweep: expected ack for cell %d, got %s (cell %d)", p.Cell, ack.Type, ack.Cell)
			}
			logf("cell %d acked", p.Cell)
		}
	}
}

// dialRetry dials until it succeeds, ctx is cancelled, or the timeout
// elapses — workers and coordinators are started independently and the
// worker should tolerate arriving first.
func dialRetry(ctx context.Context, addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		d := net.Dialer{Deadline: deadline}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("distsweep: dialing coordinator %s: %w", addr, lastErr)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// watchConn polls the connection with short read deadlines while the
// worker is busy simulating (no protocol reads are outstanding). A
// timeout means "still quiet, still healthy"; anything else — EOF, a
// reset, or an unexpected byte — fires cancel. Peek never consumes, so
// the protocol reader is undisturbed. The returned stop function ends
// the watch and clears the read deadline.
func watchConn(conn net.Conn, br *bufio.Reader, cancel context.CancelFunc) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			case <-time.After(100 * time.Millisecond):
			}
			conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
			_, err := br.Peek(1)
			conn.SetReadDeadline(time.Time{})
			if err == nil {
				// The coordinator never speaks unprompted: a readable byte
				// mid-lease is a protocol violation, treated like a drop.
				cancel()
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			cancel()
			return
		}
	}()
	return func() {
		close(done)
		<-finished
		conn.SetReadDeadline(time.Time{})
	}
}
