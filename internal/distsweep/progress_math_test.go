package distsweep

import (
	"testing"
	"time"
)

// The /progress arithmetic is load-bearing for operators deciding
// whether to add workers mid-sweep, so its edges are pinned here:
// resumed-cell exclusion, the zero-rate and nothing-remaining ETAs, and
// the frozen-lifetime worker throughput.

func TestLiveRateExcludesResumed(t *testing.T) {
	// 100 done, 40 loaded from the journal: only 60 were computed this
	// run, over 30s of uptime.
	if got, want := liveRate(100, 40, 30*time.Second), 2.0; got != want {
		t.Errorf("liveRate(100, 40, 30s) = %v, want %v", got, want)
	}
	// All completions resumed: the run itself has produced nothing yet.
	if got := liveRate(40, 40, 30*time.Second); got != 0 {
		t.Errorf("liveRate(40, 40, 30s) = %v, want 0", got)
	}
	// Degenerate clocks must not divide by zero or go negative.
	if got := liveRate(10, 0, 0); got != 0 {
		t.Errorf("liveRate(10, 0, 0) = %v, want 0", got)
	}
	if got := liveRate(10, 20, 30*time.Second); got != 0 {
		t.Errorf("liveRate with resumed > done = %v, want 0", got)
	}
}

func TestETASecondsEdges(t *testing.T) {
	// Normal extrapolation: 120 cells at 4 cells/s.
	if got, want := etaSeconds(120, 4), 30.0; got != want {
		t.Errorf("etaSeconds(120, 4) = %v, want %v", got, want)
	}
	// Zero rate with work remaining: no honest estimate yet.
	if got := etaSeconds(120, 0); got != -1 {
		t.Errorf("etaSeconds(120, 0) = %v, want -1", got)
	}
	// Done: ETA is zero even though the rate is zero.
	if got := etaSeconds(0, 0); got != 0 {
		t.Errorf("etaSeconds(0, 0) = %v, want 0", got)
	}
	if got := etaSeconds(0, 4); got != 0 {
		t.Errorf("etaSeconds(0, 4) = %v, want 0", got)
	}
}

func TestWorkerThroughputAccounting(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

	// Connected worker: lifetime runs to now.
	ws := &workerStat{connected: true, since: base, completed: 30}
	rate, lifetime := workerThroughput(ws, base.Add(10*time.Second))
	if rate != 3 || lifetime != 10 {
		t.Errorf("connected worker: rate %v lifetime %v, want 3 and 10", rate, lifetime)
	}

	// Disconnected worker: the clock froze at last; wall time moving on
	// must not dilute its rate.
	ws = &workerStat{connected: false, since: base, last: base.Add(20 * time.Second), completed: 10}
	rate, lifetime = workerThroughput(ws, base.Add(10*time.Minute))
	if rate != 0.5 || lifetime != 20 {
		t.Errorf("disconnected worker: rate %v lifetime %v, want 0.5 and 20", rate, lifetime)
	}

	// A worker observed at its connection instant has no lifetime yet:
	// rate 0, not NaN/Inf.
	ws = &workerStat{connected: true, since: base, completed: 5}
	rate, lifetime = workerThroughput(ws, base)
	if rate != 0 || lifetime != 0 {
		t.Errorf("zero-lifetime worker: rate %v lifetime %v, want 0 and 0", rate, lifetime)
	}
}
