package distsweep

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ripki/internal/sweep"
)

// progressGet hits the coordinator's handler and decodes the body.
func progressGet(t *testing.T, c *Coordinator) Progress {
	t.Helper()
	rec := httptest.NewRecorder()
	c.Handler(false).ServeHTTP(rec, httptest.NewRequest("GET", "/progress", nil))
	if rec.Code != 200 {
		t.Fatalf("/progress: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var p Progress
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("progress body: %v\n%s", err, rec.Body.String())
	}
	return p
}

// TestProgressBeforeAndAfterRun: a fresh coordinator reports everything
// pending; a finished one reports everything completed, per-worker
// credit, and a zero ETA.
func TestProgressLifecycle(t *testing.T) {
	g := distGrid()
	cfg := CoordinatorConfig{Grid: g}
	coord, err := NewCoordinator("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := progressGet(t, coord)
	total := len(coord.Plan().Cells)
	if p.Cells.Total != total || p.Cells.Pending != total || p.Cells.Completed != 0 {
		t.Fatalf("fresh coordinator: %+v", p.Cells)
	}
	if p.Done || p.ETASeconds != -1 {
		t.Fatalf("fresh coordinator: done=%v eta=%v", p.Done, p.ETASeconds)
	}
	if p.PlanHash == "" || p.Checkpoint != nil {
		t.Fatalf("fresh coordinator: hash=%q checkpoint=%v", p.PlanHash, p.Checkpoint)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		err := Work(ctx, coord.Addr(), WorkerConfig{Options: sweep.Options{Workers: 2, ShareWorlds: true}})
		done <- err
	}()
	if _, err := coord.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	p = progressGet(t, coord)
	if !p.Done || p.Cells.Completed != total || p.ETASeconds != 0 {
		t.Fatalf("finished coordinator: %+v", p)
	}
	if p.RateCellsPerSecond <= 0 {
		t.Fatalf("no live rate after a full run: %+v", p)
	}
	var credited int
	for _, w := range p.Workers {
		credited += w.Completed
		if w.Completed > 0 && w.CellsPerSecond <= 0 {
			t.Errorf("worker %s has completions but no throughput: %+v", w.Name, w)
		}
	}
	if credited != total {
		t.Fatalf("worker credit sums to %d, want %d", credited, total)
	}
}

// TestProgressCheckpoint: with a journal, resumed cells are reported and
// excluded from the live rate, and the lag self-check reads 0.
func TestProgressCheckpoint(t *testing.T) {
	g := distGrid()
	dir := t.TempDir()
	runDistributed(t, g, false, 1, CoordinatorConfig{CheckpointDir: dir})

	// Second coordinator over the same journal: fully resumed.
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{Grid: g, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.ln.Close()
	p := progressGet(t, coord)
	total := len(coord.Plan().Cells)
	if p.Cells.Resumed != total || p.Cells.Completed != total || !p.Done {
		t.Fatalf("resumed coordinator: %+v", p)
	}
	if p.Checkpoint == nil || p.Checkpoint.Journaled != total || p.Checkpoint.Lag != 0 {
		t.Fatalf("checkpoint report: %+v", p.Checkpoint)
	}
	if p.RateCellsPerSecond != 0 {
		t.Fatalf("resumed cells counted as live throughput: %+v", p)
	}
	// ETA for a finished sweep is 0 even with zero live rate.
	if p.ETASeconds != 0 {
		t.Fatalf("eta=%v for a complete sweep", p.ETASeconds)
	}
}

// TestCoordinatorMetrics: the scrape endpoint carries the sweep gauges
// and the protocol counters.
func TestCoordinatorMetrics(t *testing.T) {
	g := distGrid()
	cfg := CoordinatorConfig{Grid: g}
	coord, err := NewCoordinator("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- Work(ctx, coord.Addr(), WorkerConfig{Options: sweep.Options{Workers: 2, ShareWorlds: true}})
	}()
	if _, err := coord.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	coord.Handler(false).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	n := strconv.Itoa(len(coord.Plan().Cells))
	for _, want := range []string{
		"# TYPE ripki_sweep_cells_total gauge",
		"ripki_sweep_cells_total " + n,
		"ripki_sweep_cells_completed " + n,
		"ripki_sweep_cells_pending 0",
		"ripki_sweep_workers_connected 0", // run over, worker gone
		"ripki_sweep_partials_received_total " + n,
		"ripki_sweep_cell_seconds_count " + n,
		"ripki_sweep_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q in:\n%s", want, body)
		}
	}
}

// TestProgressPprofGate: the pprof mount is opt-in.
func TestProgressPprofGate(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{Grid: distGrid()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.ln.Close()
	rec := httptest.NewRecorder()
	coord.Handler(false).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 404 {
		t.Fatalf("pprof served without opt-in: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	coord.Handler(true).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof opt-in not mounted: %d", rec.Code)
	}
}
