package distsweep

import (
	"encoding/json"
	"testing"
	"time"

	"ripki/internal/stats"
	"ripki/internal/sweep"
)

// BenchmarkDistMerge measures the coordinator's merge path: decoding a
// full set of wire-form streaming partials and assembling the final
// Result (accumulator restore + per-cell rendering included) — the
// work the coordinator does per completed sweep beyond running sims.
// 16 cells × 8 replicates × 48 ticks × 6 metrics, all synthetic: the
// benchmark isolates assembly from simulation entirely.
func BenchmarkDistMerge(b *testing.B) {
	grid := sweep.Grid{
		Scenarios:  []string{"baseline"},
		MasterSeed: 7,
		Replicates: 8,
		// A 16-point domains axis makes 16 cells without running anything.
		Domains:       []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		Ticks:         []time.Duration{10 * time.Second},
		Durations:     []time.Duration{8 * time.Minute},
		SampleEvery:   []int{1},
		SampleDomains: []int{50},
	}
	plan, err := grid.Plan()
	if err != nil {
		b.Fatal(err)
	}
	const rows, metrics = 48, 6
	columns := []string{"valid", "invalid", "unknown", "coverage", "hijacks", "reachable"}
	wire := make([][]byte, len(plan.Cells))
	for ci := range plan.Cells {
		st := sweep.CellStreamState{
			Runs:    len(plan.Seeds),
			Columns: columns,
			Rows:    rows,
			T:       make([]float64, rows),
			Tick:    make([]float64, rows),
			Accs:    make([][]*stats.StreamingSummary, rows),
			Hijacks: []sweep.HijackTally{{RP: "drop-invalid", Runs: 8, Successes: 3, Ticks: 19}},
		}
		for r := 0; r < rows; r++ {
			st.T[r] = float64(r) * 10
			st.Tick[r] = float64(r)
			accs := make([]*stats.StreamingSummary, metrics)
			for m := range accs {
				acc := stats.NewStreamingSummary()
				for rep := 0; rep < len(plan.Seeds); rep++ {
					// Deterministic synthetic observations spanning the accs'
					// exact phase — the shape real small-replicate sweeps ship.
					acc.Add(float64((ci*31+r*7+m*3+rep*13)%97) / 97)
				}
				accs[m] = acc
			}
			st.Accs[r] = accs
		}
		p := sweep.CellPartial{Cell: ci, Stream: &st}
		for rep := 0; rep < len(plan.Seeds); rep++ {
			p.Runs = append(p.Runs, sweep.RunPartial{
				Run:  ci*len(plan.Seeds) + rep,
				Rows: rows,
			})
		}
		data, err := json.Marshal(&p)
		if err != nil {
			b.Fatal(err)
		}
		wire[ci] = data
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partials := make([]sweep.CellPartial, len(wire))
		for ci, data := range wire {
			if err := json.Unmarshal(data, &partials[ci]); err != nil {
				b.Fatal(err)
			}
		}
		res, err := sweep.AssembleResult(plan, true, partials)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) != len(plan.Cells) {
			b.Fatal("assembly lost cells")
		}
	}
}
