package distsweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ripki/internal/sweep"
)

// journal is the coordinator's checkpoint: one file per completed cell,
// written tmp→fsync→rename→dir-sync so a record either exists whole or
// not at all. Every record is stamped with the plan hash and the
// execution mode; resume refuses records from a different grid or mode
// instead of assembling a chimera.
type journal struct {
	dir       string
	planHash  string
	streaming bool
}

// cellRecord is one journal file.
type cellRecord struct {
	PlanHash  string            `json:"plan_hash"`
	Streaming bool              `json:"streaming"`
	Partial   sweep.CellPartial `json:"partial"`
}

// openJournal creates (or reuses) the checkpoint directory.
func openJournal(dir, planHash string, streaming bool) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("distsweep: checkpoint dir: %w", err)
	}
	return &journal{dir: dir, planHash: planHash, streaming: streaming}, nil
}

// cellPath names a cell's record; zero-padding keeps directory listings
// in grid order for humans (load sorts by the parsed index regardless).
func (j *journal) cellPath(cell int) string {
	return filepath.Join(j.dir, fmt.Sprintf("cell-%06d.json", cell))
}

// write journals one completed cell durably: the record is fsynced
// before the rename and the directory fsynced after, so an ack sent
// once write returns is a promise a crash cannot take back.
func (j *journal) write(p *sweep.CellPartial) error {
	data, err := json.Marshal(cellRecord{PlanHash: j.planHash, Streaming: j.streaming, Partial: *p})
	if err != nil {
		return fmt.Errorf("distsweep: encoding checkpoint for cell %d: %w", p.Cell, err)
	}
	final := j.cellPath(p.Cell)
	tmp, err := os.CreateTemp(j.dir, fmt.Sprintf(".cell-%06d-*.tmp", p.Cell))
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	return syncDir(j.dir)
}

// load reads every complete record in the directory, verifying each
// against the plan hash and mode. Leftover .tmp files (a crash mid-
// write) are ignored: the cell they were for simply re-runs.
func (j *journal) load() (map[int]sweep.CellPartial, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if n := e.Name(); strings.HasPrefix(n, "cell-") && strings.HasSuffix(n, ".json") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make(map[int]sweep.CellPartial, len(names))
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(j.dir, name))
		if err != nil {
			return nil, err
		}
		var rec cellRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("distsweep: checkpoint %s: %w", name, err)
		}
		if rec.PlanHash != j.planHash {
			return nil, fmt.Errorf("distsweep: checkpoint %s was written for plan %.12s…, this sweep is plan %.12s… — refusing to mix grids", name, rec.PlanHash, j.planHash)
		}
		if rec.Streaming != j.streaming {
			return nil, fmt.Errorf("distsweep: checkpoint %s was written in %s mode, this sweep is %s", name, mode(rec.Streaming), mode(j.streaming))
		}
		out[rec.Partial.Cell] = rec.Partial
	}
	return out, nil
}

func mode(streaming bool) string {
	if streaming {
		return "streaming"
	}
	return "exact"
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
