package distsweep

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"ripki/internal/obs"
)

// This file is the coordinator's live observability surface: a typed
// Progress report (GET /progress and the ripki-sweep -status renderer),
// a Prometheus scrape of the same state (GET /metrics), and an optional
// pprof mount. Everything reads the coordinator's existing bookkeeping;
// none of it is on the lease or partial-acceptance path.

// ProgressCells breaks the plan's cells down by lease lifecycle state.
type ProgressCells struct {
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Leased    int `json:"leased"`
	Pending   int `json:"pending"`
	// Resumed counts completed cells that were loaded from the
	// checkpoint journal rather than computed this run.
	Resumed int `json:"resumed"`
}

// ProgressWorker is one worker's live standing. Workers are identified
// by their connection's remote address.
type ProgressWorker struct {
	Name      string `json:"name"`
	Connected bool   `json:"connected"`
	// Leased is the number of cells the worker currently holds.
	Leased int `json:"leased"`
	// Completed is the number of cells this worker delivered first.
	Completed int `json:"completed"`
	// CellsPerSecond is the worker's lease throughput: completed cells
	// over its connected lifetime.
	CellsPerSecond float64 `json:"cells_per_second"`
	// ConnectedSeconds is the lifetime that throughput is measured over
	// (frozen at disconnect).
	ConnectedSeconds float64 `json:"connected_seconds"`
}

// ProgressCheckpoint reports journal durability (present only when the
// coordinator checkpoints).
type ProgressCheckpoint struct {
	// Journaled counts cells durably recorded (including resumed ones).
	Journaled int `json:"journaled"`
	// Lag is completed-but-not-yet-journaled cells. The journal write
	// happens before a cell is marked done, so this self-check gauge is
	// 0 except in the instant between those two steps.
	Lag int `json:"lag"`
	// LastWriteAgeSeconds is the age of the newest journal record this
	// run (-1 before the first write).
	LastWriteAgeSeconds float64 `json:"last_write_age_seconds"`
}

// Progress is the GET /progress body: one consistent view of a running
// (or finished) distributed sweep.
type Progress struct {
	PlanHash      string           `json:"plan_hash"`
	Streaming     bool             `json:"streaming"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Cells         ProgressCells    `json:"cells"`
	Workers       []ProgressWorker `json:"workers"`
	// RateCellsPerSecond is live throughput: cells completed this run
	// (resumed ones excluded) over the coordinator's uptime.
	RateCellsPerSecond float64 `json:"rate_cells_per_second"`
	// ETASeconds extrapolates the live rate over the remaining cells;
	// -1 while the rate is still zero.
	ETASeconds float64             `json:"eta_seconds"`
	Checkpoint *ProgressCheckpoint `json:"checkpoint,omitempty"`
	Done       bool                `json:"done"`
}

// Progress snapshots the sweep's standing. Safe from any goroutine.
func (c *Coordinator) Progress() Progress {
	st := c.leases.stats()
	uptime := time.Since(c.started)

	p := Progress{
		PlanHash:      c.hash,
		Streaming:     c.cfg.Streaming,
		UptimeSeconds: uptime.Seconds(),
		Cells: ProgressCells{
			Total:     len(c.plan.Cells),
			Completed: st.done,
			Leased:    st.leased,
			Pending:   st.pending,
			Resumed:   c.resumed,
		},
		Done: st.done == len(c.plan.Cells),
	}

	c.mu.Lock()
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	now := time.Now()
	for _, name := range names {
		ws := c.workers[name]
		w := ProgressWorker{
			Name:      name,
			Connected: ws.connected,
			Leased:    st.byWorker[name],
			Completed: ws.completed,
		}
		w.CellsPerSecond, w.ConnectedSeconds = workerThroughput(ws, now)
		p.Workers = append(p.Workers, w)
	}
	journaled, lastJournal := c.journaled, c.lastJournal
	c.mu.Unlock()

	p.RateCellsPerSecond = liveRate(st.done, c.resumed, uptime)
	p.ETASeconds = etaSeconds(len(c.plan.Cells)-st.done, p.RateCellsPerSecond)

	if c.journal != nil {
		cp := &ProgressCheckpoint{Journaled: journaled, Lag: st.done - journaled, LastWriteAgeSeconds: -1}
		if cp.Lag < 0 {
			cp.Lag = 0
		}
		if !lastJournal.IsZero() {
			cp.LastWriteAgeSeconds = time.Since(lastJournal).Seconds()
		}
		p.Checkpoint = cp
	}
	return p
}

// liveRate is this run's throughput in cells/second: cells completed
// since startup — resumed (journal-loaded) cells excluded, they cost
// this run nothing — over the coordinator's uptime. 0 until the first
// live completion.
func liveRate(done, resumed int, uptime time.Duration) float64 {
	live := done - resumed
	if live <= 0 || uptime <= 0 {
		return 0
	}
	return float64(live) / uptime.Seconds()
}

// etaSeconds extrapolates the live rate over the remaining cells: 0
// when nothing remains, -1 while the rate is still zero (no estimate
// is honest before the first live completion).
func etaSeconds(remaining int, rate float64) float64 {
	switch {
	case remaining <= 0:
		return 0
	case rate > 0:
		return float64(remaining) / rate
	default:
		return -1
	}
}

// workerThroughput is one worker's lease throughput: completed cells
// over its connected lifetime, where the lifetime clock freezes at
// disconnect (a gone worker's rate must not decay toward zero as wall
// time passes). Call with the coordinator's mutex held.
func workerThroughput(ws *workerStat, now time.Time) (cellsPerSecond, connectedSeconds float64) {
	lifetime := now.Sub(ws.since)
	if !ws.connected {
		lifetime = ws.last.Sub(ws.since)
	}
	if lifetime > 0 {
		cellsPerSecond = float64(ws.completed) / lifetime.Seconds()
	}
	return cellsPerSecond, lifetime.Seconds()
}

// Handler returns the coordinator's HTTP surface: GET /progress (the
// Progress JSON), GET /metrics (Prometheus text), and — when pprof is
// set — the runtime profiles under /debug/pprof/.
func (c *Coordinator) Handler(pprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Progress())
	})
	mux.Handle("GET /metrics", c.reg.Handler())
	if pprof {
		obs.RegisterPprof(mux)
	}
	return mux
}

// buildRegistry wires the coordinator's scrape document. Static
// instruments (counters, the cell-duration histogram) are fed by the
// protocol path; everything else is computed from live state at scrape
// time.
func (c *Coordinator) buildRegistry() {
	r := obs.NewRegistry()
	obs.RegisterBuildInfo(r)
	r.GaugeFunc("ripki_sweep_uptime_seconds", "Seconds since the coordinator started.",
		func() float64 { return time.Since(c.started).Seconds() })
	r.GaugeFunc("ripki_sweep_cells_total", "Cells in the expanded plan.",
		func() float64 { return float64(len(c.plan.Cells)) })
	r.GaugeFunc("ripki_sweep_cells_completed", "Cells with an accepted partial (including resumed ones).",
		func() float64 { return float64(c.leases.stats().done) })
	r.GaugeFunc("ripki_sweep_cells_leased", "Cells currently leased to workers.",
		func() float64 { return float64(c.leases.stats().leased) })
	r.GaugeFunc("ripki_sweep_cells_pending", "Cells waiting for a worker.",
		func() float64 { return float64(c.leases.stats().pending) })
	r.GaugeFunc("ripki_sweep_cells_resumed", "Completed cells loaded from the checkpoint journal at startup.",
		func() float64 { return float64(c.resumed) })
	r.GaugeFunc("ripki_sweep_workers_connected", "Workers currently connected.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			n := 0
			for _, ws := range c.workers {
				if ws.connected {
					n++
				}
			}
			return float64(n)
		})
	r.GaugeFunc("ripki_sweep_checkpoint_journaled_cells", "Cells durably journaled (0 when not checkpointing).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.journaled)
		})
	c.partialsTotal = r.Counter("ripki_sweep_partials_received_total", "Partial frames accepted from workers (including duplicates).")
	c.duplicates = r.Counter("ripki_sweep_duplicate_partials_total", "Partials for already-completed cells (expired-but-alive leases).")
	c.cellSeconds = r.Histogram("ripki_sweep_cell_seconds", "Lease-grant to partial-acceptance time per completed cell.",
		obs.ExpBuckets(0.01, 4, 10))
	c.reg = r
}

// workerConnected registers a worker after its hello handshake.
func (c *Coordinator) workerConnected(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[name] = &workerStat{connected: true, since: time.Now()}
}

// workerDisconnected freezes the worker's lifetime clock.
func (c *Coordinator) workerDisconnected(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ws, ok := c.workers[name]; ok {
		ws.connected = false
		ws.last = time.Now()
	}
}

// creditWorker counts one first-delivered cell for the worker.
func (c *Coordinator) creditWorker(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ws, ok := c.workers[name]; ok {
		ws.completed++
	}
}
