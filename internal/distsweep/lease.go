package distsweep

import (
	"sync"
	"time"
)

// cellState tracks one grid cell through the lease lifecycle.
type cellState int

const (
	cellPending cellState = iota // waiting for a worker
	cellLeased                   // assigned, result outstanding
	cellDone                     // partial received (and journaled)
)

// leaseTable hands out contiguous ranges of pending cells and takes
// them back when a worker dies: a lease that is neither completed nor
// renewed within the timeout returns to pending, so a killed worker
// only ever *delays* its cells. Completion is per cell — a lease whose
// worker already delivered some of its range gives back only the rest.
//
// The table is deliberately ignorant of sockets; the coordinator maps
// connections to the opaque worker keys used here.
type leaseTable struct {
	mu      sync.Mutex
	cond    *sync.Cond
	timeout time.Duration
	chunk   int // max cells per lease

	state   []cellState
	worker  []string    // holder of each leased cell
	expires []time.Time // per leased cell
	granted []time.Time // when each leased cell was last handed out
	left    int         // cells not yet done
	closed  bool        // coordinator shutting down
}

func newLeaseTable(cells int, timeout time.Duration, chunk int) *leaseTable {
	if chunk < 1 {
		chunk = 1
	}
	lt := &leaseTable{
		timeout: timeout,
		chunk:   chunk,
		state:   make([]cellState, cells),
		worker:  make([]string, cells),
		expires: make([]time.Time, cells),
		granted: make([]time.Time, cells),
		left:    cells,
	}
	lt.cond = sync.NewCond(&lt.mu)
	return lt
}

// markDone pre-completes a cell (checkpoint resume) before any worker
// connects.
func (lt *leaseTable) markDone(cell int) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.state[cell] != cellDone {
		lt.state[cell] = cellDone
		lt.left--
	}
}

// next blocks until it can grant the worker a contiguous pending range
// (returning first, count, false) or the sweep is finished or shutting
// down (returning ok=false). Expired leases are reaped on every pass,
// so a dead worker's range reappears here without any dedicated timer —
// the coordinator's ticker just broadcasts the condition periodically.
func (lt *leaseTable) next(worker string) (first, count int, ok bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for {
		if lt.left == 0 || lt.closed {
			return 0, 0, false
		}
		lt.reapLocked(time.Now())
		if first, count := lt.grabLocked(worker); count > 0 {
			return first, count, true
		}
		lt.cond.Wait()
	}
}

// grabLocked finds the first contiguous run of pending cells, up to
// chunk long, and leases it.
func (lt *leaseTable) grabLocked(worker string) (first, count int) {
	i := 0
	for i < len(lt.state) && lt.state[i] != cellPending {
		i++
	}
	if i == len(lt.state) {
		return 0, 0
	}
	first = i
	now := time.Now()
	deadline := now.Add(lt.timeout)
	for i < len(lt.state) && lt.state[i] == cellPending && count < lt.chunk {
		lt.state[i] = cellLeased
		lt.worker[i] = worker
		lt.expires[i] = deadline
		lt.granted[i] = now
		i++
		count++
	}
	return first, count
}

// reapLocked returns expired leases to pending.
func (lt *leaseTable) reapLocked(now time.Time) {
	woke := false
	for i, st := range lt.state {
		if st == cellLeased && now.After(lt.expires[i]) {
			lt.state[i] = cellPending
			lt.worker[i] = ""
			woke = true
		}
	}
	if woke {
		lt.cond.Broadcast()
	}
}

// complete marks a cell done no matter who holds its lease: partials
// are deterministic, so a late delivery from an expired lease is as
// good as the re-leased one. It reports whether the cell was newly
// completed (the caller journals and stores only then), whether the
// whole sweep just finished, and how long the cell's last lease was out
// (zero when the cell was never leased, e.g. a checkpoint resume).
func (lt *leaseTable) complete(cell int) (newlyDone, allDone bool, held time.Duration) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.state[cell] != cellDone {
		if lt.state[cell] == cellLeased {
			held = time.Since(lt.granted[cell])
		}
		lt.state[cell] = cellDone
		lt.worker[cell] = ""
		lt.left--
		newlyDone = true
	}
	if lt.left == 0 {
		lt.cond.Broadcast()
	}
	return newlyDone, lt.left == 0, held
}

// release returns every cell the worker still holds to pending — called
// when its connection drops, so a crash is repaired at once instead of
// waiting out the lease timeout.
func (lt *leaseTable) release(worker string) (released int) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for i, st := range lt.state {
		if st == cellLeased && lt.worker[i] == worker {
			lt.state[i] = cellPending
			lt.worker[i] = ""
			released++
		}
	}
	if released > 0 {
		lt.cond.Broadcast()
	}
	return released
}

// poke re-evaluates every blocked next() — the coordinator ticks this
// so lease expiry is noticed even when no other event fires.
func (lt *leaseTable) poke() {
	lt.mu.Lock()
	lt.cond.Broadcast()
	lt.mu.Unlock()
}

// close unblocks every waiter with ok=false (coordinator shutdown).
func (lt *leaseTable) close() {
	lt.mu.Lock()
	lt.closed = true
	lt.cond.Broadcast()
	lt.mu.Unlock()
}

// remaining reports cells not yet done.
func (lt *leaseTable) remaining() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.left
}

// leaseStats is one consistent view of the table, for the progress
// endpoint and the metrics scrape.
type leaseStats struct {
	done, leased, pending int
	byWorker              map[string]int // currently leased cells per holder
}

// stats snapshots the lease lifecycle counts under one lock hold.
func (lt *leaseTable) stats() leaseStats {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	st := leaseStats{byWorker: make(map[string]int)}
	for i, s := range lt.state {
		switch s {
		case cellDone:
			st.done++
		case cellLeased:
			st.leased++
			st.byWorker[lt.worker[i]]++
		default:
			st.pending++
		}
	}
	return st
}
