package distsweep

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ripki/internal/sweep"
)

// distGrid is the test grid: 3 cells × 2 replicates of fast, tiny
// worlds — big enough to shard, small enough to run several full
// sweeps per test.
func distGrid() sweep.Grid {
	return sweep.Grid{
		Scenarios:     []string{"baseline", "roa-churn", "hijack-window"},
		MasterSeed:    1,
		Replicates:    2,
		Domains:       []int{800},
		Ticks:         []time.Duration{30 * time.Second},
		Durations:     []time.Duration{2 * time.Minute},
		SampleEvery:   []int{4},
		SampleDomains: []int{50},
	}
}

// render dumps both output formats for byte comparison.
func render(t *testing.T, res *sweep.Result) (tsv, js []byte) {
	t.Helper()
	var tb, jb bytes.Buffer
	if err := res.WriteTSV(&tb); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), jb.Bytes()
}

// reference runs the grid in-process, the bytes every distributed
// topology must reproduce.
func reference(t *testing.T, g sweep.Grid, streaming bool) (tsv, js []byte) {
	t.Helper()
	res, err := sweep.Run(context.Background(), g, sweep.Options{Workers: 2, ShareWorlds: true, Streaming: streaming})
	if err != nil {
		t.Fatal(err)
	}
	return render(t, res)
}

// testLog collects coordinator/worker log lines thread-safely.
type testLog struct {
	mu    sync.Mutex
	lines []string
}

func (l *testLog) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

// runDistributed executes the grid with a coordinator and n Work
// workers, returning the assembled result.
func runDistributed(t *testing.T, g sweep.Grid, streaming bool, workers int, cfg CoordinatorConfig) *sweep.Result {
	t.Helper()
	cfg.Grid = g
	cfg.Streaming = streaming
	if cfg.Logf == nil {
		cfg.Logf = func(f string, a ...any) { t.Logf("coord: "+f, a...) }
	}
	coord, err := NewCoordinator("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		i := i
		go func() {
			errs <- Work(ctx, coord.Addr(), WorkerConfig{
				Options: sweep.Options{Workers: 2, ShareWorlds: true},
				Logf:    func(f string, a ...any) { t.Logf("worker %d: "+f, append([]any{i}, a...)...) },
			})
		}()
	}
	res, err := coord.Run(ctx)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	return res
}

// TestDistributedByteIdentical: coordinator + 2 workers over real TCP
// produce the single-process bytes, in exact and streaming mode, with
// per-cell leases forcing the work to actually spread.
func TestDistributedByteIdentical(t *testing.T) {
	g := distGrid()
	for _, streaming := range []bool{false, true} {
		wantTSV, wantJSON := reference(t, g, streaming)
		res := runDistributed(t, g, streaming, 2, CoordinatorConfig{LeaseCells: 1})
		gotTSV, gotJSON := render(t, res)
		if !bytes.Equal(wantTSV, gotTSV) {
			t.Fatalf("streaming=%v: TSV diverged from single-process run", streaming)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Fatalf("streaming=%v: JSON diverged from single-process run", streaming)
		}
	}
}

// leaseOneThenDie is a protocol-level fake worker: it takes exactly one
// lease, runs it honestly, delivers the partials, and hangs up. It lets
// the tests create deterministic "worker died mid-sweep" and "partial
// progress then crash" situations that real Work workers would only
// produce by timing luck.
func leaseOneThenDie(t *testing.T, addr string, opt sweep.Options) (completed []int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if err := writeFrame(conn, &frame{Type: frameHello, Version: protocolVersion}); err != nil {
		t.Fatal(err)
	}
	hello, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := sweep.ParseGrid(hello.Grid)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := grid.Plan()
	if err != nil {
		t.Fatal(err)
	}
	opt.Streaming = hello.Streaming
	if err := writeFrame(conn, &frame{Type: frameLease}); err != nil {
		t.Fatal(err)
	}
	grant, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if grant.Type != frameLease {
		return nil // nothing left to lease
	}
	partials, err := sweep.RunCells(context.Background(), plan, opt, grant.First, grant.Count)
	if err != nil {
		t.Fatal(err)
	}
	for i := range partials {
		if err := writeFrame(conn, &frame{Type: framePartial, Cell: partials[i].Cell, Partial: &partials[i]}); err != nil {
			t.Fatal(err)
		}
		if ack, err := readFrame(br); err != nil || ack.Type != frameAck {
			t.Fatalf("ack: %v %+v", err, ack)
		}
		completed = append(completed, partials[i].Cell)
	}
	return completed
}

// TestWorkerDeathReleasesLeases: a worker that completes one lease and
// disconnects leaves the rest of the grid to a survivor, and the
// output is still byte-identical.
func TestWorkerDeathReleasesLeases(t *testing.T) {
	g := distGrid()
	wantTSV, _ := reference(t, g, false)

	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{Grid: g, LeaseCells: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	type runOut struct {
		res *sweep.Result
		err error
	}
	runCh := make(chan runOut, 1)
	go func() {
		res, err := coord.Run(ctx)
		runCh <- runOut{res, err}
	}()

	// The doomed worker completes exactly one cell, then vanishes.
	done := leaseOneThenDie(t, coord.Addr(), sweep.Options{Workers: 2, ShareWorlds: true})
	if len(done) != 1 {
		t.Fatalf("fake worker completed %v, want one cell", done)
	}

	errs := make(chan error, 1)
	go func() {
		errs <- Work(ctx, coord.Addr(), WorkerConfig{Options: sweep.Options{Workers: 2, ShareWorlds: true}})
	}()
	out := <-runCh
	if out.err != nil {
		t.Fatalf("coordinator: %v", out.err)
	}
	res := out.res
	if err := <-errs; err != nil {
		t.Fatalf("surviving worker: %v", err)
	}
	gotTSV, _ := render(t, res)
	if !bytes.Equal(wantTSV, gotTSV) {
		t.Fatal("output diverged after a worker death")
	}
}

// TestLeaseTimeoutReclaims: a worker that takes a lease and goes silent
// (connection held open, nothing delivered) loses it after the timeout
// and the sweep still finishes byte-identically.
func TestLeaseTimeoutReclaims(t *testing.T) {
	g := distGrid()
	wantTSV, _ := reference(t, g, false)

	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		Grid: g, LeaseCells: 1, LeaseTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	type runOut struct {
		res *sweep.Result
		err error
	}
	runCh := make(chan runOut, 1)
	go func() {
		res, err := coord.Run(ctx)
		runCh <- runOut{res, err}
	}()

	// Silent worker: hello, one lease, then nothing — but the connection
	// stays open, so only the timeout (not a disconnect) can reclaim it.
	silent, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	sbr := bufio.NewReader(silent)
	if err := writeFrame(silent, &frame{Type: frameHello, Version: protocolVersion}); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(sbr); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(silent, &frame{Type: frameLease}); err != nil {
		t.Fatal(err)
	}
	grant, err := readFrame(sbr)
	if err != nil || grant.Type != frameLease {
		t.Fatalf("silent worker lease: %v %+v", err, grant)
	}

	errs := make(chan error, 1)
	go func() {
		errs <- Work(ctx, coord.Addr(), WorkerConfig{Options: sweep.Options{Workers: 2, ShareWorlds: true}})
	}()
	out := <-runCh
	if out.err != nil {
		t.Fatalf("coordinator: %v", out.err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("worker: %v", err)
	}
	gotTSV, _ := render(t, out.res)
	if !bytes.Equal(wantTSV, gotTSV) {
		t.Fatal("output diverged after a lease timeout")
	}
}

// TestCheckpointResume: kill the coordinator after some cells are
// journaled, then resume into a fresh coordinator — only unfinished
// cells are leased again, and the final bytes match the single-process
// run. Both modes, because the journal stores different partial shapes.
func TestCheckpointResume(t *testing.T) {
	for _, streaming := range []bool{false, true} {
		g := distGrid()
		wantTSV, wantJSON := reference(t, g, streaming)
		dir := t.TempDir()

		// Session 1: one fake worker completes one cell (journaled), then
		// the coordinator is killed.
		c1, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
			Grid: g, Streaming: streaming, LeaseCells: 1, CheckpointDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx1, cancel1 := context.WithCancel(context.Background())
		runDone := make(chan error, 1)
		go func() { _, err := c1.Run(ctx1); runDone <- err }()
		done := leaseOneThenDie(t, c1.Addr(), sweep.Options{Workers: 2, ShareWorlds: true})
		if len(done) != 1 {
			t.Fatalf("session 1 completed %v, want one cell", done)
		}
		cancel1() // kill the coordinator mid-grid
		if err := <-runDone; err != context.Canceled {
			t.Fatalf("killed coordinator returned %v", err)
		}
		if recs, _ := filepath.Glob(filepath.Join(dir, "cell-*.json")); len(recs) != 1 {
			t.Fatalf("journal holds %d records after one ack, want 1", len(recs))
		}

		// Session 2: resume. The journaled cell must not be leased again.
		log := &testLog{}
		c2, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
			Grid: g, Streaming: streaming, LeaseCells: 1, CheckpointDir: dir, Logf: log.logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx2, cancel2 := context.WithTimeout(context.Background(), 3*time.Minute)
		errs := make(chan error, 1)
		go func() {
			errs <- Work(ctx2, c2.Addr(), WorkerConfig{Options: sweep.Options{Workers: 2, ShareWorlds: true}})
		}()
		res, err := c2.Run(ctx2)
		if err != nil {
			t.Fatalf("resumed coordinator: %v", err)
		}
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
		cancel2()

		log.mu.Lock()
		var leased int
		for _, l := range log.lines {
			if strings.HasPrefix(l, "leased cells") {
				leased++
			}
		}
		log.mu.Unlock()
		if want := len(c2.Plan().Cells) - len(done); leased != want {
			t.Errorf("resume leased %d ranges, want %d (journaled cells must not re-run)", leased, want)
		}
		gotTSV, gotJSON := render(t, res)
		if !bytes.Equal(wantTSV, gotTSV) || !bytes.Equal(wantJSON, gotJSON) {
			t.Fatalf("streaming=%v: resumed output diverged from single-process run", streaming)
		}
	}
}

// TestResumeOnlyFromFullJournal: a journal holding every cell assembles
// with no workers at all.
func TestResumeOnlyFromFullJournal(t *testing.T) {
	g := distGrid()
	wantTSV, _ := reference(t, g, false)
	dir := t.TempDir()

	res := runDistributed(t, g, false, 1, CoordinatorConfig{LeaseCells: 2, CheckpointDir: dir})
	firstTSV, _ := render(t, res)
	if !bytes.Equal(wantTSV, firstTSV) {
		t.Fatal("checkpointed run diverged")
	}

	c, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{Grid: g, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res2, err := c.Run(ctx) // no workers: must complete purely from the journal
	if err != nil {
		t.Fatal(err)
	}
	gotTSV, _ := render(t, res2)
	if !bytes.Equal(wantTSV, gotTSV) {
		t.Fatal("journal-only assembly diverged")
	}
}

// TestVersionMismatchRefused: a worker speaking a different protocol
// version is turned away with an explanatory error, not garbage.
func TestVersionMismatchRefused(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{Grid: distGrid()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { coord.Run(ctx); close(runDone) }()
	defer func() { cancel(); <-runDone }()

	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, &frame{Type: frameHello, Version: protocolVersion + 1}); err != nil {
		t.Fatal(err)
	}
	_, err = readFrame(bufio.NewReader(conn))
	if err == nil || !strings.Contains(err.Error(), "protocol version") {
		t.Fatalf("version mismatch produced %v, want a protocol-version refusal", err)
	}
}

// TestJournalRefusesForeignPlan: checkpoint records from a different
// grid (different plan hash) abort the resume instead of mixing grids.
func TestJournalRefusesForeignPlan(t *testing.T) {
	dir := t.TempDir()
	j1, err := openJournal(dir, "hash-a", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.write(&sweep.CellPartial{Cell: 0}); err != nil {
		t.Fatal(err)
	}
	j2, err := openJournal(dir, "hash-b", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.load(); err == nil || !strings.Contains(err.Error(), "refusing to mix grids") {
		t.Fatalf("foreign-plan journal loaded: %v", err)
	}
	// Mode mismatch is refused the same way.
	j3, err := openJournal(dir, "hash-a", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j3.load(); err == nil || !strings.Contains(err.Error(), "mode") {
		t.Fatalf("cross-mode journal loaded: %v", err)
	}
	// Torn temp files are ignored, not fatal.
	if err := os.WriteFile(filepath.Join(dir, ".cell-000001-torn.tmp"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if recs, err := j1.load(); err != nil || len(recs) != 1 {
		t.Fatalf("journal with a torn temp file: %v, %d records", err, len(recs))
	}
}

// TestWorkerCancelsOnDroppedCoordinator: when the coordinator vanishes
// mid-lease, the worker's watchdog cancels the in-flight simulations
// and Work returns an error promptly instead of computing for nobody.
func TestWorkerCancelsOnDroppedCoordinator(t *testing.T) {
	// A fake coordinator: speaks hello, grants one big lease, then drops
	// the connection while the worker is simulating.
	g := distGrid()
	plan, err := g.Plan()
	if err != nil {
		t.Fatal(err)
	}
	gridWire, err := sweep.MarshalGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		br := bufio.NewReader(conn)
		if _, err := readFrame(br); err != nil {
			return
		}
		writeFrame(conn, &frame{Type: frameHello, Version: protocolVersion, Grid: gridWire, PlanHash: plan.Hash()})
		if _, err := readFrame(br); err != nil { // lease request
			return
		}
		writeFrame(conn, &frame{Type: frameLease, First: 0, Count: len(plan.Cells)})
		time.Sleep(300 * time.Millisecond) // let the worker get into the sims
		conn.Close()
	}()

	start := time.Now()
	err = Work(context.Background(), ln.Addr().String(), WorkerConfig{
		Options: sweep.Options{Workers: 1, ShareWorlds: true},
	})
	if err == nil {
		t.Fatal("worker returned nil after its coordinator vanished")
	}
	// The full lease takes many seconds; a watchdog-cancelled worker
	// returns in a small fraction of that.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("worker took %v to notice the dropped coordinator", elapsed)
	}
}
