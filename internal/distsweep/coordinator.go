package distsweep

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"ripki/internal/obs"
	"ripki/internal/sweep"
)

// DefaultLeaseTimeout is how long a leased cell range may stay silent
// before the coordinator hands it to someone else. Generous relative to
// typical cell runtimes: an expired-but-alive worker only wastes work
// (its late partial is deterministic and still accepted), it can never
// corrupt output.
const DefaultLeaseTimeout = 2 * time.Minute

// CoordinatorConfig configures a distributed sweep's coordinator side.
type CoordinatorConfig struct {
	// Grid is the sweep to shard; the coordinator expands it once and
	// ships it (not the expansion) to every worker.
	Grid sweep.Grid
	// Streaming selects the execution mode for every worker; the
	// assembled output is marked exactly like a local -streaming run.
	Streaming bool
	// LeaseTimeout bounds how long an unacknowledged lease blocks its
	// cells (default DefaultLeaseTimeout).
	LeaseTimeout time.Duration
	// LeaseCells is the max cells per lease (default: cells/16, min 1).
	// Bigger leases amortise world generation across a worker's cells;
	// smaller ones spread better and lose less to a kill.
	LeaseCells int
	// CheckpointDir, when set, journals every completed cell durably
	// (one fsynced record each) and — if matching records already exist
	// there — resumes, leasing only the unfinished cells.
	CheckpointDir string
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Coordinator owns a sweep being sharded across workers: the listener,
// the lease table, the checkpoint journal, and the arriving partials.
type Coordinator struct {
	cfg      CoordinatorConfig
	plan     *sweep.Plan
	hash     string
	gridWire []byte
	ln       net.Listener
	leases   *leaseTable
	journal  *journal // nil when not checkpointing
	started  time.Time
	resumed  int // cells pre-completed from the checkpoint

	// Observability (see progress.go): the scrape registry and the
	// instruments the protocol path feeds.
	reg           *obs.Registry
	partialsTotal *obs.Counter
	duplicates    *obs.Counter
	cellSeconds   *obs.Histogram

	mu          sync.Mutex
	partials    map[int]sweep.CellPartial
	workers     map[string]*workerStat
	journaled   int       // cells durably journaled (incl. resumed)
	lastJournal time.Time // last successful journal write
}

// workerStat is one worker connection's lifetime bookkeeping (guarded
// by Coordinator.mu).
type workerStat struct {
	connected bool
	since     time.Time // connect time
	last      time.Time // disconnect time (when !connected)
	completed int       // cells this worker delivered first
}

// NewCoordinator expands the grid, binds addr (use ":0" or
// "127.0.0.1:0" to let the kernel pick a port — Addr reports it), and
// loads any matching checkpoint records so already-finished cells are
// never re-leased.
func NewCoordinator(addr string, cfg CoordinatorConfig) (*Coordinator, error) {
	plan, err := cfg.Grid.Plan()
	if err != nil {
		return nil, err
	}
	gridWire, err := sweep.MarshalGrid(cfg.Grid)
	if err != nil {
		return nil, err
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = DefaultLeaseTimeout
	}
	if cfg.LeaseCells <= 0 {
		cfg.LeaseCells = len(plan.Cells) / 16
		if cfg.LeaseCells < 1 {
			cfg.LeaseCells = 1
		}
	}
	c := &Coordinator{
		cfg:      cfg,
		plan:     plan,
		hash:     plan.Hash(),
		gridWire: gridWire,
		leases:   newLeaseTable(len(plan.Cells), cfg.LeaseTimeout, cfg.LeaseCells),
		started:  time.Now(),
		partials: make(map[int]sweep.CellPartial),
		workers:  make(map[string]*workerStat),
	}
	c.buildRegistry()
	if cfg.CheckpointDir != "" {
		j, err := openJournal(cfg.CheckpointDir, c.hash, cfg.Streaming)
		if err != nil {
			return nil, err
		}
		c.journal = j
		resumed, err := j.load()
		if err != nil {
			return nil, err
		}
		for cell, p := range resumed {
			if cell < 0 || cell >= len(plan.Cells) {
				return nil, fmt.Errorf("distsweep: checkpoint names cell %d outside the plan's %d cells", cell, len(plan.Cells))
			}
			c.partials[cell] = p
			c.leases.markDone(cell)
		}
		c.resumed = len(resumed)
		c.journaled = len(resumed)
		if len(resumed) > 0 {
			c.logf("resumed %d/%d cells from %s", len(resumed), len(plan.Cells), cfg.CheckpointDir)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.ln = ln
	return c, nil
}

// Plan returns the coordinator's expansion (for progress headers).
func (c *Coordinator) Plan() *sweep.Plan { return c.plan }

// Addr is the bound listen address, for workers and tests.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Run serves workers until every cell has a partial, then assembles and
// returns the Result — byte-identical, through WriteTSV/WriteJSON, to
// running the same grid and mode in one process. Cancelling ctx stops
// serving and returns ctx's error; completed cells stay in the journal
// for a later resume.
func (c *Coordinator) Run(ctx context.Context) (*sweep.Result, error) {
	done := make(chan struct{})   // all cells complete
	closed := make(chan struct{}) // shutdown ordered
	var finishOnce sync.Once
	finish := func() { finishOnce.Do(func() { close(done) }) }
	if c.leases.remaining() == 0 {
		finish() // fully resumed from checkpoint: nothing to serve
	}
	var wg sync.WaitGroup

	// Ticker: surface lease expiry to blocked next() calls.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := c.cfg.LeaseTimeout / 4
		if tick > time.Second {
			tick = time.Second
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-closed:
				return
			case <-t.C:
				c.leases.poke()
			}
		}
	}()

	// Accept loop.
	var conns sync.Map // net.Conn → struct{}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := c.ln.Accept()
			if err != nil {
				return // listener closed: shutdown
			}
			conns.Store(conn, struct{}{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conns.Delete(conn)
				c.serve(conn, finish)
			}()
		}
	}()

	var runErr error
	select {
	case <-done:
	case <-ctx.Done():
		runErr = ctx.Err()
	}
	close(closed)
	c.leases.close()
	c.ln.Close()
	if runErr != nil {
		// Cancelled: tear connections down at once.
		conns.Range(func(k, _ any) bool { k.(net.Conn).Close(); return true })
	} else {
		// Completed: drain, don't slam. Every connected worker still has a
		// final ack or a done frame coming; give each conversation a
		// bounded window to finish so workers exit cleanly, then close
		// whatever is left (a worker that never speaks again).
		deadline := time.Now().Add(2 * time.Second)
		conns.Range(func(k, _ any) bool { k.(net.Conn).SetDeadline(deadline); return true })
	}
	wg.Wait()
	conns.Range(func(k, _ any) bool { k.(net.Conn).Close(); return true })
	if runErr != nil {
		return nil, runErr
	}

	c.mu.Lock()
	ordered := make([]sweep.CellPartial, 0, len(c.partials))
	for ci := range c.plan.Cells {
		if p, ok := c.partials[ci]; ok {
			ordered = append(ordered, p)
		}
	}
	c.mu.Unlock()
	return sweep.AssembleResult(c.plan, c.cfg.Streaming, ordered)
}

// serve speaks the protocol with one worker connection until it
// disconnects or the sweep finishes. Any leases the worker still holds
// on exit return to pending immediately.
func (c *Coordinator) serve(conn net.Conn, finish func()) {
	worker := conn.RemoteAddr().String()
	defer conn.Close()
	defer func() {
		if n := c.leases.release(worker); n > 0 {
			c.logf("worker %s disconnected; re-leasing %d cells", worker, n)
		}
	}()

	br := bufio.NewReader(conn)
	hello, err := readFrame(br)
	if err != nil {
		return
	}
	if hello.Type != frameHello {
		refuse(conn, "expected hello, got %s", hello.Type)
		return
	}
	if hello.Version != protocolVersion {
		refuse(conn, "protocol version %d, coordinator speaks %d — rebuild the older side", hello.Version, protocolVersion)
		c.logf("worker %s refused: protocol version %d != %d", worker, hello.Version, protocolVersion)
		return
	}
	if err := writeFrame(conn, &frame{
		Type: frameHello, Version: protocolVersion,
		Grid: c.gridWire, Streaming: c.cfg.Streaming, PlanHash: c.hash,
	}); err != nil {
		return
	}
	c.logf("worker %s connected", worker)
	c.workerConnected(worker)
	defer c.workerDisconnected(worker)

	for {
		req, err := readFrame(br)
		if err != nil {
			return // disconnect; deferred release repairs the leases
		}
		switch req.Type {
		case frameLease:
			first, count, ok := c.leases.next(worker)
			if !ok {
				_ = writeFrame(conn, &frame{Type: frameDone})
				return
			}
			c.logf("leased cells [%d,%d) to %s", first, first+count, worker)
			if err := writeFrame(conn, &frame{Type: frameLease, First: first, Count: count}); err != nil {
				return
			}
		case framePartial:
			if req.Partial == nil || req.Partial.Cell != req.Cell {
				refuse(conn, "partial frame for cell %d is malformed", req.Cell)
				return
			}
			allDone, err := c.accept(req.Partial, worker)
			if err != nil {
				refuse(conn, "%v", err)
				c.logf("rejecting partial for cell %d from %s: %v", req.Cell, worker, err)
				return
			}
			if err := writeFrame(conn, &frame{Type: frameAck, Cell: req.Cell}); err != nil {
				return
			}
			if allDone {
				finish()
			}
		default:
			refuse(conn, "unexpected %s frame", req.Type)
			return
		}
	}
}

// accept stores (and journals) one arriving partial, reporting whether
// it completed the whole sweep (the caller acks first, then signals
// completion, so the delivering worker always gets its ack). First
// writer wins; a duplicate from an expired-but-alive lease is
// deterministic and is simply acknowledged again. The journal write
// happens before the cell is marked done, so an ack is only ever sent
// for a durable record.
func (c *Coordinator) accept(p *sweep.CellPartial, worker string) (allDone bool, err error) {
	if p.Cell < 0 || p.Cell >= len(c.plan.Cells) {
		return false, fmt.Errorf("cell %d outside the plan's %d cells", p.Cell, len(c.plan.Cells))
	}
	c.partialsTotal.Inc()
	c.mu.Lock()
	_, have := c.partials[p.Cell]
	c.mu.Unlock()
	if have {
		c.duplicates.Inc()
		return false, nil
	}
	if c.journal != nil {
		if err := c.journal.write(p); err != nil {
			return false, err
		}
		c.mu.Lock()
		c.journaled++
		c.lastJournal = time.Now()
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.partials[p.Cell] = *p
	c.mu.Unlock()
	newlyDone, allDone, held := c.leases.complete(p.Cell)
	if newlyDone {
		c.cellSeconds.Observe(held.Seconds())
		c.creditWorker(worker)
		c.logf("cell %d done (%d/%d) from %s", p.Cell, len(c.plan.Cells)-c.leases.remaining(), len(c.plan.Cells), worker)
	}
	return allDone, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
