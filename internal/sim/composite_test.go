package sim

import (
	"bytes"
	"strings"
	"testing"

	"ripki/internal/router"
)

// stripTSVHeader drops the "# ripki-sim scenario=..." comment line —
// the only place the scenario label appears in TSV output.
func stripTSVHeader(b []byte) []byte {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[i+1:]
	}
	return b
}

// TestParseSpec checks canonicalisation and rejection of empty parts.
func TestParseSpec(t *testing.T) {
	names, err := ParseSpec("rp-lag+roa-churn")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(names, "+"); got != "roa-churn+rp-lag" {
		t.Errorf("canonical order = %q, want roa-churn+rp-lag", got)
	}
	for _, bad := range []string{"a+", "+a", "a++b", "+"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted an empty component", bad)
		}
	}
}

// TestCompositeConstruction checks registry validation, canonical
// naming, and descriptions for composition specs.
func TestCompositeConstruction(t *testing.T) {
	sc, err := NewScenario("rp-lag+roa-churn", nil)
	if err != nil {
		t.Fatal(err)
	}
	comp, ok := sc.(*Composite)
	if !ok {
		t.Fatalf("NewScenario returned %T, want *Composite", sc)
	}
	if comp.Name() != "roa-churn+rp-lag" {
		t.Errorf("Name() = %q, want canonical roa-churn+rp-lag", comp.Name())
	}
	if _, err := NewScenario("roa-churn+no-such-thing", nil); err == nil {
		t.Error("unknown component accepted")
	}
	if d := Describe("roa-churn+rp-lag"); !strings.Contains(d, "roa-churn") || !strings.Contains(d, "rp-lag") {
		t.Errorf("Describe = %q, want both component names", d)
	}
	if Describe("roa-churn+no-such-thing") != "" {
		t.Error("Describe of a bad composition should be empty")
	}
}

// TestParamRouting checks the "name.key" prefix contract: routed keys
// reach only their component, undotted keys reach every component, and
// a prefix naming no component fails loudly.
func TestParamRouting(t *testing.T) {
	sc, err := NewScenario("roa-churn+hijack-window", Params{
		"roa-churn.issue":   "5",
		"hijack-window.cdn": "akamai",
		"every_ticks":       "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	comp := sc.(*Composite)
	byName := map[string]Params{}
	for _, c := range comp.comps {
		byName[c.name] = c.params
	}
	if got := byName["roa-churn"].Int("issue", -1); got != 5 {
		t.Errorf("roa-churn issue = %d, want 5", got)
	}
	if _, leaked := byName["hijack-window"]["issue"]; leaked {
		t.Error("routed key leaked into the other component")
	}
	if got := byName["hijack-window"].String("cdn", ""); got != "akamai" {
		t.Errorf("hijack-window cdn = %q, want akamai", got)
	}
	for name, p := range byName {
		if got := p.Int("every_ticks", -1); got != 2 {
			t.Errorf("%s: shared key every_ticks = %d, want 2", name, got)
		}
	}
	if _, err := NewScenario("roa-churn+rp-lag", Params{"hijack-window.cdn": "akamai"}); err == nil {
		t.Error("param addressing a non-member component accepted")
	}
}

// TestComposeBaselineNoOp is the seed-stream regression test: composing
// with baseline (which schedules nothing) must be byte-identical to the
// component alone, modulo the scenario label in the header — proof that
// each component's RNG stream is keyed by (seed, name, occurrence), not
// by its position in a composition.
func TestComposeBaselineNoOp(t *testing.T) {
	alone, aloneTSV := runTSV(t, testConfig("roa-churn"))
	composed, composedTSV := runTSV(t, testConfig("roa-churn+baseline"))
	if composed.Scenario != "baseline+roa-churn" {
		t.Errorf("composite series labelled %q, want canonical baseline+roa-churn", composed.Scenario)
	}
	if !bytes.Equal(stripTSVHeader(aloneTSV), stripTSVHeader(composedTSV)) {
		t.Fatalf("roa-churn+baseline diverged from roa-churn alone:\n--- alone ---\n%s\n--- composed ---\n%s",
			aloneTSV, composedTSV)
	}
	if len(alone.Events) != len(composed.Events) {
		t.Fatalf("event counts differ: alone %d, composed %d", len(alone.Events), len(composed.Events))
	}
	for i := range alone.Events {
		if alone.Events[i] != composed.Events[i] {
			t.Fatalf("event %d differs: alone %+v, composed %+v", i, alone.Events[i], composed.Events[i])
		}
	}
}

// TestComposeOrderInsensitive: components run in canonical order and
// the series carries the canonical label, so the two spellings of a
// composition are byte-identical — header included.
func TestComposeOrderInsensitive(t *testing.T) {
	for _, pair := range [][2]string{
		{"roa-churn+hijack-window", "hijack-window+roa-churn"},
		{"rp-lag+hijack-window", "hijack-window+rp-lag"},
	} {
		_, a := runTSV(t, testConfig(pair[0]))
		_, b := runTSV(t, testConfig(pair[1]))
		if !bytes.Equal(a, b) {
			t.Errorf("%q and %q differ:\n--- %s ---\n%s\n--- %s ---\n%s",
				pair[0], pair[1], pair[0], a, pair[1], b)
		}
	}
}

// TestCompositeDeterminism: same seed + composed config ⇒ byte-identical
// output, the PR-1 contract lifted to compositions.
func TestCompositeDeterminism(t *testing.T) {
	for _, spec := range []string{"roa-churn+rp-lag", "hijack-window+roa-churn+rtr-restart"} {
		_, a := runTSV(t, testConfig(spec))
		_, b := runTSV(t, testConfig(spec))
		if !bytes.Equal(a, b) {
			t.Errorf("two runs of %s differ", spec)
		}
	}
}

// TestComposeInteraction is the point of the whole refactor: a hijack
// window opening while slow relying parties chase churn. The rp-lag
// roster must be adopted, churn must ramp coverage, and the hijack must
// land and clear.
func TestComposeInteraction(t *testing.T) {
	ts, _ := runTSV(t, testConfig("hijack-window+rp-lag"))
	fast := ts.Column("vrps_rp-1t")
	slow := ts.Column("vrps_rp-20t")
	if fast == nil || slow == nil {
		t.Fatalf("rp-lag roster not adopted by the composition: %v", ts.Columns)
	}
	vrps := ts.Column("vrps")
	if last := len(vrps) - 1; vrps[last] <= vrps[0] {
		t.Errorf("churn did not ramp coverage inside the composition: %v -> %v", vrps[0], vrps[last])
	}
	legacy := ts.Column("hijacked_legacy")
	window := 0
	for _, v := range legacy {
		window += int(v)
	}
	if window == 0 {
		t.Error("hijack never landed inside the composition")
	}
	if legacy[len(legacy)-1] != 0 {
		t.Error("hijack still active at the horizon")
	}
}

// TestDuplicateComponents: the same scenario twice gets two distinct
// RNG streams (occurrence-keyed), so the composition is a genuinely
// doubled workload, not the same events twice.
func TestDuplicateComponents(t *testing.T) {
	if ComponentSeed(1, "roa-churn", 0) == ComponentSeed(1, "roa-churn", 1) {
		t.Fatal("occurrence does not separate duplicate component streams")
	}
	single, _ := runTSV(t, testConfig("roa-churn"))
	doubled, _ := runTSV(t, testConfig("roa-churn+roa-churn"))
	last := len(single.Rows) - 1
	vs, vd := single.Column("vrps"), doubled.Column("vrps")
	if vd[last] <= vs[last] {
		t.Errorf("doubled churn issued no more VRPs: single %v, doubled %v", vs[last], vd[last])
	}
}

// TestComponentSeedKeying locks the stream-derivation contract: pure,
// name-sensitive, occurrence-sensitive, master-seed-sensitive.
func TestComponentSeedKeying(t *testing.T) {
	if ComponentSeed(1, "a", 0) != ComponentSeed(1, "a", 0) {
		t.Error("not pure")
	}
	if ComponentSeed(1, "a", 0) == ComponentSeed(1, "b", 0) {
		t.Error("name not mixed in")
	}
	if ComponentSeed(1, "a", 0) == ComponentSeed(2, "a", 0) {
		t.Error("master seed not mixed in")
	}
	seen := map[int64]bool{}
	for occ := 0; occ < 100; occ++ {
		s := ComponentSeed(1, "roa-churn", occ)
		if seen[s] {
			t.Fatalf("stream seed collision at occurrence %d", occ)
		}
		seen[s] = true
	}
}

// rosterScenario is a test scenario carrying a fixed RP roster.
type rosterScenario struct {
	name string
	rps  []RPSpec
}

func (r rosterScenario) Name() string               { return r.name }
func (r rosterScenario) Description() string        { return "test roster" }
func (r rosterScenario) Setup(*Simulation) error    { return nil }
func (r rosterScenario) DefaultRPs(Params) []RPSpec { return r.rps }

// TestRPRosterMerge checks the documented merge rule: canonical order,
// first component to name an RP wins, later components append only new
// names.
func TestRPRosterMerge(t *testing.T) {
	a := rosterScenario{name: "a", rps: []RPSpec{
		{Name: "shared", RefreshTicks: 1, Policy: router.PolicyDropInvalid},
		{Name: "only-a", RefreshTicks: 2, Policy: router.PolicyDropInvalid},
	}}
	b := rosterScenario{name: "b", rps: []RPSpec{
		{Name: "shared", RefreshTicks: 9, Policy: router.PolicyAcceptAll}, // conflicts with a's
		{Name: "only-b", RefreshTicks: 3, Policy: router.PolicyAcceptAll},
	}}
	c := &Composite{spec: "a+b", comps: []component{
		{name: "a", scn: a},
		{name: "b", scn: b},
	}}
	got := c.DefaultRPs(Params{})
	want := []RPSpec{a.rps[0], a.rps[1], b.rps[1]}
	if len(got) != len(want) {
		t.Fatalf("merged roster = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("roster[%d] = %+v, want %+v (first component wins on conflict)", i, got[i], want[i])
		}
	}
	// No component with a roster ⇒ nil, so the engine's builtin default
	// applies.
	n := &Composite{spec: "x+y", comps: []component{
		{name: "x", scn: baseline{}},
		{name: "y", scn: baseline{}},
	}}
	if n.DefaultRPs(Params{}) != nil {
		t.Error("rosterless composition should defer to the builtin default")
	}
}

// TestSingleScenarioParamRouting: routing is uniform — a single
// scenario is a one-component composition, so a routed key reaches a
// bare run identically (keeping mixed alone-vs-composed comparisons
// honest) and a mis-addressed key errors instead of silently dropping.
func TestSingleScenarioParamRouting(t *testing.T) {
	cfg := testConfig("roa-churn")
	cfg.Params = Params{"issue": "6"}
	_, undotted := runTSV(t, cfg)
	cfg = testConfig("roa-churn")
	cfg.Params = Params{"roa-churn.issue": "6"}
	_, routed := runTSV(t, cfg)
	if !bytes.Equal(undotted, routed) {
		t.Error("routed param on a single scenario diverged from the undotted spelling")
	}
	if _, err := NewScenario("roa-churn", Params{"rp-lag.slow_ticks": "5"}); err == nil {
		t.Error("param addressing another scenario accepted on a single run")
	}
	// The roster defaulter sees routed params too: rp-lag's slow RP is
	// named after its slow_ticks value.
	cfg = testConfig("rp-lag")
	cfg.Params = Params{"rp-lag.slow_ticks": "30"}
	ts, _ := runTSV(t, cfg)
	if ts.Column("vrps_rp-30t") == nil {
		t.Errorf("routed slow_ticks did not reach DefaultRPs: %v", ts.Columns)
	}
}

// TestRoutedKeyOverridesShared: when the same key arrives both undotted
// (shared) and routed, the routed value deterministically wins for its
// component — never map iteration order.
func TestRoutedKeyOverridesShared(t *testing.T) {
	for i := 0; i < 100; i++ {
		routed, err := routeParams([]string{"roa-churn", "rp-lag"}, Params{
			"issue":           "3",
			"roa-churn.issue": "5",
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := routed[0].Int("issue", -1); got != 5 {
			t.Fatalf("iteration %d: roa-churn issue = %d, want routed 5", i, got)
		}
		if got := routed[1].Int("issue", -1); got != 3 {
			t.Fatalf("iteration %d: rp-lag issue = %d, want shared 3", i, got)
		}
	}
}

// TestSingleSpecIsComposite: every spec normalises to a Composite, so
// param routing, RNG streams, and roster handling have exactly one code
// path.
func TestSingleSpecIsComposite(t *testing.T) {
	sc, err := NewScenario("roa-churn", Params{"issue": "2"})
	if err != nil {
		t.Fatal(err)
	}
	comp, ok := sc.(*Composite)
	if !ok {
		t.Fatalf("NewScenario returned %T, want *Composite", sc)
	}
	if comp.Name() != "roa-churn" || len(comp.Components()) != 1 {
		t.Fatalf("single wrap: name %q components %v", comp.Name(), comp.Components())
	}
}
