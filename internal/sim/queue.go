package sim

import (
	"container/heap"
	"time"
)

// Event classes order simultaneous events into the pipeline's causal
// sequence: scenario mutations happen first, then the cache flushes the
// new VRP state, then relying parties refresh, then the probe samples.
// Within a class, scheduling order breaks ties — so a run is a pure
// function of the schedule, never of map iteration or goroutine timing.
const (
	classScenario = iota
	classFlush
	classRefresh
	classProbe
)

// event is one scheduled action.
type event struct {
	at    time.Time
	class int
	seq   uint64
	fn    func()
}

// eventHeap is a min-heap over (at, class, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	if h[i].class != h[j].class {
		return h[i].class < h[j].class
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Queue is the simulation's priority event queue. It is not safe for
// concurrent use; the engine owns it on the simulation goroutine.
type Queue struct {
	h   eventHeap
	seq uint64
}

// NewQueue creates an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// At schedules fn at the given instant and class.
func (q *Queue) At(at time.Time, class int, fn func()) {
	q.seq++
	heap.Push(&q.h, &event{at: at, class: class, seq: q.seq, fn: fn})
}

// RunDue pops and runs every event due at or before now, in (time,
// class, sequence) order, and returns how many ran. Events may schedule
// further events, including at the current instant; those run in the
// same call.
func (q *Queue) RunDue(now time.Time) int {
	ran := 0
	for len(q.h) > 0 && !q.h[0].at.After(now) {
		e := heap.Pop(&q.h).(*event)
		e.fn()
		ran++
	}
	return ran
}

// NextAt returns the instant of the earliest pending event.
func (q *Queue) NextAt() (time.Time, bool) {
	if len(q.h) == 0 {
		return time.Time{}, false
	}
	return q.h[0].at, true
}
