package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func nanSeries() *TimeSeries {
	return &TimeSeries{
		Scenario: "test",
		Seed:     7,
		Meta:     "domains=1",
		Columns:  []string{"t", "valid", "head_valid"},
		Rows: [][]float64{
			{0, 0.5, math.NaN()},
			{30, 0.25, 1},
		},
	}
}

func TestColumnUnknown(t *testing.T) {
	ts := nanSeries()
	if got := ts.Column("no-such-column"); got != nil {
		t.Errorf("Column on unknown name = %v, want nil", got)
	}
	if got := ts.Column(""); got != nil {
		t.Errorf("Column(\"\") = %v, want nil", got)
	}
	if got := ts.Column("valid"); len(got) != 2 || got[0] != 0.5 || got[1] != 0.25 {
		t.Errorf("Column(valid) = %v", got)
	}
}

func TestWriteTSVNaN(t *testing.T) {
	ts := nanSeries()
	var a, b bytes.Buffer
	if err := ts.WriteTSV(&a); err != nil {
		t.Fatalf("WriteTSV with NaN: %v", err)
	}
	if err := ts.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("NaN rendering not deterministic")
	}
	lines := strings.Split(a.String(), "\n")
	if want := "0\t0.5\tNaN"; lines[2] != want {
		t.Errorf("NaN row = %q, want %q", lines[2], want)
	}
}

func TestWriteJSONNaN(t *testing.T) {
	ts := nanSeries()
	var a, b bytes.Buffer
	if err := ts.WriteJSON(&a); err != nil {
		t.Fatalf("WriteJSON with NaN: %v", err)
	}
	if err := ts.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("NaN JSON rendering not deterministic")
	}
	var decoded struct {
		Columns []string     `json:"columns"`
		Rows    [][]*float64 `json:"rows"`
	}
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, a.String())
	}
	if decoded.Rows[0][2] != nil {
		t.Errorf("NaN cell decoded to %v, want null", *decoded.Rows[0][2])
	}
	if decoded.Rows[0][1] == nil || *decoded.Rows[0][1] != 0.5 {
		t.Error("finite cell did not round-trip")
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {42, "42"}, {-3, "-3"}, {0.25, "0.25"}, {math.NaN(), "NaN"},
	}
	for _, c := range cases {
		if got := FormatValue(c.v); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
