package sim

import (
	"fmt"
	"time"
)

// Topic partitions bus traffic by subsystem.
type Topic string

// The engine's topics. Scenarios may publish additional ad-hoc topics;
// subscribers only see what they subscribed to (or everything, via
// SubscribeAll).
const (
	// TopicROA: ground-truth VRP state changed (issue/revoke).
	TopicROA Topic = "roa"
	// TopicBGP: a route was announced or withdrawn (incl. hijacks).
	TopicBGP Topic = "bgp"
	// TopicRTR: the cache flushed a new serial or restarted its session.
	TopicRTR Topic = "rtr"
	// TopicRP: a relying party refreshed and revalidated.
	TopicRP Topic = "rp"
	// TopicDNS: the web world's DNS was mutated (e.g. CDN migration).
	TopicDNS Topic = "dns"
	// TopicSample: the probe recorded a time-series row.
	TopicSample Topic = "sample"
)

// Event is one bus message: what happened, when (virtual time), and a
// human-readable detail line. Data optionally carries a typed payload
// for programmatic subscribers; it is excluded from serialised output.
type Event struct {
	Topic  Topic         `json:"topic"`
	T      time.Duration `json:"t"`
	Detail string        `json:"detail"`
	Data   any           `json:"-"`
}

// String renders the event as a log line.
func (e Event) String() string {
	return fmt.Sprintf("[%8s] %-6s %s", e.T, e.Topic, e.Detail)
}

// Bus is a synchronous pub/sub event bus. Publish delivers to
// subscribers in subscription order, on the publisher's goroutine —
// deterministic by construction. The engine owns it on the simulation
// goroutine; subscribers must not block.
type Bus struct {
	subs map[Topic][]func(Event)
	all  []func(Event)
}

// NewBus creates an empty bus.
func NewBus() *Bus { return &Bus{subs: make(map[Topic][]func(Event))} }

// Subscribe registers fn for one topic.
func (b *Bus) Subscribe(t Topic, fn func(Event)) {
	b.subs[t] = append(b.subs[t], fn)
}

// SubscribeAll registers fn for every topic (delivered after the
// topic-specific subscribers).
func (b *Bus) SubscribeAll(fn func(Event)) {
	b.all = append(b.all, fn)
}

// Publish delivers the event synchronously.
func (b *Bus) Publish(e Event) {
	for _, fn := range b.subs[e.Topic] {
		fn(e)
	}
	for _, fn := range b.all {
		fn(e)
	}
}
