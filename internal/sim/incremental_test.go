package sim

import (
	"bytes"
	"testing"
	"time"

	"ripki/internal/router"
)

// runJSON runs a config and returns the full JSON export — series rows
// AND the recorded event stream, so a comparison catches serial drift,
// refresh bookkeeping, and flush behaviour, not just the sampled rows.
func runJSON(t *testing.T, cfg Config) []byte {
	t.Helper()
	ts, err := RunScenario(cfg)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Scenario, err)
	}
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIncrementalMatchesFull is the incremental layer's contract: for
// every registered scenario (and a three-way composition), the default
// incremental paths — dirty-set probe, delta-applied truth, delta
// cache updates, delta-scoped revalidation — produce output
// byte-identical to the full-recompute escape hatch.
func TestIncrementalMatchesFull(t *testing.T) {
	specs := append(Names(), "hijack-window+rp-lag+roa-churn")
	for _, name := range specs {
		t.Run(name, func(t *testing.T) {
			inc := runJSON(t, testConfig(name))
			cfg := testConfig(name)
			cfg.DisableIncremental = true
			full := runJSON(t, cfg)
			if !bytes.Equal(inc, full) {
				t.Errorf("incremental and full recompute differ for %s:\n--- incremental ---\n%s\n--- full ---\n%s", name, inc, full)
			}
		})
	}
}

// TestParallelRefreshRace hammers the concurrent per-RP paths — the
// refresh dispatcher's parallel poll + revalidate and the probe's
// parallel hijack-forward sampling — with a wide roster of coinciding
// cadences and active hijack campaigns. Its real teeth are under
// `go test -race`; without the race detector it still asserts the run
// completes and samples every RP column.
func TestParallelRefreshRace(t *testing.T) {
	cfg := testConfig("roa-churn+route-leak")
	cfg.Duration = 5 * time.Minute
	cfg.RPs = []RPSpec{
		{Name: "rp-a", RefreshTicks: 1, Policy: router.PolicyDropInvalid},
		{Name: "rp-b", RefreshTicks: 1, Policy: router.PolicyDropInvalid},
		{Name: "rp-c", RefreshTicks: 2, Policy: router.PolicyDropInvalid},
		{Name: "rp-d", RefreshTicks: 2, Policy: router.PolicyPreferValid},
		{Name: "rp-e", RefreshTicks: 3, Policy: router.PolicyDropInvalid},
		{Name: "rp-f", RefreshTicks: 3, Policy: router.PolicyAcceptAll},
		{Name: "legacy", RefreshTicks: 0, Policy: router.PolicyAcceptAll},
		{Name: "rp-g", RefreshTicks: 1, Policy: router.PolicyPreferValid},
	}
	ts, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Rows) == 0 {
		t.Fatal("no samples recorded")
	}
	for _, rp := range cfg.RPs {
		if ts.Column("hijacked_"+rp.Name) == nil {
			t.Errorf("missing hijacked_%s column", rp.Name)
		}
	}
}
