package sim

import (
	"time"

	"ripki/internal/obs"
)

// SampleData is the typed payload on TopicSample events: the headline
// numbers of one probe row, for programmatic subscribers (tracing, live
// dashboards) that should not re-parse the detail string.
type SampleData struct {
	Tick     int
	Serial   uint32
	VRPs     int
	Valid    float64
	Invalid  float64
	NotFound float64
	Coverage float64
	Hijacks  int
}

// AttachTrace records the run into tr: every bus event becomes an
// instant on a lane named after its topic, each probe sample also feeds
// the "validity" and "hijacks" counter tracks, and each hijack becomes a
// span from announcement to withdrawal (hijacks still active when the
// run closes span to the point the clock stopped). All timestamps are
// virtual, so the export is byte-identical for the same seed and flags.
//
// Attach before Run. The trace is complete once Close has returned.
func (s *Simulation) AttachTrace(tr *obs.Trace) {
	s.trace = tr
	s.hijackStart = make(map[string]time.Duration)
	s.Bus.SubscribeAll(func(e Event) {
		tr.Instant(e.T, string(e.Topic), e.Detail)
		if sd, ok := e.Data.(SampleData); ok {
			tr.Counter(e.T, "validity", map[string]float64{
				"valid":    sd.Valid,
				"invalid":  sd.Invalid,
				"notfound": sd.NotFound,
			})
			tr.Counter(e.T, "hijacks", map[string]float64{"active": float64(sd.Hijacks)})
		}
	})
}

// closeTrace flushes spans for hijacks still active at shutdown, in
// announcement order (the hijacks slice preserves it).
func (s *Simulation) closeTrace() {
	if s.trace == nil {
		return
	}
	at := s.T()
	if horizon := s.end.Sub(s.start); at > horizon {
		at = horizon
	}
	for _, h := range s.hijacks {
		if start, ok := s.hijackStart[h.Name]; ok {
			s.trace.Span(start, at-start, "hijack", h.Name)
			delete(s.hijackStart, h.Name)
		}
	}
}
