package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"ripki/internal/stats"
)

// TimeSeries is the simulation's output: one row per probe sample plus
// the bus event log. Two runs with the same Config produce byte-for-byte
// identical WriteTSV / WriteJSON output.
type TimeSeries struct {
	// Scenario and Seed identify the run.
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// Meta is the rendered run configuration ("domains=20000 tick=30s
	// duration=30m"), for the TSV header comment.
	Meta string `json:"meta"`
	// Columns names the row values; Rows holds one value per column.
	Columns []string    `json:"columns"`
	Rows    [][]float64 `json:"rows"`
	// Events is the bus log (scenario mutations, cache flushes, RP
	// refreshes, samples).
	Events []Event `json:"events"`
}

// Add appends a row; it must match len(Columns).
func (ts *TimeSeries) Add(row []float64) {
	ts.Rows = append(ts.Rows, row)
}

// Column returns the values of the named column, or nil if unknown.
func (ts *TimeSeries) Column(name string) []float64 {
	idx := -1
	for i, c := range ts.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]float64, len(ts.Rows))
	for i, r := range ts.Rows {
		out[i] = r[idx]
	}
	return out
}

// FormatValue renders a cell: integers without a fraction, NaN as
// "NaN", everything else in shortest round-trip form. strconv is
// deterministic, so the byte-identical-output guarantee holds; the
// sweep aggregator uses the same rendering for its tables.
func FormatValue(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTSV emits a comment header identifying the run, a column header,
// and one tab-separated row per sample.
func (ts *TimeSeries) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# ripki-sim scenario=%s seed=%d %s\n", ts.Scenario, ts.Seed, ts.Meta); err != nil {
		return err
	}
	for i, c := range ts.Columns {
		if i > 0 {
			if err := bw.WriteByte('\t'); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(c); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	for _, row := range ts.Rows {
		for i, v := range row {
			if i > 0 {
				if err := bw.WriteByte('\t'); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(FormatValue(v)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MarshalJSON encodes the series with NaN row values rendered as null —
// a probe column can legitimately be NaN (an empty rank bin), and that
// must not make the whole export fail.
func (ts *TimeSeries) MarshalJSON() ([]byte, error) {
	rows := make([][]stats.JSONFloat, len(ts.Rows))
	for i, r := range ts.Rows {
		rows[i] = make([]stats.JSONFloat, len(r))
		for j, v := range r {
			rows[i][j] = stats.JSONFloat(v)
		}
	}
	return json.Marshal(struct {
		Scenario string              `json:"scenario"`
		Seed     int64               `json:"seed"`
		Meta     string              `json:"meta"`
		Columns  []string            `json:"columns"`
		Rows     [][]stats.JSONFloat `json:"rows"`
		Events   []Event             `json:"events"`
	}{ts.Scenario, ts.Seed, ts.Meta, ts.Columns, rows, ts.Events})
}

// WriteJSON emits the full series (rows and event log) as one JSON
// document.
func (ts *TimeSeries) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts)
}
