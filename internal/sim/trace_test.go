package sim

import (
	"bytes"
	"strings"
	"testing"

	"ripki/internal/obs"
)

// traceRun runs one scenario with a trace attached and returns the
// JSONL export.
func traceRun(t *testing.T, cfg Config) []byte {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	s.AttachTrace(tr)
	if _, err := s.Run(); err != nil {
		s.Close()
		t.Fatal(err)
	}
	s.Close() // completes the trace (open hijack spans)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterminism is the tracing contract: same seed + flags ⇒
// byte-identical JSONL export. CI diffs the CLI equivalent.
func TestTraceDeterminism(t *testing.T) {
	a := traceRun(t, testConfig("hijack-window"))
	b := traceRun(t, testConfig("hijack-window"))
	if !bytes.Equal(a, b) {
		t.Fatalf("two same-seed traces differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("trace is empty")
	}
}

// TestTraceContent checks the trace carries every layer of the story:
// topic instants, probe counter tracks, and a hijack span bounded by the
// announce and withdraw instants.
func TestTraceContent(t *testing.T) {
	out := string(traceRun(t, testConfig("hijack-window")))
	for _, want := range []string{
		`"ph":"i","cat":"roa"`,    // ROA issue/revoke instants
		`"ph":"i","cat":"bgp"`,    // route announcements
		`"ph":"i","cat":"rtr"`,    // cache flushes
		`"ph":"i","cat":"rp"`,     // relying-party refreshes
		`"ph":"i","cat":"sample"`, // probe rows
		`"ph":"C","cat":"counter","name":"validity"`,
		`"ph":"C","cat":"counter","name":"hijacks"`,
		`"ph":"X","cat":"hijack"`, // the attack as a span
		`"valid":`,                // counter args carry the sample numbers
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	// hijack-window's single attack is withdrawn mid-run, so its span has
	// a positive duration.
	if !strings.Contains(out, `"dur_us":`) {
		t.Error("hijack span has no duration")
	}
}

// TestTraceSpansOpenHijacks: a hijack never withdrawn must still span to
// the end of the run once the simulation closes.
func TestTraceSpansOpenHijacks(t *testing.T) {
	cfg := testConfig("hijack-window")
	// never-ending hijack: schedule the withdrawal past the horizon
	cfg.Params = Params{"end_frac": "2.0"}
	out := string(traceRun(t, cfg))
	if !strings.Contains(out, `"ph":"X","cat":"hijack"`) {
		t.Fatalf("no span for the still-active hijack:\n%s", out)
	}
}

// TestSampleDataPayload: TopicSample events expose the probe numbers as
// a typed payload.
func TestSampleDataPayload(t *testing.T) {
	s, err := New(testConfig("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var samples []SampleData
	s.Bus.Subscribe(TopicSample, func(e Event) {
		sd, ok := e.Data.(SampleData)
		if !ok {
			t.Errorf("sample event carries %T, want SampleData", e.Data)
			return
		}
		samples = append(samples, sd)
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	last := samples[len(samples)-1]
	if last.VRPs <= 0 || last.Valid <= 0 {
		t.Errorf("implausible sample payload: %+v", last)
	}
}
