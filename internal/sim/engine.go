package sim

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"ripki/internal/alexa"
	"ripki/internal/bgp"
	"ripki/internal/dns"
	"ripki/internal/measure"
	"ripki/internal/obs"
	"ripki/internal/rib"
	"ripki/internal/router"
	"ripki/internal/rpki/vrp"
	"ripki/internal/rtr"
	"ripki/internal/webworld"
)

// RP is one relying party: an RTR client (absent for legacy routers)
// feeding an origin-validating router.
type RP struct {
	Spec   RPSpec
	Client *rtr.Client
	Router *router.Router

	source *swapSource
}

// swapSource is the router's VRP view: a snapshot swapped atomically at
// each refresh, so route processing validates against the RP's *last
// synchronised* state, not the cache's live one — the lag the sim
// measures.
type swapSource struct{ set *vrp.Set }

// Set returns the current snapshot.
func (s *swapSource) Set() *vrp.Set { return s.set }

// Hijack is one active attack: a (sub-)prefix announced into every
// relying party's router, and a victim address inside it the probe
// checks forwarding for.
type Hijack struct {
	// Name identifies the campaign in events and for EndHijack.
	Name string
	// Prefix is the announced prefix (typically a more-specific of the
	// victim's).
	Prefix netip.Prefix
	// Path is the announced AS path after the collector peer; the last
	// element is the (possibly forged) origin.
	Path []uint32
	// Victim is the probed address inside Prefix.
	Victim netip.Addr
}

// Simulation is one configured run: the world, the RTR cache, the
// relying parties, the event queue and bus, and the recorded series.
type Simulation struct {
	Cfg   Config
	World *webworld.World
	// Rand is the scenario randomness source: during a scenario's Setup
	// it is that component's own splitmix64-derived stream (see
	// ComponentSeed), identical whether the scenario runs alone or
	// composed. Scenarios whose events draw randomness after Setup must
	// capture it in a local during Setup.
	Rand   *rand.Rand
	Queue  *Queue
	Bus    *Bus
	Server *rtr.Server
	RPs    []*RP
	Series *TimeSeries

	scenario   Scenario
	truth      map[vrp.VRP]bool
	truthCache *vrp.Set // memoised TruthSet; nil after a mutation (full mode only)
	truthGen   uint64   // bumped on every truth mutation; see TruthGen
	dirty      bool
	outage     bool // cold cache restart in progress: no flushes

	// Incremental-mode state. incremental is the default; with it on,
	// truthCache is maintained by delta-apply (clone-on-write out of the
	// world's shared snapshot, then in-place edits), pending accumulates
	// the VRPs touched since the last flush so the cache can be updated
	// by delta, needFull forces the next flush onto the full-set path
	// after a cold restart emptied the cache, and inc is the probe's
	// incremental dataset (built lazily at the first probe).
	incremental bool
	truthOwned  bool
	needFull    bool
	pending     map[vrp.VRP]bool // desired membership of touched VRPs
	inc         *measure.Incremental
	start       time.Time
	now         time.Time
	end         time.Time
	tick        int
	session     uint16
	err         error
	ln          net.Listener
	probeList   *alexa.List
	headCut     int
	hijacks     []*Hijack
	closed      bool

	trace       *obs.Trace
	hijackStart map[string]time.Duration
}

// New builds a simulation: generates (or adopts) the world, validates
// its RPKI into the ground-truth VRP state, starts an RTR cache over
// loopback TCP, connects and seeds the relying parties, and runs the
// scenario's Setup. Call Run (or Step) next, then Close.
func New(cfg Config) (*Simulation, error) {
	cfg = cfg.WithDefaults()
	if cfg.Scenario == "" {
		cfg.Scenario = "baseline"
	}
	scenario, err := NewScenario(cfg.Scenario, cfg.Params)
	if err != nil {
		return nil, err
	}
	world := cfg.World
	if world == nil {
		world, err = webworld.Generate(webworld.Config{Seed: cfg.Seed, Domains: cfg.Domains})
		if err != nil {
			return nil, fmt.Errorf("sim: generating world: %w", err)
		}
	}
	// Memoized per generated world: clones of a shared world (sweep's
	// shared-world mode) pay certificate-path validation once, not per
	// cell. The per-run truth map below is this run's own mutable copy.
	validation := world.Validation()
	truth := make(map[vrp.VRP]bool)
	for _, v := range validation.VRPs.All() {
		truth[v] = true
	}

	s := &Simulation{
		Cfg:         cfg,
		World:       world,
		Rand:        rand.New(rand.NewSource(cfg.Seed)),
		Queue:       NewQueue(),
		Bus:         NewBus(),
		scenario:    scenario,
		truth:       truth,
		truthCache:  validation.VRPs,
		incremental: !cfg.DisableIncremental,
		pending:     make(map[vrp.VRP]bool),
		start:       world.MeasureTime(),
		session:     uint16(cfg.Seed),
		headCut:     cfg.Domains / 10,
	}
	if s.headCut == 0 {
		s.headCut = 1
	}
	s.now = s.start
	s.end = s.start.Add(cfg.Duration)

	// The cache, served over loopback TCP so the real RTR wire path
	// (PDUs, serials, deltas, session resets) is exercised end to end.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("sim: listening: %w", err)
	}
	s.ln = ln
	s.Server = rtr.NewServer(validation.VRPs, s.session)
	s.Server.Logf = func(string, ...any) {} // connection teardown noise
	go s.Server.Serve(ln)

	// Relying parties. NewScenario always builds a Composite, whose
	// DefaultRPs hands each component the params routed at construction
	// and merges the rosters by RP name.
	specs := cfg.RPs
	if specs == nil {
		if d, ok := scenario.(RPDefaulter); ok {
			specs = d.DefaultRPs(cfg.Params)
		}
	}
	if specs == nil {
		specs = DefaultRPs()
	}
	for _, spec := range specs {
		rp := &RP{Spec: spec, source: &swapSource{set: vrp.NewSet()}}
		rp.Router = router.NewWithPolicy(rp.source, spec.Policy)
		if spec.RefreshTicks > 0 {
			client, err := rtr.Dial(ln.Addr().String())
			if err != nil {
				s.Close()
				return nil, fmt.Errorf("sim: dialing cache: %w", err)
			}
			if err := client.Reset(); err != nil {
				s.Close()
				return nil, fmt.Errorf("sim: initial sync for %s: %w", spec.Name, err)
			}
			rp.Client = client
			rp.source.set = client.Set()
			// The initial Reset marked every synced prefix as changed;
			// the routers are seeded against this state below, so the
			// first delta-scoped revalidation must not replay it.
			client.TakeDelta()
		}
		s.RPs = append(s.RPs, rp)
	}

	// Seed every router with the world's routing table.
	peers := world.RIB.Peers()
	var feedErr error
	world.RIB.WalkRoutes(func(r rib.Route) bool {
		ev := bgp.RouteEvent{
			PeerAS:  peers[r.PeerIndex].ASN,
			PeerID:  peers[r.PeerIndex].BGPID,
			Prefix:  r.Prefix,
			Path:    r.Path,
			NextHop: r.NextHop,
		}
		for _, rp := range s.RPs {
			if _, err := rp.Router.Process(ev); err != nil {
				feedErr = err
				return false
			}
		}
		return true
	})
	if feedErr != nil {
		s.Close()
		return nil, fmt.Errorf("sim: seeding routers: %w", feedErr)
	}

	// Runs are labelled by the canonical spec (components in sorted-name
	// order; a single scenario's spec is its name), so "rp-lag+roa-churn"
	// and "roa-churn+rp-lag" produce byte-identical output.
	s.Series = &TimeSeries{
		Scenario: scenario.Name(),
		Seed:     cfg.Seed,
		Meta: fmt.Sprintf("domains=%d tick=%s duration=%s sample_every=%d sample_domains=%d",
			cfg.Domains, cfg.Tick, cfg.Duration, cfg.SampleEvery, cfg.SampleDomains),
		Columns: s.columns(),
	}
	s.Bus.SubscribeAll(func(e Event) { s.Series.Events = append(s.Series.Events, e) })
	s.probeList = s.sampleList()

	// Recurring engine events: flush each tick, one refresh dispatcher
	// each tick (polling every RP whose cadence lands on that tick),
	// probe at the sample cadence (including a t=0 baseline).
	s.recur(s.start.Add(cfg.Tick), cfg.Tick, classFlush, s.flush)
	for _, rp := range s.RPs {
		if rp.Client != nil {
			s.recur(s.start.Add(cfg.Tick), cfg.Tick, classRefresh, s.refreshDue)
			break
		}
	}
	s.recur(s.start, time.Duration(cfg.SampleEvery)*cfg.Tick, classProbe, s.probe)

	// DNS mutations (scenarios re-point CDN chains and cache hosts)
	// flow into the probe's dirty set through the registry hook. The
	// registry is this run's own (sweep shared-world mode deep-copies it
	// per cell), so the hook does not leak across simulations; Close
	// detaches it.
	if s.incremental {
		s.World.Registry.SetMutationHook(func(name string) {
			if s.inc != nil {
				s.inc.DirtyHost(name)
			}
		})
	}

	// Setup is always Composite.Setup, which repoints Rand at each
	// component's derived stream in turn — single scenarios included, so
	// a component behaves identically alone or composed.
	if err := scenario.Setup(s); err != nil {
		s.Close()
		return nil, fmt.Errorf("sim: scenario %s setup: %w", cfg.Scenario, err)
	}
	return s, nil
}

// columns builds the time-series header for the configured RP roster.
func (s *Simulation) columns() []string {
	cols := []string{"t", "tick", "serial", "vrps"}
	for _, rp := range s.RPs {
		if rp.Client != nil {
			cols = append(cols, "vrps_"+rp.Spec.Name)
		}
	}
	cols = append(cols, "valid", "invalid", "notfound", "coverage", "head_valid", "tail_valid", "hijacks")
	for _, rp := range s.RPs {
		cols = append(cols, "hijacked_"+rp.Spec.Name)
	}
	return cols
}

// sampleList builds the probe's rank-stratified domain sample: the top
// ranks fully, then an even stride through the tail — every domain keeps
// its original rank so head/tail bucketing stays meaningful.
func (s *Simulation) sampleList() *alexa.List {
	entries := s.World.List.Entries()
	n := s.Cfg.SampleDomains
	if n >= len(entries) {
		return s.World.List
	}
	topK := n / 3
	sample := make([]alexa.Entry, 0, n)
	sample = append(sample, entries[:topK]...)
	rest := n - topK
	stride := (len(entries) - topK) / rest
	if stride < 1 {
		stride = 1
	}
	for i := topK; i < len(entries) && len(sample) < n; i += stride {
		sample = append(sample, entries[i])
	}
	return alexa.FromEntries(sample)
}

// recur schedules fn at `first` and then every `every`, until the
// horizon.
func (s *Simulation) recur(first time.Time, every time.Duration, class int, fn func()) {
	var schedule func(at time.Time)
	schedule = func(at time.Time) {
		s.Queue.At(at, class, func() {
			fn()
			next := at.Add(every)
			if !next.After(s.end) {
				schedule(next)
			}
		})
	}
	if !first.After(s.end) {
		schedule(first)
	}
}

// fail records the first error; the run stops at the next Step.
func (s *Simulation) fail(err error) {
	if s.err == nil && err != nil {
		s.err = err
	}
}

// Err returns the first error encountered while running.
func (s *Simulation) Err() error { return s.err }

// Now returns the current virtual time.
func (s *Simulation) Now() time.Time { return s.now }

// T returns the virtual offset since the start of the run.
func (s *Simulation) T() time.Duration { return s.now.Sub(s.start) }

// Start returns the virtual start time (the world's measurement time).
func (s *Simulation) Start() time.Time { return s.start }

// End returns the virtual horizon.
func (s *Simulation) End() time.Time { return s.end }

// Tick returns the current tick number.
func (s *Simulation) Tick() int { return s.tick }

// Step advances the clock by one tick, running every due event in
// deterministic order. It returns false once the horizon is passed or an
// error occurred.
func (s *Simulation) Step() bool {
	if s.closed || s.err != nil || s.now.After(s.end) {
		return false
	}
	s.Queue.RunDue(s.now)
	s.now = s.now.Add(s.Cfg.Tick)
	s.tick++
	return s.err == nil && !s.now.After(s.end)
}

// Run steps the simulation to its horizon and returns the recorded
// series. The simulation stays open (for inspection); call Close when
// done.
func (s *Simulation) Run() (*TimeSeries, error) {
	for s.Step() {
	}
	return s.Series, s.err
}

// Close shuts down the cache, the listener, and every RP session.
func (s *Simulation) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.closeTrace()
	if s.incremental {
		s.World.Registry.SetMutationHook(nil)
	}
	for _, rp := range s.RPs {
		if rp.Client != nil {
			rp.Client.Close()
		}
	}
	return s.Server.Close()
}

// --- scenario API ------------------------------------------------------

// At schedules a scenario event at an absolute virtual instant. Events
// scheduled in the past run at the next tick (still before that tick's
// flush/refresh/probe).
func (s *Simulation) At(at time.Time, fn func()) {
	s.Queue.At(at, classScenario, fn)
}

// After schedules a scenario event at the given offset from the start.
func (s *Simulation) After(d time.Duration, fn func()) {
	s.At(s.start.Add(d), fn)
}

// AtFrac schedules a scenario event at a fraction of the run's duration
// (0 = start, 1 = horizon), snapped to nothing — the queue orders it
// against tick events by time and class.
func (s *Simulation) AtFrac(frac float64, fn func()) {
	s.At(s.start.Add(time.Duration(frac*float64(s.Cfg.Duration))), fn)
}

// Every schedules fn at the given period, starting one period in, until
// the horizon.
func (s *Simulation) Every(d time.Duration, fn func()) {
	s.recur(s.start.Add(d), d, classScenario, fn)
}

// EveryTick schedules fn every n ticks, starting at tick n.
func (s *Simulation) EveryTick(n int, fn func()) {
	s.Every(time.Duration(n)*s.Cfg.Tick, fn)
}

// Publish emits a bus event stamped with the current virtual time.
func (s *Simulation) Publish(topic Topic, detail string, data any) {
	s.Bus.Publish(Event{Topic: topic, T: s.T(), Detail: detail, Data: data})
}

// HasVRP reports whether the ground truth currently contains v.
func (s *Simulation) HasVRP(v vrp.VRP) bool { return s.truth[v] }

// TruthVRPs returns the ground-truth VRPs, sorted.
func (s *Simulation) TruthVRPs() []vrp.VRP {
	out := make([]vrp.VRP, 0, len(s.truth))
	for v := range s.truth {
		out = append(out, v)
	}
	sortVRPs(out)
	return out
}

// TruthSet returns the ground truth as a queryable set, memoised
// between mutations. The returned set must be treated as read-only; in
// incremental mode it is additionally live — later truth mutations
// edit it in place rather than producing a fresh set — so callers that
// need a frozen view must Clone it, and callers that need to detect
// change must compare TruthGen values, not pointers.
func (s *Simulation) TruthSet() *vrp.Set {
	if s.truthCache == nil {
		set, err := vrp.FromVRPs(s.TruthVRPs())
		if err != nil {
			s.fail(err)
			return vrp.NewSet()
		}
		s.truthCache = set
	}
	return s.truthCache
}

// TruthGen is a generation counter bumped on every ground-truth
// mutation. It is the change-detection contract for TruthSet: the
// incremental engine maintains the set by in-place delta-apply, so the
// pointer stays stable across mutations and only the generation moves.
func (s *Simulation) TruthGen() uint64 { return s.truthGen }

// ROAData is the typed payload on TopicROA events: the VRP that moved,
// which way, and the scenario's stated reason.
type ROAData struct {
	VRP    vrp.VRP
	Revoke bool
	Reason string
}

// IssueVRP adds a validated ROA payload to the ground truth; the change
// reaches relying parties at the next flush + their next refresh.
func (s *Simulation) IssueVRP(v vrp.VRP, detail string) {
	if s.truth[v] {
		return
	}
	s.truth[v] = true
	s.dirty = true
	s.truthGen++
	if s.incremental {
		s.ensureTruthOwned()
		if err := s.truthCache.Add(v); err != nil {
			s.fail(fmt.Errorf("sim: issuing %v: %w", v, err))
			return
		}
		s.pending[v] = true
		if s.inc != nil {
			s.inc.DirtyVRP(v.Prefix)
		}
	} else {
		s.truthCache = nil
	}
	s.Publish(TopicROA, fmt.Sprintf("issue %v (%s)", v, detail), ROAData{VRP: v, Reason: detail})
}

// RevokeVRP removes a payload from the ground truth.
func (s *Simulation) RevokeVRP(v vrp.VRP, detail string) {
	if !s.truth[v] {
		return
	}
	delete(s.truth, v)
	s.dirty = true
	s.truthGen++
	if s.incremental {
		s.ensureTruthOwned()
		s.truthCache.Remove(v)
		s.pending[v] = false
		if s.inc != nil {
			s.inc.DirtyVRP(v.Prefix)
		}
	} else {
		s.truthCache = nil
	}
	s.Publish(TopicROA, fmt.Sprintf("revoke %v (%s)", v, detail), ROAData{VRP: v, Revoke: true, Reason: detail})
}

// ensureTruthOwned makes truthCache this run's private copy. It starts
// out aliasing the world's memoised validation set (shared across sweep
// cells) and the set handed to the RTR server, so the first delta-apply
// must clone before editing in place.
func (s *Simulation) ensureTruthOwned() {
	if !s.truthOwned {
		s.truthCache = s.truthCache.Clone()
		s.truthOwned = true
	}
}

// routeEvent builds a collector route event from the first vantage peer.
func (s *Simulation) routeEvent(prefix netip.Prefix, path []uint32, withdraw bool) bgp.RouteEvent {
	peer := s.World.RIB.Peers()[0]
	asns := append([]uint32{peer.ASN}, path...)
	return bgp.RouteEvent{
		PeerAS:   peer.ASN,
		PeerID:   peer.BGPID,
		Prefix:   prefix,
		Path:     []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: asns}},
		NextHop:  peer.Addr,
		Withdraw: withdraw,
	}
}

// RouteData is the typed payload on TopicBGP events. When the route
// belongs to a tracked hijack campaign, Hijack carries its name and
// Victim the probed address.
type RouteData struct {
	Prefix   netip.Prefix
	Path     []uint32
	Withdraw bool
	Hijack   string
	Victim   netip.Addr
}

// AnnounceRoute injects a route announcement into every relying party's
// router (path is the AS path after the collector peer; the last element
// is the origin).
func (s *Simulation) AnnounceRoute(prefix netip.Prefix, path []uint32, detail string) {
	s.announceRoute(prefix, path, detail, RouteData{Prefix: prefix, Path: path})
}

func (s *Simulation) announceRoute(prefix netip.Prefix, path []uint32, detail string, data RouteData) {
	ev := s.routeEvent(prefix, path, false)
	for _, rp := range s.RPs {
		if _, err := rp.Router.Process(ev); err != nil {
			s.fail(err)
			return
		}
	}
	s.Publish(TopicBGP, fmt.Sprintf("announce %v path %v (%s)", prefix, path, detail), data)
}

// WithdrawRoute removes a previously announced route from every router.
func (s *Simulation) WithdrawRoute(prefix netip.Prefix, detail string) {
	s.withdrawRoute(prefix, detail, RouteData{Prefix: prefix, Withdraw: true})
}

func (s *Simulation) withdrawRoute(prefix netip.Prefix, detail string, data RouteData) {
	ev := s.routeEvent(prefix, nil, true)
	for _, rp := range s.RPs {
		if _, err := rp.Router.Process(ev); err != nil {
			s.fail(err)
			return
		}
	}
	s.Publish(TopicBGP, fmt.Sprintf("withdraw %v (%s)", prefix, detail), data)
}

// StartHijack announces the hijack into every router and tracks it; the
// probe then records, per router, whether traffic to the victim address
// actually flows to the hijacked prefix.
func (s *Simulation) StartHijack(h Hijack) {
	hh := h
	s.hijacks = append(s.hijacks, &hh)
	if s.trace != nil {
		s.hijackStart[h.Name] = s.T()
	}
	s.announceRoute(h.Prefix, h.Path, "hijack "+h.Name,
		RouteData{Prefix: h.Prefix, Path: h.Path, Hijack: h.Name, Victim: h.Victim})
}

// EndHijack withdraws the named hijack.
func (s *Simulation) EndHijack(name string) {
	for i, h := range s.hijacks {
		if h.Name == name {
			s.withdrawRoute(h.Prefix, "hijack "+name+" ends",
				RouteData{Prefix: h.Prefix, Withdraw: true, Hijack: name, Victim: h.Victim})
			s.hijacks = append(s.hijacks[:i], s.hijacks[i+1:]...)
			if start, ok := s.hijackStart[name]; ok {
				s.trace.Span(start, s.T()-start, "hijack", name)
				delete(s.hijackStart, name)
			}
			return
		}
	}
}

// RestartData is the typed payload on TopicRTR cache-restart events;
// Recovered marks the end of a cold restart's revalidation window.
type RestartData struct {
	Cold      bool
	Recovered bool
}

// RestartCache simulates an RTR cache restart: new session ID, serial
// zero, delta history gone. With cold=true the cache also comes back
// empty — it must revalidate the repository before it can serve
// payloads again, so clients that refresh during the two-tick
// revalidation window sync an empty set and briefly validate nothing.
func (s *Simulation) RestartCache(cold bool) {
	s.session++
	s.Server.ResetSession(s.session)
	detail := "cache restart (warm)"
	if cold {
		s.Server.Update(vrp.NewSet())
		s.outage = true
		// The cache lost its payloads, so the accumulated pending delta
		// no longer describes the distance to the served set: the flush
		// after recovery must push the full truth.
		s.needFull = true
		detail = "cache restart (cold: serving empty until revalidation)"
		s.Queue.At(s.now.Add(2*s.Cfg.Tick), classScenario, func() {
			s.outage = false
			s.dirty = true
			s.Publish(TopicRTR, "cache revalidation complete, refilling", RestartData{Cold: true, Recovered: true})
		})
	}
	s.Publish(TopicRTR, detail, RestartData{Cold: cold})
}

// flush pushes the ground truth to the cache when it changed this tick.
// During a cold-restart outage the cache has nothing validated to serve,
// so flushes are held back until revalidation completes. In incremental
// mode the accumulated pending delta is applied instead of diffing the
// full set; both server paths no-op identically on a net-zero change,
// so the serial sequence — and every byte downstream — is the same.
func (s *Simulation) flush() {
	if !s.dirty || s.outage {
		return
	}
	if s.incremental && !s.needFull {
		var ann, wd []vrp.VRP
		for v, want := range s.pending {
			if want {
				ann = append(ann, v)
			} else {
				wd = append(wd, v)
			}
		}
		slices.SortFunc(ann, vrp.Compare)
		slices.SortFunc(wd, vrp.Compare)
		s.Server.UpdateDelta(ann, wd)
	} else {
		set := s.TruthSet()
		if s.incremental {
			// The server retains the set it is handed while the
			// engine's copy keeps being edited in place, so hand over a
			// snapshot.
			set = set.Clone()
		}
		s.Server.Update(set)
		s.needFull = false
	}
	clear(s.pending)
	s.dirty = false
	vrps := s.TruthSet().Len()
	s.Publish(TopicRTR, fmt.Sprintf("flush serial=%d vrps=%d", s.Server.Serial(), vrps),
		FlushData{Serial: s.Server.Serial(), VRPs: vrps})
}

// FlushData is the typed payload on TopicRTR flush events: the cache
// serial and payload count the flush published.
type FlushData struct {
	Serial uint32
	VRPs   int
}

// RefreshData is the typed payload on TopicRP refresh events: which
// relying party polled, the serial and payload count it synchronised,
// and how many now-invalid routes revalidation dropped.
type RefreshData struct {
	RP      string
	Serial  uint32
	VRPs    int
	Dropped int
}

// refreshDue runs the poll + revalidation cycle for every relying party
// whose cadence lands on this tick. The per-RP work fans out across a
// bounded worker pool — each RP owns its client connection, router, and
// local RIB, so the units are independent — and results land in
// index-addressed slots, published afterwards in roster order, so the
// event stream is identical regardless of goroutine scheduling. In
// incremental mode each RP revalidates only the routes under the
// prefixes its poll actually changed; a full-resync fallback (session
// reset, delta history gone) marks everything and degrades gracefully
// to the complete Adj-RIB-In.
func (s *Simulation) refreshDue() {
	var due []*RP
	for _, rp := range s.RPs {
		if rp.Client != nil && s.tick%rp.Spec.RefreshTicks == 0 {
			due = append(due, rp)
		}
	}
	if len(due) == 0 {
		return
	}
	type outcome struct {
		serial  uint32
		vrps    int
		dropped int
		err     error
	}
	outs := make([]outcome, len(due))
	parallelFor(len(due), runtime.GOMAXPROCS(0), func(i int) {
		rp := due[i]
		if err := rp.Client.Poll(); err != nil {
			outs[i].err = fmt.Errorf("sim: %s poll: %w", rp.Spec.Name, err)
			return
		}
		var res router.RevalidationResult
		if s.incremental {
			changed := rp.Client.TakeDelta()
			rp.source.set = rp.Client.View()
			res = rp.Router.RevalidateAffected(changed)
		} else {
			rp.source.set = rp.Client.Set()
			res = rp.Router.Revalidate()
		}
		outs[i] = outcome{serial: rp.Client.Serial(), vrps: rp.Client.Len(), dropped: res.Dropped}
	})
	for i, rp := range due {
		if outs[i].err != nil {
			s.fail(outs[i].err)
			continue
		}
		s.Publish(TopicRP, fmt.Sprintf("%s refresh serial=%d vrps=%d dropped=%d",
			rp.Spec.Name, outs[i].serial, outs[i].vrps, outs[i].dropped),
			RefreshData{RP: rp.Spec.Name, Serial: outs[i].serial, VRPs: outs[i].vrps, Dropped: outs[i].dropped})
	}
}

// parallelFor runs fn(0..n-1) across at most workers goroutines.
// Callers write results into index-addressed slots, so parallelism
// never reorders anything observable.
func parallelFor(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// probe records one time-series row. The measured exposure columns
// (valid/invalid/notfound/coverage/head/tail) are computed against the
// *ground truth* — what a fully synchronised validator would see. Lag
// and outages are deliberately not mixed in here: per-RP cache state
// shows up in the vrps_* columns and its routing consequences in the
// hijacked_* columns.
func (s *Simulation) probe() {
	var ds *measure.Dataset
	if s.incremental {
		if s.inc == nil {
			inc, err := measure.NewIncremental(s.probeList, s.measureConfig())
			if err != nil {
				s.fail(fmt.Errorf("sim: probe: %w", err))
				return
			}
			s.inc = inc
		} else {
			s.inc.SetVRPs(s.TruthSet())
			if err := s.inc.Refresh(); err != nil {
				s.fail(fmt.Errorf("sim: probe: %w", err))
				return
			}
		}
		ds = s.inc.Dataset()
	} else {
		var err error
		ds, err = measure.Run(s.probeList, s.measureConfig())
		if err != nil {
			s.fail(fmt.Errorf("sim: probe: %w", err))
			return
		}
	}
	snap := measure.Snapshot(ds, s.headCut)

	row := []float64{
		s.T().Seconds(),
		float64(s.tick),
		float64(s.Server.Serial()),
		float64(len(s.truth)),
	}
	// The per-RP columns — synced payload counts, then hijack-forward
	// outcomes — fan out across the worker pool into index-addressed
	// slots. Each victim address is resolved through a router once per
	// tick (campaigns can share a victim), not once per comparison.
	type rpSample struct {
		vrps      int
		hasClient bool
		hijacked  int
	}
	samples := make([]rpSample, len(s.RPs))
	parallelFor(len(s.RPs), runtime.GOMAXPROCS(0), func(i int) {
		rp := s.RPs[i]
		if rp.Client != nil {
			samples[i] = rpSample{vrps: rp.Client.Len(), hasClient: true}
		}
		if len(s.hijacks) == 0 {
			return
		}
		fwd := make(map[netip.Addr]rib.PrefixOrigin, len(s.hijacks))
		routed := make(map[netip.Addr]bool, len(s.hijacks))
		for _, h := range s.hijacks {
			if _, seen := routed[h.Victim]; !seen {
				po, ok := rp.Router.Forward(h.Victim)
				fwd[h.Victim], routed[h.Victim] = po, ok
			}
			if routed[h.Victim] && fwd[h.Victim].Prefix == h.Prefix {
				samples[i].hijacked++
			}
		}
	})
	for _, sm := range samples {
		if sm.hasClient {
			row = append(row, float64(sm.vrps))
		}
	}
	row = append(row, snap.Valid, snap.Invalid, snap.NotFound, snap.Coverage,
		snap.HeadValid, snap.TailValid, float64(len(s.hijacks)))
	for _, sm := range samples {
		row = append(row, float64(sm.hijacked))
	}
	s.Series.Add(row)
	s.Publish(TopicSample, fmt.Sprintf("tick=%d valid=%.4f hijacks=%d", s.tick, snap.Valid, len(s.hijacks)),
		SampleData{
			Tick:     s.tick,
			Serial:   s.Server.Serial(),
			VRPs:     len(s.truth),
			Valid:    snap.Valid,
			Invalid:  snap.Invalid,
			NotFound: snap.NotFound,
			Coverage: snap.Coverage,
			Hijacks:  len(s.hijacks),
		})
}

// measureConfig wires the probe's measurement pipeline to this run's
// world and ground truth.
func (s *Simulation) measureConfig() measure.Config {
	return measure.Config{
		Resolver: dns.RegistryResolver{Registry: s.World.Registry},
		RIB:      s.World.RIB,
		VRPs:     s.TruthSet(),
		BinWidth: s.headCut,
	}
}

// sortVRPs orders VRPs with vrp.Compare — the same total order
// vrp.Set.All uses, shared so the two orderings cannot drift.
func sortVRPs(vs []vrp.VRP) {
	slices.SortFunc(vs, vrp.Compare)
}

// RunScenario is the one-call entry point: build, run, close, return the
// series.
func RunScenario(cfg Config) (*TimeSeries, error) {
	return RunScenarioContext(context.Background(), cfg)
}

// RunScenarioContext is RunScenario under a context: cancellation is
// checked between ticks, so an in-flight simulation stops within one
// tick of ctx ending (Ctrl-C in a sweep, a dropped distributed-sweep
// coordinator) instead of running to its horizon. A cancelled run
// returns ctx's error and no series.
func RunScenarioContext(ctx context.Context, cfg Config) (*TimeSeries, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	for s.Step() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return s.Series, s.err
}
