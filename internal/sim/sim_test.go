package sim

import (
	"bytes"
	"testing"
	"time"
)

// testConfig is a small, fast world: 48 ticks of 10s over 4k domains.
func testConfig(scenario string) Config {
	return Config{
		Scenario:      scenario,
		Seed:          1,
		Domains:       4000,
		Tick:          10 * time.Second,
		Duration:      8 * time.Minute,
		SampleEvery:   4,
		SampleDomains: 400,
	}
}

func runTSV(t *testing.T, cfg Config) (*TimeSeries, []byte) {
	t.Helper()
	ts, err := RunScenario(cfg)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Scenario, err)
	}
	var buf bytes.Buffer
	if err := ts.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	return ts, buf.Bytes()
}

// TestDeterminism is the subsystem's hard requirement: same seed + config
// ⇒ byte-identical output, for every registered scenario.
func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			_, a := runTSV(t, testConfig(name))
			_, b := runTSV(t, testConfig(name))
			if !bytes.Equal(a, b) {
				t.Errorf("two runs of %s differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", name, a, b)
			}
		})
	}
}

func TestSeedChangesOutput(t *testing.T) {
	_, a := runTSV(t, testConfig("roa-churn"))
	cfg := testConfig("roa-churn")
	cfg.Seed = 2
	_, b := runTSV(t, cfg)
	if bytes.Equal(a, b) {
		t.Error("different seeds produced identical series")
	}
}

// TestHijackWindow checks the headline story: every router is hijacked
// while the prefix is unprotected; after the emergency ROA propagates the
// validating RPs recover (fast no later than slow) while the accept-all
// legacy router stays hijacked until the attacker withdraws.
func TestHijackWindow(t *testing.T) {
	ts, _ := runTSV(t, testConfig("hijack-window"))
	active := ts.Column("hijacks")
	fast := ts.Column("hijacked_rp-fast")
	slow := ts.Column("hijacked_rp-slow")
	legacy := ts.Column("hijacked_legacy")
	if fast == nil || slow == nil || legacy == nil {
		t.Fatalf("missing hijack columns in %v", ts.Columns)
	}
	window := func(col []float64) int {
		n := 0
		for _, v := range col {
			n += int(v)
		}
		return n
	}
	if window(legacy) == 0 {
		t.Fatal("legacy router was never hijacked — attack did not land")
	}
	if window(fast) == 0 {
		t.Error("validating router was never hijacked — no exposure window before the ROA")
	}
	if !(window(fast) <= window(slow) && window(slow) <= window(legacy)) {
		t.Errorf("windows not ordered: fast=%d slow=%d legacy=%d", window(fast), window(slow), window(legacy))
	}
	// While the hijack is active but before the ROA exists, everyone is
	// hijacked; once it is withdrawn everyone recovers.
	last := len(active) - 1
	if active[last] != 0 || legacy[last] != 0 {
		t.Errorf("hijack still active at the end: active=%v legacy=%v", active[last], legacy[last])
	}
	// The ROA must appear in the truth VRP count mid-run.
	vrps := ts.Column("vrps")
	if vrps[0] >= vrps[last] {
		t.Errorf("emergency ROA not visible in vrps: first=%v last=%v", vrps[0], vrps[last])
	}
}

// TestMaxlenMisissuance checks the forged-origin story: under the loose
// ROA the hijack validates Valid, so even drop-invalid routers stay
// hijacked; narrowing the ROA back drops it.
func TestMaxlenMisissuance(t *testing.T) {
	ts, _ := runTSV(t, testConfig("maxlen-misissuance"))
	fast := ts.Column("hijacked_rp-fast")
	if fast == nil {
		t.Fatalf("missing column in %v", ts.Columns)
	}
	hijackedEver := false
	for _, v := range fast {
		if v > 0 {
			hijackedEver = true
		}
	}
	if !hijackedEver {
		t.Error("drop-invalid router never hijacked: the loose maxLength should have validated the attack")
	}
	if fast[len(fast)-1] != 0 {
		t.Error("hijack survived the ROA fix")
	}
}

// TestROAChurn checks serial advance and RP convergence under churn.
func TestROAChurn(t *testing.T) {
	ts, _ := runTSV(t, testConfig("roa-churn"))
	serial := ts.Column("serial")
	vrps := ts.Column("vrps")
	fast := ts.Column("vrps_rp-fast")
	last := len(serial) - 1
	if serial[last] == 0 {
		t.Error("serial never advanced under churn")
	}
	if vrps[last] <= vrps[0] {
		t.Errorf("coverage did not ramp: %v -> %v", vrps[0], vrps[last])
	}
	// rp-fast refreshes every tick, after the flush: at every sample it
	// has fully caught up with the ground truth.
	for i := range fast {
		if fast[i] != vrps[i] {
			t.Errorf("sample %d: rp-fast has %v VRPs, truth %v", i, fast[i], vrps[i])
		}
	}
}

// TestRTRRestartCold checks the cold-restart outage: some sample shows
// the fast RP briefly holding zero VRPs, and the run ends reconverged.
func TestRTRRestartCold(t *testing.T) {
	cfg := testConfig("rtr-restart")
	cfg.SampleEvery = 1 // the outage window is 2 ticks wide
	ts, _ := runTSV(t, cfg)
	fast := ts.Column("vrps_rp-fast")
	vrps := ts.Column("vrps")
	sawOutage := false
	for _, v := range fast {
		if v == 0 {
			sawOutage = true
		}
	}
	if !sawOutage {
		t.Error("cold restart: rp-fast never served an empty set")
	}
	last := len(fast) - 1
	if fast[last] != vrps[last] || vrps[last] == 0 {
		t.Errorf("did not reconverge: rp-fast=%v truth=%v", fast[last], vrps[last])
	}
}

// TestCDNMigration checks the DNS mutation path end to end: migrating a
// CDN's fleet into the signing CDN's space changes measured exposure.
func TestCDNMigration(t *testing.T) {
	ts, _ := runTSV(t, testConfig("cdn-migration"))
	valid := ts.Column("valid")
	first, last := valid[0], valid[len(valid)-1]
	if last <= first {
		t.Errorf("migration into signed space did not raise valid fraction: %v -> %v", first, last)
	}
	sawDNS := false
	for _, e := range ts.Events {
		if e.Topic == TopicDNS {
			sawDNS = true
			break
		}
	}
	if !sawDNS {
		t.Error("no DNS events published during migration")
	}
}

// TestRPLagRoster checks the scenario-supplied relying-party roster and
// the staircase: the slow RP holds no more VRPs than the fast one at
// every sample while coverage ramps.
func TestRPLagRoster(t *testing.T) {
	ts, _ := runTSV(t, testConfig("rp-lag"))
	fast := ts.Column("vrps_rp-1t")
	slow := ts.Column("vrps_rp-20t")
	if fast == nil || slow == nil {
		t.Fatalf("lag roster columns missing: %v", ts.Columns)
	}
	for i := range fast {
		if slow[i] > fast[i] {
			t.Errorf("sample %d: slow RP ahead of fast (%v > %v)", i, slow[i], fast[i])
		}
	}
}

// TestBaseline: no events, no serial motion, constant series.
func TestBaseline(t *testing.T) {
	ts, _ := runTSV(t, testConfig("baseline"))
	serial := ts.Column("serial")
	vrps := ts.Column("vrps")
	for i := range serial {
		if serial[i] != 0 {
			t.Errorf("sample %d: serial %v in a static world", i, serial[i])
		}
		if vrps[i] != vrps[0] {
			t.Errorf("sample %d: vrps moved %v -> %v", i, vrps[0], vrps[i])
		}
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	ts1, _ := runTSV(t, testConfig("hijack-window"))
	ts2, _ := runTSV(t, testConfig("hijack-window"))
	var a, b bytes.Buffer
	if err := ts1.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := ts2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("JSON output differs between identical runs")
	}
}

func TestUnknownScenario(t *testing.T) {
	if _, err := New(Config{Scenario: "no-such-thing"}); err == nil {
		t.Error("expected error for unknown scenario")
	}
}

func TestStepAndClose(t *testing.T) {
	s, err := New(testConfig("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for s.Step() {
		steps++
	}
	if steps == 0 {
		t.Error("no steps ran")
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if s.Step() {
		t.Error("Step after Close should be false")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// TestRouteLeak checks OV's partial answer to leaks: the accept-all
// legacy router follows every leaked more-specific, drop-invalid routers
// follow only the unsigned ones, and the run ends clean.
func TestRouteLeak(t *testing.T) {
	ts, _ := runTSV(t, testConfig("route-leak"))
	active := ts.Column("hijacks")
	fast := ts.Column("hijacked_rp-fast")
	legacy := ts.Column("hijacked_legacy")
	peak := 0.0
	peakFast, peakLegacy := 0.0, 0.0
	for i := range active {
		if active[i] > peak {
			peak = active[i]
		}
		if fast[i] > peakFast {
			peakFast = fast[i]
		}
		if legacy[i] > peakLegacy {
			peakLegacy = legacy[i]
		}
	}
	if peak == 0 {
		t.Fatal("no leaks were ever active")
	}
	if peakLegacy != peak {
		t.Errorf("legacy followed %v of %v leaks, want all", peakLegacy, peak)
	}
	if peakFast == 0 {
		t.Error("drop-invalid router followed no leaks — the unsigned fraction should get through")
	}
	if peakFast >= peakLegacy {
		t.Errorf("drop-invalid followed %v leaks, legacy %v: OV should have dropped the signed fraction", peakFast, peakLegacy)
	}
	last := len(active) - 1
	if active[last] != 0 || legacy[last] != 0 {
		t.Errorf("leaks still active at the end: active=%v legacy=%v", active[last], legacy[last])
	}
}

// TestTrustAnchorOutage checks the outage story: the truth VRP count
// collapses and recovers, the mid-outage hijack lands on the fast
// validating router (the protecting ROA is gone), and everyone is clean
// after recovery + refresh.
func TestTrustAnchorOutage(t *testing.T) {
	ts, _ := runTSV(t, testConfig("trust-anchor-outage"))
	vrps := ts.Column("vrps")
	fast := ts.Column("hijacked_rp-fast")
	legacy := ts.Column("hijacked_legacy")
	minVRPs, maxVRPs := vrps[0], vrps[0]
	for _, v := range vrps {
		if v < minVRPs {
			minVRPs = v
		}
		if v > maxVRPs {
			maxVRPs = v
		}
	}
	if minVRPs >= maxVRPs {
		t.Errorf("VRP count never dropped during the outage: min=%v max=%v", minVRPs, maxVRPs)
	}
	last := len(vrps) - 1
	if vrps[last] != vrps[0] {
		t.Errorf("VRP count did not recover: start=%v end=%v", vrps[0], vrps[last])
	}
	window := func(col []float64) int {
		n := 0
		for _, v := range col {
			n += int(v)
		}
		return n
	}
	if window(legacy) == 0 {
		t.Fatal("mid-outage hijack never landed on the legacy router")
	}
	if window(fast) == 0 {
		t.Error("drop-invalid router never hijacked: with the TA dark the hijack validates NotFound")
	}
	if fast[last] != 0 || legacy[last] != 0 {
		t.Errorf("hijack survived recovery: fast=%v legacy=%v", fast[last], legacy[last])
	}
}

// TestDelegatedCACompromise checks the rogue-ROA story: the hijack
// validates Valid on synced drop-invalid routers, and revoking the rogue
// ROA kills it.
func TestDelegatedCACompromise(t *testing.T) {
	ts, _ := runTSV(t, testConfig("delegated-ca-compromise"))
	fast := ts.Column("hijacked_rp-fast")
	vrps := ts.Column("vrps")
	hijackedEver := false
	for _, v := range fast {
		if v > 0 {
			hijackedEver = true
		}
	}
	if !hijackedEver {
		t.Error("drop-invalid router never hijacked: the rogue ROA should have validated the attack")
	}
	last := len(fast) - 1
	if fast[last] != 0 {
		t.Error("hijack survived the rogue ROA revocation")
	}
	if vrps[last] != vrps[0] {
		t.Errorf("rogue ROA not cleaned up: vrps %v -> %v", vrps[0], vrps[last])
	}
}

func TestParamsBool(t *testing.T) {
	p := Params{"a": "1", "b": "False", "c": "yes"}
	if !p.Bool("a", false) {
		t.Error(`Bool("1") = false`)
	}
	if p.Bool("b", true) {
		t.Error(`Bool("False") = true`)
	}
	if !p.Bool("c", true) || p.Bool("c", false) {
		t.Error("malformed value should fall back to the default")
	}
	if !p.Bool("absent", true) {
		t.Error("absent key should fall back to the default")
	}
}
