package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Scenario composition. A spec like "roa-churn+rp-lag" runs every named
// scenario's event stream in ONE world, against one clock, one RTR
// cache, and one relying-party roster — the compound incidents the
// paper's tragedy is actually made of (a hijack window opening while
// relying parties are lagging behind churn, a trust-anchor outage
// during a CDN migration, ...).
//
// The composition contract, in full:
//
//   - Canonical order. Components run in sorted-name order regardless
//     of how the spec spells them: "rp-lag+roa-churn" and
//     "roa-churn+rp-lag" are the same composition, byte for byte. A
//     composite's Name() is the canonical spec. Duplicate components
//     ("roa-churn+roa-churn") keep their relative order and are told
//     apart by occurrence index.
//
//   - Independent randomness. Each component draws from its own
//     splitmix64-derived RNG sub-stream keyed by (master seed,
//     component name, occurrence) — see ComponentSeed. Single-scenario
//     runs use the identical derivation, so a component behaves byte-
//     identically whether it runs alone or composed: composing with
//     "baseline" is a proven no-op, and adding a component never
//     perturbs another's randomness.
//
//   - Per-component parameters. A Params key "name.key" is routed to
//     the named component as "key" ("roa-churn.issue=5"); an undotted
//     key is shared — every component sees it. A dotted key whose
//     prefix names no component is an error, so typos fail loudly.
//     The rule is uniform: NewScenario routes a single scenario's
//     params as a one-component composition, so a routed key means the
//     same thing whether its target runs alone or composed. Duplicate
//     components share their routed parameters.
//
//   - Relying-party roster merge. Components are asked for DefaultRPs
//     in canonical order and the rosters are merged by RP name: the
//     first component to name an RP fixes its spec (refresh cadence and
//     policy), later components append only RPs with new names. An
//     explicit Config.RPs still overrides everything.

// specSeparator joins component names in a composition spec.
const specSeparator = "+"

// component is one member of a composition: a registered scenario plus
// its identity within the composite (canonical position is the slice
// index; occ tells duplicates of the same name apart).
type component struct {
	name   string
	occ    int
	params Params
	scn    Scenario
}

// Composite runs several registered scenarios' event streams in one
// world. Build one with NewScenario and a "+"-joined spec; it satisfies
// Scenario and RPDefaulter like any single scenario.
type Composite struct {
	spec  string // canonical: sorted component names, "+"-joined
	comps []component
}

// IsComposition reports whether the spec names a composition rather
// than a single registered scenario.
func IsComposition(spec string) bool { return strings.Contains(spec, specSeparator) }

// ParseSpec splits a scenario spec into its component names, in
// canonical (sorted) order. Single names come back as a one-element
// slice; empty components ("a++b", "a+") are rejected. The names are
// not checked against the registry — NewScenario does that.
func ParseSpec(spec string) ([]string, error) {
	parts := strings.Split(spec, specSeparator)
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("sim: empty component in scenario spec %q", spec)
		}
		parts[i] = p
	}
	sort.Stable(sort.StringSlice(parts))
	return parts, nil
}

// newComposite builds the (possibly one-component) composition named by
// spec, routing params to components and validating every component
// against the registry.
func newComposite(spec string, p Params) (*Composite, error) {
	names, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	routed, err := routeParams(names, p)
	if err != nil {
		return nil, err
	}
	c := &Composite{spec: strings.Join(names, specSeparator)}
	occ := map[string]int{}
	for i, name := range names {
		f, ok := scenarios[name]
		if !ok {
			if len(names) == 1 {
				return nil, fmt.Errorf("sim: unknown scenario %q (have %v)", name, Names())
			}
			return nil, fmt.Errorf("sim: unknown scenario %q in composition %q (have %v)", name, spec, Names())
		}
		c.comps = append(c.comps, component{
			name:   name,
			occ:    occ[name],
			params: routed[i],
			scn:    f(routed[i]),
		})
		occ[name]++
	}
	return c, nil
}

// routeParams splits a composite's Params across its components:
// "name.key" goes to every component called name (as "key"), undotted
// keys go to all. A dotted key addressing no component is an error.
// Undotted keys are applied first and dotted keys second, so when both
// spellings set the same key ("issue=3 roa-churn.issue=5") the routed
// one deterministically wins for its component — never map iteration
// order.
func routeParams(names []string, p Params) ([]Params, error) {
	routed := make([]Params, len(names))
	for i := range routed {
		routed[i] = Params{}
	}
	for k, v := range p {
		if !strings.Contains(k, ".") {
			for i := range routed {
				routed[i][k] = v
			}
		}
	}
	for k, v := range p {
		head, rest, dotted := strings.Cut(k, ".")
		if !dotted {
			continue
		}
		matched := false
		for i, name := range names {
			if name == head {
				routed[i][rest] = v
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("sim: param %q addresses component %q, not among the run's scenarios %v", k, head, names)
		}
	}
	return routed, nil
}

// Name returns the canonical spec.
func (c *Composite) Name() string { return c.spec }

// Components lists the component names in canonical order.
func (c *Composite) Components() []string {
	out := make([]string, len(c.comps))
	for i, comp := range c.comps {
		out[i] = comp.name
	}
	return out
}

// Description joins the component descriptions.
func (c *Composite) Description() string {
	return "composition: " + strings.Join(c.Components(), " + ") + " event streams in one world"
}

// Setup runs every component's Setup in canonical order, repointing
// s.Rand at the component's own derived stream first. Components that
// draw randomness at event time capture s.Rand during Setup (see the
// Scenario docs), so each component's events keep drawing from its own
// stream for the whole run.
func (c *Composite) Setup(s *Simulation) error {
	for _, comp := range c.comps {
		s.Rand = rand.New(rand.NewSource(ComponentSeed(s.Cfg.Seed, comp.name, comp.occ)))
		if err := comp.scn.Setup(s); err != nil {
			return fmt.Errorf("component %s: %w", comp.name, err)
		}
	}
	return nil
}

// DefaultRPs merges the component rosters: components are consulted in
// canonical order, the first to name an RP fixes its spec, and later
// components append only new names. Nil when no component has a roster
// (the engine then falls back to the builtin DefaultRPs). Each
// component sees the params routed at construction; the argument exists
// for the RPDefaulter interface.
func (c *Composite) DefaultRPs(Params) []RPSpec {
	var merged []RPSpec
	seen := map[string]bool{}
	for _, comp := range c.comps {
		d, ok := comp.scn.(RPDefaulter)
		if !ok {
			continue
		}
		for _, spec := range d.DefaultRPs(comp.params) {
			if seen[spec.Name] {
				continue
			}
			seen[spec.Name] = true
			merged = append(merged, spec)
		}
	}
	return merged
}

// ComponentSeed derives a scenario component's RNG stream seed: the
// master seed mixed with an FNV-1a hash of the component name and the
// occurrence index through a splitmix64 finaliser. Keyed by name, not
// by position in the spec, so a component's stream is identical whether
// it runs alone or inside any composition — and two occurrences of the
// same component get distinct streams.
func ComponentSeed(master int64, name string, occ int) int64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
		golden    = 0x9e3779b97f4a7c15
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	z := uint64(master) ^ h
	z += uint64(occ+1) * golden
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
