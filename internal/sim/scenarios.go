package sim

import (
	"fmt"
	"net/netip"

	"ripki/internal/dns"
	"ripki/internal/router"
	"ripki/internal/rpki/vrp"
	"ripki/internal/webworld"
)

// The built-in scenario library. Each scenario is a story about RPKI
// deployment evolving over time; all of them drive the same pipeline
// (world → VRP deltas → RTR → routers → probe) and differ only in the
// events they schedule.
func init() {
	Register("baseline", func(p Params) Scenario { return baseline{} })
	Register("roa-churn", func(p Params) Scenario { return &roaChurn{p: p} })
	Register("hijack-window", func(p Params) Scenario { return &hijackWindow{p: p} })
	Register("maxlen-misissuance", func(p Params) Scenario { return &maxlenMisissuance{p: p} })
	Register("cdn-migration", func(p Params) Scenario { return &cdnMigration{p: p} })
	Register("rtr-restart", func(p Params) Scenario { return &rtrRestart{p: p} })
	Register("rp-lag", func(p Params) Scenario { return &rpLag{p: p} })
}

// unsignedCDNPrefix finds the named CDN's first announced IPv4 prefix
// with no RPKI coverage — the paper's archetypal victim.
func unsignedCDNPrefix(s *Simulation, cdn string) (netip.Prefix, uint32, error) {
	org := s.World.CDNOrg(cdn)
	if org == nil {
		return netip.Prefix{}, 0, fmt.Errorf("sim: unknown CDN %q", cdn)
	}
	for _, p := range org.Prefixes {
		if !p.Addr().Is4() {
			continue
		}
		origin, ok := s.World.PinnedOriginOf(p)
		if !ok {
			continue
		}
		if s.TruthSet().Validate(p, origin) == vrp.NotFound {
			return p, origin, nil
		}
	}
	return netip.Prefix{}, 0, fmt.Errorf("sim: CDN %q has no unsigned announced IPv4 prefix", cdn)
}

// --- baseline ----------------------------------------------------------

// baseline runs the static world with no events: the control series.
type baseline struct{}

func (baseline) Name() string        { return "baseline" }
func (baseline) Description() string { return "static world, no events (control run)" }
func (baseline) Setup(*Simulation) error {
	return nil
}

// --- roa-churn ---------------------------------------------------------

// roaChurn models organic deployment motion: previously unsigned
// organisations issue ROAs at a steady rate while a smaller rate of
// revocations pulls coverage back — the background noise every relying
// party lives with. Params: issue (VRPs/interval, default 3), revoke
// (default 1), every_ticks (default 1).
type roaChurn struct {
	p Params
}

func (c *roaChurn) Name() string { return "roa-churn" }
func (c *roaChurn) Description() string {
	return "steady ROA issuance and revocation ramping coverage over time"
}

type churnCandidate struct {
	prefix netip.Prefix
	origin uint32
}

func (c *roaChurn) Setup(s *Simulation) error {
	issue := c.p.Int("issue", 3)
	revoke := c.p.Int("revoke", 1)
	every := c.p.Int("every_ticks", 1)

	var candidates []churnCandidate
	for _, p := range s.World.RoutedV4Prefixes() {
		origin, ok := s.World.PinnedOriginOf(p)
		if !ok {
			continue
		}
		if s.TruthSet().Validate(p, origin) == vrp.NotFound {
			candidates = append(candidates, churnCandidate{prefix: p, origin: origin})
		}
	}
	perm := s.Rand.Perm(len(candidates))
	next := 0
	var issued []vrp.VRP
	s.EveryTick(every, func() {
		for i := 0; i < issue && next < len(candidates); i++ {
			cand := candidates[perm[next]]
			next++
			v := vrp.VRP{Prefix: cand.prefix, MaxLength: cand.prefix.Bits(), ASN: cand.origin}
			s.IssueVRP(v, "churn")
			issued = append(issued, v)
		}
		for i := 0; i < revoke && len(issued) > 1; i++ {
			j := s.Rand.Intn(len(issued))
			v := issued[j]
			issued[j] = issued[len(issued)-1]
			issued = issued[:len(issued)-1]
			s.RevokeVRP(v, "churn")
		}
	})
	return nil
}

// --- hijack-window -----------------------------------------------------

// hijackWindow is the paper's tragedy on a clock: a popular CDN's
// unprotected prefix is sub-prefix hijacked; mid-incident the operator
// issues an emergency ROA; each relying party stays hijacked until its
// own cache refresh delivers the new payload and revalidation drops the
// now-invalid route — and the accept-all legacy router stays hijacked
// until the attacker gives up. The time series' hijacked_* columns are
// the per-router attack windows. Params: cdn (default akamai), attacker
// (ASN, default 65551), hijack_frac (default 0.1), roa_frac (default
// 0.4), end_frac (default 0.85).
type hijackWindow struct {
	p Params
}

func (h *hijackWindow) Name() string { return "hijack-window" }
func (h *hijackWindow) Description() string {
	return "sub-prefix hijack of an unprotected CDN prefix, closed by an emergency ROA propagating at RP refresh lag"
}

func (h *hijackWindow) Setup(s *Simulation) error {
	cdn := h.p.String("cdn", "akamai")
	attacker := uint32(h.p.Int("attacker", 65551))

	prefix, origin, err := unsignedCDNPrefix(s, cdn)
	if err != nil {
		return err
	}
	sub := netip.PrefixFrom(prefix.Addr(), prefix.Bits()+2)
	victim := webworld.HostAddr(sub, 7)

	s.AtFrac(h.p.Float("hijack_frac", 0.1), func() {
		s.StartHijack(Hijack{
			Name:   "cdn-subprefix",
			Prefix: sub,
			Path:   []uint32{attacker},
			Victim: victim,
		})
	})
	s.AtFrac(h.p.Float("roa_frac", 0.4), func() {
		s.IssueVRP(vrp.VRP{Prefix: prefix, MaxLength: prefix.Bits(), ASN: origin},
			fmt.Sprintf("emergency ROA by %s", cdn))
	})
	s.AtFrac(h.p.Float("end_frac", 0.85), func() {
		s.EndHijack("cdn-subprefix")
	})
	return nil
}

// --- maxlen-misissuance ------------------------------------------------

// maxlenMisissuance demonstrates the classic maxLength pitfall: an
// operator loosens a ROA's maxLength "for future deaggregation", an
// attacker answers with a forged-origin sub-prefix hijack that validates
// *Valid* — origin validation is satisfied, every policy accepts it —
// and only narrowing the ROA back turns the attack Invalid. Params:
// maxlen (default 24), attacker (default 65540), loosen_frac (0.2),
// attack_frac (0.45), fix_frac (0.7), end_frac (0.9).
type maxlenMisissuance struct {
	p Params
}

func (m *maxlenMisissuance) Name() string { return "maxlen-misissuance" }
func (m *maxlenMisissuance) Description() string {
	return "loosened ROA maxLength lets a forged-origin sub-prefix hijack validate as Valid"
}

func (m *maxlenMisissuance) Setup(s *Simulation) error {
	maxlen := m.p.Int("maxlen", 24)
	attacker := uint32(m.p.Int("attacker", 65540))

	// A cleanly signed aggregate whose ROA we can loosen: signed at its
	// own length, announced by the authorised AS, and room to deaggregate.
	var tight vrp.VRP
	found := false
	for _, v := range s.TruthVRPs() {
		if !v.Prefix.Addr().Is4() || v.Prefix.Bits() > maxlen-2 || v.MaxLength != v.Prefix.Bits() {
			continue
		}
		if origin, ok := s.World.PinnedOriginOf(v.Prefix); ok && origin == v.ASN {
			tight = v
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("sim: no suitable signed aggregate for maxlen misissuance")
	}
	loose := vrp.VRP{Prefix: tight.Prefix, MaxLength: maxlen, ASN: tight.ASN}
	sub := netip.PrefixFrom(tight.Prefix.Addr(), maxlen)
	victim := webworld.HostAddr(sub, 9)

	s.AtFrac(m.p.Float("loosen_frac", 0.2), func() {
		s.RevokeVRP(tight, "replaced by loose maxLength")
		s.IssueVRP(loose, fmt.Sprintf("maxLength loosened to /%d", maxlen))
	})
	s.AtFrac(m.p.Float("attack_frac", 0.45), func() {
		// Forged origin: the attacker prepends itself but keeps the
		// authorised AS as the path's origin, so the announcement
		// validates Valid under the loose ROA.
		s.StartHijack(Hijack{
			Name:   "forged-origin",
			Prefix: sub,
			Path:   []uint32{attacker, tight.ASN},
			Victim: victim,
		})
	})
	s.AtFrac(m.p.Float("fix_frac", 0.7), func() {
		s.RevokeVRP(loose, "maxLength narrowed back")
		s.IssueVRP(tight, "minimal ROA restored")
	})
	s.AtFrac(m.p.Float("end_frac", 0.9), func() {
		s.EndHijack("forged-origin")
	})
	return nil
}

// --- cdn-migration -----------------------------------------------------

// cdnMigration re-homes one CDN's delivery fleet into another provider's
// address space, batch by batch — the kind of provider switch the web's
// head ranks perform routinely. When the destination is the
// Internap-like ROA-signing CDN, the head's protection visibly rises as
// the migration proceeds; migrating away reverses it. Params: from
// (default akamai), to (default internap), every_ticks (default 1),
// batch (hosts per step; default sized to finish by done_frac, default
// 0.8).
type cdnMigration struct {
	p Params
}

func (c *cdnMigration) Name() string { return "cdn-migration" }
func (c *cdnMigration) Description() string {
	return "batched re-homing of a CDN's delivery hosts into another provider's (signed) address space"
}

func (c *cdnMigration) Setup(s *Simulation) error {
	from := c.p.String("from", "akamai")
	to := c.p.String("to", "internap")
	every := c.p.Int("every_ticks", 1)

	hosts := s.World.CacheHosts(from)
	if len(hosts) == 0 {
		return fmt.Errorf("sim: CDN %q has no cache hosts", from)
	}
	dest := s.World.CDNOrg(to)
	if dest == nil {
		return fmt.Errorf("sim: unknown destination CDN %q", to)
	}
	// Prefer the destination's RPKI-covered prefixes (Internap's four);
	// fall back to any announced IPv4 space.
	var destPrefixes []netip.Prefix
	for _, p := range dest.Prefixes {
		if !p.Addr().Is4() {
			continue
		}
		if origin, ok := s.World.PinnedOriginOf(p); ok && s.TruthSet().Validate(p, origin) == vrp.Valid {
			destPrefixes = append(destPrefixes, p)
		}
	}
	if len(destPrefixes) == 0 {
		for _, p := range dest.Prefixes {
			if p.Addr().Is4() {
				destPrefixes = append(destPrefixes, p)
			}
		}
	}
	if len(destPrefixes) == 0 {
		return fmt.Errorf("sim: destination CDN %q has no IPv4 prefixes", to)
	}

	totalTicks := int(s.Cfg.Duration / s.Cfg.Tick)
	steps := int(c.p.Float("done_frac", 0.8) * float64(totalTicks) / float64(every))
	if steps < 1 {
		steps = 1
	}
	batch := c.p.Int("batch", (len(hosts)+steps-1)/steps)
	if batch < 1 {
		batch = 1
	}

	next := 0
	moved := 0
	s.EveryTick(every, func() {
		if next >= len(hosts) {
			return
		}
		for i := 0; i < batch && next < len(hosts); i++ {
			host := hosts[next]
			p := destPrefixes[next%len(destPrefixes)]
			s.World.Registry.Remove(host, dns.TypeA)
			s.World.Registry.Remove(host, dns.TypeAAAA)
			s.World.Registry.Add(dns.RR{
				Name: host, Type: dns.TypeA, TTL: 20,
				Addr: webworld.HostAddr(p, 100+next%3800),
			})
			next++
			moved++
		}
		s.Publish(TopicDNS, fmt.Sprintf("migrated %d/%d cache hosts %s → %s", moved, len(hosts), from, to), nil)
	})
	return nil
}

// --- rtr-restart -------------------------------------------------------

// rtrRestart replays a relying-party nightmare: under steady ROA churn
// the RTR cache restarts mid-run with a new session ID. Warm restarts
// only force a full resync (serial history is gone); cold restarts
// additionally serve an *empty* payload set until revalidation
// completes, briefly tearing protection down for every fast-refreshing
// client. Params: restart_frac (default 0.5), cold (default true), plus
// roa-churn's issue/revoke/every_ticks.
type rtrRestart struct {
	p Params
}

func (r *rtrRestart) Name() string { return "rtr-restart" }
func (r *rtrRestart) Description() string {
	return "RTR cache session restart (warm or cold) under background ROA churn"
}

func (r *rtrRestart) Setup(s *Simulation) error {
	churn := &roaChurn{p: r.p}
	if err := churn.Setup(s); err != nil {
		return err
	}
	cold := r.p.String("cold", "true") == "true"
	s.AtFrac(r.p.Float("restart_frac", 0.5), func() {
		s.RestartCache(cold)
	})
	return nil
}

// --- rp-lag ------------------------------------------------------------

// rpLag isolates relying-party refresh lag: identical drop-invalid
// routers whose caches refresh at 1, 5, and slow_ticks-tick intervals
// all chase the same ROA churn; the vrps_* columns fan out into a
// staircase whose width IS the lag. Params: slow_ticks (default 20),
// plus roa-churn's issue/revoke/every_ticks.
type rpLag struct {
	p Params
}

func (r *rpLag) Name() string { return "rp-lag" }
func (r *rpLag) Description() string {
	return "identical validators at increasing cache-refresh lag chasing the same ROA churn"
}

func (r *rpLag) DefaultRPs(p Params) []RPSpec {
	return []RPSpec{
		{Name: "rp-1t", RefreshTicks: 1, Policy: router.PolicyDropInvalid},
		{Name: "rp-5t", RefreshTicks: 5, Policy: router.PolicyDropInvalid},
		{Name: fmt.Sprintf("rp-%dt", p.Int("slow_ticks", 20)), RefreshTicks: p.Int("slow_ticks", 20), Policy: router.PolicyDropInvalid},
		{Name: "legacy", RefreshTicks: 0, Policy: router.PolicyAcceptAll},
	}
}

func (r *rpLag) Setup(s *Simulation) error {
	churn := &roaChurn{p: r.p}
	return churn.Setup(s)
}
