package sim

import (
	"fmt"
	"net/netip"

	"ripki/internal/dns"
	"ripki/internal/router"
	"ripki/internal/rpki/repo"
	"ripki/internal/rpki/vrp"
	"ripki/internal/webworld"
)

// The built-in scenario library. Each scenario is a story about RPKI
// deployment evolving over time; all of them drive the same pipeline
// (world → VRP deltas → RTR → routers → probe) and differ only in the
// events they schedule.
func init() {
	Register("baseline", func(p Params) Scenario { return baseline{} })
	Register("roa-churn", func(p Params) Scenario { return &roaChurn{p: p} })
	Register("hijack-window", func(p Params) Scenario { return &hijackWindow{p: p} })
	Register("maxlen-misissuance", func(p Params) Scenario { return &maxlenMisissuance{p: p} })
	Register("cdn-migration", func(p Params) Scenario { return &cdnMigration{p: p} })
	Register("rtr-restart", func(p Params) Scenario { return &rtrRestart{p: p} })
	Register("rp-lag", func(p Params) Scenario { return &rpLag{p: p} })
	Register("route-leak", func(p Params) Scenario { return &routeLeak{p: p} })
	Register("trust-anchor-outage", func(p Params) Scenario { return &taOutage{p: p} })
	Register("delegated-ca-compromise", func(p Params) Scenario { return &caCompromise{p: p} })
}

// unsignedCDNPrefix finds the named CDN's first announced IPv4 prefix
// with no RPKI coverage — the paper's archetypal victim.
func unsignedCDNPrefix(s *Simulation, cdn string) (netip.Prefix, uint32, error) {
	org := s.World.CDNOrg(cdn)
	if org == nil {
		return netip.Prefix{}, 0, fmt.Errorf("sim: unknown CDN %q", cdn)
	}
	for _, p := range org.Prefixes {
		if !p.Addr().Is4() {
			continue
		}
		origin, ok := s.World.PinnedOriginOf(p)
		if !ok {
			continue
		}
		if s.TruthSet().Validate(p, origin) == vrp.NotFound {
			return p, origin, nil
		}
	}
	return netip.Prefix{}, 0, fmt.Errorf("sim: CDN %q has no unsigned announced IPv4 prefix", cdn)
}

// --- baseline ----------------------------------------------------------

// baseline runs the static world with no events: the control series.
type baseline struct{}

func (baseline) Name() string        { return "baseline" }
func (baseline) Description() string { return "static world, no events (control run)" }
func (baseline) Setup(*Simulation) error {
	return nil
}

// --- roa-churn ---------------------------------------------------------

// roaChurn models organic deployment motion: previously unsigned
// organisations issue ROAs at a steady rate while a smaller rate of
// revocations pulls coverage back — the background noise every relying
// party lives with. Params: issue (VRPs/interval, default 3), revoke
// (default 1), every_ticks (default 1).
type roaChurn struct {
	p Params
}

func (c *roaChurn) Name() string { return "roa-churn" }
func (c *roaChurn) Description() string {
	return "steady ROA issuance and revocation ramping coverage over time"
}

type churnCandidate struct {
	prefix netip.Prefix
	origin uint32
}

func (c *roaChurn) Setup(s *Simulation) error {
	issue := c.p.Int("issue", 3)
	revoke := c.p.Int("revoke", 1)
	every := c.p.Int("every_ticks", 1)

	var candidates []churnCandidate
	for _, p := range s.World.RoutedV4Prefixes() {
		origin, ok := s.World.PinnedOriginOf(p)
		if !ok {
			continue
		}
		if s.TruthSet().Validate(p, origin) == vrp.NotFound {
			candidates = append(candidates, churnCandidate{prefix: p, origin: origin})
		}
	}
	// Capture the component stream: the revoke draws happen at event
	// time, after a composite may have repointed s.Rand elsewhere.
	rng := s.Rand
	perm := rng.Perm(len(candidates))
	next := 0
	var issued []vrp.VRP
	s.EveryTick(every, func() {
		for i := 0; i < issue && next < len(candidates); i++ {
			cand := candidates[perm[next]]
			next++
			v := vrp.VRP{Prefix: cand.prefix, MaxLength: cand.prefix.Bits(), ASN: cand.origin}
			s.IssueVRP(v, "churn")
			issued = append(issued, v)
		}
		for i := 0; i < revoke && len(issued) > 1; i++ {
			j := rng.Intn(len(issued))
			v := issued[j]
			issued[j] = issued[len(issued)-1]
			issued = issued[:len(issued)-1]
			s.RevokeVRP(v, "churn")
		}
	})
	return nil
}

// --- hijack-window -----------------------------------------------------

// hijackWindow is the paper's tragedy on a clock: a popular CDN's
// unprotected prefix is sub-prefix hijacked; mid-incident the operator
// issues an emergency ROA; each relying party stays hijacked until its
// own cache refresh delivers the new payload and revalidation drops the
// now-invalid route — and the accept-all legacy router stays hijacked
// until the attacker gives up. The time series' hijacked_* columns are
// the per-router attack windows. Params: cdn (default akamai), attacker
// (ASN, default 65551), hijack_frac (default 0.1), roa_frac (default
// 0.4), end_frac (default 0.85).
type hijackWindow struct {
	p Params
}

func (h *hijackWindow) Name() string { return "hijack-window" }
func (h *hijackWindow) Description() string {
	return "sub-prefix hijack of an unprotected CDN prefix, closed by an emergency ROA propagating at RP refresh lag"
}

func (h *hijackWindow) Setup(s *Simulation) error {
	cdn := h.p.String("cdn", "akamai")
	attacker := uint32(h.p.Int("attacker", 65551))

	prefix, origin, err := unsignedCDNPrefix(s, cdn)
	if err != nil {
		return err
	}
	sub := netip.PrefixFrom(prefix.Addr(), prefix.Bits()+2)
	victim := webworld.HostAddr(sub, 7)

	s.AtFrac(h.p.Float("hijack_frac", 0.1), func() {
		s.StartHijack(Hijack{
			Name:   "cdn-subprefix",
			Prefix: sub,
			Path:   []uint32{attacker},
			Victim: victim,
		})
	})
	s.AtFrac(h.p.Float("roa_frac", 0.4), func() {
		s.IssueVRP(vrp.VRP{Prefix: prefix, MaxLength: prefix.Bits(), ASN: origin},
			fmt.Sprintf("emergency ROA by %s", cdn))
	})
	s.AtFrac(h.p.Float("end_frac", 0.85), func() {
		s.EndHijack("cdn-subprefix")
	})
	return nil
}

// --- maxlen-misissuance ------------------------------------------------

// maxlenMisissuance demonstrates the classic maxLength pitfall: an
// operator loosens a ROA's maxLength "for future deaggregation", an
// attacker answers with a forged-origin sub-prefix hijack that validates
// *Valid* — origin validation is satisfied, every policy accepts it —
// and only narrowing the ROA back turns the attack Invalid. Params:
// maxlen (default 24), attacker (default 65540), loosen_frac (0.2),
// attack_frac (0.45), fix_frac (0.7), end_frac (0.9).
type maxlenMisissuance struct {
	p Params
}

func (m *maxlenMisissuance) Name() string { return "maxlen-misissuance" }
func (m *maxlenMisissuance) Description() string {
	return "loosened ROA maxLength lets a forged-origin sub-prefix hijack validate as Valid"
}

func (m *maxlenMisissuance) Setup(s *Simulation) error {
	maxlen := m.p.Int("maxlen", 24)
	attacker := uint32(m.p.Int("attacker", 65540))

	// A cleanly signed aggregate whose ROA we can loosen: signed at its
	// own length, announced by the authorised AS, and room to deaggregate.
	var tight vrp.VRP
	found := false
	for _, v := range s.TruthVRPs() {
		if !v.Prefix.Addr().Is4() || v.Prefix.Bits() > maxlen-2 || v.MaxLength != v.Prefix.Bits() {
			continue
		}
		if origin, ok := s.World.PinnedOriginOf(v.Prefix); ok && origin == v.ASN {
			tight = v
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("sim: no suitable signed aggregate for maxlen misissuance")
	}
	loose := vrp.VRP{Prefix: tight.Prefix, MaxLength: maxlen, ASN: tight.ASN}
	sub := netip.PrefixFrom(tight.Prefix.Addr(), maxlen)
	victim := webworld.HostAddr(sub, 9)

	s.AtFrac(m.p.Float("loosen_frac", 0.2), func() {
		s.RevokeVRP(tight, "replaced by loose maxLength")
		s.IssueVRP(loose, fmt.Sprintf("maxLength loosened to /%d", maxlen))
	})
	s.AtFrac(m.p.Float("attack_frac", 0.45), func() {
		// Forged origin: the attacker prepends itself but keeps the
		// authorised AS as the path's origin, so the announcement
		// validates Valid under the loose ROA.
		s.StartHijack(Hijack{
			Name:   "forged-origin",
			Prefix: sub,
			Path:   []uint32{attacker, tight.ASN},
			Victim: victim,
		})
	})
	s.AtFrac(m.p.Float("fix_frac", 0.7), func() {
		s.RevokeVRP(loose, "maxLength narrowed back")
		s.IssueVRP(tight, "minimal ROA restored")
	})
	s.AtFrac(m.p.Float("end_frac", 0.9), func() {
		s.EndHijack("forged-origin")
	})
	return nil
}

// --- cdn-migration -----------------------------------------------------

// cdnMigration re-homes one CDN's delivery fleet into another provider's
// address space, batch by batch — the kind of provider switch the web's
// head ranks perform routinely. When the destination is the
// Internap-like ROA-signing CDN, the head's protection visibly rises as
// the migration proceeds; migrating away reverses it. Params: from
// (default akamai), to (default internap), every_ticks (default 1),
// batch (hosts per step; default sized to finish by done_frac, default
// 0.8).
type cdnMigration struct {
	p Params
}

func (c *cdnMigration) Name() string { return "cdn-migration" }
func (c *cdnMigration) Description() string {
	return "batched re-homing of a CDN's delivery hosts into another provider's (signed) address space"
}

func (c *cdnMigration) Setup(s *Simulation) error {
	from := c.p.String("from", "akamai")
	to := c.p.String("to", "internap")
	every := c.p.Int("every_ticks", 1)

	hosts := s.World.CacheHosts(from)
	if len(hosts) == 0 {
		return fmt.Errorf("sim: CDN %q has no cache hosts", from)
	}
	dest := s.World.CDNOrg(to)
	if dest == nil {
		return fmt.Errorf("sim: unknown destination CDN %q", to)
	}
	// Prefer the destination's RPKI-covered prefixes (Internap's four);
	// fall back to any announced IPv4 space.
	var destPrefixes []netip.Prefix
	for _, p := range dest.Prefixes {
		if !p.Addr().Is4() {
			continue
		}
		if origin, ok := s.World.PinnedOriginOf(p); ok && s.TruthSet().Validate(p, origin) == vrp.Valid {
			destPrefixes = append(destPrefixes, p)
		}
	}
	if len(destPrefixes) == 0 {
		for _, p := range dest.Prefixes {
			if p.Addr().Is4() {
				destPrefixes = append(destPrefixes, p)
			}
		}
	}
	if len(destPrefixes) == 0 {
		return fmt.Errorf("sim: destination CDN %q has no IPv4 prefixes", to)
	}

	totalTicks := int(s.Cfg.Duration / s.Cfg.Tick)
	steps := int(c.p.Float("done_frac", 0.8) * float64(totalTicks) / float64(every))
	if steps < 1 {
		steps = 1
	}
	batch := c.p.Int("batch", (len(hosts)+steps-1)/steps)
	if batch < 1 {
		batch = 1
	}

	next := 0
	moved := 0
	s.EveryTick(every, func() {
		if next >= len(hosts) {
			return
		}
		for i := 0; i < batch && next < len(hosts); i++ {
			host := hosts[next]
			p := destPrefixes[next%len(destPrefixes)]
			s.World.Registry.Remove(host, dns.TypeA)
			s.World.Registry.Remove(host, dns.TypeAAAA)
			s.World.Registry.Add(dns.RR{
				Name: host, Type: dns.TypeA, TTL: 20,
				Addr: webworld.HostAddr(p, 100+next%3800),
			})
			next++
			moved++
		}
		s.Publish(TopicDNS, fmt.Sprintf("migrated %d/%d cache hosts %s → %s", moved, len(hosts), from, to), nil)
	})
	return nil
}

// --- rtr-restart -------------------------------------------------------

// rtrRestart replays a relying-party nightmare: under steady ROA churn
// the RTR cache restarts mid-run with a new session ID. Warm restarts
// only force a full resync (serial history is gone); cold restarts
// additionally serve an *empty* payload set until revalidation
// completes, briefly tearing protection down for every fast-refreshing
// client. Params: restart_frac (default 0.5), cold (default true), plus
// roa-churn's issue/revoke/every_ticks.
type rtrRestart struct {
	p Params
}

func (r *rtrRestart) Name() string { return "rtr-restart" }
func (r *rtrRestart) Description() string {
	return "RTR cache session restart (warm or cold) under background ROA churn"
}

func (r *rtrRestart) Setup(s *Simulation) error {
	churn := &roaChurn{p: r.p}
	if err := churn.Setup(s); err != nil {
		return err
	}
	cold := r.p.Bool("cold", true)
	s.AtFrac(r.p.Float("restart_frac", 0.5), func() {
		s.RestartCache(cold)
	})
	return nil
}

// --- rp-lag ------------------------------------------------------------

// rpLag isolates relying-party refresh lag: identical drop-invalid
// routers whose caches refresh at 1, 5, and slow_ticks-tick intervals
// all chase the same ROA churn; the vrps_* columns fan out into a
// staircase whose width IS the lag. Params: slow_ticks (default 20),
// plus roa-churn's issue/revoke/every_ticks.
type rpLag struct {
	p Params
}

func (r *rpLag) Name() string { return "rp-lag" }
func (r *rpLag) Description() string {
	return "identical validators at increasing cache-refresh lag chasing the same ROA churn"
}

func (r *rpLag) DefaultRPs(p Params) []RPSpec {
	return []RPSpec{
		{Name: "rp-1t", RefreshTicks: 1, Policy: router.PolicyDropInvalid},
		{Name: "rp-5t", RefreshTicks: 5, Policy: router.PolicyDropInvalid},
		{Name: fmt.Sprintf("rp-%dt", p.Int("slow_ticks", 20)), RefreshTicks: p.Int("slow_ticks", 20), Policy: router.PolicyDropInvalid},
		{Name: "legacy", RefreshTicks: 0, Policy: router.PolicyAcceptAll},
	}
}

func (r *rpLag) Setup(s *Simulation) error {
	churn := &roaChurn{p: r.p}
	return churn.Setup(s)
}

// --- route-leak --------------------------------------------------------

// routeLeak models the failure mode origin validation only half-covers:
// a multihomed customer leaks internally deaggregated more-specifics of
// its providers' prefixes to the world, origin intact. Leaked
// more-specifics of tightly signed prefixes validate Invalid (a
// maxLength violation) and drop-invalid routers discard them — but for
// the unsigned majority the leak validates NotFound and every router
// follows it. The gap between hijacked_legacy and hijacked_rp-* is
// exactly the signed fraction of the leaked set. Params: leaker (ASN,
// default 65530), count (prefixes leaked, default 12), leak_frac
// (default 0.25), end_frac (default 0.8).
type routeLeak struct {
	p Params
}

func (l *routeLeak) Name() string { return "route-leak" }
func (l *routeLeak) Description() string {
	return "leaked more-specifics with intact origins: OV drops only the signed fraction"
}

func (l *routeLeak) Setup(s *Simulation) error {
	leaker := uint32(l.p.Int("leaker", 65530))
	count := l.p.Int("count", 12)

	// Split the candidate pool by what the leaked more-specific would
	// validate to, then leak a mix: the signed half shows OV working,
	// the unsigned half shows it having nothing to say.
	var signed, unsigned []Hijack
	for i, p := range s.World.RoutedV4Prefixes() {
		if p.Bits() >= 31 {
			continue
		}
		origin, ok := s.World.PinnedOriginOf(p)
		if !ok {
			continue
		}
		sub := netip.PrefixFrom(p.Addr(), p.Bits()+1)
		h := Hijack{
			Name:   fmt.Sprintf("leak-%d", i),
			Prefix: sub,
			Path:   []uint32{leaker, origin},
			Victim: webworld.HostAddr(sub, 3),
		}
		switch s.TruthSet().Validate(sub, origin) {
		case vrp.Invalid:
			signed = append(signed, h)
		case vrp.NotFound:
			unsigned = append(unsigned, h)
		}
	}
	leaks := make([]Hijack, 0, count)
	nSigned := 0
	for i := 0; len(leaks) < count && (i < len(signed) || i < len(unsigned)); i++ {
		if i < len(signed) {
			leaks = append(leaks, signed[i])
			nSigned++
		}
		if i < len(unsigned) && len(leaks) < count {
			leaks = append(leaks, unsigned[i])
		}
	}
	if len(leaks) == 0 {
		return fmt.Errorf("sim: no leakable prefixes in this world")
	}

	s.AtFrac(l.p.Float("leak_frac", 0.25), func() {
		for _, h := range leaks {
			s.StartHijack(h)
		}
		s.Publish(TopicBGP, fmt.Sprintf("AS%d leaks %d more-specifics (%d signed, %d unsigned)",
			leaker, len(leaks), nSigned, len(leaks)-nSigned), nil)
	})
	s.AtFrac(l.p.Float("end_frac", 0.8), func() {
		for _, h := range leaks {
			s.EndHijack(h.Name)
		}
	})
	return nil
}

// --- trust-anchor-outage -----------------------------------------------

// taOutage takes one RIR's publication point dark: every VRP under that
// trust anchor vanishes from what relying parties can fetch, previously
// protected prefixes fall back to NotFound, and a hijack launched inside
// the outage window sails through even drop-invalid routers — the ROA
// that would have branded it Invalid is unreachable. Slow-refreshing RPs
// keep validating on their stale (complete) snapshot, so for once lag
// *protects*. Recovery restores the subtree and the hijack dies at each
// RP's next refresh. Params: ta (RIR name; default: the anchor holding
// the most VRPs), attacker (default 65533), attack (default true),
// outage_frac (0.15), attack_frac (0.3), restore_frac (0.6), end_frac
// (0.9).
type taOutage struct {
	p Params
}

func (o *taOutage) Name() string { return "trust-anchor-outage" }
func (o *taOutage) Description() string {
	return "one RIR trust anchor goes dark: its whole VRP subtree vanishes until recovery"
}

func (o *taOutage) Setup(s *Simulation) error {
	name := o.p.String("ta", "")
	var lost []vrp.VRP
	if name != "" {
		lost = o.anchorTruth(s, name)
	} else {
		// Default to the anchor whose subtree holds the most ground-truth
		// VRPs, ties broken by RIR roster order.
		for _, cand := range repo.RIRNames {
			vs := o.anchorTruth(s, cand)
			if len(vs) > len(lost) {
				name, lost = cand, vs
			}
		}
	}
	if len(lost) == 0 {
		return fmt.Errorf("sim: trust anchor %q holds no validated VRPs in this world", name)
	}

	s.AtFrac(o.p.Float("outage_frac", 0.15), func() {
		s.Publish(TopicRTR, fmt.Sprintf("trust anchor %s dark: %d VRPs lost", name, len(lost)),
			AnchorData{Anchor: name, VRPs: len(lost)})
		for _, v := range lost {
			s.RevokeVRP(v, "TA "+name+" outage")
		}
	})
	s.AtFrac(o.p.Float("restore_frac", 0.6), func() {
		s.Publish(TopicRTR, fmt.Sprintf("trust anchor %s recovered: %d VRPs restored", name, len(lost)),
			AnchorData{Anchor: name, VRPs: len(lost), Restored: true})
		for _, v := range lost {
			s.IssueVRP(v, "TA "+name+" recovery")
		}
	})

	if o.p.Bool("attack", true) {
		sub, victim, err := o.outageTarget(s, lost)
		if err != nil {
			return err
		}
		attacker := uint32(o.p.Int("attacker", 65533))
		s.AtFrac(o.p.Float("attack_frac", 0.3), func() {
			s.StartHijack(Hijack{Name: "outage-window", Prefix: sub, Path: []uint32{attacker}, Victim: victim})
		})
		s.AtFrac(o.p.Float("end_frac", 0.9), func() {
			s.EndHijack("outage-window")
		})
	}
	return nil
}

// AnchorData is the typed payload on TopicRTR trust-anchor events: the
// anchor that changed state and the size of its VRP subtree.
type AnchorData struct {
	Anchor   string
	VRPs     int
	Restored bool
}

// anchorTruth returns the ground-truth VRPs living under the named
// trust anchor, in VRP sort order.
func (o *taOutage) anchorTruth(s *Simulation, name string) []vrp.VRP {
	res := s.World.Repo.ValidateAnchor(s.Start(), name)
	var out []vrp.VRP
	for _, v := range res.VRPs.All() {
		if s.HasVRP(v) {
			out = append(out, v)
		}
	}
	return out
}

// outageTarget picks the attack: a sub-prefix that is Invalid while the
// RPKI is whole but NotFound once the anchor's subtree is gone — i.e.
// covered only by a tightly signed VRP the outage removes.
func (o *taOutage) outageTarget(s *Simulation, lost []vrp.VRP) (netip.Prefix, netip.Addr, error) {
	remaining := make([]vrp.VRP, 0, len(s.truth))
	gone := make(map[vrp.VRP]bool, len(lost))
	for _, v := range lost {
		gone[v] = true
	}
	for _, v := range s.TruthVRPs() {
		if !gone[v] {
			remaining = append(remaining, v)
		}
	}
	rest, err := vrp.FromVRPs(remaining)
	if err != nil {
		return netip.Prefix{}, netip.Addr{}, err
	}
	for _, v := range lost {
		if !v.Prefix.Addr().Is4() || v.MaxLength != v.Prefix.Bits() || v.Prefix.Bits() > 28 {
			continue
		}
		if origin, ok := s.World.PinnedOriginOf(v.Prefix); !ok || origin != v.ASN {
			continue
		}
		sub := netip.PrefixFrom(v.Prefix.Addr(), v.Prefix.Bits()+2)
		if s.TruthSet().Validate(sub, 0) == vrp.Invalid && rest.Validate(sub, 0) == vrp.NotFound {
			return sub, webworld.HostAddr(sub, 5), nil
		}
	}
	return netip.Prefix{}, netip.Addr{}, fmt.Errorf("sim: no hijackable prefix under the outaged trust anchor")
}

// --- delegated-ca-compromise -------------------------------------------

// caCompromise turns the RPKI itself into the attack vector: a
// compromised delegated CA issues a rogue ROA authorising the attacker's
// AS for a sub-prefix of a properly signed aggregate. Once relying
// parties sync the rogue payload the attacker's announcement validates
// *Valid* — drop-invalid routers accept the hijack, and RPs still on a
// pre-compromise snapshot drop it (stale caches briefly protect, the
// mirror image of the hijack-window story). Revoking the rogue ROA makes
// the announcement Invalid under the victim's own tight ROA, and each RP
// sheds it at its next refresh. Params: attacker (default 65532),
// compromise_frac (0.2), attack_frac (0.35), revoke_frac (0.65),
// end_frac (0.9).
type caCompromise struct {
	p Params
}

func (c *caCompromise) Name() string { return "delegated-ca-compromise" }
func (c *caCompromise) Description() string {
	return "a compromised CA's rogue ROA makes the attacker's hijack validate Valid until revoked"
}

func (c *caCompromise) Setup(s *Simulation) error {
	attacker := uint32(c.p.Int("attacker", 65532))

	// The victim: a tightly signed, announced aggregate, so that without
	// the rogue ROA the attack is cleanly Invalid.
	var tight vrp.VRP
	found := false
	for _, v := range s.TruthVRPs() {
		if !v.Prefix.Addr().Is4() || v.MaxLength != v.Prefix.Bits() || v.Prefix.Bits() > 28 {
			continue
		}
		if origin, ok := s.World.PinnedOriginOf(v.Prefix); ok && origin == v.ASN {
			tight = v
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("sim: no tightly signed aggregate to compromise")
	}
	sub := netip.PrefixFrom(tight.Prefix.Addr(), tight.Prefix.Bits()+2)
	rogue := vrp.VRP{Prefix: sub, MaxLength: sub.Bits(), ASN: attacker}

	s.AtFrac(c.p.Float("compromise_frac", 0.2), func() {
		s.IssueVRP(rogue, "rogue ROA from compromised delegated CA")
	})
	s.AtFrac(c.p.Float("attack_frac", 0.35), func() {
		s.StartHijack(Hijack{Name: "ca-compromise", Prefix: sub, Path: []uint32{attacker}, Victim: webworld.HostAddr(sub, 11)})
	})
	s.AtFrac(c.p.Float("revoke_frac", 0.65), func() {
		s.RevokeVRP(rogue, "rogue ROA revoked, CA re-keyed")
	})
	s.AtFrac(c.p.Float("end_frac", 0.9), func() {
		s.EndHijack("ca-compromise")
	})
	return nil
}
