package sim

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"
	"time"
)

// The incident stream turns bus traffic into machine-readable incident
// records — "a hijack window opened against prefix P", "trust anchor X
// went dark" — instead of detail strings a consumer must regex. The
// record shape follows the telemetry-generator idiom (event_type +
// source + timestamp + flat attributes map) so downstream tooling can
// route on event_type without knowing the scenario that produced it.

// IncidentSource identifies where an incident was observed: the feed it
// belongs to (rpki, bgp, rtr, rp) and the component that saw it.
type IncidentSource struct {
	Feed     string `json:"feed"`
	Observer string `json:"observer"`
}

// Incident is one structured record in the stream. Timestamps are
// virtual offsets from the start of the run, so the stream is
// byte-identical for the same seed and flags.
type Incident struct {
	// Seq numbers incidents from 0 in emission order.
	Seq int
	// T is the virtual offset since the start of the run.
	T time.Duration
	// EventType is the dotted kind, e.g. "bgp.hijack_announce".
	EventType string
	Source    IncidentSource
	// Scenario is the run's canonical scenario spec.
	Scenario string
	// Attributes carries event-specific fields as strings.
	Attributes map[string]string
}

// incidentJSON fixes the serialised field order; attribute keys are
// sorted by encoding/json, so the wire form is deterministic.
type incidentJSON struct {
	Seq        int               `json:"seq"`
	TUS        int64             `json:"t_us"`
	EventType  string            `json:"event_type"`
	Source     IncidentSource    `json:"source"`
	Scenario   string            `json:"scenario"`
	Attributes map[string]string `json:"attributes,omitempty"`
}

// MarshalJSON renders the record in its canonical wire form (virtual
// time as integer microseconds, fixed field order).
func (in Incident) MarshalJSON() ([]byte, error) {
	return json.Marshal(incidentJSON{
		Seq:        in.Seq,
		TUS:        in.T.Microseconds(),
		EventType:  in.EventType,
		Source:     in.Source,
		Scenario:   in.Scenario,
		Attributes: in.Attributes,
	})
}

// IncidentLog accumulates incidents in emission order — the convenience
// sink for CLI export (`ripki-sim -events`).
type IncidentLog struct {
	Incidents []Incident
}

// Add appends one incident; it is the AttachIncidents callback shape.
func (l *IncidentLog) Add(in Incident) { l.Incidents = append(l.Incidents, in) }

// WriteJSONL writes one canonical JSON object per line. Same seed and
// flags ⇒ byte-identical output (CI diffs two runs).
func (l *IncidentLog) WriteJSONL(w io.Writer) error {
	for i := range l.Incidents {
		b, err := json.Marshal(l.Incidents[i])
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// rpLagState tracks one relying party's distance from the cache: the
// serial it last synchronised, whether it is currently behind, and —
// when behind — since when and whether the episode has been announced.
type rpLagState struct {
	lastSerial uint32
	behind     bool
	since      time.Duration
	announced  bool
}

// incidentRecorder derives incidents from bus events. It keeps just
// enough state to turn flush/refresh serial bookkeeping into RP lag
// *transitions*: an RP that catches up within the very tick that left
// it behind never produces an episode (lag_started is emitted lazily,
// once virtual time has moved past the flush that opened the gap).
type incidentRecorder struct {
	emit     func(Incident)
	scenario string
	seq      int

	cacheSerial uint32
	rpOrder     []string
	states      map[string]*rpLagState
}

// AttachIncidents subscribes an incident recorder to the bus and
// delivers each derived incident to emit, in deterministic order.
// Attach before Run; the callback runs synchronously inside Step.
func (s *Simulation) AttachIncidents(emit func(Incident)) {
	rec := &incidentRecorder{
		emit:        emit,
		scenario:    s.Series.Scenario,
		cacheSerial: s.Server.Serial(),
		states:      make(map[string]*rpLagState),
	}
	for _, rp := range s.RPs {
		if rp.Client == nil {
			continue
		}
		rec.rpOrder = append(rec.rpOrder, rp.Spec.Name)
		rec.states[rp.Spec.Name] = &rpLagState{lastSerial: rp.Client.Serial()}
	}
	s.Bus.SubscribeAll(rec.handle)
}

func (rec *incidentRecorder) record(t time.Duration, eventType string, src IncidentSource, attrs map[string]string) {
	rec.emit(Incident{
		Seq:        rec.seq,
		T:          t,
		EventType:  eventType,
		Source:     src,
		Scenario:   rec.scenario,
		Attributes: attrs,
	})
	rec.seq++
}

func (rec *incidentRecorder) handle(e Event) {
	// Lag episodes that survived past their opening tick become real:
	// emit their start (stamped at the flush that opened the gap) before
	// anything at a later instant.
	for _, name := range rec.rpOrder {
		st := rec.states[name]
		if st.behind && !st.announced && e.T > st.since {
			st.announced = true
			rec.record(st.since, "rp.lag_started", IncidentSource{Feed: "rp", Observer: name},
				map[string]string{"rp": name, "cache_serial": formatUint(rec.cacheSerial)})
		}
	}

	switch d := e.Data.(type) {
	case ROAData:
		kind := "rpki.roa_issue"
		if d.Revoke {
			kind = "rpki.roa_revoke"
		}
		rec.record(e.T, kind, IncidentSource{Feed: "rpki", Observer: "registry"}, map[string]string{
			"prefix":     d.VRP.Prefix.String(),
			"origin_as":  formatUint(d.VRP.ASN),
			"max_length": strconv.Itoa(int(d.VRP.MaxLength)),
			"reason":     d.Reason,
		})
	case RouteData:
		attrs := map[string]string{"prefix": d.Prefix.String()}
		if len(d.Path) > 0 {
			attrs["path"] = formatPath(d.Path)
		}
		kind := "bgp.route_announce"
		if d.Withdraw {
			kind = "bgp.route_withdraw"
		}
		if d.Hijack != "" {
			kind = "bgp.hijack_announce"
			if d.Withdraw {
				kind = "bgp.hijack_withdraw"
			}
			attrs["name"] = d.Hijack
			if d.Victim.IsValid() {
				attrs["victim"] = d.Victim.String()
			}
		}
		rec.record(e.T, kind, IncidentSource{Feed: "bgp", Observer: "collector"}, attrs)
	case RestartData:
		if d.Recovered {
			rec.record(e.T, "rtr.cache_recovered", IncidentSource{Feed: "rtr", Observer: "cache"}, nil)
			break
		}
		mode := "warm"
		if d.Cold {
			mode = "cold"
		}
		rec.record(e.T, "rtr.cache_restart", IncidentSource{Feed: "rtr", Observer: "cache"},
			map[string]string{"mode": mode})
	case AnchorData:
		kind := "rpki.trust_anchor_outage"
		if d.Restored {
			kind = "rpki.trust_anchor_recovery"
		}
		rec.record(e.T, kind, IncidentSource{Feed: "rpki", Observer: "registry"}, map[string]string{
			"anchor": d.Anchor,
			"vrps":   strconv.Itoa(d.VRPs),
		})
	case FlushData:
		rec.cacheSerial = d.Serial
		for _, name := range rec.rpOrder {
			st := rec.states[name]
			if st.lastSerial != rec.cacheSerial && !st.behind {
				st.behind = true
				st.since = e.T
				st.announced = false
			}
		}
	case RefreshData:
		st, ok := rec.states[d.RP]
		if !ok {
			break
		}
		st.lastSerial = d.Serial
		if st.behind && d.Serial == rec.cacheSerial {
			if st.announced {
				rec.record(e.T, "rp.lag_cleared", IncidentSource{Feed: "rp", Observer: d.RP}, map[string]string{
					"rp":             d.RP,
					"serial":         formatUint(d.Serial),
					"behind_seconds": strconv.FormatFloat((e.T - st.since).Seconds(), 'f', -1, 64),
				})
			}
			st.behind = false
			st.announced = false
		}
	}
}

func formatUint(v uint32) string { return strconv.FormatUint(uint64(v), 10) }

// formatPath renders an AS path as space-separated ASNs.
func formatPath(path []uint32) string {
	parts := make([]string, len(path))
	for i, as := range path {
		parts[i] = formatUint(as)
	}
	return strings.Join(parts, " ")
}
