package sim

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// incidentRun runs one scenario with an incident recorder attached and
// returns the log plus its JSONL export.
func incidentRun(t *testing.T, cfg Config) (*IncidentLog, []byte) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	log := &IncidentLog{}
	s.AttachIncidents(log.Add)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return log, buf.Bytes()
}

func countTypes(log *IncidentLog) map[string]int {
	counts := make(map[string]int)
	for _, in := range log.Incidents {
		counts[in.EventType]++
	}
	return counts
}

// TestIncidentDeterminism is the export contract: same seed + flags ⇒
// byte-identical JSONL. CI diffs the CLI equivalent (-events).
func TestIncidentDeterminism(t *testing.T) {
	_, a := incidentRun(t, testConfig("hijack-window+rp-lag"))
	_, b := incidentRun(t, testConfig("hijack-window+rp-lag"))
	if !bytes.Equal(a, b) {
		t.Fatalf("two same-seed incident streams differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("incident stream is empty")
	}
}

// TestIncidentHijackStory: hijack-window must replay as typed records —
// the hijack announce with its victim, the emergency ROA, the withdraw —
// all stamped with the canonical scenario spec and dense sequence
// numbers.
func TestIncidentHijackStory(t *testing.T) {
	log, out := incidentRun(t, testConfig("hijack-window"))
	counts := countTypes(log)
	if counts["bgp.hijack_announce"] != 1 || counts["bgp.hijack_withdraw"] != 1 {
		t.Fatalf("hijack announce/withdraw = %d/%d, want 1/1 (counts: %v)",
			counts["bgp.hijack_announce"], counts["bgp.hijack_withdraw"], counts)
	}
	if counts["rpki.roa_issue"] == 0 {
		t.Fatal("emergency ROA produced no rpki.roa_issue incident")
	}
	var announce *Incident
	for i := range log.Incidents {
		if log.Incidents[i].EventType == "bgp.hijack_announce" {
			announce = &log.Incidents[i]
		}
	}
	if announce.Attributes["name"] != "cdn-subprefix" {
		t.Errorf("hijack name = %q", announce.Attributes["name"])
	}
	for _, key := range []string{"prefix", "path", "victim"} {
		if announce.Attributes[key] == "" {
			t.Errorf("hijack announce missing attribute %q", key)
		}
	}
	if announce.Source.Feed != "bgp" {
		t.Errorf("hijack announce feed = %q, want bgp", announce.Source.Feed)
	}
	for i, in := range log.Incidents {
		if in.Seq != i {
			t.Fatalf("incident %d has seq %d", i, in.Seq)
		}
		if in.Scenario != "hijack-window" {
			t.Fatalf("incident %d scenario = %q", i, in.Scenario)
		}
	}
	// The wire form is the red-lantern shape: event_type + source +
	// integer-microsecond timestamp + flat attributes.
	line := strings.SplitN(string(out), "\n", 2)[0]
	var decoded struct {
		Seq       int               `json:"seq"`
		TUS       int64             `json:"t_us"`
		EventType string            `json:"event_type"`
		Source    IncidentSource    `json:"source"`
		Scenario  string            `json:"scenario"`
		Attrs     map[string]string `json:"attributes"`
	}
	if err := json.Unmarshal([]byte(line), &decoded); err != nil {
		t.Fatalf("first line is not valid JSON: %v\n%s", err, line)
	}
	if decoded.EventType == "" || decoded.Source.Feed == "" {
		t.Fatalf("first line missing event_type/source: %s", line)
	}
}

// TestIncidentRPLagEpisodes: under churn, the slow relying party must
// produce lag episodes — started when a flush leaves it behind and
// cleared (with a positive duration) at its catch-up refresh. The
// 1-tick RP catches up within the opening tick, so it never produces
// an episode.
func TestIncidentRPLagEpisodes(t *testing.T) {
	log, _ := incidentRun(t, testConfig("rp-lag"))
	started := make(map[string]int)
	cleared := make(map[string]int)
	for _, in := range log.Incidents {
		switch in.EventType {
		case "rp.lag_started":
			started[in.Attributes["rp"]]++
			if in.Source.Observer != in.Attributes["rp"] {
				t.Errorf("lag_started observer %q != rp %q", in.Source.Observer, in.Attributes["rp"])
			}
		case "rp.lag_cleared":
			cleared[in.Attributes["rp"]]++
			behind, err := strconv.ParseFloat(in.Attributes["behind_seconds"], 64)
			if err != nil || behind <= 0 {
				t.Errorf("lag_cleared with bad behind_seconds %q", in.Attributes["behind_seconds"])
			}
		}
	}
	if started["rp-1t"] != 0 {
		t.Errorf("1-tick RP produced %d lag episodes, want 0 (same-tick catch-up must be suppressed)", started["rp-1t"])
	}
	for _, rp := range []string{"rp-5t", "rp-20t"} {
		if started[rp] == 0 {
			t.Errorf("%s produced no lag episodes", rp)
		}
		if cleared[rp] == 0 {
			t.Errorf("%s lag episodes never cleared", rp)
		}
		if cleared[rp] > started[rp] {
			t.Errorf("%s cleared %d > started %d", rp, cleared[rp], started[rp])
		}
	}
}

// TestIncidentOutageAndRestart: the trust-anchor outage and rtr-restart
// scenarios must surface their headline transitions as typed records.
func TestIncidentOutageAndRestart(t *testing.T) {
	log, _ := incidentRun(t, testConfig("trust-anchor-outage"))
	counts := countTypes(log)
	if counts["rpki.trust_anchor_outage"] != 1 || counts["rpki.trust_anchor_recovery"] != 1 {
		t.Errorf("TA outage/recovery = %d/%d, want 1/1",
			counts["rpki.trust_anchor_outage"], counts["rpki.trust_anchor_recovery"])
	}
	if counts["rpki.roa_revoke"] == 0 || counts["rpki.roa_issue"] == 0 {
		t.Errorf("outage produced no ROA moves: %v", counts)
	}

	log, _ = incidentRun(t, testConfig("rtr-restart"))
	counts = countTypes(log)
	if counts["rtr.cache_restart"] != 1 {
		t.Errorf("cache restarts = %d, want 1", counts["rtr.cache_restart"])
	}
	if counts["rtr.cache_recovered"] != 1 {
		t.Errorf("cache recoveries = %d, want 1 (default restart is cold)", counts["rtr.cache_recovered"])
	}
}

// TestIncidentTimestampsMonotonic: seq order must agree with virtual
// time — lazy lag_started emission back-stamps the flush instant but
// never after a later-instant record.
func TestIncidentTimestampsMonotonic(t *testing.T) {
	log, _ := incidentRun(t, testConfig("hijack-window+rp-lag"))
	for i := 1; i < len(log.Incidents); i++ {
		if log.Incidents[i].T < log.Incidents[i-1].T {
			t.Fatalf("incident %d at %s precedes incident %d at %s",
				i, log.Incidents[i].T, i-1, log.Incidents[i-1].T)
		}
	}
}
