package sim

import (
	"reflect"
	"testing"
	"time"
)

func TestQueueOrdersByTimeClassSeq(t *testing.T) {
	q := NewQueue()
	base := time.Date(2015, 7, 1, 0, 0, 0, 0, time.UTC)
	var got []string
	add := func(at time.Time, class int, label string) {
		q.At(at, class, func() { got = append(got, label) })
	}
	// Same instant: class orders, then scheduling sequence.
	add(base, classProbe, "probe")
	add(base, classScenario, "scenario-1")
	add(base, classFlush, "flush")
	add(base, classScenario, "scenario-2")
	add(base, classRefresh, "refresh")
	// Earlier instant beats everything regardless of class.
	add(base.Add(-time.Second), classProbe, "early")
	// Later instant is not due yet.
	add(base.Add(time.Hour), classScenario, "late")

	ran := q.RunDue(base)
	want := []string{"early", "scenario-1", "scenario-2", "flush", "refresh", "probe"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
	if ran != len(want) {
		t.Errorf("ran = %d, want %d", ran, len(want))
	}
	if q.Len() != 1 {
		t.Errorf("pending = %d, want 1", q.Len())
	}
	if at, ok := q.NextAt(); !ok || !at.Equal(base.Add(time.Hour)) {
		t.Errorf("NextAt = %v, %v", at, ok)
	}
}

func TestQueueEventsMayScheduleSameInstant(t *testing.T) {
	q := NewQueue()
	base := time.Date(2015, 7, 1, 0, 0, 0, 0, time.UTC)
	var got []string
	q.At(base, classScenario, func() {
		got = append(got, "a")
		q.At(base, classScenario, func() { got = append(got, "b") })
	})
	q.RunDue(base)
	if want := []string{"a", "b"}; !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestBusDelivery(t *testing.T) {
	b := NewBus()
	var got []string
	b.Subscribe(TopicROA, func(e Event) { got = append(got, "roa:"+e.Detail) })
	b.Subscribe(TopicBGP, func(e Event) { got = append(got, "bgp:"+e.Detail) })
	b.SubscribeAll(func(e Event) { got = append(got, "all:"+e.Detail) })

	b.Publish(Event{Topic: TopicROA, Detail: "x"})
	b.Publish(Event{Topic: TopicBGP, Detail: "y"})
	b.Publish(Event{Topic: TopicDNS, Detail: "z"}) // only the catch-all sees it

	want := []string{"roa:x", "all:x", "bgp:y", "all:y", "all:z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("delivery = %v, want %v", got, want)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Topic: TopicRTR, T: 90 * time.Second, Detail: "flush serial=3"}
	if s := e.String(); s == "" || s[0] != '[' {
		t.Errorf("String() = %q", s)
	}
}
