// Package sim is a deterministic discrete-event simulation engine for
// time-evolving RPKI worlds.
//
// The measurement pipeline reproduces the paper's *snapshot*
// methodology: one static world, one pass. The paper's tragedy is
// temporal, though — ROAs are issued and revoked over time, hijack
// campaigns come and go, and every relying party sees the RPKI through
// a cache that refreshes on a delay. This package drives the existing
// layers over virtual time:
//
//   - a Scenario mutates the webworld ecosystem and the ground-truth
//     VRP state via events on a virtual clock,
//   - VRP deltas flow through rtr.Server.Update to relying parties
//     (rtr.Client instances) that refresh at configurable lag,
//   - each relying party feeds an origin-validating router.Router whose
//     local RIB holds both the world's routes and any active hijacks,
//   - a sampling probe runs the measure pipeline over a rank-stratified
//     domain sample and records a per-tick time series: validation
//     state fractions, RPKI coverage, head-vs-tail protection, and per
//     router hijack success.
//
// Everything is deterministic: the same Config (seed, duration, tick,
// scenario parameters) produces byte-identical TimeSeries output. Three
// ingredients make that true — the virtual clock only ever advances by
// whole ticks, simultaneous events are ordered by (time, class,
// scheduling sequence), and all randomness comes from the seeded
// Simulation.Rand.
//
// Scenarios self-register in a registry (see scenarios.go for the
// built-in library); adding one means implementing Scenario and calling
// Register from an init function.
package sim

import (
	"sort"
	"strconv"
	"time"

	"ripki/internal/router"
	"ripki/internal/webworld"
)

// Params carries free-form scenario parameters ("-param key=value" on
// the CLI). Typed getters fall back to a default when the key is absent
// or malformed, so scenarios stay total.
type Params map[string]string

// Float returns the parameter as a float64.
func (p Params) Float(key string, def float64) float64 {
	if s, ok := p[key]; ok {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	return def
}

// Int returns the parameter as an int.
func (p Params) Int(key string, def int) int {
	if s, ok := p[key]; ok {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// Duration returns the parameter as a time.Duration ("90s", "10m").
func (p Params) Duration(key string, def time.Duration) time.Duration {
	if s, ok := p[key]; ok {
		if v, err := time.ParseDuration(s); err == nil {
			return v
		}
	}
	return def
}

// String returns the parameter as a string.
func (p Params) String(key, def string) string {
	if s, ok := p[key]; ok {
		return s
	}
	return def
}

// Bool returns the parameter as a bool, accepting every spelling
// strconv.ParseBool does (1/t/true/True, 0/f/false/False).
func (p Params) Bool(key string, def bool) bool {
	if s, ok := p[key]; ok {
		if v, err := strconv.ParseBool(s); err == nil {
			return v
		}
	}
	return def
}

// Scenario seeds a simulation with events. Setup runs once after the
// world, cache, and relying parties exist but before the clock starts;
// it schedules the scenario's events (which may schedule further
// events).
//
// During Setup, s.Rand is the scenario's own splitmix64-derived stream
// (see ComponentSeed) — the same stream whether the scenario runs alone
// or as a component of a Composite. A Setup whose scheduled events draw
// randomness later must capture s.Rand in a local while it runs, since
// a composite repoints s.Rand at each component's stream in turn.
type Scenario interface {
	// Name is the registry key.
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// Setup schedules the scenario's initial events.
	Setup(s *Simulation) error
}

// RPDefaulter is an optional Scenario extension: scenarios that need a
// particular relying-party roster (e.g. extreme refresh lag) provide it
// here; an explicit Config.RPs still wins.
type RPDefaulter interface {
	DefaultRPs(p Params) []RPSpec
}

// RPSpec describes one relying party: a named RTR client + validating
// router pair.
type RPSpec struct {
	// Name labels the RP's time-series columns.
	Name string
	// RefreshTicks is the polling cadence in ticks; zero means the RP
	// never connects to the cache (a legacy router validating nothing).
	RefreshTicks int
	// Policy is the router's validation stance.
	Policy router.Policy
}

// Config parameterises a simulation run.
type Config struct {
	// Scenario names a registered scenario, or a "+"-joined composition
	// of registered scenarios ("roa-churn+rp-lag") whose event streams
	// all run in this one world (see Composite).
	Scenario string
	// Params are free-form scenario parameters.
	Params Params
	// Seed drives world generation and all scenario randomness.
	Seed int64
	// Domains sizes the generated world (default 20,000).
	Domains int
	// Tick is the virtual clock granularity (default 30s).
	Tick time.Duration
	// Duration is the simulated horizon (default 30m).
	Duration time.Duration
	// SampleEvery is the probe cadence in ticks (default 2).
	SampleEvery int
	// SampleDomains bounds the probe's stratified domain sample
	// (default 1,500).
	SampleDomains int
	// RPs overrides the relying-party roster. Default: rp-fast
	// (refresh every tick, drop-invalid), rp-slow (every 10 ticks,
	// drop-invalid), legacy (no RTR session, accept-all).
	RPs []RPSpec
	// World reuses a prebuilt ecosystem; Seed/Domains still drive the
	// scenario randomness.
	World *webworld.World
	// DisableIncremental forces the full-recompute paths: every probe
	// re-measures the whole sample, the truth set is rebuilt from
	// scratch after each mutation, and relying parties revalidate their
	// entire Adj-RIB-In at each refresh. The default (incremental)
	// paths produce byte-identical output; this escape hatch exists to
	// prove it — the CI determinism job diffs the two — and as a
	// debugging aid.
	DisableIncremental bool
}

// WithDefaults returns the config with unset fields filled in — the
// values New will actually run with. Sweep planning normalises grid
// cells through this so labels and tables show effective values.
func (c Config) WithDefaults() Config {
	if c.Domains == 0 {
		c.Domains = 20000
	}
	if c.Tick == 0 {
		c.Tick = 30 * time.Second
	}
	if c.Duration == 0 {
		c.Duration = 30 * time.Minute
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 2
	}
	if c.SampleDomains <= 0 {
		c.SampleDomains = 1500
	}
	if c.Params == nil {
		c.Params = Params{}
	}
	return c
}

// DefaultRPs is the builtin relying-party roster: a fast and a slow
// drop-invalid RP bracketing realistic refresh lag, plus an accept-all
// legacy router as the unprotected 2015 baseline.
func DefaultRPs() []RPSpec {
	return []RPSpec{
		{Name: "rp-fast", RefreshTicks: 1, Policy: router.PolicyDropInvalid},
		{Name: "rp-slow", RefreshTicks: 10, Policy: router.PolicyDropInvalid},
		{Name: "legacy", RefreshTicks: 0, Policy: router.PolicyAcceptAll},
	}
}

// --- registry ----------------------------------------------------------

var scenarios = map[string]func(Params) Scenario{}

// Register adds a scenario constructor under its name. Later
// registrations of the same name win, so applications can shadow the
// builtins.
func Register(name string, f func(Params) Scenario) {
	scenarios[name] = f
}

// Names lists the registered scenarios, sorted.
func Names() []string {
	out := make([]string, 0, len(scenarios))
	for n := range scenarios {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NewScenario instantiates the scenario named by a spec: a registered
// name, or a "+"-joined composition like "roa-churn+rp-lag" running
// every component's event stream in one world. Every spec — single or
// composed — comes back as a *Composite, because a single scenario IS a
// one-component composition: the same param routing ("roa-churn.issue=5"
// reaches a bare roa-churn run; a dotted key addressing any other name
// errors rather than being silently dropped), the same RNG stream
// derivation, the same roster handling. See Composite for the contract.
func NewScenario(name string, p Params) (Scenario, error) {
	if p == nil {
		p = Params{}
	}
	return newComposite(name, p)
}

// Describe returns the one-line description of a registered scenario or
// of a composition spec, "" when unknown.
func Describe(name string) string {
	if IsComposition(name) {
		sc, err := NewScenario(name, nil)
		if err != nil {
			return ""
		}
		return sc.Description()
	}
	f, ok := scenarios[name]
	if !ok {
		return ""
	}
	return f(Params{}).Description()
}
