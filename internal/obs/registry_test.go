package obs

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// --- a minimal exposition parser, used only by tests -------------------
//
// parseExposition understands exactly what the encoder emits: # HELP
// and # TYPE lines, and samples `name[{k="v",...}] value` with the
// format's label-value escaping. The scrape-then-parse round trip below
// proves the two sides agree.

type parsedSample struct {
	name   string
	labels map[string]string
	value  float64
}

type parsedDoc struct {
	types   map[string]string // family → type
	help    map[string]string
	samples []parsedSample
}

func parseExposition(t *testing.T, text string) *parsedDoc {
	t.Helper()
	doc := &parsedDoc{types: make(map[string]string), help: make(map[string]string)}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			doc.help[name] = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := doc.types[name]; dup {
				t.Fatalf("family %s typed twice", name)
			}
			doc.types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		doc.samples = append(doc.samples, parseSampleLine(t, line))
	}
	return doc
}

func parseSampleLine(t *testing.T, line string) parsedSample {
	t.Helper()
	s := parsedSample{labels: make(map[string]string)}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("malformed sample line %q", line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !ValidMetricName(s.name) {
		t.Fatalf("sample line %q has invalid metric name %q", line, s.name)
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for !strings.HasPrefix(rest, "}") {
			eq := strings.Index(rest, "=\"")
			if eq < 0 {
				t.Fatalf("malformed labels in %q", line)
			}
			name := rest[:eq]
			if !ValidLabelName(name) {
				t.Fatalf("invalid label name %q in %q", name, line)
			}
			rest = rest[eq+2:]
			var val strings.Builder
			for {
				if rest == "" {
					t.Fatalf("unterminated label value in %q", line)
				}
				switch {
				case strings.HasPrefix(rest, `\\`):
					val.WriteByte('\\')
					rest = rest[2:]
				case strings.HasPrefix(rest, `\"`):
					val.WriteByte('"')
					rest = rest[2:]
				case strings.HasPrefix(rest, `\n`):
					val.WriteByte('\n')
					rest = rest[2:]
				case strings.HasPrefix(rest, `"`):
					rest = rest[1:]
					goto closed
				default:
					val.WriteByte(rest[0])
					rest = rest[1:]
				}
			}
		closed:
			s.labels[name] = val.String()
			rest = strings.TrimPrefix(rest, ",")
		}
		rest = strings.TrimPrefix(rest, "}")
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	s.value = v
	return s
}

func (d *parsedDoc) find(t *testing.T, name string, labels map[string]string) parsedSample {
	t.Helper()
	for _, s := range d.samples {
		if s.name != name || len(s.labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.labels[k] != v {
				match = false
			}
		}
		if match {
			return s
		}
	}
	t.Fatalf("no sample %s %v", name, labels)
	return parsedSample{}
}

// --- name and label validation ----------------------------------------

func TestNameValidation(t *testing.T) {
	valid := []string{"ripki_serve_requests_total", "up", "_x", "a:b:c", "A9_"}
	for _, n := range valid {
		if !ValidMetricName(n) {
			t.Errorf("metric name %q rejected", n)
		}
	}
	invalid := []string{"", "9abc", "a-b", "a b", "a{b}", "ns/op", "héllo"}
	for _, n := range invalid {
		if ValidMetricName(n) {
			t.Errorf("metric name %q accepted", n)
		}
	}
	if !ValidLabelName("endpoint") || !ValidLabelName("_a1") {
		t.Error("legal label names rejected")
	}
	for _, n := range []string{"", "9x", "a-b", "le le", "a:b", "__reserved"} {
		if ValidLabelName(n) {
			t.Errorf("label name %q accepted", n)
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "fine")
	mustPanic(t, "duplicate name", func() { r.Gauge("ok_total", "again") })
	mustPanic(t, "bad metric name", func() { r.Counter("not/a/name", "") })
	mustPanic(t, "bad label name", func() { r.CounterVec("x_total", "", "bad-label") })
	mustPanic(t, "reserved label name", func() { r.GaugeVec("y", "", "__name__") })
	mustPanic(t, "unsorted bounds", func() { r.Histogram("h", "", []float64{2, 1}) })
	mustPanic(t, "counter decrement", func() { r.Counter("c_total", "").Add(-1) })
	mustPanic(t, "wrong label arity", func() {
		r.CounterVec("arity_total", "", "a", "b").With("only-one")
	})
}

func TestEncoderPanics(t *testing.T) {
	var sb strings.Builder
	e := NewEncoder(&sb)
	mustPanic(t, "sample before family", func() { e.Sample("", nil, 1) })
	e.Family("x", "", TypeGauge)
	mustPanic(t, "duplicate family", func() { e.Family("x", "", TypeGauge) })
	mustPanic(t, "bad type", func() { e.Family("y", "", "summary") })
}

// --- rendering ---------------------------------------------------------

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("weird", "label values with every escape", "path")
	hostile := "back\\slash \"quoted\"\nnewline"
	v.With(hostile).Set(1)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := `weird{path="back\\slash \"quoted\"\nnewline"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped line missing:\n%s", sb.String())
	}
	// And it survives the parse side intact.
	doc := parseExposition(t, sb.String())
	if got := doc.find(t, "weird", map[string]string{"path": hostile}); got.value != 1 {
		t.Fatalf("round-tripped value %v", got.value)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "line one\nline two with \\ backslash")
	var sb strings.Builder
	r.WriteTo(&sb)
	if !strings.Contains(sb.String(), `# HELP g line one\nline two with \\ backslash`) {
		t.Fatalf("help not escaped:\n%s", sb.String())
	}
}

func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	var sb strings.Builder
	r.WriteTo(&sb)
	out := sb.String()
	// le is inclusive: the 0.1 observation lands in the 0.1 bucket.
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 55.65`,
		`lat_seconds_count 5`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative counts never decrease and +Inf equals _count.
	doc := parseExposition(t, out)
	var last float64 = -1
	for _, s := range doc.samples {
		if s.name != "lat_seconds_bucket" {
			continue
		}
		if s.value < last {
			t.Fatalf("bucket counts not cumulative: %v after %v", s.value, last)
		}
		last = s.value
	}
}

func TestFamiliesSortedAndChildrenStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "")
	r.Gauge("aaa", "")
	v := r.CounterVec("mid_total", "", "who")
	v.With("b").Inc()
	v.With("a").Inc()
	var sb strings.Builder
	r.WriteTo(&sb)
	out := sb.String()
	if !(strings.Index(out, "aaa") < strings.Index(out, "mid_total") &&
		strings.Index(out, "mid_total") < strings.Index(out, "zzz_total")) {
		t.Fatalf("families not sorted:\n%s", out)
	}
	if !(strings.Index(out, `who="a"`) < strings.Index(out, `who="b"`)) {
		t.Fatalf("children not sorted by label value:\n%s", out)
	}
	// Rendering twice yields identical bytes (no map-order leakage).
	var sb2 strings.Builder
	r.WriteTo(&sb2)
	if sb.String() != sb2.String() {
		t.Fatal("two renders of the same registry differ")
	}
}

// TestScrapeParseRoundTrip is the satellite's end-to-end check: build a
// registry with every instrument kind, scrape it through the Handler,
// parse the text back, and compare every value and type.
func TestScrapeParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rt_requests_total", "requests")
	c.Add(41)
	c.Inc()
	g := r.Gauge("rt_temperature", "can go down")
	g.Set(5)
	g.Dec()
	r.GaugeFunc("rt_computed", "scrape-time", func() float64 { return 2.5 })
	cv := r.CounterVec("rt_errors_total", "by endpoint", "endpoint", "code")
	cv.With("validate", "400").Add(3)
	cv.With("domain", "404").Add(7)
	h := r.Histogram("rt_duration_seconds", "latency", ExpBuckets(0.001, 10, 4))
	for _, v := range []float64{0.0005, 0.002, 0.02, 0.2, 2, 20} {
		h.Observe(v)
	}
	r.Collect(func(e *Encoder) {
		e.Family("rt_collected", "from a collector", TypeGauge)
		e.Sample("", []Label{{Name: "source", Value: "live"}}, 9)
	})

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	doc := parseExposition(t, sb.String())

	wantTypes := map[string]string{
		"rt_requests_total": "counter", "rt_temperature": "gauge",
		"rt_computed": "gauge", "rt_errors_total": "counter",
		"rt_duration_seconds": "histogram", "rt_collected": "gauge",
	}
	for name, typ := range wantTypes {
		if doc.types[name] != typ {
			t.Errorf("family %s type %q, want %q", name, doc.types[name], typ)
		}
	}
	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"rt_requests_total", nil, 42},
		{"rt_temperature", nil, 4},
		{"rt_computed", nil, 2.5},
		{"rt_errors_total", map[string]string{"endpoint": "validate", "code": "400"}, 3},
		{"rt_errors_total", map[string]string{"endpoint": "domain", "code": "404"}, 7},
		{"rt_duration_seconds_bucket", map[string]string{"le": "0.001"}, 1},
		{"rt_duration_seconds_bucket", map[string]string{"le": "0.01"}, 2},
		{"rt_duration_seconds_bucket", map[string]string{"le": "1"}, 4},
		{"rt_duration_seconds_bucket", map[string]string{"le": "+Inf"}, 6},
		{"rt_duration_seconds_count", nil, 6},
		{"rt_collected", map[string]string{"source": "live"}, 9},
	}
	for _, c := range checks {
		if got := doc.find(t, c.name, c.labels); math.Abs(got.value-c.want) > 1e-9 {
			t.Errorf("%s%v = %v, want %v", c.name, c.labels, got.value, c.want)
		}
	}
	sum := doc.find(t, "rt_duration_seconds_sum", nil)
	if math.Abs(sum.value-22.2225) > 1e-9 {
		t.Errorf("histogram sum %v", sum.value)
	}
}

func TestSpecialValues(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("inf", "", func() float64 { return math.Inf(1) })
	r.GaugeFunc("nan", "", func() float64 { return math.NaN() })
	var sb strings.Builder
	r.WriteTo(&sb)
	if !strings.Contains(sb.String(), "inf +Inf") || !strings.Contains(sb.String(), "nan NaN") {
		t.Fatalf("special values misrendered:\n%s", sb.String())
	}
}

// TestConcurrentObservation hammers one registry from many goroutines
// while scraping — the race detector is the assertion, plus exact
// totals afterwards.
func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	h := r.Histogram("hammer_seconds", "", ExpBuckets(0.001, 10, 5))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	for i := 0; i < 20; i++ {
		var sb strings.Builder
		if _, err := r.WriteTo(&sb); err != nil {
			t.Error(err)
		}
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter %v, want 8000", c.Value())
	}
	var sb strings.Builder
	r.WriteTo(&sb)
	if !strings.Contains(sb.String(), "hammer_seconds_count 8000") {
		t.Fatalf("histogram lost observations:\n%s", sb.String())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i])/want[i] > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	mustPanic(t, "bad ExpBuckets args", func() { ExpBuckets(0, 2, 3) })
}

func ExampleRegistry() {
	r := NewRegistry()
	r.CounterVec("requests_total", "served requests", "endpoint").With("validate").Add(2)
	var sb strings.Builder
	r.WriteTo(&sb)
	fmt.Print(sb.String())
	// Output:
	// # HELP requests_total served requests
	// # TYPE requests_total counter
	// requests_total{endpoint="validate"} 2
}
