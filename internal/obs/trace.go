package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Trace phases, a subset of the Chrome trace_event vocabulary.
const (
	// PhaseInstant is a point event ("i").
	PhaseInstant = "i"
	// PhaseSpan is a complete event with a duration ("X").
	PhaseSpan = "X"
	// PhaseCounter is a counter sample ("C").
	PhaseCounter = "C"
)

// TraceEvent is one structured trace record on the virtual clock.
type TraceEvent struct {
	// T is the virtual-clock offset from the start of the run.
	T time.Duration
	// Dur is the span length (spans only).
	Dur time.Duration
	// Phase is PhaseInstant, PhaseSpan or PhaseCounter.
	Phase string
	// Cat is the event's category — in sim traces, the bus topic. Each
	// distinct category renders as its own lane in the Chrome export.
	Cat string
	// Name is the event's human-readable identity.
	Name string
	// Args carries numeric payloads (counter tracks). encoding/json
	// renders map keys sorted, so Args never perturbs byte-identity.
	Args map[string]float64
}

// Trace is an append-only trace recorder. It is not safe for concurrent
// use — the sim engine appends from its single event-loop goroutine —
// and it holds timestamps from the virtual clock only, so a recorded
// run exports byte-identically no matter when or how fast it ran.
type Trace struct {
	events []TraceEvent
}

// NewTrace creates an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Instant records a point event.
func (t *Trace) Instant(at time.Duration, cat, name string) {
	t.events = append(t.events, TraceEvent{T: at, Phase: PhaseInstant, Cat: cat, Name: name})
}

// Span records a complete event covering [start, start+dur].
func (t *Trace) Span(start, dur time.Duration, cat, name string) {
	t.events = append(t.events, TraceEvent{T: start, Dur: dur, Phase: PhaseSpan, Cat: cat, Name: name})
}

// Counter records a counter sample: one named track with one or more
// numeric series.
func (t *Trace) Counter(at time.Duration, name string, values map[string]float64) {
	t.events = append(t.events, TraceEvent{T: at, Phase: PhaseCounter, Cat: "counter", Name: name, Args: values})
}

// Len is the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// Events returns the recorded events in append order. The slice is the
// trace's own; callers must not mutate it.
func (t *Trace) Events() []TraceEvent { return t.events }

// traceJSON is the serialised shape of one event: a fixed field order
// and microsecond integer timestamps, so exports are byte-stable.
type traceJSON struct {
	TUS   int64              `json:"t_us"`
	Ph    string             `json:"ph"`
	Cat   string             `json:"cat"`
	Name  string             `json:"name"`
	DurUS int64              `json:"dur_us,omitempty"`
	Args  map[string]float64 `json:"args,omitempty"`
}

func (ev *TraceEvent) jsonShape() traceJSON {
	return traceJSON{
		TUS:   ev.T.Microseconds(),
		Ph:    ev.Phase,
		Cat:   ev.Cat,
		Name:  ev.Name,
		DurUS: ev.Dur.Microseconds(),
		Args:  ev.Args,
	}
}

// WriteJSONL writes one JSON object per line in append order — the
// grep/jq-friendly export, and the one the CI determinism gate diffs
// byte-for-byte across same-seed runs.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range t.events {
		if err := enc.Encode(t.events[i].jsonShape()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChrome writes the trace in Chrome trace_event format (a JSON
// object with a traceEvents array), loadable by chrome://tracing and
// Perfetto. Categories map to thread lanes in first-appearance order,
// each named by a thread_name metadata record, so a sim run reads as
// parallel lanes of ROA, BGP, RTR, RP and probe activity.
func (t *Trace) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[` + "\n"); err != nil {
		return err
	}
	lanes := make(map[string]int)
	first := true
	emit := func(v any) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = bw.Write(data)
		return err
	}
	lane := func(cat string) (int, error) {
		tid, ok := lanes[cat]
		if !ok {
			tid = len(lanes) + 1
			lanes[cat] = tid
			err := emit(map[string]any{
				"ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
				"args": map[string]string{"name": cat},
			})
			if err != nil {
				return 0, err
			}
		}
		return tid, nil
	}
	for i := range t.events {
		ev := &t.events[i]
		tid, err := lane(ev.Cat)
		if err != nil {
			return err
		}
		rec := map[string]any{
			"ph": ev.Phase, "ts": ev.T.Microseconds(), "pid": 1, "tid": tid,
			"cat": ev.Cat, "name": ev.Name,
		}
		switch ev.Phase {
		case PhaseInstant:
			rec["s"] = "t" // thread-scoped instant
		case PhaseSpan:
			rec["dur"] = ev.Dur.Microseconds()
		case PhaseCounter:
			rec["args"] = ev.Args
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFormat dispatches on a format name ("jsonl" or "chrome") — the
// shared flag-handling for CLIs exposing both exports.
func (t *Trace) WriteFormat(w io.Writer, format string) error {
	switch format {
	case "jsonl":
		return t.WriteJSONL(w)
	case "chrome":
		return t.WriteChrome(w)
	default:
		return fmt.Errorf("obs: unknown trace format %q (want jsonl or chrome)", format)
	}
}
