package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleTrace() *Trace {
	tr := NewTrace()
	tr.Instant(0, "roa", "announce 10.0.0.0/8")
	tr.Span(2*time.Second, 3*time.Second, "bgp", "hijack h1")
	tr.Counter(5*time.Second, "validity", map[string]float64{"valid": 0.92, "invalid": 0.08})
	tr.Instant(5*time.Second, "roa", "revoke 10.0.0.0/8")
	return tr
}

func TestTraceJSONLByteStable(t *testing.T) {
	var a, b strings.Builder
	if err := sampleTrace().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleTrace().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two identical traces exported different bytes:\n%s\n---\n%s", a.String(), b.String())
	}
	want := `{"t_us":2000000,"ph":"X","cat":"bgp","name":"hijack h1","dur_us":3000000}`
	if !strings.Contains(a.String(), want+"\n") {
		t.Fatalf("span line missing or misshaped; want %s in:\n%s", want, a.String())
	}
	// Counter args serialise with sorted keys — determinism does not
	// depend on map iteration order.
	wantCounter := `"args":{"invalid":0.08,"valid":0.92}`
	if !strings.Contains(a.String(), wantCounter) {
		t.Fatalf("counter args not key-sorted:\n%s", a.String())
	}
	if got := strings.Count(a.String(), "\n"); got != 4 {
		t.Fatalf("want 4 lines, got %d", got)
	}
}

func TestTraceChromeFormat(t *testing.T) {
	var sb strings.Builder
	if err := sampleTrace().WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, sb.String())
	}
	// 4 events + one thread_name metadata record per distinct category
	// (roa, bgp, counter).
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("want 7 records, got %d:\n%s", len(doc.TraceEvents), sb.String())
	}
	lanes := map[string]float64{} // category → tid from metadata
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			args := ev["args"].(map[string]any)
			lanes[args["name"].(string)] = ev["tid"].(float64)
		}
	}
	if len(lanes) != 3 {
		t.Fatalf("want 3 lanes, got %v", lanes)
	}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			continue
		case "X":
			if ev["dur"].(float64) != 3000000 {
				t.Errorf("span dur %v", ev["dur"])
			}
		case "i":
			if ev["s"] != "t" {
				t.Errorf("instant missing thread scope: %v", ev)
			}
		}
		cat := ev["cat"].(string)
		if ev["tid"].(float64) != lanes[cat] {
			t.Errorf("event in cat %s on tid %v, lane says %v", cat, ev["tid"], lanes[cat])
		}
	}
	// Byte-stable too: lanes assign in first-appearance order, not map
	// order.
	var sb2 strings.Builder
	sampleTrace().WriteChrome(&sb2)
	if sb.String() != sb2.String() {
		t.Fatal("chrome export not byte-stable")
	}
}

func TestTraceWriteFormat(t *testing.T) {
	tr := sampleTrace()
	var sb strings.Builder
	if err := tr.WriteFormat(&sb, "jsonl"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "{\"t_us\":") {
		t.Fatalf("jsonl dispatch wrong:\n%s", sb.String())
	}
	sb.Reset()
	if err := tr.WriteFormat(&sb, "chrome"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), `{"traceEvents":[`) {
		t.Fatalf("chrome dispatch wrong:\n%s", sb.String())
	}
	if err := tr.WriteFormat(&sb, "svg"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if tr.Len() != 4 || len(tr.Events()) != 4 {
		t.Fatalf("Len/Events disagree: %d/%d", tr.Len(), len(tr.Events()))
	}
}

func TestPprofEndpoints(t *testing.T) {
	ln, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// The handler set is mounted; a full HTTP round trip is exercised in
	// the daemons' own tests. Here just prove the listener is live.
	if ln.Addr().String() == "" {
		t.Fatal("no address")
	}
}
