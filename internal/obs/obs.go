// Package obs is the shared observability layer: a dependency-free
// Prometheus text-format metrics registry, a deterministic trace
// recorder for the sim engine, and the pprof wiring every daemon
// mounts behind an opt-in flag.
//
// Three design rules hold everywhere:
//
//   - No external dependencies. The exposition format (version 0.0.4)
//     is small enough to emit — and, in tests, parse — by hand; pulling
//     in a client library for it would be the only dependency in the
//     module.
//   - Scrapes never perturb the hot path. Instruments are atomics;
//     callers that already keep lock-free accumulators (internal/serve)
//     render them at scrape time through a Collector instead of
//     double-counting into registry instruments.
//   - Traces are deterministic. Trace events carry virtual-clock
//     timestamps only, and every export renders with a fixed field
//     order, so the same seed produces byte-identical trace files —
//     which lets trace output ride the repo's determinism gates.
package obs
