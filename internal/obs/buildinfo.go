package obs

import "runtime"

// Version identifies the build on every daemon's /metrics. It is "dev"
// for plain `go build`; release and CI builds stamp it:
//
//	go build -ldflags "-X ripki/internal/obs.Version=v1.2.3" ./cmd/...
var Version = "dev"

// RegisterBuildInfo adds the conventional build-identity gauge to r: a
// constant-1 `ripki_build_info` sample whose labels carry the stamped
// version and the Go runtime that built the binary. Dashboards join it
// against any other series to annotate deploys.
func RegisterBuildInfo(r *Registry) {
	r.GaugeVec("ripki_build_info",
		"Build identity: constant 1, labelled by stamped version and Go runtime.",
		"version", "go_version").With(Version, runtime.Version()).Set(1)
}
