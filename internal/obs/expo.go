package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// This file is the Prometheus text exposition format (version 0.0.4)
// itself: name validation, label-value escaping, float rendering, and
// the Encoder that writes families and samples in the order the format
// requires. The Registry is built on it; subsystems with their own
// lock-free accumulators (internal/serve's per-endpoint atomics) use it
// directly through a Collector.

var (
	// metricNameRE is the exposition format's metric name grammar.
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	// labelNameRE is the label name grammar; "__"-prefixed names are
	// additionally reserved for Prometheus internals.
	labelNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ValidMetricName reports whether s is a legal exposition metric name.
func ValidMetricName(s string) bool { return metricNameRE.MatchString(s) }

// ValidLabelName reports whether s is a legal, non-reserved label name.
func ValidLabelName(s string) bool {
	return labelNameRE.MatchString(s) && !strings.HasPrefix(s, "__")
}

// labelValueEscaper escapes a label value per the format: backslash,
// double-quote and newline.
var labelValueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper escapes HELP text: backslash and newline only (quotes are
// legal there).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trippable decimal, with the special values spelled
// +Inf/-Inf/NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Label is one name="value" pair on a sample. Order is the caller's —
// the encoder renders labels exactly as given, so a fixed instrument
// vocabulary yields byte-stable output.
type Label struct {
	Name  string
	Value string
}

// Metric type strings accepted by Encoder.Family.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
	TypeUntyped   = "untyped"
)

// Encoder writes one exposition document: families opened with Family,
// each followed by its samples. Invalid metric or label names panic —
// the instrumentation vocabulary is fixed at compile time, so a bad
// name is a typo best caught by the first test that scrapes it (the
// same contract serve's instrument() already uses). I/O errors are
// sticky and reported by Err.
type Encoder struct {
	w    io.Writer
	err  error
	seen map[string]bool
	cur  string // current family name, "" before the first Family
}

// NewEncoder starts an exposition document on w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, seen: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (e *Encoder) Err() error { return e.err }

func (e *Encoder) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Family opens a metric family: one # HELP and # TYPE line pair. The
// format requires every sample of a family to be contiguous, so opening
// the same family twice in one document panics (it would silently
// corrupt the scrape).
func (e *Encoder) Family(name, help, typ string) {
	if !ValidMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	switch typ {
	case TypeCounter, TypeGauge, TypeHistogram, TypeUntyped:
	default:
		panic("obs: invalid metric type " + strconv.Quote(typ) + " for " + name)
	}
	if e.seen[name] {
		panic("obs: family " + name + " emitted twice in one exposition")
	}
	e.seen[name] = true
	e.cur = name
	e.printf("# HELP %s %s\n", name, helpEscaper.Replace(help))
	e.printf("# TYPE %s %s\n", name, typ)
}

// Sample writes one sample of the current family. suffix is appended to
// the family name ("" for plain counters and gauges; "_bucket", "_sum",
// "_count" for histogram series).
func (e *Encoder) Sample(suffix string, labels []Label, value float64) {
	if e.cur == "" {
		panic("obs: Sample before Family")
	}
	name := e.cur + suffix
	if !ValidMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	e.printf("%s", name)
	if len(labels) > 0 {
		e.printf("{")
		for i, l := range labels {
			if !ValidLabelName(l.Name) {
				panic("obs: invalid label name " + strconv.Quote(l.Name) + " on " + name)
			}
			if i > 0 {
				e.printf(",")
			}
			e.printf(`%s="%s"`, l.Name, labelValueEscaper.Replace(l.Value))
		}
		e.printf("}")
	}
	e.printf(" %s\n", formatValue(value))
}

// HistogramSample writes a full conventional histogram — cumulative
// _bucket series (always ending in le="+Inf"), _sum, and _count — for
// one child of the current family. cumulative[i] is the count of
// observations ≤ bounds[i]; observations above the last bound appear
// only in the +Inf bucket (= count).
func (e *Encoder) HistogramSample(labels []Label, bounds []float64, cumulative []uint64, sum float64, count uint64) {
	if len(bounds) != len(cumulative) {
		panic("obs: histogram bounds/cumulative length mismatch")
	}
	withLE := make([]Label, len(labels)+1)
	copy(withLE, labels)
	for i, b := range bounds {
		withLE[len(labels)] = Label{Name: "le", Value: formatValue(b)}
		e.Sample("_bucket", withLE, float64(cumulative[i]))
	}
	withLE[len(labels)] = Label{Name: "le", Value: "+Inf"}
	e.Sample("_bucket", withLE, float64(count))
	e.Sample("_sum", labels, sum)
	e.Sample("_count", labels, float64(count))
}
