package obs

import (
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated with CAS — instruments stay lock-free
// so observing on a hot path never contends with a scrape.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Add(d float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

func (a *atomicFloat) Store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) Load() float64   { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d, which must be non-negative (counters only go up).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d float64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a bounded-bucket distribution: observations land in the
// first bucket whose upper bound is ≥ the value, or in the implicit
// +Inf bucket past the last bound. Buckets, sum and count are atomics;
// a scrape may observe a count briefly ahead of a concurrent
// observation's bucket, which Prometheus tolerates by design.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// snapshot renders the cumulative bucket counts the exposition needs.
func (h *Histogram) snapshot() (cumulative []uint64, sum float64, count uint64) {
	cumulative = make([]uint64, len(h.bounds))
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return cumulative, h.sum.Load(), h.count.Load()
}

// ExpBuckets returns n upper bounds growing geometrically from start by
// factor — the standard way to cover several orders of magnitude with a
// bounded bucket count.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Collector renders scrape-time samples straight into the exposition —
// the bridge for subsystems that already keep their own lock-free
// accumulators and for gauges computed from live state.
type Collector func(e *Encoder)

// Registry holds a fixed instrument vocabulary and renders it as one
// Prometheus text-format document: static families sorted by name, then
// every Collector in registration order. Instrument registration
// panics on invalid or duplicate names (typos surface in the first test
// that scrapes); observation and rendering are safe from any goroutine.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []Collector
}

// family is one registered metric family and its children by label
// values.
type family struct {
	name, help, typ string
	labelNames      []string
	bounds          []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
	fn       func() float64 // GaugeFunc families
}

type child struct {
	labels    []Label
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ string, labelNames []string, bounds []float64) *family {
	if !ValidMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, ln := range labelNames {
		if !ValidLabelName(ln) {
			panic("obs: invalid label name " + strconv.Quote(ln) + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: metric " + name + " registered twice")
	}
	f := &family{
		name: name, help: help, typ: typ,
		labelNames: labelNames, bounds: bounds,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// childFor returns (creating if needed) the child with the given label
// values. The key joins escaped values, so distinct value tuples can
// never collide.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic("obs: metric " + f.name + " wants " + strconv.Itoa(len(f.labelNames)) + " label values")
	}
	var key strings.Builder
	for _, v := range values {
		key.WriteString(labelValueEscaper.Replace(v))
		key.WriteByte(0xff)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key.String()]
	if !ok {
		labels := make([]Label, len(values))
		for i, v := range values {
			labels[i] = Label{Name: f.labelNames[i], Value: v}
		}
		c = &child{labels: labels}
		switch f.typ {
		case TypeCounter:
			c.counter = &Counter{}
		case TypeGauge:
			c.gauge = &Gauge{}
		case TypeHistogram:
			c.histogram = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
		}
		f.children[key.String()] = c
	}
	return c
}

// Counter registers a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, TypeCounter, nil, nil).childFor(nil).counter
}

// Gauge registers a label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, TypeGauge, nil, nil).childFor(nil).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeGauge, nil, nil).fn = fn
}

// Histogram registers a label-less histogram with the given upper
// bounds (ascending; the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram " + name + " bounds not ascending")
	}
	return r.register(name, help, TypeHistogram, nil, append([]float64(nil), bounds...)).childFor(nil).histogram
}

// CounterVec registers a counter family with the given label names.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, TypeCounter, labelNames, nil)}
}

// With returns the counter for one label-value tuple, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.childFor(values).counter }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, TypeGauge, labelNames, nil)}
}

// With returns the gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.childFor(values).gauge }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram " + name + " bounds not ascending")
	}
	return &HistogramVec{r.register(name, help, TypeHistogram, labelNames, append([]float64(nil), bounds...))}
}

// With returns the histogram for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.childFor(values).histogram }

// Collect appends a scrape-time collector, rendered after the static
// families in registration order. A collector must not emit a family
// name already registered statically (the encoder panics on the
// duplicate).
func (r *Registry) Collect(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// WriteTo renders the exposition document.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	e := NewEncoder(cw)

	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	for _, f := range fams {
		f.write(e)
	}
	for _, c := range collectors {
		c(e)
	}
	return cw.n, e.Err()
}

// write renders one family: header, then children sorted by label
// values so output is byte-stable regardless of observation order.
func (f *family) write(e *Encoder) {
	e.Family(f.name, f.help, f.typ)
	if f.fn != nil {
		e.Sample("", nil, f.fn())
		return
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*child, len(keys))
	for i, k := range keys {
		kids[i] = f.children[k]
	}
	f.mu.Unlock()
	for _, c := range kids {
		switch f.typ {
		case TypeCounter:
			e.Sample("", c.labels, c.counter.Value())
		case TypeGauge:
			e.Sample("", c.labels, c.gauge.Value())
		case TypeHistogram:
			cum, sum, count := c.histogram.snapshot()
			e.HistogramSample(c.labels, f.bounds, cum, sum, count)
		}
	}
}

// Handler serves the registry as a scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
