package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// RegisterPprof mounts the runtime profiling handlers under
// /debug/pprof/ on mux. Explicit registration (instead of importing
// net/http/pprof for its DefaultServeMux side effect) keeps profiling
// strictly opt-in: a daemon exposes it only on the mux — and therefore
// the listener — it chooses to.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServePprof binds addr and serves only the pprof handlers on it from a
// background goroutine — the shape non-HTTP daemons (ripki-rtrd) use
// for an opt-in debug listener. Close the returned listener to stop.
func ServePprof(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	RegisterPprof(mux)
	go http.Serve(ln, mux)
	return ln, nil
}
