package alexa

import (
	"bytes"
	"strings"
	"testing"
)

func TestFromDomainsAndTop(t *testing.T) {
	l := FromDomains([]string{"Google.com", "facebook.com", "youtube.com"})
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	es := l.Entries()
	if es[0].Rank != 1 || es[0].Domain != "google.com" {
		t.Errorf("entry 0 = %+v", es[0])
	}
	top := l.Top(2)
	if top.Len() != 2 || top.Entries()[1].Domain != "facebook.com" {
		t.Errorf("Top(2) = %+v", top.Entries())
	}
	if l.Top(99).Len() != 3 {
		t.Error("Top beyond length truncated wrongly")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	l := FromDomains([]string{"google.com", "facebook.com", "youtube.com"})
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || got.Entries()[2].Domain != "youtube.com" || got.Entries()[2].Rank != 3 {
		t.Errorf("round trip = %+v", got.Entries())
	}
}

func TestReadCSVValidation(t *testing.T) {
	cases := []string{
		"1 google.com",     // no comma
		"0,google.com",     // zero rank
		"x,google.com",     // non-numeric rank
		"2,a.com\n1,b.com", // decreasing
		"1,a.com\n1,b.com", // duplicate rank
		"1,",               // empty domain
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q) accepted bad input", in)
		}
	}
	// Blank lines are fine.
	l, err := ReadCSV(strings.NewReader("1,a.com\n\n2,b.com\n"))
	if err != nil || l.Len() != 2 {
		t.Errorf("blank-line handling: %v, %d", err, l.Len())
	}
	// Sparse ranks are allowed (Alexa lists occasionally skip).
	l, err = ReadCSV(strings.NewReader("1,a.com\n5,b.com\n"))
	if err != nil || l.Entries()[1].Rank != 5 {
		t.Errorf("sparse ranks: %v", err)
	}
}

func TestFromEntriesKeepsRanks(t *testing.T) {
	l := FromEntries([]Entry{{Rank: 3, Domain: "Alpha.Example"}, {Rank: 900, Domain: "beta.example"}})
	es := l.Entries()
	if len(es) != 2 {
		t.Fatalf("len = %d", len(es))
	}
	if es[0].Rank != 3 || es[0].Domain != "alpha.example" {
		t.Errorf("entry 0 = %+v", es[0])
	}
	if es[1].Rank != 900 {
		t.Errorf("entry 1 rank = %d, want 900 (not renumbered)", es[1].Rank)
	}
}
