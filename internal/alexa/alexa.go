// Package alexa handles ranked website lists in the format of the Alexa
// "Top 1M Sites" CSV: one "rank,domain" pair per line, rank starting at
// one. The paper's methodology step (1) selects its sample set from this
// list.
package alexa

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Entry is one ranked domain.
type Entry struct {
	Rank   int // 1-based
	Domain string
}

// List is a ranked domain list, ordered by rank.
type List struct {
	entries []Entry
}

// FromDomains builds a list from domains already ordered by popularity.
func FromDomains(domains []string) *List {
	l := &List{entries: make([]Entry, len(domains))}
	for i, d := range domains {
		l.entries[i] = Entry{Rank: i + 1, Domain: strings.ToLower(d)}
	}
	return l
}

// FromEntries builds a list from explicit (rank, domain) pairs, keeping
// the given ranks. Entries must already be ordered by ascending rank.
// Sampled sub-populations use this so each domain keeps its original
// rank (and therefore its figure bin) instead of being renumbered.
func FromEntries(entries []Entry) *List {
	l := &List{entries: make([]Entry, len(entries))}
	copy(l.entries, entries)
	for i := range l.entries {
		l.entries[i].Domain = strings.ToLower(l.entries[i].Domain)
	}
	return l
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.entries) }

// Entries returns the underlying slice (not a copy; treat as read-only).
func (l *List) Entries() []Entry { return l.entries }

// Top returns a new list containing the first n entries (or all, if
// fewer).
func (l *List) Top(n int) *List {
	if n > len(l.entries) {
		n = len(l.entries)
	}
	return &List{entries: l.entries[:n]}
}

// WriteCSV emits the list in "rank,domain" form.
func (l *List) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range l.entries {
		if _, err := fmt.Fprintf(bw, "%d,%s\n", e.Rank, e.Domain); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a "rank,domain" list. Ranks must be positive and
// strictly increasing; blank lines are skipped.
func ReadCSV(r io.Reader) (*List, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	l := &List{}
	line := 0
	lastRank := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		rank, domain, ok := strings.Cut(text, ",")
		if !ok {
			return nil, fmt.Errorf("alexa: line %d: missing comma", line)
		}
		n, err := strconv.Atoi(strings.TrimSpace(rank))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("alexa: line %d: bad rank %q", line, rank)
		}
		if n <= lastRank {
			return nil, fmt.Errorf("alexa: line %d: rank %d not increasing", line, n)
		}
		lastRank = n
		domain = strings.ToLower(strings.TrimSpace(domain))
		if domain == "" {
			return nil, fmt.Errorf("alexa: line %d: empty domain", line)
		}
		l.entries = append(l.entries, Entry{Rank: n, Domain: domain})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("alexa: %w", err)
	}
	return l, nil
}
