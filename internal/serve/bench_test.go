package serve

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
)

// BenchmarkServeValidate measures the in-process lookup path — one
// snapshot-pointer load plus an RFC 6811 classification with covering
// VRPs — at 1, 4 and 8 concurrent goroutines. Because the read path is
// lock-free, throughput should scale with cores (a single-core
// container shows flat ns/op across the variants; watch the scaling on
// multi-core CI). Gated in BENCH_baseline.json via tools/benchgate.
func BenchmarkServeValidate(b *testing.B) {
	w, dt := testSetup(b)
	s := New(dt)
	if _, err := s.PublishSet(w.Validation().VRPs, "world", 0); err != nil {
		b.Fatal(err)
	}
	// A fixed route mix: every VRP probed at its own origin (valid), at
	// a wrong origin (invalid), and a rotation of uncovered prefixes
	// (notfound) — the classifier's three paths in one loop.
	type route struct {
		prefix netip.Prefix
		asn    uint32
	}
	var routes []route
	for i, v := range s.Current().Index.All() {
		routes = append(routes, route{v.Prefix, v.ASN})
		routes = append(routes, route{v.Prefix, 64999})
		uncovered := netip.PrefixFrom(netip.AddrFrom4([4]byte{203, 0, byte(113 + i%16), 0}), 24)
		routes = append(routes, route{uncovered, v.ASN})
	}
	if len(routes) == 0 {
		b.Fatal("no VRPs to probe")
	}

	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			b.ReportAllocs()
			var wg sync.WaitGroup
			per := b.N / g
			b.ResetTimer()
			for wkr := 0; wkr < g; wkr++ {
				n := per
				if wkr == 0 {
					n += b.N % g
				}
				wg.Add(1)
				go func(wkr, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						r := routes[(wkr*31+i)%len(routes)]
						sn := s.Current()
						res := sn.ValidateRoute(r.prefix, r.asn)
						if res.State == "" {
							panic("empty state")
						}
					}
				}(wkr, n)
			}
			wg.Wait()
		})
	}
}
