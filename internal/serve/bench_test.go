package serve

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"ripki/internal/webworld"
)

// BenchmarkServeValidate measures the in-process lookup path — one
// snapshot-pointer load plus an RFC 6811 classification with covering
// VRPs — at 1, 4 and 8 concurrent goroutines. Because the read path is
// lock-free, throughput should scale with cores (a single-core
// container shows flat ns/op across the variants; watch the scaling on
// multi-core CI). Gated in BENCH_baseline.json via tools/benchgate.
func BenchmarkServeValidate(b *testing.B) {
	w, dt := testSetup(b)
	s := New(dt)
	if _, err := s.PublishSet(w.Validation().VRPs, "world", 0); err != nil {
		b.Fatal(err)
	}
	// A fixed route mix: every VRP probed at its own origin (valid), at
	// a wrong origin (invalid), and a rotation of uncovered prefixes
	// (notfound) — the classifier's three paths in one loop.
	type route struct {
		prefix netip.Prefix
		asn    uint32
	}
	var routes []route
	for i, v := range s.Current().Index.All() {
		routes = append(routes, route{v.Prefix, v.ASN})
		routes = append(routes, route{v.Prefix, 64999})
		uncovered := netip.PrefixFrom(netip.AddrFrom4([4]byte{203, 0, byte(113 + i%16), 0}), 24)
		routes = append(routes, route{uncovered, v.ASN})
	}
	if len(routes) == 0 {
		b.Fatal("no VRPs to probe")
	}

	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			b.ReportAllocs()
			var wg sync.WaitGroup
			per := b.N / g
			b.ResetTimer()
			for wkr := 0; wkr < g; wkr++ {
				n := per
				if wkr == 0 {
					n += b.N % g
				}
				wg.Add(1)
				go func(wkr, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						r := routes[(wkr*31+i)%len(routes)]
						sn := s.Current()
						res := sn.ValidateRoute(r.prefix, r.asn)
						if res.State == "" {
							panic("empty state")
						}
					}
				}(wkr, n)
			}
			wg.Wait()
		})
	}
}

// BenchmarkBuildDomainTable gates the packed table's build cost and its
// per-domain memory. One op resolves and packs a 50k-domain world; B/op
// is what the interning work holds down, and the explicit bytes/domain
// metric reports the steady-state footprint (the transient resolution
// arenas are gone after the build).
func BenchmarkBuildDomainTable(b *testing.B) {
	const domains = 50000
	w, err := webworld.Generate(webworld.Config{Seed: 1, Domains: domains})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var dt *DomainTable
	for i := 0; i < b.N; i++ {
		dt, err = BuildDomainTable(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	if dt.Len() != domains {
		b.Fatalf("short table: %d", dt.Len())
	}
	b.ReportMetric(float64(dt.MemoryFootprint())/float64(domains), "bytes/domain")
}

// The million-domain service is built once and shared by the 1M bench:
// worlds of this size are the paper's real population and take tens of
// seconds to generate.
var (
	megaOnce sync.Once
	megaSvc  *Service
	megaErr  error
)

func megaService(b *testing.B) *Service {
	megaOnce.Do(func() {
		w, err := webworld.Generate(webworld.Config{Seed: 1, Domains: 1_000_000})
		if err != nil {
			megaErr = err
			return
		}
		dt, err := BuildDomainTable(w)
		if err != nil {
			megaErr = err
			return
		}
		s := New(dt)
		if _, err := s.PublishSet(w.Validation().VRPs, "world", 0); err != nil {
			megaErr = err
			return
		}
		megaSvc = s
	})
	if megaErr != nil {
		b.Fatal(megaErr)
	}
	return megaSvc
}

// BenchmarkServeValidate1M is BenchmarkServeValidate's single-goroutine
// route mix against a million-domain table: the lookup path must stay
// flat no matter how large the domain population behind the snapshot
// is, and the MB-table metric pins the packed footprint at full scale.
func BenchmarkServeValidate1M(b *testing.B) {
	s := megaService(b)
	type route struct {
		prefix netip.Prefix
		asn    uint32
	}
	var routes []route
	for i, v := range s.Current().Index.All() {
		routes = append(routes, route{v.Prefix, v.ASN})
		routes = append(routes, route{v.Prefix, 64999})
		uncovered := netip.PrefixFrom(netip.AddrFrom4([4]byte{203, 0, byte(113 + i%16), 0}), 24)
		routes = append(routes, route{uncovered, v.ASN})
	}
	if len(routes) == 0 {
		b.Fatal("no VRPs to probe")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := routes[i%len(routes)]
		res := s.Current().ValidateRoute(r.prefix, r.asn)
		if res.State == "" {
			b.Fatal("empty state")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.domains.MemoryFootprint())/1e6, "MB-table")
}
