package serve

import (
	"context"
	"testing"
	"time"

	"ripki/internal/sim"
)

// TestRunSimPublishesScenarioChurn drives the service from an
// in-process roa-churn scenario: the ground-truth VRP set changes over
// virtual time and every change must surface as a new snapshot.
func TestRunSimPublishesScenarioChurn(t *testing.T) {
	w, dt := testSetup(t)
	s := New(dt)
	cfg := sim.Config{
		Scenario:      "roa-churn",
		Seed:          3,
		Domains:       w.Cfg.Domains,
		Tick:          10 * time.Second,
		Duration:      3 * time.Minute, // 18 ticks, then the source returns
		SampleEvery:   1 << 20,         // the probe is irrelevant here
		SampleDomains: 50,
		World:         w,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.RunSim(ctx, cfg, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sn := s.Current()
	if sn == nil {
		t.Fatal("no snapshot published")
	}
	if sn.Source != "sim" {
		t.Fatalf("source = %q, want sim", sn.Source)
	}
	// The initial publish plus at least one churn-driven republish.
	if sn.Serial < 2 {
		t.Fatalf("serial = %d; roa-churn should have driven republishes", sn.Serial)
	}
	if sn.SourceSerial == 0 {
		t.Fatal("source serial (sim tick) not propagated")
	}
}

// TestRunSimComposedScenario replays a compound incident live: the
// composition syntax flows through the sim source untouched, so the
// service can serve a hijack window opening under relying-party lag.
func TestRunSimComposedScenario(t *testing.T) {
	w, dt := testSetup(t)
	s := New(dt)
	cfg := sim.Config{
		Scenario:      "hijack-window+roa-churn",
		Seed:          3,
		Domains:       w.Cfg.Domains,
		Tick:          10 * time.Second,
		Duration:      3 * time.Minute,
		SampleEvery:   1 << 20,
		SampleDomains: 50,
		World:         w,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.RunSim(ctx, cfg, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sn := s.Current()
	if sn == nil || sn.Source != "sim" {
		t.Fatalf("no sim snapshot published: %+v", sn)
	}
	// Both components mutate the truth: the emergency ROA and the churn
	// stream each force republishes beyond the initial snapshot.
	if sn.Serial < 3 {
		t.Fatalf("serial = %d; the composed scenario should have driven several republishes", sn.Serial)
	}
}
