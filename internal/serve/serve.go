// Package serve is the always-on validation-as-a-service subsystem: it
// answers the paper's core question — "is this piece of web content
// reachable via an RPKI-protected route, and what breaks under strict
// filtering?" — as an online query service instead of a one-shot CLI
// or an offline sweep.
//
// The design centre is an immutable, versioned query snapshot published
// through an atomic pointer:
//
//   - a Snapshot bundles a lock-free VRP index (vrp.Index over
//     internal/radix), the domain→prefix exposure table derived from
//     the webworld via the measurement pipeline's resolution rules, and
//     a monotonically increasing serial;
//   - writers (an RTR client session against a cache, an in-process
//     sim scenario, or a direct Publish call) build a fresh Snapshot
//     and swap the pointer — they never mutate a published one;
//   - the read path loads the pointer once per request and answers
//     entirely from that snapshot, so it takes no mutex, can never
//     observe a half-applied update, and scales linearly with cores.
//
// HTTP surface (see Handler): POST/GET /v1/validate (single and batch
// RFC 6811 origin validation with covering VRPs and the snapshot
// serial), GET /v1/domain/{name} (per-domain exposure verdict à la the
// paper's figures), GET /v1/domains, GET /v1/snapshot, GET /v1/events
// (the cursor-indexed incident feed: typed sim incidents plus every
// snapshot publish, with long-poll), GET /healthz (503 "degraded" when
// a live source outlives SetHealthMaxStaleness), and GET /metrics
// (Prometheus text exposition: request counters and latency histograms
// per endpoint, snapshot identity, per-source staleness gauges, and
// per-event-type feed counters — rendered from lock-free accumulators).
package serve

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"ripki/internal/measure"
	"ripki/internal/obs"
	"ripki/internal/rpki/vrp"
	"ripki/internal/webworld"
)

// CoveringVRP is the JSON rendering of one VRP considered for a route.
type CoveringVRP struct {
	Prefix    string `json:"prefix"`
	MaxLength int    `json:"max_length"`
	ASN       uint32 `json:"asn"`
}

// RouteResult is one route's origin-validation outcome.
type RouteResult struct {
	Prefix string `json:"prefix"`
	ASN    uint32 `json:"asn"`
	// State is "valid", "invalid" or "notfound" (RFC 6811).
	State string `json:"state"`
	// Covering lists every VRP covering the prefix, shortest first.
	Covering []CoveringVRP `json:"covering,omitempty"`
}

// StateToken renders a validation state as the compact API token the
// sim's time-series columns already use.
func StateToken(st vrp.State) string {
	switch st {
	case vrp.Valid:
		return "valid"
	case vrp.Invalid:
		return "invalid"
	default:
		return "notfound"
	}
}

// Snapshot is one immutable, versioned view of the service's queryable
// state. All fields are set before the snapshot is published and never
// written afterwards, so any number of readers may use it concurrently
// without synchronisation.
type Snapshot struct {
	// Serial is the service's own publication counter, strictly
	// increasing; every response carries it so callers can correlate.
	Serial uint64
	// Source names the update source ("world", "csv", "rtr", "sim").
	Source string
	// SourceSerial is the source's own version (RTR cache serial, sim
	// tick), informational.
	SourceSerial uint32
	// Index is the lock-free VRP index answering RFC 6811 queries.
	Index *vrp.Index
	// Domains is the domain exposure table (shared across snapshots —
	// DNS and RIB state is VRP-independent).
	Domains *DomainTable
	// Exposure is the aggregate exposure of the domain population under
	// this snapshot's VRPs, in the paper's figure terms.
	Exposure measure.ExposureSnapshot
}

// ValidateRoute classifies one route against this snapshot.
func (sn *Snapshot) ValidateRoute(prefix netip.Prefix, asn uint32) RouteResult {
	st, covering := sn.Index.ValidateExplain(prefix, asn)
	res := RouteResult{Prefix: prefix.String(), ASN: asn, State: StateToken(st)}
	if len(covering) > 0 {
		res.Covering = make([]CoveringVRP, len(covering))
		for i, v := range covering {
			res.Covering[i] = CoveringVRP{Prefix: v.Prefix.String(), MaxLength: v.MaxLength, ASN: v.ASN}
		}
	}
	return res
}

// VariantVerdict is one name variant's exposure under a snapshot.
type VariantVerdict struct {
	Name     string `json:"name"`
	Resolved bool   `json:"resolved"`
	// Routes are the distinct (prefix, origin) pairs serving the name,
	// each with its validation outcome.
	Routes []RouteResult `json:"routes,omitempty"`
	// Valid/Invalid/NotFound are the per-domain state probabilities
	// over the pairs (the paper's fractional representation).
	Valid    float64 `json:"valid"`
	Invalid  float64 `json:"invalid"`
	NotFound float64 `json:"notfound"`
	// Coverage is the probability of being RPKI-covered at all.
	Coverage float64 `json:"coverage"`
	// Protected: every pair validates — a hijack of any serving prefix
	// is dropped by strict-filtering relying parties.
	Protected bool `json:"protected"`
	// StrictReachable: at least one pair is not invalid, i.e. the name
	// stays reachable when routers drop invalid announcements.
	StrictReachable bool `json:"strict_reachable"`
}

// DomainVerdict is the per-domain exposure answer of GET /v1/domain.
type DomainVerdict struct {
	Domain string         `json:"domain"`
	Rank   int            `json:"rank"`
	CDN    bool           `json:"cdn"`
	Serial uint64         `json:"serial"`
	WWW    VariantVerdict `json:"www"`
	Apex   VariantVerdict `json:"apex"`
}

// Domain answers the per-domain exposure query. The name may carry a
// leading "www." label; both variants are always reported.
func (sn *Snapshot) Domain(name string) (*DomainVerdict, bool) {
	t := sn.Domains
	i, ok := t.lookup(name)
	if !ok {
		return nil, false
	}
	dn := t.name(i)
	return &DomainVerdict{
		Domain: dn,
		Rank:   int(t.ranks[i]),
		CDN:    t.flags[i]&flagCDN != 0,
		Serial: sn.Serial,
		WWW:    sn.variantVerdict("www."+dn, t.wwwIDs(i), t.flags[i]&flagWWWResolved != 0),
		Apex:   sn.variantVerdict(dn, t.apexIDs(i), t.flags[i]&flagApexResolved != 0),
	}, true
}

// variantVerdict validates one variant's routes (ids into the table's
// unique-route array) against the snapshot.
func (sn *Snapshot) variantVerdict(name string, ids []uint32, resolved bool) VariantVerdict {
	v := VariantVerdict{Name: name, Resolved: resolved}
	if !resolved || len(ids) == 0 {
		return v
	}
	routes := sn.Domains.routes
	v.Routes = make([]RouteResult, 0, len(ids))
	valid, invalid := 0, 0
	for _, id := range ids {
		p := routes[id]
		rr := sn.ValidateRoute(p.Prefix, p.Origin)
		v.Routes = append(v.Routes, rr)
		switch rr.State {
		case "valid":
			valid++
		case "invalid":
			invalid++
		}
	}
	n := float64(len(ids))
	v.Valid = float64(valid) / n
	v.Invalid = float64(invalid) / n
	v.NotFound = float64(len(ids)-valid-invalid) / n
	v.Coverage = float64(valid+invalid) / n
	v.Protected = valid == len(ids)
	v.StrictReachable = invalid < len(ids)
	return v
}

// Service publishes snapshots and serves queries over them. Writers
// (Publish and the Run* sources) serialise on an internal mutex; the
// read path — Current and every HTTP handler — only ever loads the
// atomic snapshot pointer.
type Service struct {
	domains *DomainTable
	metrics *metrics
	reg     *obs.Registry
	start   time.Time

	// events is the incident feed behind GET /v1/events; eventsTotal
	// counts appends by event_type for /metrics.
	events      *eventRing
	eventsTotal *obs.CounterVec

	// healthMaxStaleness, when positive, turns /healthz into a
	// staleness probe: 503 once any live source's last publish is older
	// than this. liveSince stamps when each live source was registered,
	// so a source that never publishes still trips the probe.
	healthMaxStaleness time.Duration
	liveSources        sync.Map // source name → liveSince (time.Time)

	snap atomic.Pointer[Snapshot]

	// Staleness trackers behind GET /metrics: when the service last
	// published at all, and when (and at what source serial) each source
	// last did. Written under pubMu; read atomically at scrape time.
	publishedAt atomic.Int64
	sources     sync.Map // source name → *sourceStat

	// pubMu serialises writers so serials and snapshots advance
	// together. Readers never touch it.
	pubMu  sync.Mutex
	serial uint64
}

// New creates a service over a domain exposure table (which may be
// empty). No snapshot is published yet: /healthz reports starting and
// queries answer 503 until the first Publish.
func New(domains *DomainTable) *Service {
	if domains == nil {
		domains = &DomainTable{}
	}
	s := &Service{
		domains: domains,
		metrics: newMetrics(),
		start:   time.Now(),
		events:  newEventRing(eventRingCapacity),
	}
	s.reg = s.buildRegistry()
	return s
}

// SetHealthMaxStaleness arms the degraded-health probe: when d > 0,
// /healthz answers 503 with a JSON reason once any live update source
// has not published for longer than d. Set before serving traffic.
func (s *Service) SetHealthMaxStaleness(d time.Duration) { s.healthMaxStaleness = d }

// markLive registers a continuously updating source (an RTR session, a
// sim scenario) with the health probe; one-shot publishers ("world",
// "csv") are not live and never trip it.
func (s *Service) markLive(source string) { s.liveSources.LoadOrStore(source, time.Now()) }

// NewFromWorld builds the domain table from a generated world, then
// publishes the world's own validated ROA payloads as the first
// snapshot (source "world") — the state a fully synchronised relying
// party would serve at measurement time.
func NewFromWorld(w *webworld.World) (*Service, error) {
	dt, err := BuildDomainTable(w)
	if err != nil {
		return nil, err
	}
	s := New(dt)
	if _, err := s.PublishSet(w.Validation().VRPs, "world", 0); err != nil {
		return nil, err
	}
	return s, nil
}

// Current returns the latest published snapshot, or nil before the
// first publish. It is safe from any goroutine and takes no lock.
func (s *Service) Current() *Snapshot { return s.snap.Load() }

// Publish builds an immutable snapshot from the given VRPs and swaps
// it in, bumping the serial. The VRP slice is copied into a fresh
// index; the caller may reuse it afterwards.
func (s *Service) Publish(vs []vrp.VRP, source string, sourceSerial uint32) (*Snapshot, error) {
	ix, err := vrp.NewIndex(vs)
	if err != nil {
		return nil, fmt.Errorf("serve: building index: %w", err)
	}
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.serial++
	sn := &Snapshot{
		Serial:       s.serial,
		Source:       source,
		SourceSerial: sourceSerial,
		Index:        ix,
		Domains:      s.domains,
		Exposure:     s.domains.exposure(ix),
	}
	s.snap.Store(sn)
	s.recordPublish(source, sourceSerial)
	s.appendEvent(FeedEvent{
		EventType: "serve.snapshot_publish",
		Feed:      "serve",
		Observer:  source,
		Attributes: map[string]string{
			"source":        source,
			"source_serial": fmt.Sprintf("%d", sourceSerial),
			"vrps":          fmt.Sprintf("%d", ix.Len()),
		},
	})
	return sn, nil
}

// PublishSet is Publish from a vrp.Set.
func (s *Service) PublishSet(set *vrp.Set, source string, sourceSerial uint32) (*Snapshot, error) {
	return s.Publish(set.All(), source, sourceSerial)
}
