package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"time"
)

// maxBatchRoutes bounds one POST /v1/validate body; larger batches
// should be split by the client (loadgen's default is far below this).
const maxBatchRoutes = 4096

// Handler returns the service's HTTP API. Every handler follows the
// same discipline: load the snapshot pointer once, answer entirely from
// that snapshot, take no mutex. Instrumentation is atomic counters
// only, so the whole read path is lock-free.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/validate", s.instrument("validate", s.handleValidatePost))
	mux.Handle("GET /v1/validate", s.instrument("validate", s.handleValidateGet))
	mux.Handle("GET /v1/domain/{name}", s.instrument("domain", s.handleDomain))
	mux.Handle("GET /v1/domains", s.instrument("domains", s.handleDomains))
	mux.Handle("GET /v1/snapshot", s.instrument("snapshot", s.handleSnapshot))
	mux.Handle("GET /v1/events", s.instrument("events", s.handleEvents))
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}

// statusRecorder captures the response status for the error counter.
// One per request, never shared — no synchronisation needed.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the lock-free request metrics.
func (s *Service) instrument(name string, h http.HandlerFunc) http.Handler {
	em, ok := s.metrics.endpoints[name]
	if !ok {
		panic("serve: unregistered endpoint " + name)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		em.observe(time.Since(start), rec.status)
	})
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// current loads the snapshot or answers 503 (no snapshot published
// yet — an RTR-fed service that has not completed its first sync).
func (s *Service) current(w http.ResponseWriter) *Snapshot {
	sn := s.Current()
	if sn == nil {
		writeError(w, http.StatusServiceUnavailable, "no snapshot published yet")
	}
	return sn
}

// snapshotETag renders a snapshot's serial as a strong entity tag.
// Snapshots are immutable and the serial is strictly increasing, so the
// serial IS the entity version for every snapshot-derived resource.
func snapshotETag(sn *Snapshot) string {
	return `"` + strconv.FormatUint(sn.Serial, 10) + `"`
}

// conditional stamps the response with the snapshot's ETag and, when
// the request's If-None-Match names that tag (or "*"), answers 304 and
// reports true — the caller must not write a body. Pollers chasing
// snapshot churn thus pay a header round trip, not a full re-render.
func conditional(w http.ResponseWriter, r *http.Request, sn *Snapshot) bool {
	etag := snapshotETag(sn)
	w.Header().Set("ETag", etag)
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	for _, cand := range strings.Split(inm, ",") {
		cand = strings.TrimSpace(cand)
		// Weak validators compare by opaque tag: serial equality is
		// exact, so weak and strong comparison coincide here.
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			w.WriteHeader(http.StatusNotModified)
			return true
		}
	}
	return false
}

// routeSpec is one route in a validate request.
type routeSpec struct {
	Prefix string `json:"prefix"`
	ASN    uint32 `json:"asn"`
}

// validateRequest accepts either a single route or a batch.
type validateRequest struct {
	routeSpec
	Routes []routeSpec `json:"routes"`
}

// validateResponse carries the snapshot identity with the results, so
// a caller can tell exactly which published state answered.
type validateResponse struct {
	Serial       uint64        `json:"serial"`
	Source       string        `json:"source"`
	SourceSerial uint32        `json:"source_serial"`
	Results      []RouteResult `json:"results"`
}

// parseRoute turns a routeSpec into a netip route.
func parseRoute(spec routeSpec) (netip.Prefix, uint32, error) {
	p, err := netip.ParsePrefix(spec.Prefix)
	if err != nil {
		return netip.Prefix{}, 0, fmt.Errorf("bad prefix %q: %v", spec.Prefix, err)
	}
	return p, spec.ASN, nil
}

// answerRoutes validates the specs against one snapshot and responds.
func answerRoutes(w http.ResponseWriter, sn *Snapshot, specs []routeSpec) {
	results := make([]RouteResult, 0, len(specs))
	for _, spec := range specs {
		p, asn, err := parseRoute(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		results = append(results, sn.ValidateRoute(p, asn))
	}
	writeJSON(w, http.StatusOK, validateResponse{
		Serial:       sn.Serial,
		Source:       sn.Source,
		SourceSerial: sn.SourceSerial,
		Results:      results,
	})
}

func (s *Service) handleValidatePost(w http.ResponseWriter, r *http.Request) {
	sn := s.current(w)
	if sn == nil {
		return
	}
	var req validateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	specs := req.Routes
	if specs == nil {
		if req.Prefix == "" {
			writeError(w, http.StatusBadRequest, `want {"prefix": ..., "asn": ...} or {"routes": [...]}`)
			return
		}
		specs = []routeSpec{req.routeSpec}
	}
	if len(specs) == 0 {
		writeError(w, http.StatusBadRequest, "empty route batch")
		return
	}
	if len(specs) > maxBatchRoutes {
		writeError(w, http.StatusBadRequest, "batch of %d routes exceeds limit %d", len(specs), maxBatchRoutes)
		return
	}
	answerRoutes(w, sn, specs)
}

func (s *Service) handleValidateGet(w http.ResponseWriter, r *http.Request) {
	sn := s.current(w)
	if sn == nil {
		return
	}
	prefix := r.URL.Query().Get("prefix")
	asnText := r.URL.Query().Get("asn")
	if prefix == "" || asnText == "" {
		writeError(w, http.StatusBadRequest, "want ?prefix=<cidr>&asn=<asn>")
		return
	}
	asn, err := strconv.ParseUint(asnText, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad asn %q: %v", asnText, err)
		return
	}
	answerRoutes(w, sn, []routeSpec{{Prefix: prefix, ASN: uint32(asn)}})
}

func (s *Service) handleDomain(w http.ResponseWriter, r *http.Request) {
	sn := s.current(w)
	if sn == nil {
		return
	}
	name := r.PathValue("name")
	if _, ok := sn.Domains.lookup(name); !ok {
		writeError(w, http.StatusNotFound, "domain %q not in the measured population", name)
		return
	}
	// A verdict is a pure function of (snapshot, name), so the snapshot
	// serial versions this resource too. Answer the conditional before
	// computing the verdict — a 304 skips the whole per-route
	// validation, not just the rendering.
	if conditional(w, r, sn) {
		return
	}
	verdict, _ := sn.Domain(name)
	writeJSON(w, http.StatusOK, verdict)
}

// maxDomainsPage caps one GET /v1/domains response. At the paper's
// million-domain population an uncapped listing would marshal tens of
// megabytes per request; clients page with limit/offset instead, and
// count always reports the full population size.
const maxDomainsPage = 1000

func (s *Service) handleDomains(w http.ResponseWriter, r *http.Request) {
	sn := s.current(w)
	if sn == nil {
		return
	}
	q := r.URL.Query()
	limit := maxDomainsPage
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", l)
			return
		}
		// 0 ("everything") and over-cap requests clamp to the page cap.
		if n != 0 && n < maxDomainsPage {
			limit = n
		}
	}
	offset := 0
	if o := q.Get("offset"); o != "" {
		n, err := strconv.Atoi(o)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad offset %q", o)
			return
		}
		offset = n // past-the-end offsets answer an empty page, not 400
	}
	writeJSON(w, http.StatusOK, struct {
		Serial  uint64          `json:"serial"`
		Count   int             `json:"count"`
		Offset  int             `json:"offset"`
		Domains []DomainListing `json:"domains"`
	}{sn.Serial, sn.Domains.Len(), offset, sn.Domains.Listing(limit, offset)})
}

// snapshotInfo is the GET /v1/snapshot body.
type snapshotInfo struct {
	Serial       uint64       `json:"serial"`
	Source       string       `json:"source"`
	SourceSerial uint32       `json:"source_serial"`
	VRPs         int          `json:"vrps"`
	Domains      int          `json:"domains"`
	Exposure     exposureJSON `json:"exposure"`
}

// exposureJSON renders measure.ExposureSnapshot for the API.
type exposureJSON struct {
	Domains   int     `json:"domains"`
	Valid     float64 `json:"valid"`
	Invalid   float64 `json:"invalid"`
	NotFound  float64 `json:"notfound"`
	Coverage  float64 `json:"coverage"`
	HeadValid float64 `json:"head_valid"`
	TailValid float64 `json:"tail_valid"`
}

func (s *Service) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sn := s.current(w)
	if sn == nil {
		return
	}
	if conditional(w, r, sn) {
		return
	}
	writeJSON(w, http.StatusOK, snapshotInfo{
		Serial:       sn.Serial,
		Source:       sn.Source,
		SourceSerial: sn.SourceSerial,
		VRPs:         sn.Index.Len(),
		Domains:      sn.Domains.Len(),
		Exposure: exposureJSON{
			Domains:   sn.Exposure.Domains,
			Valid:     sn.Exposure.Valid,
			Invalid:   sn.Exposure.Invalid,
			NotFound:  sn.Exposure.NotFound,
			Coverage:  sn.Exposure.Coverage,
			HeadValid: sn.Exposure.HeadValid,
			TailValid: sn.Exposure.TailValid,
		},
	})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sn := s.Current()
	if sn == nil {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{"starting"})
		return
	}
	if source, age, stale := s.staleSource(); stale {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status     string  `json:"status"`
			Reason     string  `json:"reason"`
			Source     string  `json:"source"`
			AgeSeconds float64 `json:"age_seconds"`
			MaxSeconds float64 `json:"max_seconds"`
			Serial     uint64  `json:"serial"`
		}{
			Status:     "degraded",
			Reason:     fmt.Sprintf("source %q has not published for %.1fs (max %.1fs)", source, age.Seconds(), s.healthMaxStaleness.Seconds()),
			Source:     source,
			AgeSeconds: age.Seconds(),
			MaxSeconds: s.healthMaxStaleness.Seconds(),
			Serial:     sn.Serial,
		})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		Serial uint64 `json:"serial"`
		VRPs   int    `json:"vrps"`
	}{"ok", sn.Serial, sn.Index.Len()})
}

// staleSource reports the live source with the largest update age
// exceeding the configured maximum, if any. Before a live source's
// first publish its age runs from registration, so a source that never
// syncs still degrades health instead of hiding forever.
func (s *Service) staleSource() (string, time.Duration, bool) {
	if s.healthMaxStaleness <= 0 {
		return "", 0, false
	}
	var worstName string
	var worstAge time.Duration
	s.liveSources.Range(func(k, v any) bool {
		name := k.(string)
		last := v.(time.Time) // registration time
		if st, ok := s.sources.Load(name); ok {
			if ns := st.(*sourceStat).lastNS.Load(); ns > last.UnixNano() {
				last = time.Unix(0, ns)
			}
		}
		if age := time.Since(last); age > s.healthMaxStaleness && age > worstAge {
			worstName, worstAge = name, age
		}
		return true
	})
	return worstName, worstAge, worstName != ""
}

// handleMetrics is the Prometheus scrape endpoint (text exposition
// format 0.0.4): uptime, snapshot identity, per-source staleness gauges,
// and the per-endpoint request counters and latency histograms. The
// scrape only loads atomics; it never contends with the query path.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteTo(w)
}
