package serve

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"ripki/internal/sim"
)

func TestEventRingCursor(t *testing.T) {
	r := newEventRing(4)
	if evs, dropped, next := r.since(0, 10); len(evs) != 0 || dropped != 0 || next != 0 {
		t.Fatalf("empty ring: %v %d %d", evs, dropped, next)
	}
	for i := 0; i < 3; i++ {
		r.append(FeedEvent{EventType: "a"})
	}
	evs, dropped, next := r.since(0, 10)
	if len(evs) != 3 || dropped != 0 || next != 3 {
		t.Fatalf("since 0: %d events, dropped %d, next %d", len(evs), dropped, next)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	// Cursor semantics: asking from the returned next yields nothing new.
	if evs, _, next2 := r.since(next, 10); len(evs) != 0 || next2 != next {
		t.Fatalf("since next: %d events, next %d", len(evs), next2)
	}
	// Overflow: 6 more appends on capacity 4 ⇒ seqs 1..5 are gone.
	for i := 0; i < 6; i++ {
		r.append(FeedEvent{EventType: "b"})
	}
	evs, dropped, next = r.since(0, 10)
	if len(evs) != 4 || dropped != 5 || next != 9 {
		t.Fatalf("after overflow: %d events, dropped %d, next %d", len(evs), dropped, next)
	}
	if evs[0].Seq != 6 || evs[3].Seq != 9 {
		t.Fatalf("overflow window = [%d, %d], want [6, 9]", evs[0].Seq, evs[3].Seq)
	}
	// Limit pages through the window without losing position.
	evs, _, next = r.since(5, 2)
	if len(evs) != 2 || next != 7 {
		t.Fatalf("limited page: %d events, next %d", len(evs), next)
	}
}

func TestEventsEndpoint(t *testing.T) {
	s := testService(t)
	h := s.Handler()

	// The initial publish itself is event #1.
	rec, body := do(t, h, "GET", "/v1/events", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/events: %d %v", rec.Code, body)
	}
	events := body["events"].([]any)
	if len(events) != 1 {
		t.Fatalf("want the snapshot_publish event, got %d events", len(events))
	}
	first := events[0].(map[string]any)
	if first["event_type"] != "serve.snapshot_publish" || first["observer"] != "world" {
		t.Fatalf("unexpected first event: %v", first)
	}
	if first["serial"].(float64) != 1 || body["serial"].(float64) != 1 {
		t.Fatalf("serial stamps: event %v response %v", first["serial"], body["serial"])
	}
	next := int(body["next"].(float64))
	if next != 1 {
		t.Fatalf("next = %d, want 1", next)
	}

	// Nothing new after the cursor.
	_, body = do(t, h, "GET", "/v1/events?since="+strconv.Itoa(next), "")
	if len(body["events"].([]any)) != 0 || int(body["next"].(float64)) != next {
		t.Fatalf("cursor follow-up: %v", body)
	}

	// A publish wakes a long-poll waiter before its deadline.
	done := make(chan map[string]any, 1)
	go func() {
		_, body := do(t, h, "GET", "/v1/events?since="+strconv.Itoa(next)+"&wait=5s", "")
		done <- body
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := s.PublishSet(testWorld.Validation().VRPs, "world", 1); err != nil {
		t.Fatal(err)
	}
	select {
	case body := <-done:
		events := body["events"].([]any)
		if len(events) != 1 || events[0].(map[string]any)["event_type"] != "serve.snapshot_publish" {
			t.Fatalf("long-poll answer: %v", body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke on publish")
	}

	// A timed-out long-poll answers 200 with an empty list.
	next = 2
	rec, body = do(t, h, "GET", "/v1/events?since="+strconv.Itoa(next)+"&wait=30ms", "")
	if rec.Code != http.StatusOK || len(body["events"].([]any)) != 0 {
		t.Fatalf("timed-out long-poll: %d %v", rec.Code, body)
	}

	// Bad parameters are 400s.
	for _, target := range []string{"/v1/events?since=x", "/v1/events?limit=0", "/v1/events?wait=x"} {
		if rec, _ := do(t, h, "GET", target, ""); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s: %d, want 400", target, rec.Code)
		}
	}
}

// TestRunSimFeedsEvents drives the sim source and expects the scenario's
// typed incidents — including the hijack announce — to reach the feed
// and the per-type counters.
func TestRunSimFeedsEvents(t *testing.T) {
	_, dt := testSetup(t)
	s := New(dt)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		errc <- s.RunSim(ctx, sim.Config{
			Scenario:      "hijack-window",
			Seed:          1,
			World:         testWorld,
			Tick:          10 * time.Second,
			Duration:      4 * time.Minute,
			SampleEvery:   1000, // probes are wall-clock expensive and irrelevant here
			SampleDomains: 10,
		}, time.Millisecond)
	}()

	h := s.Handler()
	deadline := time.After(30 * time.Second)
	var sawHijack bool
	for !sawHijack {
		select {
		case err := <-errc:
			t.Fatalf("sim source ended early: %v", err)
		case <-deadline:
			t.Fatal("no bgp.hijack_announce event within 30s")
		case <-time.After(20 * time.Millisecond):
		}
		_, body := do(t, h, "GET", "/v1/events?limit=500", "")
		for _, e := range body["events"].([]any) {
			ev := e.(map[string]any)
			if ev["event_type"] == "bgp.hijack_announce" {
				sawHijack = true
				if ev["feed"] != "bgp" || ev["scenario"] != "hijack-window" {
					t.Fatalf("hijack event fields: %v", ev)
				}
				if ev["attributes"].(map[string]any)["name"] != "cdn-subprefix" {
					t.Fatalf("hijack attributes: %v", ev["attributes"])
				}
			}
		}
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("sim source: %v", err)
	}

	rec := scrape(t, h)
	if !strings.Contains(rec, `ripki_serve_events_total{event_type="bgp.hijack_announce"}`) {
		t.Error("metrics missing the hijack_announce event counter")
	}
	if !strings.Contains(rec, `ripki_serve_events_total{event_type="serve.snapshot_publish"}`) {
		t.Error("metrics missing the snapshot_publish event counter")
	}
	if !strings.Contains(rec, "ripki_serve_events_last_seq") {
		t.Error("metrics missing ripki_serve_events_last_seq")
	}
	if !strings.Contains(rec, `ripki_build_info{version="dev",go_version="go`) {
		t.Error("metrics missing ripki_build_info")
	}
}

// TestHealthzDegradedOnStaleness: with a max staleness armed and a live
// source that stops publishing, /healthz flips to 503 degraded with a
// machine-readable reason; fresh publishes restore 200.
func TestHealthzDegradedOnStaleness(t *testing.T) {
	s := testService(t)
	s.SetHealthMaxStaleness(50 * time.Millisecond)
	h := s.Handler()

	// "world" is not a live source, so staleness never applies to it.
	rec, _ := do(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz with no live sources: %d", rec.Code)
	}

	s.markLive("rtr")
	time.Sleep(80 * time.Millisecond)
	rec, body := do(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("stale live source: %d %v", rec.Code, body)
	}
	if body["status"] != "degraded" || body["source"] != "rtr" {
		t.Fatalf("degraded body: %v", body)
	}
	if body["age_seconds"].(float64) <= body["max_seconds"].(float64) {
		t.Fatalf("degraded ages: %v", body)
	}
	if !strings.Contains(body["reason"].(string), "rtr") {
		t.Fatalf("reason does not name the source: %v", body["reason"])
	}

	// A fresh publish from the live source clears the degradation.
	if _, err := s.PublishSet(testWorld.Validation().VRPs, "rtr", 2); err != nil {
		t.Fatal(err)
	}
	rec, body = do(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("post-publish healthz: %d %v", rec.Code, body)
	}
}
