package serve

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"ripki/internal/sim"
)

// The incident feed turns the sim source's typed incident stream (and
// every snapshot publish) into a consumable API: a serial-indexed ring
// of events a client reads with a cursor. A monitor no longer polls
// /v1/snapshot and diffs — it asks "what happened since seq N" and
// long-polls for the next thing.

// FeedEvent is one entry in the service's incident feed. Seq is the
// feed's own strictly increasing cursor (starting at 1); Serial is the
// snapshot serial current when the event was recorded.
type FeedEvent struct {
	Seq        uint64            `json:"seq"`
	UnixMS     int64             `json:"unix_ms"`
	EventType  string            `json:"event_type"`
	Feed       string            `json:"feed"`
	Observer   string            `json:"observer"`
	Scenario   string            `json:"scenario,omitempty"`
	SimTUS     int64             `json:"sim_t_us,omitempty"`
	Serial     uint64            `json:"serial"`
	Attributes map[string]string `json:"attributes,omitempty"`
}

// eventRingCapacity bounds the feed's memory: a slow consumer loses old
// events (reported via "dropped"), it never stalls the writers.
const eventRingCapacity = 1024

// eventRing is the serial-indexed ring buffer behind GET /v1/events.
// Writers append under mu; readers copy out under mu (events are small
// and reads are cheap relative to the HTTP marshalling around them).
type eventRing struct {
	mu     sync.Mutex
	buf    []FeedEvent
	cap    int
	next   uint64        // seq the next append will take; seqs start at 1
	notify chan struct{} // closed and replaced on every append
}

func newEventRing(capacity int) *eventRing {
	return &eventRing{cap: capacity, next: 1, notify: make(chan struct{})}
}

// append stamps the event's seq and stores it, waking long-pollers.
func (r *eventRing) append(ev FeedEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ev.Seq = r.next
	r.next++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[int((ev.Seq-1))%r.cap] = ev
	}
	close(r.notify)
	r.notify = make(chan struct{})
}

// since copies out up to limit events with seq > since, in seq order.
// dropped counts events past the cursor that have already aged out of
// the ring; next is the cursor to pass on the following call.
func (r *eventRing) since(since uint64, limit int) (events []FeedEvent, dropped, next uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := uint64(1)
	if r.next > uint64(r.cap) {
		oldest = r.next - uint64(r.cap)
	}
	from := since + 1
	if from < oldest {
		dropped = oldest - from
		from = oldest
	}
	next = since
	for seq := from; seq < r.next && len(events) < limit; seq++ {
		events = append(events, r.buf[int(seq-1)%r.cap])
		next = seq
	}
	return events, dropped, next
}

// wait returns a channel closed at the next append.
func (r *eventRing) wait() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.notify
}

// appendEvent stamps wall time, snapshot serial, and the per-type
// counter, then appends to the ring.
func (s *Service) appendEvent(ev FeedEvent) {
	ev.UnixMS = time.Now().UnixMilli()
	if sn := s.Current(); sn != nil {
		ev.Serial = sn.Serial
	}
	s.events.append(ev)
	s.eventsTotal.With(ev.EventType).Inc()
}

// feedIncident converts one sim incident into its feed entry.
func feedIncident(in sim.Incident) FeedEvent {
	return FeedEvent{
		EventType:  in.EventType,
		Feed:       in.Source.Feed,
		Observer:   in.Source.Observer,
		Scenario:   in.Scenario,
		SimTUS:     in.T.Microseconds(),
		Attributes: in.Attributes,
	}
}

// maxEventsPage caps one GET /v1/events response; maxEventsWait caps
// the long-poll hold so intermediaries don't reap idle connections.
const (
	maxEventsPage = 500
	maxEventsWait = 30 * time.Second
)

// eventsResponse is the GET /v1/events body. Next is the cursor for the
// follow-up request ("give me everything after what I just saw").
type eventsResponse struct {
	Serial  uint64      `json:"serial"`
	Since   uint64      `json:"since"`
	Next    uint64      `json:"next"`
	Dropped uint64      `json:"dropped"`
	Events  []FeedEvent `json:"events"`
}

// handleEvents answers GET /v1/events?since=N[&limit=M][&wait=D]: the
// events with seq > N. With wait, an empty answer long-polls until the
// next append (every snapshot publish appends, so the snapshot serial
// advancing is itself a wake-up), the timeout, or client disconnect —
// whichever comes first; a timeout answers 200 with an empty list.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad since %q", v)
			return
		}
		since = n
	}
	limit := maxEventsPage
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		if n < limit {
			limit = n
		}
	}
	var deadline <-chan time.Time
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "bad wait %q", v)
			return
		}
		if d > maxEventsWait {
			d = maxEventsWait
		}
		t := time.NewTimer(d)
		defer t.Stop()
		deadline = t.C
	}

	for {
		// Snapshot the wake-up channel before reading, so an append
		// between the read and the select is never missed.
		wake := s.events.wait()
		events, dropped, next := s.events.since(since, limit)
		if len(events) > 0 || deadline == nil {
			var serial uint64
			if sn := s.Current(); sn != nil {
				serial = sn.Serial
			}
			if events == nil {
				events = []FeedEvent{}
			}
			writeJSON(w, http.StatusOK, eventsResponse{
				Serial:  serial,
				Since:   since,
				Next:    next,
				Dropped: dropped,
				Events:  events,
			})
			return
		}
		select {
		case <-wake:
		case <-deadline:
			deadline = nil
		case <-r.Context().Done():
			return
		}
	}
}
