package serve

import (
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"ripki/internal/obs"
)

// The metrics layer must not reintroduce a lock on the read path, so it
// is built entirely from atomics: per-endpoint request/error counters
// and a log₂-bucketed latency histogram. The accumulators render into
// the Prometheus text exposition at scrape time through an obs.Collector
// — a scrape reads the atomics, it never makes a request handler wait.

// latBuckets spans 1ns .. ~9min in powers of two; observations beyond
// the last bound clamp into the final bucket.
const latBuckets = 40

// latBounds are the exposition's histogram upper bounds: 2^i nanoseconds
// rendered in seconds, one per raw bucket. Raw bucket i holds
// observations in [2^(i-1), 2^i) ns, so the cumulative count for
// le=2^i/1e9 is the sum of raw buckets 0..i.
var latBounds = func() []float64 {
	out := make([]float64, latBuckets)
	for i := range out {
		out[i] = float64(uint64(1)<<uint(i)) / 1e9
	}
	return out
}()

// endpointMetrics is one endpoint's lock-free accumulator.
type endpointMetrics struct {
	count   atomic.Uint64
	errors  atomic.Uint64 // responses with status >= 400
	sumNS   atomic.Uint64
	minNS   atomic.Uint64 // math.MaxUint64 until the first observation
	maxNS   atomic.Uint64
	buckets [latBuckets]atomic.Uint64
}

func newEndpointMetrics() *endpointMetrics {
	m := &endpointMetrics{}
	m.minNS.Store(math.MaxUint64)
	return m
}

// observe records one request.
func (m *endpointMetrics) observe(d time.Duration, status int) {
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	m.count.Add(1)
	if status >= 400 {
		m.errors.Add(1)
	}
	m.sumNS.Add(ns)
	for {
		cur := m.minNS.Load()
		if ns >= cur || m.minNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := m.maxNS.Load()
		if ns <= cur || m.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	idx := bits.Len64(ns) // bucket b covers [2^(b-1), 2^b)
	if idx >= latBuckets {
		idx = latBuckets - 1
	}
	m.buckets[idx].Add(1)
}

// histogram renders the accumulator in exposition shape: cumulative
// counts per latBounds entry, sum in seconds, and the total. Concurrent
// observers may have bumped count but not yet their bucket (or vice
// versa); Prometheus tolerates that skew by design.
func (m *endpointMetrics) histogram() (cumulative []uint64, sum float64, count uint64) {
	cumulative = make([]uint64, latBuckets)
	var cum uint64
	for i := range cumulative {
		cum += m.buckets[i].Load()
		cumulative[i] = cum
	}
	return cumulative, float64(m.sumNS.Load()) / 1e9, m.count.Load()
}

// metrics is the service-wide accumulator set. The endpoint map is fixed
// at construction, so lookups never need a lock.
type metrics struct {
	endpoints map[string]*endpointMetrics
}

// endpointNames is the fixed instrumentation vocabulary; instrument
// panics on anything else, catching typos at test time.
var endpointNames = []string{"validate", "domain", "domains", "snapshot", "events", "healthz", "metrics"}

func newMetrics() *metrics {
	m := &metrics{endpoints: make(map[string]*endpointMetrics, len(endpointNames))}
	for _, name := range endpointNames {
		m.endpoints[name] = newEndpointMetrics()
	}
	return m
}

// collect renders the per-endpoint accumulators into a scrape, in the
// vocabulary's declaration order (byte-stable output).
func (m *metrics) collect(e *obs.Encoder) {
	e.Family("ripki_serve_requests_total", "Requests served, by endpoint.", obs.TypeCounter)
	for _, name := range endpointNames {
		e.Sample("", []obs.Label{{Name: "endpoint", Value: name}}, float64(m.endpoints[name].count.Load()))
	}
	e.Family("ripki_serve_request_errors_total", "Responses with status >= 400, by endpoint.", obs.TypeCounter)
	for _, name := range endpointNames {
		e.Sample("", []obs.Label{{Name: "endpoint", Value: name}}, float64(m.endpoints[name].errors.Load()))
	}
	e.Family("ripki_serve_request_duration_seconds", "Request latency, by endpoint (power-of-two buckets).", obs.TypeHistogram)
	for _, name := range endpointNames {
		cum, sum, count := m.endpoints[name].histogram()
		e.HistogramSample([]obs.Label{{Name: "endpoint", Value: name}}, latBounds, cum, sum, count)
	}
}

// sourceStat tracks one update source's last publish, for the staleness
// gauges. Fields are atomics: Publish writes under pubMu, scrapes read
// from any goroutine.
type sourceStat struct {
	lastNS atomic.Int64
	serial atomic.Uint32
}

// buildRegistry assembles the service's scrape document: uptime, the
// snapshot identity and staleness gauges (computed from live state at
// scrape time), the per-source staleness gauges, and the per-endpoint
// request accumulators.
func (s *Service) buildRegistry() *obs.Registry {
	r := obs.NewRegistry()
	obs.RegisterBuildInfo(r)
	s.eventsTotal = r.CounterVec("ripki_serve_events_total",
		"Incident-feed events recorded, by event_type.", "event_type")
	r.GaugeFunc("ripki_serve_events_last_seq", "Sequence number of the newest incident-feed event (0 when empty).",
		func() float64 {
			s.events.mu.Lock()
			defer s.events.mu.Unlock()
			return float64(s.events.next - 1)
		})
	r.GaugeFunc("ripki_serve_uptime_seconds", "Seconds since the service started.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc("ripki_serve_domain_table_bytes", "Approximate heap footprint of the packed domain exposure table.",
		func() float64 { return float64(s.domains.MemoryFootprint()) })
	r.Collect(collectMem)
	r.Collect(s.collectSnapshot)
	r.Collect(s.metrics.collect)
	return r
}

// collectMem renders process memory gauges from runtime.MemStats. The
// CI scale-smoke job gates the million-domain deployment on these — Sys
// is the runtime's RSS upper bound, heap_alloc the live object bytes.
func collectMem(e *obs.Encoder) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.Family("ripki_serve_mem_heap_alloc_bytes", "Live heap bytes (runtime.MemStats.HeapAlloc).", obs.TypeGauge)
	e.Sample("", nil, float64(ms.HeapAlloc))
	e.Family("ripki_serve_mem_sys_bytes", "Bytes obtained from the OS (runtime.MemStats.Sys, an RSS upper bound).", obs.TypeGauge)
	e.Sample("", nil, float64(ms.Sys))
}

// collectSnapshot renders the snapshot and per-source staleness gauges.
func (s *Service) collectSnapshot(e *obs.Encoder) {
	sn := s.Current()
	var serial, vrps, domains float64
	if sn != nil {
		serial = float64(sn.Serial)
		vrps = float64(sn.Index.Len())
		domains = float64(sn.Domains.Len())
	}
	e.Family("ripki_serve_snapshot_serial", "Serial of the published snapshot (0 before the first publish).", obs.TypeGauge)
	e.Sample("", nil, serial)
	e.Family("ripki_serve_snapshot_vrps", "VRPs in the published snapshot.", obs.TypeGauge)
	e.Sample("", nil, vrps)
	e.Family("ripki_serve_snapshot_domains", "Domains in the exposure table.", obs.TypeGauge)
	e.Sample("", nil, domains)

	e.Family("ripki_serve_snapshot_age_seconds", "Seconds since the last snapshot publish, any source (staleness).", obs.TypeGauge)
	if at := s.publishedAt.Load(); at != 0 {
		e.Sample("", nil, time.Since(time.Unix(0, at)).Seconds())
	}

	names := make([]string, 0, 4)
	s.sources.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	e.Family("ripki_serve_source_update_age_seconds", "Seconds since each update source last published (per-source staleness).", obs.TypeGauge)
	for _, name := range names {
		st, _ := s.sources.Load(name)
		age := time.Since(time.Unix(0, st.(*sourceStat).lastNS.Load())).Seconds()
		e.Sample("", []obs.Label{{Name: "source", Value: name}}, age)
	}
	e.Family("ripki_serve_source_serial", "Each update source's own serial at its last publish (RTR cache serial, sim tick).", obs.TypeGauge)
	for _, name := range names {
		st, _ := s.sources.Load(name)
		e.Sample("", []obs.Label{{Name: "source", Value: name}}, float64(st.(*sourceStat).serial.Load()))
	}
}

// recordPublish updates the staleness trackers; called under pubMu.
func (s *Service) recordPublish(source string, sourceSerial uint32) {
	now := time.Now().UnixNano()
	s.publishedAt.Store(now)
	v, ok := s.sources.Load(source)
	if !ok {
		v, _ = s.sources.LoadOrStore(source, &sourceStat{})
	}
	st := v.(*sourceStat)
	st.lastNS.Store(now)
	st.serial.Store(sourceSerial)
}
