package serve

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"ripki/internal/stats"
)

// The metrics layer must not reintroduce a lock on the read path, so it
// is built entirely from atomics: per-endpoint request/error counters
// and a log₂-bucketed latency histogram. Count, sum, min and max are
// exact; the p50/p95/p99 read out of the histogram are bucket-resolution
// estimates (each bucket spans one power of two of nanoseconds, with
// linear interpolation inside the bucket), rendered in stats.Summary's
// shape so every quantile surface in the repo reads the same.

// latBuckets spans 1ns .. ~17min in powers of two; observations beyond
// the last bound clamp into the final bucket.
const latBuckets = 40

// endpointMetrics is one endpoint's lock-free accumulator.
type endpointMetrics struct {
	count   atomic.Uint64
	errors  atomic.Uint64 // responses with status >= 400
	sumNS   atomic.Uint64
	minNS   atomic.Uint64 // math.MaxUint64 until the first observation
	maxNS   atomic.Uint64
	buckets [latBuckets]atomic.Uint64
}

func newEndpointMetrics() *endpointMetrics {
	m := &endpointMetrics{}
	m.minNS.Store(math.MaxUint64)
	return m
}

// observe records one request.
func (m *endpointMetrics) observe(d time.Duration, status int) {
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	m.count.Add(1)
	if status >= 400 {
		m.errors.Add(1)
	}
	m.sumNS.Add(ns)
	for {
		cur := m.minNS.Load()
		if ns >= cur || m.minNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := m.maxNS.Load()
		if ns <= cur || m.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	idx := bits.Len64(ns) // bucket b covers [2^(b-1), 2^b)
	if idx >= latBuckets {
		idx = latBuckets - 1
	}
	m.buckets[idx].Add(1)
}

// latencySummary renders the accumulator as a stats.Summary in seconds.
// Count/min/max/mean are exact; quantiles are histogram estimates.
func (m *endpointMetrics) latencySummary() stats.Summary {
	count := m.count.Load()
	if count == 0 {
		return stats.Summarize(nil)
	}
	var counts [latBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = m.buckets[i].Load()
		total += counts[i]
	}
	// Concurrent observers may have bumped count but not yet their
	// bucket (or vice versa); quantiles use the bucket total so the
	// cumulative walk is self-consistent. The same race can expose the
	// min sentinel before the first observation's CAS lands — report
	// the endpoint as empty rather than a 2^64ns minimum.
	minNS, maxNS := m.minNS.Load(), m.maxNS.Load()
	if minNS == math.MaxUint64 {
		return stats.Summarize(nil)
	}
	s := stats.Summary{
		Count: int(count),
		Min:   float64(minNS) / 1e9,
		Max:   float64(maxNS) / 1e9,
		Mean:  float64(m.sumNS.Load()) / float64(count) / 1e9,
	}
	s.P50 = histQuantile(&counts, total, 0.50, minNS, maxNS)
	s.P95 = histQuantile(&counts, total, 0.95, minNS, maxNS)
	s.P99 = histQuantile(&counts, total, 0.99, minNS, maxNS)
	return s
}

// histQuantile walks the cumulative histogram to the q-th observation
// and interpolates linearly inside its bucket, clamped to the observed
// [min, max]. Resolution is the bucket width (a factor of two).
func histQuantile(counts *[latBuckets]uint64, total uint64, q float64, minNS, maxNS uint64) float64 {
	if total == 0 {
		return math.NaN()
	}
	target := q * float64(total)
	var cum float64
	for i := range counts {
		c := float64(counts[i])
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo := 0.0
			if i > 0 {
				lo = float64(uint64(1) << (i - 1))
			}
			hi := float64(uint64(1) << i)
			frac := (target - cum) / c
			ns := lo + frac*(hi-lo)
			ns = math.Max(ns, float64(minNS))
			ns = math.Min(ns, float64(maxNS))
			return ns / 1e9
		}
		cum += c
	}
	return float64(maxNS) / 1e9
}

// metrics is the service-wide registry. The endpoint map is fixed at
// construction, so lookups never need a lock.
type metrics struct {
	endpoints map[string]*endpointMetrics
}

// endpointNames is the fixed instrumentation vocabulary; instrument
// panics on anything else, catching typos at test time.
var endpointNames = []string{"validate", "domain", "domains", "snapshot", "healthz", "metrics"}

func newMetrics() *metrics {
	m := &metrics{endpoints: make(map[string]*endpointMetrics, len(endpointNames))}
	for _, name := range endpointNames {
		m.endpoints[name] = newEndpointMetrics()
	}
	return m
}

// EndpointStats is one endpoint's externally visible counters.
type EndpointStats struct {
	Count   uint64        `json:"count"`
	Errors  uint64        `json:"errors"`
	Latency stats.Summary `json:"latency_seconds"`
}

// snapshotStats collects every endpoint's counters.
func (m *metrics) snapshotStats() map[string]EndpointStats {
	out := make(map[string]EndpointStats, len(m.endpoints))
	for name, em := range m.endpoints {
		out[name] = EndpointStats{
			Count:   em.count.Load(),
			Errors:  em.errors.Load(),
			Latency: em.latencySummary(),
		}
	}
	return out
}
