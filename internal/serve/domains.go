package serve

import (
	"runtime"
	"sort"
	"strings"
	"sync"

	"ripki/internal/dns"
	"ripki/internal/measure"
	"ripki/internal/netutil"
	"ripki/internal/rib"
	"ripki/internal/rpki/vrp"
	"ripki/internal/webworld"
)

// domainEntry is one domain's VRP-independent measurement state: the
// distinct (prefix, origin AS) pairs serving each name variant, per the
// paper's methodology steps 2–3 (DNS resolution, special-purpose
// filtering, RIB covering-prefix extraction). Validation (step 4) is
// deliberately NOT baked in — it is re-run against each snapshot's VRP
// index, which is what lets the service answer under live VRP churn
// without re-measuring.
type domainEntry struct {
	name string
	rank int
	cdn  bool

	www, apex                 []rib.PrefixOrigin
	wwwResolved, apexResolved bool
}

// DomainListing is one row of GET /v1/domains.
type DomainListing struct {
	Name string `json:"name"`
	Rank int    `json:"rank"`
}

// DomainTable maps domain names to their serving routes. It is built
// once (DNS and RIB state is VRP-independent) and shared by every
// snapshot; after construction it is immutable and lock-free.
type DomainTable struct {
	byName  map[string]*domainEntry
	ordered []*domainEntry // rank order
	headCut int            // head/tail split for exposure aggregation
}

// BuildDomainTable resolves every domain of the world's ranked list —
// both the www and the apex variant — and extracts the covering
// (prefix, origin) pairs from the world's RIB.
func BuildDomainTable(w *webworld.World) (*DomainTable, error) {
	resolver := dns.RegistryResolver{Registry: w.Registry}
	entries := w.List.Entries()
	t := &DomainTable{
		byName:  make(map[string]*domainEntry, len(entries)),
		ordered: make([]*domainEntry, len(entries)),
	}
	maxRank := 0

	workers := runtime.GOMAXPROCS(0)
	chunk := (len(entries) + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for start := 0; start < len(entries); start += chunk {
		end := min(start+chunk, len(entries))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				e := &domainEntry{name: entries[i].Domain, rank: entries[i].Rank}
				var chain int
				var err error
				if e.www, e.wwwResolved, chain, err = resolveVariant(resolver, w.RIB, "www."+e.name); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				// The paper's conservative CDN heuristic: the www name is
				// reached through two or more CNAMEs.
				e.cdn = e.wwwResolved && chain >= 2
				if e.apex, e.apexResolved, _, err = resolveVariant(resolver, w.RIB, e.name); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				t.ordered[i] = e
			}
		}(start, end)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for _, e := range t.ordered {
		t.byName[e.name] = e
		if e.rank > maxRank {
			maxRank = e.rank
		}
	}
	t.headCut = maxRank / 10
	if t.headCut == 0 {
		t.headCut = 1
	}
	return t, nil
}

// resolveVariant maps one name to its distinct (prefix, origin) pairs:
// resolve, drop IANA special-purpose answers, look every remaining
// address up in the RIB. Pair order is deterministic (prefix, origin).
func resolveVariant(resolver dns.Lookuper, table *rib.Table, name string) (pairs []rib.PrefixOrigin, resolved bool, chain int, err error) {
	res, err := resolver.LookupWeb(name)
	if err != nil {
		return nil, false, 0, err
	}
	chain = res.CNAMECount()
	if res.NXDomain {
		return nil, false, chain, nil
	}
	seen := make(map[rib.PrefixOrigin]bool, 4)
	for _, a := range res.Addrs {
		if netutil.IsSpecialPurpose(a) {
			continue
		}
		resolved = true
		for _, po := range table.OriginPairs(a) {
			if !seen[po] {
				seen[po] = true
				pairs = append(pairs, po)
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if c := netutil.ComparePrefixes(pairs[i].Prefix, pairs[j].Prefix); c != 0 {
			return c < 0
		}
		return pairs[i].Origin < pairs[j].Origin
	})
	return pairs, resolved, chain, nil
}

// Len returns the number of domains in the table.
func (t *DomainTable) Len() int { return len(t.ordered) }

// Listing returns up to limit domains in rank order (limit <= 0 means
// all).
func (t *DomainTable) Listing(limit int) []DomainListing {
	n := len(t.ordered)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]DomainListing, n)
	for i := 0; i < n; i++ {
		out[i] = DomainListing{Name: t.ordered[i].name, Rank: t.ordered[i].rank}
	}
	return out
}

// lookup finds a domain by name, accepting an optional "www." label.
func (t *DomainTable) lookup(name string) (*domainEntry, bool) {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	if e, ok := t.byName[name]; ok {
		return e, true
	}
	if rest, ok := strings.CutPrefix(name, "www."); ok {
		e, ok := t.byName[rest]
		return e, ok
	}
	return nil, false
}

// exposure aggregates the table's per-domain www state probabilities
// against a VRP index, in measure.Snapshot's terms: mean valid /
// invalid / notfound / coverage plus the head-vs-tail protection split
// the paper's figures revolve around. Writers call it once per publish;
// snapshots serve the precomputed value.
func (t *DomainTable) exposure(ix *vrp.Index) measure.ExposureSnapshot {
	var snap measure.ExposureSnapshot
	var headN, tailN float64
	for _, e := range t.ordered {
		if !e.wwwResolved || len(e.www) == 0 {
			continue
		}
		snap.Domains++
		valid, invalid := 0, 0
		for _, po := range e.www {
			switch ix.Validate(po.Prefix, po.Origin) {
			case vrp.Valid:
				valid++
			case vrp.Invalid:
				invalid++
			}
		}
		n := float64(len(e.www))
		validP := float64(valid) / n
		snap.Valid += validP
		snap.Invalid += float64(invalid) / n
		snap.NotFound += float64(len(e.www)-valid-invalid) / n
		snap.Coverage += float64(valid+invalid) / n
		if e.rank <= t.headCut {
			snap.HeadValid += validP
			headN++
		} else {
			snap.TailValid += validP
			tailN++
		}
	}
	if snap.Domains > 0 {
		n := float64(snap.Domains)
		snap.Valid /= n
		snap.Invalid /= n
		snap.NotFound /= n
		snap.Coverage /= n
	}
	if headN > 0 {
		snap.HeadValid /= headN
	}
	if tailN > 0 {
		snap.TailValid /= tailN
	}
	return snap
}
