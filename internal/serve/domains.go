package serve

import (
	"runtime"
	"sort"
	"strings"
	"sync"
	"unsafe"

	"ripki/internal/dns"
	"ripki/internal/measure"
	"ripki/internal/netutil"
	"ripki/internal/rib"
	"ripki/internal/rpki/vrp"
	"ripki/internal/strtab"
	"ripki/internal/webworld"
)

// Per-domain flag bits in DomainTable.flags.
const (
	flagCDN uint8 = 1 << iota
	flagWWWResolved
	flagApexResolved
)

// DomainListing is one row of GET /v1/domains.
type DomainListing struct {
	Name string `json:"name"`
	Rank int    `json:"rank"`
}

// DomainTable maps domain names to their serving routes: each domain's
// VRP-independent measurement state — the distinct (prefix, origin AS)
// pairs serving each name variant, per the paper's methodology steps
// 2–3 (DNS resolution, special-purpose filtering, RIB covering-prefix
// extraction). Validation (step 4) is deliberately NOT baked in — it is
// re-run against each snapshot's VRP index, which is what lets the
// service answer under live VRP churn without re-measuring.
//
// The layout is struct-of-arrays with interned names and deduplicated
// routes, sized for the paper's million-domain population: a domain is
// a rank, a flag byte, a name id into the string table, and two spans
// into a shared route-id array. The distinct (prefix, origin) pairs of
// the whole world number in the low tens of thousands, so per-snapshot
// exposure validates each unique route once instead of once per domain.
// It is built once (DNS and RIB state is VRP-independent) and shared by
// every snapshot; after construction it is immutable and lock-free.
type DomainTable struct {
	names   *strtab.Table
	nameIDs []uint32
	index   map[string]int32 // interned name → position in rank order
	ranks   []int32
	flags   []uint8
	// offs holds 2n+1 boundaries into routeIDs: domain i's www pairs
	// are routeIDs[offs[2i]:offs[2i+1]], its apex pairs
	// routeIDs[offs[2i+1]:offs[2i+2]].
	offs     []uint32
	routeIDs []uint32
	routes   []rib.PrefixOrigin // unique (prefix, origin) pairs
	headCut  int                // head/tail split for exposure aggregation
}

// name returns domain i's interned name.
func (t *DomainTable) name(i int32) string { return t.names.Get(t.nameIDs[i]) }

// wwwIDs returns domain i's www-variant route ids.
func (t *DomainTable) wwwIDs(i int32) []uint32 {
	return t.routeIDs[t.offs[2*i]:t.offs[2*i+1]]
}

// apexIDs returns domain i's apex-variant route ids.
func (t *DomainTable) apexIDs(i int32) []uint32 {
	return t.routeIDs[t.offs[2*i+1]:t.offs[2*i+2]]
}

// BuildDomainTable resolves every domain of the world's ranked list —
// both the www and the apex variant — and extracts the covering
// (prefix, origin) pairs from the world's RIB. Resolution fans out
// across GOMAXPROCS chunks into private arenas; the pack into the
// interned table is a sequential second phase (route deduplication
// wants one id space).
func BuildDomainTable(w *webworld.World) (*DomainTable, error) {
	resolver := dns.RegistryResolver{Registry: w.Registry}
	entries := w.List.Entries()
	n := len(entries)

	type arena struct {
		lo, hi int
		pairs  []rib.PrefixOrigin
		counts []uint32 // 2 per domain: len(www pairs), len(apex pairs)
		flags  []uint8
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	arenas := make([]*arena, workers)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for c := 0; c < workers; c++ {
		a := &arena{lo: n * c / workers, hi: n * (c + 1) / workers}
		a.counts = make([]uint32, 0, 2*(a.hi-a.lo))
		a.flags = make([]uint8, 0, a.hi-a.lo)
		arenas[c] = a
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := a.lo; i < a.hi; i++ {
				name := entries[i].Domain
				www, wwwResolved, chain, err := resolveVariant(resolver, w.RIB, "www."+name)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				apex, apexResolved, _, err := resolveVariant(resolver, w.RIB, name)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				var fl uint8
				// The paper's conservative CDN heuristic: the www name
				// is reached through two or more CNAMEs.
				if wwwResolved && chain >= 2 {
					fl |= flagCDN
				}
				if wwwResolved {
					fl |= flagWWWResolved
				}
				if apexResolved {
					fl |= flagApexResolved
				}
				a.pairs = append(a.pairs, www...)
				a.pairs = append(a.pairs, apex...)
				a.counts = append(a.counts, uint32(len(www)), uint32(len(apex)))
				a.flags = append(a.flags, fl)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	totalPairs := 0
	for _, a := range arenas {
		totalPairs += len(a.pairs)
	}
	t := &DomainTable{
		names:    strtab.NewSized(n, 14*n),
		nameIDs:  make([]uint32, n),
		index:    make(map[string]int32, n),
		ranks:    make([]int32, n),
		flags:    make([]uint8, n),
		offs:     make([]uint32, 1, 2*n+1),
		routeIDs: make([]uint32, 0, totalPairs),
	}
	routeID := make(map[rib.PrefixOrigin]uint32, 1024)
	maxRank := 0
	i := int32(0)
	for _, a := range arenas {
		pi := 0
		for k := a.lo; k < a.hi; k++ {
			t.nameIDs[i] = t.names.Intern(entries[k].Domain)
			t.index[t.name(i)] = i
			t.ranks[i] = int32(entries[k].Rank)
			t.flags[i] = a.flags[k-a.lo]
			for v := 0; v < 2; v++ {
				cnt := int(a.counts[2*(k-a.lo)+v])
				for j := 0; j < cnt; j++ {
					po := a.pairs[pi]
					pi++
					id, ok := routeID[po]
					if !ok {
						id = uint32(len(t.routes))
						t.routes = append(t.routes, po)
						routeID[po] = id
					}
					t.routeIDs = append(t.routeIDs, id)
				}
				t.offs = append(t.offs, uint32(len(t.routeIDs)))
			}
			if entries[k].Rank > maxRank {
				maxRank = entries[k].Rank
			}
			i++
		}
	}
	t.headCut = maxRank / 10
	if t.headCut == 0 {
		t.headCut = 1
	}
	return t, nil
}

// resolveVariant maps one name to its distinct (prefix, origin) pairs:
// resolve, drop IANA special-purpose answers, look every remaining
// address up in the RIB. Pair order is deterministic (prefix, origin).
func resolveVariant(resolver dns.Lookuper, table *rib.Table, name string) (pairs []rib.PrefixOrigin, resolved bool, chain int, err error) {
	res, err := resolver.LookupWeb(name)
	if err != nil {
		return nil, false, 0, err
	}
	chain = res.CNAMECount()
	if res.NXDomain {
		return nil, false, chain, nil
	}
	seen := make(map[rib.PrefixOrigin]bool, 4)
	for _, a := range res.Addrs {
		if netutil.IsSpecialPurpose(a) {
			continue
		}
		resolved = true
		for _, po := range table.OriginPairs(a) {
			if !seen[po] {
				seen[po] = true
				pairs = append(pairs, po)
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if c := netutil.ComparePrefixes(pairs[i].Prefix, pairs[j].Prefix); c != 0 {
			return c < 0
		}
		return pairs[i].Origin < pairs[j].Origin
	})
	return pairs, resolved, chain, nil
}

// Len returns the number of domains in the table.
func (t *DomainTable) Len() int { return len(t.ranks) }

// UniqueRoutes returns the number of distinct (prefix, origin) pairs
// across all domains.
func (t *DomainTable) UniqueRoutes() int { return len(t.routes) }

// MemoryFootprint estimates the table's heap bytes: the packed arrays
// exactly, the name index map by its per-entry overhead. It backs the
// ripki_serve_domain_table_bytes gauge and the bytes/domain bench
// metric.
func (t *DomainTable) MemoryFootprint() int {
	const mapEntry = 48 // string header + int32 + bucket overhead, amortised
	b := t.names.Bytes() + 4*(t.names.Len()+1)
	b += 4*len(t.nameIDs) + 4*len(t.ranks) + len(t.flags)
	b += 4*len(t.offs) + 4*len(t.routeIDs)
	b += int(unsafe.Sizeof(rib.PrefixOrigin{})) * len(t.routes)
	b += mapEntry * len(t.index)
	return b
}

// Listing returns up to limit domains in rank order starting at offset
// (limit <= 0 means all remaining; an offset past the end is empty, not
// an error).
func (t *DomainTable) Listing(limit, offset int) []DomainListing {
	n := t.Len()
	if offset < 0 {
		offset = 0
	}
	if offset > n {
		offset = n
	}
	end := n
	if limit > 0 && offset+limit < n {
		end = offset + limit
	}
	out := make([]DomainListing, 0, end-offset)
	for i := offset; i < end; i++ {
		out = append(out, DomainListing{Name: t.name(int32(i)), Rank: int(t.ranks[i])})
	}
	return out
}

// lookup finds a domain by name, accepting an optional "www." label.
func (t *DomainTable) lookup(name string) (int32, bool) {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	if i, ok := t.index[name]; ok {
		return i, true
	}
	if rest, ok := strings.CutPrefix(name, "www."); ok {
		i, ok := t.index[rest]
		return i, ok
	}
	return 0, false
}

// exposure aggregates the table's per-domain www state probabilities
// against a VRP index, in measure.Snapshot's terms: mean valid /
// invalid / notfound / coverage plus the head-vs-tail protection split
// the paper's figures revolve around. Each unique route is validated
// once up front; the per-domain pass is then pure array arithmetic —
// O(routes + domains) instead of O(domains × pairs) trie walks.
// Writers call it once per publish; snapshots serve the precomputed
// value.
func (t *DomainTable) exposure(ix *vrp.Index) measure.ExposureSnapshot {
	var snap measure.ExposureSnapshot
	states := make([]vrp.State, len(t.routes))
	for id, po := range t.routes {
		states[id] = ix.Validate(po.Prefix, po.Origin)
	}
	var headN, tailN float64
	for i := 0; i < t.Len(); i++ {
		ids := t.wwwIDs(int32(i))
		if t.flags[i]&flagWWWResolved == 0 || len(ids) == 0 {
			continue
		}
		snap.Domains++
		valid, invalid := 0, 0
		for _, id := range ids {
			switch states[id] {
			case vrp.Valid:
				valid++
			case vrp.Invalid:
				invalid++
			}
		}
		n := float64(len(ids))
		validP := float64(valid) / n
		snap.Valid += validP
		snap.Invalid += float64(invalid) / n
		snap.NotFound += float64(len(ids)-valid-invalid) / n
		snap.Coverage += float64(valid+invalid) / n
		if int(t.ranks[i]) <= t.headCut {
			snap.HeadValid += validP
			headN++
		} else {
			snap.TailValid += validP
			tailN++
		}
	}
	if snap.Domains > 0 {
		n := float64(snap.Domains)
		snap.Valid /= n
		snap.Invalid /= n
		snap.NotFound /= n
		snap.Coverage /= n
	}
	if headN > 0 {
		snap.HeadValid /= headN
	}
	if tailN > 0 {
		snap.TailValid /= tailN
	}
	return snap
}
