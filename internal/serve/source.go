package serve

import (
	"context"
	"fmt"
	"time"

	"ripki/internal/rpki/vrp"
	"ripki/internal/rtr"
	"ripki/internal/sim"
)

// The update sources are the service's writers: each folds a stream of
// VRP changes into fresh snapshots via Publish. They run in their own
// goroutine; readers never see anything but complete snapshots.

// RunRTR maintains a relying-party session against an RTR cache at
// addr: full reset, then Serial Notify → incremental poll → publish,
// exactly the loop a production RP (routinator feeding a router) runs.
// The initial dial retries with backoff so the service may start before
// its cache does. It blocks until ctx is cancelled (returning nil) or
// the established session fails.
func (s *Service) RunRTR(ctx context.Context, addr string) error {
	s.markLive("rtr")
	client, err := dialRetry(ctx, addr)
	if err != nil {
		return s.sourceErr(ctx, err)
	}
	// Unblock the synchronous PDU reads when ctx ends.
	stop := context.AfterFunc(ctx, func() { client.Close() })
	defer stop()
	defer client.Close()

	if err := client.Reset(); err != nil {
		return s.sourceErr(ctx, fmt.Errorf("serve: initial RTR sync: %w", err))
	}
	if _, err := s.PublishSet(client.Set(), "rtr", client.Serial()); err != nil {
		return err
	}
	for {
		if _, err := client.WaitNotify(); err != nil {
			return s.sourceErr(ctx, fmt.Errorf("serve: RTR notify: %w", err))
		}
		if err := client.Poll(); err != nil {
			return s.sourceErr(ctx, fmt.Errorf("serve: RTR poll: %w", err))
		}
		if _, err := s.PublishSet(client.Set(), "rtr", client.Serial()); err != nil {
			return err
		}
	}
}

// dialRetry dials the cache, retrying with a capped backoff until ctx
// ends — daemon and cache may race at startup.
func dialRetry(ctx context.Context, addr string) (*rtr.Client, error) {
	backoff := 100 * time.Millisecond
	for {
		client, err := rtr.Dial(addr)
		if err == nil {
			return client, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("serve: dialing RTR cache: %w", err)
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// sourceErr suppresses the connection error caused by our own
// ctx-driven shutdown.
func (s *Service) sourceErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return nil
	}
	return err
}

// RunSim drives an in-process scenario as the update source: one
// virtual tick per wall-clock interval, publishing a snapshot whenever
// the scenario changed the ground-truth VRP set. The scenario library
// (roa-churn, hijack-window, trust-anchor-outage, ...) thus doubles as
// a live traffic generator for the service. Returns nil when ctx ends
// or the scenario horizon is reached.
func (s *Service) RunSim(ctx context.Context, cfg sim.Config, interval time.Duration) error {
	if interval <= 0 {
		interval = time.Second
	}
	s.markLive("sim")
	sm, err := sim.New(cfg)
	if err != nil {
		return err
	}
	defer sm.Close()
	// Every typed incident the scenario produces lands in the feed as it
	// happens — Step runs the recorder synchronously, so incidents
	// precede the snapshot publish that makes their effects queryable.
	sm.AttachIncidents(func(in sim.Incident) { s.appendEvent(feedIncident(in)) })
	publish := func() error {
		_, err := s.PublishSet(sm.TruthSet(), "sim", uint32(sm.Tick()))
		return err
	}
	last := sm.TruthGen()
	if err := publish(); err != nil {
		return err
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
		if !sm.Step() {
			if err := sm.Err(); err != nil {
				return fmt.Errorf("serve: sim source: %w", err)
			}
			return nil
		}
		// The truth generation counts mutations, so comparing it
		// detects "this tick changed the VRPs" without a diff (the
		// incremental engine edits TruthSet in place, so pointer
		// identity would miss changes).
		if gen := sm.TruthGen(); gen != last {
			last = gen
			if err := publish(); err != nil {
				return err
			}
		}
	}
}

// PublishVRPs is a convenience for static sources (a CSV export): it
// publishes the given payloads under the named source.
func (s *Service) PublishVRPs(vs []vrp.VRP, source string) (*Snapshot, error) {
	return s.Publish(vs, source, 0)
}
