package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ripki/internal/netutil"
	"ripki/internal/rpki/vrp"
	"ripki/internal/rtr"
)

// TestLockFreeReadsDuringRTRSwaps is the acceptance test for the
// lock-free read path: readers hammer POST /v1/validate while an RTR
// cache churns through generations and the service's RTR session folds
// each one into a new snapshot. Every generation g publishes a
// mutually-consistent triple:
//
//   - a marker VRP 198.51.100.0/24 → AS(50000+g), whose covering list
//     reveals g to any reader,
//   - a subject VRP for 10.0.0.0/24 whose origin flips with the parity
//     of g, so the subject route validates "valid" exactly when g is
//     even,
//
// A batch request touches both routes; because a handler answers
// entirely from one atomic snapshot, the marker's g and the subject's
// state must always agree — any torn read (subject from one snapshot,
// marker or serial from another) fails the parity check. Run under
// -race this also proves the handlers synchronise with writers through
// the atomic pointer alone.
func TestLockFreeReadsDuringRTRSwaps(t *testing.T) {
	// On a single-core box the sleeping writer shares the CPU with the
	// looping readers, so each generation costs a scheduler quantum;
	// keep the counts modest so -race runs stay bounded everywhere.
	const (
		generations = 60
		readers     = 4
		markerBase  = 50000
	)
	subjectPrefix := netutil.MustPrefix("10.0.0.0/24")
	markerPrefix := netutil.MustPrefix("198.51.100.0/24")

	genSet := func(g int) *vrp.Set {
		origin := uint32(65001) // valid for the probed route
		if g%2 == 1 {
			origin = 65002 // invalid: covered, origin mismatch
		}
		set, err := vrp.FromVRPs([]vrp.VRP{
			{Prefix: subjectPrefix, MaxLength: 24, ASN: origin},
			{Prefix: markerPrefix, MaxLength: 24, ASN: uint32(markerBase + g)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return set
	}

	// RTR cache over loopback TCP, seeded at generation 0. Each
	// server.Update changes the set, so server serial == generation.
	srv := rtr.NewServer(genSet(0), 7)
	srv.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	s := New(nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rtrDone := make(chan error, 1)
	go func() { rtrDone <- s.RunRTR(ctx, ln.Addr().String()) }()

	// Wait for the first snapshot.
	deadline := time.Now().Add(5 * time.Second)
	for s.Current() == nil {
		if time.Now().After(deadline) {
			t.Fatal("no snapshot after 5s")
		}
		time.Sleep(time.Millisecond)
	}

	h := s.Handler()
	body := `{"routes": [
		{"prefix": "10.0.0.0/24", "asn": 65001},
		{"prefix": "198.51.100.0/24", "asn": 1}
	]}`

	var wg sync.WaitGroup
	writerDone := make(chan struct{})
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSerial uint64
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				req := httptest.NewRequest("POST", "/v1/validate", strings.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- "status " + rec.Result().Status
					return
				}
				var resp struct {
					Serial  uint64 `json:"serial"`
					Results []struct {
						State    string `json:"state"`
						Covering []struct {
							ASN uint32 `json:"asn"`
						} `json:"covering"`
					} `json:"results"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errs <- "bad body: " + err.Error()
					return
				}
				if len(resp.Results) != 2 || len(resp.Results[1].Covering) != 1 {
					errs <- "malformed results"
					return
				}
				g := int(resp.Results[1].Covering[0].ASN) - markerBase
				wantState := "valid"
				if g%2 == 1 {
					wantState = "invalid"
				}
				if got := resp.Results[0].State; got != wantState {
					errs <- "torn read: generation " + resp.Results[1].State + " says g is mixed"
					return
				}
				// Serials never move backwards for a sequential client.
				if resp.Serial < lastSerial {
					errs <- "serial went backwards"
					return
				}
				lastSerial = resp.Serial
			}
		}()
	}

	// The writer churns the cache through every generation while the
	// readers run.
	for g := 1; g <= generations; g++ {
		srv.Update(genSet(g))
		time.Sleep(500 * time.Microsecond)
	}
	// Give the RTR session a moment to drain the last notifies, then
	// stop the readers.
	time.Sleep(50 * time.Millisecond)
	close(writerDone)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	cancel()
	if err := <-rtrDone; err != nil {
		t.Fatalf("RTR source: %v", err)
	}

	// The session really did drive snapshot swaps.
	sn := s.Current()
	if sn == nil || sn.Serial < 2 {
		t.Fatalf("expected many published snapshots, got %+v", sn)
	}
	if sn.Source != "rtr" {
		t.Fatalf("source = %q, want rtr", sn.Source)
	}
}
