package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"ripki/internal/rpki/vrp"
	"ripki/internal/webworld"
)

// The test world is generated once; every test reads it through its own
// Service (cheap — the expensive parts are the world and domain table).
var (
	worldOnce sync.Once
	testWorld *webworld.World
	testTable *DomainTable
	worldErr  error
)

func testSetup(t testing.TB) (*webworld.World, *DomainTable) {
	t.Helper()
	worldOnce.Do(func() {
		testWorld, worldErr = webworld.Generate(webworld.Config{Seed: 1, Domains: 2500})
		if worldErr != nil {
			return
		}
		testTable, worldErr = BuildDomainTable(testWorld)
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return testWorld, testTable
}

func testService(t testing.TB) *Service {
	t.Helper()
	w, dt := testSetup(t)
	s := New(dt)
	if _, err := s.PublishSet(w.Validation().VRPs, "world", 0); err != nil {
		t.Fatal(err)
	}
	return s
}

// get performs one request against the in-process handler.
func do(t testing.TB, h http.Handler, method, target, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	var decoded map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("%s %s: body not JSON (%v): %s", method, target, err, rec.Body.String())
	}
	return rec, decoded
}

func TestHealthzLifecycle(t *testing.T) {
	_, dt := testSetup(t)
	s := New(dt)
	h := s.Handler()
	rec, body := do(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusServiceUnavailable || body["status"] != "starting" {
		t.Fatalf("pre-publish healthz: %d %v", rec.Code, body)
	}
	// Queries are 503 before the first publish, too.
	if rec, _ := do(t, h, "GET", "/v1/snapshot", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish snapshot: %d", rec.Code)
	}
	if _, err := s.PublishSet(testWorld.Validation().VRPs, "world", 0); err != nil {
		t.Fatal(err)
	}
	rec, body = do(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK || body["status"] != "ok" || body["serial"].(float64) != 1 {
		t.Fatalf("post-publish healthz: %d %v", rec.Code, body)
	}
}

func TestValidateEndpoint(t *testing.T) {
	s := testService(t)
	h := s.Handler()
	all := s.Current().Index.All()
	if len(all) == 0 {
		t.Fatal("world produced no VRPs")
	}
	v := all[0]

	// POST single: a route matching a VRP exactly must be valid.
	body := `{"prefix": "` + v.Prefix.String() + `", "asn": ` + jsonNum(v.ASN) + `}`
	rec, resp := do(t, h, "POST", "/v1/validate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST validate: %d %v", rec.Code, resp)
	}
	results := resp["results"].([]any)
	if len(results) != 1 {
		t.Fatalf("results: %v", results)
	}
	first := results[0].(map[string]any)
	if first["state"] != "valid" {
		t.Fatalf("state = %v, want valid (route %v AS%d)", first["state"], v.Prefix, v.ASN)
	}
	if len(first["covering"].([]any)) == 0 {
		t.Fatal("no covering VRPs on a valid route")
	}
	if resp["serial"].(float64) != 1 {
		t.Fatalf("serial = %v, want 1", resp["serial"])
	}

	// Same route, wrong origin: invalid. Unrelated prefix: notfound.
	batch := `{"routes": [
		{"prefix": "` + v.Prefix.String() + `", "asn": 64999},
		{"prefix": "203.0.113.0/24", "asn": 64999}
	]}`
	_, resp = do(t, h, "POST", "/v1/validate", batch)
	results = resp["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("batch results: %v", results)
	}
	if st := results[0].(map[string]any)["state"]; st != "invalid" {
		t.Fatalf("wrong-origin state = %v, want invalid", st)
	}
	if st := results[1].(map[string]any)["state"]; st != "notfound" {
		t.Fatalf("uncovered state = %v, want notfound", st)
	}

	// GET convenience form.
	rec, resp = do(t, h, "GET", "/v1/validate?prefix="+v.Prefix.String()+"&asn="+jsonNum(v.ASN), "")
	if rec.Code != http.StatusOK || resp["results"].([]any)[0].(map[string]any)["state"] != "valid" {
		t.Fatalf("GET validate: %d %v", rec.Code, resp)
	}

	// Bad requests.
	for _, bad := range []string{
		`{`,
		`{"prefix": "not-a-prefix", "asn": 1}`,
		`{"routes": []}`,
		`{}`,
		`{"unknown_field": 1}`,
	} {
		if rec, _ := do(t, h, "POST", "/v1/validate", bad); rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", bad, rec.Code)
		}
	}
	if rec, _ := do(t, h, "GET", "/v1/validate?prefix=10.0.0.0/8", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("GET without asn: %d, want 400", rec.Code)
	}
}

func TestDomainEndpoint(t *testing.T) {
	s := testService(t)
	h := s.Handler()
	name := testTable.name(0)

	rec, body := do(t, h, "GET", "/v1/domain/"+name, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("domain %s: %d %v", name, rec.Code, body)
	}
	if body["domain"] != name || body["rank"].(float64) != 1 {
		t.Fatalf("verdict identity: %v", body)
	}
	www := body["www"].(map[string]any)
	if www["name"] != "www."+name {
		t.Fatalf("www variant name: %v", www["name"])
	}
	if www["resolved"] == true {
		probs := www["valid"].(float64) + www["invalid"].(float64) + www["notfound"].(float64)
		if probs < 0.999 || probs > 1.001 {
			t.Fatalf("state probabilities do not sum to 1: %v", www)
		}
	}

	// The www.-prefixed spelling answers for the same domain.
	_, viaWWW := do(t, h, "GET", "/v1/domain/www."+name, "")
	if viaWWW["domain"] != name {
		t.Fatalf("www.-prefixed lookup: %v", viaWWW["domain"])
	}

	if rec, _ := do(t, h, "GET", "/v1/domain/no-such-domain.example", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown domain: %d, want 404", rec.Code)
	}
}

func TestDomainsListing(t *testing.T) {
	s := testService(t)
	h := s.Handler()
	rec, body := do(t, h, "GET", "/v1/domains?limit=3", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("domains: %d", rec.Code)
	}
	if int(body["count"].(float64)) != testTable.Len() {
		t.Fatalf("count = %v, want %d", body["count"], testTable.Len())
	}
	domains := body["domains"].([]any)
	if len(domains) != 3 {
		t.Fatalf("limit ignored: %d rows", len(domains))
	}
	if domains[0].(map[string]any)["rank"].(float64) != 1 {
		t.Fatalf("not rank-ordered: %v", domains[0])
	}
}

// TestDomainsListingPagination covers the server-side page cap and the
// limit/offset parameters the million-domain population requires.
func TestDomainsListingPagination(t *testing.T) {
	s := testService(t)
	h := s.Handler()
	total := testTable.Len()
	if total <= maxDomainsPage {
		t.Fatalf("test world too small to exercise the cap: %d domains", total)
	}

	// No params: capped, not the whole table; count still reports all.
	_, body := do(t, h, "GET", "/v1/domains", "")
	if got := len(body["domains"].([]any)); got != maxDomainsPage {
		t.Fatalf("uncapped default: %d rows, want %d", got, maxDomainsPage)
	}
	if int(body["count"].(float64)) != total {
		t.Fatalf("count = %v, want %d", body["count"], total)
	}

	// Over-cap and "0 = everything" requests clamp to the cap.
	for _, q := range []string{"limit=999999", "limit=0"} {
		_, body = do(t, h, "GET", "/v1/domains?"+q, "")
		if got := len(body["domains"].([]any)); got != maxDomainsPage {
			t.Fatalf("%s: %d rows, want %d", q, got, maxDomainsPage)
		}
	}

	// Offset pages through in rank order.
	_, body = do(t, h, "GET", "/v1/domains?limit=2&offset=5", "")
	domains := body["domains"].([]any)
	if len(domains) != 2 || domains[0].(map[string]any)["rank"].(float64) != 6 {
		t.Fatalf("offset page: %v", domains)
	}
	if int(body["offset"].(float64)) != 5 {
		t.Fatalf("offset echo: %v", body["offset"])
	}

	// The final short page and a past-the-end offset (empty 200).
	_, body = do(t, h, "GET", "/v1/domains?limit=10&offset="+strconv.Itoa(total-3), "")
	if got := len(body["domains"].([]any)); got != 3 {
		t.Fatalf("final page: %d rows, want 3", got)
	}
	_, body = do(t, h, "GET", "/v1/domains?offset="+strconv.Itoa(total+100), "")
	if got := len(body["domains"].([]any)); got != 0 {
		t.Fatalf("past-the-end offset: %d rows, want 0", got)
	}

	// Malformed parameters are 400s.
	for _, q := range []string{"limit=-1", "limit=x", "offset=-2", "offset=x"} {
		if rec, _ := do(t, h, "GET", "/v1/domains?"+q, ""); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, rec.Code)
		}
	}
}

func TestSnapshotEndpointAndExposure(t *testing.T) {
	s := testService(t)
	h := s.Handler()
	rec, body := do(t, h, "GET", "/v1/snapshot", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot: %d", rec.Code)
	}
	if body["source"] != "world" || body["vrps"].(float64) == 0 {
		t.Fatalf("snapshot identity: %v", body)
	}
	exp := body["exposure"].(map[string]any)
	if exp["domains"].(float64) == 0 {
		t.Fatal("exposure aggregated over zero domains")
	}
	cov := exp["coverage"].(float64)
	if cov <= 0 || cov >= 1 {
		t.Fatalf("coverage %v outside (0, 1) — world should be partially covered", cov)
	}

	// Publishing an empty VRP set drives coverage to zero and bumps the
	// serial — the exposure is truly per-snapshot.
	if _, err := s.Publish(nil, "csv", 0); err != nil {
		t.Fatal(err)
	}
	_, body = do(t, h, "GET", "/v1/snapshot", "")
	if body["serial"].(float64) != 2 || body["source"] != "csv" {
		t.Fatalf("second snapshot: %v", body)
	}
	if c := body["exposure"].(map[string]any)["coverage"].(float64); c != 0 {
		t.Fatalf("coverage with no VRPs = %v, want 0", c)
	}
}

// scrape fetches /metrics raw (the body is Prometheus text, not JSON).
func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	return rec.Body.String()
}

func TestMetricsEndpoint(t *testing.T) {
	s := testService(t)
	h := s.Handler()
	for i := 0; i < 5; i++ {
		do(t, h, "GET", "/healthz", "")
	}
	do(t, h, "POST", "/v1/validate", `{`) // one 400
	body := scrape(t, h)
	for _, want := range []string{
		"# TYPE ripki_serve_requests_total counter",
		`ripki_serve_requests_total{endpoint="healthz"} 5`,
		`ripki_serve_requests_total{endpoint="validate"} 1`,
		`ripki_serve_request_errors_total{endpoint="validate"} 1`,
		`ripki_serve_request_errors_total{endpoint="healthz"} 0`,
		"# TYPE ripki_serve_request_duration_seconds histogram",
		`ripki_serve_request_duration_seconds_bucket{endpoint="healthz",le="+Inf"} 5`,
		`ripki_serve_request_duration_seconds_count{endpoint="healthz"} 5`,
		"ripki_serve_snapshot_serial 1",
		"ripki_serve_snapshot_age_seconds",
		"ripki_serve_uptime_seconds",
		"# TYPE ripki_serve_mem_heap_alloc_bytes gauge",
		"ripki_serve_mem_sys_bytes",
		"ripki_serve_domain_table_bytes",
		// NewFromWorld publishes the world's own payloads as source
		// "world" with source serial 0.
		`ripki_serve_source_update_age_seconds{source="world"}`,
		`ripki_serve_source_serial{source="world"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if strings.Contains(body, "ripki_serve_snapshot_vrps 0\n") {
		t.Error("snapshot VRP gauge is zero for a published world")
	}

	// A second source appears with its own staleness gauge; the snapshot
	// gauges follow the new publish.
	if _, err := s.Publish(nil, "csv", 7); err != nil {
		t.Fatal(err)
	}
	body = scrape(t, h)
	for _, want := range []string{
		"ripki_serve_snapshot_serial 2",
		"ripki_serve_snapshot_vrps 0",
		`ripki_serve_source_serial{source="csv"} 7`,
		`ripki_serve_source_update_age_seconds{source="csv"}`,
		`ripki_serve_source_serial{source="world"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("second scrape missing %q", want)
		}
	}
	// The scrape endpoint instruments itself.
	body = scrape(t, h)
	if !strings.Contains(body, `ripki_serve_requests_total{endpoint="metrics"} 2`) {
		t.Error("metrics endpoint not self-instrumented")
	}
}

// TestDomainVerdictAgainstDirectValidation cross-checks the domain
// endpoint against direct vrp validation of the same pairs.
func TestDomainVerdictAgainstDirectValidation(t *testing.T) {
	s := testService(t)
	sn := s.Current()
	checked := 0
	for i := int32(0); int(i) < testTable.Len(); i++ {
		ids := testTable.wwwIDs(i)
		if testTable.flags[i]&flagWWWResolved == 0 || len(ids) == 0 {
			continue
		}
		name := testTable.name(i)
		verdict, ok := sn.Domain(name)
		if !ok {
			t.Fatalf("domain %s missing", name)
		}
		valid := 0
		for _, id := range ids {
			po := testTable.routes[id]
			if sn.Index.Validate(po.Prefix, po.Origin) == vrp.Valid {
				valid++
			}
		}
		wantProtected := valid == len(ids)
		if verdict.WWW.Protected != wantProtected {
			t.Fatalf("domain %s: Protected=%v, direct says %v", name, verdict.WWW.Protected, wantProtected)
		}
		checked++
		if checked >= 200 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no resolvable domains cross-checked")
	}
	// The route pool is deduplicated: strictly fewer unique routes than
	// route references, and every reference resolves into the pool.
	if u := testTable.UniqueRoutes(); u == 0 || u > len(testTable.routeIDs) {
		t.Fatalf("unique routes %d vs %d references", u, len(testTable.routeIDs))
	}
}

func jsonNum(v uint32) string { return strconv.FormatUint(uint64(v), 10) }

// rawGet performs one request with optional If-None-Match, without the
// JSON-decoding helper (a 304 has no body to decode).
func rawGet(t testing.TB, h http.Handler, target, ifNoneMatch string) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest("GET", target, nil)
	if ifNoneMatch != "" {
		r.Header.Set("If-None-Match", ifNoneMatch)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

// TestETagConditionalRequests: /v1/snapshot and /v1/domain/{name} carry
// the snapshot serial as a strong ETag; If-None-Match answers 304 with
// no body until a new snapshot is published.
func TestETagConditionalRequests(t *testing.T) {
	w, dt := testSetup(t)
	s := New(dt)
	if _, err := s.PublishSet(w.Validation().VRPs, "world", 0); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	name := dt.Listing(1, 0)[0].Name

	for _, target := range []string{"/v1/snapshot", "/v1/domain/" + name} {
		rec := rawGet(t, h, target, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d", target, rec.Code)
		}
		etag := rec.Header().Get("ETag")
		if etag != `"1"` {
			t.Fatalf("%s: ETag = %q, want %q", target, etag, `"1"`)
		}

		// Matching tag (strong, weak, list, wildcard): 304, empty body,
		// ETag still present for the caller's cache bookkeeping.
		for _, inm := range []string{etag, "W/" + etag, `"0", ` + etag, "*"} {
			rec = rawGet(t, h, target, inm)
			if rec.Code != http.StatusNotModified {
				t.Errorf("%s If-None-Match %q: code %d, want 304", target, inm, rec.Code)
			}
			if rec.Body.Len() != 0 {
				t.Errorf("%s: 304 carried a body: %s", target, rec.Body.String())
			}
			if rec.Header().Get("ETag") != etag {
				t.Errorf("%s: 304 lost the ETag header", target)
			}
		}

		// A stale tag re-renders.
		if rec = rawGet(t, h, target, `"0"`); rec.Code != http.StatusOK {
			t.Errorf("%s stale tag: code %d, want 200", target, rec.Code)
		}
	}

	// Publishing invalidates: the old tag no longer matches and the new
	// response carries the bumped serial.
	if _, err := s.Publish(nil, "csv", 0); err != nil {
		t.Fatal(err)
	}
	rec := rawGet(t, h, "/v1/snapshot", `"1"`)
	if rec.Code != http.StatusOK {
		t.Fatalf("stale tag after publish: code %d, want 200", rec.Code)
	}
	if etag := rec.Header().Get("ETag"); etag != `"2"` {
		t.Fatalf("ETag after publish = %q, want %q", etag, `"2"`)
	}
	// 404s carry no ETag — there is no entity to version.
	rec = rawGet(t, h, "/v1/domain/not-a-domain.example", "")
	if rec.Code != http.StatusNotFound || rec.Header().Get("ETag") != "" {
		t.Fatalf("missing domain: code %d etag %q", rec.Code, rec.Header().Get("ETag"))
	}
}
