package measure

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteTSV dumps the full per-domain dataset, one row per domain — the
// data release the paper commits to ("All data will be made
// available"). Columns cover both variants plus the derived
// classifications, so external tooling can regenerate every figure.
func (ds *Dataset) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cols := []string{
		"rank", "domain",
		"www_resolved", "www_addrs", "www_cnames", "www_pairs",
		"www_valid", "www_invalid", "www_covered_prefixes", "www_total_prefixes",
		"apex_resolved", "apex_addrs", "apex_cnames", "apex_pairs",
		"apex_valid", "apex_invalid", "apex_covered_prefixes", "apex_total_prefixes",
		"cdn_chain", "cdn_pattern", "equal_prefix_share", "dnssec",
	}
	if _, err := fmt.Fprintln(bw, strings.Join(cols, "\t")); err != nil {
		return err
	}
	b2s := func(b bool) string {
		if b {
			return "1"
		}
		return "0"
	}
	for i := range ds.Results {
		r := &ds.Results[i]
		row := []string{
			fmt.Sprintf("%d", r.Rank), r.Name,
			b2s(r.WWW.Resolved), fmt.Sprintf("%d", r.WWW.Addrs), fmt.Sprintf("%d", r.WWW.CNAMEs), fmt.Sprintf("%d", r.WWW.Pairs),
			fmt.Sprintf("%d", r.WWW.ValidPairs), fmt.Sprintf("%d", r.WWW.InvalidPairs), fmt.Sprintf("%d", r.WWW.CoveredPrefixes), fmt.Sprintf("%d", r.WWW.TotalPrefixes),
			b2s(r.Apex.Resolved), fmt.Sprintf("%d", r.Apex.Addrs), fmt.Sprintf("%d", r.Apex.CNAMEs), fmt.Sprintf("%d", r.Apex.Pairs),
			fmt.Sprintf("%d", r.Apex.ValidPairs), fmt.Sprintf("%d", r.Apex.InvalidPairs), fmt.Sprintf("%d", r.Apex.CoveredPrefixes), fmt.Sprintf("%d", r.Apex.TotalPrefixes),
			b2s(r.CDNByChain), b2s(r.CDNByPattern), fmt.Sprintf("%.4f", r.EqualPrefixShare), b2s(r.DNSSEC),
		}
		if _, err := fmt.Fprintln(bw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return bw.Flush()
}
