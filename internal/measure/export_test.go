package measure

import (
	"bytes"
	"strings"
	"testing"
)

func TestDatasetWriteTSV(t *testing.T) {
	f := newTinyFixture(t)
	ds, err := Run(f.list, f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1+len(ds.Results) {
		t.Fatalf("lines = %d, want %d", len(lines), 1+len(ds.Results))
	}
	header := strings.Split(lines[0], "\t")
	for _, row := range lines[1:] {
		if got := len(strings.Split(row, "\t")); got != len(header) {
			t.Fatalf("row has %d fields, header has %d: %q", got, len(header), row)
		}
	}
	// The secure domain's row must carry its valid pair.
	found := false
	for _, row := range lines[1:] {
		if strings.HasPrefix(row, "1\tsecure.example\t") {
			found = true
			fields := strings.Split(row, "\t")
			if fields[6] != "1" { // www_valid
				t.Errorf("secure.example www_valid = %q", fields[6])
			}
		}
	}
	if !found {
		t.Error("secure.example row missing")
	}
}
