package measure

// ExposureSnapshot condenses a Dataset into the handful of exposure
// numbers a time series samples every tick: the mean per-domain RFC 6811
// state probabilities, RPKI coverage, and the rank-bucketed protection
// split the paper's figures revolve around (popular head vs long tail).
type ExposureSnapshot struct {
	// Domains is how many domains contributed (usable www variants).
	Domains int
	// Valid, Invalid, NotFound are the mean per-domain state
	// probabilities over the www variant (Figure 2's series).
	Valid, Invalid, NotFound float64
	// Coverage is the mean probability of being RPKI-covered at all
	// (valid or invalid — Figure 4's "RPKI-enabled").
	Coverage float64
	// HeadValid and TailValid split Valid at the head cutoff rank,
	// exposing the paper's tragedy: the head (popular, CDN-hosted) sits
	// below the tail.
	HeadValid, TailValid float64
}

// Snapshot computes the exposure summary of a dataset. headCut is the
// rank (inclusive) separating the popular head from the tail; zero
// defaults to a tenth of the measured population's highest rank.
func Snapshot(ds *Dataset, headCut int) ExposureSnapshot {
	var snap ExposureSnapshot
	if len(ds.Results) == 0 {
		return snap
	}
	if headCut <= 0 {
		maxRank := 0
		for i := range ds.Results {
			if ds.Results[i].Rank > maxRank {
				maxRank = ds.Results[i].Rank
			}
		}
		headCut = maxRank / 10
		if headCut == 0 {
			headCut = 1
		}
	}
	var headN, tailN float64
	for i := range ds.Results {
		r := &ds.Results[i]
		if !r.WWW.Usable() || r.WWW.Pairs == 0 {
			continue
		}
		snap.Domains++
		v := r.WWW
		validP := float64(v.ValidPairs) / float64(v.Pairs)
		invalidP := float64(v.InvalidPairs) / float64(v.Pairs)
		snap.Valid += validP
		snap.Invalid += invalidP
		snap.NotFound += float64(v.NotFoundPairs()) / float64(v.Pairs)
		snap.Coverage += v.CoverageProb()
		if r.Rank <= headCut {
			snap.HeadValid += validP
			headN++
		} else {
			snap.TailValid += validP
			tailN++
		}
	}
	if snap.Domains > 0 {
		n := float64(snap.Domains)
		snap.Valid /= n
		snap.Invalid /= n
		snap.NotFound /= n
		snap.Coverage /= n
	}
	if headN > 0 {
		snap.HeadValid /= headN
	}
	if tailN > 0 {
		snap.TailValid /= tailN
	}
	return snap
}
