package measure

import (
	"math"
	"testing"
)

func snapResult(rank, valid, invalid, pairs int) DomainResult {
	return DomainResult{
		Rank: rank,
		WWW: VariantData{
			Resolved: true, Addrs: 1,
			Pairs: pairs, ValidPairs: valid, InvalidPairs: invalid,
		},
	}
}

func TestSnapshot(t *testing.T) {
	ds := &Dataset{Results: []DomainResult{
		snapResult(1, 2, 0, 2),   // head: fully valid
		snapResult(2, 0, 1, 2),   // head: half invalid, half not found
		snapResult(50, 0, 0, 4),  // tail: not found
		snapResult(100, 1, 0, 2), // tail: half valid
		{Rank: 3},                // unresolved: excluded
	}}
	snap := Snapshot(ds, 10)
	if snap.Domains != 4 {
		t.Fatalf("Domains = %d, want 4", snap.Domains)
	}
	approx := func(got, want float64, label string) {
		t.Helper()
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %v, want %v", label, got, want)
		}
	}
	approx(snap.Valid, (1.0+0+0+0.5)/4, "Valid")
	approx(snap.Invalid, (0+0.5+0+0)/4, "Invalid")
	approx(snap.NotFound, (0+0.5+1+0.5)/4, "NotFound")
	approx(snap.Coverage, (1.0+0.5+0+0.5)/4, "Coverage")
	approx(snap.HeadValid, (1.0+0)/2, "HeadValid")
	approx(snap.TailValid, (0+0.5)/2, "TailValid")

	// States must sum to one.
	if sum := snap.Valid + snap.Invalid + snap.NotFound; math.Abs(sum-1) > 1e-12 {
		t.Errorf("state fractions sum to %v", sum)
	}
}

func TestSnapshotDefaultHeadCut(t *testing.T) {
	ds := &Dataset{Results: []DomainResult{
		snapResult(1, 1, 0, 1),
		snapResult(100, 0, 0, 1),
	}}
	// headCut defaults to maxRank/10 = 10: rank 1 is head, rank 100 tail.
	snap := Snapshot(ds, 0)
	if snap.HeadValid != 1 || snap.TailValid != 0 {
		t.Errorf("head/tail = %v/%v, want 1/0", snap.HeadValid, snap.TailValid)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	snap := Snapshot(&Dataset{}, 0)
	if snap.Domains != 0 || snap.Valid != 0 {
		t.Errorf("empty snapshot = %+v", snap)
	}
}
