package measure

import (
	"testing"

	"ripki/internal/dns"
	"ripki/internal/netutil"
	"ripki/internal/rpki/vrp"
	"ripki/internal/webworld"
)

func TestExposedRelationsSynthetic(t *testing.T) {
	vrps := vrp.NewSet()
	add := func(prefix string, asn uint32) {
		if err := vrps.Add(vrp.VRP{Prefix: netutil.MustPrefix(prefix), MaxLength: 24, ASN: asn}); err != nil {
			t.Fatal(err)
		}
	}
	// 10.0.0.0/24: owner AS 1 (org-a) plus standby AS 2 (org-b) → exposed.
	add("10.0.0.0/24", 1)
	add("10.0.0.0/24", 2)
	// 10.0.1.0/24: two ASes, same org → not exposed.
	add("10.0.1.0/24", 3)
	add("10.0.1.0/24", 4)
	// 10.0.2.0/24: one AS → not exposed.
	add("10.0.2.0/24", 1)
	// 10.0.3.0/24: unknown ASN mixed with known → the unknown is
	// ignored, single org remains → not exposed.
	add("10.0.3.0/24", 1)
	add("10.0.3.0/24", 999)

	orgOf := func(asn uint32) (string, bool) {
		switch asn {
		case 1:
			return "org-a", true
		case 2:
			return "org-b", true
		case 3, 4:
			return "org-c", true
		}
		return "", false
	}
	rels := ExposedRelations(vrps, nil, orgOf)
	if len(rels) != 1 {
		t.Fatalf("relations = %+v, want exactly 1", rels)
	}
	r := rels[0]
	if r.Prefix != "10.0.0.0/24" {
		t.Errorf("prefix = %s", r.Prefix)
	}
	if len(r.Orgs) != 2 || r.Orgs[0] != "org-a" || r.Orgs[1] != "org-b" {
		t.Errorf("orgs = %v", r.Orgs)
	}
	if len(r.ASNs) != 2 || r.ASNs[0] != 1 || r.ASNs[1] != 2 {
		t.Errorf("asns = %v", r.ASNs)
	}
	tbl := ExposureTable(rels)
	if len(tbl.Rows) != 1 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestExposedRelationsRegistryFallback(t *testing.T) {
	vrps := vrp.NewSet()
	vrps.Add(vrp.VRP{Prefix: netutil.MustPrefix("10.0.0.0/24"), MaxLength: 24, ASN: 1})
	vrps.Add(vrp.VRP{Prefix: netutil.MustPrefix("10.0.0.0/24"), MaxLength: 24, ASN: 2})
	registry := []ASRegistryEntry{{ASN: 1, Name: "ALPHA-AS1"}, {ASN: 2, Name: "BETA-AS1"}}
	rels := ExposedRelations(vrps, registry, nil)
	if len(rels) != 1 {
		t.Fatalf("relations = %+v", rels)
	}
}

// TestExposedRelationsFindPlantedBackups generates a world with planted
// standby arrangements and checks the analysis recovers every one.
func TestExposedRelationsFindPlantedBackups(t *testing.T) {
	w, err := webworld.Generate(webworld.Config{Seed: 17, Domains: 5000, BackupArrangements: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.PlantedBackups) == 0 {
		t.Fatal("no backups planted")
	}
	res := w.Repo.Validate(w.MeasureTime())
	if len(res.Problems) != 0 {
		t.Fatalf("validation problems: %v", res.Problems[:1])
	}
	byASN := make(map[uint32]string)
	for _, e := range w.ASRegistry {
		byASN[e.ASN] = e.Org
	}
	rels := ExposedRelations(res.VRPs, nil, func(asn uint32) (string, bool) {
		org, ok := byASN[asn]
		return org, ok
	})
	found := make(map[string][]string)
	for _, r := range rels {
		found[r.Prefix] = r.Orgs
	}
	for _, pb := range w.PlantedBackups {
		orgs, ok := found[pb.Prefix.String()]
		if !ok {
			t.Errorf("planted backup on %v not exposed", pb.Prefix)
			continue
		}
		hasOwner, hasStandby := false, false
		for _, o := range orgs {
			if o == pb.OwnerOrg {
				hasOwner = true
			}
			if o == pb.StandbyOrg {
				hasStandby = true
			}
		}
		if !hasOwner || !hasStandby {
			t.Errorf("backup %v: exposed orgs %v missing %s/%s", pb.Prefix, orgs, pb.OwnerOrg, pb.StandbyOrg)
		}
	}
	// And the exposure count matches the planted count (no spurious
	// cross-org attestations elsewhere in the world).
	if len(rels) != len(w.PlantedBackups) {
		t.Errorf("exposed %d relations, planted %d: %+v", len(rels), len(w.PlantedBackups), rels)
	}
}

// TestVantageIndependence checks the paper's §3 claim that the headline
// results do not depend on the DNS vantage point: a resolver that
// returns a rotated subset of each answer set (emulating DNS-based
// server selection) yields the same conclusions.
func TestVantageIndependence(t *testing.T) {
	w, err := webworld.Generate(webworld.Config{Seed: 23, Domains: 20000})
	if err != nil {
		t.Fatal(err)
	}
	res := w.Repo.Validate(w.MeasureTime())
	base := Config{
		Resolver: registryLookuper{w: w},
		RIB:      w.RIB,
		VRPs:     res.VRPs,
		BinWidth: 2000,
	}
	ds1, err := Run(w.List, base)
	if err != nil {
		t.Fatal(err)
	}
	alt := base
	alt.Resolver = rotatingLookuper{w: w}
	ds2, err := Run(w.List, alt)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(ds *Dataset, v Variant) float64 {
		var sum, n float64
		for i := range ds.Results {
			vd := ds.Results[i].variant(v)
			if vd.Usable() && vd.Pairs > 0 {
				sum += vd.CoverageProb()
				n++
			}
		}
		return sum / n
	}
	m1, m2 := mean(ds1, VariantWWW), mean(ds2, VariantWWW)
	if diff := m1 - m2; diff < -0.01 || diff > 0.01 {
		t.Errorf("coverage differs across vantages: %v vs %v", m1, m2)
	}
}

type registryLookuper struct{ w *webworld.World }

func (r registryLookuper) LookupWeb(name string) (dns.Result, error) {
	return dns.RegistryResolver{Registry: r.w.Registry}.LookupWeb(name)
}

type rotatingLookuper struct{ w *webworld.World }

// LookupWeb emulates a geographically distinct vantage: when a name has
// several addresses, only one (rank-rotated) is returned.
func (r rotatingLookuper) LookupWeb(name string) (dns.Result, error) {
	res, err := dns.RegistryResolver{Registry: r.w.Registry}.LookupWeb(name)
	if err != nil || len(res.Addrs) <= 1 {
		return res, err
	}
	idx := len(name) % len(res.Addrs)
	res.Addrs = res.Addrs[idx : idx+1]
	return res, nil
}
