package measure

import (
	"testing"

	"ripki/internal/dns"
	"ripki/internal/webworld"
)

// TestFindingsStableAcrossSeeds re-derives the paper's two headline
// findings on several independently generated worlds: the calibration
// shapes the magnitudes, but the *directions* must never depend on the
// random draw.
func TestFindingsStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-world generation in -short mode")
	}
	for _, seed := range []int64{101, 202, 303} {
		seed := seed
		t.Run(string(rune('A'+seed%26)), func(t *testing.T) {
			w, err := webworld.Generate(webworld.Config{Seed: seed, Domains: 25000})
			if err != nil {
				t.Fatal(err)
			}
			res := w.Repo.Validate(w.MeasureTime())
			if len(res.Problems) != 0 {
				t.Fatalf("seed %d: validation problems: %v", seed, res.Problems[:1])
			}
			ds, err := Run(w.List, Config{
				Resolver: dns.RegistryResolver{Registry: w.Registry},
				RIB:      w.RIB,
				VRPs:     res.VRPs,
				BinWidth: 2500,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Finding 1: the first fifth of ranks is less covered than
			// the last fifth.
			var headSum, headN, tailSum, tailN float64
			var cdnSum, cdnN, allSum, allN float64
			fifth := len(ds.Results) / 5
			for i := range ds.Results {
				r := &ds.Results[i]
				if !r.WWW.Usable() || r.WWW.Pairs == 0 {
					continue
				}
				c := r.WWW.CoverageProb()
				allSum += c
				allN++
				if i < fifth {
					headSum += c
					headN++
				}
				if i >= len(ds.Results)-fifth {
					tailSum += c
					tailN++
				}
				if r.CDNByChain {
					cdnSum += c
					cdnN++
				}
			}
			head, tail := headSum/headN, tailSum/tailN
			if !(tail > head) {
				t.Errorf("seed %d: finding 1 violated (head %v, tail %v)", seed, head, tail)
			}
			// Finding 2/4: CDN-hosted coverage is far below overall.
			cdn, all := cdnSum/cdnN, allSum/allN
			if !(cdn < all/2) {
				t.Errorf("seed %d: finding 2 violated (cdn %v, overall %v)", seed, cdn, all)
			}
			// §4.2 invariant: only the Internap-like CDN in the RPKI.
			for _, o := range w.Orgs {
				if o.Kind != webworld.KindCDN || (o.CDN != nil && o.CDN.SignsROAs) {
					continue
				}
				for _, asn := range o.ASNs {
					if res.VRPs.HasASN(asn) {
						t.Errorf("seed %d: CDN %s AS%d appears in the RPKI", seed, o.Name, asn)
					}
				}
			}
		})
	}
}
