package measure

import (
	"math"
	"strings"
	"testing"

	"ripki/internal/alexa"
	"ripki/internal/bgp"
	"ripki/internal/dns"
	"ripki/internal/httparchive"
	"ripki/internal/mrt"
	"ripki/internal/netutil"
	"ripki/internal/rib"
	"ripki/internal/rpki/vrp"
	"ripki/internal/stats"
	"ripki/internal/webworld"
)

// tinyFixture builds a minimal hand-crafted universe with known
// outcomes, independent of the webworld generator.
type tinyFixture struct {
	list *alexa.List
	cfg  Config
}

func newTinyFixture(t *testing.T) *tinyFixture {
	t.Helper()
	reg := dns.NewRegistry()
	table := rib.New()
	p0 := table.AddPeer(mrt.Peer{BGPID: netutil.MustAddr("10.0.0.1"), Addr: netutil.MustAddr("10.0.0.1"), ASN: 100})
	vrps := vrp.NewSet()

	seq := func(asns ...uint32) []ribSegment {
		return []ribSegment{{Type: 2, ASNs: asns}}
	}
	insert := func(prefix string, origin uint32) {
		if err := table.Insert(rib.Route{
			Prefix: netutil.MustPrefix(prefix), PeerIndex: p0,
			Path: seq(100, origin), NextHop: netutil.MustAddr("10.0.0.1"),
		}); err != nil {
			t.Fatal(err)
		}
	}

	// secure.example: one address, covered and valid.
	reg.Add(dns.RR{Name: "secure.example", Type: dns.TypeA, TTL: 60, Addr: netutil.MustAddr("193.0.6.10")})
	reg.Add(dns.RR{Name: "www.secure.example", Type: dns.TypeA, TTL: 60, Addr: netutil.MustAddr("193.0.6.10")})
	insert("193.0.6.0/24", 3333)
	vrps.Add(vrp.VRP{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24, ASN: 3333})

	// hijacked.example: covered, wrong origin → invalid.
	reg.Add(dns.RR{Name: "hijacked.example", Type: dns.TypeA, TTL: 60, Addr: netutil.MustAddr("198.51.0.10")})
	reg.Add(dns.RR{Name: "www.hijacked.example", Type: dns.TypeA, TTL: 60, Addr: netutil.MustAddr("198.51.0.10")})
	insert("198.51.0.0/16", 666)
	vrps.Add(vrp.VRP{Prefix: netutil.MustPrefix("198.51.0.0/16"), MaxLength: 16, ASN: 3333})

	// plain.example: routed, not covered.
	reg.Add(dns.RR{Name: "plain.example", Type: dns.TypeA, TTL: 60, Addr: netutil.MustAddr("203.0.114.10")})
	reg.Add(dns.RR{Name: "www.plain.example", Type: dns.TypeA, TTL: 60, Addr: netutil.MustAddr("203.0.114.10")})
	insert("203.0.114.0/24", 64500)

	// cdnstyle.example: www via 2 CNAMEs to a different prefix; apex
	// separate → unequal prefix sets, CDN by chain.
	reg.Add(dns.RR{Name: "cdnstyle.example", Type: dns.TypeA, TTL: 60, Addr: netutil.MustAddr("203.0.114.20")})
	reg.AddCNAME("www.cdnstyle.example", "cust.fastcdn.wld", 60)
	reg.AddCNAME("cust.fastcdn.wld", "e1.a.fastcdn.wld", 60)
	reg.Add(dns.RR{Name: "e1.a.fastcdn.wld", Type: dns.TypeA, TTL: 30, Addr: netutil.MustAddr("151.101.1.10")})
	insert("151.101.0.0/16", 54113)

	// bogus.example: only special-purpose answers → excluded.
	reg.Add(dns.RR{Name: "bogus.example", Type: dns.TypeA, TTL: 60, Addr: netutil.MustAddr("127.0.0.1")})
	reg.Add(dns.RR{Name: "www.bogus.example", Type: dns.TypeA, TTL: 60, Addr: netutil.MustAddr("10.1.2.3")})

	// dark.example: resolves to un-announced public space → unreachable.
	reg.Add(dns.RR{Name: "dark.example", Type: dns.TypeA, TTL: 60, Addr: netutil.MustAddr("203.0.112.10")})
	reg.Add(dns.RR{Name: "www.dark.example", Type: dns.TypeA, TTL: 60, Addr: netutil.MustAddr("203.0.112.10")})

	// ghost.example: NXDOMAIN everywhere (in the list but unregistered).

	list := alexa.FromDomains([]string{
		"secure.example", "hijacked.example", "plain.example",
		"cdnstyle.example", "bogus.example", "dark.example", "ghost.example",
	})
	ha := httparchive.New(map[string][]string{"fastcdn": {"fastcdn.wld"}})
	return &tinyFixture{
		list: list,
		cfg: Config{
			Resolver:    dns.RegistryResolver{Registry: reg},
			RIB:         table,
			VRPs:        vrps,
			HTTPArchive: ha,
			BinWidth:    10,
			Workers:     2,
		},
	}
}

type ribSegment = bgp.Segment

func TestRunTinyUniverse(t *testing.T) {
	f := newTinyFixture(t)
	ds, err := Run(f.list, f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Results) != 7 {
		t.Fatalf("results = %d", len(ds.Results))
	}
	byName := map[string]*DomainResult{}
	for i := range ds.Results {
		byName[ds.Results[i].Name] = &ds.Results[i]
	}

	sec := byName["secure.example"]
	if sec.WWW.ValidPairs != 1 || sec.WWW.Pairs != 1 {
		t.Errorf("secure www: %+v", sec.WWW)
	}
	if sec.WWW.StateProb(vrp.Valid) != 1 || sec.WWW.CoverageProb() != 1 {
		t.Errorf("secure probabilities wrong: %+v", sec.WWW)
	}
	if sec.EqualPrefixShare != 1 {
		t.Errorf("secure equal share = %v", sec.EqualPrefixShare)
	}
	if sec.CDNByChain {
		t.Error("secure flagged as CDN")
	}

	hij := byName["hijacked.example"]
	if hij.WWW.InvalidPairs != 1 || hij.WWW.ValidPairs != 0 {
		t.Errorf("hijacked www: %+v", hij.WWW)
	}
	if hij.WWW.CoverageProb() != 1 || hij.WWW.StateProb(vrp.Invalid) != 1 {
		t.Errorf("hijacked probabilities: %+v", hij.WWW)
	}

	plain := byName["plain.example"]
	if plain.WWW.NotFoundPairs() != 1 || plain.WWW.CoverageProb() != 0 {
		t.Errorf("plain www: %+v", plain.WWW)
	}

	cdn := byName["cdnstyle.example"]
	if !cdn.CDNByChain {
		t.Error("cdnstyle not detected by chain")
	}
	if !cdn.CDNByPattern || !cdn.PatternCovered {
		t.Error("cdnstyle not detected by pattern")
	}
	if cdn.WWW.CNAMEs != 2 {
		t.Errorf("cdnstyle CNAMEs = %d", cdn.WWW.CNAMEs)
	}
	if cdn.EqualPrefixShare != 0 {
		t.Errorf("cdnstyle equal share = %v", cdn.EqualPrefixShare)
	}

	bog := byName["bogus.example"]
	if !bog.WWW.Excluded || !bog.Apex.Excluded {
		t.Errorf("bogus not excluded: %+v / %+v", bog.WWW, bog.Apex)
	}

	dark := byName["dark.example"]
	if dark.WWW.UnreachableAddrs != 1 || dark.WWW.Pairs != 0 {
		t.Errorf("dark www: %+v", dark.WWW)
	}

	ghost := byName["ghost.example"]
	if !ghost.WWW.NXDomain || !ghost.Apex.NXDomain {
		t.Errorf("ghost not NXDOMAIN: %+v", ghost.WWW)
	}

	// Totals.
	if ds.Totals.SpecialAddrs != 2 {
		t.Errorf("special addrs = %d", ds.Totals.SpecialAddrs)
	}
	if ds.Totals.UnreachableAddrs != 2 {
		t.Errorf("unreachable addrs = %d", ds.Totals.UnreachableAddrs)
	}
	if ds.Totals.ExcludedDNSFraction() <= 0 || ds.Totals.UnreachableFraction() <= 0 {
		t.Error("fractions not positive")
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(alexa.FromDomains([]string{"a.b"}), Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestTable1Cells(t *testing.T) {
	f := newTinyFixture(t)
	ds, err := Run(f.list, f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := ds.Table1(10)
	// secure (full 1/1) and hijacked (covered incorrectly → still
	// "part of the RPKI") must appear; plain and others must not.
	var names []string
	for _, row := range tbl.Rows {
		names = append(names, row[1])
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "secure.example") || !strings.Contains(joined, "hijacked.example") {
		t.Errorf("Table1 rows = %v", names)
	}
	if strings.Contains(joined, "plain.example") || strings.Contains(joined, "ghost.example") {
		t.Errorf("uncovered domain in Table1: %v", names)
	}
	for _, row := range tbl.Rows {
		if row[1] == "secure.example" && !strings.HasPrefix(row[2], "full (1/1)") {
			t.Errorf("secure cell = %q", row[2])
		}
	}
}

func TestFiguresFromTinyUniverse(t *testing.T) {
	f := newTinyFixture(t)
	ds, err := Run(f.list, f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	f1 := ds.Figure1()
	if len(f1.Series) != 1 || len(f1.Series[0].Points) == 0 {
		t.Error("Figure1 empty")
	}
	f2 := ds.Figure2(VariantWWW)
	if len(f2.Series) != 3 {
		t.Error("Figure2 series != 3")
	}
	// valid+invalid+notfound must sum to 1 per bin.
	sum := f2.Series[0].Points[0].Y + f2.Series[1].Points[0].Y + f2.Series[2].Points[0].Y
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("state probabilities sum to %v", sum)
	}
	f3 := ds.Figure3()
	if len(f3.Series) != 2 {
		t.Error("Figure3 series != 2")
	}
	f4 := ds.Figure4(VariantWWW)
	if len(f4.Series) != 2 {
		t.Error("Figure4 series != 2")
	}
}

func TestCDNStudyCounts(t *testing.T) {
	registry := []ASRegistryEntry{
		{ASN: 1, Name: "AKAMAI-AS1"},
		{ASN: 2, Name: "AKAMAI-AS2"},
		{ASN: 3, Name: "INTERNAP-BLK"},
		{ASN: 4, Name: "SOMEISP-AS"},
	}
	vrps := vrp.NewSet()
	vrps.Add(vrp.VRP{Prefix: netutil.MustPrefix("10.0.0.0/16"), MaxLength: 16, ASN: 3})
	vrps.Add(vrp.VRP{Prefix: netutil.MustPrefix("10.1.0.0/16"), MaxLength: 16, ASN: 3})
	vrps.Add(vrp.VRP{Prefix: netutil.MustPrefix("10.2.0.0/16"), MaxLength: 16, ASN: 4})
	rows := CDNStudy([]string{"akamai", "internap"}, registry, vrps)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		switch r.CDN {
		case "akamai":
			if r.ASes != 2 || r.RPKIPrefix != 0 {
				t.Errorf("akamai row = %+v", r)
			}
		case "internap":
			if r.ASes != 1 || r.RPKIPrefix != 2 || r.RPKIASes != 1 {
				t.Errorf("internap row = %+v", r)
			}
		}
	}
	tbl := CDNStudyTable(rows)
	if len(tbl.Rows) != 3 { // 2 CDNs + TOTAL
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

// TestPaperFindingsEmerge is the headline integration test: generate a
// mid-sized world and verify the four findings hold in the measured
// dataset.
func TestPaperFindingsEmerge(t *testing.T) {
	if testing.Short() {
		t.Skip("world generation in -short mode")
	}
	w, err := webworld.Generate(webworld.Config{Seed: 42, Domains: 60000})
	if err != nil {
		t.Fatal(err)
	}
	res := w.Repo.Validate(w.MeasureTime())
	if len(res.Problems) != 0 {
		t.Fatalf("RPKI problems: %v", res.Problems[:1])
	}
	ha := httparchive.New(w.CDNSuffixes)
	ha.Limit = 18000 // scale the 300k corpus to the 60k world
	ds, err := Run(w.List, Config{
		Resolver:    dns.RegistryResolver{Registry: w.Registry},
		RIB:         w.RIB,
		VRPs:        res.VRPs,
		HTTPArchive: ha,
		BinWidth:    6000, // 10 bins over 60k, mirroring 10k over 1M... scaled
	})
	if err != nil {
		t.Fatal(err)
	}

	// Finding 1: less popular websites are better secured. Compare the
	// first and last fifth of ranks by mean coverage.
	f4 := ds.Figure4(VariantWWW)
	overall := f4.Series[0].Points
	head := (overall[0].Y + overall[1].Y) / 2
	tail := (overall[len(overall)-1].Y + overall[len(overall)-2].Y) / 2
	if !(tail > head) {
		t.Errorf("finding 1 violated: head coverage %v, tail %v", head, tail)
	}

	// Finding 2/4: CDN-hosted domains are far less covered, roughly an
	// order of magnitude ("fluctuates around 0.9%" vs ~5-6%).
	cdnSeries := f4.Series[1].Points
	var cdnMean, cdnN float64
	for _, p := range cdnSeries {
		if !math.IsNaN(p.Y) {
			cdnMean += p.Y
			cdnN++
		}
	}
	cdnMean /= cdnN
	var allMean, allN float64
	for _, p := range overall {
		if !math.IsNaN(p.Y) {
			allMean += p.Y
			allN++
		}
	}
	allMean /= allN
	if !(cdnMean < allMean/3) {
		t.Errorf("finding 2 violated: cdn coverage %v vs overall %v", cdnMean, allMean)
	}
	if cdnMean <= 0 {
		t.Error("finding 3 violated: no CDN content inherits third-party coverage at all")
	}

	// Figure 2 magnitudes: overall coverage a few percent, invalid far
	// below valid, not-found > 90%.
	f2 := ds.Figure2(VariantWWW)
	validMean := seriesMean(f2.Series[0].Points)
	invalidMean := seriesMean(f2.Series[1].Points)
	nfMean := seriesMean(f2.Series[2].Points)
	if validMean < 0.02 || validMean > 0.12 {
		t.Errorf("valid mean = %v, want a few percent", validMean)
	}
	if invalidMean > validMean/5 {
		t.Errorf("invalid mean = %v vs valid %v", invalidMean, validMean)
	}
	if nfMean < 0.85 {
		t.Errorf("not-found mean = %v", nfMean)
	}

	// Figure 1 shape: high everywhere, lower at the top ranks.
	f1 := ds.Figure1()
	eq := f1.Series[0].Points
	if !(eq[0].Y < eq[len(eq)-1].Y) {
		t.Errorf("figure 1 shape: head %v, tail %v", eq[0].Y, eq[len(eq)-1].Y)
	}
	if eq[0].Y < 0.5 || eq[len(eq)-1].Y < 0.85 {
		t.Errorf("figure 1 magnitudes: head %v, tail %v", eq[0].Y, eq[len(eq)-1].Y)
	}

	// Figure 3: both heuristics decay with rank; pattern ≥ chain.
	f3 := ds.Figure3()
	pattern, chain := f3.Series[0].Points, f3.Series[1].Points
	if !(chain[0].Y > chain[len(chain)-1].Y) {
		t.Error("figure 3: chain heuristic not decaying")
	}
	if !(pattern[0].Y > chain[0].Y) {
		t.Errorf("figure 3: pattern (%v) not above chain (%v) at the top", pattern[0].Y, chain[0].Y)
	}

	// §4.2 CDN study: 199 ASes, all RPKI prefixes belong to one CDN.
	var names []string
	for _, spec := range w.Cfg.CDNs {
		names = append(names, spec.Name)
	}
	reg := make([]ASRegistryEntry, 0, len(w.ASRegistry))
	for _, e := range w.ASRegistry {
		reg = append(reg, ASRegistryEntry{ASN: e.ASN, Name: e.Name})
	}
	rows := CDNStudy(names, reg, res.VRPs)
	totalASes, totalPrefixes, signers := 0, 0, 0
	for _, r := range rows {
		totalASes += r.ASes
		totalPrefixes += r.RPKIPrefix
		if r.RPKIPrefix > 0 {
			signers++
			if r.CDN != "internap" {
				t.Errorf("unexpected CDN signer: %+v", r)
			}
			if r.RPKIPrefix != 4 || r.RPKIASes != 3 {
				t.Errorf("internap deployment = %+v, want 4 prefixes / 3 ASes", r)
			}
		}
	}
	if totalASes != 199 {
		t.Errorf("CDN ASes = %d, want 199", totalASes)
	}
	if signers != 1 || totalPrefixes != 4 {
		t.Errorf("CDN RPKI entries: %d signers, %d prefixes", signers, totalPrefixes)
	}

	// Table 1: facebook.com full, huffingtonpost partial www/none apex.
	tbl := ds.Table1(10)
	var sawFacebook, sawHuff bool
	for _, row := range tbl.Rows {
		switch row[1] {
		case "facebook.com":
			sawFacebook = true
			if !strings.HasPrefix(row[2], "full (3/3)") || !strings.HasPrefix(row[3], "full (2/2)") {
				t.Errorf("facebook row = %v", row)
			}
		case "huffingtonpost.com":
			sawHuff = true
			if !strings.HasPrefix(row[2], "partial (1/3)") || !strings.HasPrefix(row[3], "none (0/3)") {
				t.Errorf("huffingtonpost row = %v", row)
			}
		}
	}
	if !sawFacebook || !sawHuff {
		t.Errorf("Table 1 missing fixtures: %v", tbl.Rows)
	}

	// Headline fractions in the right decades.
	if f := ds.Totals.ExcludedDNSFraction(); f < 0.0001 || f > 0.01 {
		t.Errorf("excluded DNS fraction = %v", f)
	}
	if f := ds.Totals.UnreachableFraction(); f <= 0 || f > 0.01 {
		t.Errorf("unreachable fraction = %v", f)
	}
}

func seriesMean(ps []stats.Point) float64 {
	var sum, n float64
	for _, p := range ps {
		if !math.IsNaN(p.Y) {
			sum += p.Y
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / n
}
