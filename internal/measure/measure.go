// Package measure implements the paper's measurement methodology (§3):
//
//  1. select websites (a ranked domain list),
//  2. map domain names — with and without the "www" label — to IP
//     addresses via DNS, excluding IANA special-purpose answers,
//  3. map each address to the covering prefixes and origin ASes seen in
//     a BGP collector RIB, excluding AS_SET paths, and
//  4. validate every (prefix, origin) pair against the RPKI.
//
// The output dataset carries, per domain and per name variant, the
// validation-state mix ("we assign corresponding probabilities to
// domain names"), the CNAME indirection count for CDN classification
// (§4.3), and the prefix sets for the www/apex comparison (Figure 1).
package measure

import (
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"sync"

	"ripki/internal/alexa"
	"ripki/internal/dns"
	"ripki/internal/httparchive"
	"ripki/internal/netutil"
	"ripki/internal/rib"
	"ripki/internal/rpki/vrp"
)

// Config wires the pipeline to its data sources.
type Config struct {
	// Resolver answers the DNS lookups (a stub client or an in-process
	// registry resolver).
	Resolver dns.Lookuper
	// RIB is the collector routing table (step 3).
	RIB *rib.Table
	// VRPs is the validated ROA payload set (step 4).
	VRPs *vrp.Set
	// HTTPArchive, if non-nil, supplies the independent CDN
	// classification for Figure 3.
	HTTPArchive *httparchive.Classifier
	// BinWidth groups domains for the figures (default 10,000).
	BinWidth int
	// CDNThreshold is the minimum CNAME count for the indirection
	// heuristic (default 2 — "two or more CNAMEs").
	CDNThreshold int
	// DNSSEC, if true, additionally records whether each domain's zone
	// is DNSSEC signed (the paper's stated future-work comparison).
	// The Resolver must implement dns.DNSSECChecker.
	DNSSEC bool
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
}

func (c Config) binWidth() int {
	if c.BinWidth <= 0 {
		return 10000
	}
	return c.BinWidth
}

func (c Config) cdnThreshold() int {
	if c.CDNThreshold <= 0 {
		return 2
	}
	return c.CDNThreshold
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// VariantData is the measurement of one name variant (www or w/o www).
type VariantData struct {
	// Resolved is true when DNS produced at least one answer record.
	Resolved bool
	// NXDomain marks names that do not exist (e.g. a missing www).
	NXDomain bool
	// Excluded marks variants whose every address was special-purpose
	// (the paper's "incorrect DNS answers").
	Excluded bool
	// Addrs counts usable (public) addresses.
	Addrs int
	// SpecialAddrs counts discarded special-purpose answers.
	SpecialAddrs int
	// UnreachableAddrs counts addresses with no covering prefix in the
	// RIB.
	UnreachableAddrs int
	// CNAMEs is the DNS indirection count.
	CNAMEs int
	// Chain is the CNAME chain (for pattern classification).
	Chain []string

	// Pairs counts distinct (prefix, origin) pairs; PairMappings counts
	// them with per-address multiplicity (the paper's headline number).
	Pairs        int
	PairMappings int
	// ValidPairs/InvalidPairs split Pairs by RFC 6811 outcome; the rest
	// are NotFound.
	ValidPairs   int
	InvalidPairs int
	// CoveredPrefixes/TotalPrefixes count distinct covering prefixes,
	// for Table 1's "(1/3)" column.
	CoveredPrefixes int
	TotalPrefixes   int

	// prefixes is the distinct covering prefix set (Figure 1 compares
	// the two variants' sets).
	prefixes []netip.Prefix
}

// NotFoundPairs returns the pairs not covered by any VRP.
func (v VariantData) NotFoundPairs() int { return v.Pairs - v.ValidPairs - v.InvalidPairs }

// StateProb returns the per-domain probability of an RFC 6811 state —
// the paper's fractional representation of heterogeneous deployment.
func (v VariantData) StateProb(s vrp.State) float64 {
	if v.Pairs == 0 {
		return 0
	}
	switch s {
	case vrp.Valid:
		return float64(v.ValidPairs) / float64(v.Pairs)
	case vrp.Invalid:
		return float64(v.InvalidPairs) / float64(v.Pairs)
	default:
		return float64(v.NotFoundPairs()) / float64(v.Pairs)
	}
}

// CoverageProb is the probability a pair is covered by the RPKI at all
// (valid or invalid) — "RPKI-enabled" in Figure 4.
func (v VariantData) CoverageProb() float64 {
	if v.Pairs == 0 {
		return 0
	}
	return float64(v.ValidPairs+v.InvalidPairs) / float64(v.Pairs)
}

// Usable reports whether the variant contributes measurements.
func (v VariantData) Usable() bool { return v.Resolved && !v.Excluded && v.Addrs > 0 }

// DomainResult is one domain's measurement.
type DomainResult struct {
	Rank int
	Name string
	WWW  VariantData
	Apex VariantData

	// CDNByChain is the paper's heuristic: the www variant is reached
	// via >= threshold CNAMEs.
	CDNByChain bool
	// CDNByPattern is the HTTPArchive-style classification;
	// PatternCovered is false outside the classifier's corpus.
	CDNByPattern   bool
	PatternCovered bool
	// EqualPrefixShare is |www ∩ apex| / |www ∪ apex| over covering
	// prefix sets, when both variants resolved (-1 otherwise).
	EqualPrefixShare float64
	// DNSSEC is true when the zone apex publishes a DNSKEY (only
	// collected when Config.DNSSEC is set).
	DNSSEC bool
}

// Totals are the dataset-level headline numbers (§4's first paragraph).
type Totals struct {
	Domains          int
	WWWAddrs         int
	ApexAddrs        int
	WWWPairMappings  int
	ApexPairMappings int
	SpecialAddrs     int
	TotalAnswers     int
	UnreachableAddrs int
}

// Dataset is the pipeline output.
type Dataset struct {
	Results  []DomainResult
	BinWidth int
	Totals   Totals
}

// Run executes the methodology over the ranked list.
func Run(list *alexa.List, cfg Config) (*Dataset, error) {
	if cfg.Resolver == nil || cfg.RIB == nil || cfg.VRPs == nil {
		return nil, fmt.Errorf("measure: Resolver, RIB and VRPs are required")
	}
	entries := list.Entries()
	ds := &Dataset{
		Results:  make([]DomainResult, len(entries)),
		BinWidth: cfg.binWidth(),
	}
	workers := cfg.workers()
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	chunk := (len(entries) + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	for start := 0; start < len(entries); start += chunk {
		end := start + chunk
		if end > len(entries) {
			end = len(entries)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				r, err := measureDomain(entries[i], cfg, nil)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				ds.Results[i] = r
			}
		}(start, end)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	ds.computeTotals()
	return ds, nil
}

// domainKeys records everything one domain's measurement depended on:
// the owner names whose DNS records were consulted (the queried names
// plus every CNAME target traversed), the public addresses matched
// against the RIB, and the covering (prefix, origin) prefixes validated
// against the VRP set. The incremental dataset inverts these into its
// dirty-set indexes; a nil collector keeps the hot path allocation-free.
type domainKeys struct {
	hosts    []string
	addrs    []netip.Addr
	prefixes []netip.Prefix
}

func measureDomain(e alexa.Entry, cfg Config, keys *domainKeys) (DomainResult, error) {
	r := DomainResult{Rank: e.Rank, Name: e.Domain, EqualPrefixShare: -1}
	var err error
	if r.WWW, err = measureVariant("www."+e.Domain, cfg, keys); err != nil {
		return r, err
	}
	if r.Apex, err = measureVariant(e.Domain, cfg, keys); err != nil {
		return r, err
	}
	r.CDNByChain = r.WWW.Usable() && r.WWW.CNAMEs >= cfg.cdnThreshold()
	if cfg.HTTPArchive != nil {
		chain := r.WWW.Chain
		if len(r.Apex.Chain) > len(chain) {
			chain = r.Apex.Chain
		}
		r.CDNByPattern, r.PatternCovered = cfg.HTTPArchive.Classify(e.Rank, chain)
	}
	if r.WWW.Usable() && r.Apex.Usable() {
		r.EqualPrefixShare = jaccard(r.WWW.prefixes, r.Apex.prefixes)
	}
	if cfg.DNSSEC {
		checker, ok := cfg.Resolver.(dns.DNSSECChecker)
		if !ok {
			return r, fmt.Errorf("measure: DNSSEC requested but resolver %T cannot check DNSKEY", cfg.Resolver)
		}
		signed, err := checker.HasDNSKEY(e.Domain)
		if err != nil {
			return r, fmt.Errorf("measure: DNSKEY check for %q: %w", e.Domain, err)
		}
		r.DNSSEC = signed
	}
	return r, nil
}

func measureVariant(name string, cfg Config, keys *domainKeys) (VariantData, error) {
	var v VariantData
	res, err := cfg.Resolver.LookupWeb(name)
	if err != nil {
		return v, fmt.Errorf("measure: resolving %q: %w", name, err)
	}
	if keys != nil {
		// The queried name is recorded even when it does not exist:
		// a record added there later must re-trigger this measurement.
		keys.hosts = append(keys.hosts, dns.CanonicalName(name))
		keys.hosts = append(keys.hosts, res.Chain...)
	}
	if res.NXDomain {
		v.NXDomain = true
		return v, nil
	}
	v.CNAMEs = res.CNAMECount()
	v.Chain = res.Chain
	if len(res.Addrs) == 0 && v.CNAMEs == 0 {
		return v, nil // no data
	}
	v.Resolved = true
	seenPair := make(map[rib.PrefixOrigin]vrp.State, 4)
	seenPrefix := make(map[netip.Prefix]bool, 4)
	for _, a := range res.Addrs {
		if netutil.IsSpecialPurpose(a) {
			v.SpecialAddrs++
			continue
		}
		v.Addrs++
		if keys != nil {
			keys.addrs = append(keys.addrs, a)
		}
		pairs := cfg.RIB.OriginPairs(a)
		if len(pairs) == 0 {
			if !cfg.RIB.Reachable(a) {
				v.UnreachableAddrs++
			}
			continue
		}
		v.PairMappings += len(pairs)
		for _, po := range pairs {
			if _, ok := seenPair[po]; !ok {
				seenPair[po] = cfg.VRPs.Validate(po.Prefix, po.Origin)
			}
			seenPrefix[po.Prefix] = true
		}
	}
	if v.Addrs == 0 && v.SpecialAddrs > 0 {
		v.Excluded = true
		return v, nil
	}
	v.Pairs = len(seenPair)
	for _, st := range seenPair {
		switch st {
		case vrp.Valid:
			v.ValidPairs++
		case vrp.Invalid:
			v.InvalidPairs++
		}
	}
	v.TotalPrefixes = len(seenPrefix)
	for p := range seenPrefix {
		covered := false
		for po, st := range seenPair {
			if po.Prefix == p && st != vrp.NotFound {
				covered = true
				break
			}
		}
		if covered {
			v.CoveredPrefixes++
		}
		v.prefixes = append(v.prefixes, p)
	}
	sort.Slice(v.prefixes, func(i, j int) bool {
		return netutil.ComparePrefixes(v.prefixes[i], v.prefixes[j]) < 0
	})
	if keys != nil {
		keys.prefixes = append(keys.prefixes, v.prefixes...)
	}
	return v, nil
}

// jaccard computes |a ∩ b| / |a ∪ b| over sorted prefix slices.
func jaccard(a, b []netip.Prefix) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch c := netutil.ComparePrefixes(a[i], b[j]); {
		case c == 0:
			inter++
			i++
			j++
		case c < 0:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

func (ds *Dataset) computeTotals() {
	ds.Totals = Totals{}
	t := &ds.Totals
	t.Domains = len(ds.Results)
	for i := range ds.Results {
		r := &ds.Results[i]
		t.WWWAddrs += r.WWW.Addrs
		t.ApexAddrs += r.Apex.Addrs
		t.WWWPairMappings += r.WWW.PairMappings
		t.ApexPairMappings += r.Apex.PairMappings
		t.SpecialAddrs += r.WWW.SpecialAddrs + r.Apex.SpecialAddrs
		t.TotalAnswers += r.WWW.Addrs + r.Apex.Addrs + r.WWW.SpecialAddrs + r.Apex.SpecialAddrs
		t.UnreachableAddrs += r.WWW.UnreachableAddrs + r.Apex.UnreachableAddrs
	}
}

// ExcludedDNSFraction is the share of answers discarded as
// special-purpose (paper: 0.07%).
func (t Totals) ExcludedDNSFraction() float64 {
	if t.TotalAnswers == 0 {
		return 0
	}
	return float64(t.SpecialAddrs) / float64(t.TotalAnswers)
}

// UnreachableFraction is the share of public addresses not covered by
// any announced prefix (paper: 0.01%).
func (t Totals) UnreachableFraction() float64 {
	total := t.WWWAddrs + t.ApexAddrs
	if total == 0 {
		return 0
	}
	return float64(t.UnreachableAddrs) / float64(total)
}
