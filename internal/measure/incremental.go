package measure

import (
	"fmt"
	"net/netip"
	"slices"
	"sync"

	"ripki/internal/alexa"
	"ripki/internal/dns"
	"ripki/internal/netutil"
	"ripki/internal/radix"
	"ripki/internal/rpki/vrp"
)

// Incremental is a Dataset that stays current under world mutation at a
// cost proportional to what changed, not to world size. The initial
// build runs the full pipeline once (exactly Run) and additionally
// records, per domain, every input the measurement consulted: the DNS
// owner names resolved, the public addresses matched against the RIB,
// and the covering prefixes validated against the VRP set. Those keys
// are inverted into reverse indexes — hostname → domains and two radix
// trees prefix → domains — so a mutation marks exactly the impacted
// domains dirty:
//
//   - DirtyVRP(q): a VRP issued or revoked at q flips the RFC 6811
//     outcome only for (prefix, origin) pairs at q or below (validation
//     consults covering VRPs), so the pair-prefix subtree of q is
//     marked;
//   - DirtyRoute(p): a route inserted or withdrawn at p changes the
//     covering-prefix set only for addresses inside p, so the address
//     subtree of p is marked;
//   - DirtyHost(name): a DNS record mutation affects the domains whose
//     resolution touched that owner name (queried names are recorded
//     even when they did not exist, so records appearing later still
//     invalidate).
//
// Refresh then re-measures only the dirty domains — through the same
// measureDomain code path Run uses, writing into the same
// slot-addressed Results — and recomputes the totals. Because an
// unchanged domain's inputs are untouched by construction, its cached
// row equals what a fresh measurement would produce, and the refreshed
// Dataset is byte-identical to a full Run against the mutated world.
// The sim engine's CI determinism job enforces exactly that contract.
//
// Incremental is not safe for concurrent use; Refresh parallelises
// internally just as Run does.
type Incremental struct {
	cfg     Config
	entries []alexa.Entry
	ds      *Dataset
	keys    []domainKeys

	hostIdx map[string]map[int]struct{}
	pairIdx radix.Tree[map[int]struct{}]
	addrIdx radix.Tree[map[int]struct{}]

	dirty map[int]struct{}
}

// NewIncremental measures the full list once and builds the reverse
// indexes. The Config requirements are those of Run.
func NewIncremental(list *alexa.List, cfg Config) (*Incremental, error) {
	if cfg.Resolver == nil || cfg.RIB == nil || cfg.VRPs == nil {
		return nil, fmt.Errorf("measure: Resolver, RIB and VRPs are required")
	}
	entries := list.Entries()
	inc := &Incremental{
		cfg:     cfg,
		entries: entries,
		ds: &Dataset{
			Results:  make([]DomainResult, len(entries)),
			BinWidth: cfg.binWidth(),
		},
		keys:    make([]domainKeys, len(entries)),
		hostIdx: make(map[string]map[int]struct{}),
		dirty:   make(map[int]struct{}),
	}
	all := make([]int, len(entries))
	for i := range all {
		all[i] = i
	}
	if err := inc.recompute(all); err != nil {
		return nil, err
	}
	return inc, nil
}

// Dataset returns the current dataset. It is valid until the next
// Refresh and must be treated as read-only.
func (inc *Incremental) Dataset() *Dataset { return inc.ds }

// SetVRPs swaps the validation source consulted by subsequent
// refreshes. It does not mark anything dirty by itself: the caller is
// responsible for a DirtyVRP per changed prefix (or DirtyAll when the
// new set's relation to the old one is unknown).
func (inc *Incremental) SetVRPs(set *vrp.Set) { inc.cfg.VRPs = set }

// DirtyVRP marks the domains whose measurement validated a pair prefix
// at q or below — the set a VRP issue/revoke at q can affect.
func (inc *Incremental) DirtyVRP(q netip.Prefix) {
	inc.markSubtree(&inc.pairIdx, q)
}

// DirtyRoute marks the domains with a resolved public address inside p
// — the set a RIB insert/withdraw at p can affect.
func (inc *Incremental) DirtyRoute(p netip.Prefix) {
	inc.markSubtree(&inc.addrIdx, p)
}

// DirtyHost marks the domains whose resolution consulted the given
// owner name.
func (inc *Incremental) DirtyHost(name string) {
	for i := range inc.hostIdx[dns.CanonicalName(name)] {
		inc.dirty[i] = struct{}{}
	}
}

// DirtyAll marks every domain, degrading the next Refresh to a full
// recompute — the escape hatch for mutations the caller cannot
// attribute.
func (inc *Incremental) DirtyAll() {
	for i := range inc.entries {
		inc.dirty[i] = struct{}{}
	}
}

func (inc *Incremental) markSubtree(t *radix.Tree[map[int]struct{}], p netip.Prefix) {
	for _, e := range t.Subtree(p, nil) {
		for i := range e.Value {
			inc.dirty[i] = struct{}{}
		}
	}
}

// Refresh re-measures the dirty domains and recomputes the totals. With
// an empty dirty set it returns immediately — the steady-state tick.
func (inc *Incremental) Refresh() error {
	if len(inc.dirty) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(inc.dirty))
	for i := range inc.dirty {
		idxs = append(idxs, i)
	}
	slices.Sort(idxs)
	if err := inc.recompute(idxs); err != nil {
		return err
	}
	clear(inc.dirty)
	return nil
}

// recompute re-measures the given domains (sorted indices) in parallel,
// swaps their dependency keys in the reverse indexes, and recomputes
// the totals. The parallel phase only writes slot-addressed results, so
// scheduling cannot reorder anything observable.
func (inc *Incremental) recompute(idxs []int) error {
	workers := inc.cfg.workers()
	fresh := make([]domainKeys, len(idxs))
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	chunk := (len(idxs) + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	for start := 0; start < len(idxs); start += chunk {
		end := min(start+chunk, len(idxs))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				i := idxs[j]
				var k domainKeys
				r, err := measureDomain(inc.entries[i], inc.cfg, &k)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				inc.ds.Results[i] = r
				fresh[j] = k
			}
		}(start, end)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	for j, i := range idxs {
		inc.unindex(i, inc.keys[i])
		inc.keys[i] = fresh[j]
		inc.index(i, fresh[j])
	}
	inc.ds.computeTotals()
	return nil
}

func (inc *Incremental) index(i int, k domainKeys) {
	for _, h := range k.hosts {
		m := inc.hostIdx[h]
		if m == nil {
			m = make(map[int]struct{}, 1)
			inc.hostIdx[h] = m
		}
		m[i] = struct{}{}
	}
	for _, a := range k.addrs {
		treeAdd(&inc.addrIdx, addrPrefix(a), i)
	}
	for _, p := range k.prefixes {
		treeAdd(&inc.pairIdx, p, i)
	}
}

func (inc *Incremental) unindex(i int, k domainKeys) {
	for _, h := range k.hosts {
		if m := inc.hostIdx[h]; m != nil {
			delete(m, i)
			if len(m) == 0 {
				delete(inc.hostIdx, h)
			}
		}
	}
	for _, a := range k.addrs {
		treeRemove(&inc.addrIdx, addrPrefix(a), i)
	}
	for _, p := range k.prefixes {
		treeRemove(&inc.pairIdx, p, i)
	}
}

func treeAdd(t *radix.Tree[map[int]struct{}], p netip.Prefix, i int) {
	if m, ok := t.Lookup(p); ok {
		m[i] = struct{}{}
		return
	}
	// Keys come from netip values the pipeline already accepted, so
	// Insert cannot fail.
	_ = t.Insert(p, map[int]struct{}{i: {}})
}

func treeRemove(t *radix.Tree[map[int]struct{}], p netip.Prefix, i int) {
	if m, ok := t.Lookup(p); ok {
		delete(m, i)
		if len(m) == 0 {
			t.Delete(p)
		}
	}
}

// addrPrefix lifts an address to the full-length canonical prefix the
// address index is keyed by.
func addrPrefix(a netip.Addr) netip.Prefix {
	p := netip.PrefixFrom(a, a.BitLen())
	if cp, err := netutil.Canonical(p); err == nil {
		return cp
	}
	return p
}
