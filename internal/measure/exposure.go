package measure

import (
	"fmt"
	"sort"

	"ripki/internal/rpki/vrp"
	"ripki/internal/stats"
)

// ExposedRelation is a business relationship readable straight out of
// the public RPKI: a prefix whose ROAs authorise ASes belonging to more
// than one organisation. The paper's §5.2 argues this disclosure — e.g.
// two CDNs backing each other up, or a DoS-mitigation standby — is a
// real deterrent to deployment: "the RPKI represents a catalog which
// ... documents information in advance".
type ExposedRelation struct {
	Prefix string
	// Orgs are the distinct organisations whose ASes the prefix's ROAs
	// authorise, sorted.
	Orgs []string
	// ASNs are the authorised origin ASes backing the inference.
	ASNs []uint32
}

// ExposedRelations scans a VRP set for prefixes authorising ASes of
// several organisations, using an AS registry to attribute ASNs to
// organisations. ASNs absent from the registry (e.g. fat-fingered ROAs)
// are ignored — they expose nothing attributable.
func ExposedRelations(vrps *vrp.Set, registry []ASRegistryEntry, orgOf func(uint32) (string, bool)) []ExposedRelation {
	owner := orgOf
	if owner == nil {
		byASN := make(map[uint32]string, len(registry))
		for _, e := range registry {
			byASN[e.ASN] = e.Name
		}
		owner = func(asn uint32) (string, bool) {
			name, ok := byASN[asn]
			return name, ok
		}
	}
	type agg struct {
		orgs map[string]bool
		asns map[uint32]bool
	}
	byPrefix := make(map[string]*agg)
	for _, v := range vrps.All() {
		org, ok := owner(v.ASN)
		if !ok {
			continue
		}
		key := v.Prefix.String()
		a := byPrefix[key]
		if a == nil {
			a = &agg{orgs: make(map[string]bool), asns: make(map[uint32]bool)}
			byPrefix[key] = a
		}
		a.orgs[org] = true
		a.asns[v.ASN] = true
	}
	var out []ExposedRelation
	for prefix, a := range byPrefix {
		if len(a.orgs) < 2 {
			continue
		}
		rel := ExposedRelation{Prefix: prefix}
		for org := range a.orgs {
			rel.Orgs = append(rel.Orgs, org)
		}
		sort.Strings(rel.Orgs)
		for asn := range a.asns {
			rel.ASNs = append(rel.ASNs, asn)
		}
		sort.Slice(rel.ASNs, func(i, j int) bool { return rel.ASNs[i] < rel.ASNs[j] })
		out = append(out, rel)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix < out[j].Prefix })
	return out
}

// ExposureTable renders the relations for display.
func ExposureTable(rels []ExposedRelation) *stats.Table {
	t := &stats.Table{
		Title:   "Business relations exposed by the RPKI (§5.2)",
		Columns: []string{"prefix", "organisations", "authorised ASNs"},
	}
	for _, r := range rels {
		orgs := ""
		for i, o := range r.Orgs {
			if i > 0 {
				orgs += " + "
			}
			orgs += o
		}
		asns := ""
		for i, a := range r.ASNs {
			if i > 0 {
				asns += ", "
			}
			asns += fmt.Sprintf("AS%d", a)
		}
		t.Rows = append(t.Rows, []string{r.Prefix, orgs, asns})
	}
	return t
}
