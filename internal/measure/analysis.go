package measure

import (
	"fmt"
	"sort"
	"strings"

	"ripki/internal/rpki/vrp"
	"ripki/internal/stats"
)

// Variant selects which name variant an analysis reads.
type Variant int

const (
	// VariantWWW is the "www." name.
	VariantWWW Variant = iota
	// VariantApex is the name without "www" ("w/o www domain").
	VariantApex
)

func (v Variant) String() string {
	if v == VariantApex {
		return "w/o www"
	}
	return "www"
}

func (r *DomainResult) variant(v Variant) *VariantData {
	if v == VariantApex {
		return &r.Apex
	}
	return &r.WWW
}

// Figure1 reproduces "Comparison of IP deployment for www and w/o www
// domain names": the per-bin mean share of equal covering prefixes
// between the two variants.
func (ds *Dataset) Figure1() *stats.Figure {
	b := stats.NewBinner(ds.BinWidth)
	for i := range ds.Results {
		r := &ds.Results[i]
		if r.EqualPrefixShare >= 0 {
			b.Add(r.Rank, r.EqualPrefixShare)
		}
	}
	return &stats.Figure{
		Title:  "Figure 1: equal prefixes between www and w/o www domains",
		XLabel: fmt.Sprintf("alexa rank (%d domains grouped)", ds.BinWidth),
		YLabel: "relative frequency",
		Series: []stats.Series{b.Series("equal prefixes")},
	}
}

// Figure2 reproduces "RPKI validation outcome for the 1 million Alexa
// domains": per-bin relative frequency of valid, invalid and not found,
// using per-domain state probabilities.
func (ds *Dataset) Figure2(v Variant) *stats.Figure {
	valid := stats.NewBinner(ds.BinWidth)
	invalid := stats.NewBinner(ds.BinWidth)
	notFound := stats.NewBinner(ds.BinWidth)
	for i := range ds.Results {
		r := &ds.Results[i]
		vd := r.variant(v)
		if !vd.Usable() || vd.Pairs == 0 {
			continue
		}
		valid.Add(r.Rank, vd.StateProb(vrp.Valid))
		invalid.Add(r.Rank, vd.StateProb(vrp.Invalid))
		notFound.Add(r.Rank, vd.StateProb(vrp.NotFound))
	}
	return &stats.Figure{
		Title:  fmt.Sprintf("Figure 2: RPKI validation outcome (%s domains)", v),
		XLabel: fmt.Sprintf("alexa rank (%d domains grouped)", ds.BinWidth),
		YLabel: "relative frequency",
		Series: []stats.Series{
			valid.Series("valid"),
			invalid.Series("invalid"),
			notFound.Series("not found"),
		},
	}
}

// Figure3 reproduces "Popularity of CDNs — comparison of CDN detection
// heuristics": the indirection-count heuristic against the
// HTTPArchive-style pattern matcher (which only covers its corpus).
func (ds *Dataset) Figure3() *stats.Figure {
	chain := stats.NewBinner(ds.BinWidth)
	pattern := stats.NewBinner(ds.BinWidth)
	for i := range ds.Results {
		r := &ds.Results[i]
		if r.WWW.Usable() || r.Apex.Usable() {
			chain.Add(r.Rank, b2f(r.CDNByChain))
		}
		if r.PatternCovered {
			pattern.Add(r.Rank, b2f(r.CDNByPattern))
		}
	}
	return &stats.Figure{
		Title:  "Figure 3: popularity of CDNs, two detection heuristics",
		XLabel: fmt.Sprintf("alexa rank (%d domains grouped)", ds.BinWidth),
		YLabel: "relative frequency",
		Series: []stats.Series{
			pattern.Series("httparchive"),
			chain.Series("dns indirections"),
		},
	}
}

// Figure4 reproduces "RPKI deployment statistics on CDNs and for the
// unconditioned Web": the RPKI-enabled share for all domains and for
// the CDN-hosted subset.
func (ds *Dataset) Figure4(v Variant) *stats.Figure {
	all := stats.NewBinner(ds.BinWidth)
	cdn := stats.NewBinner(ds.BinWidth)
	for i := range ds.Results {
		r := &ds.Results[i]
		vd := r.variant(v)
		if !vd.Usable() || vd.Pairs == 0 {
			continue
		}
		p := vd.CoverageProb()
		all.Add(r.Rank, p)
		if r.CDNByChain {
			cdn.Add(r.Rank, p)
		}
	}
	return &stats.Figure{
		Title:  fmt.Sprintf("Figure 4: RPKI-enabled websites, overall vs CDN-hosted (%s domains)", v),
		XLabel: fmt.Sprintf("alexa rank (%d domains grouped)", ds.BinWidth),
		YLabel: "relative frequency",
		Series: []stats.Series{
			all.Series("rpki-enabled"),
			cdn.Series("rpki-enabled, hosted on cdns"),
		},
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// coverageCell renders Table 1 cells: "n/a", "full (x/y)",
// "partial (x/y)" or "none (0/y)".
func coverageCell(v *VariantData) string {
	if v.NXDomain {
		return "n/a"
	}
	if !v.Usable() || v.TotalPrefixes == 0 {
		return "-"
	}
	switch {
	case v.CoveredPrefixes == v.TotalPrefixes:
		return fmt.Sprintf("full (%d/%d)", v.CoveredPrefixes, v.TotalPrefixes)
	case v.CoveredPrefixes > 0:
		return fmt.Sprintf("partial (%d/%d)", v.CoveredPrefixes, v.TotalPrefixes)
	default:
		return fmt.Sprintf("none (0/%d)", v.TotalPrefixes)
	}
}

// Table1 reproduces "Top 10 Alexa domains that have partial or full
// RPKI coverage": the highest-ranked domains with at least one covered
// prefix in either variant.
func (ds *Dataset) Table1(n int) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Table 1: top %d domains with RPKI coverage", n),
		Columns: []string{"rank", "domain", "www", "w/o www"},
	}
	for i := range ds.Results {
		r := &ds.Results[i]
		if r.WWW.CoveredPrefixes == 0 && r.Apex.CoveredPrefixes == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Rank),
			r.Name,
			coverageCell(&r.WWW),
			coverageCell(&r.Apex),
		})
		if len(t.Rows) == n {
			break
		}
	}
	return t
}

// ASRegistryEntry is one AS assignment row for keyword spotting. It
// mirrors the registry dumps the paper scans ("we apply keyword
// spotting on common AS assignment lists").
type ASRegistryEntry struct {
	ASN  uint32
	Name string
}

// CDNStudyRow summarises one CDN's RPKI engagement (§4.2).
type CDNStudyRow struct {
	CDN        string
	ASes       int
	RPKIVRPs   int
	RPKIASes   int
	RPKIPrefix int
}

// CDNStudy reproduces the §4.2 analysis: keyword-spot each CDN's ASes
// in the registry, then count its appearances in the validated ROA
// payloads. The paper found 199 ASes across 16 CDNs with exactly four
// RPKI entries, all Internap's, tied to three origin ASes.
func CDNStudy(cdns []string, registry []ASRegistryEntry, vrps *vrp.Set) []CDNStudyRow {
	all := vrps.All()
	rows := make([]CDNStudyRow, 0, len(cdns))
	for _, cdn := range cdns {
		needle := strings.ToUpper(cdn)
		row := CDNStudyRow{CDN: cdn}
		asSet := make(map[uint32]bool)
		for _, e := range registry {
			if strings.Contains(strings.ToUpper(e.Name), needle) {
				row.ASes++
				asSet[e.ASN] = true
			}
		}
		prefixSet := make(map[string]bool)
		originSet := make(map[uint32]bool)
		for _, v := range all {
			if asSet[v.ASN] {
				row.RPKIVRPs++
				prefixSet[v.Prefix.String()] = true
				originSet[v.ASN] = true
			}
		}
		row.RPKIPrefix = len(prefixSet)
		row.RPKIASes = len(originSet)
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].CDN < rows[j].CDN })
	return rows
}

// CDNStudyTable renders the study as a table.
func CDNStudyTable(rows []CDNStudyRow) *stats.Table {
	t := &stats.Table{
		Title:   "CDN RPKI engagement (keyword spotting over the AS registry)",
		Columns: []string{"cdn", "ases", "rpki prefixes", "rpki origin ases"},
	}
	totalASes, totalPrefixes := 0, 0
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.CDN,
			fmt.Sprintf("%d", r.ASes),
			fmt.Sprintf("%d", r.RPKIPrefix),
			fmt.Sprintf("%d", r.RPKIASes),
		})
		totalASes += r.ASes
		totalPrefixes += r.RPKIPrefix
	}
	t.Rows = append(t.Rows, []string{"TOTAL", fmt.Sprintf("%d", totalASes), fmt.Sprintf("%d", totalPrefixes), ""})
	return t
}

// FigureDNSSEC is the paper's future-work comparison: DNSSEC adoption
// and RPKI coverage side by side across popularity ranks. Requires a
// dataset produced with Config.DNSSEC.
func (ds *Dataset) FigureDNSSEC(v Variant) *stats.Figure {
	dnssec := stats.NewBinner(ds.BinWidth)
	rpki := stats.NewBinner(ds.BinWidth)
	both := stats.NewBinner(ds.BinWidth)
	for i := range ds.Results {
		r := &ds.Results[i]
		vd := r.variant(v)
		if !vd.Usable() || vd.Pairs == 0 {
			continue
		}
		dnssec.Add(r.Rank, b2f(r.DNSSEC))
		cov := vd.CoverageProb()
		rpki.Add(r.Rank, cov)
		if r.DNSSEC {
			both.Add(r.Rank, cov)
		} else {
			both.Add(r.Rank, 0)
		}
	}
	return &stats.Figure{
		Title:  fmt.Sprintf("Extension: DNSSEC vs RPKI adoption (%s domains)", v),
		XLabel: fmt.Sprintf("alexa rank (%d domains grouped)", ds.BinWidth),
		YLabel: "relative frequency",
		Series: []stats.Series{
			dnssec.Series("dnssec signed"),
			rpki.Series("rpki covered"),
			both.Series("both"),
		},
	}
}

// Summary renders the headline counts (§4, first paragraph).
func (ds *Dataset) Summary() *stats.Table {
	t := ds.Totals
	return &stats.Table{
		Title:   "Dataset summary",
		Columns: []string{"quantity", "value"},
		Rows: [][]string{
			{"domains", fmt.Sprintf("%d", t.Domains)},
			{"www addresses", fmt.Sprintf("%d", t.WWWAddrs)},
			{"w/o www addresses", fmt.Sprintf("%d", t.ApexAddrs)},
			{"www prefix-AS mappings", fmt.Sprintf("%d", t.WWWPairMappings)},
			{"w/o www prefix-AS mappings", fmt.Sprintf("%d", t.ApexPairMappings)},
			{"special-purpose answers excluded", fmt.Sprintf("%.4f%%", 100*t.ExcludedDNSFraction())},
			{"addresses unreachable from vantage", fmt.Sprintf("%.4f%%", 100*t.UnreachableFraction())},
		},
	}
}
