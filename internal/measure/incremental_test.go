package measure

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"

	"ripki/internal/dns"
	"ripki/internal/httparchive"
	"ripki/internal/mrt"
	"ripki/internal/netutil"
	"ripki/internal/rib"
	"ripki/internal/rpki/vrp"
	"ripki/internal/webworld"
)

// TestIncrementalTinyUniverse exercises the dirty paths one at a time
// against the hand-crafted fixture, where each mutation's expected
// blast radius is known.
func TestIncrementalTinyUniverse(t *testing.T) {
	f := newTinyFixture(t)
	set := f.cfg.VRPs
	inc, err := NewIncremental(f.list, f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := func(step string) {
		t.Helper()
		if err := inc.Refresh(); err != nil {
			t.Fatalf("%s: refresh: %v", step, err)
		}
		full, err := Run(f.list, f.cfg)
		if err != nil {
			t.Fatalf("%s: full run: %v", step, err)
		}
		if !reflect.DeepEqual(inc.Dataset().Results, full.Results) {
			t.Fatalf("%s: incremental results diverge from full recompute", step)
		}
		if !reflect.DeepEqual(inc.Dataset().Totals, full.Totals) {
			t.Fatalf("%s: incremental totals diverge from full recompute", step)
		}
	}
	check("baseline")

	// Fix the hijacked ROA: hijacked.example flips invalid → valid.
	wrong := vrp.VRP{Prefix: netutil.MustPrefix("198.51.0.0/16"), MaxLength: 16, ASN: 3333}
	set.Remove(wrong)
	inc.DirtyVRP(wrong.Prefix)
	set.Add(vrp.VRP{Prefix: netutil.MustPrefix("198.51.0.0/16"), MaxLength: 16, ASN: 666})
	inc.DirtyVRP(netutil.MustPrefix("198.51.0.0/16"))
	check("roa fix")

	// ghost.example comes alive: the NXDOMAIN was recorded as a consulted
	// name, so a record appearing later must invalidate.
	reg := f.cfg.Resolver.(dns.RegistryResolver).Registry
	reg.SetMutationHook(inc.DirtyHost)
	defer reg.SetMutationHook(nil)
	reg.Add(dns.RR{Name: "ghost.example", Type: dns.TypeA, TTL: 60, Addr: netutil.MustAddr("193.0.6.99")})
	check("nxdomain resurrect")

	// dark.example gets routed: an address recorded as unreachable gains
	// a covering route.
	f.cfg.RIB.SetMutationHook(inc.DirtyRoute)
	defer f.cfg.RIB.SetMutationHook(nil)
	pk := f.cfg.RIB.AddPeer(mrt.Peer{BGPID: netutil.MustAddr("10.0.0.2"), Addr: netutil.MustAddr("10.0.0.2"), ASN: 200})
	if err := f.cfg.RIB.Insert(rib.Route{
		Prefix: netutil.MustPrefix("203.0.112.0/24"), PeerIndex: pk,
		Path: []ribSegment{{Type: 2, ASNs: []uint32{200, 64999}}}, NextHop: netutil.MustAddr("10.0.0.2"),
	}); err != nil {
		t.Fatal(err)
	}
	check("route appears")

	// ...and unrouted again.
	f.cfg.RIB.Withdraw(pk, netutil.MustPrefix("203.0.112.0/24"))
	check("route withdrawn")

	// CNAME repoint: cdnstyle's www chain now terminates on secure's
	// address; chained owner names were recorded, so this must dirty it.
	reg.Remove("cust.fastcdn.wld", dns.TypeCNAME)
	reg.AddCNAME("cust.fastcdn.wld", "www.secure.example", 60)
	check("cname repoint")

	// Swap the whole validation source.
	swapped := set.Clone()
	swapped.Add(vrp.VRP{Prefix: netutil.MustPrefix("203.0.114.0/24"), MaxLength: 24, ASN: 64500})
	f.cfg.VRPs = swapped
	inc.SetVRPs(swapped)
	inc.DirtyAll()
	check("set swap")
}

// TestIncrementalRandomInterleavings is the property test behind the
// incremental contract: against a generated world, any seeded random
// interleaving of ROA issues/revokes, route inserts/withdraws, and DNS
// record mutations — with refreshes at arbitrary points — leaves the
// incremental Dataset deeply equal to a full Run over the same mutated
// world. Divergence here means a reverse index under-marked.
func TestIncrementalRandomInterleavings(t *testing.T) {
	if testing.Short() {
		t.Skip("world generation in -short mode")
	}
	w, err := webworld.Generate(webworld.Config{Seed: 7, Domains: 400})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 99} {
		t.Run(string(rune('A'+seed%26)), func(t *testing.T) {
			runInterleaving(t, w, seed)
		})
	}
}

func runInterleaving(t *testing.T, w *webworld.World, seed int64) {
	set := w.Validation().VRPs.Clone()
	cfg := Config{
		Resolver:    dns.RegistryResolver{Registry: w.Registry},
		RIB:         w.RIB,
		VRPs:        set,
		HTTPArchive: httparchive.New(w.CDNSuffixes),
		BinWidth:    50,
		Workers:     4,
	}
	inc, err := NewIncremental(w.List, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.RIB.SetMutationHook(inc.DirtyRoute)
	defer w.RIB.SetMutationHook(nil)
	w.Registry.SetMutationHook(inc.DirtyHost)
	defer w.Registry.SetMutationHook(nil)

	rnd := rand.New(rand.NewSource(seed))
	routed := w.RoutedV4Prefixes()
	entries := w.List.Entries()
	pk := w.RIB.AddPeer(mrt.Peer{BGPID: netutil.MustAddr("10.9.9.9"), Addr: netutil.MustAddr("10.9.9.9"), ASN: 65000})
	leaked := map[netip.Prefix]bool{}

	ops := []func(){
		func() { // ROA flip, sometimes with a mismatching origin
			p := routed[rnd.Intn(len(routed))]
			origin, ok := w.PinnedOriginOf(p)
			if !ok {
				origin = 64512
			}
			if rnd.Intn(3) == 0 {
				origin++
			}
			v := vrp.VRP{Prefix: p, MaxLength: p.Bits(), ASN: origin}
			if set.Contains(v) {
				set.Remove(v)
			} else {
				set.Add(v)
			}
			inc.DirtyVRP(v.Prefix)
		},
		func() { // more-specific route leak flip
			base := routed[rnd.Intn(len(routed))]
			if base.Bits() >= 24 {
				return
			}
			more := netip.PrefixFrom(base.Addr(), base.Bits()+1).Masked()
			if leaked[more] {
				w.RIB.Withdraw(pk, more)
				leaked[more] = false
				return
			}
			if err := w.RIB.Insert(rib.Route{
				Prefix: more, PeerIndex: pk,
				Path: []ribSegment{{Type: 2, ASNs: []uint32{65000, 64666}}}, NextHop: netutil.MustAddr("10.9.9.9"),
			}); err != nil {
				t.Fatal(err)
			}
			leaked[more] = true
		},
		func() { // A record flip on an apex or www name
			name := entries[rnd.Intn(len(entries))].Domain
			if rnd.Intn(2) == 0 {
				name = "www." + name
			}
			if len(w.Registry.Lookup(name, dns.TypeA)) > 0 {
				w.Registry.Remove(name, dns.TypeA)
				return
			}
			addr := routed[rnd.Intn(len(routed))].Addr()
			w.Registry.Add(dns.RR{Name: name, Type: dns.TypeA, TTL: 60, Addr: addr})
		},
		func() { // CNAME repoint onto another domain's www
			from := "www." + entries[rnd.Intn(len(entries))].Domain
			to := "www." + entries[rnd.Intn(len(entries))].Domain
			w.Registry.Remove(from, dns.TypeA)
			w.Registry.Remove(from, dns.TypeCNAME)
			w.Registry.AddCNAME(from, to, 60)
		},
	}

	for i := 0; i < 60; i++ {
		ops[rnd.Intn(len(ops))]()
		if i%6 == 5 {
			if err := inc.Refresh(); err != nil {
				t.Fatalf("op %d: refresh: %v", i, err)
			}
			full, err := Run(w.List, cfg)
			if err != nil {
				t.Fatalf("op %d: full run: %v", i, err)
			}
			if !reflect.DeepEqual(inc.Dataset().Results, full.Results) {
				for j := range full.Results {
					if !reflect.DeepEqual(inc.Dataset().Results[j], full.Results[j]) {
						t.Fatalf("op %d: domain %q diverged:\nincremental %+v\nfull        %+v",
							i, entries[j].Domain, inc.Dataset().Results[j], full.Results[j])
					}
				}
			}
			if !reflect.DeepEqual(inc.Dataset().Totals, full.Totals) {
				t.Fatalf("op %d: totals diverged:\nincremental %+v\nfull        %+v",
					i, inc.Dataset().Totals, full.Totals)
			}
		}
	}
}
