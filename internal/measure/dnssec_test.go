package measure

import (
	"math"
	"testing"

	"ripki/internal/dns"
	"ripki/internal/webworld"
)

// TestDNSSECStudy checks the future-work extension: DNSSEC adoption is
// measured per zone, sits near the configured base rate (with ccTLD
// boosts), and is statistically independent of RPKI coverage — zone
// signing and route origin authorisation are different operators'
// decisions.
func TestDNSSECStudy(t *testing.T) {
	w, err := webworld.Generate(webworld.Config{Seed: 31, Domains: 30000})
	if err != nil {
		t.Fatal(err)
	}
	res := w.Repo.Validate(w.MeasureTime())
	ds, err := Run(w.List, Config{
		Resolver: dns.RegistryResolver{Registry: w.Registry},
		RIB:      w.RIB,
		VRPs:     res.VRPs,
		BinWidth: 3000,
		DNSSEC:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	signed := 0
	for i := range ds.Results {
		if ds.Results[i].DNSSEC {
			signed++
		}
	}
	if signed != w.Stats.DomainsDNSSEC {
		t.Errorf("measured %d signed zones, world created %d", signed, w.Stats.DomainsDNSSEC)
	}
	frac := float64(signed) / float64(len(ds.Results))
	if frac < 0.01 || frac > 0.12 {
		t.Errorf("DNSSEC adoption = %v, expected a few percent", frac)
	}

	// Independence: RPKI coverage among signed zones tracks coverage
	// among unsigned zones.
	var covSigned, nSigned, covUnsigned, nUnsigned float64
	for i := range ds.Results {
		r := &ds.Results[i]
		if !r.Apex.Usable() || r.Apex.Pairs == 0 {
			continue
		}
		c := r.Apex.CoverageProb()
		if r.DNSSEC {
			covSigned += c
			nSigned++
		} else {
			covUnsigned += c
			nUnsigned++
		}
	}
	if nSigned == 0 || nUnsigned == 0 {
		t.Fatal("degenerate split")
	}
	mS, mU := covSigned/nSigned, covUnsigned/nUnsigned
	if math.Abs(mS-mU) > 0.03 {
		t.Errorf("coverage by DNSSEC status: signed %v vs unsigned %v", mS, mU)
	}

	fig := ds.FigureDNSSEC(VariantApex)
	if len(fig.Series) != 3 {
		t.Fatalf("FigureDNSSEC series = %d", len(fig.Series))
	}
}

func TestDNSSECRequiresCapableResolver(t *testing.T) {
	w, err := webworld.Generate(webworld.Config{Seed: 31, Domains: 500})
	if err != nil {
		t.Fatal(err)
	}
	res := w.Repo.Validate(w.MeasureTime())
	_, err = Run(w.List, Config{
		Resolver: rotatingLookuper{w: w}, // does not implement DNSSECChecker
		RIB:      w.RIB,
		VRPs:     res.VRPs,
		DNSSEC:   true,
	})
	if err == nil {
		t.Error("DNSSEC with incapable resolver accepted")
	}
}
