// Package netutil provides IP address and prefix helpers shared by the
// routing, RPKI, and measurement packages.
//
// It wraps net/netip with the handful of operations the RiPKI pipeline
// needs beyond the standard library: covering/containment tests between
// prefixes, canonicalisation, bit extraction for trie keys, and the IANA
// special-purpose address registry used to discard invalid DNS answers
// (step 2 of the paper's methodology).
package netutil

import (
	"fmt"
	"net/netip"
)

// Canonical returns p masked to its prefix length, so that two prefixes
// describing the same address block compare equal. It returns an error if
// p is not valid.
func Canonical(p netip.Prefix) (netip.Prefix, error) {
	if !p.IsValid() {
		return netip.Prefix{}, fmt.Errorf("netutil: invalid prefix %v", p)
	}
	return p.Masked(), nil
}

// MustPrefix parses s as a canonical prefix and panics on error. It is
// intended for tests and static tables.
func MustPrefix(s string) netip.Prefix {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p.Masked()
}

// MustAddr parses s as an address and panics on error. It is intended for
// tests and static tables.
func MustAddr(s string) netip.Addr {
	a, err := netip.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Covers reports whether outer contains the whole of inner: both must be
// the same address family, outer must be no longer than inner, and
// inner's network address must fall inside outer.
func Covers(outer, inner netip.Prefix) bool {
	if outer.Addr().Is4() != inner.Addr().Is4() {
		return false
	}
	if outer.Bits() > inner.Bits() {
		return false
	}
	return outer.Contains(inner.Addr())
}

// Bit returns the i-th most significant bit (0-based) of the address, as
// 0 or 1. For IPv4 addresses the bit index is relative to the 32-bit
// form. It panics if i is out of range for the address family.
func Bit(a netip.Addr, i int) int {
	raw := a.AsSlice()
	if i < 0 || i >= len(raw)*8 {
		panic(fmt.Sprintf("netutil: bit index %d out of range for %v", i, a))
	}
	if raw[i/8]&(1<<(7-uint(i%8))) != 0 {
		return 1
	}
	return 0
}

// FamilyBits returns the number of address bits for the family of a:
// 32 for IPv4, 128 for IPv6.
func FamilyBits(a netip.Addr) int {
	if a.Is4() {
		return 32
	}
	return 128
}

// specialPurpose lists the IANA special-purpose registries for IPv4
// (RFC 6890 and successors) and IPv6. A DNS answer inside any of these
// blocks is not a usable public web-server address; the paper excludes
// such answers ("We exclude all invalid DNS answers, i.e. all
// special-purpose IPv4 and IPv6 addresses reserved by the IANA").
var specialPurpose = []netip.Prefix{
	// IPv4
	MustPrefix("0.0.0.0/8"),          // "this network"
	MustPrefix("10.0.0.0/8"),         // private
	MustPrefix("100.64.0.0/10"),      // shared address space (CGN)
	MustPrefix("127.0.0.0/8"),        // loopback
	MustPrefix("169.254.0.0/16"),     // link local
	MustPrefix("172.16.0.0/12"),      // private
	MustPrefix("192.0.0.0/24"),       // IETF protocol assignments
	MustPrefix("192.0.2.0/24"),       // TEST-NET-1
	MustPrefix("192.88.99.0/24"),     // 6to4 relay anycast (deprecated)
	MustPrefix("192.168.0.0/16"),     // private
	MustPrefix("198.18.0.0/15"),      // benchmarking
	MustPrefix("198.51.100.0/24"),    // TEST-NET-2
	MustPrefix("203.0.113.0/24"),     // TEST-NET-3
	MustPrefix("224.0.0.0/4"),        // multicast
	MustPrefix("240.0.0.0/4"),        // reserved
	MustPrefix("255.255.255.255/32"), // limited broadcast
	// IPv6
	MustPrefix("::/128"),        // unspecified
	MustPrefix("::1/128"),       // loopback
	MustPrefix("::ffff:0:0/96"), // IPv4-mapped
	MustPrefix("64:ff9b::/96"),  // IPv4-IPv6 translation
	MustPrefix("100::/64"),      // discard only
	MustPrefix("2001::/23"),     // IETF protocol assignments
	MustPrefix("2001:db8::/32"), // documentation
	MustPrefix("2002::/16"),     // 6to4
	MustPrefix("fc00::/7"),      // unique local
	MustPrefix("fe80::/10"),     // link local
	MustPrefix("ff00::/8"),      // multicast
}

// IsSpecialPurpose reports whether a falls inside any IANA
// special-purpose block and is therefore an invalid answer for a public
// web server. Invalid (zero) addresses are also reported as special.
func IsSpecialPurpose(a netip.Addr) bool {
	if !a.IsValid() {
		return true
	}
	if a.Is4In6() {
		return true
	}
	for _, p := range specialPurpose {
		if p.Addr().Is4() == a.Is4() && p.Contains(a) {
			return true
		}
	}
	return false
}

// SpecialPurposePrefixes returns a copy of the registry, for callers that
// want to display or re-serve it.
func SpecialPurposePrefixes() []netip.Prefix {
	out := make([]netip.Prefix, len(specialPurpose))
	copy(out, specialPurpose)
	return out
}

// ComparePrefixes orders prefixes first by family (IPv4 before IPv6),
// then by address bytes, then by prefix length. It returns -1, 0 or +1
// and is suitable for sort functions.
func ComparePrefixes(a, b netip.Prefix) int {
	af, bf := a.Addr().Is4(), b.Addr().Is4()
	if af != bf {
		if af {
			return -1
		}
		return 1
	}
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	switch {
	case a.Bits() < b.Bits():
		return -1
	case a.Bits() > b.Bits():
		return 1
	}
	return 0
}
