package netutil

import (
	"math/rand"
	"net/netip"
	"sort"
	"testing"
	"testing/quick"
)

func TestCanonical(t *testing.T) {
	p, err := Canonical(netip.MustParsePrefix("192.0.2.77/24"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.String(), "192.0.2.0/24"; got != want {
		t.Errorf("Canonical = %s, want %s", got, want)
	}
	if _, err := Canonical(netip.Prefix{}); err == nil {
		t.Error("Canonical(zero) did not fail")
	}
}

func TestCovers(t *testing.T) {
	cases := []struct {
		outer, inner string
		want         bool
	}{
		{"10.0.0.0/8", "10.1.0.0/16", true},
		{"10.0.0.0/8", "10.0.0.0/8", true},
		{"10.1.0.0/16", "10.0.0.0/8", false},
		{"10.0.0.0/8", "11.0.0.0/16", false},
		{"10.0.0.0/8", "2001:db8::/32", false},
		{"2001:db8::/32", "2001:db8:1::/48", true},
		{"2001:db8:1::/48", "2001:db8::/32", false},
		{"0.0.0.0/0", "203.0.113.0/24", true},
		{"::/0", "2001:db8::/32", true},
		{"::/0", "203.0.113.0/24", false},
	}
	for _, c := range cases {
		got := Covers(MustPrefix(c.outer), MustPrefix(c.inner))
		if got != c.want {
			t.Errorf("Covers(%s, %s) = %v, want %v", c.outer, c.inner, got, c.want)
		}
	}
}

func TestBit(t *testing.T) {
	a := MustAddr("128.0.0.1")
	if Bit(a, 0) != 1 {
		t.Errorf("Bit(%v, 0) = %d, want 1", a, Bit(a, 0))
	}
	if Bit(a, 1) != 0 {
		t.Errorf("Bit(%v, 1) = %d, want 0", a, Bit(a, 1))
	}
	if Bit(a, 31) != 1 {
		t.Errorf("Bit(%v, 31) = %d, want 1", a, Bit(a, 31))
	}
	v6 := MustAddr("8000::1")
	if Bit(v6, 0) != 1 || Bit(v6, 127) != 1 || Bit(v6, 64) != 0 {
		t.Errorf("v6 bits wrong: %d %d %d", Bit(v6, 0), Bit(v6, 127), Bit(v6, 64))
	}
}

func TestBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bit out of range did not panic")
		}
	}()
	Bit(MustAddr("10.0.0.1"), 32)
}

func TestFamilyBits(t *testing.T) {
	if FamilyBits(MustAddr("10.0.0.1")) != 32 {
		t.Error("IPv4 family bits != 32")
	}
	if FamilyBits(MustAddr("2001:db8::1")) != 128 {
		t.Error("IPv6 family bits != 128")
	}
}

func TestIsSpecialPurpose(t *testing.T) {
	special := []string{
		"127.0.0.1", "10.11.12.13", "192.168.1.1", "0.1.2.3",
		"169.254.0.9", "224.0.0.5", "255.255.255.255", "100.64.3.3",
		"198.18.22.1", "203.0.113.5", "::1", "fe80::1", "fc00::42",
		"2001:db8::1", "ff02::1", "100::9",
	}
	for _, s := range special {
		if !IsSpecialPurpose(MustAddr(s)) {
			t.Errorf("IsSpecialPurpose(%s) = false, want true", s)
		}
	}
	public := []string{
		"8.8.8.8", "193.0.6.139", "151.101.1.140", "2001:500:88:200::8",
		"2600:1406::17", "91.198.174.192",
	}
	for _, s := range public {
		if IsSpecialPurpose(MustAddr(s)) {
			t.Errorf("IsSpecialPurpose(%s) = true, want false", s)
		}
	}
	if !IsSpecialPurpose(netip.Addr{}) {
		t.Error("zero Addr should be special")
	}
	if !IsSpecialPurpose(netip.AddrFrom16(MustAddr("::ffff:8.8.8.8").As16())) {
		t.Error("4-in-6 mapped address should be special")
	}
}

func TestSpecialPurposePrefixesIsCopy(t *testing.T) {
	a := SpecialPurposePrefixes()
	a[0] = MustPrefix("1.2.3.0/24")
	b := SpecialPurposePrefixes()
	if b[0] == a[0] {
		t.Error("SpecialPurposePrefixes returned shared backing storage")
	}
}

func TestComparePrefixesOrdering(t *testing.T) {
	in := []netip.Prefix{
		MustPrefix("2001:db8::/32"),
		MustPrefix("10.0.0.0/8"),
		MustPrefix("10.0.0.0/16"),
		MustPrefix("9.0.0.0/8"),
		MustPrefix("2001:db8::/48"),
	}
	sort.Slice(in, func(i, j int) bool { return ComparePrefixes(in[i], in[j]) < 0 })
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16", "2001:db8::/32", "2001:db8::/48"}
	for i, w := range want {
		if in[i].String() != w {
			t.Fatalf("sorted[%d] = %s, want %s", i, in[i], w)
		}
	}
}

// Property: Covers is reflexive on canonical prefixes and antisymmetric
// for distinct ones of the same family.
func TestCoversProperties(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	gen := func() netip.Prefix {
		var b [4]byte
		rnd.Read(b[:])
		bits := rnd.Intn(33)
		return netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
	}
	for i := 0; i < 500; i++ {
		p, q := gen(), gen()
		if !Covers(p, p) {
			t.Fatalf("Covers(%v, %v) not reflexive", p, p)
		}
		if p != q && Covers(p, q) && Covers(q, p) {
			t.Fatalf("Covers antisymmetry violated for %v and %v", p, q)
		}
		// Covers must agree with the netip definition.
		want := p.Bits() <= q.Bits() && p.Contains(q.Addr())
		if Covers(p, q) != want {
			t.Fatalf("Covers(%v, %v) = %v, want %v", p, q, Covers(p, q), want)
		}
	}
}

// Property: Bit reconstructs the address.
func TestBitRoundTrip(t *testing.T) {
	f := func(b [4]byte) bool {
		a := netip.AddrFrom4(b)
		var out [4]byte
		for i := 0; i < 32; i++ {
			if Bit(a, i) == 1 {
				out[i/8] |= 1 << (7 - uint(i%8))
			}
		}
		return out == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	f6 := func(b [16]byte) bool {
		a := netip.AddrFrom16(b)
		var out [16]byte
		for i := 0; i < 128; i++ {
			if Bit(a, i) == 1 {
				out[i/8] |= 1 << (7 - uint(i%8))
			}
		}
		return out == b
	}
	if err := quick.Check(f6, nil); err != nil {
		t.Error(err)
	}
}
