package rib

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"ripki/internal/bgp"
	"ripki/internal/mrt"
	"ripki/internal/netutil"
)

var stamp = time.Date(2015, 7, 1, 8, 0, 0, 0, time.UTC)

func seq(asns ...uint32) []bgp.Segment {
	return []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: asns}}
}

func newTable(t *testing.T) (*Table, uint16, uint16) {
	t.Helper()
	tb := New()
	p0 := tb.AddPeer(mrt.Peer{BGPID: netutil.MustAddr("10.0.0.1"), Addr: netutil.MustAddr("10.0.0.1"), ASN: 3333})
	p1 := tb.AddPeer(mrt.Peer{BGPID: netutil.MustAddr("10.0.0.2"), Addr: netutil.MustAddr("2001:db8::2"), ASN: 196615})
	return tb, p0, p1
}

func TestInsertAndQueries(t *testing.T) {
	tb, p0, p1 := newTable(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tb.Insert(Route{Prefix: netutil.MustPrefix("193.0.0.0/16"), PeerIndex: p0, Path: seq(3333, 680), NextHop: netutil.MustAddr("10.0.0.1"), Originated: stamp}))
	must(tb.Insert(Route{Prefix: netutil.MustPrefix("193.0.6.0/24"), PeerIndex: p0, Path: seq(3333, 680, 25152), NextHop: netutil.MustAddr("10.0.0.1"), Originated: stamp}))
	must(tb.Insert(Route{Prefix: netutil.MustPrefix("193.0.6.0/24"), PeerIndex: p1, Path: seq(196615, 25152), NextHop: netutil.MustAddr("10.0.0.2"), Originated: stamp}))

	if tb.Len() != 2 || tb.Routes() != 3 {
		t.Fatalf("Len/Routes = %d/%d, want 2/3", tb.Len(), tb.Routes())
	}
	addr := netutil.MustAddr("193.0.6.139")
	cov := tb.Covering(addr)
	if len(cov) != 2 || cov[0].String() != "193.0.0.0/16" || cov[1].String() != "193.0.6.0/24" {
		t.Fatalf("Covering = %v", cov)
	}
	if !tb.Reachable(addr) {
		t.Error("Reachable = false")
	}
	if tb.Reachable(netutil.MustAddr("8.8.8.8")) {
		t.Error("unrouted address reported reachable")
	}
	pairs := tb.OriginPairs(addr)
	want := []PrefixOrigin{
		{netutil.MustPrefix("193.0.0.0/16"), 680},
		{netutil.MustPrefix("193.0.6.0/24"), 25152},
	}
	if len(pairs) != 2 || pairs[0] != want[0] || pairs[1] != want[1] {
		t.Fatalf("OriginPairs = %v, want %v", pairs, want)
	}
}

func TestOriginPairsExcludesASSet(t *testing.T) {
	tb, p0, p1 := newTable(t)
	tb.Insert(Route{Prefix: netutil.MustPrefix("10.0.0.0/8"), PeerIndex: p0, Path: []bgp.Segment{
		{Type: bgp.SegmentSequence, ASNs: []uint32{3333}},
		{Type: bgp.SegmentSet, ASNs: []uint32{1, 2}},
	}, NextHop: netutil.MustAddr("10.0.0.1")})
	if got := tb.OriginPairs(netutil.MustAddr("10.1.2.3")); len(got) != 0 {
		t.Fatalf("AS_SET route produced origin pairs: %v", got)
	}
	// But the prefix is still "reachable" (announced).
	if !tb.Reachable(netutil.MustAddr("10.1.2.3")) {
		t.Error("AS_SET route not counted as reachable")
	}
	// A second peer with a clean path yields exactly one pair.
	tb.Insert(Route{Prefix: netutil.MustPrefix("10.0.0.0/8"), PeerIndex: p1, Path: seq(196615, 7), NextHop: netutil.MustAddr("10.0.0.2")})
	got := tb.OriginPairs(netutil.MustAddr("10.1.2.3"))
	if len(got) != 1 || got[0].Origin != 7 {
		t.Fatalf("OriginPairs = %v", got)
	}
}

func TestOriginPairsDeduplicates(t *testing.T) {
	tb, p0, p1 := newTable(t)
	// Two peers, same origin.
	tb.Insert(Route{Prefix: netutil.MustPrefix("10.0.0.0/8"), PeerIndex: p0, Path: seq(3333, 7), NextHop: netutil.MustAddr("10.0.0.1")})
	tb.Insert(Route{Prefix: netutil.MustPrefix("10.0.0.0/8"), PeerIndex: p1, Path: seq(196615, 9, 7), NextHop: netutil.MustAddr("10.0.0.2")})
	got := tb.OriginPairs(netutil.MustAddr("10.0.0.1"))
	if len(got) != 1 || got[0].Origin != 7 {
		t.Fatalf("OriginPairs = %v, want single AS7 entry", got)
	}
}

func TestMOASVisible(t *testing.T) {
	tb, p0, p1 := newTable(t)
	// Multi-origin AS conflict: two peers see different origins.
	tb.Insert(Route{Prefix: netutil.MustPrefix("10.0.0.0/8"), PeerIndex: p0, Path: seq(3333, 7), NextHop: netutil.MustAddr("10.0.0.1")})
	tb.Insert(Route{Prefix: netutil.MustPrefix("10.0.0.0/8"), PeerIndex: p1, Path: seq(196615, 8), NextHop: netutil.MustAddr("10.0.0.2")})
	got := tb.OriginPairs(netutil.MustAddr("10.0.0.1"))
	if len(got) != 2 {
		t.Fatalf("MOAS OriginPairs = %v, want 2", got)
	}
}

func TestWithdraw(t *testing.T) {
	tb, p0, p1 := newTable(t)
	pfx := netutil.MustPrefix("10.0.0.0/8")
	tb.Insert(Route{Prefix: pfx, PeerIndex: p0, Path: seq(7), NextHop: netutil.MustAddr("10.0.0.1")})
	tb.Insert(Route{Prefix: pfx, PeerIndex: p1, Path: seq(8), NextHop: netutil.MustAddr("10.0.0.2")})
	if !tb.Withdraw(p0, pfx) {
		t.Fatal("Withdraw returned false")
	}
	if tb.Withdraw(p0, pfx) {
		t.Fatal("double Withdraw returned true")
	}
	if tb.Len() != 1 || tb.Routes() != 1 {
		t.Fatalf("Len/Routes = %d/%d", tb.Len(), tb.Routes())
	}
	if !tb.Withdraw(p1, pfx) {
		t.Fatal("second Withdraw failed")
	}
	if tb.Len() != 0 || tb.Reachable(netutil.MustAddr("10.0.0.1")) {
		t.Error("prefix still present after full withdrawal")
	}
}

func TestInsertValidation(t *testing.T) {
	tb, _, _ := newTable(t)
	if err := tb.Insert(Route{Prefix: netip.Prefix{}, PeerIndex: 0}); err == nil {
		t.Error("invalid prefix accepted")
	}
	if err := tb.Insert(Route{Prefix: netutil.MustPrefix("10.0.0.0/8"), PeerIndex: 99}); err == nil {
		t.Error("unknown peer accepted")
	}
}

func TestApplyEvents(t *testing.T) {
	tb := New()
	ev := bgp.RouteEvent{
		PeerAS: 3333, PeerID: netutil.MustAddr("10.0.0.1"),
		Prefix: netutil.MustPrefix("193.0.0.0/16"),
		Path:   seq(3333, 680), NextHop: netutil.MustAddr("10.0.0.1"),
	}
	if err := tb.Apply(ev); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatal("route not applied")
	}
	// Withdraw via event.
	if err := tb.Apply(bgp.RouteEvent{PeerAS: 3333, PeerID: netutil.MustAddr("10.0.0.1"), Prefix: netutil.MustPrefix("193.0.0.0/16"), Withdraw: true}); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 0 {
		t.Fatal("route not withdrawn")
	}
}

func TestMRTRoundTrip(t *testing.T) {
	tb, p0, p1 := newTable(t)
	tb.Insert(Route{Prefix: netutil.MustPrefix("193.0.0.0/16"), PeerIndex: p0, Path: seq(3333, 680), NextHop: netutil.MustAddr("10.0.0.1"), Originated: stamp})
	tb.Insert(Route{Prefix: netutil.MustPrefix("193.0.6.0/24"), PeerIndex: p1, Path: seq(196615, 25152), NextHop: netutil.MustAddr("10.0.0.2"), Originated: stamp})
	tb.Insert(Route{Prefix: netutil.MustPrefix("2001:67c:2e8::/48"), PeerIndex: p1, Path: seq(196615, 680), NextHop: netutil.MustAddr("2001:db8::2"), Originated: stamp})

	var buf bytes.Buffer
	if err := tb.DumpMRT(&buf, netutil.MustAddr("193.0.4.28"), "rrc00", stamp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tb.Len() || got.Routes() != tb.Routes() {
		t.Fatalf("reloaded Len/Routes = %d/%d, want %d/%d", got.Len(), got.Routes(), tb.Len(), tb.Routes())
	}
	pairs := got.OriginPairs(netutil.MustAddr("193.0.6.99"))
	if len(pairs) != 2 || pairs[0].Origin != 680 || pairs[1].Origin != 25152 {
		t.Fatalf("reloaded OriginPairs = %v", pairs)
	}
	pairs6 := got.OriginPairs(netutil.MustAddr("2001:67c:2e8::80"))
	if len(pairs6) != 1 || pairs6[0].Origin != 680 {
		t.Fatalf("reloaded v6 OriginPairs = %v", pairs6)
	}
}

func TestWalkRoutesOrderAndStop(t *testing.T) {
	tb, p0, p1 := newTable(t)
	tb.Insert(Route{Prefix: netutil.MustPrefix("10.0.0.0/8"), PeerIndex: p1, Path: seq(1), NextHop: netutil.MustAddr("10.0.0.2")})
	tb.Insert(Route{Prefix: netutil.MustPrefix("10.0.0.0/8"), PeerIndex: p0, Path: seq(2), NextHop: netutil.MustAddr("10.0.0.1")})
	tb.Insert(Route{Prefix: netutil.MustPrefix("11.0.0.0/8"), PeerIndex: p0, Path: seq(3), NextHop: netutil.MustAddr("10.0.0.1")})
	var seen []Route
	tb.WalkRoutes(func(r Route) bool {
		seen = append(seen, r)
		return true
	})
	if len(seen) != 3 {
		t.Fatalf("walked %d routes", len(seen))
	}
	if seen[0].PeerIndex != p0 || seen[1].PeerIndex != p1 {
		t.Error("routes within a prefix not ordered by peer index")
	}
	n := 0
	tb.WalkRoutes(func(Route) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestSnapshotMutationSafe(t *testing.T) {
	tb := New()
	p0 := tb.AddPeer(mrt.Peer{BGPID: netutil.MustAddr("10.0.0.1"), ASN: 1})
	tb.Insert(Route{Prefix: netutil.MustPrefix("10.0.0.0/8"), PeerIndex: p0, Path: seq(1), NextHop: netutil.MustAddr("10.0.0.1")})
	tb.Insert(Route{Prefix: netutil.MustPrefix("11.0.0.0/8"), PeerIndex: p0, Path: seq(2), NextHop: netutil.MustAddr("10.0.0.1")})
	snap := tb.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d routes, want 2", len(snap))
	}
	// Mutating the table while iterating the snapshot must be safe —
	// this is exactly what Router.Revalidate does.
	for _, r := range snap {
		if !tb.Withdraw(r.PeerIndex, r.Prefix) {
			t.Errorf("withdraw %v failed", r.Prefix)
		}
	}
	if tb.Len() != 0 {
		t.Errorf("table not empty after withdrawing the snapshot: %d", tb.Len())
	}
	if len(tb.Snapshot()) != 0 {
		t.Error("snapshot of empty table not empty")
	}
}
