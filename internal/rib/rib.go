// Package rib implements a BGP Routing Information Base in the style of
// a route collector's view: every peer's path for every prefix.
//
// The measurement pipeline uses it for methodology step (3): "we take
// dumps of the active tables of the RIPE RIS route servers. For each IP
// address of a domain name, we extract all covering prefixes and derive
// the origin AS from the AS path (i.e., the right most ASN in the AS
// path). Entries with an AS_SET are excluded."
package rib

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"sync"
	"time"

	"ripki/internal/bgp"
	"ripki/internal/mrt"
	"ripki/internal/netutil"
	"ripki/internal/radix"
)

// Route is one peer's path to a prefix.
type Route struct {
	Prefix     netip.Prefix
	PeerIndex  uint16
	Path       []bgp.Segment
	NextHop    netip.Addr
	Originated time.Time
}

// PrefixOrigin is the unit of analysis in the paper: a routed prefix
// together with one origin AS observed for it.
type PrefixOrigin struct {
	Prefix netip.Prefix
	Origin uint32
}

// Table is a collector RIB. It is safe for concurrent use.
type Table struct {
	mu       sync.RWMutex
	peers    []mrt.Peer
	peerIdx  map[peerKey]uint16
	tree     radix.Tree[map[uint16]*Route]
	routes   int
	prefixes int
	hook     func(netip.Prefix)
}

type peerKey struct {
	asn uint32
	id  netip.Addr
}

// New creates an empty table.
func New() *Table {
	return &Table{peerIdx: make(map[peerKey]uint16)}
}

// AddPeer registers a collector peer and returns its index. Registering
// the same (ASN, BGP ID) again returns the existing index.
func (t *Table) AddPeer(p mrt.Peer) uint16 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addPeerLocked(p)
}

func (t *Table) addPeerLocked(p mrt.Peer) uint16 {
	k := peerKey{asn: p.ASN, id: p.BGPID}
	if i, ok := t.peerIdx[k]; ok {
		return i
	}
	i := uint16(len(t.peers))
	t.peers = append(t.peers, p)
	t.peerIdx[k] = i
	return i
}

// Peers returns a copy of the registered peer table.
func (t *Table) Peers() []mrt.Peer {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]mrt.Peer, len(t.peers))
	copy(out, t.peers)
	return out
}

// Len returns the number of distinct prefixes in the table.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.prefixes
}

// Routes returns the total number of (prefix, peer) paths.
func (t *Table) Routes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.routes
}

// SetMutationHook registers fn to be called with the canonical prefix
// of every route inserted or withdrawn (nil disables it). The hook runs
// with the table lock held, so it must not call back into the table;
// incremental measurement uses it to mark the domains whose addresses
// fall under a changed prefix as dirty.
func (t *Table) SetMutationHook(fn func(netip.Prefix)) {
	t.mu.Lock()
	t.hook = fn
	t.mu.Unlock()
}

// Insert stores or replaces the route from the given peer.
func (t *Table) Insert(r Route) error {
	cp, err := netutil.Canonical(r.Prefix)
	if err != nil {
		return fmt.Errorf("rib: %w", err)
	}
	r.Prefix = cp
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(r.PeerIndex) >= len(t.peers) {
		return fmt.Errorf("rib: unknown peer index %d", r.PeerIndex)
	}
	m, ok := t.tree.Lookup(cp)
	if !ok || m == nil {
		m = make(map[uint16]*Route, 2)
		if err := t.tree.Insert(cp, m); err != nil {
			return err
		}
		t.prefixes++
	}
	if _, exists := m[r.PeerIndex]; !exists {
		t.routes++
	}
	rr := r
	m[r.PeerIndex] = &rr
	if t.hook != nil {
		t.hook(cp)
	}
	return nil
}

// Withdraw removes the route for prefix from the given peer. It reports
// whether a route was removed.
func (t *Table) Withdraw(peer uint16, prefix netip.Prefix) bool {
	cp, err := netutil.Canonical(prefix)
	if err != nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.tree.Lookup(cp)
	if !ok || m == nil {
		return false
	}
	if _, exists := m[peer]; !exists {
		return false
	}
	delete(m, peer)
	t.routes--
	if len(m) == 0 {
		t.tree.Delete(cp)
		t.prefixes--
	}
	if t.hook != nil {
		t.hook(cp)
	}
	return true
}

// Apply ingests one collector route event (registering the peer as
// needed).
func (t *Table) Apply(ev bgp.RouteEvent) error {
	if ev.Withdraw {
		t.WithdrawEvent(ev)
		return nil
	}
	t.mu.Lock()
	idx := t.addPeerLocked(mrt.Peer{BGPID: ev.PeerID, Addr: ev.PeerID, ASN: ev.PeerAS})
	t.mu.Unlock()
	return t.Insert(Route{
		Prefix:    ev.Prefix,
		PeerIndex: idx,
		Path:      ev.Path,
		NextHop:   ev.NextHop,
	})
}

// WithdrawEvent removes the route named by a collector event
// (registering the peer as needed) and reports whether a route was
// actually removed — Apply's withdraw path, with the outcome exposed
// for callers that count drops.
func (t *Table) WithdrawEvent(ev bgp.RouteEvent) bool {
	t.mu.Lock()
	idx := t.addPeerLocked(mrt.Peer{BGPID: ev.PeerID, Addr: ev.PeerID, ASN: ev.PeerAS})
	t.mu.Unlock()
	return t.Withdraw(idx, ev.Prefix)
}

// Covering returns all routed prefixes containing addr, shortest first.
func (t *Table) Covering(addr netip.Addr) []netip.Prefix {
	t.mu.RLock()
	defer t.mu.RUnlock()
	entries := t.tree.Covering(addr, nil)
	out := make([]netip.Prefix, 0, len(entries))
	for _, e := range entries {
		if len(e.Value) > 0 {
			out = append(out, e.Prefix)
		}
	}
	return out
}

// Reachable reports whether at least one routed prefix covers addr —
// the paper's "reachable from our BGP vantage points".
func (t *Table) Reachable(addr netip.Addr) bool {
	return len(t.Covering(addr)) > 0
}

// OriginPairs returns every (covering prefix, origin AS) pair for addr,
// deduplicated, with AS_SET-terminated paths excluded. This is the
// paper's unit of measurement.
func (t *Table) OriginPairs(addr netip.Addr) []PrefixOrigin {
	t.mu.RLock()
	defer t.mu.RUnlock()
	entries := t.tree.Covering(addr, nil)
	var out []PrefixOrigin
	seen := make(map[PrefixOrigin]bool, 4)
	for _, e := range entries {
		for _, r := range e.Value {
			origin, ok := bgp.OriginAS(r.Path)
			if !ok {
				continue // AS_SET or empty path: excluded
			}
			po := PrefixOrigin{Prefix: e.Prefix, Origin: origin}
			if !seen[po] {
				seen[po] = true
				out = append(out, po)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c := netutil.ComparePrefixes(out[i].Prefix, out[j].Prefix); c != 0 {
			return c < 0
		}
		return out[i].Origin < out[j].Origin
	})
	return out
}

// Snapshot returns a copy of every route, grouped by prefix in lexical
// order (peers ascending within a prefix). Unlike WalkRoutes it holds no
// lock when it returns, so callers may mutate the table while iterating
// the result — the revalidation path depends on this.
func (t *Table) Snapshot() []Route {
	t.mu.RLock()
	out := make([]Route, 0, t.routes)
	t.mu.RUnlock()
	t.WalkRoutes(func(r Route) bool {
		out = append(out, r)
		return true
	})
	return out
}

// WalkRoutes visits every route, grouped by prefix in lexical order.
func (t *Table) WalkRoutes(fn func(Route) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.tree.Walk(func(p netip.Prefix, m map[uint16]*Route) bool {
		idxs := make([]int, 0, len(m))
		for i := range m {
			idxs = append(idxs, int(i))
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			if !fn(*m[uint16(i)]) {
				return false
			}
		}
		return true
	})
}

// DumpMRT writes the table as a TABLE_DUMP_V2 stream.
func (t *Table) DumpMRT(w io.Writer, collectorID netip.Addr, view string, stamp time.Time) error {
	mw := mrt.NewWriter(w, stamp)
	if err := mw.WritePeerIndexTable(collectorID, view, t.Peers()); err != nil {
		return err
	}
	var outer error
	t.mu.RLock()
	t.tree.Walk(func(p netip.Prefix, m map[uint16]*Route) bool {
		idxs := make([]int, 0, len(m))
		for i := range m {
			idxs = append(idxs, int(i))
		}
		sort.Ints(idxs)
		entries := make([]mrt.RIBEntry, 0, len(m))
		for _, i := range idxs {
			r := m[uint16(i)]
			entries = append(entries, mrt.RIBEntry{
				PeerIndex:  r.PeerIndex,
				Originated: r.Originated,
				Attrs: bgp.PathAttrs{
					Origin:  bgp.OriginIGP,
					ASPath:  r.Path,
					NextHop: r.NextHop,
				},
			})
		}
		if err := mw.WriteRIB(p, entries); err != nil {
			outer = err
			return false
		}
		return true
	})
	t.mu.RUnlock()
	if outer != nil {
		return outer
	}
	return mw.Flush()
}

// LoadMRT builds a table from a TABLE_DUMP_V2 stream.
func LoadMRT(r io.Reader) (*Table, error) {
	t := New()
	mr := mrt.NewReader(r)
	for {
		rec, err := mr.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		switch rr := rec.(type) {
		case *mrt.PeerIndexTable:
			for _, p := range rr.Peers {
				t.AddPeer(p)
			}
		case *mrt.RIBRecord:
			for _, e := range rr.Entries {
				if err := t.Insert(Route{
					Prefix:     rr.Prefix,
					PeerIndex:  e.PeerIndex,
					Path:       e.Attrs.ASPath,
					NextHop:    e.Attrs.NextHop,
					Originated: e.Originated,
				}); err != nil {
					return nil, err
				}
			}
		}
	}
}
