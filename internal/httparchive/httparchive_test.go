package httparchive

import "testing"

func newClassifier() *Classifier {
	return New(map[string][]string{
		"akamai":     {"edgesuite.wld", "edgekey.wld"},
		"cloudflare": {"cloudflarecdn.wld"},
	})
}

func TestMatchName(t *testing.T) {
	c := newClassifier()
	cases := []struct {
		name string
		cdn  string
		ok   bool
	}{
		{"a495.g.edgesuite.wld", "akamai", true},
		{"edgesuite.wld", "akamai", true},
		{"www.example.com.edgekey.wld", "akamai", true},
		{"x.cloudflarecdn.wld", "cloudflare", true},
		{"EdgeSuite.WLD.", "akamai", true}, // canonicalisation
		{"example.com", "", false},
		{"edgesuite.wld.evil.com", "", false}, // suffix must anchor at the end
		{"", "", false},
	}
	for _, tc := range cases {
		cdn, ok := c.MatchName(tc.name)
		if cdn != tc.cdn || ok != tc.ok {
			t.Errorf("MatchName(%q) = %q,%v want %q,%v", tc.name, cdn, ok, tc.cdn, tc.ok)
		}
	}
}

func TestClassifyChain(t *testing.T) {
	c := newClassifier()
	if cdn, ok := c.ClassifyChain([]string{"foo.example.net", "e1.a.edgesuite.wld"}); !ok || cdn != "akamai" {
		t.Errorf("ClassifyChain = %q,%v", cdn, ok)
	}
	if _, ok := c.ClassifyChain([]string{"foo.example.net"}); ok {
		t.Error("non-CDN chain matched")
	}
	if _, ok := c.ClassifyChain(nil); ok {
		t.Error("empty chain matched")
	}
}

func TestRankGate(t *testing.T) {
	c := newClassifier()
	chain := []string{"e1.a.edgesuite.wld"}
	if isCDN, covered := c.Classify(1, chain); !isCDN || !covered {
		t.Error("rank 1 not classified")
	}
	if isCDN, covered := c.Classify(DefaultLimit, chain); !isCDN || !covered {
		t.Error("rank at limit not classified")
	}
	if _, covered := c.Classify(DefaultLimit+1, chain); covered {
		t.Error("rank beyond limit covered")
	}
	if _, covered := c.Classify(0, chain); covered {
		t.Error("rank 0 covered")
	}
	c.Limit = 10
	if !c.Covers(10) || c.Covers(11) {
		t.Error("custom limit wrong")
	}
}
