// Package httparchive implements the independent CDN classifier the
// paper uses to confirm its CNAME-chain heuristic (§4.3): "HTTPArchive
// classifies the first 300k Alexa domains based on DNS pattern matching
// of CNAMEs, which is distinct from our test of DNS indirections."
//
// The classifier holds a curated map of CDN service-domain suffixes and
// marks a domain as CDN-hosted when any CNAME in its resolution chain
// falls under a known suffix — regardless of chain length, which is why
// it also catches single-CNAME deployments the indirection heuristic
// misses.
package httparchive

import (
	"strings"

	"ripki/internal/dns"
)

// DefaultLimit is how many top-ranked domains the HTTPArchive corpus
// covers (the paper: the first 300k).
const DefaultLimit = 300000

// Classifier matches CNAME targets against known CDN platform suffixes.
type Classifier struct {
	// Limit is the highest rank the classifier covers (DefaultLimit if
	// zero). Beyond it, Classify returns unknown.
	Limit int

	suffixes map[string]string // suffix → CDN name
}

// New builds a classifier from a CDN-name → service-suffix map (the
// shape webworld exports).
func New(suffixesByCDN map[string][]string) *Classifier {
	c := &Classifier{suffixes: make(map[string]string)}
	for cdn, sufs := range suffixesByCDN {
		for _, s := range sufs {
			c.suffixes[dns.CanonicalName(s)] = cdn
		}
	}
	return c
}

func (c *Classifier) limit() int {
	if c.Limit <= 0 {
		return DefaultLimit
	}
	return c.Limit
}

// Covers reports whether the classifier's corpus includes the rank.
func (c *Classifier) Covers(rank int) bool {
	return rank >= 1 && rank <= c.limit()
}

// MatchName returns the CDN owning name, if its suffix is known.
func (c *Classifier) MatchName(name string) (cdn string, ok bool) {
	name = dns.CanonicalName(name)
	for {
		if cdn, ok := c.suffixes[name]; ok {
			return cdn, true
		}
		i := strings.IndexByte(name, '.')
		if i < 0 {
			return "", false
		}
		name = name[i+1:]
	}
}

// ClassifyChain inspects a CNAME chain and returns the first matching
// CDN. ok is false when no element matches.
func (c *Classifier) ClassifyChain(chain []string) (cdn string, ok bool) {
	for _, name := range chain {
		if cdn, ok := c.MatchName(name); ok {
			return cdn, true
		}
	}
	return "", false
}

// Classify combines the rank gate and the chain match the way the
// HTTPArchive comparison in Figure 3 uses it: (isCDN, whether the rank
// is inside the corpus at all).
func (c *Classifier) Classify(rank int, chain []string) (isCDN, covered bool) {
	if !c.Covers(rank) {
		return false, false
	}
	_, ok := c.ClassifyChain(chain)
	return ok, true
}
