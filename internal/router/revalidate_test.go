package router

import (
	"net/netip"
	"testing"

	"ripki/internal/bgp"
	"ripki/internal/rpki/vrp"
)

// swapSource lets the test replace the router's VRP view mid-flight,
// the way a relying party does after each cache refresh.
type swapSource struct{ set *vrp.Set }

func (s *swapSource) Set() *vrp.Set { return s.set }

func revMustSet(t *testing.T, vs ...vrp.VRP) *vrp.Set {
	t.Helper()
	s, err := vrp.FromVRPs(vs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func revAnnounce(t *testing.T, r *Router, prefix string, origin uint32) Decision {
	t.Helper()
	d, err := r.Process(bgp.RouteEvent{
		PeerAS:  64500,
		PeerID:  netip.MustParseAddr("10.0.0.1"),
		Prefix:  netip.MustParsePrefix(prefix),
		Path:    []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: []uint32{64500, origin}}},
		NextHop: netip.MustParseAddr("10.0.0.1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRevalidateDropsNewlyInvalid is the hijack-window mechanism: a
// route accepted as NotFound must be withdrawn once a later-issued ROA
// turns it Invalid.
func TestRevalidateDropsNewlyInvalid(t *testing.T) {
	src := &swapSource{set: vrp.NewSet()}
	r := NewWithPolicy(src, PolicyDropInvalid)

	// Legit aggregate and a hijacked more-specific, both NotFound now.
	if d := revAnnounce(t, r, "203.0.0.0/20", 65001); !d.Accepted || d.State != vrp.NotFound {
		t.Fatalf("aggregate: %+v", d)
	}
	if d := revAnnounce(t, r, "203.0.4.0/22", 65551); !d.Accepted {
		t.Fatalf("hijack rejected early: %+v", d)
	}
	victim := netip.MustParseAddr("203.0.4.7")
	if po, ok := r.Forward(victim); !ok || po.Origin != 65551 {
		t.Fatalf("pre-ROA forward = %+v, %v (want hijacker)", po, ok)
	}

	// The emergency ROA arrives at the RP.
	src.set = revMustSet(t, vrp.VRP{Prefix: netip.MustParsePrefix("203.0.0.0/20"), MaxLength: 20, ASN: 65001})
	res := r.Revalidate()
	if res.Routes != 2 || res.Valid != 1 || res.Invalid != 1 || res.Dropped != 1 {
		t.Errorf("revalidation = %+v", res)
	}
	if po, ok := r.Forward(victim); !ok || po.Origin != 65001 {
		t.Errorf("post-ROA forward = %+v, %v (want legit origin)", po, ok)
	}

	// Revoking the ROA makes everything NotFound again — and the route
	// dropped as Invalid returns from the Adj-RIB-In, as on a real
	// router re-applying policy after a cache update.
	src.set = vrp.NewSet()
	if res := r.Revalidate(); res.Dropped != 0 || res.NotFound != 2 {
		t.Errorf("after revoke: %+v", res)
	}
	if po, ok := r.Forward(victim); !ok || po.Origin != 65551 {
		t.Errorf("post-revoke forward = %+v, %v (hijack should be re-installed)", po, ok)
	}
	if r.Table().Len() != 2 {
		t.Errorf("dropped route not restored: %d prefixes", r.Table().Len())
	}
}

// TestRevalidateWithdrawnRouteStaysGone: a route the peer withdrew must
// not resurrect from the Adj-RIB-In on revalidation.
func TestRevalidateWithdrawnRouteStaysGone(t *testing.T) {
	src := &swapSource{set: vrp.NewSet()}
	r := NewWithPolicy(src, PolicyDropInvalid)
	revAnnounce(t, r, "203.0.0.0/20", 65001)
	revAnnounce(t, r, "203.0.4.0/22", 65551)
	if _, err := r.Process(bgp.RouteEvent{
		PeerAS: 64500, PeerID: netip.MustParseAddr("10.0.0.1"),
		Prefix: netip.MustParsePrefix("203.0.4.0/22"), Withdraw: true,
	}); err != nil {
		t.Fatal(err)
	}
	if res := r.Revalidate(); res.Routes != 1 {
		t.Errorf("revalidated %d routes, want 1 (withdrawn route must leave the Adj-RIB-In)", res.Routes)
	}
	if r.Table().Len() != 1 {
		t.Errorf("table has %d prefixes, want 1", r.Table().Len())
	}
}

// TestRevalidatePreferValid rebuilds depreference marks instead of
// dropping.
func TestRevalidatePreferValid(t *testing.T) {
	src := &swapSource{set: vrp.NewSet()}
	r := NewWithPolicy(src, PolicyPreferValid)
	revAnnounce(t, r, "203.0.0.0/20", 65001)
	revAnnounce(t, r, "203.0.4.0/22", 65551)
	victim := netip.MustParseAddr("203.0.4.7")

	src.set = revMustSet(t, vrp.VRP{Prefix: netip.MustParsePrefix("203.0.0.0/20"), MaxLength: 20, ASN: 65001})
	res := r.Revalidate()
	if res.Dropped != 0 || res.Deprefered != 1 {
		t.Errorf("revalidation = %+v", res)
	}
	// The hijacked more-specific is still installed but deprefered: the
	// valid covering route wins.
	if po, ok := r.Forward(victim); !ok || po.Origin != 65001 {
		t.Errorf("forward = %+v, %v (want legit origin)", po, ok)
	}
	if r.Table().Len() != 2 {
		t.Errorf("prefer-valid dropped a route: %d prefixes", r.Table().Len())
	}
}

// TestRevalidateAcceptAll only tallies; the RIB is untouched.
func TestRevalidateAcceptAll(t *testing.T) {
	src := &swapSource{set: vrp.NewSet()}
	r := NewWithPolicy(src, PolicyAcceptAll)
	revAnnounce(t, r, "203.0.0.0/20", 65001)
	revAnnounce(t, r, "203.0.4.0/22", 65551)
	src.set = revMustSet(t, vrp.VRP{Prefix: netip.MustParsePrefix("203.0.0.0/20"), MaxLength: 20, ASN: 65001})
	res := r.Revalidate()
	if res.Invalid != 1 || res.Dropped != 0 {
		t.Errorf("revalidation = %+v", res)
	}
	if r.Table().Len() != 2 {
		t.Errorf("accept-all mutated the RIB: %d prefixes", r.Table().Len())
	}
}
