// Package router implements an RPKI-enabled BGP router's decision
// process: prefix origin validation applied as route policy (RFC 6811 +
// the RFC 7115 guidance of rejecting invalid routes).
//
// The paper's attacker model (§2.3) is a malicious BGP speaker
// advertising a website's prefix to blackhole or intercept its traffic.
// "Rejecting an invalid route announcement helps to suppress incorrectly
// announced prefixes, thus preventing route hijacking of websites" —
// this package is where that rejection happens in the reproduction.
package router

import (
	"fmt"
	"net/netip"
	"sync"

	"ripki/internal/bgp"
	"ripki/internal/radix"
	"ripki/internal/rib"
	"ripki/internal/rpki/vrp"
)

// Policy selects how origin validation influences route handling
// (RFC 7115 discusses both).
type Policy uint8

const (
	// PolicyAcceptAll ignores validation outcomes — the unprotected
	// configuration most networks ran in 2015.
	PolicyAcceptAll Policy = iota
	// PolicyDropInvalid rejects invalid routes outright.
	PolicyDropInvalid
	// PolicyPreferValid accepts everything but deprefers invalid
	// routes: an invalid more-specific still loses to a valid or
	// not-found less-specific covering route. A softer rollout stance;
	// the hijack ablation shows why it is weaker than dropping.
	PolicyPreferValid
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyAcceptAll:
		return "accept-all"
	case PolicyDropInvalid:
		return "drop-invalid"
	case PolicyPreferValid:
		return "prefer-valid"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Decision is the policy outcome for one route.
type Decision struct {
	// State is the origin-validation outcome.
	State vrp.State
	// Accepted is false when policy dropped the route.
	Accepted bool
	// Deprefered is true when PolicyPreferValid kept the route but
	// marked it less attractive.
	Deprefered bool
}

// VRPSource yields the current validated payload set; *vrp.Set itself
// and the RTR client both satisfy it.
type VRPSource interface {
	Set() *vrp.Set
}

// StaticVRPs adapts a fixed set to VRPSource.
type StaticVRPs struct{ VRPs *vrp.Set }

// Set returns the fixed set.
func (s StaticVRPs) Set() *vrp.Set { return s.VRPs }

// Router is an origin-validating BGP route processor feeding a local
// RIB.
type Router struct {
	// DropInvalid enables the protective policy. When false the router
	// accepts everything (the common, unprotected configuration the
	// paper laments). Kept for API compatibility; Policy supersedes it.
	DropInvalid bool
	// Policy selects the validation stance; the zero value defers to
	// DropInvalid for backward compatibility.
	Policy Policy

	source VRPSource
	table  *rib.Table

	mu         sync.Mutex
	decided    map[vrp.State]int
	deprefered map[rib.PrefixOrigin]bool
	// adjIn retains every received (non-withdrawn) announcement — the
	// Adj-RIB-In. Policy filters what reaches the local RIB, but
	// revalidation must reconsider everything ever received: a route
	// dropped as Invalid comes back once the offending ROA is revoked,
	// exactly as RFC 6811 routers re-apply policy to Adj-RIB-In.
	adjIn map[adjKey]bgp.RouteEvent
	// adjIdx indexes adjIn keys by announced prefix so revalidation
	// scoped to a VRP delta finds the affected announcements without
	// scanning the full Adj-RIB-In: a VRP change at prefix Q can only
	// flip routes announced at Q or below (RFC 6811 consults covering
	// VRPs), and those are exactly the subtree of Q here.
	adjIdx radix.Tree[map[adjKey]struct{}]
}

// adjKey identifies one peer's announcement of one prefix.
type adjKey struct {
	prefix netip.Prefix
	peerAS uint32
	peerID netip.Addr
}

// New creates a router fed by the given VRP source.
func New(source VRPSource, dropInvalid bool) *Router {
	policy := PolicyAcceptAll
	if dropInvalid {
		policy = PolicyDropInvalid
	}
	return NewWithPolicy(source, policy)
}

// NewWithPolicy creates a router with an explicit validation policy.
func NewWithPolicy(source VRPSource, policy Policy) *Router {
	return &Router{
		DropInvalid: policy == PolicyDropInvalid,
		Policy:      policy,
		source:      source,
		table:       rib.New(),
		decided:     make(map[vrp.State]int),
		deprefered:  make(map[rib.PrefixOrigin]bool),
		adjIn:       make(map[adjKey]bgp.RouteEvent),
	}
}

// effectivePolicy resolves the Policy/DropInvalid compatibility split.
func (r *Router) effectivePolicy() Policy {
	if r.Policy == PolicyAcceptAll && r.DropInvalid {
		return PolicyDropInvalid
	}
	return r.Policy
}

// validateRoute classifies one announcement against a VRP set under a
// policy: the origin-validation outcome, the extracted origin, and
// whether the path had a usable origin. AS_SET paths cannot be
// validated; deployed policy treats them as invalid (their use is
// deprecated for exactly this reason).
func validateRoute(set *vrp.Set, prefix netip.Prefix, path []bgp.Segment, policy Policy) (state vrp.State, origin uint32, ok bool) {
	origin, ok = bgp.OriginAS(path)
	if ok {
		return set.Validate(prefix, origin), origin, true
	}
	if policy != PolicyAcceptAll {
		return vrp.Invalid, 0, false
	}
	return vrp.NotFound, 0, false
}

// Table exposes the router's local RIB.
func (r *Router) Table() *rib.Table { return r.table }

// Process applies origin validation and policy to one route event and
// updates the local RIB accordingly.
func (r *Router) Process(ev bgp.RouteEvent) (Decision, error) {
	key := adjKey{prefix: ev.Prefix.Masked(), peerAS: ev.PeerAS, peerID: ev.PeerID}
	if ev.Withdraw {
		r.mu.Lock()
		delete(r.adjIn, key)
		if m, ok := r.adjIdx.Lookup(key.prefix); ok {
			delete(m, key)
			if len(m) == 0 {
				r.adjIdx.Delete(key.prefix)
			}
		}
		r.mu.Unlock()
		if err := r.table.Apply(ev); err != nil {
			return Decision{}, err
		}
		return Decision{State: vrp.NotFound, Accepted: true}, nil
	}
	policy := r.effectivePolicy()
	state, origin, ok := validateRoute(r.source.Set(), ev.Prefix, ev.Path, policy)
	r.mu.Lock()
	r.decided[state]++
	r.adjIn[key] = ev
	if m, ok := r.adjIdx.Lookup(key.prefix); ok {
		m[key] = struct{}{}
	} else {
		// adjKey prefixes are masked, so Insert cannot fail.
		_ = r.adjIdx.Insert(key.prefix, map[adjKey]struct{}{key: {}})
	}
	r.mu.Unlock()
	if policy == PolicyDropInvalid && state == vrp.Invalid {
		return Decision{State: state, Accepted: false}, nil
	}
	if err := r.table.Apply(ev); err != nil {
		return Decision{State: state}, err
	}
	d := Decision{State: state, Accepted: true}
	if policy == PolicyPreferValid && state == vrp.Invalid && ok {
		d.Deprefered = true
		r.mu.Lock()
		r.deprefered[rib.PrefixOrigin{Prefix: ev.Prefix.Masked(), Origin: origin}] = true
		r.mu.Unlock()
	}
	return d, nil
}

// RevalidationResult tallies one Revalidate pass.
type RevalidationResult struct {
	// Routes is the number of routes examined.
	Routes int
	// Valid/Invalid/NotFound count the fresh validation outcomes.
	Valid, Invalid, NotFound int
	// Dropped is how many now-invalid routes PolicyDropInvalid removed
	// from the local RIB.
	Dropped int
	// Deprefered is how many routes PolicyPreferValid now marks less
	// attractive.
	Deprefered int
}

// Revalidate re-applies origin validation and policy to every route in
// the Adj-RIB-In against the source's *current* VRP set. Real routers
// do this whenever their RTR cache delivers new payloads: a route
// accepted as NotFound yesterday may be Invalid today (a ROA was
// issued — the hijack-window case), and a route dropped as Invalid
// comes back once the offending ROA is revoked. Under PolicyDropInvalid
// now-invalid routes are withdrawn from the local RIB and everything
// else is (re)installed; under PolicyPreferValid the depreference marks
// are rebuilt from scratch.
func (r *Router) Revalidate() RevalidationResult {
	policy := r.effectivePolicy()
	set := r.source.Set()
	r.mu.Lock()
	events := make([]bgp.RouteEvent, 0, len(r.adjIn))
	for _, ev := range r.adjIn {
		events = append(events, ev)
	}
	r.mu.Unlock()

	var res RevalidationResult
	fresh := make(map[rib.PrefixOrigin]bool)
	for _, ev := range events {
		res.Routes++
		state, origin, ok := validateRoute(set, ev.Prefix, ev.Path, policy)
		switch state {
		case vrp.Valid:
			res.Valid++
		case vrp.Invalid:
			res.Invalid++
		default:
			res.NotFound++
		}
		if policy == PolicyDropInvalid && state == vrp.Invalid {
			if r.table.WithdrawEvent(ev) {
				res.Dropped++
			}
			continue
		}
		// (Re)install: routes previously dropped under a now-revoked ROA
		// return to the local RIB; installed routes are replaced in
		// place.
		if err := r.table.Apply(ev); err != nil {
			continue
		}
		if policy == PolicyPreferValid && state == vrp.Invalid && ok {
			fresh[rib.PrefixOrigin{Prefix: ev.Prefix.Masked(), Origin: origin}] = true
		}
	}
	if policy == PolicyPreferValid {
		r.mu.Lock()
		r.deprefered = fresh
		r.mu.Unlock()
		res.Deprefered = len(fresh)
	}
	return res
}

// RevalidateAffected re-applies origin validation and policy to exactly
// the Adj-RIB-In routes whose validation outcome may have changed after
// a VRP delta: those announced at one of the changed prefixes or below
// (RFC 6811 validates a route against its covering VRPs, so a VRP
// change at Q can only flip routes at Q or more-specific). For those
// routes the outcome — local-RIB content, drop count, depreference
// marks — matches a full Revalidate; unaffected routes cannot change
// state and are left untouched. The tallies cover only the routes
// examined, and under PolicyPreferValid a mark whose last announcing
// route has since been withdrawn persists until the next full
// Revalidate (such a mark names an unrouted pair, so Forward never sees
// it).
func (r *Router) RevalidateAffected(changed []netip.Prefix) RevalidationResult {
	policy := r.effectivePolicy()
	set := r.source.Set()
	r.mu.Lock()
	var events []bgp.RouteEvent
	seen := make(map[adjKey]struct{})
	var entries []radix.Entry[map[adjKey]struct{}]
	for _, p := range changed {
		entries = r.adjIdx.Subtree(p, entries[:0])
		for _, e := range entries {
			for k := range e.Value {
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				events = append(events, r.adjIn[k])
			}
		}
	}
	r.mu.Unlock()

	var res RevalidationResult
	for _, ev := range events {
		res.Routes++
		state, origin, ok := validateRoute(set, ev.Prefix, ev.Path, policy)
		switch state {
		case vrp.Valid:
			res.Valid++
		case vrp.Invalid:
			res.Invalid++
		default:
			res.NotFound++
		}
		if policy == PolicyDropInvalid && state == vrp.Invalid {
			if r.table.WithdrawEvent(ev) {
				res.Dropped++
			}
			continue
		}
		if err := r.table.Apply(ev); err != nil {
			continue
		}
		if policy == PolicyPreferValid && ok {
			key := rib.PrefixOrigin{Prefix: ev.Prefix.Masked(), Origin: origin}
			r.mu.Lock()
			if state == vrp.Invalid {
				r.deprefered[key] = true
			} else {
				delete(r.deprefered, key)
			}
			r.mu.Unlock()
		}
	}
	if policy == PolicyPreferValid {
		r.mu.Lock()
		res.Deprefered = len(r.deprefered)
		r.mu.Unlock()
	}
	return res
}

// Forward resolves where traffic to addr goes under the router's
// policy: the preferred (prefix, origin) after depreferencing. ok is
// false when the address is unrouted.
func (r *Router) Forward(addr netip.Addr) (rib.PrefixOrigin, bool) {
	pairs := r.table.OriginPairs(addr)
	if len(pairs) == 0 {
		return rib.PrefixOrigin{}, false
	}
	// Longest match wins among non-deprefered routes; deprefered ones
	// are used only if nothing else covers the address.
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(pairs) - 1; i >= 0; i-- {
		if !r.deprefered[pairs[i]] {
			return pairs[i], true
		}
	}
	return pairs[len(pairs)-1], true
}

// Counts returns how many processed routes fell into each state.
func (r *Router) Counts() map[vrp.State]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[vrp.State]int, len(r.decided))
	for k, v := range r.decided {
		out[k] = v
	}
	return out
}

// String summarises the router.
func (r *Router) String() string {
	return fmt.Sprintf("router(%s, %d prefixes)", r.effectivePolicy(), r.table.Len())
}
