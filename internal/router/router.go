// Package router implements an RPKI-enabled BGP router's decision
// process: prefix origin validation applied as route policy (RFC 6811 +
// the RFC 7115 guidance of rejecting invalid routes).
//
// The paper's attacker model (§2.3) is a malicious BGP speaker
// advertising a website's prefix to blackhole or intercept its traffic.
// "Rejecting an invalid route announcement helps to suppress incorrectly
// announced prefixes, thus preventing route hijacking of websites" —
// this package is where that rejection happens in the reproduction.
package router

import (
	"fmt"
	"net/netip"
	"sync"

	"ripki/internal/bgp"
	"ripki/internal/rib"
	"ripki/internal/rpki/vrp"
)

// Policy selects how origin validation influences route handling
// (RFC 7115 discusses both).
type Policy uint8

const (
	// PolicyAcceptAll ignores validation outcomes — the unprotected
	// configuration most networks ran in 2015.
	PolicyAcceptAll Policy = iota
	// PolicyDropInvalid rejects invalid routes outright.
	PolicyDropInvalid
	// PolicyPreferValid accepts everything but deprefers invalid
	// routes: an invalid more-specific still loses to a valid or
	// not-found less-specific covering route. A softer rollout stance;
	// the hijack ablation shows why it is weaker than dropping.
	PolicyPreferValid
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyAcceptAll:
		return "accept-all"
	case PolicyDropInvalid:
		return "drop-invalid"
	case PolicyPreferValid:
		return "prefer-valid"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Decision is the policy outcome for one route.
type Decision struct {
	// State is the origin-validation outcome.
	State vrp.State
	// Accepted is false when policy dropped the route.
	Accepted bool
	// Deprefered is true when PolicyPreferValid kept the route but
	// marked it less attractive.
	Deprefered bool
}

// VRPSource yields the current validated payload set; *vrp.Set itself
// and the RTR client both satisfy it.
type VRPSource interface {
	Set() *vrp.Set
}

// StaticVRPs adapts a fixed set to VRPSource.
type StaticVRPs struct{ VRPs *vrp.Set }

// Set returns the fixed set.
func (s StaticVRPs) Set() *vrp.Set { return s.VRPs }

// Router is an origin-validating BGP route processor feeding a local
// RIB.
type Router struct {
	// DropInvalid enables the protective policy. When false the router
	// accepts everything (the common, unprotected configuration the
	// paper laments). Kept for API compatibility; Policy supersedes it.
	DropInvalid bool
	// Policy selects the validation stance; the zero value defers to
	// DropInvalid for backward compatibility.
	Policy Policy

	source VRPSource
	table  *rib.Table

	mu         sync.Mutex
	decided    map[vrp.State]int
	deprefered map[rib.PrefixOrigin]bool
}

// New creates a router fed by the given VRP source.
func New(source VRPSource, dropInvalid bool) *Router {
	policy := PolicyAcceptAll
	if dropInvalid {
		policy = PolicyDropInvalid
	}
	return NewWithPolicy(source, policy)
}

// NewWithPolicy creates a router with an explicit validation policy.
func NewWithPolicy(source VRPSource, policy Policy) *Router {
	return &Router{
		DropInvalid: policy == PolicyDropInvalid,
		Policy:      policy,
		source:      source,
		table:       rib.New(),
		decided:     make(map[vrp.State]int),
		deprefered:  make(map[rib.PrefixOrigin]bool),
	}
}

// Table exposes the router's local RIB.
func (r *Router) Table() *rib.Table { return r.table }

// Process applies origin validation and policy to one route event and
// updates the local RIB accordingly.
func (r *Router) Process(ev bgp.RouteEvent) (Decision, error) {
	if ev.Withdraw {
		if err := r.table.Apply(ev); err != nil {
			return Decision{}, err
		}
		return Decision{State: vrp.NotFound, Accepted: true}, nil
	}
	policy := r.Policy
	if policy == PolicyAcceptAll && r.DropInvalid {
		policy = PolicyDropInvalid
	}
	origin, ok := bgp.OriginAS(ev.Path)
	state := vrp.NotFound
	if ok {
		state = r.source.Set().Validate(ev.Prefix, origin)
	} else if policy != PolicyAcceptAll {
		// AS_SET paths cannot be validated; deployed policy treats them
		// as invalid (their use is deprecated for exactly this reason).
		state = vrp.Invalid
	}
	r.mu.Lock()
	r.decided[state]++
	r.mu.Unlock()
	if policy == PolicyDropInvalid && state == vrp.Invalid {
		return Decision{State: state, Accepted: false}, nil
	}
	if err := r.table.Apply(ev); err != nil {
		return Decision{State: state}, err
	}
	d := Decision{State: state, Accepted: true}
	if policy == PolicyPreferValid && state == vrp.Invalid && ok {
		d.Deprefered = true
		r.mu.Lock()
		r.deprefered[rib.PrefixOrigin{Prefix: ev.Prefix.Masked(), Origin: origin}] = true
		r.mu.Unlock()
	}
	return d, nil
}

// Forward resolves where traffic to addr goes under the router's
// policy: the preferred (prefix, origin) after depreferencing. ok is
// false when the address is unrouted.
func (r *Router) Forward(addr netip.Addr) (rib.PrefixOrigin, bool) {
	pairs := r.table.OriginPairs(addr)
	if len(pairs) == 0 {
		return rib.PrefixOrigin{}, false
	}
	// Longest match wins among non-deprefered routes; deprefered ones
	// are used only if nothing else covers the address.
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(pairs) - 1; i >= 0; i-- {
		if !r.deprefered[pairs[i]] {
			return pairs[i], true
		}
	}
	return pairs[len(pairs)-1], true
}

// Counts returns how many processed routes fell into each state.
func (r *Router) Counts() map[vrp.State]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[vrp.State]int, len(r.decided))
	for k, v := range r.decided {
		out[k] = v
	}
	return out
}

// String summarises the router.
func (r *Router) String() string {
	policy := r.Policy
	if policy == PolicyAcceptAll && r.DropInvalid {
		policy = PolicyDropInvalid
	}
	return fmt.Sprintf("router(%s, %d prefixes)", policy, r.table.Len())
}
