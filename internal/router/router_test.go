package router

import (
	"testing"

	"ripki/internal/bgp"
	"ripki/internal/netutil"
	"ripki/internal/rpki/vrp"
)

func seq(asns ...uint32) []bgp.Segment {
	return []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: asns}}
}

func announce(prefix string, origin uint32) bgp.RouteEvent {
	return bgp.RouteEvent{
		PeerAS: 100, PeerID: netutil.MustAddr("10.0.0.1"),
		Prefix:  netutil.MustPrefix(prefix),
		Path:    seq(100, origin),
		NextHop: netutil.MustAddr("10.0.0.1"),
	}
}

func newVRPs(t *testing.T) *vrp.Set {
	t.Helper()
	s := vrp.NewSet()
	if err := s.Add(vrp.VRP{Prefix: netutil.MustPrefix("193.0.0.0/16"), MaxLength: 24, ASN: 3333}); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestHijackSuppression is the §2.3 attacker-model experiment in
// miniature: the legitimate route survives, the hijack does not.
func TestHijackSuppression(t *testing.T) {
	r := New(StaticVRPs{VRPs: newVRPs(t)}, true)

	// Legitimate announcement.
	d, err := r.Process(announce("193.0.6.0/24", 3333))
	if err != nil {
		t.Fatal(err)
	}
	if d.State != vrp.Valid || !d.Accepted {
		t.Fatalf("legitimate route: %+v", d)
	}

	// Sub-prefix hijack from the wrong origin.
	d, err = r.Process(announce("193.0.6.128/25", 666))
	if err != nil {
		t.Fatal(err)
	}
	if d.State != vrp.Invalid || d.Accepted {
		t.Fatalf("hijack not suppressed: %+v", d)
	}

	// The victim's address still resolves to the legitimate origin.
	pairs := r.Table().OriginPairs(netutil.MustAddr("193.0.6.139"))
	if len(pairs) != 1 || pairs[0].Origin != 3333 {
		t.Fatalf("RIB after hijack attempt: %v", pairs)
	}
}

func TestUnprotectedRouterAcceptsHijack(t *testing.T) {
	r := New(StaticVRPs{VRPs: newVRPs(t)}, false)
	if _, err := r.Process(announce("193.0.6.0/24", 3333)); err != nil {
		t.Fatal(err)
	}
	d, err := r.Process(announce("193.0.6.128/25", 666))
	if err != nil {
		t.Fatal(err)
	}
	if d.State != vrp.Invalid || !d.Accepted {
		t.Fatalf("unprotected router: %+v", d)
	}
	// Longest-prefix match now points the victim's address at the
	// attacker — the paper's traffic-stealing scenario.
	pairs := r.Table().OriginPairs(netutil.MustAddr("193.0.6.139"))
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	covering := r.Table().Covering(netutil.MustAddr("193.0.6.139"))
	if covering[len(covering)-1] != netutil.MustPrefix("193.0.6.128/25") {
		t.Errorf("longest match = %v, attacker did not win", covering)
	}
}

func TestNotFoundRoutesAccepted(t *testing.T) {
	r := New(StaticVRPs{VRPs: newVRPs(t)}, true)
	d, err := r.Process(announce("8.8.8.0/24", 15169))
	if err != nil {
		t.Fatal(err)
	}
	if d.State != vrp.NotFound || !d.Accepted {
		t.Fatalf("not-found route: %+v", d)
	}
}

func TestASSetPolicy(t *testing.T) {
	ev := bgp.RouteEvent{
		PeerAS: 100, PeerID: netutil.MustAddr("10.0.0.1"),
		Prefix: netutil.MustPrefix("9.0.0.0/8"),
		Path: []bgp.Segment{
			{Type: bgp.SegmentSequence, ASNs: []uint32{100}},
			{Type: bgp.SegmentSet, ASNs: []uint32{1, 2}},
		},
		NextHop: netutil.MustAddr("10.0.0.1"),
	}
	strict := New(StaticVRPs{VRPs: newVRPs(t)}, true)
	d, err := strict.Process(ev)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted {
		t.Error("strict router accepted AS_SET route")
	}
	lax := New(StaticVRPs{VRPs: newVRPs(t)}, false)
	d, err = lax.Process(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Error("lax router rejected AS_SET route")
	}
}

func TestWithdrawAlwaysProcessed(t *testing.T) {
	r := New(StaticVRPs{VRPs: newVRPs(t)}, true)
	r.Process(announce("193.0.6.0/24", 3333))
	wd := bgp.RouteEvent{
		PeerAS: 100, PeerID: netutil.MustAddr("10.0.0.1"),
		Prefix: netutil.MustPrefix("193.0.6.0/24"), Withdraw: true,
	}
	if _, err := r.Process(wd); err != nil {
		t.Fatal(err)
	}
	if r.Table().Len() != 0 {
		t.Error("withdraw not applied")
	}
}

func TestCounts(t *testing.T) {
	r := New(StaticVRPs{VRPs: newVRPs(t)}, true)
	r.Process(announce("193.0.6.0/24", 3333)) // valid
	r.Process(announce("193.0.7.0/24", 666))  // invalid
	r.Process(announce("8.8.8.0/24", 15169))  // not found
	c := r.Counts()
	if c[vrp.Valid] != 1 || c[vrp.Invalid] != 1 || c[vrp.NotFound] != 1 {
		t.Errorf("counts = %v", c)
	}
}
