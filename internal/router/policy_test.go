package router

import (
	"testing"

	"ripki/internal/netutil"
	"ripki/internal/rpki/vrp"
)

// TestPolicyAblation compares the three RFC 7115 stances against the
// same hijack: drop-invalid protects fully, prefer-valid protects as
// long as a legitimate covering route exists, accept-all loses.
func TestPolicyAblation(t *testing.T) {
	victim := netutil.MustAddr("193.0.6.139")
	legit := announce("193.0.6.0/24", 3333)
	hijack := announce("193.0.6.128/25", 666)

	cases := []struct {
		policy     Policy
		wantOrigin uint32
	}{
		{PolicyDropInvalid, 3333},
		{PolicyPreferValid, 3333},
		{PolicyAcceptAll, 666},
	}
	for _, c := range cases {
		r := NewWithPolicy(StaticVRPs{VRPs: newVRPs(t)}, c.policy)
		if _, err := r.Process(legit); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Process(hijack); err != nil {
			t.Fatal(err)
		}
		po, ok := r.Forward(victim)
		if !ok {
			t.Fatalf("%v: victim unrouted", c.policy)
		}
		if po.Origin != c.wantOrigin {
			t.Errorf("%v: traffic reaches AS%d, want AS%d", c.policy, po.Origin, c.wantOrigin)
		}
	}
}

// TestPreferValidWeakness shows why prefer-valid is weaker than
// drop-invalid: when the hijacked more-specific is the ONLY covering
// route (the victim's own prefix was withdrawn or never announced),
// prefer-valid still forwards to the attacker.
func TestPreferValidWeakness(t *testing.T) {
	victim := netutil.MustAddr("193.0.6.139")
	hijack := announce("193.0.6.128/25", 666)

	prefer := NewWithPolicy(StaticVRPs{VRPs: newVRPs(t)}, PolicyPreferValid)
	if _, err := prefer.Process(hijack); err != nil {
		t.Fatal(err)
	}
	po, ok := prefer.Forward(victim)
	if !ok || po.Origin != 666 {
		t.Errorf("prefer-valid without alternatives: %v %v", po, ok)
	}

	drop := NewWithPolicy(StaticVRPs{VRPs: newVRPs(t)}, PolicyDropInvalid)
	if _, err := drop.Process(hijack); err != nil {
		t.Fatal(err)
	}
	if _, ok := drop.Forward(victim); ok {
		t.Error("drop-invalid forwarded to a dropped route")
	}
}

func TestPreferValidDecisionFlags(t *testing.T) {
	r := NewWithPolicy(StaticVRPs{VRPs: newVRPs(t)}, PolicyPreferValid)
	d, err := r.Process(announce("193.0.7.0/24", 666)) // invalid
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted || !d.Deprefered || d.State != vrp.Invalid {
		t.Errorf("decision = %+v", d)
	}
	d, err = r.Process(announce("193.0.6.0/24", 3333)) // valid
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted || d.Deprefered {
		t.Errorf("valid decision = %+v", d)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyAcceptAll.String() != "accept-all" ||
		PolicyDropInvalid.String() != "drop-invalid" ||
		PolicyPreferValid.String() != "prefer-valid" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy name wrong")
	}
}

func TestForwardUnrouted(t *testing.T) {
	r := NewWithPolicy(StaticVRPs{VRPs: newVRPs(t)}, PolicyDropInvalid)
	if _, ok := r.Forward(netutil.MustAddr("8.8.8.8")); ok {
		t.Error("Forward on empty table returned a route")
	}
}
