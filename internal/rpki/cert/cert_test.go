package cert

import (
	"crypto/ecdsa"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"ripki/internal/netutil"
)

var (
	t0 = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	t1 = time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC)
	tv = time.Date(2015, 11, 16, 0, 0, 0, 0, time.UTC) // HotNets'15
)

func selfSigned(t *testing.T, subject string, res Resources) (*Certificate, *keyPair) {
	t.Helper()
	kp := newKeyPair(t)
	c, err := Issue(Template{
		SerialNumber: 1,
		Subject:      subject,
		NotBefore:    t0,
		NotAfter:     t1,
		IsCA:         true,
		Resources:    res,
		PublicKey:    &kp.key.PublicKey,
	}, subject, kp.key)
	if err != nil {
		t.Fatal(err)
	}
	return c, kp
}

type keyPair struct {
	key *ecdsa.PrivateKey
}

type prefixType = netip.Prefix

func TestSelfSignedVerify(t *testing.T) {
	ta, _ := selfSigned(t, "ta-ripe", AllResources())
	if err := ta.Verify(ta, VerifyOptions{Now: tv}); err != nil {
		t.Fatalf("self-signed verify: %v", err)
	}
}

func TestIssueAndVerifyChain(t *testing.T) {
	ta, taKey := selfSigned(t, "ta-ripe", AllResources())
	childKey := newKeyPair(t)
	child, err := Issue(Template{
		SerialNumber: 2,
		Subject:      "isp-1",
		NotBefore:    t0,
		NotAfter:     t1,
		IsCA:         true,
		Resources: Resources{
			Prefixes: netip2("193.0.0.0/16", "2001:db8::/32"),
			ASNs:     []ASRange{{Min: 3333, Max: 3333}},
		},
		PublicKey: &childKey.key.PublicKey,
	}, "ta-ripe", taKey.key)
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Verify(ta, VerifyOptions{Now: tv}); err != nil {
		t.Fatalf("child verify: %v", err)
	}
}

func TestVerifyRejectsExpired(t *testing.T) {
	ta, _ := selfSigned(t, "ta", AllResources())
	if err := ta.Verify(ta, VerifyOptions{Now: t1.Add(time.Hour)}); err == nil {
		t.Error("expired certificate verified")
	}
	if err := ta.Verify(ta, VerifyOptions{Now: t0.Add(-time.Hour)}); err == nil {
		t.Error("not-yet-valid certificate verified")
	}
}

func TestVerifyRejectsResourceEscalation(t *testing.T) {
	ta, taKey := selfSigned(t, "ta", Resources{
		Prefixes: netip2("10.0.0.0/8"),
		ASNs:     []ASRange{{Min: 100, Max: 200}},
	})
	childKey := newKeyPair(t)
	child, err := Issue(Template{
		SerialNumber: 2,
		Subject:      "greedy",
		NotBefore:    t0,
		NotAfter:     t1,
		IsCA:         true,
		Resources: Resources{
			Prefixes: netip2("11.0.0.0/8"), // not delegated by ta
			ASNs:     []ASRange{{Min: 100, Max: 100}},
		},
		PublicKey: &childKey.key.PublicKey,
	}, "ta", taKey.key)
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Verify(ta, VerifyOptions{Now: tv}); err == nil {
		t.Error("resource escalation not caught")
	}
	// AS escalation too.
	child2, err := Issue(Template{
		SerialNumber: 3,
		Subject:      "greedy-as",
		NotBefore:    t0,
		NotAfter:     t1,
		IsCA:         true,
		Resources: Resources{
			Prefixes: netip2("10.1.0.0/16"),
			ASNs:     []ASRange{{Min: 100, Max: 300}},
		},
		PublicKey: &childKey.key.PublicKey,
	}, "ta", taKey.key)
	if err != nil {
		t.Fatal(err)
	}
	if err := child2.Verify(ta, VerifyOptions{Now: tv}); err == nil {
		t.Error("AS range escalation not caught")
	}
}

func TestVerifyRejectsWrongIssuer(t *testing.T) {
	_, taKey := selfSigned(t, "ta", AllResources())
	other, _ := selfSigned(t, "other", AllResources())
	childKey := newKeyPair(t)
	child, err := Issue(Template{
		SerialNumber: 2,
		Subject:      "c",
		NotBefore:    t0,
		NotAfter:     t1,
		Resources:    Resources{Prefixes: netip2("10.0.0.0/8")},
		PublicKey:    &childKey.key.PublicKey,
	}, "ta", taKey.key)
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Verify(other, VerifyOptions{Now: tv}); err == nil {
		t.Error("verification against wrong issuer succeeded")
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	ta, _ := selfSigned(t, "ta", AllResources())
	ta.Signature[len(ta.Signature)/2] ^= 0xff
	if err := ta.Verify(ta, VerifyOptions{Now: tv}); err == nil {
		t.Error("tampered signature verified")
	}
}

func TestVerifyRejectsNonCAIssuer(t *testing.T) {
	ta, taKey := selfSigned(t, "ta", AllResources())
	midKey := newKeyPair(t)
	mid, err := Issue(Template{
		SerialNumber: 2, Subject: "ee", NotBefore: t0, NotAfter: t1,
		IsCA:      false,
		Resources: Resources{Prefixes: netip2("10.0.0.0/8")},
		PublicKey: &midKey.key.PublicKey,
	}, "ta", taKey.key)
	if err != nil {
		t.Fatal(err)
	}
	if err := mid.Verify(ta, VerifyOptions{Now: tv}); err != nil {
		t.Fatalf("EE verify: %v", err)
	}
	leafKey := newKeyPair(t)
	leaf, err := Issue(Template{
		SerialNumber: 3, Subject: "leaf", NotBefore: t0, NotAfter: t1,
		Resources: Resources{Prefixes: netip2("10.0.0.0/16")},
		PublicKey: &leafKey.key.PublicKey,
	}, "ee", midKey.key)
	if err != nil {
		t.Fatal(err)
	}
	if err := leaf.Verify(mid, VerifyOptions{Now: tv}); err == nil {
		t.Error("certificate issued by non-CA verified")
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	ta, taKey := selfSigned(t, "ta", AllResources())
	childKey := newKeyPair(t)
	child, err := Issue(Template{
		SerialNumber: 77,
		Subject:      "host-eu",
		NotBefore:    t0,
		NotAfter:     t1,
		IsCA:         true,
		Resources: Resources{
			Prefixes: netip2("185.42.0.0/16", "2a00:1450::/29"),
			ASNs:     []ASRange{{Min: 15169, Max: 15169}, {Min: 36040, Max: 36059}},
		},
		PublicKey: &childKey.key.PublicKey,
	}, "ta", taKey.key)
	if err != nil {
		t.Fatal(err)
	}
	der, err := child.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	if got.Subject != child.Subject || got.Issuer != child.Issuer ||
		got.SerialNumber != child.SerialNumber || got.IsCA != child.IsCA {
		t.Errorf("round trip mismatch: %+v vs %+v", got, child)
	}
	if !got.NotBefore.Equal(child.NotBefore) || !got.NotAfter.Equal(child.NotAfter) {
		t.Errorf("validity mismatch: %v..%v vs %v..%v", got.NotBefore, got.NotAfter, child.NotBefore, child.NotAfter)
	}
	if len(got.Resources.Prefixes) != 2 || got.Resources.Prefixes[0] != netutil.MustPrefix("185.42.0.0/16") {
		t.Errorf("prefix resources mismatch: %v", got.Resources.Prefixes)
	}
	if len(got.Resources.ASNs) != 2 || got.Resources.ASNs[1] != (ASRange{36040, 36059}) {
		t.Errorf("ASN resources mismatch: %v", got.Resources.ASNs)
	}
	// Parsed certificate must still verify.
	if err := got.Verify(ta, VerifyOptions{Now: tv}); err != nil {
		t.Errorf("parsed certificate fails verify: %v", err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte{0x30, 0x03, 0x02, 0x01, 0x05}); err == nil {
		t.Error("Parse accepted junk")
	}
	ta, _ := selfSigned(t, "ta", AllResources())
	der, _ := ta.Marshal()
	if _, err := Parse(der[:len(der)-3]); err == nil {
		t.Error("Parse accepted truncated DER")
	}
	if _, err := Parse(append(der, 0x00)); err == nil {
		t.Error("Parse accepted trailing garbage")
	}
	for i := 0; i < len(der); i += 11 {
		mut := append([]byte(nil), der...)
		mut[i] ^= 0x01
		c, err := Parse(mut)
		if err != nil {
			continue // parse-level rejection is fine
		}
		if err := c.Verify(ta, VerifyOptions{Now: tv}); err == nil && c.Subject == ta.Subject {
			// A bit flip that leaves subject intact must break the signature
			// (unless it flipped within the signature encoding padding, which
			// ecdsa rejects anyway).
			if string(c.RawTBS) != string(ta.RawTBS) {
				t.Errorf("bit flip at %d produced a different yet verifying certificate", i)
			}
		}
	}
}

func TestCRLRoundTripAndVerify(t *testing.T) {
	ta, taKey := selfSigned(t, "ta", AllResources())
	crl, err := IssueCRL("ta", taKey.key, t0, t1, []int64{5, 9})
	if err != nil {
		t.Fatal(err)
	}
	der, err := crl.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseCRL(der)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(ta, VerifyOptions{Now: tv}); err != nil {
		t.Fatalf("CRL verify: %v", err)
	}
	if !got.Revoked(5) || !got.Revoked(9) || got.Revoked(6) {
		t.Errorf("Revoked() wrong: %v", got.RevokedSerials)
	}
	if err := got.Verify(ta, VerifyOptions{Now: t1.Add(time.Hour)}); err == nil {
		t.Error("stale CRL verified")
	}
	got.Signature[0] ^= 0xff
	if err := got.Verify(ta, VerifyOptions{Now: tv}); err == nil {
		t.Error("tampered CRL verified")
	}
}

func TestResourcesSubsetOf(t *testing.T) {
	parent := Resources{
		Prefixes: netip2("10.0.0.0/8", "2001:db8::/32"),
		ASNs:     []ASRange{{100, 200}},
	}
	cases := []struct {
		child Resources
		want  bool
	}{
		{Resources{Prefixes: netip2("10.1.0.0/16")}, true},
		{Resources{Prefixes: netip2("10.0.0.0/8")}, true},
		{Resources{Prefixes: netip2("11.0.0.0/8")}, false},
		{Resources{Prefixes: netip2("2001:db8:1::/48")}, true},
		{Resources{ASNs: []ASRange{{150, 160}}}, true},
		{Resources{ASNs: []ASRange{{100, 200}}}, true},
		{Resources{ASNs: []ASRange{{99, 150}}}, false},
		{Resources{}, true},
	}
	for i, c := range cases {
		if got := c.child.SubsetOf(parent); got != c.want {
			t.Errorf("case %d: SubsetOf = %v, want %v", i, got, c.want)
		}
	}
}

func TestKeyID(t *testing.T) {
	k1 := newKeyPair(t)
	k2 := newKeyPair(t)
	if KeyID(&k1.key.PublicKey) == KeyID(&k2.key.PublicKey) {
		t.Error("distinct keys share a KeyID")
	}
	if KeyID(nil) != "<nil>" {
		t.Error("KeyID(nil) wrong")
	}
	clone := ClonePublicKey(&k1.key.PublicKey)
	if KeyID(clone) != KeyID(&k1.key.PublicKey) {
		t.Error("cloned key has different KeyID")
	}
}

func TestIssueValidation(t *testing.T) {
	kp := newKeyPair(t)
	if _, err := Issue(Template{Subject: "x", NotBefore: t1, NotAfter: t0, PublicKey: &kp.key.PublicKey}, "x", kp.key); err == nil {
		t.Error("inverted validity accepted")
	}
	if _, err := Issue(Template{Subject: "x", NotBefore: t0, NotAfter: t1}, "x", kp.key); err == nil {
		t.Error("missing public key accepted")
	}
	if _, err := Issue(Template{Subject: "x", NotBefore: t0, NotAfter: t1, PublicKey: &kp.key.PublicKey}, "x", nil); err == nil {
		t.Error("missing issuer key accepted")
	}
}

// --- helpers ---

func newKeyPair(t *testing.T) *keyPair {
	t.Helper()
	k, err := GenerateKey(rand.New(rand.NewSource(int64(rand.Int()))))
	if err != nil {
		// crypto/ecdsa requires a real random stream; fall back.
		k2, err2 := GenerateKey(nil)
		if err2 != nil {
			t.Fatal(err2)
		}
		return &keyPair{key: k2}
	}
	return &keyPair{key: k}
}

func netip2(ss ...string) []prefixType {
	out := make([]prefixType, len(ss))
	for i, s := range ss {
		out[i] = netutil.MustPrefix(s)
	}
	return out
}
