// Package cert implements the resource certificates underlying the RPKI.
//
// RPKI certificates (RFC 6487) are X.509 certificates carrying RFC 3779
// extensions that delegate Internet number resources (IP prefixes and AS
// numbers). This package implements a self-contained DER-encoded
// resource-certificate format with the same semantics: a certificate
// binds a public key to a set of resources, is signed by its issuer, and
// is valid only if its resources are a subset of the issuer's and it has
// not expired or been revoked.
//
// Cryptography is real: ECDSA over P-256 with SHA-256, via the standard
// library. Objects whose signatures do not verify are discarded by the
// validator, exactly as the paper's methodology requires ("Only
// cryptographically correct ROAs are further used").
package cert

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/asn1"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net/netip"
	"time"

	"ripki/internal/netutil"
)

// ASRange is an inclusive range of AS numbers.
type ASRange struct {
	Min, Max uint32
}

// Contains reports whether asn falls inside the range.
func (r ASRange) Contains(asn uint32) bool { return asn >= r.Min && asn <= r.Max }

// Resources is the set of Internet number resources delegated by a
// certificate: IP prefixes (both families) and AS number ranges.
type Resources struct {
	Prefixes []netip.Prefix
	ASNs     []ASRange
}

// ContainsPrefix reports whether p is covered by at least one prefix in
// the resource set.
func (r Resources) ContainsPrefix(p netip.Prefix) bool {
	for _, q := range r.Prefixes {
		if netutil.Covers(q, p) {
			return true
		}
	}
	return false
}

// ContainsASN reports whether asn is covered by the resource set.
func (r Resources) ContainsASN(asn uint32) bool {
	for _, rg := range r.ASNs {
		if rg.Contains(asn) {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every resource in r is contained in s.
func (r Resources) SubsetOf(s Resources) bool {
	for _, p := range r.Prefixes {
		if !s.ContainsPrefix(p) {
			return false
		}
	}
	for _, rg := range r.ASNs {
		ok := false
		for _, sg := range s.ASNs {
			if sg.Min <= rg.Min && rg.Max <= sg.Max {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// AllResources returns the resource set covering the entire number
// space; used for the root of a trust-anchor hierarchy in tests and the
// synthetic world.
func AllResources() Resources {
	return Resources{
		Prefixes: []netip.Prefix{
			netutil.MustPrefix("0.0.0.0/0"),
			netutil.MustPrefix("::/0"),
		},
		ASNs: []ASRange{{Min: 0, Max: 4294967295}},
	}
}

// Certificate is a validated or to-be-validated resource certificate.
type Certificate struct {
	SerialNumber int64
	Subject      string
	Issuer       string
	NotBefore    time.Time
	NotAfter     time.Time
	IsCA         bool
	Resources    Resources
	PublicKey    *ecdsa.PublicKey

	// Signature is the issuer's ECDSA signature (ASN.1 form) over the
	// SHA-256 digest of RawTBS.
	Signature []byte
	// RawTBS is the DER encoding of the to-be-signed portion.
	RawTBS []byte
}

// wire forms ------------------------------------------------------------

type asnPrefix struct {
	Addr []byte
	Bits int
}

type asnASRange struct {
	Min int64
	Max int64
}

type asnTBS struct {
	Version      int
	SerialNumber int64
	Subject      string
	Issuer       string
	NotBefore    time.Time `asn1:"utc"`
	NotAfter     time.Time `asn1:"utc"`
	IsCA         bool
	Prefixes     []asnPrefix
	ASRanges     []asnASRange
	PublicKey    []byte // PKIX, ASN.1 DER
}

type asnCert struct {
	TBS       asn1.RawValue
	Signature []byte
}

const tbsVersion = 1

func prefixesToWire(ps []netip.Prefix) []asnPrefix {
	out := make([]asnPrefix, 0, len(ps))
	for _, p := range ps {
		out = append(out, asnPrefix{Addr: p.Addr().AsSlice(), Bits: p.Bits()})
	}
	return out
}

func prefixesFromWire(ws []asnPrefix) ([]netip.Prefix, error) {
	out := make([]netip.Prefix, 0, len(ws))
	for _, w := range ws {
		a, ok := netip.AddrFromSlice(w.Addr)
		if !ok {
			return nil, fmt.Errorf("cert: bad address length %d", len(w.Addr))
		}
		if w.Bits < 0 || w.Bits > netutil.FamilyBits(a) {
			return nil, fmt.Errorf("cert: bad prefix length %d", w.Bits)
		}
		out = append(out, netip.PrefixFrom(a, w.Bits).Masked())
	}
	return out, nil
}

func rangesToWire(rs []ASRange) []asnASRange {
	out := make([]asnASRange, 0, len(rs))
	for _, r := range rs {
		out = append(out, asnASRange{Min: int64(r.Min), Max: int64(r.Max)})
	}
	return out
}

func rangesFromWire(ws []asnASRange) ([]ASRange, error) {
	out := make([]ASRange, 0, len(ws))
	for _, w := range ws {
		if w.Min < 0 || w.Max > 4294967295 || w.Min > w.Max {
			return nil, fmt.Errorf("cert: bad AS range [%d,%d]", w.Min, w.Max)
		}
		out = append(out, ASRange{Min: uint32(w.Min), Max: uint32(w.Max)})
	}
	return out, nil
}

// Template collects the fields of a certificate to be issued.
type Template struct {
	SerialNumber int64
	Subject      string
	NotBefore    time.Time
	NotAfter     time.Time
	IsCA         bool
	Resources    Resources
	PublicKey    *ecdsa.PublicKey
}

// GenerateKey creates a new P-256 key pair. If r is nil, crypto/rand is
// used.
func GenerateKey(r io.Reader) (*ecdsa.PrivateKey, error) {
	if r == nil {
		r = rand.Reader
	}
	return ecdsa.GenerateKey(elliptic.P256(), r)
}

// Issue creates a certificate from tmpl signed by issuerKey in the name
// of issuer. For self-signed trust anchors pass issuer == tmpl.Subject
// and the anchor's own key.
func Issue(tmpl Template, issuer string, issuerKey *ecdsa.PrivateKey) (*Certificate, error) {
	if tmpl.PublicKey == nil {
		return nil, errors.New("cert: template missing public key")
	}
	if issuerKey == nil {
		return nil, errors.New("cert: missing issuer key")
	}
	if !tmpl.NotAfter.After(tmpl.NotBefore) {
		return nil, fmt.Errorf("cert: validity window inverted (%v .. %v)", tmpl.NotBefore, tmpl.NotAfter)
	}
	spki, err := x509.MarshalPKIXPublicKey(tmpl.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("cert: encoding public key: %w", err)
	}
	tbs := asnTBS{
		Version:      tbsVersion,
		SerialNumber: tmpl.SerialNumber,
		Subject:      tmpl.Subject,
		Issuer:       issuer,
		NotBefore:    tmpl.NotBefore.UTC().Truncate(time.Second),
		NotAfter:     tmpl.NotAfter.UTC().Truncate(time.Second),
		IsCA:         tmpl.IsCA,
		Prefixes:     prefixesToWire(tmpl.Resources.Prefixes),
		ASRanges:     rangesToWire(tmpl.Resources.ASNs),
		PublicKey:    spki,
	}
	rawTBS, err := asn1.Marshal(tbs)
	if err != nil {
		return nil, fmt.Errorf("cert: encoding TBS: %w", err)
	}
	digest := sha256.Sum256(rawTBS)
	sig, err := ecdsa.SignASN1(rand.Reader, issuerKey, digest[:])
	if err != nil {
		return nil, fmt.Errorf("cert: signing: %w", err)
	}
	c := &Certificate{
		SerialNumber: tmpl.SerialNumber,
		Subject:      tmpl.Subject,
		Issuer:       issuer,
		NotBefore:    tbs.NotBefore,
		NotAfter:     tbs.NotAfter,
		IsCA:         tmpl.IsCA,
		Resources:    tmpl.Resources,
		PublicKey:    tmpl.PublicKey,
		Signature:    sig,
		RawTBS:       rawTBS,
	}
	return c, nil
}

// Marshal encodes the certificate to DER.
func (c *Certificate) Marshal() ([]byte, error) {
	if len(c.RawTBS) == 0 {
		return nil, errors.New("cert: certificate has no raw TBS (not issued or parsed)")
	}
	return asn1.Marshal(asnCert{
		TBS:       asn1.RawValue{FullBytes: c.RawTBS},
		Signature: c.Signature,
	})
}

// Parse decodes a DER certificate produced by Marshal. The signature is
// not verified; call Verify.
func Parse(der []byte) (*Certificate, error) {
	var w asnCert
	rest, err := asn1.Unmarshal(der, &w)
	if err != nil {
		return nil, fmt.Errorf("cert: parsing: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("cert: %d bytes of trailing garbage", len(rest))
	}
	var tbs asnTBS
	if rest, err = asn1.Unmarshal(w.TBS.FullBytes, &tbs); err != nil {
		return nil, fmt.Errorf("cert: parsing TBS: %w", err)
	} else if len(rest) != 0 {
		return nil, errors.New("cert: trailing garbage after TBS")
	}
	if tbs.Version != tbsVersion {
		return nil, fmt.Errorf("cert: unsupported version %d", tbs.Version)
	}
	pubAny, err := x509.ParsePKIXPublicKey(tbs.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("cert: parsing public key: %w", err)
	}
	pub, ok := pubAny.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("cert: unsupported public key type %T", pubAny)
	}
	prefixes, err := prefixesFromWire(tbs.Prefixes)
	if err != nil {
		return nil, err
	}
	ranges, err := rangesFromWire(tbs.ASRanges)
	if err != nil {
		return nil, err
	}
	return &Certificate{
		SerialNumber: tbs.SerialNumber,
		Subject:      tbs.Subject,
		Issuer:       tbs.Issuer,
		NotBefore:    tbs.NotBefore,
		NotAfter:     tbs.NotAfter,
		IsCA:         tbs.IsCA,
		Resources:    Resources{Prefixes: prefixes, ASNs: ranges},
		PublicKey:    pub,
		Signature:    w.Signature,
		RawTBS:       w.TBS.FullBytes,
	}, nil
}

// CheckSignatureFrom verifies that issuer's key signed c.
func (c *Certificate) CheckSignatureFrom(issuer *Certificate) error {
	if issuer.PublicKey == nil {
		return errors.New("cert: issuer has no public key")
	}
	digest := sha256.Sum256(c.RawTBS)
	if !ecdsa.VerifyASN1(issuer.PublicKey, digest[:], c.Signature) {
		return fmt.Errorf("cert: signature on %q does not verify against issuer %q", c.Subject, issuer.Subject)
	}
	return nil
}

// VerifyOptions configures chain validation.
type VerifyOptions struct {
	// Now is the validation time; the zero value means time.Now().
	Now time.Time
}

func (o VerifyOptions) now() time.Time {
	if o.Now.IsZero() {
		return time.Now()
	}
	return o.Now
}

// Verify checks c against its issuer: signature, validity window, CA
// linkage (issuer must be a CA unless self-signed), and resource
// containment. Self-signed trust anchors pass issuer == c.
func (c *Certificate) Verify(issuer *Certificate, opts VerifyOptions) error {
	now := opts.now()
	if now.Before(c.NotBefore) {
		return fmt.Errorf("cert: %q not yet valid (notBefore %v)", c.Subject, c.NotBefore)
	}
	if now.After(c.NotAfter) {
		return fmt.Errorf("cert: %q expired (notAfter %v)", c.Subject, c.NotAfter)
	}
	if c.Issuer != issuer.Subject {
		return fmt.Errorf("cert: %q names issuer %q, got certificate for %q", c.Subject, c.Issuer, issuer.Subject)
	}
	selfSigned := issuer == c || (issuer.Subject == c.Subject && issuer.SerialNumber == c.SerialNumber)
	if !selfSigned {
		if !issuer.IsCA {
			return fmt.Errorf("cert: issuer %q is not a CA", issuer.Subject)
		}
		if !c.Resources.SubsetOf(issuer.Resources) {
			return fmt.Errorf("cert: %q claims resources beyond issuer %q", c.Subject, issuer.Subject)
		}
	}
	return c.CheckSignatureFrom(issuer)
}

// CRL -------------------------------------------------------------------

// CRL is a signed certificate revocation list.
type CRL struct {
	Issuer         string
	ThisUpdate     time.Time
	NextUpdate     time.Time
	RevokedSerials []int64
	Signature      []byte
	RawTBS         []byte
}

type asnCRLTBS struct {
	Issuer         string
	ThisUpdate     time.Time `asn1:"utc"`
	NextUpdate     time.Time `asn1:"utc"`
	RevokedSerials []int64
}

type asnCRL struct {
	TBS       asn1.RawValue
	Signature []byte
}

// IssueCRL builds and signs a revocation list.
func IssueCRL(issuer string, key *ecdsa.PrivateKey, thisUpdate, nextUpdate time.Time, revoked []int64) (*CRL, error) {
	tbs := asnCRLTBS{
		Issuer:         issuer,
		ThisUpdate:     thisUpdate.UTC().Truncate(time.Second),
		NextUpdate:     nextUpdate.UTC().Truncate(time.Second),
		RevokedSerials: append([]int64(nil), revoked...),
	}
	raw, err := asn1.Marshal(tbs)
	if err != nil {
		return nil, fmt.Errorf("cert: encoding CRL: %w", err)
	}
	digest := sha256.Sum256(raw)
	sig, err := ecdsa.SignASN1(rand.Reader, key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("cert: signing CRL: %w", err)
	}
	return &CRL{
		Issuer:         issuer,
		ThisUpdate:     tbs.ThisUpdate,
		NextUpdate:     tbs.NextUpdate,
		RevokedSerials: tbs.RevokedSerials,
		Signature:      sig,
		RawTBS:         raw,
	}, nil
}

// Marshal encodes the CRL to DER.
func (l *CRL) Marshal() ([]byte, error) {
	return asn1.Marshal(asnCRL{TBS: asn1.RawValue{FullBytes: l.RawTBS}, Signature: l.Signature})
}

// ParseCRL decodes a DER CRL.
func ParseCRL(der []byte) (*CRL, error) {
	var w asnCRL
	rest, err := asn1.Unmarshal(der, &w)
	if err != nil {
		return nil, fmt.Errorf("cert: parsing CRL: %w", err)
	}
	if len(rest) != 0 {
		return nil, errors.New("cert: trailing garbage after CRL")
	}
	var tbs asnCRLTBS
	if rest, err = asn1.Unmarshal(w.TBS.FullBytes, &tbs); err != nil {
		return nil, fmt.Errorf("cert: parsing CRL TBS: %w", err)
	} else if len(rest) != 0 {
		return nil, errors.New("cert: trailing garbage after CRL TBS")
	}
	return &CRL{
		Issuer:         tbs.Issuer,
		ThisUpdate:     tbs.ThisUpdate,
		NextUpdate:     tbs.NextUpdate,
		RevokedSerials: tbs.RevokedSerials,
		Signature:      w.Signature,
		RawTBS:         w.TBS.FullBytes,
	}, nil
}

// Verify checks the CRL signature and freshness against the issuing CA.
func (l *CRL) Verify(issuer *Certificate, opts VerifyOptions) error {
	if l.Issuer != issuer.Subject {
		return fmt.Errorf("cert: CRL issuer %q does not match %q", l.Issuer, issuer.Subject)
	}
	now := opts.now()
	if now.After(l.NextUpdate) {
		return fmt.Errorf("cert: CRL from %q is stale (nextUpdate %v)", l.Issuer, l.NextUpdate)
	}
	digest := sha256.Sum256(l.RawTBS)
	if !ecdsa.VerifyASN1(issuer.PublicKey, digest[:], l.Signature) {
		return fmt.Errorf("cert: CRL signature from %q does not verify", l.Issuer)
	}
	return nil
}

// Revoked reports whether serial appears in the list.
func (l *CRL) Revoked(serial int64) bool {
	for _, s := range l.RevokedSerials {
		if s == serial {
			return true
		}
	}
	return false
}

// KeyID returns a short identifier for a public key, usable as a map key
// and in log messages.
func KeyID(pub *ecdsa.PublicKey) string {
	if pub == nil {
		return "<nil>"
	}
	h := sha256.Sum256(append(pub.X.Bytes(), pub.Y.Bytes()...))
	return fmt.Sprintf("%x", h[:8])
}

// cloneBigInt avoids aliasing issues when copying keys in tests.
func cloneBigInt(x *big.Int) *big.Int { return new(big.Int).Set(x) }

// ClonePublicKey deep-copies an ECDSA public key.
func ClonePublicKey(pub *ecdsa.PublicKey) *ecdsa.PublicKey {
	return &ecdsa.PublicKey{Curve: pub.Curve, X: cloneBigInt(pub.X), Y: cloneBigInt(pub.Y)}
}
