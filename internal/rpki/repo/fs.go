package repo

import (
	"encoding/asn1"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ripki/internal/rpki/cert"
	"ripki/internal/rpki/roa"
)

// This file implements the on-disk publication-point layout, mirroring
// how RPKI repositories are distributed (one directory per CA with its
// certificate, manifest, CRL, ROAs, and child CA directories). Private
// keys are never written — a loaded repository is a relying party's
// view: it can be validated but cannot issue.

type asnManifest struct {
	Issuer     string
	Number     int64
	ThisUpdate time.Time `asn1:"utc"`
	NextUpdate time.Time `asn1:"utc"`
	Names      []string
	Hashes     [][]byte
	Signature  []byte
}

// Marshal encodes the manifest to DER.
func (m *Manifest) Marshal() ([]byte, error) {
	w := asnManifest{
		Issuer:     m.Issuer,
		Number:     m.Number,
		ThisUpdate: m.ThisUpdate.UTC().Truncate(time.Second),
		NextUpdate: m.NextUpdate.UTC().Truncate(time.Second),
		Signature:  m.Signature,
	}
	names := make([]string, 0, len(m.Entries))
	for n := range m.Entries {
		names = append(names, n)
	}
	// Deterministic order, also used by the signature input.
	sortStrings(names)
	for _, n := range names {
		h := m.Entries[n]
		w.Names = append(w.Names, n)
		w.Hashes = append(w.Hashes, append([]byte(nil), h[:]...))
	}
	return asn1.Marshal(w)
}

// ParseManifest decodes a DER manifest. The signature is not verified;
// call Verify.
func ParseManifest(der []byte) (*Manifest, error) {
	var w asnManifest
	rest, err := asn1.Unmarshal(der, &w)
	if err != nil {
		return nil, fmt.Errorf("repo: parsing manifest: %w", err)
	}
	if len(rest) != 0 {
		return nil, errors.New("repo: trailing bytes after manifest")
	}
	if len(w.Names) != len(w.Hashes) {
		return nil, errors.New("repo: manifest name/hash count mismatch")
	}
	m := &Manifest{
		Issuer:     w.Issuer,
		Number:     w.Number,
		ThisUpdate: w.ThisUpdate,
		NextUpdate: w.NextUpdate,
		Entries:    make(map[string][32]byte, len(w.Names)),
		Signature:  w.Signature,
	}
	for i, n := range w.Names {
		if len(w.Hashes[i]) != 32 {
			return nil, fmt.Errorf("repo: manifest hash %d has %d bytes", i, len(w.Hashes[i]))
		}
		var h [32]byte
		copy(h[:], w.Hashes[i])
		m.Entries[n] = h
	}
	m.raw = manifestTBS(m.Issuer, m.Number, m.ThisUpdate, m.NextUpdate, m.Entries)
	return m, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// WriteTo materialises the repository under dir: one "ta-<name>"
// directory per trust anchor, each containing ta.cer and the anchor's
// publication point (manifest.mft, ca.crl, roa-N.roa, and ca-N/
// subdirectories for children, recursively).
func (r *Repository) WriteTo(dir string) error {
	for _, ta := range r.Anchors {
		taDir := filepath.Join(dir, ta.Cert.Subject)
		if err := writeCA(taDir, ta, true); err != nil {
			return err
		}
	}
	return nil
}

func writeCA(dir string, ca *CA, isTA bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	certName := "ca.cer"
	if isTA {
		certName = "ta.cer"
	}
	der, err := ca.Cert.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, certName), der, 0o644); err != nil {
		return err
	}
	if ca.Manifest != nil {
		der, err := ca.Manifest.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, "manifest.mft"), der, 0o644); err != nil {
			return err
		}
	}
	if ca.CRL != nil {
		der, err := ca.CRL.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, "ca.crl"), der, 0o644); err != nil {
			return err
		}
	}
	for i, ro := range ca.ROAs {
		der, err := ro.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("roa-%d.roa", i)), der, 0o644); err != nil {
			return err
		}
	}
	for i, child := range ca.Children {
		if err := writeCA(filepath.Join(dir, fmt.Sprintf("ca-%d", i)), child, false); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a repository written by WriteTo. The result has no private
// keys: it can be validated (the relying-party operation) but not
// extended.
func Load(dir string) (*Repository, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("repo: reading %s: %w", dir, err)
	}
	r := &Repository{}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "ta-") {
			continue
		}
		ca, err := loadCA(filepath.Join(dir, e.Name()), true)
		if err != nil {
			return nil, err
		}
		r.Anchors = append(r.Anchors, ca)
	}
	if len(r.Anchors) == 0 {
		return nil, fmt.Errorf("repo: no trust anchors under %s", dir)
	}
	return r, nil
}

func loadCA(dir string, isTA bool) (*CA, error) {
	certName := "ca.cer"
	if isTA {
		certName = "ta.cer"
	}
	der, err := os.ReadFile(filepath.Join(dir, certName))
	if err != nil {
		return nil, fmt.Errorf("repo: %w", err)
	}
	c, err := cert.Parse(der)
	if err != nil {
		return nil, fmt.Errorf("repo: %s: %w", dir, err)
	}
	ca := &CA{Cert: c}
	if der, err := os.ReadFile(filepath.Join(dir, "manifest.mft")); err == nil {
		m, err := ParseManifest(der)
		if err != nil {
			return nil, fmt.Errorf("repo: %s: %w", dir, err)
		}
		ca.Manifest = m
	}
	if der, err := os.ReadFile(filepath.Join(dir, "ca.crl")); err == nil {
		crl, err := cert.ParseCRL(der)
		if err != nil {
			return nil, fmt.Errorf("repo: %s: %w", dir, err)
		}
		ca.CRL = crl
	}
	for i := 0; ; i++ {
		der, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("roa-%d.roa", i)))
		if err != nil {
			break
		}
		ro, err := roa.Parse(der)
		if err != nil {
			return nil, fmt.Errorf("repo: %s/roa-%d: %w", dir, i, err)
		}
		ca.ROAs = append(ca.ROAs, ro)
	}
	for i := 0; ; i++ {
		sub := filepath.Join(dir, fmt.Sprintf("ca-%d", i))
		if st, err := os.Stat(sub); err != nil || !st.IsDir() {
			break
		}
		child, err := loadCA(sub, false)
		if err != nil {
			return nil, err
		}
		ca.Children = append(ca.Children, child)
	}
	return ca, nil
}
