// Package repo models RPKI repositories and the relying-party validator.
//
// The global RPKI is rooted at five trust anchors, one per RIR (APNIC,
// AfriNIC, ARIN, LACNIC, RIPE — §3 step 4 of the paper). Each
// certification authority publishes, at its publication point, a
// manifest, a CRL, its child CA certificates, and its ROAs. A relying
// party walks the tree from the trust anchors, discards anything that is
// cryptographically incorrect (bad signature, expired, revoked, missing
// from or mismatching the manifest, over-claiming resources), and emits
// the surviving ROAs' payloads as VRPs.
package repo

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"sort"
	"time"

	"ripki/internal/rpki/cert"
	"ripki/internal/rpki/roa"
	"ripki/internal/rpki/vrp"
)

// Object is a named, hashed publication-point entry.
type Object struct {
	Name string
	DER  []byte
}

// hash returns the SHA-256 digest of the object bytes.
func (o Object) hash() [32]byte { return sha256.Sum256(o.DER) }

// Manifest lists the objects a CA currently publishes, with hashes, so a
// relying party can detect withheld or substituted objects.
type Manifest struct {
	Issuer     string
	Number     int64
	ThisUpdate time.Time
	NextUpdate time.Time
	Entries    map[string][32]byte
	Signature  []byte
	raw        []byte
}

func manifestTBS(issuer string, number int64, thisUpdate, nextUpdate time.Time, entries map[string][32]byte) []byte {
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	buf := make([]byte, 0, 64+len(entries)*48)
	buf = append(buf, issuer...)
	buf = append(buf, 0)
	buf = appendInt64(buf, number)
	buf = appendInt64(buf, thisUpdate.Unix())
	buf = appendInt64(buf, nextUpdate.Unix())
	for _, n := range names {
		h := entries[n]
		buf = append(buf, n...)
		buf = append(buf, 0)
		buf = append(buf, h[:]...)
	}
	return buf
}

func appendInt64(b []byte, v int64) []byte {
	for i := 56; i >= 0; i -= 8 {
		b = append(b, byte(v>>uint(i)))
	}
	return b
}

// Verify checks the manifest signature and freshness.
func (m *Manifest) Verify(issuer *cert.Certificate, opts cert.VerifyOptions) error {
	now := opts.Now
	if now.IsZero() {
		now = time.Now()
	}
	if now.After(m.NextUpdate) {
		return fmt.Errorf("repo: manifest %q stale (nextUpdate %v)", m.Issuer, m.NextUpdate)
	}
	digest := sha256.Sum256(m.raw)
	if !ecdsa.VerifyASN1(issuer.PublicKey, digest[:], m.Signature) {
		return fmt.Errorf("repo: manifest signature from %q does not verify", m.Issuer)
	}
	return nil
}

// CA is a certification authority with its publication point. Fields are
// exported for inspection; mutate only through the methods to keep the
// manifest consistent (or deliberately, to inject faults in tests).
type CA struct {
	Cert *cert.Certificate
	Key  *ecdsa.PrivateKey

	Children []*CA
	ROAs     []*roa.ROA
	CRL      *cert.CRL
	Manifest *Manifest

	nextSerial int64
}

// Repository is the global RPKI: the five RIR trust anchors and every CA
// beneath them.
type Repository struct {
	Anchors []*CA
	// Clock is the time used when issuing objects; tests pin it.
	Clock time.Time
	// TTL is the validity window for issued objects.
	TTL time.Duration
}

// RIRNames are the five regional Internet registries, i.e. the RPKI
// trust anchors ("ROA data of all trust anchors (APNIC, AfriNIC, ARIN,
// LACNIC, and RIPE) are collected and validated").
var RIRNames = []string{"apnic", "afrinic", "arin", "lacnic", "ripe"}

// New creates a repository with one self-signed trust anchor per name,
// each claiming the whole number space (as the production RPKI TAs do).
func New(names []string, clock time.Time, ttl time.Duration) (*Repository, error) {
	r := &Repository{Clock: clock, TTL: ttl}
	for _, name := range names {
		key, err := cert.GenerateKey(nil)
		if err != nil {
			return nil, fmt.Errorf("repo: generating key for %s: %w", name, err)
		}
		c, err := cert.Issue(cert.Template{
			SerialNumber: 1,
			Subject:      "ta-" + name,
			NotBefore:    clock,
			NotAfter:     clock.Add(ttl),
			IsCA:         true,
			Resources:    cert.AllResources(),
			PublicKey:    &key.PublicKey,
		}, "ta-"+name, key)
		if err != nil {
			return nil, fmt.Errorf("repo: issuing TA %s: %w", name, err)
		}
		ca := &CA{Cert: c, Key: key, nextSerial: 2}
		if err := ca.refreshManifest(clock, ttl); err != nil {
			return nil, err
		}
		r.Anchors = append(r.Anchors, ca)
	}
	return r, nil
}

// Anchor returns the trust anchor whose subject is "ta-"+name.
func (r *Repository) Anchor(name string) *CA {
	for _, a := range r.Anchors {
		if a.Cert.Subject == "ta-"+name {
			return a
		}
	}
	return nil
}

// NewCA issues a child CA under parent with the given resources.
func (r *Repository) NewCA(parent *CA, subject string, res cert.Resources) (*CA, error) {
	key, err := cert.GenerateKey(nil)
	if err != nil {
		return nil, fmt.Errorf("repo: generating key for %s: %w", subject, err)
	}
	parent.nextSerial++
	c, err := cert.Issue(cert.Template{
		SerialNumber: parent.nextSerial,
		Subject:      subject,
		NotBefore:    r.Clock,
		NotAfter:     r.Clock.Add(r.TTL),
		IsCA:         true,
		Resources:    res,
		PublicKey:    &key.PublicKey,
	}, parent.Cert.Subject, parent.Key)
	if err != nil {
		return nil, fmt.Errorf("repo: issuing CA %s: %w", subject, err)
	}
	ca := &CA{Cert: c, Key: key, nextSerial: 1}
	if err := ca.refreshManifest(r.Clock, r.TTL); err != nil {
		return nil, err
	}
	parent.Children = append(parent.Children, ca)
	if err := parent.refreshManifest(r.Clock, r.TTL); err != nil {
		return nil, err
	}
	return ca, nil
}

// AddROA signs a ROA under ca authorising asID to originate prefixes.
func (r *Repository) AddROA(ca *CA, asID uint32, prefixes []roa.Prefix) (*roa.ROA, error) {
	ca.nextSerial++
	ee, eeKey, err := roa.NewEE(ca.nextSerial, fmt.Sprintf("%s-roa-%d", ca.Cert.Subject, ca.nextSerial), prefixes, r.Clock, r.Clock.Add(r.TTL), ca.Cert, ca.Key)
	if err != nil {
		return nil, err
	}
	ro, err := roa.Sign(asID, prefixes, ee, eeKey)
	if err != nil {
		return nil, err
	}
	ca.ROAs = append(ca.ROAs, ro)
	if err := ca.refreshManifest(r.Clock, r.TTL); err != nil {
		return nil, err
	}
	return ro, nil
}

// Revoke adds serial to ca's CRL, removing the corresponding ROA's
// authority without unpublishing it.
func (r *Repository) Revoke(ca *CA, serial int64) error {
	var serials []int64
	if ca.CRL != nil {
		serials = append(serials, ca.CRL.RevokedSerials...)
	}
	serials = append(serials, serial)
	return ca.rebuildCRLAndManifest(r.Clock, r.TTL, serials)
}

func (ca *CA) rebuildCRLAndManifest(clock time.Time, ttl time.Duration, revoked []int64) error {
	crl, err := cert.IssueCRL(ca.Cert.Subject, ca.Key, clock, clock.Add(ttl), revoked)
	if err != nil {
		return err
	}
	ca.CRL = crl
	return ca.refreshManifest(clock, ttl)
}

// objects returns the CA's current publication-point content (children,
// ROAs, CRL), excluding the manifest itself.
func (ca *CA) objects() ([]Object, error) {
	var objs []Object
	for i, child := range ca.Children {
		der, err := child.Cert.Marshal()
		if err != nil {
			return nil, err
		}
		objs = append(objs, Object{Name: fmt.Sprintf("ca-%d.cer", i), DER: der})
	}
	for i, ro := range ca.ROAs {
		der, err := ro.Marshal()
		if err != nil {
			return nil, err
		}
		objs = append(objs, Object{Name: fmt.Sprintf("roa-%d.roa", i), DER: der})
	}
	if ca.CRL != nil {
		der, err := ca.CRL.Marshal()
		if err != nil {
			return nil, err
		}
		objs = append(objs, Object{Name: "ca.crl", DER: der})
	}
	return objs, nil
}

// refreshManifest re-signs the manifest over the current objects.
func (ca *CA) refreshManifest(clock time.Time, ttl time.Duration) error {
	objs, err := ca.objects()
	if err != nil {
		return err
	}
	entries := make(map[string][32]byte, len(objs))
	for _, o := range objs {
		entries[o.Name] = o.hash()
	}
	m := &Manifest{
		Issuer:     ca.Cert.Subject,
		Number:     time.Now().UnixNano(), // monotonic enough for tests
		ThisUpdate: clock,
		NextUpdate: clock.Add(ttl),
		Entries:    entries,
	}
	m.raw = manifestTBS(m.Issuer, m.Number, m.ThisUpdate, m.NextUpdate, entries)
	digest := sha256.Sum256(m.raw)
	sig, err := signASN1(ca.Key, digest[:])
	if err != nil {
		return err
	}
	m.Signature = sig
	ca.Manifest = m
	return nil
}

// ValidationProblem records one discarded object during validation.
type ValidationProblem struct {
	CA     string
	Object string
	Err    error
}

func (p ValidationProblem) String() string {
	return fmt.Sprintf("%s/%s: %v", p.CA, p.Object, p.Err)
}

// ValidationResult is the relying party's output: the VRP set plus an
// audit trail of everything discarded.
type ValidationResult struct {
	VRPs     *vrp.Set
	Problems []ValidationProblem
	// ROAsSeen and ROAsValid count processed vs accepted ROAs.
	ROAsSeen  int
	ROAsValid int
}

// Validate walks the repository from its trust anchors and returns the
// validated ROA payloads. Invalid objects are recorded and skipped, not
// fatal — mirroring deployed relying-party behaviour.
func (r *Repository) Validate(at time.Time) *ValidationResult {
	res := &ValidationResult{VRPs: vrp.NewSet()}
	opts := cert.VerifyOptions{Now: at}
	for _, ta := range r.Anchors {
		if err := ta.Cert.Verify(ta.Cert, opts); err != nil {
			res.Problems = append(res.Problems, ValidationProblem{CA: ta.Cert.Subject, Object: "ta.cer", Err: err})
			continue
		}
		r.validateCA(ta, opts, res)
	}
	return res
}

// ValidateAnchor walks only the named trust anchor's subtree and
// returns its validated payloads — what the RPKI loses when one RIR's
// publication point goes dark. An unknown name yields an empty result.
func (r *Repository) ValidateAnchor(at time.Time, name string) *ValidationResult {
	res := &ValidationResult{VRPs: vrp.NewSet()}
	ta := r.Anchor(name)
	if ta == nil {
		return res
	}
	opts := cert.VerifyOptions{Now: at}
	if err := ta.Cert.Verify(ta.Cert, opts); err != nil {
		res.Problems = append(res.Problems, ValidationProblem{CA: ta.Cert.Subject, Object: "ta.cer", Err: err})
		return res
	}
	r.validateCA(ta, opts, res)
	return res
}

func (r *Repository) validateCA(ca *CA, opts cert.VerifyOptions, res *ValidationResult) {
	// Manifest gate: a missing or invalid manifest voids the whole
	// publication point.
	if ca.Manifest == nil {
		res.Problems = append(res.Problems, ValidationProblem{CA: ca.Cert.Subject, Object: "manifest", Err: fmt.Errorf("repo: missing manifest")})
		return
	}
	if err := ca.Manifest.Verify(ca.Cert, opts); err != nil {
		res.Problems = append(res.Problems, ValidationProblem{CA: ca.Cert.Subject, Object: "manifest", Err: err})
		return
	}
	objs, err := ca.objects()
	if err != nil {
		res.Problems = append(res.Problems, ValidationProblem{CA: ca.Cert.Subject, Object: "publication point", Err: err})
		return
	}
	listed := make(map[string]bool, len(ca.Manifest.Entries))
	for name := range ca.Manifest.Entries {
		listed[name] = true
	}
	bad := make(map[string]bool)
	for _, o := range objs {
		want, ok := ca.Manifest.Entries[o.Name]
		if !ok {
			res.Problems = append(res.Problems, ValidationProblem{CA: ca.Cert.Subject, Object: o.Name, Err: fmt.Errorf("repo: object not in manifest")})
			bad[o.Name] = true
			continue
		}
		delete(listed, o.Name)
		if o.hash() != want {
			res.Problems = append(res.Problems, ValidationProblem{CA: ca.Cert.Subject, Object: o.Name, Err: fmt.Errorf("repo: manifest hash mismatch")})
			bad[o.Name] = true
			continue
		}
	}
	for name := range listed {
		res.Problems = append(res.Problems, ValidationProblem{CA: ca.Cert.Subject, Object: name, Err: fmt.Errorf("repo: manifest lists missing object")})
	}

	// CRL, if present, must verify; a broken CRL voids revocation data
	// but we continue treating all serials as unrevoked? No: safer to
	// void the publication point, as rpki-client does.
	crl := ca.CRL
	if crl != nil {
		if err := crl.Verify(ca.Cert, opts); err != nil {
			res.Problems = append(res.Problems, ValidationProblem{CA: ca.Cert.Subject, Object: "ca.crl", Err: err})
			return
		}
	}

	for i, ro := range ca.ROAs {
		res.ROAsSeen++
		name := fmt.Sprintf("roa-%d.roa", i)
		if bad[name] {
			continue // already reported above
		}
		if err := ro.Validate(ca.Cert, crl, opts); err != nil {
			res.Problems = append(res.Problems, ValidationProblem{CA: ca.Cert.Subject, Object: name, Err: err})
			continue
		}
		res.ROAsValid++
		for _, p := range ro.Prefixes {
			if err := res.VRPs.Add(vrp.VRP{Prefix: p.Prefix, MaxLength: p.MaxLength, ASN: ro.ASID}); err != nil {
				res.Problems = append(res.Problems, ValidationProblem{CA: ca.Cert.Subject, Object: name, Err: err})
			}
		}
	}

	for i, child := range ca.Children {
		name := fmt.Sprintf("ca-%d.cer", i)
		if bad[name] {
			continue
		}
		if err := child.Cert.Verify(ca.Cert, opts); err != nil {
			res.Problems = append(res.Problems, ValidationProblem{CA: ca.Cert.Subject, Object: name, Err: err})
			continue
		}
		if crl != nil && crl.Revoked(child.Cert.SerialNumber) {
			res.Problems = append(res.Problems, ValidationProblem{CA: ca.Cert.Subject, Object: name, Err: fmt.Errorf("repo: child CA revoked")})
			continue
		}
		r.validateCA(child, opts, res)
	}
}

// signASN1 isolates the ecdsa dependency for the manifest signer.
func signASN1(key *ecdsa.PrivateKey, digest []byte) ([]byte, error) {
	return ecdsa.SignASN1(rand.Reader, key, digest)
}
