package repo

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"ripki/internal/netutil"
	"ripki/internal/rpki/cert"
	"ripki/internal/rpki/roa"
	"ripki/internal/rpki/vrp"
)

func buildDiskRepo(t *testing.T) *Repository {
	t.Helper()
	r := newRepo(t)
	ripe := r.Anchor("ripe")
	isp, err := r.NewCA(ripe, "isp", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("193.0.0.0/16")},
		ASNs:     []cert.ASRange{{Min: 3333, Max: 3340}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddROA(isp, 3333, []roa.Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}}); err != nil {
		t.Fatal(err)
	}
	sub, err := r.NewCA(isp, "customer", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("193.0.128.0/20")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddROA(sub, 3340, []roa.Prefix{{Prefix: netutil.MustPrefix("193.0.128.0/20"), MaxLength: 24}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Revoke(isp, 999); err != nil { // non-empty CRL
		t.Fatal(err)
	}
	return r
}

func TestManifestMarshalRoundTrip(t *testing.T) {
	r := buildDiskRepo(t)
	m := r.Anchor("ripe").Manifest
	der, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseManifest(der)
	if err != nil {
		t.Fatal(err)
	}
	if got.Issuer != m.Issuer || got.Number != m.Number || len(got.Entries) != len(m.Entries) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	// The reconstructed TBS must verify under the anchor's key.
	if err := got.Verify(r.Anchor("ripe").Cert, cert.VerifyOptions{Now: at}); err != nil {
		t.Fatalf("parsed manifest fails verify: %v", err)
	}
	// Tampering with a hash must break the signature.
	for name := range got.Entries {
		got.Entries[name] = [32]byte{1}
		break
	}
	got.raw = manifestTBS(got.Issuer, got.Number, got.ThisUpdate, got.NextUpdate, got.Entries)
	if err := got.Verify(r.Anchor("ripe").Cert, cert.VerifyOptions{Now: at}); err == nil {
		t.Fatal("tampered manifest verified")
	}
}

func TestParseManifestRejectsGarbage(t *testing.T) {
	if _, err := ParseManifest([]byte{0x30, 0x01, 0x00}); err == nil {
		t.Error("garbage accepted")
	}
	r := buildDiskRepo(t)
	der, _ := r.Anchor("ripe").Manifest.Marshal()
	if _, err := ParseManifest(der[:len(der)-2]); err == nil {
		t.Error("truncated manifest accepted")
	}
	if _, err := ParseManifest(append(der, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestWriteToLoadValidate(t *testing.T) {
	r := buildDiskRepo(t)
	want := r.Validate(at)
	if len(want.Problems) != 0 {
		t.Fatalf("in-memory problems: %v", want.Problems)
	}

	dir := t.TempDir()
	if err := r.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	// Spot-check the layout.
	for _, path := range []string{
		"ta-ripe/ta.cer", "ta-ripe/manifest.mft",
		"ta-ripe/ca-0/ca.cer", "ta-ripe/ca-0/roa-0.roa", "ta-ripe/ca-0/ca.crl",
		"ta-ripe/ca-0/ca-0/ca.cer", "ta-ripe/ca-0/ca-0/roa-0.roa",
	} {
		if _, err := os.Stat(filepath.Join(dir, path)); err != nil {
			t.Errorf("missing %s: %v", path, err)
		}
	}

	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := got.Validate(at)
	if len(res.Problems) != 0 {
		t.Fatalf("reloaded problems: %v", res.Problems)
	}
	if res.VRPs.Len() != want.VRPs.Len() {
		t.Fatalf("VRPs after reload: %d vs %d", res.VRPs.Len(), want.VRPs.Len())
	}
	if st := res.VRPs.Validate(netutil.MustPrefix("193.0.6.0/24"), 3333); st != vrp.Valid {
		t.Errorf("reloaded validation = %v", st)
	}
	if st := res.VRPs.Validate(netutil.MustPrefix("193.0.128.0/22"), 3340); st != vrp.Valid {
		t.Errorf("reloaded child-CA validation = %v", st)
	}
}

func TestLoadedRepoDetectsTampering(t *testing.T) {
	r := buildDiskRepo(t)
	dir := t.TempDir()
	if err := r.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in a published ROA; the manifest hash must catch it.
	roaPath := filepath.Join(dir, "ta-ripe", "ca-0", "roa-0.roa")
	raw, err := os.ReadFile(roaPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(roaPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		// Parse-level rejection is also acceptable.
		return
	}
	res := got.Validate(at)
	if len(res.Problems) == 0 {
		t.Fatal("tampered publication point validated cleanly")
	}
	for _, v := range res.VRPs.All() {
		if v.Prefix == netutil.MustPrefix("193.0.6.0/24") {
			t.Fatal("VRP from tampered ROA accepted")
		}
	}
}

func TestLoadRejectsEmptyDir(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "nosuch")); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestStaleLoadedManifest(t *testing.T) {
	r := buildDiskRepo(t)
	dir := t.TempDir()
	if err := r.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := got.Validate(clock.Add(ttl + time.Hour))
	if res.VRPs.Len() != 0 {
		t.Error("stale reloaded repository produced VRPs")
	}
}
