package repo

import (
	"net/netip"
	"testing"
	"time"

	"ripki/internal/netutil"
	"ripki/internal/rpki/cert"
	"ripki/internal/rpki/roa"
	"ripki/internal/rpki/vrp"
)

type pfx = netip.Prefix

var (
	clock = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	ttl   = 365 * 24 * time.Hour
	at    = clock.Add(30 * 24 * time.Hour)
)

func newRepo(t *testing.T) *Repository {
	t.Helper()
	r, err := New([]string{"ripe", "arin"}, clock, ttl)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewHasAnchors(t *testing.T) {
	r, err := New(RIRNames, clock, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Anchors) != 5 {
		t.Fatalf("anchors = %d, want 5", len(r.Anchors))
	}
	if r.Anchor("ripe") == nil || r.Anchor("arin") == nil {
		t.Error("Anchor lookup failed")
	}
	if r.Anchor("nosuch") != nil {
		t.Error("Anchor('nosuch') != nil")
	}
}

func TestValidateCleanRepo(t *testing.T) {
	r := newRepo(t)
	ripe := r.Anchor("ripe")
	isp, err := r.NewCA(ripe, "isp-1", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("193.0.0.0/16")},
		ASNs:     []cert.ASRange{{Min: 3333, Max: 3333}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddROA(isp, 3333, []roa.Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}}); err != nil {
		t.Fatal(err)
	}
	res := r.Validate(at)
	if len(res.Problems) != 0 {
		t.Fatalf("problems: %v", res.Problems)
	}
	if res.ROAsSeen != 1 || res.ROAsValid != 1 {
		t.Fatalf("ROAs seen/valid = %d/%d", res.ROAsSeen, res.ROAsValid)
	}
	if res.VRPs.Len() != 1 {
		t.Fatalf("VRPs = %d, want 1", res.VRPs.Len())
	}
	if got := res.VRPs.Validate(netutil.MustPrefix("193.0.6.0/24"), 3333); got != vrp.Valid {
		t.Errorf("origin validation = %v, want valid", got)
	}
}

func TestValidateMultiLevelHierarchy(t *testing.T) {
	r := newRepo(t)
	ripe := r.Anchor("ripe")
	nir, err := r.NewCA(ripe, "nir", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("80.0.0.0/8")},
		ASNs:     []cert.ASRange{{Min: 1000, Max: 1999}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lir, err := r.NewCA(nir, "lir", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("80.1.0.0/16")},
		ASNs:     []cert.ASRange{{Min: 1500, Max: 1500}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddROA(lir, 1500, []roa.Prefix{{Prefix: netutil.MustPrefix("80.1.2.0/24"), MaxLength: 25}}); err != nil {
		t.Fatal(err)
	}
	res := r.Validate(at)
	if len(res.Problems) != 0 {
		t.Fatalf("problems: %v", res.Problems)
	}
	if res.VRPs.Len() != 1 {
		t.Fatalf("VRPs = %d, want 1", res.VRPs.Len())
	}
	if got := res.VRPs.Validate(netutil.MustPrefix("80.1.2.0/25"), 1500); got != vrp.Valid {
		t.Errorf("deep-chain VRP not usable: %v", got)
	}
}

func TestValidateDiscardsOverclaimingCA(t *testing.T) {
	r := newRepo(t)
	ripe := r.Anchor("ripe")
	isp, err := r.NewCA(ripe, "isp", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("193.0.0.0/16")},
		ASNs:     []cert.ASRange{{Min: 3333, Max: 3333}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Forge: replace the child CA's certificate with one that claims more
	// than RIPE delegated, signed by RIPE's real key (a malicious or
	// buggy parent could do this; resource check must still reject it at
	// verification because SubsetOf fails).
	key, _ := cert.GenerateKey(nil)
	big, err := cert.Issue(cert.Template{
		SerialNumber: 99, Subject: "isp", NotBefore: clock, NotAfter: clock.Add(ttl),
		IsCA:      true,
		Resources: cert.Resources{Prefixes: []pfx{netutil.MustPrefix("0.0.0.0/1")}},
		PublicKey: &key.PublicKey,
	}, ripe.Cert.Subject, ripe.Key)
	if err != nil {
		t.Fatal(err)
	}
	// Over-claiming relative to nothing: RIPE holds 0/0 so /1 is a
	// subset; instead test a child of isp over-claiming beyond isp.
	_ = big
	sub, err := r.NewCA(isp, "sub", cert.Resources{Prefixes: []pfx{netutil.MustPrefix("193.0.0.0/24")}})
	if err != nil {
		t.Fatal(err)
	}
	forgedKey, _ := cert.GenerateKey(nil)
	forged, err := cert.Issue(cert.Template{
		SerialNumber: 100, Subject: "sub", NotBefore: clock, NotAfter: clock.Add(ttl),
		IsCA:      true,
		Resources: cert.Resources{Prefixes: []pfx{netutil.MustPrefix("200.0.0.0/8")}},
		PublicKey: &forgedKey.PublicKey,
	}, isp.Cert.Subject, isp.Key)
	if err != nil {
		t.Fatal(err)
	}
	sub.Cert = forged
	sub.Key = forgedKey
	if err := isp.refreshManifest(r.Clock, r.TTL); err != nil {
		t.Fatal(err)
	}
	res := r.Validate(at)
	if len(res.Problems) == 0 {
		t.Fatal("over-claiming child CA not reported")
	}
}

func TestValidateDiscardsTamperedROA(t *testing.T) {
	r := newRepo(t)
	ripe := r.Anchor("ripe")
	isp, _ := r.NewCA(ripe, "isp", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("193.0.0.0/16")},
		ASNs:     []cert.ASRange{{Min: 3333, Max: 3333}},
	})
	ro, err := r.AddROA(isp, 3333, []roa.Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}})
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the signed content after publication.
	ro.Signature[0] ^= 0xff
	if err := isp.refreshManifest(r.Clock, r.TTL); err != nil {
		t.Fatal(err)
	}
	res := r.Validate(at)
	if res.VRPs.Len() != 0 {
		t.Fatalf("tampered ROA produced VRPs: %v", res.VRPs.All())
	}
	if res.ROAsValid != 0 || res.ROAsSeen != 1 {
		t.Fatalf("seen/valid = %d/%d", res.ROAsSeen, res.ROAsValid)
	}
	if len(res.Problems) == 0 {
		t.Fatal("no problem recorded for tampered ROA")
	}
}

func TestValidateManifestHashMismatch(t *testing.T) {
	r := newRepo(t)
	ripe := r.Anchor("ripe")
	isp, _ := r.NewCA(ripe, "isp", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("193.0.0.0/16")},
		ASNs:     []cert.ASRange{{Min: 3333, Max: 3333}},
	})
	if _, err := r.AddROA(isp, 3333, []roa.Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}}); err != nil {
		t.Fatal(err)
	}
	// Substitute the ROA without refreshing the manifest: hash mismatch.
	ro2ee, ro2key, _ := roa.NewEE(500, "evil", []roa.Prefix{{Prefix: netutil.MustPrefix("193.0.7.0/24")}}, clock, clock.Add(ttl), isp.Cert, isp.Key)
	ro2, _ := roa.Sign(3333, []roa.Prefix{{Prefix: netutil.MustPrefix("193.0.7.0/24")}}, ro2ee, ro2key)
	isp.ROAs[0] = ro2
	res := r.Validate(at)
	if res.VRPs.Len() != 0 {
		t.Fatalf("substituted ROA accepted: %v", res.VRPs.All())
	}
	found := false
	for _, p := range res.Problems {
		if p.Object == "roa-0.roa" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected hash-mismatch problem, got %v", res.Problems)
	}
}

func TestValidateStaleManifestVoidsPP(t *testing.T) {
	r := newRepo(t)
	ripe := r.Anchor("ripe")
	isp, _ := r.NewCA(ripe, "isp", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("193.0.0.0/16")},
		ASNs:     []cert.ASRange{{Min: 3333, Max: 3333}},
	})
	if _, err := r.AddROA(isp, 3333, []roa.Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}}); err != nil {
		t.Fatal(err)
	}
	// Validate after the manifest expired.
	res := r.Validate(clock.Add(ttl + time.Hour))
	if res.VRPs.Len() != 0 {
		t.Fatal("stale publication point still produced VRPs")
	}
}

func TestRevokeROA(t *testing.T) {
	r := newRepo(t)
	ripe := r.Anchor("ripe")
	isp, _ := r.NewCA(ripe, "isp", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("193.0.0.0/16")},
		ASNs:     []cert.ASRange{{Min: 3333, Max: 3333}},
	})
	ro, err := r.AddROA(isp, 3333, []roa.Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Validate(at).VRPs.Len(); got != 1 {
		t.Fatalf("pre-revocation VRPs = %d", got)
	}
	if err := r.Revoke(isp, ro.EE.SerialNumber); err != nil {
		t.Fatal(err)
	}
	res := r.Validate(at)
	if res.VRPs.Len() != 0 {
		t.Fatalf("revoked ROA still yields VRPs: %v", res.VRPs.All())
	}
}

func TestValidateRevokedChildCA(t *testing.T) {
	r := newRepo(t)
	ripe := r.Anchor("ripe")
	isp, _ := r.NewCA(ripe, "isp", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("193.0.0.0/16")},
		ASNs:     []cert.ASRange{{Min: 3333, Max: 3333}},
	})
	if _, err := r.AddROA(isp, 3333, []roa.Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Revoke(ripe, isp.Cert.SerialNumber); err != nil {
		t.Fatal(err)
	}
	res := r.Validate(at)
	if res.VRPs.Len() != 0 {
		t.Fatal("ROAs under revoked CA still accepted")
	}
}

func TestMissingManifestVoidsPP(t *testing.T) {
	r := newRepo(t)
	ripe := r.Anchor("ripe")
	isp, _ := r.NewCA(ripe, "isp", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("193.0.0.0/16")},
		ASNs:     []cert.ASRange{{Min: 3333, Max: 3333}},
	})
	if _, err := r.AddROA(isp, 3333, []roa.Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}}); err != nil {
		t.Fatal(err)
	}
	isp.Manifest = nil
	res := r.Validate(at)
	if res.VRPs.Len() != 0 {
		t.Fatal("publication point without manifest accepted")
	}
}

func TestValidateAnchorIsolatesSubtree(t *testing.T) {
	r := newRepo(t)
	ripe := r.Anchor("ripe")
	arin := r.Anchor("arin")
	ispEU, err := r.NewCA(ripe, "isp-eu", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("193.0.0.0/16")},
		ASNs:     []cert.ASRange{{Min: 3333, Max: 3333}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddROA(ispEU, 3333, []roa.Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}}); err != nil {
		t.Fatal(err)
	}
	ispUS, err := r.NewCA(arin, "isp-us", cert.Resources{
		Prefixes: []pfx{netutil.MustPrefix("8.8.0.0/16")},
		ASNs:     []cert.ASRange{{Min: 15169, Max: 15169}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddROA(ispUS, 15169, []roa.Prefix{{Prefix: netutil.MustPrefix("8.8.8.0/24"), MaxLength: 24}}); err != nil {
		t.Fatal(err)
	}

	full := r.Validate(at)
	if full.VRPs.Len() != 2 {
		t.Fatalf("full validation: %d VRPs, want 2", full.VRPs.Len())
	}
	ripeOnly := r.ValidateAnchor(at, "ripe")
	if ripeOnly.VRPs.Len() != 1 {
		t.Fatalf("ripe subtree: %d VRPs, want 1", ripeOnly.VRPs.Len())
	}
	if got := ripeOnly.VRPs.Validate(netutil.MustPrefix("193.0.6.0/24"), 3333); got != vrp.Valid {
		t.Errorf("ripe VRP missing from subtree validation: %v", got)
	}
	if got := ripeOnly.VRPs.Validate(netutil.MustPrefix("8.8.8.0/24"), 15169); got != vrp.NotFound {
		t.Errorf("arin VRP leaked into ripe subtree: %v", got)
	}
	if r.ValidateAnchor(at, "nosuch").VRPs.Len() != 0 {
		t.Error("unknown anchor should validate to an empty set")
	}
}
