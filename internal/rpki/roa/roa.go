// Package roa implements Route Origin Authorizations.
//
// A ROA (RFC 6482) is a signed object stating that an AS is authorised
// to originate a set of IP prefixes, each optionally up to a maximum
// more-specific length. Real ROAs are CMS-wrapped; here the signed
// object carries its one-time end-entity (EE) certificate, the DER
// eContent, and an ECDSA signature made with the EE key, which preserves
// the validation chain: TA → CA → EE cert → ROA payload.
package roa

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/asn1"
	"errors"
	"fmt"
	"net/netip"
	"time"

	"ripki/internal/netutil"
	"ripki/internal/rpki/cert"
)

// Prefix is one authorised prefix inside a ROA.
type Prefix struct {
	Prefix netip.Prefix
	// MaxLength is the longest more-specific announcement authorised.
	// It must satisfy Prefix.Bits() <= MaxLength <= family bits.
	MaxLength int
}

// ROA is a route origin authorisation, possibly not yet validated.
type ROA struct {
	ASID     uint32
	Prefixes []Prefix

	// EE is the one-time end-entity certificate whose key signed the
	// payload. Its resources must cover every authorised prefix.
	EE *cert.Certificate
	// Signature is the EE key's signature over the DER eContent.
	Signature []byte
	// RawContent is the DER eContent (the signed payload).
	RawContent []byte
}

type asnROAPrefix struct {
	Addr      []byte
	Bits      int
	MaxLength int
}

type asnROAContent struct {
	Version  int
	ASID     int64
	Prefixes []asnROAPrefix
}

type asnROA struct {
	Content   asn1.RawValue
	EECert    []byte
	Signature []byte
}

const contentVersion = 1

// Sign builds and signs a ROA for asID over prefixes, using the provided
// EE certificate and its private key. The EE certificate should already
// be issued by the owning CA; Sign does not check resource containment
// (Validate does).
func Sign(asID uint32, prefixes []Prefix, ee *cert.Certificate, eeKey *ecdsa.PrivateKey) (*ROA, error) {
	if ee == nil || eeKey == nil {
		return nil, errors.New("roa: missing EE certificate or key")
	}
	if len(prefixes) == 0 {
		return nil, errors.New("roa: a ROA must authorise at least one prefix")
	}
	wire := asnROAContent{Version: contentVersion, ASID: int64(asID)}
	for _, p := range prefixes {
		cp, err := netutil.Canonical(p.Prefix)
		if err != nil {
			return nil, fmt.Errorf("roa: %w", err)
		}
		ml := p.MaxLength
		if ml == 0 {
			ml = cp.Bits()
		}
		if ml < cp.Bits() || ml > netutil.FamilyBits(cp.Addr()) {
			return nil, fmt.Errorf("roa: maxLength %d invalid for %v", ml, cp)
		}
		wire.Prefixes = append(wire.Prefixes, asnROAPrefix{
			Addr: cp.Addr().AsSlice(), Bits: cp.Bits(), MaxLength: ml,
		})
	}
	raw, err := asn1.Marshal(wire)
	if err != nil {
		return nil, fmt.Errorf("roa: encoding content: %w", err)
	}
	digest := sha256.Sum256(raw)
	sig, err := ecdsa.SignASN1(rand.Reader, eeKey, digest[:])
	if err != nil {
		return nil, fmt.Errorf("roa: signing: %w", err)
	}
	out := &ROA{ASID: asID, EE: ee, Signature: sig, RawContent: raw}
	for _, p := range wire.Prefixes {
		a, _ := netip.AddrFromSlice(p.Addr)
		out.Prefixes = append(out.Prefixes, Prefix{
			Prefix:    netip.PrefixFrom(a, p.Bits).Masked(),
			MaxLength: p.MaxLength,
		})
	}
	return out, nil
}

// Marshal encodes the ROA (content, EE certificate, signature) to DER.
func (r *ROA) Marshal() ([]byte, error) {
	eeDER, err := r.EE.Marshal()
	if err != nil {
		return nil, fmt.Errorf("roa: encoding EE certificate: %w", err)
	}
	return asn1.Marshal(asnROA{
		Content:   asn1.RawValue{FullBytes: r.RawContent},
		EECert:    eeDER,
		Signature: r.Signature,
	})
}

// Parse decodes a DER ROA. No validation is performed; call Validate.
func Parse(der []byte) (*ROA, error) {
	var w asnROA
	rest, err := asn1.Unmarshal(der, &w)
	if err != nil {
		return nil, fmt.Errorf("roa: parsing: %w", err)
	}
	if len(rest) != 0 {
		return nil, errors.New("roa: trailing garbage")
	}
	var content asnROAContent
	if rest, err = asn1.Unmarshal(w.Content.FullBytes, &content); err != nil {
		return nil, fmt.Errorf("roa: parsing content: %w", err)
	} else if len(rest) != 0 {
		return nil, errors.New("roa: trailing garbage after content")
	}
	if content.Version != contentVersion {
		return nil, fmt.Errorf("roa: unsupported content version %d", content.Version)
	}
	if content.ASID < 0 || content.ASID > 4294967295 {
		return nil, fmt.Errorf("roa: AS number %d out of range", content.ASID)
	}
	ee, err := cert.Parse(w.EECert)
	if err != nil {
		return nil, fmt.Errorf("roa: parsing EE certificate: %w", err)
	}
	out := &ROA{
		ASID:       uint32(content.ASID),
		EE:         ee,
		Signature:  w.Signature,
		RawContent: w.Content.FullBytes,
	}
	for _, p := range content.Prefixes {
		a, ok := netip.AddrFromSlice(p.Addr)
		if !ok {
			return nil, fmt.Errorf("roa: bad address length %d", len(p.Addr))
		}
		if p.Bits < 0 || p.Bits > netutil.FamilyBits(a) {
			return nil, fmt.Errorf("roa: bad prefix length %d", p.Bits)
		}
		if p.MaxLength < p.Bits || p.MaxLength > netutil.FamilyBits(a) {
			return nil, fmt.Errorf("roa: bad maxLength %d for /%d", p.MaxLength, p.Bits)
		}
		out.Prefixes = append(out.Prefixes, Prefix{
			Prefix:    netip.PrefixFrom(a, p.Bits).Masked(),
			MaxLength: p.MaxLength,
		})
	}
	if len(out.Prefixes) == 0 {
		return nil, errors.New("roa: no prefixes")
	}
	return out, nil
}

// Validate checks the ROA end to end against the issuing CA certificate:
//
//  1. the EE certificate chains to ca (signature, validity, resources),
//  2. the EE certificate is not revoked according to crl (if non-nil),
//  3. the payload signature verifies under the EE key,
//  4. every authorised prefix is contained in the EE certificate's
//     resources.
//
// This mirrors the steps an RPKI relying party performs before emitting
// VRPs ("Only cryptographically correct ROAs are further used").
func (r *ROA) Validate(ca *cert.Certificate, crl *cert.CRL, opts cert.VerifyOptions) error {
	if r.EE == nil {
		return errors.New("roa: missing EE certificate")
	}
	if r.EE.IsCA {
		return errors.New("roa: EE certificate must not be a CA")
	}
	if err := r.EE.Verify(ca, opts); err != nil {
		return fmt.Errorf("roa: EE certificate invalid: %w", err)
	}
	if crl != nil {
		if err := crl.Verify(ca, opts); err != nil {
			return fmt.Errorf("roa: CRL invalid: %w", err)
		}
		if crl.Revoked(r.EE.SerialNumber) {
			return fmt.Errorf("roa: EE certificate serial %d revoked", r.EE.SerialNumber)
		}
	}
	digest := sha256.Sum256(r.RawContent)
	if !ecdsa.VerifyASN1(r.EE.PublicKey, digest[:], r.Signature) {
		return errors.New("roa: payload signature does not verify")
	}
	for _, p := range r.Prefixes {
		if !r.EE.Resources.ContainsPrefix(p.Prefix) {
			return fmt.Errorf("roa: prefix %v outside EE certificate resources", p.Prefix)
		}
	}
	return nil
}

// String renders the ROA in the conventional "AS -> prefixes" form.
func (r *ROA) String() string {
	s := fmt.Sprintf("ROA(AS%d:", r.ASID)
	for _, p := range r.Prefixes {
		s += fmt.Sprintf(" %v-%d", p.Prefix, p.MaxLength)
	}
	return s + ")"
}

// NewEE issues a one-time end-entity certificate for a ROA covering
// exactly the given prefixes, signed by the CA. The returned key signs
// the ROA payload.
func NewEE(serial int64, subject string, prefixes []Prefix, notBefore, notAfter time.Time, caCert *cert.Certificate, caKey *ecdsa.PrivateKey) (*cert.Certificate, *ecdsa.PrivateKey, error) {
	key, err := cert.GenerateKey(nil)
	if err != nil {
		return nil, nil, fmt.Errorf("roa: generating EE key: %w", err)
	}
	res := cert.Resources{}
	for _, p := range prefixes {
		res.Prefixes = append(res.Prefixes, p.Prefix.Masked())
	}
	ee, err := cert.Issue(cert.Template{
		SerialNumber: serial,
		Subject:      subject,
		NotBefore:    notBefore,
		NotAfter:     notAfter,
		IsCA:         false,
		Resources:    res,
		PublicKey:    &key.PublicKey,
	}, caCert.Subject, caKey)
	if err != nil {
		return nil, nil, fmt.Errorf("roa: issuing EE certificate: %w", err)
	}
	return ee, key, nil
}
