package roa

import (
	"crypto/ecdsa"
	"net/netip"
	"testing"
	"time"

	"ripki/internal/netutil"
	"ripki/internal/rpki/cert"
)

var (
	t0 = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	t1 = time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC)
	tv = time.Date(2015, 11, 16, 0, 0, 0, 0, time.UTC)
)

type fixture struct {
	ta     *cert.Certificate
	caCert *cert.Certificate
	caKey  *ecdsa.PrivateKey
}

type pfx = netip.Prefix

func newFixture(t *testing.T) *fixture {
	t.Helper()
	taKey, err := cert.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := cert.Issue(cert.Template{
		SerialNumber: 1, Subject: "ta", NotBefore: t0, NotAfter: t1,
		IsCA: true, Resources: cert.AllResources(), PublicKey: &taKey.PublicKey,
	}, "ta", taKey)
	if err != nil {
		t.Fatal(err)
	}
	caKey, err := cert.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	caCert, err := cert.Issue(cert.Template{
		SerialNumber: 2, Subject: "isp", NotBefore: t0, NotAfter: t1,
		IsCA: true,
		Resources: cert.Resources{
			Prefixes: []pfx{netutil.MustPrefix("193.0.0.0/16"), netutil.MustPrefix("2001:db8::/32")},
			ASNs:     []cert.ASRange{{Min: 3333, Max: 3340}},
		},
		PublicKey: &caKey.PublicKey,
	}, "ta", taKey)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ta: ta, caCert: caCert, caKey: caKey}
}

func (f *fixture) sign(t *testing.T, asID uint32, prefixes []Prefix) *ROA {
	t.Helper()
	ee, eeKey, err := NewEE(100, "roa-ee", prefixes, t0, t1, f.caCert, f.caKey)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Sign(asID, prefixes, ee, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSignAndValidate(t *testing.T) {
	f := newFixture(t)
	r := f.sign(t, 3333, []Prefix{
		{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24},
		{Prefix: netutil.MustPrefix("2001:db8:1::/48"), MaxLength: 56},
	})
	if err := r.Validate(f.caCert, nil, cert.VerifyOptions{Now: tv}); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	f := newFixture(t)
	r := f.sign(t, 3334, []Prefix{
		{Prefix: netutil.MustPrefix("193.0.0.0/17"), MaxLength: 20},
	})
	der, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	if got.ASID != 3334 || len(got.Prefixes) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Prefixes[0].Prefix != netutil.MustPrefix("193.0.0.0/17") || got.Prefixes[0].MaxLength != 20 {
		t.Fatalf("prefix round trip: %+v", got.Prefixes[0])
	}
	if err := got.Validate(f.caCert, nil, cert.VerifyOptions{Now: tv}); err != nil {
		t.Fatalf("parsed ROA fails validation: %v", err)
	}
}

func TestSignDefaultsMaxLength(t *testing.T) {
	f := newFixture(t)
	r := f.sign(t, 3333, []Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24")}})
	if r.Prefixes[0].MaxLength != 24 {
		t.Errorf("default MaxLength = %d, want 24", r.Prefixes[0].MaxLength)
	}
}

func TestSignRejectsBadInput(t *testing.T) {
	f := newFixture(t)
	ee, eeKey, err := NewEE(100, "ee", []Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24")}}, t0, t1, f.caCert, f.caKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sign(1, nil, ee, eeKey); err == nil {
		t.Error("empty prefix list accepted")
	}
	if _, err := Sign(1, []Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 20}}, ee, eeKey); err == nil {
		t.Error("maxLength < bits accepted")
	}
	if _, err := Sign(1, []Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 40}}, ee, eeKey); err == nil {
		t.Error("maxLength > 32 accepted for IPv4")
	}
	if _, err := Sign(1, []Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24")}}, nil, eeKey); err == nil {
		t.Error("missing EE accepted")
	}
}

func TestValidateRejectsTamperedContent(t *testing.T) {
	f := newFixture(t)
	r := f.sign(t, 3333, []Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}})
	der, _ := r.Marshal()
	// Flip a byte inside the content and reparse; either parse fails or
	// validation must fail.
	for i := 0; i < len(der); i += 7 {
		mut := append([]byte(nil), der...)
		mut[i] ^= 0x01
		got, err := Parse(mut)
		if err != nil {
			continue
		}
		if err := got.Validate(f.caCert, nil, cert.VerifyOptions{Now: tv}); err == nil {
			if string(got.RawContent) != string(r.RawContent) ||
				string(got.EE.RawTBS) != string(r.EE.RawTBS) {
				t.Fatalf("bit flip at %d yielded a different yet valid ROA", i)
			}
		}
	}
}

func TestValidateRejectsResourceMismatch(t *testing.T) {
	f := newFixture(t)
	// EE cert covers only /24 but ROA claims a different prefix: build by
	// signing with mismatched lists.
	eePrefixes := []Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24")}}
	roaPrefixes := []Prefix{{Prefix: netutil.MustPrefix("193.0.7.0/24"), MaxLength: 24}}
	ee, eeKey, err := NewEE(101, "ee", eePrefixes, t0, t1, f.caCert, f.caKey)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Sign(3333, roaPrefixes, ee, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(f.caCert, nil, cert.VerifyOptions{Now: tv}); err == nil {
		t.Error("ROA with prefix outside EE resources validated")
	}
}

func TestValidateRejectsRevokedEE(t *testing.T) {
	f := newFixture(t)
	r := f.sign(t, 3333, []Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}})
	crl, err := cert.IssueCRL("isp", f.caKey, t0, t1, []int64{100})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(f.caCert, crl, cert.VerifyOptions{Now: tv}); err == nil {
		t.Error("ROA with revoked EE validated")
	}
	// A CRL that does not list the EE must pass.
	crlOK, err := cert.IssueCRL("isp", f.caKey, t0, t1, []int64{999})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(f.caCert, crlOK, cert.VerifyOptions{Now: tv}); err != nil {
		t.Errorf("ROA with clean CRL rejected: %v", err)
	}
}

func TestValidateRejectsExpiredEE(t *testing.T) {
	f := newFixture(t)
	r := f.sign(t, 3333, []Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}})
	if err := r.Validate(f.caCert, nil, cert.VerifyOptions{Now: t1.Add(time.Hour)}); err == nil {
		t.Error("ROA with expired EE validated")
	}
}

func TestValidateRejectsCAAsEE(t *testing.T) {
	f := newFixture(t)
	// Abuse the CA certificate as an "EE".
	prefixes := []Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}}
	r, err := Sign(3333, prefixes, f.caCert, f.caKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(f.ta, nil, cert.VerifyOptions{Now: tv}); err == nil {
		t.Error("ROA signed by CA certificate accepted as EE")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte{0x02, 0x01, 0x00}); err == nil {
		t.Error("junk parsed")
	}
	f := newFixture(t)
	r := f.sign(t, 3333, []Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 24}})
	der, _ := r.Marshal()
	if _, err := Parse(der[:len(der)/2]); err == nil {
		t.Error("truncated ROA parsed")
	}
	if _, err := Parse(append(der, 0x01)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestString(t *testing.T) {
	f := newFixture(t)
	r := f.sign(t, 3333, []Prefix{{Prefix: netutil.MustPrefix("193.0.6.0/24"), MaxLength: 28}})
	want := "ROA(AS3333: 193.0.6.0/24-28)"
	if r.String() != want {
		t.Errorf("String = %q, want %q", r.String(), want)
	}
}
