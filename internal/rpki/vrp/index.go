package vrp

import (
	"cmp"
	"fmt"
	"net/netip"
	"slices"

	"ripki/internal/netutil"
	"ripki/internal/radix"
)

// Index is an immutable, lock-free counterpart of Set: the same
// radix-backed RFC 6811 queries, but frozen at construction. Because
// nothing can mutate it, every method is safe for any number of
// concurrent readers without taking a lock — the validation service
// publishes one Index per snapshot behind an atomic pointer and lets
// the read path scale linearly with cores.
type Index struct {
	tree  radix.Tree[[]VRP]
	count int
}

// NewIndex builds an index from a slice of VRPs. Prefixes are
// canonicalised and duplicate triples collapse, exactly as in Set.Add
// (both run the same insertVRP).
func NewIndex(vs []VRP) (*Index, error) {
	ix := &Index{}
	for _, v := range vs {
		inserted, err := insertVRP(&ix.tree, v)
		if err != nil {
			return nil, err
		}
		if inserted {
			ix.count++
		}
	}
	return ix, nil
}

// IndexOf freezes a Set into an Index.
func IndexOf(s *Set) (*Index, error) { return NewIndex(s.All()) }

// Len returns the number of distinct VRPs.
func (ix *Index) Len() int { return ix.count }

// Validate classifies the route (prefix, originAS) per RFC 6811.
func (ix *Index) Validate(prefix netip.Prefix, originAS uint32) State {
	st, _ := ix.ValidateExplain(prefix, originAS)
	return st
}

// ValidateExplain is Validate plus the list of covering VRPs
// considered. It takes no lock and allocates only the covering slice.
func (ix *Index) ValidateExplain(prefix netip.Prefix, originAS uint32) (State, []VRP) {
	cp, err := netutil.Canonical(prefix)
	if err != nil {
		return NotFound, nil
	}
	return classify(ix.tree.CoveringPrefix(cp, nil), cp, originAS)
}

// All returns every VRP, sorted by prefix then maxLength then ASN.
func (ix *Index) All() []VRP {
	out := make([]VRP, 0, ix.count)
	ix.tree.Walk(func(_ netip.Prefix, vs []VRP) bool {
		out = append(out, vs...)
		return true
	})
	sortAll(out)
	return out
}

// insertVRP validates, canonicalises and stores one VRP into a tree,
// reporting whether it was new — the single implementation Set.Add and
// NewIndex share (the Set additionally wraps it in its mutex).
func insertVRP(tree *radix.Tree[[]VRP], v VRP) (bool, error) {
	cp, err := netutil.Canonical(v.Prefix)
	if err != nil {
		return false, fmt.Errorf("vrp: %w", err)
	}
	if v.MaxLength < cp.Bits() || v.MaxLength > netutil.FamilyBits(cp.Addr()) {
		return false, fmt.Errorf("vrp: maxLength %d out of range for %v", v.MaxLength, cp)
	}
	v.Prefix = cp
	existing, _ := tree.Lookup(cp)
	for _, e := range existing {
		if e == v {
			return false, nil
		}
	}
	if err := tree.Insert(cp, append(existing, v)); err != nil {
		return false, err
	}
	return true, nil
}

// classify applies the RFC 6811 decision to the covering entries of a
// canonical route prefix — the single implementation Set and Index
// share.
func classify(entries []radix.Entry[[]VRP], cp netip.Prefix, originAS uint32) (State, []VRP) {
	if len(entries) == 0 {
		return NotFound, nil
	}
	var covering []VRP
	state := Invalid
	for _, e := range entries {
		for _, v := range e.Value {
			covering = append(covering, v)
			if v.ASN == originAS && originAS != 0 && cp.Bits() <= v.MaxLength {
				state = Valid
			}
		}
	}
	return state, covering
}

// Compare orders two VRPs by (prefix, maxLength, ASN) — the canonical
// total order All (on both Set and Index) reports in. It is exported so
// every other VRP ordering in the tree (the sim engine's truth
// bookkeeping, the RTR cache's delta records) sorts with the same
// comparator and cannot drift from All.
func Compare(a, b VRP) int {
	if c := netutil.ComparePrefixes(a.Prefix, b.Prefix); c != 0 {
		return c
	}
	if c := cmp.Compare(a.MaxLength, b.MaxLength); c != 0 {
		return c
	}
	return cmp.Compare(a.ASN, b.ASN)
}

// sortAll orders VRPs by Compare. The comparator is a strict total
// order over the full triple, so the unstable sort is deterministic.
func sortAll(out []VRP) {
	slices.SortFunc(out, Compare)
}
