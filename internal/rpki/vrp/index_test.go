package vrp

import (
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"ripki/internal/netutil"
)

// randomVRPs builds a deterministic pseudo-random VRP population with
// overlapping prefixes (aggregates, more-specifics, sibling origins).
func randomVRPs(rnd *rand.Rand, n int) []VRP {
	vs := make([]VRP, 0, n)
	for i := 0; i < n; i++ {
		bits := 8 + rnd.Intn(17) // /8../24
		addr := netip.AddrFrom4([4]byte{byte(10 + rnd.Intn(4)), byte(rnd.Intn(256)), byte(rnd.Intn(256)), 0})
		p, _ := netutil.Canonical(netip.PrefixFrom(addr, bits))
		maxLen := bits + rnd.Intn(32-bits+1)
		vs = append(vs, VRP{Prefix: p, MaxLength: maxLen, ASN: uint32(64500 + rnd.Intn(16))})
	}
	return vs
}

// TestIndexMatchesSet: Index is a frozen Set — same Len, same All
// order, same ValidateExplain on every probed route, including routes
// more specific than any VRP and routes outside all coverage.
func TestIndexMatchesSet(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	vs := randomVRPs(rnd, 400)
	set, err := FromVRPs(vs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(vs)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != set.Len() {
		t.Fatalf("Len: index %d, set %d", ix.Len(), set.Len())
	}
	ia, sa := ix.All(), set.All()
	if len(ia) != len(sa) {
		t.Fatalf("All: index %d entries, set %d", len(ia), len(sa))
	}
	for i := range ia {
		if ia[i] != sa[i] {
			t.Fatalf("All[%d]: index %v, set %v", i, ia[i], sa[i])
		}
	}
	for trial := 0; trial < 2000; trial++ {
		var p netip.Prefix
		if trial%3 == 0 && len(vs) > 0 {
			// Probe at and below an actual VRP prefix.
			v := vs[rnd.Intn(len(vs))]
			bits := v.Prefix.Bits() + rnd.Intn(32-v.Prefix.Bits()+1)
			p, _ = netutil.Canonical(netip.PrefixFrom(v.Prefix.Addr(), bits))
		} else {
			bits := 8 + rnd.Intn(25)
			addr := netip.AddrFrom4([4]byte{byte(rnd.Intn(224)), byte(rnd.Intn(256)), byte(rnd.Intn(256)), 0})
			p, _ = netutil.Canonical(netip.PrefixFrom(addr, bits))
		}
		asn := uint32(64500 + rnd.Intn(18))
		ss, sc := set.ValidateExplain(p, asn)
		is, ic := ix.ValidateExplain(p, asn)
		if ss != is || len(sc) != len(ic) {
			t.Fatalf("route %v AS%d: set %v (%d covering), index %v (%d covering)",
				p, asn, ss, len(sc), is, len(ic))
		}
		for i := range sc {
			if sc[i] != ic[i] {
				t.Fatalf("route %v AS%d covering[%d]: set %v, index %v", p, asn, i, sc[i], ic[i])
			}
		}
	}
}

// TestIndexRejectsBadVRPs mirrors Set.Add's input validation.
func TestIndexRejectsBadVRPs(t *testing.T) {
	if _, err := NewIndex([]VRP{{Prefix: netip.Prefix{}, MaxLength: 24}}); err == nil {
		t.Error("invalid prefix accepted")
	}
	if _, err := NewIndex([]VRP{{Prefix: netutil.MustPrefix("10.0.0.0/16"), MaxLength: 8, ASN: 1}}); err == nil {
		t.Error("maxLength below prefix length accepted")
	}
	if _, err := NewIndex([]VRP{{Prefix: netutil.MustPrefix("10.0.0.0/16"), MaxLength: 33, ASN: 1}}); err == nil {
		t.Error("maxLength above family width accepted")
	}
}

// TestIndexDeduplicates: duplicate triples collapse, like Set.Add.
func TestIndexDeduplicates(t *testing.T) {
	v := VRP{Prefix: netutil.MustPrefix("192.0.2.0/24"), MaxLength: 24, ASN: 65001}
	ix, err := NewIndex([]VRP{v, v, v})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
}

// TestIndexConcurrentReads hammers one Index from many goroutines —
// with no mutex anywhere, the race detector proves immutability is the
// only synchronisation the read path needs.
func TestIndexConcurrentReads(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	ix, err := NewIndex(randomVRPs(rnd, 300))
	if err != nil {
		t.Fatal(err)
	}
	routes := make([]netip.Prefix, 64)
	for i := range routes {
		addr := netip.AddrFrom4([4]byte{byte(10 + i%4), byte(i), 0, 0})
		routes[i] = netip.PrefixFrom(addr, 16)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r := routes[(g*31+i)%len(routes)]
				ix.ValidateExplain(r, uint32(64500+i%16))
			}
		}(g)
	}
	wg.Wait()
}
