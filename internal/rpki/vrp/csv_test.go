package vrp

import (
	"bytes"
	"strings"
	"testing"

	"ripki/internal/netutil"
)

func TestCSVRoundTrip(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, "193.0.6.0/24", 24, 3333)
	mustAdd(t, s, "10.0.0.0/8", 16, 64500)
	mustAdd(t, s, "2001:db8::/32", 48, 64501)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("Len = %d", got.Len())
	}
	if st := got.Validate(netutil.MustPrefix("193.0.6.0/24"), 3333); st != Valid {
		t.Errorf("reloaded set: %v", st)
	}
}

func TestReadCSVFlexible(t *testing.T) {
	in := "# comment\n193.0.6.0/24,24,3333\n10.0.0.0/8,16,AS64500\n\n"
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := []string{
		"notaprefix,24,1",
		"10.0.0.0/8,x,1",
		"10.0.0.0/8,16,ASx",
		"10.0.0.0/8,16",
		"10.0.0.0/8,4,1", // maxLength < bits
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q) accepted bad input", in)
		}
	}
}
