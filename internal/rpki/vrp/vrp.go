// Package vrp implements Validated ROA Payloads and RFC 6811 prefix
// origin validation.
//
// A VRP is the (prefix, maxLength, origin AS) triple extracted from a
// cryptographically valid ROA. Given the full VRP set, any BGP route
// (prefix, origin AS) is classified into one of three states:
//
//   - NotFound: no VRP covers the route's prefix,
//   - Valid: some covering VRP matches the origin AS and the route's
//     prefix length does not exceed that VRP's maxLength,
//   - Invalid: at least one VRP covers the prefix but none matches.
//
// These are exactly the three states the paper reports in Figure 2.
package vrp

import (
	"fmt"
	"net/netip"
	"sync"

	"ripki/internal/netutil"
	"ripki/internal/radix"
)

// State is an RFC 6811 origin-validation outcome.
type State uint8

const (
	// NotFound means no VRP covers the announced prefix.
	NotFound State = iota
	// Valid means a covering VRP authorises the origin AS at this length.
	Valid
	// Invalid means the prefix is covered but no VRP matches.
	Invalid
)

// String returns the conventional lower-case state name.
func (s State) String() string {
	switch s {
	case NotFound:
		return "not found"
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// VRP is a validated ROA payload.
type VRP struct {
	Prefix    netip.Prefix
	MaxLength int
	ASN       uint32
}

// String renders the VRP in "prefix-maxlen => ASN" form.
func (v VRP) String() string {
	return fmt.Sprintf("%v-%d => AS%d", v.Prefix, v.MaxLength, v.ASN)
}

// Set is a queryable collection of VRPs. It is safe for concurrent
// readers once built; Add must not race with queries.
type Set struct {
	mu    sync.RWMutex
	tree  radix.Tree[[]VRP]
	count int
}

// NewSet returns an empty VRP set.
func NewSet() *Set { return &Set{} }

// FromVRPs builds a set from a slice. Insertion order does not matter:
// two sets holding the same triples are indistinguishable (All is
// sorted, Diff is order-free), so callers may feed map-iteration order.
func FromVRPs(vs []VRP) (*Set, error) {
	s := NewSet()
	for _, v := range vs {
		if err := s.Add(v); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Add inserts a VRP. Duplicate triples are ignored.
func (s *Set) Add(v VRP) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	inserted, err := insertVRP(&s.tree, v)
	if err != nil {
		return err
	}
	if inserted {
		s.count++
	}
	return nil
}

// Remove deletes a VRP, reporting whether it was present. The radix
// node is dropped when its last payload goes, so covering queries never
// see a prefix with no VRPs behind it.
func (s *Set) Remove(v VRP) bool {
	cp, err := netutil.Canonical(v.Prefix)
	if err != nil {
		return false
	}
	v.Prefix = cp
	s.mu.Lock()
	defer s.mu.Unlock()
	existing, ok := s.tree.Lookup(cp)
	if !ok {
		return false
	}
	for i, e := range existing {
		if e != v {
			continue
		}
		if len(existing) == 1 {
			s.tree.Delete(cp)
		} else {
			rest := make([]VRP, 0, len(existing)-1)
			rest = append(rest, existing[:i]...)
			rest = append(rest, existing[i+1:]...)
			if err := s.tree.Insert(cp, rest); err != nil {
				return false
			}
		}
		s.count--
		return true
	}
	return false
}

// Contains reports whether the set holds exactly v (after prefix
// canonicalisation).
func (s *Set) Contains(v VRP) bool {
	cp, err := netutil.Canonical(v.Prefix)
	if err != nil {
		return false
	}
	v.Prefix = cp
	s.mu.RLock()
	defer s.mu.RUnlock()
	existing, _ := s.tree.Lookup(cp)
	for _, e := range existing {
		if e == v {
			return true
		}
	}
	return false
}

// Clone returns an independent copy: the original and the clone can be
// mutated without affecting each other. Delta-maintained truth state
// (the sim engine, the RTR cache's in-place update path) clones the
// shared snapshot once and then edits its private copy.
func (s *Set) Clone() *Set {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := NewSet()
	s.tree.Walk(func(p netip.Prefix, vs []VRP) bool {
		cp := make([]VRP, len(vs))
		copy(cp, vs)
		// Walk yields prefixes that already passed canonicalisation on
		// the way in, so Insert cannot fail.
		_ = c.tree.Insert(p, cp)
		return true
	})
	c.count = s.count
	return c
}

// Len returns the number of distinct VRPs.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Validate classifies the route (prefix, originAS) per RFC 6811.
func (s *Set) Validate(prefix netip.Prefix, originAS uint32) State {
	st, _ := s.ValidateExplain(prefix, originAS)
	return st
}

// ValidateExplain is Validate plus the list of covering VRPs considered,
// for diagnostics and the looking-glass tools.
func (s *Set) ValidateExplain(prefix netip.Prefix, originAS uint32) (State, []VRP) {
	cp, err := netutil.Canonical(prefix)
	if err != nil {
		return NotFound, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return classify(s.tree.CoveringPrefix(cp, nil), cp, originAS)
}

// All returns every VRP, sorted by prefix then maxLength then ASN.
// The slice is freshly allocated.
func (s *Set) All() []VRP {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]VRP, 0, s.count)
	s.tree.Walk(func(_ netip.Prefix, vs []VRP) bool {
		out = append(out, vs...)
		return true
	})
	sortAll(out)
	return out
}

// HasASN reports whether any VRP in the set names asn as its origin —
// used by the CDN study to ask "does this AS appear in the RPKI at
// all?".
func (s *Set) HasASN(asn uint32) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	found := false
	s.tree.Walk(func(_ netip.Prefix, vs []VRP) bool {
		for _, v := range vs {
			if v.ASN == asn {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// Diff computes the VRPs to announce and withdraw to transform old into
// s. It is used by the RTR cache to build incremental updates.
func (s *Set) Diff(old *Set) (announce, withdraw []VRP) {
	cur := s.All()
	prev := old.All()
	curSet := make(map[VRP]bool, len(cur))
	for _, v := range cur {
		curSet[v] = true
	}
	prevSet := make(map[VRP]bool, len(prev))
	for _, v := range prev {
		prevSet[v] = true
	}
	for _, v := range cur {
		if !prevSet[v] {
			announce = append(announce, v)
		}
	}
	for _, v := range prev {
		if !curSet[v] {
			withdraw = append(withdraw, v)
		}
	}
	return announce, withdraw
}
