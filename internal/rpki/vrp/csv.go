package vrp

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
)

// WriteCSV emits the set as "prefix,maxLength,asn" lines (the format
// rpki-client and routinator use for their CSV exports), sorted.
func (s *Set) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "prefix,maxLength,ASN"); err != nil {
		return err
	}
	for _, v := range s.All() {
		if _, err := fmt.Fprintf(bw, "%s,%d,AS%d\n", v.Prefix, v.MaxLength, v.ASN); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the WriteCSV format (header line optional, "AS" prefix
// on the ASN optional).
func ReadCSV(r io.Reader) (*Set, error) {
	s := NewSet()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if line == 1 && strings.HasPrefix(strings.ToLower(text), "prefix,") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("vrp: line %d: want 3 fields, got %d", line, len(parts))
		}
		prefix, err := netip.ParsePrefix(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("vrp: line %d: %w", line, err)
		}
		maxLen, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("vrp: line %d: bad maxLength: %w", line, err)
		}
		asnText := strings.TrimPrefix(strings.TrimSpace(strings.ToUpper(parts[2])), "AS")
		asn, err := strconv.ParseUint(asnText, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("vrp: line %d: bad ASN: %w", line, err)
		}
		if err := s.Add(VRP{Prefix: prefix, MaxLength: maxLen, ASN: uint32(asn)}); err != nil {
			return nil, fmt.Errorf("vrp: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
