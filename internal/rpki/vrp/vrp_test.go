package vrp

import (
	"math/rand"
	"net/netip"
	"testing"

	"ripki/internal/netutil"
)

func mustAdd(t *testing.T, s *Set, prefix string, maxLen int, asn uint32) {
	t.Helper()
	if err := s.Add(VRP{Prefix: netutil.MustPrefix(prefix), MaxLength: maxLen, ASN: asn}); err != nil {
		t.Fatal(err)
	}
}

// TestRFC6811TruthTable walks the canonical origin-validation cases.
func TestRFC6811TruthTable(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, "10.0.0.0/16", 24, 64500)
	mustAdd(t, s, "10.0.0.0/16", 16, 64501)
	mustAdd(t, s, "2001:db8::/32", 48, 64500)

	cases := []struct {
		prefix string
		origin uint32
		want   State
	}{
		// Exact prefix, authorised AS.
		{"10.0.0.0/16", 64500, Valid},
		// More-specific within maxLength.
		{"10.0.128.0/24", 64500, Valid},
		// More-specific beyond maxLength → Invalid even for the right AS.
		{"10.0.128.0/25", 64500, Invalid},
		// Covered, wrong AS.
		{"10.0.0.0/16", 64999, Invalid},
		// Second VRP matches at /16 only.
		{"10.0.0.0/16", 64501, Valid},
		{"10.0.0.0/17", 64501, Invalid},
		// Not covered at all.
		{"11.0.0.0/16", 64500, NotFound},
		// Less specific than any VRP is NOT covered (RFC 6811: covered
		// means VRP prefix contains route prefix).
		{"10.0.0.0/8", 64500, NotFound},
		// IPv6.
		{"2001:db8:47::/48", 64500, Valid},
		{"2001:db8:47::/49", 64500, Invalid},
		{"2001:db9::/32", 64500, NotFound},
		// AS0 never validates (AS0 VRPs are a disavowal).
		{"10.0.0.0/16", 0, Invalid},
	}
	for _, c := range cases {
		got := s.Validate(netutil.MustPrefix(c.prefix), c.origin)
		if got != c.want {
			t.Errorf("Validate(%s, AS%d) = %v, want %v", c.prefix, c.origin, got, c.want)
		}
	}
}

func TestValidateExplain(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, "10.0.0.0/16", 24, 64500)
	mustAdd(t, s, "10.0.0.0/8", 8, 64400)
	st, covering := s.ValidateExplain(netutil.MustPrefix("10.0.1.0/24"), 64500)
	if st != Valid {
		t.Fatalf("state = %v, want Valid", st)
	}
	if len(covering) != 2 {
		t.Fatalf("covering = %v, want 2 VRPs", covering)
	}
}

func TestAddValidation(t *testing.T) {
	s := NewSet()
	if err := s.Add(VRP{Prefix: netip.Prefix{}, MaxLength: 24, ASN: 1}); err == nil {
		t.Error("invalid prefix accepted")
	}
	if err := s.Add(VRP{Prefix: netutil.MustPrefix("10.0.0.0/16"), MaxLength: 8, ASN: 1}); err == nil {
		t.Error("maxLength < bits accepted")
	}
	if err := s.Add(VRP{Prefix: netutil.MustPrefix("10.0.0.0/16"), MaxLength: 33, ASN: 1}); err == nil {
		t.Error("maxLength > 32 accepted")
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, "10.0.0.0/16", 24, 64500)
	mustAdd(t, s, "10.0.0.0/16", 24, 64500)
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	// Same prefix, different maxLength or ASN are distinct.
	mustAdd(t, s, "10.0.0.0/16", 20, 64500)
	mustAdd(t, s, "10.0.0.0/16", 24, 64501)
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestAllSorted(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, "192.0.2.0/24", 24, 7)
	mustAdd(t, s, "10.0.0.0/8", 8, 3)
	mustAdd(t, s, "10.0.0.0/8", 8, 1)
	mustAdd(t, s, "2001:db8::/32", 32, 5)
	all := s.All()
	if len(all) != 4 {
		t.Fatalf("All = %v", all)
	}
	want := []VRP{
		{netutil.MustPrefix("10.0.0.0/8"), 8, 1},
		{netutil.MustPrefix("10.0.0.0/8"), 8, 3},
		{netutil.MustPrefix("192.0.2.0/24"), 24, 7},
		{netutil.MustPrefix("2001:db8::/32"), 32, 5},
	}
	for i := range want {
		if all[i] != want[i] {
			t.Errorf("All[%d] = %v, want %v", i, all[i], want[i])
		}
	}
}

func TestHasASN(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, "10.0.0.0/8", 8, 100)
	if !s.HasASN(100) {
		t.Error("HasASN(100) = false")
	}
	if s.HasASN(101) {
		t.Error("HasASN(101) = true")
	}
}

func TestDiff(t *testing.T) {
	old := NewSet()
	mustAdd(t, old, "10.0.0.0/8", 8, 1)
	mustAdd(t, old, "11.0.0.0/8", 8, 2)
	cur := NewSet()
	mustAdd(t, cur, "10.0.0.0/8", 8, 1)
	mustAdd(t, cur, "12.0.0.0/8", 8, 3)
	ann, wd := cur.Diff(old)
	if len(ann) != 1 || ann[0].Prefix != netutil.MustPrefix("12.0.0.0/8") {
		t.Errorf("announce = %v", ann)
	}
	if len(wd) != 1 || wd[0].Prefix != netutil.MustPrefix("11.0.0.0/8") {
		t.Errorf("withdraw = %v", wd)
	}
}

func TestStateString(t *testing.T) {
	if NotFound.String() != "not found" || Valid.String() != "valid" || Invalid.String() != "invalid" {
		t.Error("State strings wrong")
	}
	if State(99).String() != "State(99)" {
		t.Error("unknown state string wrong")
	}
}

// Property: Validate agrees with a naive scan over all VRPs.
func TestValidateAgainstNaive(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	s := NewSet()
	var all []VRP
	for i := 0; i < 800; i++ {
		var b [4]byte
		rnd.Read(b[:])
		bits := 8 + rnd.Intn(17) // /8../24
		p := netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
		v := VRP{Prefix: p, MaxLength: bits + rnd.Intn(33-bits), ASN: uint32(rnd.Intn(16))}
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
		all = append(all, v)
	}
	naive := func(p netip.Prefix, asn uint32) State {
		covered, valid := false, false
		for _, v := range all {
			if netutil.Covers(v.Prefix, p) {
				covered = true
				if v.ASN == asn && asn != 0 && p.Bits() <= v.MaxLength {
					valid = true
				}
			}
		}
		switch {
		case valid:
			return Valid
		case covered:
			return Invalid
		default:
			return NotFound
		}
	}
	for i := 0; i < 3000; i++ {
		var b [4]byte
		rnd.Read(b[:])
		bits := 8 + rnd.Intn(25)
		p := netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
		asn := uint32(rnd.Intn(16))
		if got, want := s.Validate(p, asn), naive(p, asn); got != want {
			t.Fatalf("Validate(%v, AS%d) = %v, want %v", p, asn, got, want)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	rnd := rand.New(rand.NewSource(4))
	s := NewSet()
	for i := 0; i < 20000; i++ {
		var buf [4]byte
		rnd.Read(buf[:])
		bits := 8 + rnd.Intn(17)
		p := netip.PrefixFrom(netip.AddrFrom4(buf), bits).Masked()
		s.Add(VRP{Prefix: p, MaxLength: bits, ASN: uint32(rnd.Intn(65000))})
	}
	queries := make([]netip.Prefix, 1024)
	for i := range queries {
		var buf [4]byte
		rnd.Read(buf[:])
		queries[i] = netip.PrefixFrom(netip.AddrFrom4(buf), 24).Masked()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Validate(queries[i%len(queries)], 64500)
	}
}
