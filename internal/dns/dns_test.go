package dns

import (
	"math/rand"
	"net"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"ripki/internal/netutil"
)

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"Example.COM":  "example.com",
		"example.com.": "example.com",
		"":             ".",
		".":            ".",
		"WWW.Foo.Bar.": "www.foo.bar",
	}
	for in, want := range cases {
		if got := CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func sampleMessage() *Message {
	return &Message{
		Header: Header{ID: 0x1234, Response: true, Authoritative: true, RecursionDesired: true, RecursionAvailable: true},
		Questions: []Question{
			{Name: "www.example.com", Type: TypeA, Class: ClassINET},
		},
		Answers: []RR{
			{Name: "www.example.com", Type: TypeCNAME, Class: ClassINET, TTL: 300, Target: "www.example.com.edgekey.net"},
			{Name: "www.example.com.edgekey.net", Type: TypeCNAME, Class: ClassINET, TTL: 300, Target: "e1234.a.cdn.net"},
			{Name: "e1234.a.cdn.net", Type: TypeA, Class: ClassINET, TTL: 20, Addr: netutil.MustAddr("203.0.113.77")},
			{Name: "e1234.a.cdn.net", Type: TypeAAAA, Class: ClassINET, TTL: 20, Addr: netutil.MustAddr("2001:db8::77")},
		},
		Authority: []RR{
			{Name: "cdn.net", Type: TypeSOA, Class: ClassINET, TTL: 900, SOA: &SOAData{
				MName: "ns1.cdn.net", RName: "hostmaster.cdn.net",
				Serial: 2015070101, Refresh: 3600, Retry: 600, Expire: 86400, Minimum: 300,
			}},
		},
		Additional: []RR{
			{Name: "cdn.net", Type: TypeTXT, Class: ClassINET, TTL: 60, TXT: []string{"v=spf1 -all", "x"}},
			{Name: "cdn.net", Type: TypeNS, Class: ClassINET, TTL: 60, Target: "ns1.cdn.net"},
		},
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if got.Header != m.Header {
		t.Errorf("header: %+v vs %+v", got.Header, m.Header)
	}
	if !reflect.DeepEqual(got.Questions, m.Questions) {
		t.Errorf("questions: %+v vs %+v", got.Questions, m.Questions)
	}
	if len(got.Answers) != len(m.Answers) {
		t.Fatalf("answers: %d vs %d", len(got.Answers), len(m.Answers))
	}
	for i := range m.Answers {
		w, g := m.Answers[i], got.Answers[i]
		if g.Name != CanonicalName(w.Name) || g.Type != w.Type || g.TTL != w.TTL {
			t.Errorf("answer %d header mismatch: %+v vs %+v", i, g, w)
		}
		if w.Type == TypeCNAME && g.Target != CanonicalName(w.Target) {
			t.Errorf("answer %d target = %q", i, g.Target)
		}
		if (w.Type == TypeA || w.Type == TypeAAAA) && g.Addr != w.Addr {
			t.Errorf("answer %d addr = %v", i, g.Addr)
		}
	}
	if !reflect.DeepEqual(got.Authority[0].SOA, m.Authority[0].SOA) {
		t.Errorf("SOA: %+v vs %+v", got.Authority[0].SOA, m.Authority[0].SOA)
	}
	if !reflect.DeepEqual(got.Additional[0].TXT, m.Additional[0].TXT) {
		t.Errorf("TXT: %v vs %v", got.Additional[0].TXT, m.Additional[0].TXT)
	}
	if got.Additional[1].Target != "ns1.cdn.net" {
		t.Errorf("NS target = %q", got.Additional[1].Target)
	}
}

func TestCompressionSavesSpace(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Names repeat heavily in this message, so the encoder must emit
	// compression pointers (0xC0-prefixed 2-byte references).
	pointers := 0
	for i := 0; i+1 < len(wire); i++ {
		if wire[i]&0xC0 == 0xC0 {
			pointers++
		}
	}
	if pointers < 3 {
		t.Errorf("only %d compression pointers in %d-byte message", pointers, len(wire))
	}
	// And the compressed form must be meaningfully smaller than the sum
	// of full name encodings.
	var rawNames int
	for _, rr := range append(append(append([]RR{}, m.Answers...), m.Authority...), m.Additional...) {
		rawNames += len(rr.Name) + 2
	}
	if len(wire) >= 12+rawNames+120 {
		t.Errorf("message is %d bytes; compression appears ineffective", len(wire))
	}
}

func TestPackRejectsBadNames(t *testing.T) {
	long := strings.Repeat("a", 64)
	if _, err := (&Message{Questions: []Question{{Name: long + ".com", Type: TypeA, Class: ClassINET}}}).Pack(); err == nil {
		t.Error("63+ byte label accepted")
	}
	huge := strings.Repeat("abc.", 80) + "com"
	if _, err := (&Message{Questions: []Question{{Name: huge, Type: TypeA, Class: ClassINET}}}).Pack(); err == nil {
		t.Error("over-long name accepted")
	}
}

func TestPackRejectsWrongFamilies(t *testing.T) {
	if _, err := (&Message{Answers: []RR{{Name: "a.b", Type: TypeA, Class: ClassINET, Addr: netutil.MustAddr("2001:db8::1")}}}).Pack(); err == nil {
		t.Error("A record with IPv6 address accepted")
	}
	if _, err := (&Message{Answers: []RR{{Name: "a.b", Type: TypeAAAA, Class: ClassINET, Addr: netutil.MustAddr("10.0.0.1")}}}).Pack(); err == nil {
		t.Error("AAAA record with IPv4 address accepted")
	}
}

func TestUnpackRejectsCorruption(t *testing.T) {
	wire, _ := sampleMessage().Pack()
	for i := 0; i < len(wire); i += 2 {
		var m Message
		m.Unpack(wire[:i]) // must not panic
	}
	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		mut := append([]byte(nil), wire...)
		for j := 0; j < 1+rnd.Intn(4); j++ {
			mut[rnd.Intn(len(mut))] ^= byte(1 << rnd.Intn(8))
		}
		var m Message
		m.Unpack(mut) // must not panic
	}
}

func TestUnpackRejectsPointerLoops(t *testing.T) {
	// Craft a message whose QNAME points at itself.
	raw := make([]byte, 16)
	raw[4], raw[5] = 0, 1 // QDCOUNT = 1
	raw[12], raw[13] = 0xC0, 0x0C
	var m Message
	if err := m.Unpack(raw); err == nil {
		t.Error("self-referential compression pointer accepted")
	}
}

func newWorld() *Registry {
	reg := NewRegistry()
	reg.Add(RR{Name: "example.com", Type: TypeA, TTL: 60, Addr: netutil.MustAddr("198.51.100.10")})
	reg.AddCNAME("www.example.com", "www.example.com.edgekey.net", 300)
	reg.AddCNAME("www.example.com.edgekey.net", "e1234.a.cdn.net", 300)
	reg.Add(RR{Name: "e1234.a.cdn.net", Type: TypeA, TTL: 20, Addr: netutil.MustAddr("203.0.113.77")})
	reg.Add(RR{Name: "e1234.a.cdn.net", Type: TypeAAAA, TTL: 20, Addr: netutil.MustAddr("2001:db8::77")})
	reg.AddCNAME("dangling.example.com", "gone.example.net", 60)
	reg.AddCNAME("loop-a.example.com", "loop-b.example.com", 60)
	reg.AddCNAME("loop-b.example.com", "loop-a.example.com", 60)
	return reg
}

func TestRegistryResolve(t *testing.T) {
	reg := newWorld()
	ans, rcode := reg.Resolve("www.example.com", TypeA)
	if rcode != RCodeSuccess {
		t.Fatalf("rcode = %d", rcode)
	}
	var cnames, as int
	for _, rr := range ans {
		switch rr.Type {
		case TypeCNAME:
			cnames++
		case TypeA:
			as++
		}
	}
	if cnames != 2 || as != 1 {
		t.Fatalf("answer shape: %d CNAME, %d A (%v)", cnames, as, ans)
	}
	if _, rcode := reg.Resolve("nosuch.example.com", TypeA); rcode != RCodeNameError {
		t.Errorf("missing name rcode = %d, want NXDOMAIN", rcode)
	}
	// NODATA: name exists, type does not.
	ans, rcode = reg.Resolve("example.com", TypeAAAA)
	if rcode != RCodeSuccess || len(ans) != 0 {
		t.Errorf("NODATA = %v, %d", ans, rcode)
	}
	// Dangling CNAME yields the chain with no terminal records.
	ans, rcode = reg.Resolve("dangling.example.com", TypeA)
	if rcode != RCodeSuccess || len(ans) != 1 || ans[0].Type != TypeCNAME {
		t.Errorf("dangling = %v, %d", ans, rcode)
	}
	// Loop terminates.
	ans, _ = reg.Resolve("loop-a.example.com", TypeA)
	if len(ans) > maxChase {
		t.Errorf("loop produced %d answers", len(ans))
	}
}

func TestRegistryResolverLookupWeb(t *testing.T) {
	reg := newWorld()
	res, err := RegistryResolver{Registry: reg}.LookupWeb("www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if res.CNAMECount() != 2 {
		t.Errorf("CNAMECount = %d, want 2", res.CNAMECount())
	}
	if len(res.Addrs) != 2 {
		t.Errorf("Addrs = %v", res.Addrs)
	}
	if res.NXDomain {
		t.Error("NXDomain set")
	}
	res, err = RegistryResolver{Registry: reg}.LookupWeb("nosuch.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !res.NXDomain {
		t.Error("NXDomain not set for missing name")
	}
}

func startServer(t *testing.T, h Handler) string {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h)
	srv.Logf = t.Logf
	go srv.Serve(conn)
	t.Cleanup(func() { srv.Close() })
	return conn.LocalAddr().String()
}

func TestClientServerExchange(t *testing.T) {
	reg := newWorld()
	addr := startServer(t, reg)
	c := NewClient(addr)
	c.Timeout = 2 * time.Second

	resp, err := c.Exchange(Question{Name: "www.example.com", Type: TypeA, Class: ClassINET})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != RCodeSuccess || len(resp.Answers) != 3 {
		t.Fatalf("response: rcode=%d answers=%v", resp.Header.RCode, resp.Answers)
	}

	res, err := c.LookupWeb("www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if res.CNAMECount() != 2 || len(res.Addrs) != 2 {
		t.Errorf("LookupWeb over UDP: %+v", res)
	}

	res, err = c.LookupWeb("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if res.CNAMECount() != 0 || len(res.Addrs) != 1 || res.Addrs[0] != netutil.MustAddr("198.51.100.10") {
		t.Errorf("apex LookupWeb: %+v", res)
	}
}

func TestClientTimeout(t *testing.T) {
	// A listener that never answers.
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn.LocalAddr().String())
	c.Timeout = 50 * time.Millisecond
	c.Retries = 1
	start := time.Now()
	_, err = c.Exchange(Question{Name: "x.y", Type: TypeA, Class: ClassINET})
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("returned after %v; retry did not happen", elapsed)
	}
}

func TestServerIgnoresGarbageAndResponses(t *testing.T) {
	reg := newWorld()
	addr := startServer(t, reg)
	raw, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.Write([]byte{1, 2, 3})
	// A response message must be dropped, not answered.
	m := Message{Header: Header{ID: 1, Response: true}, Questions: []Question{{Name: "a.b", Type: TypeA, Class: ClassINET}}}
	wire, _ := m.Pack()
	raw.Write(wire)
	raw.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 512)
	if n, _ := raw.Read(buf); n > 0 {
		t.Error("server answered garbage or response datagram")
	}
	// Server still works afterwards.
	c := NewClient(addr)
	if _, err := c.Exchange(Question{Name: "example.com", Type: TypeA, Class: ClassINET}); err != nil {
		t.Fatalf("server dead after garbage: %v", err)
	}
}

func TestRegistryAccessors(t *testing.T) {
	reg := newWorld()
	if !reg.Exists("example.com") || reg.Exists("zzz") {
		t.Error("Exists wrong")
	}
	if reg.Len() == 0 {
		t.Error("Len = 0")
	}
	names := reg.Names()
	if len(names) != reg.Len() {
		t.Error("Names length mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Names not sorted")
		}
	}
	if got := reg.Lookup("e1234.a.cdn.net", TypeA); len(got) != 1 {
		t.Errorf("Lookup = %v", got)
	}
}

// Property: pack/unpack round-trips random A-record messages.
func TestPackUnpackRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	labels := []string{"a", "bb", "ccc", "www", "cdn", "example", "net", "org"}
	randomName := func() string {
		n := 2 + rnd.Intn(3)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = labels[rnd.Intn(len(labels))]
		}
		return strings.Join(parts, ".")
	}
	for i := 0; i < 500; i++ {
		m := &Message{
			Header:    Header{ID: uint16(rnd.Intn(1 << 16)), Response: rnd.Intn(2) == 0},
			Questions: []Question{{Name: randomName(), Type: TypeA, Class: ClassINET}},
		}
		n := rnd.Intn(6)
		for j := 0; j < n; j++ {
			var b [4]byte
			rnd.Read(b[:])
			m.Answers = append(m.Answers, RR{
				Name: randomName(), Type: TypeA, Class: ClassINET,
				TTL: uint32(rnd.Intn(100000)), Addr: netip.AddrFrom4(b),
			})
		}
		wire, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		var got Message
		if err := got.Unpack(wire); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if len(got.Answers) != len(m.Answers) {
			t.Fatalf("iteration %d: answers %d vs %d", i, len(got.Answers), len(m.Answers))
		}
		for j := range m.Answers {
			if got.Answers[j].Addr != m.Answers[j].Addr || got.Answers[j].Name != CanonicalName(m.Answers[j].Name) {
				t.Fatalf("iteration %d answer %d mismatch", i, j)
			}
		}
	}
}

func BenchmarkPack(b *testing.B) {
	m := sampleMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpack(b *testing.B) {
	wire, _ := sampleMessage().Pack()
	var m Message
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegistryResolve(b *testing.B) {
	reg := newWorld()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Resolve("www.example.com", TypeA)
	}
}

func TestRegistryRemove(t *testing.T) {
	r := NewRegistry()
	r.Add(RR{Name: "Cache.CDN.wld", Type: TypeA, TTL: 20, Addr: netip.MustParseAddr("192.0.2.1")})
	r.Add(RR{Name: "cache.cdn.wld", Type: TypeA, TTL: 20, Addr: netip.MustParseAddr("192.0.2.2")})
	r.Add(RR{Name: "cache.cdn.wld", Type: TypeAAAA, TTL: 20, Addr: netip.MustParseAddr("2001:db8::1")})

	if got := r.Remove("CACHE.cdn.wld", TypeA); got != 2 {
		t.Errorf("Remove A = %d, want 2", got)
	}
	if rrs := r.Lookup("cache.cdn.wld", TypeA); len(rrs) != 0 {
		t.Errorf("A records survived: %v", rrs)
	}
	if rrs := r.Lookup("cache.cdn.wld", TypeAAAA); len(rrs) != 1 {
		t.Errorf("AAAA records lost: %v", rrs)
	}
	if got := r.Remove("cache.cdn.wld", TypeAAAA); got != 1 {
		t.Errorf("Remove AAAA = %d, want 1", got)
	}
	if r.Exists("cache.cdn.wld") {
		t.Error("owner name survived removing its last record")
	}
	if got := r.Remove("never.was.here", TypeA); got != 0 {
		t.Errorf("Remove on missing name = %d, want 0", got)
	}
}
