package dns

import (
	"net/netip"
	"testing"
)

func TestRegistryClone(t *testing.T) {
	r := NewRegistry()
	r.Add(RR{Name: "a.example.", Type: TypeA, TTL: 60, Addr: netip.MustParseAddr("192.0.2.1")})
	r.Add(RR{Name: "a.example.", Type: TypeA, TTL: 60, Addr: netip.MustParseAddr("192.0.2.2")})
	r.AddCNAME("www.example.", "a.example.", 60)

	c := r.Clone()
	if c.Len() != r.Len() {
		t.Fatalf("clone len %d != %d", c.Len(), r.Len())
	}
	// Record order is preserved, so resolution is identical.
	orig, _ := r.Resolve("www.example.", TypeA)
	cloned, _ := c.Resolve("www.example.", TypeA)
	if len(orig) != len(cloned) {
		t.Fatalf("resolve answers %d != %d", len(orig), len(cloned))
	}
	for i := range orig {
		if orig[i].Name != cloned[i].Name || orig[i].Type != cloned[i].Type ||
			orig[i].Addr != cloned[i].Addr || orig[i].Target != cloned[i].Target {
			t.Fatalf("answer %d: %+v != %+v", i, orig[i], cloned[i])
		}
	}

	// Divergence after cloning stays private to each side.
	c.Remove("a.example.", TypeA)
	c.Add(RR{Name: "a.example.", Type: TypeA, TTL: 20, Addr: netip.MustParseAddr("198.51.100.1")})
	if got := r.Lookup("a.example.", TypeA); len(got) != 2 {
		t.Errorf("original mutated through clone: %d A records", len(got))
	}
	r.Remove("www.example.", TypeCNAME)
	if got := c.Lookup("www.example.", TypeCNAME); len(got) != 1 {
		t.Errorf("clone mutated through original: %d CNAME records", len(got))
	}
}
