package dns

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strings"
)

// WriteZoneTSV dumps every A, AAAA, CNAME and DNSKEY record as
// tab-separated "name TYPE value" lines, the format ripki-worldgen
// emits and LoadZoneTSV reads back.
func (r *Registry) WriteZoneTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range r.Names() {
		for _, typ := range []uint16{TypeA, TypeAAAA, TypeCNAME, TypeDNSKEY} {
			for _, rr := range r.Lookup(name, typ) {
				var err error
				switch typ {
				case TypeCNAME:
					_, err = fmt.Fprintf(bw, "%s\tCNAME\t%s\n", name, rr.Target)
				case TypeA:
					_, err = fmt.Fprintf(bw, "%s\tA\t%s\n", name, rr.Addr)
				case TypeAAAA:
					_, err = fmt.Fprintf(bw, "%s\tAAAA\t%s\n", name, rr.Addr)
				case TypeDNSKEY:
					_, err = fmt.Fprintf(bw, "%s\tDNSKEY\t%x\n", name, rr.DNSKEY.PublicKey)
				}
				if err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// LoadZoneTSV reads the WriteZoneTSV format into a fresh registry.
// Unknown record types and blank lines are skipped; malformed lines are
// errors.
func LoadZoneTSV(r io.Reader) (*Registry, error) {
	reg := NewRegistry()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("dns: zone line %d: want 3 fields, got %d", line, len(parts))
		}
		name, typ, val := parts[0], parts[1], parts[2]
		switch typ {
		case "A", "AAAA":
			addr, err := netip.ParseAddr(val)
			if err != nil {
				return nil, fmt.Errorf("dns: zone line %d: %w", line, err)
			}
			t := uint16(TypeA)
			if typ == "AAAA" {
				t = TypeAAAA
			}
			if (t == TypeA) != addr.Is4() {
				return nil, fmt.Errorf("dns: zone line %d: %s record with %v", line, typ, addr)
			}
			reg.Add(RR{Name: name, Type: t, TTL: 300, Addr: addr})
		case "CNAME":
			reg.AddCNAME(name, val, 300)
		case "DNSKEY":
			key := make([]byte, len(val)/2)
			if _, err := fmt.Sscanf(val, "%x", &key); err != nil {
				return nil, fmt.Errorf("dns: zone line %d: bad DNSKEY hex: %w", line, err)
			}
			reg.Add(RR{Name: name, Type: TypeDNSKEY, TTL: 3600, DNSKEY: &DNSKEYData{Flags: 257, Protocol: 3, Algorithm: 8, PublicKey: key}})
		default:
			// Tolerate future record types in dumps.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return reg, nil
}
