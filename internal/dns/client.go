package dns

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"
)

// Client is a stub resolver speaking UDP to one server address.
type Client struct {
	// Addr is the server's "host:port" address.
	Addr string
	// Timeout bounds each query attempt (default 2s).
	Timeout time.Duration
	// Retries is the number of re-sends after a timeout (default 2).
	Retries int

	mu  sync.Mutex
	rnd *rand.Rand
}

// NewClient creates a client for the given server address.
func NewClient(addr string) *Client {
	return &Client{Addr: addr, rnd: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 2 * time.Second
	}
	return c.Timeout
}

func (c *Client) retries() int {
	if c.Retries <= 0 {
		return 2
	}
	return c.Retries
}

func (c *Client) nextID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rnd == nil {
		c.rnd = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return uint16(c.rnd.Intn(1 << 16))
}

// Exchange sends one question and returns the response message.
func (c *Client) Exchange(q Question) (*Message, error) {
	req := Message{
		Header:    Header{ID: c.nextID(), RecursionDesired: true},
		Questions: []Question{q},
	}
	wire, err := req.Pack()
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries(); attempt++ {
		resp, err := c.exchangeOnce(wire, req.Header.ID)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			return nil, err
		}
	}
	return nil, fmt.Errorf("dns: query %q type %d: %w", q.Name, q.Type, lastErr)
}

func (c *Client) exchangeOnce(wire []byte, id uint16) (*Message, error) {
	conn, err := net.Dial("udp", c.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(c.timeout())); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, maxMessageLen)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		var resp Message
		if err := resp.Unpack(buf[:n]); err != nil {
			continue // garbage datagram; keep waiting
		}
		if resp.Header.ID != id || !resp.Header.Response {
			continue // not ours
		}
		return &resp, nil
	}
}

// Result is the outcome of a full web-oriented lookup of one name: all
// terminal addresses plus the CNAME chain traversed.
type Result struct {
	// Name is the queried name (canonical form).
	Name string
	// Addrs are the A and AAAA records reached, in response order.
	Addrs []netip.Addr
	// Chain is the sequence of CNAME targets traversed, in order.
	Chain []string
	// NXDomain is true when the name does not exist.
	NXDomain bool
}

// CNAMECount returns the number of DNS indirections observed — the
// quantity the paper's CDN heuristic thresholds ("two or more CNAMEs").
func (r Result) CNAMECount() int { return len(r.Chain) }

// Lookuper is anything that can perform the combined A+AAAA lookup:
// the UDP client and the in-process registry resolver both qualify.
type Lookuper interface {
	LookupWeb(name string) (Result, error)
}

// LookupWeb queries A and AAAA for name over the wire and merges the
// results.
func (c *Client) LookupWeb(name string) (Result, error) {
	return lookupWeb(name, func(q Question) ([]RR, uint8, error) {
		resp, err := c.Exchange(q)
		if err != nil {
			return nil, 0, err
		}
		return resp.Answers, resp.Header.RCode, nil
	})
}

// DNSSECChecker reports whether a zone apex publishes a DNSKEY — the
// adoption signal for the RPKI-vs-DNSSEC comparison the paper names as
// future work.
type DNSSECChecker interface {
	HasDNSKEY(name string) (bool, error)
}

// HasDNSKEY queries the DNSKEY type over the wire.
func (c *Client) HasDNSKEY(name string) (bool, error) {
	resp, err := c.Exchange(Question{Name: name, Type: TypeDNSKEY, Class: ClassINET})
	if err != nil {
		return false, err
	}
	for _, rr := range resp.Answers {
		if rr.Type == TypeDNSKEY {
			return true, nil
		}
	}
	return false, nil
}

// RegistryResolver adapts a Registry to the Lookuper interface without
// the wire round trip, for in-process bulk measurement.
type RegistryResolver struct {
	Registry *Registry
}

// HasDNSKEY checks for a DNSKEY record directly in the registry.
func (rr RegistryResolver) HasDNSKEY(name string) (bool, error) {
	return len(rr.Registry.Lookup(name, TypeDNSKEY)) > 0, nil
}

// LookupWeb resolves name directly against the registry.
func (rr RegistryResolver) LookupWeb(name string) (Result, error) {
	return lookupWeb(name, func(q Question) ([]RR, uint8, error) {
		ans, rcode := rr.Registry.Query(q)
		return ans, rcode, nil
	})
}

func lookupWeb(name string, query func(Question) ([]RR, uint8, error)) (Result, error) {
	res := Result{Name: CanonicalName(name)}
	nx := 0
	for _, typ := range []uint16{TypeA, TypeAAAA} {
		answers, rcode, err := query(Question{Name: name, Type: typ, Class: ClassINET})
		if err != nil {
			return res, err
		}
		if rcode == RCodeNameError {
			nx++
			continue
		}
		if rcode != RCodeSuccess {
			return res, fmt.Errorf("dns: lookup %q type %d: rcode %d", name, typ, rcode)
		}
		var chain []string
		for _, rr := range answers {
			switch rr.Type {
			case TypeCNAME:
				chain = append(chain, rr.Target)
			case TypeA, TypeAAAA:
				res.Addrs = append(res.Addrs, rr.Addr)
			}
		}
		// Both queries traverse the same chain; keep the longer one.
		if len(chain) > len(res.Chain) {
			res.Chain = chain
		}
	}
	res.NXDomain = nx == 2
	return res, nil
}
