package dns

import (
	"bytes"
	"strings"
	"testing"

	"ripki/internal/netutil"
)

func TestZoneTSVRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Add(RR{Name: "example.com", Type: TypeA, TTL: 60, Addr: netutil.MustAddr("198.51.100.10")})
	reg.Add(RR{Name: "example.com", Type: TypeAAAA, TTL: 60, Addr: netutil.MustAddr("2001:db8::1")})
	reg.AddCNAME("www.example.com", "edge.cdn.wld", 300)
	reg.Add(RR{Name: "edge.cdn.wld", Type: TypeA, TTL: 30, Addr: netutil.MustAddr("203.0.113.5")})
	reg.Add(RR{Name: "signed.example", Type: TypeDNSKEY, TTL: 3600, DNSKEY: &DNSKEYData{Flags: 257, Protocol: 3, Algorithm: 8, PublicKey: []byte{1, 2, 3, 4}}})

	var buf bytes.Buffer
	if err := reg.WriteZoneTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadZoneTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != reg.Len() {
		t.Fatalf("names: %d vs %d", got.Len(), reg.Len())
	}
	res, err := (RegistryResolver{Registry: got}).LookupWeb("www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if res.CNAMECount() != 1 || len(res.Addrs) != 1 || res.Addrs[0] != netutil.MustAddr("203.0.113.5") {
		t.Errorf("reloaded resolution: %+v", res)
	}
	signed, err := (RegistryResolver{Registry: got}).HasDNSKEY("signed.example")
	if err != nil || !signed {
		t.Errorf("DNSKEY lost in round trip: %v %v", signed, err)
	}
	if keys := got.Lookup("signed.example", TypeDNSKEY); len(keys) != 1 || !bytes.Equal(keys[0].DNSKEY.PublicKey, []byte{1, 2, 3, 4}) {
		t.Errorf("DNSKEY payload mismatch: %+v", keys)
	}
}

func TestLoadZoneTSVValidation(t *testing.T) {
	bad := []string{
		"a.com\tA",                  // missing value
		"a.com\tA\tnotanip",         // bad address
		"a.com\tA\t2001:db8::1",     // family mismatch
		"a.com\tAAAA\t198.51.100.1", // family mismatch
		"a.com\tDNSKEY\tzz",         // bad hex
	}
	for _, in := range bad {
		if _, err := LoadZoneTSV(strings.NewReader(in)); err == nil {
			t.Errorf("LoadZoneTSV(%q) accepted bad input", in)
		}
	}
	// Comments, blanks and unknown types are tolerated.
	reg, err := LoadZoneTSV(strings.NewReader("# c\n\na.com\tMX\t10 mail\na.com\tA\t198.51.100.1\n"))
	if err != nil || reg.Len() != 1 {
		t.Errorf("tolerant parse failed: %v %d", err, reg.Len())
	}
}
