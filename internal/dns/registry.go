package dns

import (
	"fmt"
	"sort"
	"sync"
)

// maxChase bounds CNAME chain length, defending against loops. Real
// resolvers use similar limits.
const maxChase = 16

// Registry is an in-memory DNS database: the union of all zones the
// synthetic world publishes. It acts as the backing store for
// authoritative servers and supports in-process resolution through the
// same CNAME-chasing logic the wire path uses.
type Registry struct {
	mu      sync.RWMutex
	records map[string][]RR // canonical name → records
	hook    func(name string)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{records: make(map[string][]RR)}
}

// NewRegistrySized creates an empty registry with space for about n
// owner names, so web-scale worlds (a million domains, two-plus names
// each) fill it without rehashing the map a dozen times.
func NewRegistrySized(n int) *Registry {
	return &Registry{records: make(map[string][]RR, n)}
}

// SetMutationHook registers fn to observe every record mutation (nil
// disables it). It is called with the canonical owner name after the
// mutation, outside the registry lock; a batched insert invokes it once
// per record. Clones do not inherit the hook. Incremental measurement
// uses it to mark the domains whose resolution touched a changed name
// as dirty.
func (r *Registry) SetMutationHook(fn func(name string)) {
	r.mu.Lock()
	r.hook = fn
	r.mu.Unlock()
}

// Add inserts a record. The owner name is canonicalised.
func (r *Registry) Add(rr RR) {
	rr.Name = CanonicalName(rr.Name)
	if rr.Type == TypeCNAME || rr.Type == TypeNS {
		rr.Target = CanonicalName(rr.Target)
	}
	if rr.Class == 0 {
		rr.Class = ClassINET
	}
	r.mu.Lock()
	r.records[rr.Name] = append(r.records[rr.Name], rr)
	hook := r.hook
	r.mu.Unlock()
	if hook != nil {
		hook(rr.Name)
	}
}

// AddBatch inserts many records under one lock acquisition, preserving
// slice order. It is the bulk path for sharded world generation, where
// each shard accumulates its records and replays them in rank order.
func (r *Registry) AddBatch(rrs []RR) {
	r.mu.Lock()
	names := make([]string, 0, len(rrs))
	for _, rr := range rrs {
		rr.Name = CanonicalName(rr.Name)
		if rr.Type == TypeCNAME || rr.Type == TypeNS {
			rr.Target = CanonicalName(rr.Target)
		}
		if rr.Class == 0 {
			rr.Class = ClassINET
		}
		r.records[rr.Name] = append(r.records[rr.Name], rr)
		names = append(names, rr.Name)
	}
	hook := r.hook
	r.mu.Unlock()
	if hook != nil {
		for _, n := range names {
			hook(n)
		}
	}
}

// Clone returns a deep copy of the registry: the copy and the original
// can be mutated independently. Record order within each owner name is
// preserved, so a clone resolves identically to its source. Shared-world
// simulations clone the registry per run — it is the only part of a
// generated world that scenarios mutate.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Registry{records: make(map[string][]RR, len(r.records))}
	for name, rrs := range r.records {
		cp := make([]RR, len(rrs))
		copy(cp, rrs)
		c.records[name] = cp
	}
	return c
}

// AddCNAME is shorthand for a CNAME record.
func (r *Registry) AddCNAME(name, target string, ttl uint32) {
	r.Add(RR{Name: name, Type: TypeCNAME, TTL: ttl, Target: target})
}

// Remove deletes every record of the given type at name and reports how
// many were removed. It exists for time-evolving worlds (simulation
// scenarios re-point cache hosts and delivery chains); pass e.g. TypeA
// then Add the replacements.
func (r *Registry) Remove(name string, typ uint16) int {
	name = CanonicalName(name)
	r.mu.Lock()
	rrs := r.records[name]
	kept := rrs[:0]
	removed := 0
	for _, rr := range rrs {
		if rr.Type == typ {
			removed++
			continue
		}
		kept = append(kept, rr)
	}
	if len(kept) == 0 {
		delete(r.records, name)
	} else {
		r.records[name] = kept
	}
	hook := r.hook
	r.mu.Unlock()
	if removed > 0 && hook != nil {
		hook(name)
	}
	return removed
}

// Lookup returns the records of the given type at exactly name
// (no CNAME chasing).
func (r *Registry) Lookup(name string, typ uint16) []RR {
	name = CanonicalName(name)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []RR
	for _, rr := range r.records[name] {
		if rr.Type == typ {
			out = append(out, rr)
		}
	}
	return out
}

// Exists reports whether any record exists at name.
func (r *Registry) Exists(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.records[CanonicalName(name)]) > 0
}

// Len returns the number of owner names with records.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.records)
}

// Names returns all owner names in sorted order (for dumps).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.records))
	for n := range r.records {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resolve answers a query the way a recursive resolver would: it chases
// CNAMEs (appending each to the answer section, as real resolvers do)
// and returns the terminal records of the requested type. rcode is
// RCodeNameError when the name does not exist at all, RCodeSuccess
// otherwise (possibly with an empty answer — NODATA).
func (r *Registry) Resolve(name string, typ uint16) (answers []RR, rcode uint8) {
	name = CanonicalName(name)
	r.mu.RLock()
	defer r.mu.RUnlock()
	cur := name
	for i := 0; i < maxChase; i++ {
		rrs := r.records[cur]
		if len(rrs) == 0 {
			if cur == name && len(answers) == 0 {
				return nil, RCodeNameError
			}
			// Dangling CNAME: the chain exists but the target does not.
			return answers, RCodeSuccess
		}
		// Exact-type matches first.
		matched := false
		for _, rr := range rrs {
			if rr.Type == typ {
				answers = append(answers, rr)
				matched = true
			}
		}
		if matched || typ == TypeCNAME {
			return answers, RCodeSuccess
		}
		// Chase a CNAME if present.
		var cname *RR
		for i := range rrs {
			if rrs[i].Type == TypeCNAME {
				cname = &rrs[i]
				break
			}
		}
		if cname == nil {
			return answers, RCodeSuccess // NODATA
		}
		answers = append(answers, *cname)
		cur = cname.Target
	}
	// Chain too long or looping: answer what was collected.
	return answers, RCodeSuccess
}

// Handler answers DNS queries; both the in-process path and the UDP
// server use it.
type Handler interface {
	// Query answers a single question.
	Query(q Question) (answers []RR, rcode uint8)
}

// Query implements Handler directly on the registry.
func (r *Registry) Query(q Question) ([]RR, uint8) {
	if q.Class != ClassINET && q.Class != 0 {
		return nil, RCodeRefused
	}
	switch q.Type {
	case TypeA, TypeAAAA, TypeCNAME, TypeNS, TypeSOA, TypeTXT, TypeDNSKEY:
		return r.Resolve(q.Name, q.Type)
	default:
		return nil, RCodeNotImplemented
	}
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(q Question) ([]RR, uint8)

// Query calls f.
func (f HandlerFunc) Query(q Question) ([]RR, uint8) { return f(q) }

// String summarises the registry.
func (r *Registry) String() string {
	return fmt.Sprintf("dns.Registry(%d names)", r.Len())
}
