// Package dns implements the subset of the Domain Name System needed by
// the measurement pipeline: RFC 1035 wire format with name compression,
// a UDP server, a stub resolver client, and an in-memory zone registry
// with CNAME chasing.
//
// Methodology step (2) of the paper resolves every Alexa domain (with
// and without the "www" label) through several public resolvers,
// collecting A, AAAA and CNAME records; the CDN heuristic in §4.3 then
// counts CNAME indirections. This package provides both the wire path
// (real UDP queries against a server) and an in-process path backed by
// the same zone data, so the 1M-domain sweeps do not pay per-query
// syscalls while examples and tools still exercise real sockets.
package dns

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Record types.
const (
	TypeA      = 1
	TypeNS     = 2
	TypeCNAME  = 5
	TypeSOA    = 6
	TypeTXT    = 16
	TypeAAAA   = 28
	TypeDNSKEY = 48
)

// Classes.
const ClassINET = 1

// Response codes.
const (
	RCodeSuccess        = 0
	RCodeFormatError    = 1
	RCodeServerFailure  = 2
	RCodeNameError      = 3 // NXDOMAIN
	RCodeNotImplemented = 4
	RCodeRefused        = 5
)

// maxMessageLen is the classic UDP payload bound.
const maxMessageLen = 4096

// Header is the fixed 12-byte message header, unpacked.
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              uint8
}

// Question is one query.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// DNSKEYData is the RDATA of a DNSKEY record (RFC 4034 §2). The key
// material is opaque here; its presence at a zone apex is what the
// DNSSEC-adoption comparison measures.
type DNSKEYData struct {
	Flags     uint16
	Protocol  uint8
	Algorithm uint8
	PublicKey []byte
}

// SOAData is the RDATA of an SOA record.
type SOAData struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// RR is one resource record. Exactly one payload field is meaningful,
// chosen by Type: Addr for A/AAAA, Target for CNAME/NS, SOA for SOA,
// TXT for TXT.
type RR struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32

	Addr   netip.Addr
	Target string
	SOA    *SOAData
	TXT    []string
	DNSKEY *DNSKEYData
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// CanonicalName lower-cases s and strips one trailing dot. The empty
// string canonicalises to "." (the root).
func CanonicalName(s string) string {
	s = strings.ToLower(strings.TrimSuffix(s, "."))
	if s == "" {
		return "."
	}
	return s
}

// packName appends the wire encoding of name, compressing against
// offsets already recorded in table (suffix name → message offset).
func packName(dst []byte, name string, table map[string]int) ([]byte, error) {
	name = CanonicalName(name)
	if name == "." {
		return append(dst, 0), nil
	}
	if len(name) > 253 {
		return nil, fmt.Errorf("dns: name %q too long", name)
	}
	for name != "" {
		if off, ok := table[name]; ok && off < 0x4000 {
			return binary.BigEndian.AppendUint16(dst, uint16(0xC000|off)), nil
		}
		if table != nil && len(dst) < 0x4000 {
			table[name] = len(dst)
		}
		label := name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			label, name = name[:i], name[i+1:]
		} else {
			name = ""
		}
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("dns: bad label %q", label)
		}
		dst = append(dst, byte(len(label)))
		dst = append(dst, label...)
	}
	return append(dst, 0), nil
}

// unpackName reads a possibly compressed name starting at off in msg.
// It returns the name and the offset just past the name's storage in
// the original location.
func unpackName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	next := 0
	steps := 0
	for {
		if steps++; steps > 128 {
			return "", 0, errors.New("dns: compression loop")
		}
		if off >= len(msg) {
			return "", 0, errors.New("dns: name overruns message")
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				next = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return name, next, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, errors.New("dns: truncated compression pointer")
			}
			ptr := int(binary.BigEndian.Uint16(msg[off:]) & 0x3FFF)
			if !jumped {
				next = off + 2
				jumped = true
			}
			if ptr >= off {
				return "", 0, errors.New("dns: forward compression pointer")
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dns: reserved label type %#x", b&0xC0)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, errors.New("dns: label overruns message")
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(msg[off+1 : off+1+l])
			off += 1 + l
			if sb.Len() > 253 {
				return "", 0, errors.New("dns: name too long")
			}
		}
	}
}

func (h Header) flags() uint16 {
	var f uint16
	if h.Response {
		f |= 1 << 15
	}
	f |= uint16(h.Opcode&0xF) << 11
	if h.Authoritative {
		f |= 1 << 10
	}
	if h.Truncated {
		f |= 1 << 9
	}
	if h.RecursionDesired {
		f |= 1 << 8
	}
	if h.RecursionAvailable {
		f |= 1 << 7
	}
	f |= uint16(h.RCode & 0xF)
	return f
}

func headerFromFlags(id, f uint16) Header {
	return Header{
		ID:                 id,
		Response:           f&(1<<15) != 0,
		Opcode:             uint8(f >> 11 & 0xF),
		Authoritative:      f&(1<<10) != 0,
		Truncated:          f&(1<<9) != 0,
		RecursionDesired:   f&(1<<8) != 0,
		RecursionAvailable: f&(1<<7) != 0,
		RCode:              uint8(f & 0xF),
	}
}

// Pack serialises the message.
func (m *Message) Pack() ([]byte, error) {
	dst := make([]byte, 0, 512)
	dst = binary.BigEndian.AppendUint16(dst, m.Header.ID)
	dst = binary.BigEndian.AppendUint16(dst, m.Header.flags())
	for _, n := range []int{len(m.Questions), len(m.Answers), len(m.Authority), len(m.Additional)} {
		if n > 0xFFFF {
			return nil, errors.New("dns: too many records")
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(n))
	}
	table := make(map[string]int)
	var err error
	for _, q := range m.Questions {
		if dst, err = packName(dst, q.Name, table); err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint16(dst, q.Type)
		dst = binary.BigEndian.AppendUint16(dst, q.Class)
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if dst, err = packRR(dst, rr, table); err != nil {
				return nil, err
			}
		}
	}
	if len(dst) > maxMessageLen {
		return nil, fmt.Errorf("dns: message length %d exceeds %d", len(dst), maxMessageLen)
	}
	return dst, nil
}

func packRR(dst []byte, rr RR, table map[string]int) ([]byte, error) {
	var err error
	if dst, err = packName(dst, rr.Name, table); err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint16(dst, rr.Type)
	dst = binary.BigEndian.AppendUint16(dst, rr.Class)
	dst = binary.BigEndian.AppendUint32(dst, rr.TTL)
	lenAt := len(dst)
	dst = append(dst, 0, 0) // RDLENGTH placeholder
	switch rr.Type {
	case TypeA:
		if !rr.Addr.Is4() {
			return nil, fmt.Errorf("dns: A record %q with non-IPv4 address %v", rr.Name, rr.Addr)
		}
		a := rr.Addr.As4()
		dst = append(dst, a[:]...)
	case TypeAAAA:
		if !rr.Addr.Is6() || rr.Addr.Is4() {
			return nil, fmt.Errorf("dns: AAAA record %q with non-IPv6 address %v", rr.Name, rr.Addr)
		}
		a := rr.Addr.As16()
		dst = append(dst, a[:]...)
	case TypeCNAME, TypeNS:
		if dst, err = packName(dst, rr.Target, table); err != nil {
			return nil, err
		}
	case TypeSOA:
		if rr.SOA == nil {
			return nil, fmt.Errorf("dns: SOA record %q without data", rr.Name)
		}
		if dst, err = packName(dst, rr.SOA.MName, table); err != nil {
			return nil, err
		}
		if dst, err = packName(dst, rr.SOA.RName, table); err != nil {
			return nil, err
		}
		for _, v := range []uint32{rr.SOA.Serial, rr.SOA.Refresh, rr.SOA.Retry, rr.SOA.Expire, rr.SOA.Minimum} {
			dst = binary.BigEndian.AppendUint32(dst, v)
		}
	case TypeTXT:
		for _, s := range rr.TXT {
			if len(s) > 255 {
				return nil, errors.New("dns: TXT string too long")
			}
			dst = append(dst, byte(len(s)))
			dst = append(dst, s...)
		}
	case TypeDNSKEY:
		if rr.DNSKEY == nil {
			return nil, fmt.Errorf("dns: DNSKEY record %q without data", rr.Name)
		}
		dst = binary.BigEndian.AppendUint16(dst, rr.DNSKEY.Flags)
		dst = append(dst, rr.DNSKEY.Protocol, rr.DNSKEY.Algorithm)
		dst = append(dst, rr.DNSKEY.PublicKey...)
	default:
		return nil, fmt.Errorf("dns: cannot pack record type %d", rr.Type)
	}
	rdLen := len(dst) - lenAt - 2
	if rdLen > 0xFFFF {
		return nil, errors.New("dns: RDATA too long")
	}
	binary.BigEndian.PutUint16(dst[lenAt:], uint16(rdLen))
	return dst, nil
}

// Unpack parses a wire-format message.
func (m *Message) Unpack(msg []byte) error {
	if len(msg) < 12 {
		return errors.New("dns: message shorter than header")
	}
	id := binary.BigEndian.Uint16(msg[0:2])
	flags := binary.BigEndian.Uint16(msg[2:4])
	m.Header = headerFromFlags(id, flags)
	counts := [4]int{}
	for i := range counts {
		counts[i] = int(binary.BigEndian.Uint16(msg[4+2*i:]))
	}
	off := 12
	m.Questions = nil
	for i := 0; i < counts[0]; i++ {
		name, next, err := unpackName(msg, off)
		if err != nil {
			return err
		}
		if next+4 > len(msg) {
			return errors.New("dns: question overruns message")
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  binary.BigEndian.Uint16(msg[next:]),
			Class: binary.BigEndian.Uint16(msg[next+2:]),
		})
		off = next + 4
	}
	var err error
	if m.Answers, off, err = unpackSection(msg, off, counts[1]); err != nil {
		return err
	}
	if m.Authority, off, err = unpackSection(msg, off, counts[2]); err != nil {
		return err
	}
	if m.Additional, _, err = unpackSection(msg, off, counts[3]); err != nil {
		return err
	}
	return nil
}

func unpackSection(msg []byte, off, count int) ([]RR, int, error) {
	var out []RR
	for i := 0; i < count; i++ {
		rr, next, err := unpackRR(msg, off)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, rr)
		off = next
	}
	return out, off, nil
}

func unpackRR(msg []byte, off int) (RR, int, error) {
	var rr RR
	name, next, err := unpackName(msg, off)
	if err != nil {
		return rr, 0, err
	}
	if next+10 > len(msg) {
		return rr, 0, errors.New("dns: record header overruns message")
	}
	rr.Name = name
	rr.Type = binary.BigEndian.Uint16(msg[next:])
	rr.Class = binary.BigEndian.Uint16(msg[next+2:])
	rr.TTL = binary.BigEndian.Uint32(msg[next+4:])
	rdLen := int(binary.BigEndian.Uint16(msg[next+8:]))
	rdStart := next + 10
	if rdStart+rdLen > len(msg) {
		return rr, 0, errors.New("dns: RDATA overruns message")
	}
	rd := msg[rdStart : rdStart+rdLen]
	switch rr.Type {
	case TypeA:
		if rdLen != 4 {
			return rr, 0, errors.New("dns: bad A RDATA length")
		}
		var a [4]byte
		copy(a[:], rd)
		rr.Addr = netip.AddrFrom4(a)
	case TypeAAAA:
		if rdLen != 16 {
			return rr, 0, errors.New("dns: bad AAAA RDATA length")
		}
		var a [16]byte
		copy(a[:], rd)
		rr.Addr = netip.AddrFrom16(a)
	case TypeCNAME, TypeNS:
		t, _, err := unpackName(msg, rdStart)
		if err != nil {
			return rr, 0, err
		}
		rr.Target = t
	case TypeSOA:
		m, o, err := unpackName(msg, rdStart)
		if err != nil {
			return rr, 0, err
		}
		r, o, err := unpackName(msg, o)
		if err != nil {
			return rr, 0, err
		}
		if o+20 > len(msg) || o+20 > rdStart+rdLen {
			return rr, 0, errors.New("dns: SOA RDATA too short")
		}
		rr.SOA = &SOAData{
			MName:   m,
			RName:   r,
			Serial:  binary.BigEndian.Uint32(msg[o:]),
			Refresh: binary.BigEndian.Uint32(msg[o+4:]),
			Retry:   binary.BigEndian.Uint32(msg[o+8:]),
			Expire:  binary.BigEndian.Uint32(msg[o+12:]),
			Minimum: binary.BigEndian.Uint32(msg[o+16:]),
		}
	case TypeTXT:
		for len(rd) > 0 {
			l := int(rd[0])
			if 1+l > len(rd) {
				return rr, 0, errors.New("dns: TXT string overruns RDATA")
			}
			rr.TXT = append(rr.TXT, string(rd[1:1+l]))
			rd = rd[1+l:]
		}
	case TypeDNSKEY:
		if rdLen < 4 {
			return rr, 0, errors.New("dns: DNSKEY RDATA too short")
		}
		rr.DNSKEY = &DNSKEYData{
			Flags:     binary.BigEndian.Uint16(rd),
			Protocol:  rd[2],
			Algorithm: rd[3],
			PublicKey: append([]byte(nil), rd[4:]...),
		}
	default:
		// Preserve nothing; unknown types are tolerated but empty.
	}
	return rr, rdStart + rdLen, nil
}
