package dns

import (
	"errors"
	"net"
	"sync"
)

// Server is a UDP DNS server delegating answers to a Handler.
type Server struct {
	Handler Handler
	// Logf, if non-nil, receives per-query diagnostics.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	conn   net.PacketConn
	closed bool
}

// NewServer creates a server answering from h.
func NewServer(h Handler) *Server {
	return &Server{Handler: h}
}

// Serve answers queries arriving on conn until Close.
func (s *Server) Serve(conn net.PacketConn) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dns: server closed")
	}
	s.conn = conn
	s.mu.Unlock()

	buf := make([]byte, maxMessageLen)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		resp := s.handle(buf[:n])
		if resp == nil {
			continue
		}
		if _, err := conn.WriteTo(resp, addr); err != nil && s.Logf != nil {
			s.Logf("dns: writing response to %v: %v", addr, err)
		}
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// handle builds the response bytes for one request (nil to drop).
func (s *Server) handle(req []byte) []byte {
	var q Message
	if err := q.Unpack(req); err != nil {
		if s.Logf != nil {
			s.Logf("dns: unparseable query: %v", err)
		}
		return nil
	}
	if q.Header.Response || len(q.Questions) != 1 {
		return nil
	}
	resp := Message{
		Header: Header{
			ID:                 q.Header.ID,
			Response:           true,
			Opcode:             q.Header.Opcode,
			RecursionDesired:   q.Header.RecursionDesired,
			RecursionAvailable: true,
		},
		Questions: q.Questions,
	}
	if q.Header.Opcode != 0 {
		resp.Header.RCode = RCodeNotImplemented
	} else if s.Handler == nil {
		resp.Header.RCode = RCodeServerFailure
	} else {
		answers, rcode := s.Handler.Query(q.Questions[0])
		resp.Answers = answers
		resp.Header.RCode = rcode
	}
	out, err := resp.Pack()
	if err != nil {
		if s.Logf != nil {
			s.Logf("dns: packing response: %v", err)
		}
		// Fall back to a header-only SERVFAIL.
		resp.Answers = nil
		resp.Header.RCode = RCodeServerFailure
		out, err = resp.Pack()
		if err != nil {
			return nil
		}
	}
	return out
}
