package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// StreamingSummary is the online counterpart of Summarize: it folds an
// unbounded stream of observations into the same count/min/max/mean/
// p50/p95 shape in O(1) memory per metric. Sweeps in streaming mode
// keep one StreamingSummary per (cell, tick, metric) instead of every
// run's full series, making sweep memory O(cells × ticks) rather than
// O(runs × ticks).
//
// Exactness contract (property-tested against Summarize):
//
//   - Count, Min and Max are exact.
//   - Mean is Welford's incremental mean: exact up to floating-point
//     association (differences vs the batch mean are at the last-ulp
//     level, far below any rendered precision).
//   - P50, P95 and P99 are exact while the stream holds ≤ 25 finite
//     values (p2BufferSize; the estimator stores and sorts them) —
//     sweeps with up to 25 replicates per cell stream with *exact*
//     percentiles. Beyond that they are P² estimates (Jain & Chlamtac
//     1985) whose markers were seeded from the 25-sample quantiles;
//     the documented bound, property-tested against Summarize across
//     uniform, Gaussian and exponential streams, is
//     |estimate − exact| ≤ 0.15 × (max − min) for p50,
//     ≤ 0.20 × (max − min) for p95, and ≤ 0.25 × (max − min) for p99
//     (the deeper the tail, the fewer observations inform it).
//   - NaN observations are skipped, mirroring Summarize.
//
// The fold is deterministic: the same observation sequence produces the
// same Summary. Order matters to the P² estimates, so callers that need
// reproducible output across schedulers (the sweep pool) must feed
// values in a canonical order — the sweep feeds replicate order.
type StreamingSummary struct {
	count int
	min   float64
	max   float64
	mean  float64
	p50   p2Quantile
	p95   p2Quantile
	p99   p2Quantile
}

// NewStreamingSummary returns an empty accumulator tracking the p50,
// p95 and p99 Summarize reports.
func NewStreamingSummary() *StreamingSummary {
	return &StreamingSummary{
		p50: p2Quantile{p: 0.50},
		p95: p2Quantile{p: 0.95},
		// The deeper the tail, the more exact-phase samples the P²
		// markers need for a usable seed: a 25-sample buffer cannot
		// place a p99 marker at all (0.99 × 24 rounds to the max), so
		// p99 stays exact to 100 observations before estimating.
		p99: p2Quantile{p: 0.99, size: 4 * p2BufferSize},
	}
}

// Add folds one observation. NaN values are skipped.
func (s *StreamingSummary) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.count++
	if s.count == 1 {
		s.min, s.max = v, v
		s.mean = v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
		// Welford's update: numerically stable incremental mean.
		s.mean += (v - s.mean) / float64(s.count)
	}
	s.p50.add(v)
	s.p95.add(v)
	s.p99.add(v)
}

// Count returns the number of finite observations folded so far.
func (s *StreamingSummary) Count() int { return s.count }

// Merge folds every observation o has absorbed into s, leaving o
// untouched. Count, Min and Max stay exact; Mean becomes the weighted
// combination of the two means (exact up to floating-point
// association, like sequential folding). Percentiles: while both sides
// are still in their exact phase the merge replays o's buffered values
// and stays exact (and, if the combined stream still fits the buffer,
// identical to single-stream folding); once either side has entered
// the P² phase the merge replays o's five markers weighted by the
// sample mass between them, and the estimates carry looser, documented
// bounds than single-stream folding — property-tested at
// |Δp50| ≤ 0.25 × range, |Δp95| ≤ 0.25 × range and
// |Δp99| ≤ 0.30 × range versus the exact sample quantile.
//
// Distributed sweeps do NOT rely on Merge for their byte-identical
// contract (cells are leased whole, so each cell's accumulators are
// always single-stream folds in replicate order); Merge exists for
// consumers that genuinely combine independently-folded streams, e.g.
// adaptive refinement topping up a cell with extra replicates.
func (s *StreamingSummary) Merge(o *StreamingSummary) {
	if o == nil || o.count == 0 {
		return
	}
	if s.count == 0 {
		s.min, s.max = o.min, o.max
		s.mean = o.mean
	} else {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
		s.mean = (s.mean*float64(s.count) + o.mean*float64(o.count)) /
			float64(s.count+o.count)
	}
	s.count += o.count
	s.p50.merge(&o.p50)
	s.p95.merge(&o.p95)
	s.p99.merge(&o.p99)
}

// streamingSummaryJSON is the serialised accumulator state. Every field
// a fold touches is carried verbatim — float64 values survive
// encoding/json exactly (shortest round-tripping decimal) — so a
// decoded accumulator continues folding and estimating byte-for-byte
// like the original. That exactness is what lets a distributed-sweep
// worker ship per-cell accumulators to the coordinator without
// perturbing the byte-identical output contract.
type streamingSummaryJSON struct {
	Count int         `json:"count"`
	Min   float64     `json:"min"`
	Max   float64     `json:"max"`
	Mean  float64     `json:"mean"`
	P50   *p2Quantile `json:"p50"`
	P95   *p2Quantile `json:"p95"`
	P99   *p2Quantile `json:"p99"`
}

// MarshalJSON serialises the full accumulator state, exact-phase buffer
// or P² markers included.
func (s *StreamingSummary) MarshalJSON() ([]byte, error) {
	return json.Marshal(streamingSummaryJSON{
		Count: s.count, Min: s.min, Max: s.max, Mean: s.mean,
		P50: &s.p50, P95: &s.p95, P99: &s.p99,
	})
}

// UnmarshalJSON restores an accumulator serialised by MarshalJSON.
// Subsequent Add calls continue exactly where the original left off.
func (s *StreamingSummary) UnmarshalJSON(data []byte) error {
	fresh := NewStreamingSummary()
	sj := streamingSummaryJSON{P50: &fresh.p50, P95: &fresh.p95, P99: &fresh.p99}
	if err := json.Unmarshal(data, &sj); err != nil {
		return err
	}
	s.count, s.min, s.max, s.mean = sj.Count, sj.Min, sj.Max, sj.Mean
	s.p50, s.p95, s.p99 = *sj.P50, *sj.P95, *sj.P99
	return nil
}

// Summary renders the accumulator in Summarize's shape. With no finite
// observations every statistic is NaN and Count is zero, exactly like
// Summarize of an all-NaN sample.
func (s *StreamingSummary) Summary() Summary {
	if s.count == 0 {
		return Summary{Min: math.NaN(), Max: math.NaN(), Mean: math.NaN(), P50: math.NaN(), P95: math.NaN(), P99: math.NaN()}
	}
	return Summary{
		Count: s.count,
		Min:   s.min,
		Max:   s.max,
		Mean:  s.mean,
		P50:   s.p50.estimate(),
		P95:   s.p95.estimate(),
		P99:   s.p99.estimate(),
	}
}

// p2BufferSize is the exact-phase capacity of p2Quantile: the first
// p2BufferSize observations are stored and their percentile computed
// exactly; the P² markers take over from the buffered sample beyond
// that. 25 keeps typical sweep cells (replicates ≤ 25) exact while
// bounding the accumulator at a few hundred bytes per metric.
const p2BufferSize = 25

// p2Quantile is a bounded-memory single-quantile estimator: an exact
// buffer for the first cap() observations, then the P²
// (piecewise-parabolic) algorithm of Jain & Chlamtac — five markers
// whose heights track the minimum, the quantile's neighbourhood, and
// the maximum, adjusted towards ideal positions with parabolic
// interpolation after every observation. Initialising the markers from
// the full buffer (at their ideal positions in the sorted sample)
// rather than from the classic first five observations sharpens the
// tail quantiles considerably. O(1) space, ~cap() stored floats.
type p2Quantile struct {
	p float64 // target quantile in (0, 1)
	// size overrides the exact-phase capacity (0 means p2BufferSize);
	// deep tail quantiles need a larger seed sample.
	size int
	n    int       // observations seen
	buf  []float64 // exact phase: first cap() observations
	q    [5]float64
	pos  [5]float64 // actual marker positions (1-based)
	want [5]float64 // desired marker positions
}

// cap returns the exact-phase capacity.
func (e *p2Quantile) cap() int {
	if e.size > 0 {
		return e.size
	}
	return p2BufferSize
}

// add folds one observation into the estimator.
func (e *p2Quantile) add(v float64) {
	if e.n < e.cap() {
		e.buf = append(e.buf, v)
		e.n++
		return
	}
	if e.n == e.cap() {
		e.initMarkers()
	}

	// P² phase: find the cell the observation falls into, updating
	// extremes.
	var k int
	switch {
	case v < e.q[0]:
		e.q[0] = v
		k = 0
	case v >= e.q[4]:
		e.q[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	e.n++
	// Desired positions advance by the quantile's increment per
	// observation.
	e.want[1] += e.p / 2
	e.want[2] += e.p
	e.want[3] += (1 + e.p) / 2
	e.want[4]++

	// Adjust the three interior markers towards their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := e.parabolic(i, sign)
			if e.q[i-1] < h && h < e.q[i+1] {
				e.q[i] = h
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

// initMarkers seeds the five P² markers from the full exact-phase
// buffer: heights are the sorted sample's values at (approximately) the
// markers' ideal positions. The buffer is released afterwards.
func (e *p2Quantile) initMarkers() {
	sort.Float64s(e.buf)
	b := float64(len(e.buf))
	e.want[0] = 1
	e.want[1] = (b-1)*e.p/2 + 1
	e.want[2] = (b-1)*e.p + 1
	e.want[3] = (b-1)*(1+e.p)/2 + 1
	e.want[4] = b
	e.pos[0] = 1
	e.pos[4] = b
	for i := 1; i <= 3; i++ {
		e.pos[i] = math.Round(e.want[i])
	}
	// Positions must be strictly increasing integers in [1, b].
	for i := 1; i <= 3; i++ {
		if e.pos[i] <= e.pos[i-1] {
			e.pos[i] = e.pos[i-1] + 1
		}
	}
	for i := 3; i >= 1; i-- {
		if e.pos[i] >= e.pos[i+1] {
			e.pos[i] = e.pos[i+1] - 1
		}
	}
	for i := range e.q {
		e.q[i] = e.buf[int(e.pos[i])-1]
	}
	e.buf = nil
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by d (±1).
func (e *p2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction when the parabola overshoots
// a neighbouring marker.
func (e *p2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// merge replays o's observations into e. An exact-phase o contributes
// its buffered values verbatim (in insertion order, so merging two
// exact-phase accumulators is literally sequential folding); a P²-phase
// o is approximated by its five markers, each replayed as many times as
// the sample mass it represents (half the span to each neighbouring
// marker), ascending — the looser bounds documented on
// StreamingSummary.Merge come entirely from this branch.
func (e *p2Quantile) merge(o *p2Quantile) {
	if o.n == 0 {
		return
	}
	if o.n <= o.cap() {
		for _, v := range o.buf {
			e.add(v)
		}
		return
	}
	// Marker i stands in for the observations between the midpoints of
	// its neighbouring spans. Weights are rounded down; the remainder is
	// assigned to the middle marker (the quantile's own neighbourhood),
	// keeping the replayed count equal to o.n.
	var w [5]int
	total := 0
	for i := 0; i < 5; i++ {
		lo, hi := o.pos[0], o.pos[4]
		if i > 0 {
			lo = (o.pos[i-1] + o.pos[i]) / 2
		}
		if i < 4 {
			hi = (o.pos[i] + o.pos[i+1]) / 2
		}
		if i == 0 {
			lo = o.pos[0] - 0.5
		}
		if i == 4 {
			hi = o.pos[4] + 0.5
		}
		w[i] = int(hi - lo)
		if w[i] < 1 {
			w[i] = 1
		}
		total += w[i]
	}
	w[2] += o.n - total
	if w[2] < 1 {
		w[2] = 1
	}
	for i := 0; i < 5; i++ {
		for k := 0; k < w[i]; k++ {
			e.add(o.q[i])
		}
	}
}

// p2QuantileJSON mirrors p2Quantile field-for-field; bufN disambiguates
// "exact phase with an empty buffer" from "P² phase" (markers present).
type p2QuantileJSON struct {
	P    float64     `json:"p"`
	Size int         `json:"size,omitempty"`
	N    int         `json:"n"`
	Buf  []float64   `json:"buf,omitempty"`
	Q    *[5]float64 `json:"q,omitempty"`
	Pos  *[5]float64 `json:"pos,omitempty"`
	Want *[5]float64 `json:"want,omitempty"`
}

// MarshalJSON serialises the estimator state: the exact-phase buffer
// while it is live, the five P² markers beyond.
func (e *p2Quantile) MarshalJSON() ([]byte, error) {
	ej := p2QuantileJSON{P: e.p, Size: e.size, N: e.n}
	if e.buf != nil || e.n == 0 {
		ej.Buf = e.buf
	} else {
		q, pos, want := e.q, e.pos, e.want
		ej.Q, ej.Pos, ej.Want = &q, &pos, &want
	}
	return json.Marshal(ej)
}

// UnmarshalJSON restores an estimator serialised by MarshalJSON.
func (e *p2Quantile) UnmarshalJSON(data []byte) error {
	var ej p2QuantileJSON
	if err := json.Unmarshal(data, &ej); err != nil {
		return err
	}
	*e = p2Quantile{p: ej.P, size: ej.Size, n: ej.N, buf: ej.Buf}
	if ej.Q != nil {
		if ej.Pos == nil || ej.Want == nil {
			return fmt.Errorf("stats: p2 quantile state has markers without positions")
		}
		e.q, e.pos, e.want = *ej.Q, *ej.Pos, *ej.Want
	} else if e.n > e.cap() {
		return fmt.Errorf("stats: p2 quantile state claims %d observations but carries no markers", e.n)
	}
	return nil
}

// estimate returns the current quantile estimate: the exact percentile
// while the stream fits the buffer, the middle P² marker beyond.
func (e *p2Quantile) estimate() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	if e.n <= e.cap() {
		buf := make([]float64, len(e.buf))
		copy(buf, e.buf)
		sort.Float64s(buf)
		return Percentile(buf, e.p*100)
	}
	return e.q[2]
}
