package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// foldN returns an accumulator with the first n values of vs folded.
func foldN(vs []float64, n int) *StreamingSummary {
	acc := NewStreamingSummary()
	for _, v := range vs[:n] {
		acc.Add(v)
	}
	return acc
}

// roundTrip serialises and restores an accumulator.
func roundTrip(t *testing.T, acc *StreamingSummary) *StreamingSummary {
	t.Helper()
	data, err := json.Marshal(acc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	restored := NewStreamingSummary()
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return restored
}

// sameSummary compares two summaries bit-for-bit, NaN-aware.
func sameSummary(a, b Summary) bool {
	eq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	return a.Count == b.Count && eq(a.Min, b.Min) && eq(a.Max, b.Max) &&
		eq(a.Mean, b.Mean) && eq(a.P50, b.P50) && eq(a.P95, b.P95) && eq(a.P99, b.P99)
}

// TestStreamingRoundTripContinuesExactly is the distributed-sweep
// serialisation contract: an accumulator serialised at ANY point of its
// stream — empty, mid-exact-phase, exactly at the buffer boundary
// (where the lazy P² transition is still pending), or deep in the P²
// phase — restores to a state that reports the same Summary and keeps
// folding bit-identically to the original on every subsequent
// observation. The boundary cases matter: p50/p95 switch phase at 25
// observations, p99 at 100, so the split points bracket both.
func TestStreamingRoundTripContinuesExactly(t *testing.T) {
	rnd := rand.New(rand.NewSource(1509))
	vs := make([]float64, 400)
	for i := range vs {
		switch i % 7 {
		case 3:
			vs[i] = math.NaN() // serialisation must survive skipped values
		default:
			vs[i] = rnd.NormFloat64() * 40
		}
	}
	for _, split := range []int{0, 1, 7, 24, 25, 26, 60, 99, 100, 101, 250, 400} {
		orig := foldN(vs, split)
		restored := roundTrip(t, orig)
		if !sameSummary(orig.Summary(), restored.Summary()) {
			t.Fatalf("split %d: summary diverged after round trip:\n%+v\n%+v",
				split, orig.Summary(), restored.Summary())
		}
		for i := split; i < len(vs); i++ {
			orig.Add(vs[i])
			restored.Add(vs[i])
			if !sameSummary(orig.Summary(), restored.Summary()) {
				t.Fatalf("split %d: fold diverged at observation %d:\n%+v\n%+v",
					split, i, orig.Summary(), restored.Summary())
			}
		}
	}
}

// TestStreamingRoundTripPreservesPhase pins the state representation
// itself: an exact-phase accumulator serialises its buffer (and no
// markers), a P²-phase one serialises its markers (and no buffer) — so
// the wire format distinguishes the two and a decoded accumulator
// re-enters the same phase.
func TestStreamingRoundTripPreservesPhase(t *testing.T) {
	exact := foldN([]float64{3, 1, 2}, 3)
	data, err := json.Marshal(exact)
	if err != nil {
		t.Fatal(err)
	}
	var state struct {
		P50 struct {
			N   int       `json:"n"`
			Buf []float64 `json:"buf"`
			Q   []float64 `json:"q"`
		} `json:"p50"`
	}
	if err := json.Unmarshal(data, &state); err != nil {
		t.Fatal(err)
	}
	if len(state.P50.Buf) != 3 || state.P50.Q != nil {
		t.Fatalf("exact phase should serialise buffer only: %s", data)
	}
	// Insertion order (not sorted) must be preserved: the exact phase is
	// order-sensitive at the P² seeding boundary.
	if state.P50.Buf[0] != 3 || state.P50.Buf[1] != 1 || state.P50.Buf[2] != 2 {
		t.Fatalf("buffer order not preserved: %v", state.P50.Buf)
	}

	deep := NewStreamingSummary()
	for i := 0; i < 300; i++ {
		deep.Add(float64(i % 97))
	}
	data, err = json.Marshal(deep)
	if err != nil {
		t.Fatal(err)
	}
	state.P50.Buf, state.P50.Q = nil, nil
	if err := json.Unmarshal(data, &state); err != nil {
		t.Fatal(err)
	}
	if state.P50.Buf != nil || len(state.P50.Q) != 5 {
		t.Fatalf("P² phase should serialise markers only: %s", data)
	}
}

// TestStreamingRoundTripRejectsTornState: a P²-phase record missing its
// markers (or carrying markers without positions) is corrupt and must
// fail to decode rather than silently resetting the estimator.
func TestStreamingRoundTripRejectsTornState(t *testing.T) {
	if err := json.Unmarshal([]byte(`{"p":0.5,"n":60}`), &p2Quantile{}); err == nil {
		t.Fatal("P²-phase state without markers decoded")
	}
	if err := json.Unmarshal([]byte(`{"p":0.5,"n":60,"q":[1,2,3,4,5]}`), &p2Quantile{}); err == nil {
		t.Fatal("markers without positions decoded")
	}
}

// TestStreamingMergeExactPhases: while both sides are within the exact
// buffer, Merge replays the right side's buffered values — count, min,
// max and all three percentiles match single-stream folding exactly
// (mean up to floating-point association).
func TestStreamingMergeExactPhases(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rnd.Intn(24)
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = rnd.Float64() * 50
		}
		single := foldN(vs, n).Summary()
		for split := 0; split <= n; split++ {
			left := foldN(vs, split)
			right := NewStreamingSummary()
			for _, v := range vs[split:] {
				right.Add(v)
			}
			left.Merge(right)
			got := left.Summary()
			if got.Count != single.Count || got.Min != single.Min || got.Max != single.Max {
				t.Fatalf("trial %d split %d: count/min/max diverged: %+v vs %+v", trial, split, got, single)
			}
			if got.P50 != single.P50 || got.P95 != single.P95 || got.P99 != single.P99 {
				t.Fatalf("trial %d split %d: exact-phase merge percentiles diverged: %+v vs %+v",
					trial, split, got, single)
			}
			if !closeRel(got.Mean, single.Mean, 1e-9) {
				t.Fatalf("trial %d split %d: mean %v vs %v", trial, split, got.Mean, single.Mean)
			}
		}
	}
}

// TestStreamingMergeWithinBounds property-tests the documented merge
// bounds once either side is past its exact phase: against the exact
// sample quantile of the combined stream, |Δp50| ≤ 0.25 × range,
// |Δp95| ≤ 0.25 × range, |Δp99| ≤ 0.30 × range — across uniform,
// Gaussian and exponential streams and asymmetric splits. Count, min
// and max stay exact; estimates stay inside [min, max].
func TestStreamingMergeWithinBounds(t *testing.T) {
	rnd := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 200; trial++ {
		n := 30 + rnd.Intn(500)
		vs := make([]float64, n)
		scale := math.Pow(10, float64(rnd.Intn(4)))
		for i := range vs {
			switch trial % 3 {
			case 0:
				vs[i] = rnd.Float64() * scale
			case 1:
				vs[i] = rnd.NormFloat64() * scale
			default:
				vs[i] = rnd.ExpFloat64() * scale
			}
		}
		split := 1 + rnd.Intn(n-1)
		left := foldN(vs, split)
		right := NewStreamingSummary()
		for _, v := range vs[split:] {
			right.Add(v)
		}
		left.Merge(right)
		got := left.Summary()
		exact := Summarize(vs)
		if got.Count != exact.Count || got.Min != exact.Min || got.Max != exact.Max {
			t.Fatalf("trial %d: count/min/max diverged: %+v vs %+v", trial, got, exact)
		}
		if !closeRel(got.Mean, exact.Mean, 1e-9) {
			t.Fatalf("trial %d: mean %v vs %v", trial, got.Mean, exact.Mean)
		}
		span := exact.Max - exact.Min
		if d := math.Abs(got.P50 - exact.P50); d > 0.25*span+1e-12 {
			t.Fatalf("trial %d n=%d split=%d: merged p50 %v vs exact %v (|Δ|=%v > 0.25×%v)",
				trial, n, split, got.P50, exact.P50, d, span)
		}
		if d := math.Abs(got.P95 - exact.P95); d > 0.25*span+1e-12 {
			t.Fatalf("trial %d n=%d split=%d: merged p95 %v vs exact %v (|Δ|=%v > 0.25×%v)",
				trial, n, split, got.P95, exact.P95, d, span)
		}
		if d := math.Abs(got.P99 - exact.P99); d > 0.30*span+1e-12 {
			t.Fatalf("trial %d n=%d split=%d: merged p99 %v vs exact %v (|Δ|=%v > 0.30×%v)",
				trial, n, split, got.P99, exact.P99, d, span)
		}
		if got.P50 < exact.Min || got.P50 > exact.Max ||
			got.P95 < exact.Min || got.P95 > exact.Max ||
			got.P99 < exact.Min || got.P99 > exact.Max {
			t.Fatalf("trial %d: merged quantiles escape [min, max]: %+v", trial, got)
		}
	}
}

// TestStreamingMergeEmptySides: merging an empty accumulator in either
// direction is a no-op / a copy.
func TestStreamingMergeEmptySides(t *testing.T) {
	vs := []float64{5, 1, 9, 3}
	folded := foldN(vs, len(vs))
	folded.Merge(NewStreamingSummary())
	if !sameSummary(folded.Summary(), foldN(vs, len(vs)).Summary()) {
		t.Fatalf("merge of empty changed the receiver: %+v", folded.Summary())
	}
	empty := NewStreamingSummary()
	empty.Merge(foldN(vs, len(vs)))
	if !sameSummary(empty.Summary(), foldN(vs, len(vs)).Summary()) {
		t.Fatalf("merge into empty lost state: %+v", empty.Summary())
	}
	both := NewStreamingSummary()
	both.Merge(NewStreamingSummary())
	if both.Count() != 0 || !math.IsNaN(both.Summary().P50) {
		t.Fatalf("empty-empty merge: %+v", both.Summary())
	}
}

// TestSummaryJSONRoundTrip: the Summary wire rendering (null for
// non-finite values) decodes back to the same Summary, NaN for NaN and
// float for float — what lets exact-mode cell aggregates cross the
// distributed-sweep wire without changing a single output byte.
func TestSummaryJSONRoundTrip(t *testing.T) {
	cases := []Summary{
		Summarize([]float64{1, 2, 3, 4, 5}),
		Summarize([]float64{0.1234567890123456789, -7e300, 3e-300}),
		{Count: 0, Min: math.NaN(), Max: math.NaN(), Mean: math.NaN(),
			P50: math.NaN(), P95: math.NaN(), P99: math.NaN()},
	}
	for i, want := range cases {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		var got Summary
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !sameSummary(got, want) {
			t.Fatalf("case %d: round trip changed the summary:\n%+v\n%+v", i, want, got)
		}
	}
}
