package stats

import (
	"math"
	"math/rand"
	"testing"
)

// streamOf folds vs through a fresh accumulator.
func streamOf(vs []float64) Summary {
	acc := NewStreamingSummary()
	for _, v := range vs {
		acc.Add(v)
	}
	return acc.Summary()
}

// TestStreamingMatchesSummarizeExactly covers the exact part of the
// contract on randomized series: count, min and max bit-equal, mean
// within floating-point association noise — across distributions,
// lengths, orderings, and NaN contamination.
func TestStreamingMatchesSummarizeExactly(t *testing.T) {
	rnd := rand.New(rand.NewSource(20150601))
	gens := map[string]func(n int) []float64{
		"uniform": func(n int) []float64 {
			vs := make([]float64, n)
			for i := range vs {
				vs[i] = rnd.Float64() * 100
			}
			return vs
		},
		"gaussianish": func(n int) []float64 {
			vs := make([]float64, n)
			for i := range vs {
				vs[i] = rnd.NormFloat64()*5 + 50
			}
			return vs
		},
		"ascending": func(n int) []float64 {
			vs := make([]float64, n)
			for i := range vs {
				vs[i] = float64(i)
			}
			return vs
		},
		"descending": func(n int) []float64 {
			vs := make([]float64, n)
			for i := range vs {
				vs[i] = float64(n - i)
			}
			return vs
		},
		"constant": func(n int) []float64 {
			vs := make([]float64, n)
			for i := range vs {
				vs[i] = 0.25
			}
			return vs
		},
		"with-nans": func(n int) []float64 {
			vs := make([]float64, n)
			for i := range vs {
				if i%5 == 3 {
					vs[i] = math.NaN()
				} else {
					vs[i] = rnd.Float64()
				}
			}
			return vs
		},
	}
	for name, gen := range gens {
		for _, n := range []int{0, 1, 2, 3, 5, 8, 40, 200} {
			vs := gen(n)
			exact := Summarize(vs)
			got := streamOf(vs)
			if got.Count != exact.Count {
				t.Fatalf("%s n=%d: count %d != %d", name, n, got.Count, exact.Count)
			}
			if exact.Count == 0 {
				if !math.IsNaN(got.Min) || !math.IsNaN(got.Mean) || !math.IsNaN(got.P50) {
					t.Fatalf("%s n=%d: empty stream not all-NaN: %+v", name, n, got)
				}
				continue
			}
			if got.Min != exact.Min || got.Max != exact.Max {
				t.Fatalf("%s n=%d: min/max %v/%v != %v/%v", name, n, got.Min, got.Max, exact.Min, exact.Max)
			}
			if !closeRel(got.Mean, exact.Mean, 1e-9) {
				t.Fatalf("%s n=%d: mean %v != %v", name, n, got.Mean, exact.Mean)
			}
		}
	}
}

// TestStreamingQuantilesSmallSamplesExact: while the stream fits the
// exact-phase buffer (≤ 25 finite values) p50/p95/p99 equal the exact
// percentiles — a sweep cell with up to 25 replicates streams exactly.
func TestStreamingQuantilesSmallSamplesExact(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for n := 1; n <= 25; n++ {
		for trial := 0; trial < 50; trial++ {
			vs := make([]float64, n)
			for i := range vs {
				vs[i] = rnd.Float64() * 10
			}
			exact := Summarize(vs)
			got := streamOf(vs)
			if !closeRel(got.P50, exact.P50, 1e-12) || !closeRel(got.P95, exact.P95, 1e-12) {
				t.Fatalf("n=%d: p50/p95 %v/%v != exact %v/%v (vs=%v)",
					n, got.P50, got.P95, exact.P50, exact.P95, vs)
			}
			if !closeRel(got.P99, exact.P99, 1e-12) {
				t.Fatalf("n=%d: p99 %v != exact %v (vs=%v)", n, got.P99, exact.P99, vs)
			}
		}
	}
}

// TestStreamingQuantilesWithinBounds property-tests the documented P²
// error bounds against the exact sample quantiles on larger randomized
// series: |p50 − exact| ≤ 0.15 × range, |p95 − exact| ≤ 0.20 × range,
// |p99 − exact| ≤ 0.25 × range.
func TestStreamingQuantilesWithinBounds(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 6 + rnd.Intn(300)
		vs := make([]float64, n)
		scale := math.Pow(10, float64(rnd.Intn(4)))
		for i := range vs {
			switch trial % 3 {
			case 0:
				vs[i] = rnd.Float64() * scale
			case 1:
				vs[i] = rnd.NormFloat64() * scale
			default:
				vs[i] = rnd.ExpFloat64() * scale
			}
		}
		exact := Summarize(vs)
		got := streamOf(vs)
		span := exact.Max - exact.Min
		if d := math.Abs(got.P50 - exact.P50); d > 0.15*span+1e-12 {
			t.Fatalf("trial %d n=%d: p50 estimate %v vs exact %v (|Δ|=%v > 0.15×%v)",
				trial, n, got.P50, exact.P50, d, span)
		}
		if d := math.Abs(got.P95 - exact.P95); d > 0.20*span+1e-12 {
			t.Fatalf("trial %d n=%d: p95 estimate %v vs exact %v (|Δ|=%v > 0.20×%v)",
				trial, n, got.P95, exact.P95, d, span)
		}
		if d := math.Abs(got.P99 - exact.P99); d > 0.25*span+1e-12 {
			t.Fatalf("trial %d n=%d: p99 estimate %v vs exact %v (|Δ|=%v > 0.25×%v)",
				trial, n, got.P99, exact.P99, d, span)
		}
		// Estimates stay inside the observed range.
		if got.P50 < exact.Min || got.P50 > exact.Max || got.P95 < exact.Min || got.P95 > exact.Max ||
			got.P99 < exact.Min || got.P99 > exact.Max {
			t.Fatalf("trial %d: quantile estimates escape [min, max]: %+v", trial, got)
		}
	}
}

// TestStreamingDeterministic: the fold is a pure function of the
// observation sequence.
func TestStreamingDeterministic(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	vs := make([]float64, 500)
	for i := range vs {
		vs[i] = rnd.NormFloat64()
	}
	a, b := streamOf(vs), streamOf(vs)
	if a != b {
		t.Fatalf("same sequence, different summaries: %+v vs %+v", a, b)
	}
}

// TestStreamingSkipsNaN mirrors Summarize's NaN contract, including the
// all-NaN stream.
func TestStreamingSkipsNaN(t *testing.T) {
	got := streamOf([]float64{math.NaN(), 2, math.NaN(), 4})
	if got.Count != 2 || got.Min != 2 || got.Max != 4 || got.Mean != 3 {
		t.Fatalf("NaNs not skipped: %+v", got)
	}
	all := streamOf([]float64{math.NaN(), math.NaN()})
	if all.Count != 0 || !math.IsNaN(all.P95) {
		t.Fatalf("all-NaN stream: %+v", all)
	}
}

func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}
