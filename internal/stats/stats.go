// Package stats provides the binning and presentation machinery the
// paper's figures use: domains grouped into rank bins of 10,000
// ("we apply a binning of 10k domains in all graphs"), relative
// frequencies per bin, and table/series rendering as TSV or aligned
// text.
package stats

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Summary is the five-number-plus-mean description of a sample:
// count/min/max/mean and the 50th/95th/99th percentiles. Sweeps fold
// each simulated tick's cross-run values into one Summary per metric;
// the serving layer and loadgen report request latencies in the same
// shape (p99 is the tail number an SLO watches).
type Summary struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summarize describes a sample. NaN values are skipped — an empty
// Binner bin reports NaN, and one empty bin must not poison a whole
// sweep aggregate. With no finite values every statistic is NaN and
// Count is zero.
func Summarize(vs []float64) Summary {
	finite := make([]float64, 0, len(vs))
	for _, v := range vs {
		if !math.IsNaN(v) {
			finite = append(finite, v)
		}
	}
	s := Summary{Count: len(finite), Min: math.NaN(), Max: math.NaN(), Mean: math.NaN(), P50: math.NaN(), P95: math.NaN(), P99: math.NaN()}
	if len(finite) == 0 {
		return s
	}
	sort.Float64s(finite)
	var sum float64
	for _, v := range finite {
		sum += v
	}
	s.Min = finite[0]
	s.Max = finite[len(finite)-1]
	s.Mean = sum / float64(len(finite))
	s.P50 = Percentile(finite, 50)
	s.P95 = Percentile(finite, 95)
	s.P99 = Percentile(finite, 99)
	return s
}

// Percentile returns the p-th percentile (0–100) of an ascending-sorted
// sample, with linear interpolation between closest ranks. NaN for an
// empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// JSONFloat is a float64 that encodes non-finite values as null —
// encoding/json rejects NaN outright, and the sim/sweep exports must
// serialise even where a metric has nothing to report. The single
// rendering rule every JSON surface shares.
type JSONFloat float64

// MarshalJSON renders the number, or null when it is not finite.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON inverts MarshalJSON: null decodes to NaN, numbers to
// themselves — so a serialised summary round-trips exactly, which the
// distributed-sweep merge depends on for byte-identical output.
func (f *JSONFloat) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*f = JSONFloat(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// summaryJSON is Summary with null-safe floats, shared by both
// marshalling directions so NaN round-trips as null and back.
type summaryJSON struct {
	Count int       `json:"count"`
	Min   JSONFloat `json:"min"`
	Max   JSONFloat `json:"max"`
	Mean  JSONFloat `json:"mean"`
	P50   JSONFloat `json:"p50"`
	P95   JSONFloat `json:"p95"`
	P99   JSONFloat `json:"p99"`
}

// MarshalJSON renders non-finite statistics as null, so an empty cell
// cannot fail a whole sweep export.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{s.Count, JSONFloat(s.Min), JSONFloat(s.Max), JSONFloat(s.Mean), JSONFloat(s.P50), JSONFloat(s.P95), JSONFloat(s.P99)})
}

// UnmarshalJSON restores a Summary, decoding null statistics back to
// NaN — the exact inverse of MarshalJSON, float for float.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var sj summaryJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return err
	}
	*s = Summary{sj.Count, float64(sj.Min), float64(sj.Max), float64(sj.Mean), float64(sj.P50), float64(sj.P95), float64(sj.P99)}
	return nil
}

// Binner accumulates per-rank observations into fixed-width rank bins.
// Values are probabilities or indicator weights; each bin reports the
// mean of its observations (a relative frequency when the inputs are
// 0/1 indicators).
type Binner struct {
	width  int
	sums   []float64
	counts []int
}

// NewBinner creates a binner with the given bin width (e.g. 10000).
func NewBinner(width int) *Binner {
	if width <= 0 {
		panic("stats: bin width must be positive")
	}
	return &Binner{width: width}
}

// Width returns the configured bin width.
func (b *Binner) Width() int { return b.width }

// Add records an observation for the 1-based rank.
func (b *Binner) Add(rank int, value float64) {
	if rank < 1 {
		panic(fmt.Sprintf("stats: rank %d out of range", rank))
	}
	idx := (rank - 1) / b.width
	for len(b.sums) <= idx {
		b.sums = append(b.sums, 0)
		b.counts = append(b.counts, 0)
	}
	b.sums[idx] += value
	b.counts[idx]++
}

// Bins returns the number of bins with at least one observation slot.
func (b *Binner) Bins() int { return len(b.sums) }

// Mean returns the mean observation in bin i (NaN for empty bins).
func (b *Binner) Mean(i int) float64 {
	if i < 0 || i >= len(b.sums) || b.counts[i] == 0 {
		return math.NaN()
	}
	return b.sums[i] / float64(b.counts[i])
}

// Count returns the number of observations in bin i.
func (b *Binner) Count(i int) int {
	if i < 0 || i >= len(b.counts) {
		return 0
	}
	return b.counts[i]
}

// Series converts the binner to a named series. X values are the bin
// start ranks (1, width+1, ...).
func (b *Binner) Series(name string) Series {
	s := Series{Name: name}
	for i := range b.sums {
		s.Points = append(s.Points, Point{X: float64(i*b.width + 1), Y: b.Mean(i)})
	}
	return s
}

// Overall returns the mean across all observations.
func (b *Binner) Overall() float64 {
	var sum float64
	var n int
	for i := range b.sums {
		sum += b.sums[i]
		n += b.counts[i]
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points — one curve in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a set of series sharing an x axis — one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteTSV renders the figure as a tab-separated table: one row per x
// value, one column per series. Series are aligned by point index.
func (f *Figure) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", f.Title)
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	fmt.Fprintln(bw, strings.Join(cols, "\t"))
	n := 0
	for _, s := range f.Series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(f.Series)+1)
		x := math.NaN()
		for _, s := range f.Series {
			if i < len(s.Points) {
				x = s.Points[i].X
				break
			}
		}
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.6f", s.Points[i].Y))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(bw, strings.Join(row, "\t"))
	}
	return bw.Flush()
}

func trimFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// ASCIIPlot renders the figure as a crude fixed-size text plot, for
// example programs and quick terminal inspection.
func (f *Figure) ASCIIPlot(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if math.IsNaN(p.Y) {
				continue
			}
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		}
	}
	if math.IsInf(minY, 1) {
		return f.Title + ": (no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := "*+ox#@"
	for si, s := range f.Series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			if math.IsNaN(p.Y) {
				continue
			}
			x := int((p.X - minX) / (maxX - minX) * float64(width-1))
			y := int((p.Y - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-y][x] = m
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", f.Title)
	fmt.Fprintf(&sb, "%-12s top=%.4f\n", f.YLabel, maxY)
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "+%s bottom=%.4f\n", strings.Repeat("-", width), minY)
	for si, s := range f.Series {
		fmt.Fprintf(&sb, "  %c = %s\n", markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

// Table is a simple labelled table — one paper table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// WriteTSV renders the table as TSV.
func (t *Table) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", t.Title)
	fmt.Fprintln(bw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(bw, strings.Join(row, "\t"))
	}
	return bw.Flush()
}

// WriteAligned renders the table with space-aligned columns for
// terminals.
func (t *Table) WriteAligned(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(bw)
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return bw.Flush()
}
