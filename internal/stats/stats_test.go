package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestBinnerMeans(t *testing.T) {
	b := NewBinner(10)
	for rank := 1; rank <= 30; rank++ {
		v := 0.0
		if rank <= 10 {
			v = 1.0 // first bin all ones
		} else if rank <= 20 && rank%2 == 0 {
			v = 1.0 // second bin half ones
		}
		b.Add(rank, v)
	}
	if b.Bins() != 3 {
		t.Fatalf("Bins = %d", b.Bins())
	}
	if got := b.Mean(0); got != 1.0 {
		t.Errorf("Mean(0) = %v", got)
	}
	if got := b.Mean(1); got != 0.5 {
		t.Errorf("Mean(1) = %v", got)
	}
	if got := b.Mean(2); got != 0.0 {
		t.Errorf("Mean(2) = %v", got)
	}
	if got := b.Overall(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Overall = %v", got)
	}
	if !math.IsNaN(b.Mean(9)) {
		t.Error("Mean of absent bin not NaN")
	}
	if b.Count(0) != 10 || b.Count(99) != 0 {
		t.Error("Count wrong")
	}
	if b.Width() != 10 {
		t.Error("Width wrong")
	}
}

func TestBinnerBoundaries(t *testing.T) {
	b := NewBinner(10000)
	b.Add(1, 1)
	b.Add(10000, 1)
	b.Add(10001, 1)
	if b.Bins() != 2 {
		t.Fatalf("Bins = %d", b.Bins())
	}
	if b.Count(0) != 2 || b.Count(1) != 1 {
		t.Errorf("bin counts: %d, %d", b.Count(0), b.Count(1))
	}
}

func TestBinnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(rank 0) did not panic")
		}
	}()
	NewBinner(10).Add(0, 1)
}

func TestSeriesFromBinner(t *testing.T) {
	b := NewBinner(100)
	b.Add(1, 0.5)
	b.Add(150, 1.0)
	s := b.Series("test")
	if len(s.Points) != 2 {
		t.Fatalf("points = %v", s.Points)
	}
	if s.Points[0].X != 1 || s.Points[1].X != 101 {
		t.Errorf("x values: %v", s.Points)
	}
}

func TestFigureTSV(t *testing.T) {
	f := &Figure{
		Title:  "Figure 2",
		XLabel: "rank",
		YLabel: "freq",
		Series: []Series{
			{Name: "valid", Points: []Point{{1, 0.04}, {10001, 0.05}}},
			{Name: "invalid", Points: []Point{{1, 0.001}, {10001, 0.0009}}},
		},
	}
	var buf bytes.Buffer
	if err := f.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("TSV lines = %d:\n%s", len(lines), out)
	}
	if lines[1] != "rank\tvalid\tinvalid" {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "1\t0.040000\t0.001000") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestASCIIPlot(t *testing.T) {
	f := &Figure{
		Title:  "t",
		YLabel: "y",
		Series: []Series{{Name: "a", Points: []Point{{1, 0}, {2, 1}, {3, 0.5}}}},
	}
	out := f.ASCIIPlot(20, 5)
	if !strings.Contains(out, "*") || !strings.Contains(out, "a") {
		t.Errorf("plot missing markers:\n%s", out)
	}
	empty := &Figure{Title: "e"}
	if !strings.Contains(empty.ASCIIPlot(20, 5), "no data") {
		t.Error("empty plot not flagged")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "Table 1",
		Columns: []string{"Rank", "Domain", "www"},
		Rows: [][]string{
			{"2", "facebook.com", "3/3"},
			{"70", "cdncache1-a.akamaihd.net", "n/a"},
		},
	}
	var buf bytes.Buffer
	if err := tbl.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "facebook.com\t3/3") {
		t.Errorf("TSV:\n%s", buf.String())
	}
	buf.Reset()
	if err := tbl.WriteAligned(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cdncache1-a.akamaihd.net") {
		t.Errorf("aligned:\n%s", buf.String())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	// p95 of [1..5]: pos = 0.95*4 = 3.8 → 4*(0.2) + 5*(0.8) = 4.8.
	if math.Abs(s.P95-4.8) > 1e-9 {
		t.Errorf("P95 = %v, want 4.8", s.P95)
	}
	// p99 of [1..5]: pos = 0.99*4 = 3.96 → 4*(0.04) + 5*(0.96) = 4.96.
	if math.Abs(s.P99-4.96) > 1e-9 {
		t.Errorf("P99 = %v, want 4.96", s.P99)
	}
}

func TestSummarizeSkipsNaN(t *testing.T) {
	s := Summarize([]float64{math.NaN(), 2, math.NaN(), 4})
	if s.Count != 2 || s.Min != 2 || s.Max != 4 || s.Mean != 3 || s.P50 != 3 {
		t.Errorf("Summarize with NaN = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	for _, vs := range [][]float64{nil, {}, {math.NaN(), math.NaN()}} {
		s := Summarize(vs)
		if s.Count != 0 {
			t.Errorf("Count = %d for %v", s.Count, vs)
		}
		for name, v := range map[string]float64{"min": s.Min, "max": s.Max, "mean": s.Mean, "p50": s.P50, "p95": s.P95, "p99": s.P99} {
			if !math.IsNaN(v) {
				t.Errorf("%s = %v for empty sample, want NaN", name, v)
			}
		}
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Count != 1 || s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.P50 != 7 || s.P95 != 7 || s.P99 != 7 {
		t.Errorf("Summarize single = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {-5, 10}, {150, 40},
		{50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty sample not NaN")
	}
}

func TestSummaryMarshalJSONNaN(t *testing.T) {
	b, err := json.Marshal(Summarize(nil))
	if err != nil {
		t.Fatalf("marshal empty summary: %v", err)
	}
	want := `{"count":0,"min":null,"max":null,"mean":null,"p50":null,"p95":null,"p99":null}`
	if string(b) != want {
		t.Errorf("got %s, want %s", b, want)
	}
	b, err = json.Marshal(Summarize([]float64{1, 2, 3}))
	if err != nil {
		t.Fatalf("marshal summary: %v", err)
	}
	if !strings.Contains(string(b), `"mean":2`) || strings.Contains(string(b), "null") {
		t.Errorf("finite summary rendered wrong: %s", b)
	}
}
