package webworld

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"ripki/internal/bgp"
	"ripki/internal/netutil"
	"ripki/internal/rib"
)

// TestMRTRoundTripOfWorld snapshots the generated RIB to MRT bytes and
// reloads it — the exact path a real study takes when ingesting RIS
// dumps.
func TestMRTRoundTripOfWorld(t *testing.T) {
	w := smallWorld(t)
	var buf bytes.Buffer
	if err := w.RIB.DumpMRT(&buf, netutil.MustAddr("193.0.4.28"), "rrc00", w.Cfg.Clock); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty MRT dump")
	}
	got, err := rib.LoadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != w.RIB.Len() || got.Routes() != w.RIB.Routes() {
		t.Fatalf("reloaded table: %d/%d prefixes, %d/%d routes",
			got.Len(), w.RIB.Len(), got.Routes(), w.RIB.Routes())
	}
	// Spot-check origin extraction equivalence after the round trip.
	probe := w.Orgs[20].Prefixes[0]
	a := hostAddr(probe, 99)
	want := w.RIB.OriginPairs(a)
	have := got.OriginPairs(a)
	if len(want) != len(have) {
		t.Fatalf("OriginPairs differ after reload: %v vs %v", want, have)
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("OriginPairs[%d]: %v vs %v", i, want[i], have[i])
		}
	}
}

// TestReplayBGPIntoCollector replays a small world's routing table over
// live RFC 4271 sessions into a collector and verifies the received
// table matches — end-to-end wire validation of the BGP substrate.
func TestReplayBGPIntoCollector(t *testing.T) {
	w, err := Generate(Config{Seed: 5, Domains: 1500, Hosters: 80, ISPs: 120})
	if err != nil {
		t.Fatal(err)
	}
	received := rib.New()
	var mu sync.Mutex
	col := &bgp.Collector{
		ASN: 12654,
		ID:  netutil.MustAddr("193.0.4.28"),
		Handle: func(ev bgp.RouteEvent) {
			mu.Lock()
			defer mu.Unlock()
			if err := received.Apply(ev); err != nil {
				t.Errorf("apply: %v", err)
			}
		},
		Logf: t.Logf,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go col.Serve(ln)
	defer col.Close()

	if err := w.ReplayBGP(ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	// The collector processes asynchronously; wait for all routes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := received.Routes()
		mu.Unlock()
		if n == w.RIB.Routes() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d routes", n, w.RIB.Routes())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if received.Len() != w.RIB.Len() {
		t.Fatalf("prefixes: %d vs %d", received.Len(), w.RIB.Len())
	}
	// Origin extraction must agree everywhere.
	mismatch := 0
	w.RIB.WalkRoutes(func(r rib.Route) bool {
		a := hostAddr(r.Prefix, 7)
		want := w.RIB.OriginPairs(a)
		have := received.OriginPairs(a)
		if len(want) != len(have) {
			mismatch++
			return mismatch < 5
		}
		for i := range want {
			if want[i] != have[i] {
				mismatch++
				return mismatch < 5
			}
		}
		return true
	})
	if mismatch != 0 {
		t.Fatalf("%d origin-pair mismatches after wire replay", mismatch)
	}
}
