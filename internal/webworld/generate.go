package webworld

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"strings"

	"ripki/internal/bgp"
	"ripki/internal/dns"
	"ripki/internal/mrt"
	"ripki/internal/netutil"
	"ripki/internal/rib"
	"ripki/internal/rpki/cert"
	"ripki/internal/rpki/repo"
	"ripki/internal/rpki/roa"
)

// Generate builds the whole world from the configuration.
func Generate(cfg Config) (*World, error) {
	cfg = cfg.Defaults()
	w := &World{
		Cfg: cfg,
		// Roughly a name for the apex, one for www (when not a CNAME of
		// the apex), plus CDN edge/pool names: presizing near the final
		// count keeps million-domain generation from rehashing the map.
		Registry:    dns.NewRegistrySized(cfg.Domains*9/4 + 4096),
		RIB:         rib.New(),
		rnd:         rand.New(rand.NewSource(cfg.Seed)),
		alloc:       newAllocator(),
		prefixOrg:   make(map[netip.Prefix]*Org),
		CDNSuffixes: make(map[string][]string),
		valMemo:     &validationMemo{},
	}
	var err error
	if w.Repo, err = repo.New(repo.RIRNames, cfg.Clock, cfg.TTL); err != nil {
		return nil, err
	}
	if err := w.buildOrgs(); err != nil {
		return nil, err
	}
	if err := w.signROAs(); err != nil {
		return nil, err
	}
	w.announce()
	if err := w.buildDomains(); err != nil {
		return nil, err
	}
	return w, nil
}

// --- organisations -----------------------------------------------------

type worldOrgs struct {
	hosters   []*Org
	isps      []*Org
	cdns      []*Org
	transit   []uint32 // transit ASNs for path middles
	unrouted  []netip.Prefix
	fixISP    *Org // ROA-signing eyeball ISP used by fixtures
	fixLegacy *Org // unsigned hoster used by fixtures
	fixOrgs   map[string]*Org
}

func (w *World) buildOrgs() error {
	w.orgs = &worldOrgs{fixOrgs: make(map[string]*Org)}
	nextASN := uint32(2000)
	newOrg := func(name string, kind OrgKind, rir string, asCount int) *Org {
		o := &Org{Name: name, Kind: kind, RIR: rir}
		for i := 0; i < asCount; i++ {
			o.ASNs = append(o.ASNs, nextASN)
			w.ASRegistry = append(w.ASRegistry, ASInfo{
				ASN:  nextASN,
				Name: fmt.Sprintf("%s-AS%d", strings.ToUpper(name), i+1),
				Org:  name,
			})
			nextASN++
		}
		w.Orgs = append(w.Orgs, o)
		return o
	}
	addPrefix := func(o *Org, bits int) (netip.Prefix, error) {
		p, err := w.alloc.nextV4(o.RIR, bits)
		if err != nil {
			return netip.Prefix{}, err
		}
		o.Prefixes = append(o.Prefixes, p)
		w.prefixOrg[p] = o
		w.Stats.PrefixesTotal++
		return p, nil
	}
	rirs := w.alloc.rirNames()
	rirFor := func(i int) string { return rirs[i%len(rirs)] }

	// Transit providers: path middles and collector peers.
	for i := 0; i < 12; i++ {
		o := newOrg(fmt.Sprintf("transit-%02d", i), KindISP, rirFor(i), 1)
		w.orgs.transit = append(w.orgs.transit, o.ASNs[0])
	}

	addV6 := func(o *Org) error {
		p, err := w.alloc.nextV6(o.RIR)
		if err != nil {
			return err
		}
		o.Prefixes = append(o.Prefixes, p)
		w.prefixOrg[p] = o
		w.Stats.PrefixesTotal++
		return nil
	}
	// addSubs sometimes announces more-specific blocks inside an
	// aggregate, as real operators do; addresses inside them then map
	// to several covering (prefix, origin) pairs, matching the paper's
	// >1 pair-per-address ratio. Sub-prefixes are also the world's main
	// source of *invalid* announcements: a signing organisation that
	// forgets to authorise its traffic-engineering more-specific leaves
	// it violating the covering ROA's maxLength — the real-world
	// misconfiguration pattern behind most RPKI invalids.
	addSubs := func(o *Org, p netip.Prefix) {
		if p.Bits() != 16 || w.rnd.Float64() >= 0.3 {
			return
		}
		n := 1 + w.rnd.Intn(2)
		for k := 0; k < n; k++ {
			sp := subPrefix(p, 20, w.rnd.Intn(16))
			if _, taken := w.prefixOrg[sp]; taken {
				continue
			}
			o.Prefixes = append(o.Prefixes, sp)
			w.prefixOrg[sp] = o
			w.Stats.PrefixesTotal++
			if w.subOf == nil {
				w.subOf = make(map[netip.Prefix]netip.Prefix)
			}
			w.subOf[sp] = p
		}
	}

	// Eyeball/regional ISPs: may sign ROAs, may host CDN caches.
	for i := 0; i < w.Cfg.ISPs; i++ {
		name := fmt.Sprintf("isp-%s%s", nameSyllables[w.rnd.Intn(len(nameSyllables))], nameSyllables[w.rnd.Intn(len(nameSyllables))])
		o := newOrg(fmt.Sprintf("%s-%03d", name, i), KindISP, rirFor(w.rnd.Intn(len(rirs))), 1+w.rnd.Intn(2))
		n := 2 + w.rnd.Intn(4)
		for j := 0; j < n; j++ {
			p, err := addPrefix(o, 16+4*w.rnd.Intn(2))
			if err != nil {
				return err
			}
			addSubs(o, p)
		}
		if w.rnd.Float64() < 0.4 {
			if err := addV6(o); err != nil {
				return err
			}
		}
		w.orgs.isps = append(w.orgs.isps, o)
	}

	// Webhosters: where most origin servers live.
	for i := 0; i < w.Cfg.Hosters; i++ {
		name := fmt.Sprintf("host-%s%s", nameSyllables[w.rnd.Intn(len(nameSyllables))], nameSyllables[w.rnd.Intn(len(nameSyllables))])
		o := newOrg(fmt.Sprintf("%s-%03d", name, i), KindHoster, rirFor(w.rnd.Intn(len(rirs))), 1)
		n := 2 + w.rnd.Intn(5)
		for j := 0; j < n; j++ {
			p, err := addPrefix(o, 16+4*w.rnd.Intn(3))
			if err != nil {
				return err
			}
			addSubs(o, p)
		}
		if w.rnd.Float64() < 0.5 {
			if err := addV6(o); err != nil {
				return err
			}
		}
		w.orgs.hosters = append(w.orgs.hosters, o)
	}

	// ROA signing is an organisation-level policy adopted by a fixed
	// share of hosters and ISPs ("web hosters or common ISPs ... have
	// far higher levels of penetration (> 5%)"). The count is exact so
	// small worlds keep the calibrated deployment level; which
	// organisations sign is random.
	signShare := func(list []*Org) {
		n := int(math.Round(w.Cfg.HosterROAProb * float64(len(list))))
		if n == 0 && len(list) > 0 {
			n = 1
		}
		for _, idx := range w.rnd.Perm(len(list))[:n] {
			list[idx].SignsROAs = true
		}
	}
	signShare(w.orgs.isps)
	signShare(w.orgs.hosters)

	// CDNs, per spec.
	for i := range w.Cfg.CDNs {
		spec := &w.Cfg.CDNs[i]
		o := newOrg(spec.Name, KindCDN, rirFor(i), spec.ASCount)
		o.CDN = spec
		o.SignsROAs = spec.SignsROAs
		// Roughly two prefixes per AS, as delivery platforms do.
		for j := 0; j < spec.ASCount*2; j++ {
			if _, err := addPrefix(o, 20); err != nil {
				return err
			}
		}
		if err := addV6(o); err != nil {
			return err
		}
		w.orgs.cdns = append(w.orgs.cdns, o)
		w.CDNSuffixes[spec.Name] = spec.ServiceSuffixes
	}

	// Fixture support organisations.
	w.orgs.fixISP = newOrg("secure-eyeball", KindISP, "ripe", 2)
	w.orgs.fixISP.SignsROAs = true
	w.orgs.fixISP.fixture = true
	for j := 0; j < 6; j++ {
		if _, err := addPrefix(w.orgs.fixISP, 20); err != nil {
			return err
		}
	}
	w.orgs.fixLegacy = newOrg("legacy-hosting", KindHoster, "arin", 2)
	w.orgs.fixLegacy.fixture = true
	for j := 0; j < 12; j++ {
		if _, err := addPrefix(w.orgs.fixLegacy, 20); err != nil {
			return err
		}
	}
	for _, ts := range topSites() {
		if ts.cdn != "" && ts.name != "kickass.to" {
			continue // CDN fixtures borrow CDN + fixISP + fixLegacy space
		}
		kind := KindEnterprise
		label := strings.SplitN(ts.name, ".", 2)[0]
		o := newOrg(label, kind, "arin", 2)
		o.fixture = true
		total := ts.wwwTotal
		if ts.apexTotal > total {
			total = ts.apexTotal
		}
		o.SignsROAs = ts.wwwCovered == ts.wwwTotal && ts.wwwTotal > 0
		for j := 0; j < total; j++ {
			if _, err := addPrefix(o, 20); err != nil {
				return err
			}
		}
		w.orgs.fixOrgs[ts.name] = o
	}

	// Allocated-but-unannounced space for the unreachable 0.01%.
	for j := 0; j < 4; j++ {
		p, err := w.alloc.nextV4("lacnic", 20)
		if err != nil {
			return err
		}
		w.orgs.unrouted = append(w.orgs.unrouted, p)
	}
	return nil
}

// --- RPKI --------------------------------------------------------------

func (w *World) signROAs() error {
	cas := make(map[*Org]*repo.CA)
	for _, o := range w.Orgs {
		if !o.SignsROAs || len(o.Prefixes) == 0 {
			continue
		}
		anchor := w.Repo.Anchor(o.RIR)
		if anchor == nil {
			return fmt.Errorf("webworld: no trust anchor for RIR %q", o.RIR)
		}
		res := certResources(o)
		ca, err := w.Repo.NewCA(anchor, o.Name, res)
		if err != nil {
			return err
		}
		prefixes := o.Prefixes
		signedASes := map[uint32]bool{}
		if o.CDN != nil && o.CDN.SignsROAs {
			// The Internap-like exception: only a handful of prefixes,
			// tied to a few of its many ASes.
			if o.CDN.SignedPrefixes < len(prefixes) {
				prefixes = prefixes[:o.CDN.SignedPrefixes]
			}
		}
		for i, p := range prefixes {
			origin := w.originFor(o, p)
			if o.CDN != nil && o.CDN.SignsROAs {
				// Constrain to SignedASes distinct origins.
				origin = o.ASNs[i%o.CDN.SignedASes]
				w.prefixOrigin(p, origin) // pin the announcement
			}
			if agg, isSub := w.subOf[p]; isSub && !o.fixture && w.rnd.Float64() < 0.25 {
				// Forgotten more-specific: the aggregate's ROA exists
				// with maxLength == aggregate length, so this /20
				// announcement validates Invalid. Pin both origins to
				// match the real pattern (same operator, same AS).
				w.prefixOrigin(p, w.originFor(o, agg))
				w.Stats.ROAsMisconfigured++
				continue
			}
			misconfigured := o.CDN == nil && !o.fixture && w.rnd.Float64() < w.Cfg.MisconfigProb
			roaOrigin := origin
			if misconfigured {
				// Wrong origin in the ROA: the announcement turns
				// Invalid (the paper: misconfiguration, not hijacks).
				roaOrigin = origin + 100000
				w.Stats.ROAsMisconfigured++
			}
			if _, err := w.Repo.AddROA(ca, roaOrigin, []roa.Prefix{{Prefix: p, MaxLength: p.Bits()}}); err != nil {
				return err
			}
			w.Stats.ROAsIssued++
			w.Stats.PrefixesSigned++
			signedASes[roaOrigin] = true
			if !misconfigured && p.Addr().Is4() {
				if w.cleanSigned == nil {
					w.cleanSigned = make(map[*Org][]netip.Prefix)
				}
				w.cleanSigned[o] = append(w.cleanSigned[o], p)
			}
		}
		cas[o] = ca
	}
	return w.plantBackups(cas)
}

// plantBackups writes the §5.2 confidential standby setups into the
// RPKI: a signing organisation additionally authorises a partner
// organisation's AS on one of its prefixes. The arrangement never
// appears in BGP (the partner only announces during an incident), yet
// the RPKI documents it in advance — exactly the disclosure the paper
// argues deters deployment.
func (w *World) plantBackups(cas map[*Org]*repo.CA) error {
	if w.Cfg.BackupArrangements <= 0 {
		return nil
	}
	var signers []*Org
	for _, o := range w.Orgs {
		if o.SignsROAs && !o.fixture && o.CDN == nil && len(o.Prefixes) > 0 {
			signers = append(signers, o)
		}
	}
	// Partners are hosters and ISPs. CDNs are deliberately excluded:
	// the paper found no CDN anywhere in the RPKI (except the Internap
	// prefixes), and §5.2's point is precisely that such arrangements
	// WOULD be exposed if CDNs ever created them.
	var partners []*Org
	for _, o := range w.Orgs {
		if !o.fixture && len(o.ASNs) > 0 && (o.Kind == KindHoster || o.Kind == KindISP) {
			partners = append(partners, o)
		}
	}
	usedPrefix := make(map[netip.Prefix]bool)
	for i := 0; i < w.Cfg.BackupArrangements && len(signers) > 0; i++ {
		owner := signers[i%len(signers)]
		partner := partners[w.rnd.Intn(len(partners))]
		if partner == owner {
			continue
		}
		// The arrangement only documents a relation when the owner's own
		// (correct) ROA coexists with the standby's; pick from the
		// owner's cleanly signed prefixes.
		candidates := w.cleanSigned[owner]
		var prefix netip.Prefix
		ok := false
		for _, c := range candidates {
			if !usedPrefix[c] {
				prefix, ok = c, true
				break
			}
		}
		if !ok {
			continue
		}
		usedPrefix[prefix] = true
		standbyASN := partner.ASNs[w.rnd.Intn(len(partner.ASNs))]
		if _, err := w.Repo.AddROA(cas[owner], standbyASN, []roa.Prefix{{Prefix: prefix, MaxLength: prefix.Bits()}}); err != nil {
			return err
		}
		w.Stats.ROAsIssued++
		w.PlantedBackups = append(w.PlantedBackups, PlantedBackup{
			OwnerOrg:   owner.Name,
			StandbyOrg: partner.Name,
			Prefix:     prefix,
			StandbyASN: standbyASN,
		})
	}
	return nil
}

// certResources bounds a CA to its organisation's holdings.
func certResources(o *Org) cert.Resources {
	var res cert.Resources
	res.Prefixes = append(res.Prefixes, o.Prefixes...)
	// A ROA may authorise any AS number (the prefix owner decides), so
	// the CA carries the full AS range; prefix resources are what bound
	// mis-issuance.
	res.ASNs = append(res.ASNs, cert.ASRange{Min: 0, Max: 4294967295})
	return res
}

// --- BGP ---------------------------------------------------------------

// originFor returns (and pins) the origin AS announcing prefix p.
func (w *World) originFor(o *Org, p netip.Prefix) uint32 {
	if asn, ok := w.pinnedOrigin[p]; ok {
		return asn
	}
	asn := o.ASNs[w.rnd.Intn(len(o.ASNs))]
	w.prefixOrigin(p, asn)
	return asn
}

func (w *World) prefixOrigin(p netip.Prefix, asn uint32) {
	if w.pinnedOrigin == nil {
		w.pinnedOrigin = make(map[netip.Prefix]uint32)
	}
	w.pinnedOrigin[p] = asn
}

// announce inserts every organisation's prefixes into the collector RIB
// with realistic AS paths from three vantage peers.
func (w *World) announce() {
	peers := make([]uint16, 0, 3)
	for i := 0; i < 3 && i < len(w.orgs.transit); i++ {
		peers = append(peers, w.RIB.AddPeer(mrt.Peer{
			BGPID: netip.AddrFrom4([4]byte{10, 0, byte(i), 1}),
			Addr:  netip.AddrFrom4([4]byte{10, 0, byte(i), 1}),
			ASN:   w.orgs.transit[i],
		}))
	}
	for _, o := range w.Orgs {
		for _, p := range o.Prefixes {
			origin := w.originFor(o, p)
			for pi, peerIdx := range peers {
				path := w.path(w.orgs.transit[pi], origin)
				w.RIB.Insert(rib.Route{
					Prefix:     p,
					PeerIndex:  peerIdx,
					Path:       path,
					NextHop:    netip.AddrFrom4([4]byte{10, 0, byte(pi), 1}),
					Originated: w.Cfg.Clock,
				})
			}
		}
	}
}

// path builds [peer, (transit), origin].
func (w *World) path(peer, origin uint32) []bgp.Segment {
	asns := []uint32{peer}
	if w.rnd.Intn(2) == 0 && len(w.orgs.transit) > 3 {
		mid := w.orgs.transit[3+w.rnd.Intn(len(w.orgs.transit)-3)]
		if mid != peer && mid != origin {
			asns = append(asns, mid)
		}
	}
	asns = append(asns, origin)
	return []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: asns}}
}

// ReplayBGP re-announces the whole RIB over a live BGP session to the
// given collector address, one speaker per vantage peer. It is used by
// integration tests and examples to exercise the wire path end to end.
func (w *World) ReplayBGP(addr string) error {
	peers := w.RIB.Peers()
	speakers := make(map[uint16]*bgp.Speaker, len(peers))
	defer func() {
		for _, sp := range speakers {
			sp.Close()
		}
	}()
	var outer error
	w.RIB.WalkRoutes(func(r rib.Route) bool {
		sp := speakers[r.PeerIndex]
		if sp == nil {
			var err error
			p := peers[r.PeerIndex]
			sp, err = bgp.DialSpeaker(addr, p.ASN, p.BGPID)
			if err != nil {
				outer = err
				return false
			}
			speakers[r.PeerIndex] = sp
		}
		up := &bgp.Update{ASPath: r.Path}
		if r.Prefix.Addr().Is4() {
			up.NLRI = []netip.Prefix{r.Prefix}
			up.NextHop = r.NextHop
			if !up.NextHop.Is4() {
				up.NextHop = netip.AddrFrom4([4]byte{10, 99, 0, 1})
			}
		} else {
			nh := r.NextHop
			if !nh.Is6() || nh.Is4() {
				nh = netutil.MustAddr("2001:db8:ffff::1")
			}
			up.MPReach = &bgp.MPReach{NextHop: nh, NLRI: []netip.Prefix{r.Prefix}}
		}
		if err := sp.Send(up); err != nil {
			outer = err
			return false
		}
		return true
	})
	return outer
}
