package webworld

import (
	"net/netip"
	"testing"

	"ripki/internal/netutil"
)

func TestAllocatorV4Disjoint(t *testing.T) {
	a := newAllocator()
	seen := map[netip.Prefix]bool{}
	var all []netip.Prefix
	for _, rir := range a.rirNames() {
		for i := 0; i < 50; i++ {
			bits := 16 + 4*(i%3)
			p, err := a.nextV4(rir, bits)
			if err != nil {
				t.Fatalf("%s /%d: %v", rir, bits, err)
			}
			if p.Bits() != bits {
				t.Fatalf("allocated /%d, want /%d", p.Bits(), bits)
			}
			if seen[p] {
				t.Fatalf("duplicate allocation %v", p)
			}
			seen[p] = true
			all = append(all, p)
			if netutil.IsSpecialPurpose(p.Addr()) {
				t.Fatalf("allocated special-purpose space %v", p)
			}
		}
	}
	// No allocation may overlap another.
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if netutil.Covers(all[i], all[j]) || netutil.Covers(all[j], all[i]) {
				t.Fatalf("overlapping allocations %v and %v", all[i], all[j])
			}
		}
	}
}

func TestAllocatorV6(t *testing.T) {
	a := newAllocator()
	seen := map[netip.Prefix]bool{}
	for _, rir := range a.rirNames() {
		for i := 0; i < 30; i++ {
			p, err := a.nextV6(rir)
			if err != nil {
				t.Fatal(err)
			}
			if p.Bits() != 32 || !p.Addr().Is6() {
				t.Fatalf("bad v6 allocation %v", p)
			}
			if seen[p] {
				t.Fatalf("duplicate v6 allocation %v", p)
			}
			seen[p] = true
		}
	}
}

func TestAllocatorErrors(t *testing.T) {
	a := newAllocator()
	if _, err := a.nextV4("nosuch", 16); err == nil {
		t.Error("unknown RIR accepted")
	}
	if _, err := a.nextV4("ripe", 8); err == nil {
		t.Error("/8 allocation accepted")
	}
	if _, err := a.nextV4("ripe", 25); err == nil {
		t.Error("/25 allocation accepted")
	}
	if _, err := a.nextV6("nosuch"); err == nil {
		t.Error("unknown RIR v6 accepted")
	}
}

func TestHostAddrStaysInPrefix(t *testing.T) {
	ps := []netip.Prefix{
		netutil.MustPrefix("193.0.0.0/16"),
		netutil.MustPrefix("23.99.16.0/20"),
		netutil.MustPrefix("2a00:1000::/32"),
	}
	for _, p := range ps {
		for i := 1; i < 5000; i += 97 {
			a := hostAddr(p, i)
			if !p.Contains(a) {
				t.Fatalf("hostAddr(%v, %d) = %v escaped the prefix", p, i, a)
			}
			if a == p.Addr() && p.Addr().Is4() {
				t.Fatalf("hostAddr(%v, %d) returned the network address", p, i)
			}
		}
	}
}

func TestSubPrefix(t *testing.T) {
	p := netutil.MustPrefix("193.0.0.0/16")
	seen := map[netip.Prefix]bool{}
	for i := 0; i < 16; i++ {
		sp := subPrefix(p, 20, i)
		if sp.Bits() != 20 {
			t.Fatalf("subPrefix bits = %d", sp.Bits())
		}
		if !netutil.Covers(p, sp) {
			t.Fatalf("subPrefix %v escapes %v", sp, p)
		}
		seen[sp] = true
	}
	if len(seen) != 16 {
		t.Fatalf("only %d distinct /20s in a /16", len(seen))
	}
	// Index wraps modulo the sub-prefix count.
	if subPrefix(p, 20, 16) != subPrefix(p, 20, 0) {
		t.Error("index wrap wrong")
	}
}

func TestSubPrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("subPrefix with shorter target did not panic")
		}
	}()
	subPrefix(netutil.MustPrefix("10.0.0.0/16"), 12, 0)
}
