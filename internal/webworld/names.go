package webworld

import (
	"math/rand"
	"strconv"
)

// topSite is a fixture for a prominent domain whose hosting profile
// mirrors a row of the paper's Table 1 (or a named unsecured giant).
// Coverage counts are per variant: covered prefixes / total prefixes.
type topSite struct {
	rank  int
	name  string
	noWWW bool
	// cdn names the CDN serving the www variant ("" = none).
	cdn string
	// chainLen is the number of CNAMEs for the www variant when CDN
	// served (the paper's examples traverse 2).
	chainLen int

	wwwCovered, wwwTotal   int
	apexCovered, apexTotal int
}

// topSites mirrors the published Table 1 plus the "huge international
// players such as Google" remark (google.com: prominent and unsecured).
// The generator realises each row structurally: covered prefixes belong
// to ROA-signing organisations, uncovered ones to abstaining
// organisations, and CDN-served www variants traverse CNAME chains.
// Rows are in ascending rank order; sharded generation relies on that
// to rebuild fixtures sequentially.
func topSites() []topSite {
	return []topSite{
		{rank: 1, name: "google.com", cdn: "", wwwCovered: 0, wwwTotal: 4, apexCovered: 0, apexTotal: 4},
		{rank: 2, name: "facebook.com", cdn: "", wwwCovered: 3, wwwTotal: 3, apexCovered: 2, apexTotal: 2},
		{rank: 70, name: "cdncache1-a.akamaihd.net", noWWW: true, cdn: "akamai", chainLen: 2, apexCovered: 1, apexTotal: 3},
		{rank: 73, name: "huffingtonpost.com", cdn: "akamai", chainLen: 2, wwwCovered: 1, wwwTotal: 3, apexCovered: 0, apexTotal: 3},
		{rank: 92, name: "cnet.com", cdn: "akamai", chainLen: 2, wwwCovered: 1, wwwTotal: 3, apexCovered: 0, apexTotal: 2},
		{rank: 95, name: "dailymail.co.uk", cdn: "edgecast", chainLen: 2, wwwCovered: 1, wwwTotal: 3, apexCovered: 0, apexTotal: 1},
		{rank: 117, name: "indiatimes.com", cdn: "akamai", chainLen: 2, wwwCovered: 1, wwwTotal: 3, apexCovered: 0, apexTotal: 1},
		{rank: 120, name: "kickass.to", cdn: "cloudflare", chainLen: 2, wwwCovered: 1, wwwTotal: 10, apexCovered: 1, apexTotal: 10},
		{rank: 130, name: "booking.com", cdn: "", wwwCovered: 4, wwwTotal: 4, apexCovered: 2, apexTotal: 2},
	}
}

var nameSyllables = []string{
	"ba", "be", "bo", "ca", "ce", "co", "da", "di", "do", "fa", "fi", "ga",
	"go", "ha", "ka", "ki", "la", "le", "lo", "ma", "me", "mi", "mo", "na",
	"ne", "no", "pa", "pe", "po", "ra", "re", "ro", "sa", "se", "so", "ta",
	"te", "to", "va", "vi", "wa", "wo", "ya", "za", "zu",
}

var tlds = []string{
	".com", ".com", ".com", ".com", ".net", ".org", ".de", ".ru", ".co.uk",
	".info", ".fr", ".it", ".nl", ".pl", ".br", ".jp", ".in", ".io",
}

// appendDomain appends a pronounceable unique domain for the given rank
// to dst and returns the extended slice. Uniqueness comes from embedding
// the rank in the syllable choice, with random decoration; the
// allocation-free shape lets shards build a million names straight into
// their string-table slabs.
func appendDomain(dst []byte, rnd *rand.Rand, rank int) []byte {
	n := rank
	for i := 0; i < 3; i++ {
		dst = append(dst, nameSyllables[n%len(nameSyllables)]...)
		n /= len(nameSyllables)
	}
	if n > 0 {
		dst = strconv.AppendInt(dst, int64(n), 10)
	}
	if rnd.Intn(4) == 0 {
		dst = append(dst, nameSyllables[rnd.Intn(len(nameSyllables))]...)
	}
	return append(dst, tlds[rnd.Intn(len(tlds))]...)
}
