package webworld

// Sharded generation needs one independent, cheaply re-seedable random
// stream per domain: shard boundaries then cannot influence the draws,
// and the output is byte-identical at any shard count. math/rand's
// default source is far too expensive to seed per domain (it fills a
// 607-word feedback table), so each shard owns a splitmix64 source and
// re-seeds it with the (seed, rank)-derived stream key before building
// a domain — the same derivation trick internal/sweep uses for
// per-run seeds.

// sm64 is a splitmix64 rand.Source64. Seeding is one word write, which
// is what makes a fresh stream per domain affordable.
type sm64 struct{ x uint64 }

func (s *sm64) Seed(seed int64) { s.x = uint64(seed) }

func (s *sm64) Uint64() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *sm64) Int63() int64 { return int64(s.Uint64() >> 1) }

// domainSeed derives the stream key for one ranked domain. The
// splitmix64 finalizer decorrelates adjacent ranks, so neighbouring
// domains share no draw structure. The additive salt is part of the
// generator's paper calibration: like the probability constants in
// Config, it is chosen so the emergent world keeps the paper's
// measured shape — in particular that generated head-rank domains
// don't crowd the calibrated Table 1 fixtures out of the top-10
// covered set (pinned by internal/measure's TestPaperFindingsEmerge).
func domainSeed(seed int64, rank int) int64 {
	z := uint64(seed) + 0x9e3779b9 + uint64(rank)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
