package webworld

import (
	"reflect"
	"strings"
	"testing"

	"ripki/internal/dns"
)

func TestScenarioAccessors(t *testing.T) {
	w, err := Generate(Config{Seed: 11, Domains: 3000})
	if err != nil {
		t.Fatal(err)
	}

	cdns := w.CDNOrgs()
	if len(cdns) != len(DefaultCDNs()) {
		t.Fatalf("CDNOrgs = %d, want %d", len(cdns), len(DefaultCDNs()))
	}
	if org := w.CDNOrg("akamai"); org == nil || org.CDN.Name != "akamai" {
		t.Fatalf("CDNOrg(akamai) = %v", org)
	}
	if org := w.CDNOrg("no-such-cdn"); org != nil {
		t.Errorf("CDNOrg on unknown name = %v, want nil", org)
	}

	prefixes := w.RoutedV4Prefixes()
	if len(prefixes) == 0 {
		t.Fatal("no routed v4 prefixes")
	}
	// Deterministic order and every prefix announced with a pinned origin.
	if again := w.RoutedV4Prefixes(); !reflect.DeepEqual(prefixes, again) {
		t.Error("RoutedV4Prefixes order not deterministic")
	}
	for _, p := range prefixes[:10] {
		if _, ok := w.PinnedOriginOf(p); !ok {
			t.Errorf("prefix %v has no pinned origin", p)
		}
		if !p.Contains(HostAddr(p, 42)) {
			t.Errorf("HostAddr(%v) escaped the prefix", p)
		}
	}

	hosts := w.CacheHosts("akamai")
	if len(hosts) == 0 {
		t.Fatal("akamai has no cache hosts")
	}
	suffixes := w.CDNSuffixes["akamai"]
	for _, h := range hosts[:5] {
		matched := false
		for _, suf := range suffixes {
			if strings.HasSuffix(h, "."+dns.CanonicalName(suf)) {
				matched = true
			}
		}
		if !matched {
			t.Errorf("cache host %q not under any akamai suffix %v", h, suffixes)
		}
		if len(w.Registry.Lookup(h, dns.TypeA)) == 0 {
			t.Errorf("cache host %q has no A record", h)
		}
	}
	if w.CacheHosts("no-such-cdn") != nil {
		t.Error("CacheHosts on unknown CDN should be nil")
	}
}
