package webworld

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"runtime"
	"strings"
	"sync"

	"ripki/internal/alexa"
	"ripki/internal/dns"
	"ripki/internal/strtab"
)

// cachePoolEntry is one CDN delivery hostname: the terminal name of
// customer CNAME chains, carrying the cache addresses.
type cachePoolEntry struct {
	host  string
	addrs []netip.Addr
}

// buildCachePools provisions each CDN's delivery hostnames. A fraction
// of cache addresses live in third-party eyeball ISP networks; those
// inherit whatever RPKI coverage the ISP created — the §4.2 finding
// "every RPKI-enabled CDN-content is served by a third party network".
func (w *World) buildCachePools() map[string][]cachePoolEntry {
	pools := make(map[string][]cachePoolEntry, len(w.orgs.cdns))
	size := clamp(w.Cfg.Domains/500, 40, 2000)
	for _, cdnOrg := range w.orgs.cdns {
		spec := cdnOrg.CDN
		entries := make([]cachePoolEntry, 0, size)
		for i := 0; i < size; i++ {
			suffix := spec.ServiceSuffixes[w.rnd.Intn(len(spec.ServiceSuffixes))]
			e := cachePoolEntry{host: fmt.Sprintf("e%05d.%c.%s", i, 'a'+rune(w.rnd.Intn(4)), suffix)}
			nAddr := 1 + w.rnd.Intn(2)
			for j := 0; j < nAddr; j++ {
				var p netip.Prefix
				if w.rnd.Float64() < w.Cfg.ThirdPartyCacheShare {
					isp := w.orgs.isps[w.rnd.Intn(len(w.orgs.isps))]
					p = w.v4PrefixOf(w.rnd, isp)
					w.Stats.CacheInThirdParty++
				} else {
					p = w.v4PrefixOf(w.rnd, cdnOrg)
					w.Stats.CacheInCDNNetwork++
				}
				e.addrs = append(e.addrs, hostAddr(p, 1+w.rnd.Intn(4000)))
			}
			for _, a := range e.addrs {
				w.Registry.Add(dns.RR{Name: e.host, Type: dns.TypeA, TTL: 20, Addr: a})
			}
			if v6 := w.v6PrefixOf(cdnOrg); v6.IsValid() && w.rnd.Float64() < 0.3 {
				a6 := hostAddr(v6, 1+w.rnd.Intn(4000))
				w.Registry.Add(dns.RR{Name: e.host, Type: dns.TypeAAAA, TTL: 20, Addr: a6})
			}
			entries = append(entries, e)
		}
		pools[spec.Name] = entries
	}
	return pools
}

// v4PrefixOf picks a random IPv4 prefix of the organisation, drawing
// from the caller's stream (shards and fixtures each own one).
func (w *World) v4PrefixOf(rnd *rand.Rand, o *Org) netip.Prefix {
	for tries := 0; tries < 8; tries++ {
		p := o.Prefixes[rnd.Intn(len(o.Prefixes))]
		if p.Addr().Is4() {
			return p
		}
	}
	for _, p := range o.Prefixes {
		if p.Addr().Is4() {
			return p
		}
	}
	panic("webworld: organisation " + o.Name + " has no IPv4 prefix")
}

// v6PrefixOf returns an IPv6 prefix of the organisation, if any.
func (w *World) v6PrefixOf(o *Org) netip.Prefix {
	for _, p := range o.Prefixes {
		if p.Addr().Is6() {
			return p
		}
	}
	return netip.Prefix{}
}

// cdnShare interpolates CDN adoption between the top and tail anchors
// as a convex curve in log10(rank): adoption stays high through the
// prominent ranks and falls away in the long tail, matching Figure 3's
// measured profile.
func (w *World) cdnShare(rank int) float64 {
	n := float64(w.Cfg.Domains)
	if n <= 1 {
		return w.Cfg.CDNShareTop
	}
	t := math.Log10(float64(rank)) / math.Log10(n)
	t = math.Pow(t, 2.5)
	return w.Cfg.CDNShareTop + (w.Cfg.CDNShareTail-w.Cfg.CDNShareTop)*t
}

// merge folds another shard's tallies in; addition commutes, so the
// result is shard-count independent.
func (s *Stats) merge(o Stats) {
	s.PrefixesTotal += o.PrefixesTotal
	s.PrefixesSigned += o.PrefixesSigned
	s.ROAsIssued += o.ROAsIssued
	s.ROAsMisconfigured += o.ROAsMisconfigured
	s.DomainsCDN += o.DomainsCDN
	s.DomainsBogusDNS += o.DomainsBogusDNS
	s.DomainsDNSSEC += o.DomainsDNSSEC
	s.AddrsUnreachable += o.AddrsUnreachable
	s.CacheInThirdParty += o.CacheInThirdParty
	s.CacheInCDNNetwork += o.CacheInCDNNetwork
}

// domainBuilder accumulates one shard's per-domain output: DNS records
// and stat tallies go into private buffers, replayed into the shared
// world in rank order after all shards finish. The rnd stream is
// re-seeded per domain from (Seed, rank), which is the whole
// determinism argument: no draw ever depends on which shard made it.
type domainBuilder struct {
	w     *World
	rnd   *rand.Rand
	names *strtab.Table
	recs  []dns.RR
	stats Stats
}

func (b *domainBuilder) add(rr dns.RR) { b.recs = append(b.recs, rr) }

func (b *domainBuilder) addCNAME(name, target string, ttl uint32) {
	b.recs = append(b.recs, dns.RR{Name: name, Type: dns.TypeCNAME, TTL: ttl, Target: target})
}

// buildDomains creates the ranked population and all web DNS records.
// The per-domain phase is sharded: the ranked list is split into
// contiguous ranges, each built concurrently into a private buffer.
// Fixtures are order-coupled (they share a rotating covered-prefix
// counter), so they are rebuilt sequentially afterwards.
func (w *World) buildDomains() error {
	pools := w.buildCachePools()

	fixtures := make(map[int]topSite)
	var fixtureList []topSite // ascending rank, as topSites guarantees
	for _, ts := range topSites() {
		if ts.rank <= w.Cfg.Domains {
			fixtures[ts.rank] = ts
			fixtureList = append(fixtureList, ts)
		}
	}

	n := w.Cfg.Domains
	shards := w.Cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}

	names := make([]string, n)
	builders := make([]*domainBuilder, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := n*s/shards, n*(s+1)/shards
		b := &domainBuilder{
			w:     w,
			rnd:   rand.New(new(sm64)),
			names: strtab.NewSized(hi-lo, (hi-lo)*13),
			recs:  make([]dns.RR, 0, (hi-lo)*7/2),
		}
		builders[s] = b
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []byte
			for i := lo; i < hi; i++ {
				rank := i + 1
				if ts, ok := fixtures[rank]; ok {
					names[i] = ts.name
					continue
				}
				b.rnd.Seed(domainSeed(w.Cfg.Seed, rank))
				scratch = appendDomain(scratch[:0], b.rnd, rank)
				names[i] = b.names.Get(b.names.Append(scratch))
				b.buildRegularDomain(rank, names[i], pools)
			}
		}()
	}
	wg.Wait()

	w.List = alexa.FromDomains(names)
	for _, b := range builders {
		w.Registry.AddBatch(b.recs)
		w.Stats.merge(b.stats)
	}

	// Fixture streams are also rank-derived, so their draws (covered vs
	// CDN prefix picks) are shard-count independent too.
	frnd := rand.New(new(sm64))
	fixISPNext := 0
	for _, ts := range fixtureList {
		frnd.Seed(domainSeed(w.Cfg.Seed, ts.rank))
		if err := w.buildFixture(frnd, ts, &fixISPNext); err != nil {
			return err
		}
	}
	return nil
}

// maybeSignZone adds a DNSKEY at the zone apex with the configured
// TLD-dependent probability — the DNSSEC-adoption signal the paper's
// future work compares against RPKI. Zone signing is operationally
// independent of routing security, so the two deployments are
// uncorrelated here by construction.
func (b *domainBuilder) maybeSignZone(domain string) {
	cfg := &b.w.Cfg
	p := cfg.DNSSECBaseProb
	for tld, boost := range cfg.DNSSECTLDBoost {
		if strings.HasSuffix(domain, tld) {
			p = boost
			break
		}
	}
	if b.rnd.Float64() >= p {
		return
	}
	b.stats.DomainsDNSSEC++
	key := make([]byte, 32)
	b.rnd.Read(key)
	b.add(dns.RR{
		Name: domain, Type: dns.TypeDNSKEY, TTL: 3600,
		DNSKEY: &dns.DNSKEYData{Flags: 257, Protocol: 3, Algorithm: 8, PublicKey: key},
	})
}

// pickCDN selects a CDN by spec weight.
func (b *domainBuilder) pickCDN() *Org {
	cdns := b.w.orgs.cdns
	total := 0.0
	for _, o := range cdns {
		total += o.CDN.Weight
	}
	x := b.rnd.Float64() * total
	for _, o := range cdns {
		x -= o.CDN.Weight
		if x <= 0 {
			return o
		}
	}
	return cdns[len(cdns)-1]
}

// maybeUnreachable swaps an address for one in allocated-but-unannounced
// space with the configured probability (paper: 0.01% of addresses are
// not visible from the BGP vantage points).
func (b *domainBuilder) maybeUnreachable(a netip.Addr) netip.Addr {
	w := b.w
	if b.rnd.Float64() >= w.Cfg.UnreachableProb || len(w.orgs.unrouted) == 0 {
		return a
	}
	b.stats.AddrsUnreachable++
	p := w.orgs.unrouted[b.rnd.Intn(len(w.orgs.unrouted))]
	return hostAddr(p, 1+b.rnd.Intn(4000))
}

// buildRegularDomain provisions one generated domain. All reads of
// shared world state (orgs, config) are immutable by this phase; all
// writes land in the builder.
func (b *domainBuilder) buildRegularDomain(rank int, domain string, pools map[string][]cachePoolEntry) {
	w := b.w
	www := "www." + domain
	b.maybeSignZone(domain)

	// A small fraction of domains answer only with special-purpose
	// addresses; the pipeline must exclude them (paper: 0.07%).
	if b.rnd.Float64() < w.Cfg.BogusDNSProb {
		b.stats.DomainsBogusDNS++
		bogus := netip.AddrFrom4([4]byte{127, 0, 0, byte(1 + b.rnd.Intn(200))})
		if b.rnd.Intn(2) == 0 {
			bogus = netip.AddrFrom4([4]byte{10, byte(b.rnd.Intn(256)), byte(b.rnd.Intn(256)), 5})
		}
		b.add(dns.RR{Name: domain, Type: dns.TypeA, TTL: 300, Addr: bogus})
		b.add(dns.RR{Name: www, Type: dns.TypeA, TTL: 300, Addr: bogus})
		return
	}

	if b.rnd.Float64() < w.cdnShare(rank) {
		b.stats.DomainsCDN++
		b.buildCDNDomain(domain, pools)
		return
	}

	// Origin hosting: servers at a webhoster (or eyeball ISP for the
	// long tail of self-hosted sites).
	org := w.orgs.hosters[b.rnd.Intn(len(w.orgs.hosters))]
	if b.rnd.Float64() < 0.12 {
		org = w.orgs.isps[b.rnd.Intn(len(w.orgs.isps))]
	}
	prefixes := []netip.Prefix{w.v4PrefixOf(b.rnd, org)}
	if rank <= 10000 && b.rnd.Float64() < w.Cfg.MultiPrefixTopShare {
		// Prominent sites spread across prefixes — sometimes across a
		// second organisation, which mixes RPKI postures (Table 1's
		// partial coverage).
		extra := 1 + b.rnd.Intn(2)
		for i := 0; i < extra; i++ {
			o2 := org
			if b.rnd.Intn(2) == 0 {
				o2 = w.orgs.hosters[b.rnd.Intn(len(w.orgs.hosters))]
			}
			prefixes = append(prefixes, w.v4PrefixOf(b.rnd, o2))
		}
	}
	var addrs []netip.Addr
	for _, p := range prefixes {
		addrs = append(addrs, b.maybeUnreachable(hostAddr(p, 1+b.rnd.Intn(60000))))
	}
	for _, a := range addrs {
		b.add(dns.RR{Name: domain, Type: dns.TypeA, TTL: 300, Addr: a})
	}
	if v6 := w.v6PrefixOf(org); v6.IsValid() && b.rnd.Float64() < 0.15 {
		a6 := hostAddr(v6, 1+b.rnd.Intn(60000))
		b.add(dns.RR{Name: domain, Type: dns.TypeAAAA, TTL: 300, Addr: a6})
	}
	switch {
	case b.rnd.Float64() < 0.3:
		// www as an alias of the apex (one indirection — still below
		// the paper's two-CNAME CDN threshold).
		b.addCNAME(www, domain, 300)
	case b.rnd.Float64() < 0.04:
		// Separate www infrastructure: some operators serve the two
		// names from different networks entirely, one of Figure 1's
		// sources of www/apex prefix divergence.
		o2 := w.orgs.hosters[b.rnd.Intn(len(w.orgs.hosters))]
		a := b.maybeUnreachable(hostAddr(w.v4PrefixOf(b.rnd, o2), 1+b.rnd.Intn(60000)))
		b.add(dns.RR{Name: www, Type: dns.TypeA, TTL: 300, Addr: a})
	default:
		for _, a := range addrs {
			b.add(dns.RR{Name: www, Type: dns.TypeA, TTL: 300, Addr: a})
		}
	}
}

// buildCDNDomain provisions a CDN-served domain: the www variant rides
// a CNAME chain into the CDN, the apex stays at an origin host because
// apex names cannot be CNAMEs (RFC 1034) — except for single-CNAME
// anycast CDNs that front the apex with their own addresses.
func (b *domainBuilder) buildCDNDomain(domain string, pools map[string][]cachePoolEntry) {
	w := b.w
	www := "www." + domain
	cdnOrg := b.pickCDN()
	spec := cdnOrg.CDN
	pool := pools[spec.Name]
	entry := pool[b.rnd.Intn(len(pool))]

	single := b.rnd.Float64() < w.Cfg.SingleCNAMEShare
	if single {
		// www.domain → cache host (one CNAME; the indirection-counting
		// heuristic misses it, pattern matching does not).
		b.addCNAME(www, entry.host, 300)
	} else {
		// www.domain → customer edge name → cache host (two CNAMEs,
		// like www.huffingtonpost.com → ...edgesuite.net → a495.g...).
		suffix := spec.ServiceSuffixes[0]
		edge := www + "." + suffix
		b.addCNAME(www, edge, 300)
		b.addCNAME(edge, entry.host, 300)
	}

	if single && b.rnd.Float64() < 0.6 {
		// Anycast CDN fronts the apex too: same cache addresses.
		for _, a := range entry.addrs {
			b.add(dns.RR{Name: domain, Type: dns.TypeA, TTL: 300, Addr: a})
		}
		return
	}
	// Apex at the origin host.
	org := w.orgs.hosters[b.rnd.Intn(len(w.orgs.hosters))]
	a := b.maybeUnreachable(hostAddr(w.v4PrefixOf(b.rnd, org), 1+b.rnd.Intn(60000)))
	b.add(dns.RR{Name: domain, Type: dns.TypeA, TTL: 300, Addr: a})
}

// buildFixture realises one Table 1 row structurally, drawing from the
// fixture's own rank-derived stream.
func (w *World) buildFixture(rnd *rand.Rand, ts topSite, fixISPNext *int) error {
	www := "www." + ts.name
	coveredPrefix := func() netip.Prefix {
		p := w.orgs.fixISP.Prefixes[*fixISPNext%len(w.orgs.fixISP.Prefixes)]
		*fixISPNext++
		return p
	}
	if ts.cdn == "" {
		// Enterprise hosting from the site's own organisation.
		org := w.orgs.fixOrgs[ts.name]
		if org == nil {
			return fmt.Errorf("webworld: missing fixture org for %s", ts.name)
		}
		for i := 0; i < ts.wwwTotal; i++ {
			a := hostAddr(org.Prefixes[i%len(org.Prefixes)], 10+i)
			w.Registry.Add(dns.RR{Name: www, Type: dns.TypeA, TTL: 300, Addr: a})
		}
		for i := 0; i < ts.apexTotal; i++ {
			a := hostAddr(org.Prefixes[i%len(org.Prefixes)], 30+i)
			w.Registry.Add(dns.RR{Name: ts.name, Type: dns.TypeA, TTL: 300, Addr: a})
		}
		return nil
	}

	// CDN-served fixture.
	var cdnOrg *Org
	for _, o := range w.orgs.cdns {
		if o.CDN.Name == ts.cdn {
			cdnOrg = o
			break
		}
	}
	if cdnOrg == nil {
		return fmt.Errorf("webworld: fixture %s references unknown CDN %q", ts.name, ts.cdn)
	}
	suffix := cdnOrg.CDN.ServiceSuffixes[0]

	if ts.name == "kickass.to" {
		// Anycast single-CNAME CDN fronting both variants with ten
		// prefixes, exactly one RPKI-covered (Table 1: 1/10 and 1/10).
		cache := "ka." + suffix
		used := map[netip.Prefix]bool{}
		var addrs []netip.Addr
		addrs = append(addrs, hostAddr(coveredPrefix(), 42))
		for len(addrs) < ts.wwwTotal {
			p := w.v4PrefixOf(rnd, cdnOrg)
			if used[p] {
				continue
			}
			used[p] = true
			addrs = append(addrs, hostAddr(p, 42))
		}
		for _, a := range addrs {
			w.Registry.Add(dns.RR{Name: cache, Type: dns.TypeA, TTL: 30, Addr: a})
			w.Registry.Add(dns.RR{Name: ts.name, Type: dns.TypeA, TTL: 300, Addr: a})
		}
		w.Registry.AddCNAME(www, cache, 300)
		return nil
	}

	if !ts.noWWW {
		// www: chain into a dedicated cache host whose addresses mix
		// one covered third-party prefix with uncovered CDN prefixes.
		cache := fmt.Sprintf("fx-%s.a.%s", dns.CanonicalName(ts.name), suffix)
		var addrs []netip.Addr
		for i := 0; i < ts.wwwCovered; i++ {
			addrs = append(addrs, hostAddr(coveredPrefix(), 50+i))
		}
		used := map[netip.Prefix]bool{}
		for len(addrs) < ts.wwwTotal {
			p := w.v4PrefixOf(rnd, cdnOrg)
			if used[p] {
				continue
			}
			used[p] = true
			addrs = append(addrs, hostAddr(p, 60))
		}
		for _, a := range addrs {
			w.Registry.Add(dns.RR{Name: cache, Type: dns.TypeA, TTL: 30, Addr: a})
		}
		edge := www + "." + suffix
		w.Registry.AddCNAME(www, edge, 300)
		w.Registry.AddCNAME(edge, cache, 300)
	}

	// Apex (or the bare cache-domain for the noWWW fixture): covered
	// prefixes from the signing ISP, uncovered from the legacy hoster
	// (or the CDN itself for the akamaihd-style cache domain).
	var apexAddrs []netip.Addr
	for i := 0; i < ts.apexCovered; i++ {
		apexAddrs = append(apexAddrs, hostAddr(coveredPrefix(), 70+i))
	}
	for i := len(apexAddrs); i < ts.apexTotal; i++ {
		var p netip.Prefix
		if ts.noWWW {
			p = w.v4PrefixOf(rnd, cdnOrg)
		} else {
			p = w.orgs.fixLegacy.Prefixes[(ts.rank+i)%len(w.orgs.fixLegacy.Prefixes)]
		}
		apexAddrs = append(apexAddrs, hostAddr(p, 80+i))
	}
	for _, a := range apexAddrs {
		w.Registry.Add(dns.RR{Name: ts.name, Type: dns.TypeA, TTL: 300, Addr: a})
	}
	return nil
}
