package webworld

import (
	"testing"

	"ripki/internal/dns"
)

func TestSnapshotCloneIsolatesRegistry(t *testing.T) {
	w, err := Generate(Config{Seed: 11, Domains: 1500})
	if err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot()
	a, b := snap.Clone(), snap.Clone()
	if a == b || a.Registry == b.Registry || a.Registry == w.Registry {
		t.Fatal("clones share a registry")
	}
	// Immutable layers are shared, not copied.
	if a.RIB != w.RIB || a.Repo != w.Repo || a.List != w.List {
		t.Error("immutable layers were copied")
	}

	name := w.Registry.Names()[0]
	before := len(w.Registry.Lookup(name, dns.TypeA)) + len(w.Registry.Lookup(name, dns.TypeCNAME))
	a.Registry.Remove(name, dns.TypeA)
	a.Registry.Remove(name, dns.TypeCNAME)
	after := len(w.Registry.Lookup(name, dns.TypeA)) + len(w.Registry.Lookup(name, dns.TypeCNAME))
	if before != after {
		t.Error("mutating a clone's registry reached the snapshot")
	}
	if got := len(b.Registry.Lookup(name, dns.TypeA)) + len(b.Registry.Lookup(name, dns.TypeCNAME)); got != before {
		t.Error("mutating one clone reached a sibling clone")
	}
}

func TestValidationMemoized(t *testing.T) {
	w, err := Generate(Config{Seed: 11, Domains: 1500})
	if err != nil {
		t.Fatal(err)
	}
	first := w.Validation()
	if first.VRPs.Len() == 0 {
		t.Fatal("no VRPs validated")
	}
	if again := w.Validation(); again != first {
		t.Error("Validation not memoized on the world")
	}
	if clone := w.Snapshot().Clone(); clone.Validation() != first {
		t.Error("clone does not share the memoized validation")
	}
	// The memo agrees with a direct validation.
	direct := w.Repo.Validate(w.MeasureTime())
	if direct.VRPs.Len() != first.VRPs.Len() {
		t.Errorf("memoized VRPs %d != direct %d", first.VRPs.Len(), direct.VRPs.Len())
	}
}
