package webworld

import (
	"math"
	"net/netip"
	"strings"
	"testing"

	"ripki/internal/dns"
	"ripki/internal/netutil"
	"ripki/internal/rpki/vrp"
)

// smallWorld generates a modest world once per test binary.
var smallWorldCache *World

func smallWorld(t *testing.T) *World {
	t.Helper()
	if smallWorldCache != nil {
		return smallWorldCache
	}
	w, err := Generate(Config{Seed: 1, Domains: 30000})
	if err != nil {
		t.Fatal(err)
	}
	smallWorldCache = w
	return w
}

func TestGenerateDeterministic(t *testing.T) {
	w1, err := Generate(Config{Seed: 7, Domains: 2000})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(Config{Seed: 7, Domains: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if w1.List.Len() != w2.List.Len() {
		t.Fatal("list lengths differ")
	}
	for i, e := range w1.List.Entries() {
		if w2.List.Entries()[i].Domain != e.Domain {
			t.Fatalf("rank %d: %q vs %q", e.Rank, e.Domain, w2.List.Entries()[i].Domain)
		}
	}
	if w1.RIB.Len() != w2.RIB.Len() || w1.Registry.Len() != w2.Registry.Len() {
		t.Error("infrastructure differs between identical seeds")
	}
	if w1.Stats != w2.Stats {
		t.Errorf("stats differ: %+v vs %+v", w1.Stats, w2.Stats)
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	w1, _ := Generate(Config{Seed: 1, Domains: 1000})
	w2, _ := Generate(Config{Seed: 2, Domains: 1000})
	same := 0
	for i := range w1.List.Entries() {
		if w1.List.Entries()[i].Domain == w2.List.Entries()[i].Domain {
			same++
		}
	}
	// Fixtures coincide; generated names should mostly differ.
	if same > w1.List.Len()/2 {
		t.Errorf("%d of %d domains identical across seeds", same, w1.List.Len())
	}
}

func TestRPKIRepositoryValidates(t *testing.T) {
	w := smallWorld(t)
	res := w.Repo.Validate(w.MeasureTime())
	if len(res.Problems) != 0 {
		t.Fatalf("validation problems: %v", res.Problems[:min(5, len(res.Problems))])
	}
	if res.ROAsValid != res.ROAsSeen || res.ROAsSeen == 0 {
		t.Fatalf("ROAs seen/valid = %d/%d", res.ROAsSeen, res.ROAsValid)
	}
	if res.VRPs.Len() == 0 {
		t.Fatal("no VRPs")
	}
	if w.Stats.ROAsIssued != res.ROAsSeen {
		t.Errorf("issued %d ROAs, validator saw %d", w.Stats.ROAsIssued, res.ROAsSeen)
	}
}

func TestCDNASRegistryShape(t *testing.T) {
	w := smallWorld(t)
	// §4.2: keyword spotting over the AS registry must find 199 CDN
	// ASes for the default roster.
	cdnASes := 0
	internapASes := 0
	for _, info := range w.ASRegistry {
		for _, spec := range w.Cfg.CDNs {
			if strings.Contains(info.Name, strings.ToUpper(spec.Name)) {
				cdnASes++
				if spec.Name == "internap" {
					internapASes++
				}
				break
			}
		}
	}
	if cdnASes != 199 {
		t.Errorf("CDN ASes = %d, want 199", cdnASes)
	}
	if internapASes != 41 {
		t.Errorf("internap ASes = %d, want 41", internapASes)
	}
}

func TestInternapExceptionInVRPs(t *testing.T) {
	w := smallWorld(t)
	res := w.Repo.Validate(w.MeasureTime())
	var internap *Org
	for _, o := range w.Orgs {
		if o.CDN != nil && o.CDN.Name == "internap" {
			internap = o
		}
	}
	if internap == nil {
		t.Fatal("no internap org")
	}
	asnSet := make(map[uint32]bool)
	for _, asn := range internap.ASNs {
		asnSet[asn] = true
	}
	prefixes := make(map[netip.Prefix]bool)
	origins := make(map[uint32]bool)
	for _, v := range res.VRPs.All() {
		if asnSet[v.ASN] {
			prefixes[v.Prefix] = true
			origins[v.ASN] = true
		}
	}
	if len(prefixes) != 4 {
		t.Errorf("internap RPKI prefixes = %d, want 4", len(prefixes))
	}
	if len(origins) != 3 {
		t.Errorf("internap origin ASes = %d, want 3", len(origins))
	}
	// No other CDN appears in the RPKI.
	for _, o := range w.Orgs {
		if o.Kind != KindCDN || o == internap {
			continue
		}
		for _, asn := range o.ASNs {
			if res.VRPs.HasASN(asn) {
				t.Errorf("CDN %s AS%d appears in the RPKI", o.Name, asn)
			}
		}
	}
}

func TestFixtureFacebookFullCoverage(t *testing.T) {
	w := smallWorld(t)
	res := w.Repo.Validate(w.MeasureTime())
	check := func(name string, wantAddrs int, wantValid int) {
		t.Helper()
		r, err := dns.RegistryResolver{Registry: w.Registry}.LookupWeb(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Addrs) != wantAddrs {
			t.Fatalf("%s resolved to %d addresses, want %d", name, len(r.Addrs), wantAddrs)
		}
		valid := 0
		for _, a := range r.Addrs {
			for _, po := range w.RIB.OriginPairs(a) {
				if res.VRPs.Validate(po.Prefix, po.Origin) == vrp.Valid {
					valid++
				}
			}
		}
		if valid != wantValid {
			t.Errorf("%s: %d valid pairs, want %d", name, valid, wantValid)
		}
	}
	check("www.facebook.com", 3, 3)
	check("facebook.com", 2, 2)
	check("www.google.com", 4, 0)
	check("google.com", 4, 0)
	check("www.booking.com", 4, 4)
	check("booking.com", 2, 2)
}

func TestFixtureCDNPartialCoverage(t *testing.T) {
	w := smallWorld(t)
	res := w.Repo.Validate(w.MeasureTime())
	r, err := dns.RegistryResolver{Registry: w.Registry}.LookupWeb("www.huffingtonpost.com")
	if err != nil {
		t.Fatal(err)
	}
	if r.CNAMECount() != 2 {
		t.Errorf("www.huffingtonpost.com CNAMEs = %d, want 2", r.CNAMECount())
	}
	if len(r.Addrs) != 3 {
		t.Fatalf("www.huffingtonpost.com addrs = %d, want 3", len(r.Addrs))
	}
	covered := 0
	for _, a := range r.Addrs {
		for _, po := range w.RIB.OriginPairs(a) {
			if res.VRPs.Validate(po.Prefix, po.Origin) != vrp.NotFound {
				covered++
			}
		}
	}
	if covered != 1 {
		t.Errorf("www.huffingtonpost.com covered pairs = %d, want 1", covered)
	}
	// Apex: no CNAMEs, no coverage.
	r, err = dns.RegistryResolver{Registry: w.Registry}.LookupWeb("huffingtonpost.com")
	if err != nil {
		t.Fatal(err)
	}
	if r.CNAMECount() != 0 {
		t.Errorf("apex CNAMEs = %d", r.CNAMECount())
	}
	covered = 0
	for _, a := range r.Addrs {
		for _, po := range w.RIB.OriginPairs(a) {
			if res.VRPs.Validate(po.Prefix, po.Origin) != vrp.NotFound {
				covered++
			}
		}
	}
	if covered != 0 {
		t.Errorf("apex covered pairs = %d, want 0", covered)
	}
	// The noWWW fixture really has no www.
	r, _ = dns.RegistryResolver{Registry: w.Registry}.LookupWeb("www.cdncache1-a.akamaihd.net")
	if !r.NXDomain {
		t.Error("www.cdncache1-a.akamaihd.net exists")
	}
}

func TestCDNShareDecreasesWithRank(t *testing.T) {
	w := smallWorld(t)
	if w.cdnShare(1) < w.cdnShare(w.Cfg.Domains) {
		t.Error("CDN share not decreasing")
	}
	if math.Abs(w.cdnShare(1)-w.Cfg.CDNShareTop) > 0.01 {
		t.Errorf("top share = %v", w.cdnShare(1))
	}
	if math.Abs(w.cdnShare(w.Cfg.Domains)-w.Cfg.CDNShareTail) > 0.01 {
		t.Errorf("tail share = %v", w.cdnShare(w.Cfg.Domains))
	}
}

func TestMostResolvedAddressesAreRouted(t *testing.T) {
	w := smallWorld(t)
	resolver := dns.RegistryResolver{Registry: w.Registry}
	routed, unrouted, special := 0, 0, 0
	for _, e := range w.List.Top(2000).Entries() {
		for _, name := range []string{e.Domain, "www." + e.Domain} {
			r, err := resolver.LookupWeb(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range r.Addrs {
				switch {
				case netutil.IsSpecialPurpose(a):
					special++
				case w.RIB.Reachable(a):
					routed++
				default:
					unrouted++
				}
			}
		}
	}
	if routed == 0 {
		t.Fatal("no routed addresses at all")
	}
	if frac := float64(unrouted) / float64(routed+unrouted); frac > 0.01 {
		t.Errorf("unrouted fraction = %v, want < 1%%", frac)
	}
}

func TestSignedPrefixShareNearPolicy(t *testing.T) {
	w := smallWorld(t)
	// Only count non-fixture hoster/ISP organisations.
	signed, total := 0, 0
	for _, o := range w.Orgs {
		if o.fixture || (o.Kind != KindHoster && o.Kind != KindISP) {
			continue
		}
		total++
		if o.SignsROAs {
			signed++
		}
	}
	frac := float64(signed) / float64(total)
	if frac < 0.01 || frac > 0.15 {
		t.Errorf("signing org share = %v (want around %v)", frac, w.Cfg.HosterROAProb)
	}
}

func TestStatsPlausible(t *testing.T) {
	w := smallWorld(t)
	s := w.Stats
	if s.PrefixesTotal == 0 || s.ROAsIssued == 0 || s.DomainsCDN == 0 {
		t.Fatalf("stats look empty: %+v", s)
	}
	// CDN adoption overall should sit between the tail and top anchors.
	frac := float64(s.DomainsCDN) / float64(w.Cfg.Domains)
	if frac < w.Cfg.CDNShareTail || frac > w.Cfg.CDNShareTop {
		t.Errorf("CDN domain share = %v", frac)
	}
	// Third-party cache placement near the configured share.
	tp := float64(s.CacheInThirdParty) / float64(s.CacheInThirdParty+s.CacheInCDNNetwork)
	if math.Abs(tp-w.Cfg.ThirdPartyCacheShare) > 0.05 {
		t.Errorf("third-party cache share = %v, want ≈ %v", tp, w.Cfg.ThirdPartyCacheShare)
	}
}

func TestOrgOfPrefix(t *testing.T) {
	w := smallWorld(t)
	for _, o := range w.Orgs[:5] {
		for _, p := range o.Prefixes {
			if w.OrgOfPrefix(p) != o {
				t.Fatalf("OrgOfPrefix(%v) wrong", p)
			}
		}
	}
	if w.OrgOfPrefix(netutil.MustPrefix("192.0.2.0/24")) != nil {
		t.Error("OrgOfPrefix of foreign prefix not nil")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
