// Package webworld generates the synthetic web ecosystem the
// measurement pipeline studies: organisations (ISPs, webhosters,
// enterprises, and the paper's sixteen CDNs), RIR number-resource
// allocation, BGP announcements into a collector RIB, RPKI ROA
// issuance according to per-stakeholder policies, and the DNS zones of
// a ranked domain population.
//
// The paper measured the live Internet; this package is the offline
// substitute. Crucially, the paper's findings are not painted onto the
// output — they emerge from three structural facts encoded here:
//
//  1. CDN adoption grows with site popularity (Figure 3's cause),
//  2. apex domains cannot be CNAMEs, so CDN customers serve "www"
//     from the CDN but the bare domain from the origin host (Figure 1's
//     and Table 1's cause), and
//  3. ROA creation is an organisation-level policy that webhosters and
//     ISPs sometimes adopt and CDNs (except an Internap-like one) do
//     not (Figures 2 and 4 and §4.2's cause).
//
// Everything is deterministic given Config.Seed.
package webworld

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"ripki/internal/alexa"
	"ripki/internal/dns"
	"ripki/internal/rib"
	"ripki/internal/rpki/repo"
)

// CDNSpec describes one content delivery network.
type CDNSpec struct {
	// Name is the lower-case operator name used for keyword spotting.
	Name string
	// ASCount is how many ASes the operator runs.
	ASCount int
	// Weight is the relative probability a CDN-hosted domain uses this
	// CDN.
	Weight float64
	// ServiceSuffixes are the DNS suffixes of the CDN's delivery
	// platform (the strings HTTPArchive-style classifiers match).
	ServiceSuffixes []string
	// SignsROAs marks the Internap-like exception that created a
	// handful of ROAs; everyone else abstains (§4.2).
	SignsROAs bool
	// SignedPrefixes and SignedASes bound the exception's deployment
	// (the paper found 4 prefixes tied to 3 origin ASes).
	SignedPrefixes, SignedASes int
}

// DefaultCDNs is the paper's §4.2 list: "Akamai, Amazon, Cdnetworks,
// Chinacache, Chinanet, Cloudflare, Cotendo, Edgecast, Highwinds,
// Instart, Internap, Limelight, Mirrorimage, Netdna, Simplecdn, and
// Yottaa", with AS counts summing to the 199 ASes the paper discovered
// and Internap's 41 ASes called out explicitly.
func DefaultCDNs() []CDNSpec {
	return []CDNSpec{
		{Name: "akamai", ASCount: 36, Weight: 0.28, ServiceSuffixes: []string{"edgesuite.wld", "edgekey.wld", "akamaized.wld"}},
		{Name: "amazon", ASCount: 18, Weight: 0.20, ServiceSuffixes: []string{"cloudfront.wld", "awsdns.wld"}},
		{Name: "cdnetworks", ASCount: 8, Weight: 0.04, ServiceSuffixes: []string{"cdngc.wld"}},
		{Name: "chinacache", ASCount: 10, Weight: 0.03, ServiceSuffixes: []string{"ccgslb.wld"}},
		{Name: "chinanet", ASCount: 22, Weight: 0.05, ServiceSuffixes: []string{"chinanetcenter.wld"}},
		{Name: "cloudflare", ASCount: 6, Weight: 0.14, ServiceSuffixes: []string{"cdnsun-cf.wld", "cloudflarecdn.wld"}},
		{Name: "cotendo", ASCount: 4, Weight: 0.02, ServiceSuffixes: []string{"cotcdn.wld"}},
		{Name: "edgecast", ASCount: 9, Weight: 0.06, ServiceSuffixes: []string{"edgecastcdn.wld"}},
		{Name: "highwinds", ASCount: 6, Weight: 0.02, ServiceSuffixes: []string{"hwcdn.wld"}},
		{Name: "instart", ASCount: 3, Weight: 0.01, ServiceSuffixes: []string{"insnw.wld"}},
		{Name: "internap", ASCount: 41, Weight: 0.03, ServiceSuffixes: []string{"internapcdn.wld"}, SignsROAs: true, SignedPrefixes: 4, SignedASes: 3},
		{Name: "limelight", ASCount: 12, Weight: 0.05, ServiceSuffixes: []string{"llnwd.wld"}},
		{Name: "mirrorimage", ASCount: 5, Weight: 0.01, ServiceSuffixes: []string{"mirror-image.wld"}},
		{Name: "netdna", ASCount: 7, Weight: 0.03, ServiceSuffixes: []string{"netdna-cdn.wld"}},
		{Name: "simplecdn", ASCount: 4, Weight: 0.01, ServiceSuffixes: []string{"simplecdn.wld"}},
		{Name: "yottaa", ASCount: 8, Weight: 0.02, ServiceSuffixes: []string{"yottaa.wld"}},
	}
}

// Config parameterises world generation. The zero value is completed by
// Defaults; every probability has the calibration that reproduces the
// paper's observed magnitudes.
type Config struct {
	// Seed drives all randomness; equal seeds give equal worlds.
	Seed int64
	// Domains is the size of the ranked list (paper: 1,000,000).
	Domains int
	// Shards bounds the parallelism of the per-domain generation phase.
	// The output is byte-identical at EVERY value — per-domain draws
	// come from (Seed, rank)-derived streams, never from shard state —
	// so this is purely a resource knob. Zero means GOMAXPROCS,
	// resolved at generation time (deliberately not in Defaults, so
	// config equality and cache keys ignore it).
	Shards int
	// Clock is the world's creation time; Epoch+30d is the usual
	// measurement time.
	Clock time.Time
	// TTL is the validity window of RPKI objects.
	TTL time.Duration

	// Hosters and ISPs scale the infrastructure population.
	Hosters int
	ISPs    int

	// CDNs is the CDN roster (DefaultCDNs if nil).
	CDNs []CDNSpec

	// HosterROAProb is the probability a webhoster or ISP organisation
	// creates ROAs for all its prefixes. The paper reports >5%
	// penetration for these stakeholders and ~6% of web prefixes
	// covered overall.
	HosterROAProb float64
	// MisconfigProb is the probability a ROA-signing organisation
	// botches one of its ROAs (wrong origin AS), producing the ~0.09%
	// invalid announcements the paper observes, evenly across ranks.
	MisconfigProb float64
	// CDNShareTop and CDNShareTail anchor the convex-in-log-rank CDN
	// adoption curve (Figure 3: ~30% at the top ranks, a few percent in
	// the tail).
	CDNShareTop, CDNShareTail float64
	// ThirdPartyCacheShare is the fraction of CDN cache deployments
	// placed in third-party eyeball ISP networks ("CDN servers that are
	// placed in third party networks benefit from RPKI deployment that
	// these networks perform").
	ThirdPartyCacheShare float64
	// SingleCNAMEShare is the fraction of CDN customers whose delivery
	// uses a single CNAME rather than a 2+ chain; the paper's
	// indirection-counting heuristic misses these while the
	// HTTPArchive-style pattern matcher catches them (Figure 3's gap).
	SingleCNAMEShare float64
	// BogusDNSProb is the probability a domain resolves only to IANA
	// special-purpose addresses (paper: 0.07% of answers excluded).
	BogusDNSProb float64
	// UnreachableProb is the probability a server address comes from an
	// allocated but unannounced prefix (paper: 0.01% of addresses).
	UnreachableProb float64
	// MultiPrefixTopShare is the probability a top-10k non-CDN domain
	// is served from several prefixes (availability engineering at
	// prominent sites).
	MultiPrefixTopShare float64
	// BackupArrangements is the number of confidential standby setups
	// (one organisation authorising another's AS on one of its
	// prefixes) planted in the RPKI — the business relations §5.2
	// warns the RPKI exposes "in advance". Negative disables; zero
	// means the default of 3.
	BackupArrangements int
	// DNSSECBaseProb is the probability a domain's zone is DNSSEC
	// signed (a DNSKEY at the apex). The paper's future work compares
	// RPKI with DNSSEC adoption; roughly 2-3% of zones were signed in
	// 2015, with strong ccTLD effects modelled via DNSSECTLDBoost.
	DNSSECBaseProb float64
	// DNSSECTLDBoost maps TLD suffixes to elevated signing
	// probabilities (nil gets the 2015-flavoured default: .nl/.se/.cz
	// signed far above the base rate).
	DNSSECTLDBoost map[string]float64
}

// Defaults fills unset fields with the calibrated defaults.
func (c Config) Defaults() Config {
	if c.Domains == 0 {
		c.Domains = 1000000
	}
	if c.Clock.IsZero() {
		c.Clock = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.TTL == 0 {
		c.TTL = 365 * 24 * time.Hour
	}
	if c.Hosters == 0 {
		c.Hosters = clamp(c.Domains/2500, 80, 400)
	}
	if c.ISPs == 0 {
		c.ISPs = clamp(c.Domains/2000, 120, 500)
	}
	if c.CDNs == nil {
		c.CDNs = DefaultCDNs()
	}
	if c.HosterROAProb == 0 {
		c.HosterROAProb = 0.062
	}
	if c.MisconfigProb == 0 {
		c.MisconfigProb = 0.015
	}
	if c.CDNShareTop == 0 {
		c.CDNShareTop = 0.30
	}
	if c.CDNShareTail == 0 {
		c.CDNShareTail = 0.02
	}
	if c.ThirdPartyCacheShare == 0 {
		c.ThirdPartyCacheShare = 0.15
	}
	if c.SingleCNAMEShare == 0 {
		c.SingleCNAMEShare = 0.35
	}
	if c.BogusDNSProb == 0 {
		c.BogusDNSProb = 0.0007
	}
	if c.UnreachableProb == 0 {
		c.UnreachableProb = 0.0001
	}
	if c.MultiPrefixTopShare == 0 {
		c.MultiPrefixTopShare = 0.35
	}
	if c.BackupArrangements == 0 {
		c.BackupArrangements = 3
	}
	if c.BackupArrangements < 0 {
		c.BackupArrangements = 0
	}
	if c.DNSSECBaseProb == 0 {
		c.DNSSECBaseProb = 0.022
	}
	if c.DNSSECTLDBoost == nil {
		c.DNSSECTLDBoost = map[string]float64{
			".nl": 0.30, ".se": 0.40, ".cz": 0.35, ".fr": 0.08,
		}
	}
	return c
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// OrgKind classifies organisations.
type OrgKind uint8

const (
	// KindHoster is a webhosting company.
	KindHoster OrgKind = iota
	// KindISP is an access or transit network operator.
	KindISP
	// KindCDN is a content delivery network.
	KindCDN
	// KindEnterprise is a content owner running its own network
	// (e.g. the Facebook-like fixture).
	KindEnterprise
)

// String names the kind.
func (k OrgKind) String() string {
	switch k {
	case KindHoster:
		return "hoster"
	case KindISP:
		return "isp"
	case KindCDN:
		return "cdn"
	case KindEnterprise:
		return "enterprise"
	default:
		return fmt.Sprintf("OrgKind(%d)", uint8(k))
	}
}

// Org is one organisation: an owner of ASes and prefixes and, possibly,
// a ROA-signing RPKI member.
type Org struct {
	Name      string
	Kind      OrgKind
	RIR       string
	ASNs      []uint32
	Prefixes  []netip.Prefix
	SignsROAs bool
	// CDN points at the spec when Kind == KindCDN.
	CDN *CDNSpec
	// fixture marks organisations backing the Table 1 fixtures, which
	// are exempt from random ROA misconfiguration so the table stays
	// deterministic.
	fixture bool
}

// PlantedBackup is one confidential standby setup written into the
// RPKI: the owner organisation's prefix additionally authorises the
// standby organisation's AS.
type PlantedBackup struct {
	OwnerOrg   string
	StandbyOrg string
	Prefix     netip.Prefix
	StandbyASN uint32
}

// ASInfo is one row of the world's AS assignment registry (the "common
// AS assignment lists" the paper applies keyword spotting to).
type ASInfo struct {
	ASN  uint32
	Name string // upper-case registry description, e.g. "AKAMAI-AS3"
	Org  string
}

// World is a fully generated ecosystem.
type World struct {
	Cfg Config

	// List is the ranked domain population (the Alexa substitute).
	List *alexa.List
	// Registry holds every DNS record of every zone.
	Registry *dns.Registry
	// RIB is the collector's routing table (the RIS substitute).
	RIB *rib.Table
	// Repo is the RPKI (5 trust anchors, CAs, ROAs).
	Repo *repo.Repository
	// Orgs is every organisation.
	Orgs []*Org
	// ASRegistry is the AS assignment list for keyword spotting.
	ASRegistry []ASInfo

	// CDNSuffixes maps each CDN name to its service-domain suffixes,
	// for pattern-based classification.
	CDNSuffixes map[string][]string

	rnd   *rand.Rand
	alloc *allocator
	orgs  *worldOrgs
	// valMemo caches RPKI validation at MeasureTime; shared by clones
	// (see snapshot.go).
	valMemo *validationMemo
	// prefixOrg maps each allocated prefix to its owner, for tests and
	// diagnostics.
	prefixOrg map[netip.Prefix]*Org
	// pinnedOrigin fixes the announcing AS per prefix so ROAs and
	// announcements agree.
	pinnedOrigin map[netip.Prefix]uint32
	// subOf maps each more-specific announcement to its covering
	// aggregate.
	subOf map[netip.Prefix]netip.Prefix
	// cleanSigned lists each organisation's correctly ROA-signed IPv4
	// prefixes, the candidates for backup arrangements.
	cleanSigned map[*Org][]netip.Prefix
	// PlantedBackups records the confidential standby setups written
	// into the RPKI (owner org, standby org, prefix), so experiments
	// can check the §5.2 exposure analysis finds exactly these.
	PlantedBackups []PlantedBackup
	// stats collected during generation.
	Stats Stats
}

// Stats records generation-time tallies used by tests and reports.
type Stats struct {
	PrefixesTotal     int
	PrefixesSigned    int
	ROAsIssued        int
	ROAsMisconfigured int
	DomainsCDN        int
	DomainsBogusDNS   int
	DomainsDNSSEC     int
	AddrsUnreachable  int
	CacheInThirdParty int
	CacheInCDNNetwork int
}

// MeasureTime returns the canonical measurement instant for this world
// (30 days after creation, well inside every validity window).
func (w *World) MeasureTime() time.Time {
	return w.Cfg.Clock.Add(30 * 24 * time.Hour)
}

// OrgOfPrefix returns the owner of a generated prefix, if any.
func (w *World) OrgOfPrefix(p netip.Prefix) *Org {
	return w.prefixOrg[p]
}
