package webworld

import (
	"net/netip"
	"strings"

	"ripki/internal/dns"
)

// This file is the scenario surface of a generated world: the accessors
// discrete-event scenarios (internal/sim) use to mutate the ecosystem
// over virtual time — re-point delivery hosts, look up who announces a
// prefix, enumerate the attackable address space — without reaching into
// generation internals.

// HostAddr returns the i-th usable host address inside a prefix, the
// same addressing scheme world generation uses. Scenarios use it to mint
// victim and migration addresses that stay inside an organisation's
// announced space.
func HostAddr(p netip.Prefix, i int) netip.Addr { return hostAddr(p, i) }

// CDNOrgs returns the CDN organisations in roster order.
func (w *World) CDNOrgs() []*Org {
	var out []*Org
	for _, o := range w.Orgs {
		if o.Kind == KindCDN {
			out = append(out, o)
		}
	}
	return out
}

// CDNOrg returns the CDN organisation with the given spec name, or nil.
func (w *World) CDNOrg(name string) *Org {
	for _, o := range w.Orgs {
		if o.Kind == KindCDN && o.CDN != nil && o.CDN.Name == name {
			return o
		}
	}
	return nil
}

// PinnedOriginOf returns the AS announcing prefix p in this world, if p
// was announced during generation.
func (w *World) PinnedOriginOf(p netip.Prefix) (uint32, bool) {
	asn, ok := w.pinnedOrigin[p]
	return asn, ok
}

// RoutedV4Prefixes returns every announced IPv4 prefix in deterministic
// (organisation, allocation) order — the candidate pool for ROA churn
// and hijack target selection.
func (w *World) RoutedV4Prefixes() []netip.Prefix {
	var out []netip.Prefix
	for _, o := range w.Orgs {
		for _, p := range o.Prefixes {
			if p.Addr().Is4() {
				out = append(out, p)
			}
		}
	}
	return out
}

// CacheHosts returns the delivery hostnames of the named CDN, sorted:
// every registry owner name under one of the CDN's service suffixes that
// carries an address record. CDN-migration scenarios walk this list and
// re-home each host into another provider's address space.
func (w *World) CacheHosts(cdnName string) []string {
	suffixes := w.CDNSuffixes[cdnName]
	if len(suffixes) == 0 {
		return nil
	}
	var out []string
	for _, name := range w.Registry.Names() {
		for _, suf := range suffixes {
			if strings.HasSuffix(name, "."+dns.CanonicalName(suf)) {
				if len(w.Registry.Lookup(name, dns.TypeA)) > 0 {
					out = append(out, name)
				}
				break
			}
		}
	}
	return out
}
