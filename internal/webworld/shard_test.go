package webworld

import (
	"reflect"
	"testing"

	"ripki/internal/dns"
)

// TestShardCountInvariance is the determinism contract of sharded
// generation: the world is byte-identical at every shard count, because
// per-domain draws come from (Seed, rank)-derived streams. It compares
// the full name list, every DNS record of every owner name, the RIB,
// and the generation stats across shard counts straddling the range a
// CI runner would pick for GOMAXPROCS.
func TestShardCountInvariance(t *testing.T) {
	gen := func(shards int) *World {
		w, err := Generate(Config{Seed: 11, Domains: 3000, Shards: shards})
		if err != nil {
			t.Fatalf("Generate(shards=%d): %v", shards, err)
		}
		return w
	}
	base := gen(1)
	baseNames := base.Registry.Names()
	types := []uint16{dns.TypeA, dns.TypeAAAA, dns.TypeCNAME, dns.TypeNS, dns.TypeDNSKEY, dns.TypeTXT}

	for _, shards := range []int{2, 3, 8} {
		w := gen(shards)
		if got, want := w.List.Len(), base.List.Len(); got != want {
			t.Fatalf("shards=%d: %d domains, want %d", shards, got, want)
		}
		for i, e := range w.List.Entries() {
			if be := base.List.Entries()[i]; e != be {
				t.Fatalf("shards=%d: entry %d = %+v, want %+v", shards, i, e, be)
			}
		}
		if w.Stats != base.Stats {
			t.Fatalf("shards=%d: stats %+v, want %+v", shards, w.Stats, base.Stats)
		}
		if got, want := w.RIB.Len(), base.RIB.Len(); got != want {
			t.Fatalf("shards=%d: RIB %d routes, want %d", shards, got, want)
		}
		if got := w.Registry.Names(); !reflect.DeepEqual(got, baseNames) {
			t.Fatalf("shards=%d: registry owner names differ (%d vs %d)", shards, len(got), len(baseNames))
		}
		for _, name := range baseNames {
			for _, typ := range types {
				got, want := w.Registry.Lookup(name, typ), base.Registry.Lookup(name, typ)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d: records at %q type %d differ:\n got %+v\nwant %+v",
						shards, name, typ, got, want)
				}
			}
		}
	}
}

// TestShardsIsNotPartOfIdentity pins the cache-key contract: Defaults
// must leave Shards untouched, so configs differing only in parallelism
// stay equal and shared-world caches keep hitting.
func TestShardsIsNotPartOfIdentity(t *testing.T) {
	a := Config{Seed: 1, Domains: 100}.Defaults()
	b := Config{Seed: 1, Domains: 100, Shards: 7}.Defaults()
	if a.Shards != 0 {
		t.Fatalf("Defaults set Shards = %d, want 0 (resolved at generation time)", a.Shards)
	}
	b.Shards = 0
	if !reflect.DeepEqual(a.DNSSECTLDBoost, b.DNSSECTLDBoost) {
		t.Fatal("unrelated defaults differ")
	}
}

// BenchmarkWorldgen gates generation throughput: one op generates a
// 50k-domain world and reports domains/sec alongside the allocation
// profile the baseline locks in.
func BenchmarkWorldgen(b *testing.B) {
	const domains = 50000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := Generate(Config{Seed: 1, Domains: domains})
		if err != nil {
			b.Fatal(err)
		}
		if w.List.Len() != domains {
			b.Fatalf("short list: %d", w.List.Len())
		}
	}
	b.ReportMetric(float64(domains)*float64(b.N)/b.Elapsed().Seconds(), "domains/s")
}
