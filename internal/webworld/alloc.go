package webworld

import (
	"fmt"
	"net/netip"

	"ripki/internal/netutil"
)

// rirPool is one RIR's unallocated address space.
type rirPool struct {
	name string
	// v4 blocks are /8s the RIR hands out /16 and /20 prefixes from.
	v4 []netip.Prefix
	// v6 block is the RIR's /12-ish; /32s are carved from it.
	v6 netip.Prefix

	nextV4Block int
	nextV4Off   int // count of /20s handed out of the current /8
	nextV6Off   int // count of /32s handed out
}

// allocator carves prefixes from per-RIR pools, mirroring how number
// resources reach organisations in the real Internet. The /8 pools are
// the historically accurate RIR blocks, which keeps generated addresses
// clear of the IANA special-purpose ranges.
type allocator struct {
	pools map[string]*rirPool
	order []string
}

func newAllocator() *allocator {
	mk := func(name, v6 string, v4s ...string) *rirPool {
		p := &rirPool{name: name, v6: netutil.MustPrefix(v6)}
		for _, b := range v4s {
			p.v4 = append(p.v4, netutil.MustPrefix(b))
		}
		return p
	}
	a := &allocator{pools: map[string]*rirPool{}}
	for _, p := range []*rirPool{
		mk("ripe", "2a00::/12", "31.0.0.0/8", "46.0.0.0/8", "62.0.0.0/8", "77.0.0.0/8", "78.0.0.0/8", "193.0.0.0/8", "194.0.0.0/8", "212.0.0.0/8"),
		mk("arin", "2600::/12", "23.0.0.0/8", "63.0.0.0/8", "64.0.0.0/8", "96.0.0.0/8", "107.0.0.0/8", "184.0.0.0/8", "199.0.0.0/8", "208.0.0.0/8"),
		mk("apnic", "2400::/12", "27.0.0.0/8", "36.0.0.0/8", "101.0.0.0/8", "110.0.0.0/8", "119.0.0.0/8", "175.0.0.0/8", "202.0.0.0/8", "218.0.0.0/8"),
		mk("lacnic", "2800::/12", "131.0.0.0/8", "138.0.0.0/8", "177.0.0.0/8", "179.0.0.0/8", "181.0.0.0/8", "186.0.0.0/8", "187.0.0.0/8", "200.0.0.0/8"),
		mk("afrinic", "2c00::/12", "41.0.0.0/8", "102.0.0.0/8", "105.0.0.0/8", "154.0.0.0/8", "156.0.0.0/8", "196.0.0.0/8", "197.0.0.0/8"),
	} {
		a.pools[p.name] = p
		a.order = append(a.order, p.name)
	}
	return a
}

// rirNames returns the pool names in allocation order.
func (a *allocator) rirNames() []string { return a.order }

// nextV4 carves the next IPv4 prefix of the given length (16..24) from
// the RIR's pool.
func (a *allocator) nextV4(rir string, bits int) (netip.Prefix, error) {
	p := a.pools[rir]
	if p == nil {
		return netip.Prefix{}, fmt.Errorf("webworld: unknown RIR %q", rir)
	}
	if bits < 12 || bits > 24 {
		return netip.Prefix{}, fmt.Errorf("webworld: unsupported v4 allocation size /%d", bits)
	}
	// All allocations are tracked in units of /24 within the current
	// /8; a /bits allocation consumes 2^(24-bits) units and is aligned
	// to its size.
	units := 1 << (24 - bits)
	// Align.
	if rem := p.nextV4Off % units; rem != 0 {
		p.nextV4Off += units - rem
	}
	const unitsPer8 = 1 << 16 // /24s in a /8
	if p.nextV4Off+units > unitsPer8 {
		p.nextV4Block++
		p.nextV4Off = 0
	}
	if p.nextV4Block >= len(p.v4) {
		return netip.Prefix{}, fmt.Errorf("webworld: RIR %q exhausted its IPv4 pool", rir)
	}
	base := p.v4[p.nextV4Block].Addr().As4()
	off := p.nextV4Off
	p.nextV4Off += units
	addr := netip.AddrFrom4([4]byte{base[0], byte(off >> 8), byte(off & 0xff), 0})
	return netip.PrefixFrom(addr, bits).Masked(), nil
}

// nextV6 carves the next /32 from the RIR's v6 pool.
func (a *allocator) nextV6(rir string) (netip.Prefix, error) {
	p := a.pools[rir]
	if p == nil {
		return netip.Prefix{}, fmt.Errorf("webworld: unknown RIR %q", rir)
	}
	base := p.v6.Addr().As16()
	off := p.nextV6Off
	p.nextV6Off++
	if off > 0xFFFFF {
		return netip.Prefix{}, fmt.Errorf("webworld: RIR %q exhausted its IPv6 pool", rir)
	}
	// Vary bytes 1..3 below the /12 boundary; the pool base has the top
	// 12 bits set, so adding into bytes 1-3 stays inside the block.
	base[1] |= byte(off >> 16)
	base[2] = byte(off >> 8)
	base[3] = byte(off)
	return netip.PrefixFrom(netip.AddrFrom16(base), 32).Masked(), nil
}

// subPrefix carves the idx-th sub-prefix of length bits out of p
// (IPv4 only; idx counts from 0 within p).
func subPrefix(p netip.Prefix, bits, idx int) netip.Prefix {
	if !p.Addr().Is4() || bits <= p.Bits() || bits > 32 {
		panic(fmt.Sprintf("webworld: bad subPrefix(%v, %d)", p, bits))
	}
	span := 1 << (32 - bits)
	base := p.Addr().As4()
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v += uint32(idx%(1<<(bits-p.Bits()))) * uint32(span)
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}), bits).Masked()
}

// hostAddr returns the i-th usable host address inside a prefix
// (i starts at 1; .0 is skipped).
func hostAddr(p netip.Prefix, i int) netip.Addr {
	if p.Addr().Is4() {
		base := p.Addr().As4()
		v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
		span := uint32(1) << (32 - p.Bits())
		v += uint32(i) % max32(span-2, 1)
		if v%span == 0 {
			v++
		}
		return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	}
	base := p.Addr().As16()
	base[15] = byte(i)
	base[14] = byte(i >> 8)
	base[13] = byte(i >> 16)
	if base[15] == 0 && base[14] == 0 && base[13] == 0 {
		base[15] = 1
	}
	return netip.AddrFrom16(base)
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
