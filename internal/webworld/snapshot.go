package webworld

import (
	"sync"

	"ripki/internal/rpki/repo"
)

// This file is the sharing surface of a generated world. Sweeps pay the
// world-generation tax (organisations, RPKI signing, BGP announcement,
// a million DNS records, certificate-path validation) once per seed:
// Generate the world, Snapshot it, and hand each grid cell its own
// Clone. Everything in a World is immutable at simulation time except
// the DNS registry (scenarios re-point delivery hosts), so a clone is a
// shallow copy of the world plus a deep copy of the registry —
// copy-on-write would save the registry copy too, but a deep copy is
// already two orders of magnitude cheaper than regeneration and keeps
// the mutation rules trivial.

// validationMemo caches the world's RPKI validation at MeasureTime. The
// pointer is shared by every clone of a world, so a whole sweep pays
// certificate-path validation once per generated world.
type validationMemo struct {
	once sync.Once
	res  *repo.ValidationResult
}

// Validation returns the repository validated at MeasureTime, computed
// once per generated world and shared by every Clone. The result (and
// its VRP set) must be treated as read-only. Worlds assembled by hand
// without Generate fall back to validating on every call.
func (w *World) Validation() *repo.ValidationResult {
	if w.valMemo == nil {
		return w.Repo.Validate(w.MeasureTime())
	}
	w.valMemo.once.Do(func() {
		w.valMemo.res = w.Repo.Validate(w.MeasureTime())
	})
	return w.valMemo.res
}

// Snapshot is an immutable captured world: a template every simulation
// sharing the seed clones from. The snapshot itself must never be
// handed to a scenario — call Clone (concurrency-safe) per run.
type Snapshot struct {
	base *World
}

// Snapshot captures the world as an immutable template. The receiver
// must not be mutated afterwards (run scenarios against Clones, not
// against w itself).
func (w *World) Snapshot() *Snapshot {
	return &Snapshot{base: w}
}

// Clone returns a world that is safe to hand to one simulation: it
// shares every immutable layer (ranked list, RIB, RPKI repository,
// organisations, memoized validation) with the snapshot and deep-copies
// the DNS registry, the one layer scenarios mutate. The ranked list's
// name strings are views into the per-shard generation slabs
// (internal/strtab), shared by every clone — interning survives
// cloning for free because strings are immutable. Clone is safe to
// call concurrently.
func (s *Snapshot) Clone() *World {
	w := *s.base
	w.Registry = s.base.Registry.Clone()
	return &w
}
