// Package radix implements a path-compressed binary trie (patricia trie)
// keyed by IP prefixes, with separate roots for IPv4 and IPv6.
//
// The RiPKI pipeline needs two queries that hash maps cannot answer:
//
//   - all prefixes in a routing table that cover a given address
//     (methodology step 3: "For each IP address of a domain name, we
//     extract all covering prefixes"), and
//   - all VRPs that cover a given route prefix (RFC 6811 origin
//     validation).
//
// The trie stores one arbitrary value per canonical prefix. It is not
// safe for concurrent mutation; wrap it in a lock or use one goroutine.
package radix

import (
	"fmt"
	"net/netip"

	"ripki/internal/netutil"
)

// node is a trie node. Internal nodes may carry no value (hasValue
// false); path compression is achieved by storing full prefixes at nodes
// and branching on the first bit after the node's prefix length.
type node[V any] struct {
	prefix   netip.Prefix
	value    V
	hasValue bool
	child    [2]*node[V]
}

// Tree is a prefix-keyed radix tree. The zero value is ready to use.
type Tree[V any] struct {
	root4 *node[V]
	root6 *node[V]
	count int
}

// Len returns the number of prefixes with values in the tree.
func (t *Tree[V]) Len() int { return t.count }

func (t *Tree[V]) rootFor(p netip.Prefix) **node[V] {
	if p.Addr().Is4() {
		return &t.root4
	}
	return &t.root6
}

// commonBits returns the length of the longest common prefix of a and b,
// capped at max. Both addresses must be the same family.
func commonBits(a, b netip.Addr, max int) int {
	ab, bb := a.AsSlice(), b.AsSlice()
	n := 0
	for i := 0; i < len(ab) && n < max; i++ {
		x := ab[i] ^ bb[i]
		if x == 0 {
			n += 8
			continue
		}
		for bit := 7; bit >= 0; bit-- {
			if x&(1<<uint(bit)) != 0 {
				break
			}
			n++
		}
		break
	}
	if n > max {
		n = max
	}
	return n
}

// bitAfter returns the bit of addr at position bits (the first bit after
// a prefix of length bits), or 0 if bits is the full address width.
func bitAfter(addr netip.Addr, bits int) int {
	if bits >= netutil.FamilyBits(addr) {
		return 0
	}
	return netutil.Bit(addr, bits)
}

// Insert stores value under prefix p, replacing any existing value.
// The prefix is canonicalised (masked) first. It returns an error only
// if p is invalid.
func (t *Tree[V]) Insert(p netip.Prefix, value V) error {
	cp, err := netutil.Canonical(p)
	if err != nil {
		return err
	}
	rp := t.rootFor(cp)
	inserted := t.insert(rp, cp, value)
	if inserted {
		t.count++
	}
	return nil
}

// insert returns true if a new valued node was created (false if an
// existing value was replaced).
func (t *Tree[V]) insert(np **node[V], p netip.Prefix, value V) bool {
	n := *np
	if n == nil {
		*np = &node[V]{prefix: p, value: value, hasValue: true}
		return true
	}
	cb := commonBits(n.prefix.Addr(), p.Addr(), minInt(n.prefix.Bits(), p.Bits()))
	switch {
	case cb == n.prefix.Bits() && cb == p.Bits():
		// Same prefix: replace or set value.
		created := !n.hasValue
		n.value, n.hasValue = value, true
		return created
	case cb == n.prefix.Bits():
		// p is longer and inside n: descend.
		b := bitAfter(p.Addr(), n.prefix.Bits())
		return t.insert(&n.child[b], p, value)
	case cb == p.Bits():
		// p is shorter and covers n: p becomes the parent of n.
		nn := &node[V]{prefix: p, value: value, hasValue: true}
		b := bitAfter(n.prefix.Addr(), p.Bits())
		nn.child[b] = n
		*np = nn
		return true
	default:
		// Diverge below cb: create a glue node.
		glue := &node[V]{prefix: netip.PrefixFrom(n.prefix.Addr(), cb).Masked()}
		nb := bitAfter(n.prefix.Addr(), cb)
		pb := bitAfter(p.Addr(), cb)
		glue.child[nb] = n
		glue.child[pb] = &node[V]{prefix: p, value: value, hasValue: true}
		*np = glue
		return true
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Lookup returns the value stored at exactly prefix p.
func (t *Tree[V]) Lookup(p netip.Prefix) (V, bool) {
	var zero V
	cp, err := netutil.Canonical(p)
	if err != nil {
		return zero, false
	}
	n := *t.rootFor(cp)
	for n != nil {
		cb := commonBits(n.prefix.Addr(), cp.Addr(), minInt(n.prefix.Bits(), cp.Bits()))
		if cb < n.prefix.Bits() {
			return zero, false
		}
		if n.prefix.Bits() == cp.Bits() {
			if n.hasValue {
				return n.value, true
			}
			return zero, false
		}
		n = n.child[bitAfter(cp.Addr(), n.prefix.Bits())]
	}
	return zero, false
}

// Delete removes the value at exactly prefix p. It reports whether a
// value was removed. Structural nodes are left in place (the tree only
// grows structurally; this is fine for our workloads, which build once
// and query many times).
func (t *Tree[V]) Delete(p netip.Prefix) bool {
	cp, err := netutil.Canonical(p)
	if err != nil {
		return false
	}
	n := *t.rootFor(cp)
	for n != nil {
		cb := commonBits(n.prefix.Addr(), cp.Addr(), minInt(n.prefix.Bits(), cp.Bits()))
		if cb < n.prefix.Bits() {
			return false
		}
		if n.prefix.Bits() == cp.Bits() {
			if n.hasValue {
				var zero V
				n.value, n.hasValue = zero, false
				t.count--
				return true
			}
			return false
		}
		n = n.child[bitAfter(cp.Addr(), n.prefix.Bits())]
	}
	return false
}

// Covering appends to dst every (prefix, value) pair whose prefix
// contains addr, from shortest to longest, and returns the extended
// slice. This is the "all covering prefixes" query from the paper's
// methodology.
func (t *Tree[V]) Covering(addr netip.Addr, dst []Entry[V]) []Entry[V] {
	var n *node[V]
	if addr.Is4() {
		n = t.root4
	} else if addr.Is6() {
		n = t.root6
	}
	max := 0
	if addr.IsValid() {
		max = netutil.FamilyBits(addr)
	}
	for n != nil {
		cb := commonBits(n.prefix.Addr(), addr, minInt(n.prefix.Bits(), max))
		if cb < n.prefix.Bits() {
			break
		}
		if n.hasValue {
			dst = append(dst, Entry[V]{Prefix: n.prefix, Value: n.value})
		}
		if n.prefix.Bits() >= max {
			break
		}
		n = n.child[bitAfter(addr, n.prefix.Bits())]
	}
	return dst
}

// CoveringPrefix appends every (prefix, value) pair whose prefix covers
// the whole of p (i.e. prefix length <= p.Bits() and containing p), from
// shortest to longest. RFC 6811 matching uses this form.
func (t *Tree[V]) CoveringPrefix(p netip.Prefix, dst []Entry[V]) []Entry[V] {
	cp, err := netutil.Canonical(p)
	if err != nil {
		return dst
	}
	n := *t.rootFor(cp)
	for n != nil {
		if n.prefix.Bits() > cp.Bits() {
			break
		}
		cb := commonBits(n.prefix.Addr(), cp.Addr(), n.prefix.Bits())
		if cb < n.prefix.Bits() {
			break
		}
		if n.hasValue {
			dst = append(dst, Entry[V]{Prefix: n.prefix, Value: n.value})
		}
		if n.prefix.Bits() == cp.Bits() {
			break
		}
		n = n.child[bitAfter(cp.Addr(), n.prefix.Bits())]
	}
	return dst
}

// LongestMatch returns the longest prefix in the tree containing addr.
func (t *Tree[V]) LongestMatch(addr netip.Addr) (netip.Prefix, V, bool) {
	var zero V
	es := t.Covering(addr, nil)
	if len(es) == 0 {
		return netip.Prefix{}, zero, false
	}
	e := es[len(es)-1]
	return e.Prefix, e.Value, true
}

// Entry is a (prefix, value) pair returned by queries.
type Entry[V any] struct {
	Prefix netip.Prefix
	Value  V
}

// Walk visits every valued entry in the tree, IPv4 first then IPv6, in
// lexical prefix order. If fn returns false the walk stops early.
func (t *Tree[V]) Walk(fn func(netip.Prefix, V) bool) {
	if !walk(t.root4, fn) {
		return
	}
	walk(t.root6, fn)
}

func walk[V any](n *node[V], fn func(netip.Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.hasValue {
		if !fn(n.prefix, n.value) {
			return false
		}
	}
	return walk(n.child[0], fn) && walk(n.child[1], fn)
}

// Subtree appends every valued entry covered by p (including p itself),
// in lexical order.
func (t *Tree[V]) Subtree(p netip.Prefix, dst []Entry[V]) []Entry[V] {
	cp, err := netutil.Canonical(p)
	if err != nil {
		return dst
	}
	n := *t.rootFor(cp)
	for n != nil {
		cb := commonBits(n.prefix.Addr(), cp.Addr(), minInt(n.prefix.Bits(), cp.Bits()))
		if n.prefix.Bits() >= cp.Bits() {
			if cb == cp.Bits() {
				walk(n, func(q netip.Prefix, v V) bool {
					dst = append(dst, Entry[V]{Prefix: q, Value: v})
					return true
				})
			}
			return dst
		}
		if cb < n.prefix.Bits() {
			return dst
		}
		n = n.child[bitAfter(cp.Addr(), n.prefix.Bits())]
	}
	return dst
}

// String summarises the tree for debugging.
func (t *Tree[V]) String() string {
	return fmt.Sprintf("radix.Tree(%d prefixes)", t.count)
}
