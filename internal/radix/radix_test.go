package radix

import (
	"math/rand"
	"net/netip"
	"sort"
	"testing"

	"ripki/internal/netutil"
)

func TestInsertLookup(t *testing.T) {
	var tr Tree[string]
	pairs := map[string]string{
		"10.0.0.0/8":      "a",
		"10.0.0.0/16":     "b",
		"10.1.0.0/16":     "c",
		"192.0.2.0/24":    "d",
		"0.0.0.0/0":       "root",
		"2001:db8::/32":   "v6",
		"2001:db8:1::/48": "v6b",
		"::/0":            "v6root",
	}
	for p, v := range pairs {
		if err := tr.Insert(netutil.MustPrefix(p), v); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != len(pairs) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(pairs))
	}
	for p, v := range pairs {
		got, ok := tr.Lookup(netutil.MustPrefix(p))
		if !ok || got != v {
			t.Errorf("Lookup(%s) = %q, %v; want %q", p, got, ok, v)
		}
	}
	if _, ok := tr.Lookup(netutil.MustPrefix("10.0.0.0/12")); ok {
		t.Error("Lookup of absent glue prefix returned a value")
	}
	if _, ok := tr.Lookup(netutil.MustPrefix("11.0.0.0/8")); ok {
		t.Error("Lookup of absent prefix returned a value")
	}
}

func TestInsertReplaces(t *testing.T) {
	var tr Tree[int]
	p := netutil.MustPrefix("10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert, want 1", tr.Len())
	}
	if v, _ := tr.Lookup(p); v != 2 {
		t.Fatalf("Lookup = %d, want 2", v)
	}
}

func TestInsertNonCanonicalised(t *testing.T) {
	var tr Tree[int]
	tr.Insert(netip.MustParsePrefix("10.9.8.7/8"), 5)
	if v, ok := tr.Lookup(netutil.MustPrefix("10.0.0.0/8")); !ok || v != 5 {
		t.Fatalf("canonicalisation on insert failed: %v %v", v, ok)
	}
}

func TestInsertInvalid(t *testing.T) {
	var tr Tree[int]
	if err := tr.Insert(netip.Prefix{}, 1); err == nil {
		t.Error("Insert(zero prefix) did not error")
	}
}

func TestDelete(t *testing.T) {
	var tr Tree[int]
	p := netutil.MustPrefix("10.0.0.0/8")
	q := netutil.MustPrefix("10.0.0.0/16")
	tr.Insert(p, 1)
	tr.Insert(q, 2)
	if !tr.Delete(p) {
		t.Fatal("Delete existing returned false")
	}
	if tr.Delete(p) {
		t.Fatal("Delete twice returned true")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if _, ok := tr.Lookup(p); ok {
		t.Error("deleted prefix still found")
	}
	if v, ok := tr.Lookup(q); !ok || v != 2 {
		t.Error("sibling prefix lost after delete")
	}
}

func TestCovering(t *testing.T) {
	var tr Tree[string]
	for _, p := range []string{"0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "10.2.0.0/16"} {
		tr.Insert(netutil.MustPrefix(p), p)
	}
	got := tr.Covering(netutil.MustAddr("10.1.2.3"), nil)
	want := []string{"0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"}
	if len(got) != len(want) {
		t.Fatalf("Covering returned %d entries, want %d (%v)", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Prefix.String() != w {
			t.Errorf("Covering[%d] = %s, want %s", i, got[i].Prefix, w)
		}
	}
	got = tr.Covering(netutil.MustAddr("10.2.9.9"), nil)
	if len(got) != 3 || got[2].Prefix.String() != "10.2.0.0/16" {
		t.Errorf("Covering(10.2.9.9) = %v", got)
	}
	if got := tr.Covering(netutil.MustAddr("2001:db8::1"), nil); len(got) != 0 {
		t.Errorf("v6 Covering on v4-only tree = %v, want empty", got)
	}
	if got := tr.Covering(netip.Addr{}, nil); len(got) != 0 {
		t.Errorf("Covering(zero addr) = %v, want empty", got)
	}
}

func TestCoveringPrefix(t *testing.T) {
	var tr Tree[string]
	for _, p := range []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"} {
		tr.Insert(netutil.MustPrefix(p), p)
	}
	got := tr.CoveringPrefix(netutil.MustPrefix("10.1.0.0/20"), nil)
	want := []string{"10.0.0.0/8", "10.1.0.0/16"}
	if len(got) != len(want) {
		t.Fatalf("CoveringPrefix = %v, want %v", got, want)
	}
	for i, w := range want {
		if got[i].Prefix.String() != w {
			t.Errorf("CoveringPrefix[%d] = %s, want %s", i, got[i].Prefix, w)
		}
	}
	// The /24 itself is included when querying exactly it.
	got = tr.CoveringPrefix(netutil.MustPrefix("10.1.2.0/24"), nil)
	if len(got) != 3 {
		t.Fatalf("CoveringPrefix(/24) = %v, want 3 entries", got)
	}
}

func TestLongestMatch(t *testing.T) {
	var tr Tree[string]
	for _, p := range []string{"10.0.0.0/8", "10.1.0.0/16"} {
		tr.Insert(netutil.MustPrefix(p), p)
	}
	p, v, ok := tr.LongestMatch(netutil.MustAddr("10.1.200.3"))
	if !ok || p.String() != "10.1.0.0/16" || v != "10.1.0.0/16" {
		t.Errorf("LongestMatch = %v %q %v", p, v, ok)
	}
	_, _, ok = tr.LongestMatch(netutil.MustAddr("11.0.0.1"))
	if ok {
		t.Error("LongestMatch matched an uncovered address")
	}
}

func TestWalkOrderAndSubtree(t *testing.T) {
	var tr Tree[int]
	ps := []string{"10.0.0.0/8", "10.0.0.0/16", "10.128.0.0/9", "192.0.2.0/24", "2001:db8::/32"}
	for i, p := range ps {
		tr.Insert(netutil.MustPrefix(p), i)
	}
	var seen []string
	tr.Walk(func(p netip.Prefix, _ int) bool {
		seen = append(seen, p.String())
		return true
	})
	if len(seen) != len(ps) {
		t.Fatalf("Walk visited %d, want %d", len(seen), len(ps))
	}
	if !sort.SliceIsSorted(seen, func(i, j int) bool {
		return netutil.ComparePrefixes(netutil.MustPrefix(seen[i]), netutil.MustPrefix(seen[j])) < 0
	}) {
		t.Errorf("Walk order not sorted: %v", seen)
	}

	sub := tr.Subtree(netutil.MustPrefix("10.0.0.0/8"), nil)
	if len(sub) != 3 {
		t.Fatalf("Subtree(10/8) = %v, want 3 entries", sub)
	}
	sub = tr.Subtree(netutil.MustPrefix("11.0.0.0/8"), nil)
	if len(sub) != 0 {
		t.Fatalf("Subtree(11/8) = %v, want empty", sub)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	var tr Tree[int]
	for _, p := range []string{"10.0.0.0/8", "11.0.0.0/8", "12.0.0.0/8"} {
		tr.Insert(netutil.MustPrefix(p), 0)
	}
	n := 0
	tr.Walk(func(netip.Prefix, int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop visited %d, want 2", n)
	}
}

// naive is a reference model: a flat slice scanned linearly.
type naive struct {
	ps []netip.Prefix
}

func (n *naive) insert(p netip.Prefix) {
	p = p.Masked()
	for _, q := range n.ps {
		if q == p {
			return
		}
	}
	n.ps = append(n.ps, p)
}

func (n *naive) covering(a netip.Addr) []netip.Prefix {
	var out []netip.Prefix
	for _, q := range n.ps {
		if q.Addr().Is4() == a.Is4() && q.Contains(a) {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bits() < out[j].Bits() })
	return out
}

func randPrefix4(rnd *rand.Rand) netip.Prefix {
	var b [4]byte
	rnd.Read(b[:])
	// Bias toward short prefixes so coverings are common.
	bits := 1 + rnd.Intn(28)
	return netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
}

func randPrefix6(rnd *rand.Rand) netip.Prefix {
	var b [16]byte
	rnd.Read(b[:2]) // cluster in a small space
	bits := 1 + rnd.Intn(64)
	return netip.PrefixFrom(netip.AddrFrom16(b), bits).Masked()
}

// Property test: the trie agrees with the naive model on Covering and
// Lookup across random inserts, both families.
func TestAgainstNaiveModel(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	var tr Tree[netip.Prefix]
	var model naive
	for i := 0; i < 3000; i++ {
		var p netip.Prefix
		if rnd.Intn(2) == 0 {
			p = randPrefix4(rnd)
		} else {
			p = randPrefix6(rnd)
		}
		tr.Insert(p, p)
		model.insert(p)
	}
	if tr.Len() != len(model.ps) {
		t.Fatalf("Len = %d, model has %d", tr.Len(), len(model.ps))
	}
	for _, p := range model.ps {
		v, ok := tr.Lookup(p)
		if !ok || v != p {
			t.Fatalf("Lookup(%v) = %v, %v", p, v, ok)
		}
	}
	for i := 0; i < 2000; i++ {
		var a netip.Addr
		if rnd.Intn(2) == 0 {
			var b [4]byte
			rnd.Read(b[:])
			a = netip.AddrFrom4(b)
		} else {
			var b [16]byte
			rnd.Read(b[:2])
			a = netip.AddrFrom16(b)
		}
		want := model.covering(a)
		got := tr.Covering(a, nil)
		if len(got) != len(want) {
			t.Fatalf("Covering(%v): got %d entries %v, want %d %v", a, len(got), got, len(want), want)
		}
		for j := range got {
			if got[j].Prefix != want[j] {
				t.Fatalf("Covering(%v)[%d] = %v, want %v", a, j, got[j].Prefix, want[j])
			}
		}
	}
}

func TestDeleteAgainstModel(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	var tr Tree[int]
	kept := map[netip.Prefix]bool{}
	var all []netip.Prefix
	for i := 0; i < 500; i++ {
		p := randPrefix4(rnd)
		tr.Insert(p, i)
		kept[p] = true
		all = append(all, p)
	}
	for i, p := range all {
		if i%3 == 0 {
			if kept[p] {
				if !tr.Delete(p) {
					t.Fatalf("Delete(%v) = false for present prefix", p)
				}
				delete(kept, p)
			}
		}
	}
	if tr.Len() != len(kept) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(kept))
	}
	for _, p := range all {
		_, ok := tr.Lookup(p)
		if ok != kept[p] {
			t.Fatalf("Lookup(%v) = %v, want %v", p, ok, kept[p])
		}
	}
}

func BenchmarkCovering(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	var tr Tree[int]
	for i := 0; i < 100000; i++ {
		tr.Insert(randPrefix4(rnd), i)
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		var buf [4]byte
		rnd.Read(buf[:])
		addrs[i] = netip.AddrFrom4(buf)
	}
	buf := make([]Entry[int], 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tr.Covering(addrs[i%len(addrs)], buf[:0])
	}
}
