package radix

import (
	"math/rand"
	"net/netip"
	"sort"
	"testing"

	"ripki/internal/netutil"
)

// The tree is the validation service's hot read path, and Delete (used
// by live VRP withdrawals) leaves structural nodes behind by design —
// so Covering/Delete interleavings deserve model-based testing: every
// operation is mirrored into a plain map and the tree must agree with
// the brute-force answer afterwards.

// model is the naive reference: a map of valued canonical prefixes.
type model map[netip.Prefix]int

// covering computes the reference answer for Tree.Covering: every
// valued prefix containing addr, shortest to longest.
func (m model) covering(addr netip.Addr) []Entry[int] {
	var out []Entry[int]
	for p, v := range m {
		if p.Addr().Is4() == addr.Is4() && p.Contains(addr) {
			out = append(out, Entry[int]{Prefix: p, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Bits() < out[j].Prefix.Bits() })
	return out
}

// coveringPrefix computes the reference answer for Tree.CoveringPrefix.
func (m model) coveringPrefix(q netip.Prefix) []Entry[int] {
	var out []Entry[int]
	for p, v := range m {
		if p.Addr().Is4() == q.Addr().Is4() && p.Bits() <= q.Bits() && p.Contains(q.Addr()) {
			out = append(out, Entry[int]{Prefix: p, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Bits() < out[j].Prefix.Bits() })
	return out
}

// checkAgainstModel compares every query the service relies on.
func checkAgainstModel(t *testing.T, tr *Tree[int], m model, probes []netip.Addr) {
	t.Helper()
	if tr.Len() != len(m) {
		t.Fatalf("Len = %d, model has %d", tr.Len(), len(m))
	}
	for p, v := range m {
		got, ok := tr.Lookup(p)
		if !ok || got != v {
			t.Fatalf("Lookup(%v) = %v, %v; model has %v", p, got, ok, v)
		}
	}
	for _, addr := range probes {
		got := tr.Covering(addr, nil)
		want := m.covering(addr)
		if len(got) != len(want) {
			t.Fatalf("Covering(%v): %d entries, model says %d (%v vs %v)", addr, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Covering(%v)[%d] = %v, model says %v", addr, i, got[i], want[i])
			}
		}
		// CoveringPrefix at the host route must agree with Covering.
		q := netip.PrefixFrom(addr, netutil.FamilyBits(addr))
		gotP := tr.CoveringPrefix(q, nil)
		wantP := m.coveringPrefix(q)
		if len(gotP) != len(wantP) {
			t.Fatalf("CoveringPrefix(%v): %d entries, model says %d", q, len(gotP), len(wantP))
		}
		for i := range gotP {
			if gotP[i] != wantP[i] {
				t.Fatalf("CoveringPrefix(%v)[%d] = %v, model says %v", q, i, gotP[i], wantP[i])
			}
		}
	}
}

// smallPrefix4 draws a canonical IPv4 prefix from a deliberately small
// universe so inserts, deletes and probes collide often.
func smallPrefix4(rnd *rand.Rand) netip.Prefix {
	bits := rnd.Intn(25) // 0../24
	addr := netip.AddrFrom4([4]byte{byte(10 + rnd.Intn(2)), byte(rnd.Intn(4)), byte(rnd.Intn(4)), 0})
	p, _ := netutil.Canonical(netip.PrefixFrom(addr, bits))
	return p
}

// TestCoveringDeleteInterleavingsProperty runs randomized
// insert/delete/re-insert interleavings against the model. Deletes
// leave structural nodes in place, so re-inserting under a deleted
// glue node is exactly the shape that needs coverage.
func TestCoveringDeleteInterleavingsProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		var tr Tree[int]
		m := model{}
		probes := make([]netip.Addr, 0, 16)
		for i := 0; i < 16; i++ {
			probes = append(probes, netip.AddrFrom4([4]byte{byte(10 + rnd.Intn(2)), byte(rnd.Intn(4)), byte(rnd.Intn(4)), byte(rnd.Intn(2))}))
		}
		for op := 0; op < 400; op++ {
			p := smallPrefix4(rnd)
			switch rnd.Intn(3) {
			case 0, 1: // insert wins 2:1 so the tree stays populated
				v := rnd.Intn(1000)
				if err := tr.Insert(p, v); err != nil {
					t.Fatal(err)
				}
				m[p] = v
			case 2:
				got := tr.Delete(p)
				_, want := m[p]
				if got != want {
					t.Fatalf("seed %d op %d: Delete(%v) = %v, model says %v", seed, op, p, got, want)
				}
				delete(m, p)
			}
			if op%40 == 39 {
				checkAgainstModel(t, &tr, m, probes)
			}
		}
		checkAgainstModel(t, &tr, m, probes)
	}
}

// FuzzCoveringDelete interprets fuzz bytes as an op sequence over a
// tiny prefix universe and cross-checks the tree against the model
// after every query. Run with `go test -fuzz FuzzCoveringDelete`; the
// seed corpus keeps it meaningful as a plain test.
func FuzzCoveringDelete(f *testing.F) {
	f.Add([]byte{0x00, 0x12, 0x83, 0x45, 0x02, 0x7f})
	f.Add([]byte{0xff, 0x01, 0x80, 0x81, 0x82, 0x83, 0x84, 0x85})
	f.Add([]byte("interleave-deletes-with-covering-queries"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Tree[int]
		m := model{}
		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i], data[i+1], data[i+2]
			bits := int(a) % 25
			addr := netip.AddrFrom4([4]byte{10, a % 4, b % 4, 0})
			p, _ := netutil.Canonical(netip.PrefixFrom(addr, bits))
			switch op % 4 {
			case 0, 1:
				v := int(b)
				if err := tr.Insert(p, v); err != nil {
					t.Fatal(err)
				}
				m[p] = v
			case 2:
				got := tr.Delete(p)
				_, want := m[p]
				if got != want {
					t.Fatalf("Delete(%v) = %v, model says %v", p, got, want)
				}
				delete(m, p)
			case 3:
				probe := netip.AddrFrom4([4]byte{10, a % 4, b % 4, b % 2})
				got := tr.Covering(probe, nil)
				want := m.covering(probe)
				if len(got) != len(want) {
					t.Fatalf("Covering(%v): %v, model says %v", probe, got, want)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("Covering(%v)[%d] = %v, model says %v", probe, j, got[j], want[j])
					}
				}
			}
		}
		if tr.Len() != len(m) {
			t.Fatalf("Len = %d, model has %d", tr.Len(), len(m))
		}
	})
}
