// Package strtab provides a compact append-only string table: every
// string lives in one contiguous byte slab and is addressed by a dense
// uint32 id. A table holding a million short names costs two slice
// allocations instead of a million string objects, which is what lets
// web-scale domain populations (the paper's Alexa top 1M) fit in memory
// without drowning the garbage collector in pointers.
//
// A table supports two insertion modes:
//
//   - Intern deduplicates: equal strings get equal ids, at the cost of
//     an internal map (whose keys alias the slab, so the map adds no
//     string data of its own);
//   - Append stores unconditionally and touches no map — the arena mode
//     for populations that are unique by construction (ranked domain
//     names embed their rank).
//
// Get is zero-copy: the returned string aliases the slab. The slab is
// append-only, so previously returned strings and map keys stay valid
// across growth. A Table is not safe for concurrent mutation; once
// building is done, any number of readers may call Get/Lookup/Len
// concurrently.
package strtab

import "unsafe"

// Table is an append-only string table. The zero value is NOT ready to
// use; call New or NewSized.
type Table struct {
	slab []byte
	offs []uint32 // offs[id] .. offs[id+1] bound string id in the slab
	ids  map[string]uint32
}

// New returns an empty table.
func New() *Table { return NewSized(0, 0) }

// NewSized returns an empty table preallocated for about n strings
// totalling about bytes slab bytes.
func NewSized(n, bytes int) *Table {
	t := &Table{offs: make([]uint32, 1, n+1)}
	if bytes > 0 {
		t.slab = make([]byte, 0, bytes)
	}
	return t
}

// add stores b's bytes and returns the new id. Total slab size must
// stay below 4 GiB (uint32 offsets); a million domain names is ~16 MB.
func (t *Table) add(b []byte) uint32 {
	id := uint32(len(t.offs) - 1)
	t.slab = append(t.slab, b...)
	t.offs = append(t.offs, uint32(len(t.slab)))
	return id
}

// Append stores b unconditionally (no deduplication, no map) and
// returns its id. Arena mode: use when inputs are unique by
// construction and the map overhead of Intern buys nothing.
func (t *Table) Append(b []byte) uint32 { return t.add(b) }

// Intern returns the id of s, storing it on first sight. Equal strings
// always get equal ids. Do not mix Intern and Append on one table:
// Append'd strings are invisible to Intern's deduplication.
func (t *Table) Intern(s string) uint32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[string]uint32)
	}
	id := t.add(unsafe.Slice(unsafe.StringData(s), len(s)))
	// Key with the slab-backed copy, not the caller's string, so the
	// map holds no reference to caller memory.
	t.ids[t.Get(id)] = id
	return id
}

// Lookup returns the id of a previously Intern'd string.
func (t *Table) Lookup(s string) (uint32, bool) {
	id, ok := t.ids[s]
	return id, ok
}

// Get returns string id. The result aliases the slab (zero-copy) and
// stays valid for the lifetime of the table.
func (t *Table) Get(id uint32) string {
	lo, hi := t.offs[id], t.offs[id+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&t.slab[lo], int(hi-lo))
}

// Len returns the number of stored strings.
func (t *Table) Len() int { return len(t.offs) - 1 }

// Bytes returns the slab size in bytes (the sum of stored string
// lengths), for memory accounting.
func (t *Table) Bytes() int { return len(t.slab) }
