package strtab

import (
	"fmt"
	"strings"
	"testing"
)

func TestInternRoundTrip(t *testing.T) {
	tab := New()
	words := []string{"google.com", "facebook.com", "", "a", "www.google.com", "google.com"}
	ids := make([]uint32, len(words))
	for i, w := range words {
		ids[i] = tab.Intern(w)
	}
	for i, w := range words {
		if got := tab.Get(ids[i]); got != w {
			t.Fatalf("Get(%d) = %q, want %q", ids[i], got, w)
		}
	}
	// Dedup: equal strings, equal ids.
	if ids[0] != ids[5] {
		t.Fatalf("duplicate intern got distinct ids %d and %d", ids[0], ids[5])
	}
	if tab.Len() != 5 {
		t.Fatalf("Len = %d, want 5 unique strings", tab.Len())
	}
	// Re-interning anything returns the original id.
	for i, w := range words {
		if again := tab.Intern(w); again != ids[i] {
			t.Fatalf("re-Intern(%q) = %d, want %d", w, again, ids[i])
		}
	}
}

func TestLookup(t *testing.T) {
	tab := New()
	id := tab.Intern("example.org")
	if got, ok := tab.Lookup("example.org"); !ok || got != id {
		t.Fatalf("Lookup = %d,%v want %d,true", got, ok, id)
	}
	if _, ok := tab.Lookup("missing"); ok {
		t.Fatal("Lookup found a string that was never interned")
	}
}

func TestAppendArenaMode(t *testing.T) {
	tab := NewSized(4, 64)
	a := tab.Append([]byte("dup"))
	b := tab.Append([]byte("dup"))
	if a == b {
		t.Fatal("Append deduplicated; arena mode must not")
	}
	if tab.Get(a) != "dup" || tab.Get(b) != "dup" {
		t.Fatalf("Get after Append: %q, %q", tab.Get(a), tab.Get(b))
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if tab.Bytes() != 6 {
		t.Fatalf("Bytes = %d, want 6", tab.Bytes())
	}
}

// TestStableAcrossGrowth interns enough strings to force repeated slab
// reallocation, holding on to every returned string, and verifies none
// of them were corrupted by growth (the no-aliasing guarantee).
func TestStableAcrossGrowth(t *testing.T) {
	tab := NewSized(0, 0) // start with no capacity to maximise growth events
	const n = 20000
	want := make([]string, n)
	got := make([]string, n)
	ids := make([]uint32, n)
	for i := range want {
		want[i] = fmt.Sprintf("site-%d.example", i)
		ids[i] = tab.Intern(want[i])
		got[i] = tab.Get(ids[i]) // captured early, before later growth
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("early Get(%d) corrupted by growth: %q != %q", ids[i], got[i], want[i])
		}
		if tab.Get(ids[i]) != want[i] {
			t.Fatalf("late Get(%d) = %q, want %q", ids[i], tab.Get(ids[i]), want[i])
		}
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
}

// FuzzIntern round-trips arbitrary token lists through a table and
// cross-checks against a plain map copy: dedup must be exact, Get must
// return byte-identical content, and no earlier string may be aliased
// or clobbered by later inserts.
func FuzzIntern(f *testing.F) {
	f.Add("google.com\nfacebook.com\ngoogle.com")
	f.Add("")
	f.Add("\n\n\n")
	f.Add("a\xff\x00b\nsame\nsame\nsame")
	f.Add(strings.Repeat("x", 300) + "\n" + strings.Repeat("x", 300))
	f.Fuzz(func(t *testing.T, input string) {
		tokens := strings.Split(input, "\n")
		tab := New()
		ref := make(map[string]uint32) // reference copies own their bytes
		var order []string
		for _, tok := range tokens {
			id := tab.Intern(tok)
			clone := strings.Clone(tok)
			if prev, ok := ref[clone]; ok {
				if id != prev {
					t.Fatalf("Intern(%q) = %d, earlier id %d", tok, id, prev)
				}
				continue
			}
			ref[clone] = id
			order = append(order, clone)
		}
		if tab.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d unique", tab.Len(), len(ref))
		}
		for _, s := range order {
			id := ref[s]
			if got := tab.Get(id); got != s {
				t.Fatalf("Get(%d) = %q, want %q", id, got, s)
			}
			if got, ok := tab.Lookup(s); !ok || got != id {
				t.Fatalf("Lookup(%q) = %d,%v want %d,true", s, got, ok, id)
			}
		}
	})
}
