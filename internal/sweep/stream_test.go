package sweep

import (
	"bytes"
	"context"
	"math"
	"testing"
)

// render dumps both output formats for byte-level comparison.
func render(t *testing.T, res *Result) (tsv, js []byte) {
	t.Helper()
	var tb, jb bytes.Buffer
	if err := res.WriteTSV(&tb); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), jb.Bytes()
}

// TestSharedWorldsByteIdentical is shared-world execution's contract:
// generating each (seed, domains) world once and cloning it per run
// must produce byte-identical output to regenerating per run —
// cdn-migration is in the grid precisely because it mutates the (cloned)
// DNS registry.
func TestSharedWorldsByteIdentical(t *testing.T) {
	g := testGrid()
	g.Scenarios = []string{"baseline", "roa-churn", "cdn-migration"}
	regen, err := Run(context.Background(), g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Run(context.Background(), g, Options{Workers: 4, ShareWorlds: true})
	if err != nil {
		t.Fatal(err)
	}
	rt, rj := render(t, regen)
	st, sj := render(t, shared)
	if !bytes.Equal(rt, st) {
		t.Error("TSV differs between per-run regeneration and shared worlds")
	}
	if !bytes.Equal(rj, sj) {
		t.Error("JSON differs between per-run regeneration and shared worlds")
	}
}

// TestSharedWorldCloneIsolation: a scenario that rewrites the DNS
// registry (cdn-migration) must not leak its mutations into sibling
// runs sharing the world — every replicate of the same cell sees the
// same world, so their migrated series must match the unshared run's.
func TestSharedWorldCloneIsolation(t *testing.T) {
	g := testGrid()
	g.Scenarios = []string{"cdn-migration", "baseline"}
	g.Replicates = 3
	res, err := Run(context.Background(), g, Options{Workers: 3, ShareWorlds: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range res.Runs {
		if rr.Err != "" {
			t.Fatalf("run %d: %s", rr.Spec.Index, rr.Err)
		}
	}
	// The baseline cell shares seeds with the cdn-migration cell; had
	// migration mutations leaked into the shared snapshot, the baseline
	// replicate of the same seed would see a different world than an
	// isolated run.
	solo, err := Run(context.Background(), Grid{
		Scenarios:     []string{"baseline"},
		Seeds:         []int64{res.Plan.Seeds[0]},
		Domains:       g.Domains,
		Ticks:         g.Ticks,
		Durations:     g.Durations,
		SampleEvery:   g.SampleEvery,
		SampleDomains: g.SampleDomains,
	}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sharedBaseline *RunResult
	for i := range res.Runs {
		rr := &res.Runs[i]
		if rr.Spec.Config.Scenario == "baseline" && rr.Spec.Rep == 0 {
			sharedBaseline = rr
		}
	}
	if sharedBaseline == nil {
		t.Fatal("no baseline rep-0 run")
	}
	if sharedBaseline.MeanValid != solo.Runs[0].MeanValid || sharedBaseline.Rows != solo.Runs[0].Rows {
		t.Errorf("shared-world baseline diverged from isolated run: %+v vs %+v",
			sharedBaseline, &solo.Runs[0])
	}
}

// TestStreamingDeterministicAcrossWorkers is streaming mode's hard
// requirement: replicate-order folding makes the output byte-identical
// at any worker count, with or without world sharing.
func TestStreamingDeterministicAcrossWorkers(t *testing.T) {
	g := testGrid()
	g.Replicates = 3
	var first [2][]byte
	for i, opt := range []Options{
		{Workers: 1, Streaming: true},
		{Workers: 4, Streaming: true},
		{Workers: 4, Streaming: true, ShareWorlds: true},
	} {
		res, err := Run(context.Background(), g, opt)
		if err != nil {
			t.Fatal(err)
		}
		tsv, js := render(t, res)
		if i == 0 {
			first = [2][]byte{tsv, js}
			continue
		}
		if !bytes.Equal(first[0], tsv) {
			t.Errorf("streaming TSV differs under %+v", opt)
		}
		if !bytes.Equal(first[1], js) {
			t.Errorf("streaming JSON differs under %+v", opt)
		}
	}
}

// TestStreamingMatchesExactAggregates: below the exact-phase buffer
// size the streamed percentiles are exact, so the whole cell table must
// match the collect-then-Summarize path (mean up to fp association;
// everything else bit-equal).
func TestStreamingMatchesExactAggregates(t *testing.T) {
	g := testGrid()
	g.Replicates = 4
	exact, err := Run(context.Background(), g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Run(context.Background(), g, Options{Workers: 4, Streaming: true, ShareWorlds: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Cells) != len(stream.Cells) {
		t.Fatalf("cell count: %d vs %d", len(exact.Cells), len(stream.Cells))
	}
	for ci := range exact.Cells {
		e, s := &exact.Cells[ci], &stream.Cells[ci]
		if e.Runs != s.Runs || e.Errors != s.Errors || len(e.Ticks) != len(s.Ticks) {
			t.Fatalf("cell %d shape: %d/%d/%d vs %d/%d/%d",
				ci, e.Runs, e.Errors, len(e.Ticks), s.Runs, s.Errors, len(s.Ticks))
		}
		for ti := range e.Ticks {
			for mi := range e.Ticks[ti].Metrics {
				em, sm := e.Ticks[ti].Metrics[mi], s.Ticks[ti].Metrics[mi]
				if em.Count != sm.Count || em.Min != sm.Min || em.Max != sm.Max {
					t.Fatalf("cell %d tick %d %s: count/min/max %v vs %v",
						ci, ti, e.Columns[mi], em, sm)
				}
				if !almostEq(em.Mean, sm.Mean) || !almostEq(em.P50, sm.P50) || !almostEq(em.P95, sm.P95) || !almostEq(em.P99, sm.P99) {
					t.Fatalf("cell %d tick %d %s: mean/p50/p95/p99 %v vs %v",
						ci, ti, e.Columns[mi], em, sm)
				}
			}
		}
		if len(e.Hijacks) != len(s.Hijacks) {
			t.Fatalf("cell %d hijack rows: %d vs %d", ci, len(e.Hijacks), len(s.Hijacks))
		}
		for hi := range e.Hijacks {
			if e.Hijacks[hi] != s.Hijacks[hi] {
				t.Fatalf("cell %d hijack %d: %+v vs %+v", ci, hi, e.Hijacks[hi], s.Hijacks[hi])
			}
		}
	}
}

// TestStreamingReleasesSeries is the memory contract: after a streaming
// sweep no run retains its time series (the exact path keeps all of
// them), so resident series memory is the accumulators' O(cells ×
// ticks), not O(runs × ticks).
func TestStreamingReleasesSeries(t *testing.T) {
	res, err := Run(context.Background(), testGrid(), Options{Workers: 2, Streaming: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Runs {
		if res.Runs[i].Series != nil {
			t.Fatalf("run %d retains its series in streaming mode", i)
		}
		if res.Runs[i].Rows == 0 {
			t.Fatalf("run %d lost its scalar summaries", i)
		}
	}
	if !res.Streaming {
		t.Error("result not marked streaming")
	}
	exact, err := Run(context.Background(), testGrid(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.Runs {
		if exact.Runs[i].Series == nil {
			t.Fatalf("exact run %d lost its series", i)
		}
	}
}

// TestStreamingRecordsErrors: failed runs are counted per cell in
// streaming mode too, and never stall the replicate-order fold.
func TestStreamingRecordsErrors(t *testing.T) {
	g := testGrid()
	g.Scenarios = []string{"cdn-migration"}
	g.Replicates = 2
	g.Params = map[string][]string{"from": {"no-such-cdn"}}
	res, err := Run(context.Background(), g, Options{Workers: 2, Streaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[0].Errors != 2 || res.Cells[0].Runs != 0 {
		t.Errorf("cell: runs=%d errors=%d, want 0/2", res.Cells[0].Runs, res.Cells[0].Errors)
	}
	if len(res.Cells[0].Ticks) != 0 {
		t.Errorf("all-failed cell has tick aggregates")
	}
}

func almostEq(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
