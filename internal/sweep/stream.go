package sweep

import (
	"fmt"
	"sync"

	"ripki/internal/stats"
	"ripki/internal/webworld"
)

// --- shared-world execution --------------------------------------------

// A generated world depends only on (seed, domains) — generation
// parallelism (webworld.Config.Shards, GOMAXPROCS by default) is
// excluded from the key on purpose, because sharded generation is
// byte-identical at any shard count — and paired replication reuses
// the same seed in every cell, so a grid of C cells
// × R replicates needs only R × |domains axis| distinct worlds, not
// C × R. The cache below generates each distinct world exactly once
// (organisations, RPKI signing, BGP announcement, DNS zones,
// certificate-path validation), snapshots it, and hands every run that
// shares the key its own webworld clone. Reference counts drop the
// cache's entry when the last sharing run completes (clones alias the
// snapshot's immutable layers, so the base world lives as long as any
// of its runs) — world memory tracks the runs in flight, never the
// grid size.
type worldKey struct {
	seed    int64
	domains int
}

type worldEntry struct {
	once      sync.Once
	snap      *webworld.Snapshot
	err       error
	remaining int // runs still to claim a clone; guarded by worldCache.mu
}

type worldCache struct {
	mu      sync.Mutex
	entries map[worldKey]*worldEntry
}

func specWorldKey(spec *RunSpec) worldKey {
	return worldKey{seed: spec.Config.Seed, domains: spec.Config.Domains}
}

// newWorldCache precounts how many of the scheduled runs (specs indexes
// into plan.Specs — the whole plan, or a distributed worker's leased
// subset) share each world, so entries can be dropped (and collected)
// the moment the last sharer has cloned.
func newWorldCache(plan *Plan, specs []int) *worldCache {
	c := &worldCache{entries: make(map[worldKey]*worldEntry)}
	for _, i := range specs {
		k := specWorldKey(&plan.Specs[i])
		e := c.entries[k]
		if e == nil {
			e = &worldEntry{}
			c.entries[k] = e
		}
		e.remaining++
	}
	return c
}

// clone returns this run's private copy of the spec's world, generating
// and validating the shared original on first use. Concurrent callers
// of the same key block until the one generation completes. The clone
// shares every immutable layer and the memoized validation; only the
// DNS registry (the layer scenarios mutate) is copied.
func (c *worldCache) clone(spec *RunSpec) (*webworld.World, error) {
	c.mu.Lock()
	e := c.entries[specWorldKey(spec)]
	c.mu.Unlock()
	e.once.Do(func() {
		w, err := webworld.Generate(webworld.Config{Seed: spec.Config.Seed, Domains: spec.Config.Domains})
		if err != nil {
			// The same error string sim.New would record, so a failing
			// grid produces identical output in both execution modes.
			e.err = fmt.Errorf("sim: generating world: %w", err)
			return
		}
		w.Validation() // pay certificate-path validation once, here
		e.snap = w.Snapshot()
	})
	if e.err != nil {
		return nil, e.err
	}
	return e.snap.Clone(), nil
}

// release drops one reference (runOne defers it to run completion);
// the last reference removes the entry so the snapshot becomes
// collectable once its runs' clones are gone too.
func (c *worldCache) release(spec *RunSpec) {
	k := specWorldKey(spec)
	c.mu.Lock()
	if e := c.entries[k]; e != nil {
		e.remaining--
		if e.remaining == 0 {
			delete(c.entries, k)
		}
	}
	c.mu.Unlock()
}

// --- streaming aggregation ---------------------------------------------

// streamAggregator folds run series into per-cell online accumulators
// the moment each run completes, then releases the series — sweep
// memory becomes O(cells × ticks) instead of O(runs × ticks).
//
// Determinism at any worker count comes from folding each cell's runs
// in replicate order, never completion order: a run that finishes
// before its predecessors parks (series attached) until every earlier
// replicate of its cell has been folded. Runs within a cell are
// scheduled contiguously, so at most ~Workers runs are ever parked —
// the transient buffer is bounded by the pool, not the grid.
type streamAggregator struct {
	mu    sync.Mutex
	cells []*cellStream
}

// cellStream is one cell's accumulator state.
type cellStream struct {
	info    CellInfo
	nextRep int
	parked  map[int]*RunResult
	runs    int
	errors  int

	columns   []string
	metricIdx []int
	t, tick   []float64
	rows      int // min row count across folded runs
	accs      [][]*stats.StreamingSummary

	// Hijack outcomes accumulate as integer tallies and divide only at
	// render time. Integer-valued float64 sums are exact below 2^53, so
	// the quotient is bit-identical to the incremental float accumulation
	// the exact path performs — and integers cross a JSON wire without
	// any representation question at all.
	hijackOrder []string
	hijacks     map[string]*hijackTally
}

// hijackTally is one relying party's raw outcome counts within a cell.
type hijackTally struct {
	runs      int
	successes int
	ticks     int
}

func newStreamAggregator(plan *Plan) *streamAggregator {
	a := &streamAggregator{cells: make([]*cellStream, len(plan.Cells))}
	for i, info := range plan.Cells {
		a.cells[i] = newCellStream(info)
	}
	return a
}

func newCellStream(info CellInfo) *cellStream {
	return &cellStream{
		info:    info,
		parked:  make(map[int]*RunResult),
		hijacks: make(map[string]*hijackTally),
	}
}

// add offers one completed run. The aggregator owns the copy it is
// handed: the series is folded and released as soon as every earlier
// replicate of the cell has been folded — immediately when the run
// arrives in order, otherwise when the stragglers land. Callers must
// not retain rr.Series after add (the pool stores results with the
// series stripped).
func (a *streamAggregator) add(rr RunResult) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.cells[rr.Spec.Cell]
	cs.parked[rr.Spec.Rep] = &rr
	for {
		next, ok := cs.parked[cs.nextRep]
		if !ok {
			return
		}
		delete(cs.parked, cs.nextRep)
		cs.nextRep++
		cs.fold(next)
	}
}

// fold ingests one run in replicate order and drops its series.
func (cs *cellStream) fold(rr *RunResult) {
	defer func() { rr.Series = nil }()
	if rr.Err != "" || rr.Series == nil {
		cs.errors++
		return
	}
	series := rr.Series
	if cs.runs == 0 {
		for i, col := range series.Columns {
			if col == "t" || col == "tick" {
				continue
			}
			cs.metricIdx = append(cs.metricIdx, i)
			cs.columns = append(cs.columns, col)
		}
		cs.t = series.Column("t")
		cs.tick = series.Column("tick")
		cs.rows = len(series.Rows)
		cs.accs = make([][]*stats.StreamingSummary, len(series.Rows))
		for row := range cs.accs {
			ms := make([]*stats.StreamingSummary, len(cs.metricIdx))
			for m := range ms {
				ms[m] = stats.NewStreamingSummary()
			}
			cs.accs[row] = ms
		}
	} else if len(series.Rows) < cs.rows {
		// Mirror the exact path's clamp to the shortest run; rows beyond
		// the final minimum are discarded when the cell is built.
		cs.rows = len(series.Rows)
	}
	cs.runs++
	n := len(series.Rows)
	if n > len(cs.accs) {
		n = len(cs.accs)
	}
	for row := 0; row < n; row++ {
		for m, mi := range cs.metricIdx {
			cs.accs[row][m].Add(series.Rows[row][mi])
		}
	}
	for _, h := range rr.Hijacks {
		tl := cs.hijacks[h.RP]
		if tl == nil {
			tl = &hijackTally{}
			cs.hijacks[h.RP] = tl
			cs.hijackOrder = append(cs.hijackOrder, h.RP)
		}
		tl.runs++
		if h.Success {
			tl.successes++
		}
		tl.ticks += h.HijackedTicks
	}
}

// cell renders this cell's accumulators as a Cell — the same shape the
// exact aggregate produces. Works identically on a freshly-folded
// stream and on one restored from a CellStreamState.
func (cs *cellStream) cell() Cell {
	cell := Cell{CellInfo: cs.info, Runs: cs.runs, Errors: cs.errors, Columns: cs.columns}
	for row := 0; row < cs.rows; row++ {
		ta := TickAggregate{Metrics: make([]stats.Summary, 0, len(cs.columns))}
		if row < len(cs.t) {
			ta.T = cs.t[row]
		}
		if row < len(cs.tick) {
			ta.Tick = cs.tick[row]
		}
		for _, acc := range cs.accs[row] {
			ta.Metrics = append(ta.Metrics, acc.Summary())
		}
		cell.Ticks = append(cell.Ticks, ta)
	}
	for _, rp := range cs.hijackOrder {
		tl := cs.hijacks[rp]
		cell.Hijacks = append(cell.Hijacks, RPHijackRate{
			RP:                rp,
			Runs:              tl.runs,
			SuccessRate:       float64(tl.successes) / float64(tl.runs),
			MeanHijackedTicks: float64(tl.ticks) / float64(tl.runs),
		})
	}
	return cell
}

// finalize renders the accumulators as the Cells slice, in grid order.
func (a *streamAggregator) finalize() []Cell {
	a.mu.Lock()
	defer a.mu.Unlock()
	cells := make([]Cell, len(a.cells))
	for ci, cs := range a.cells {
		cells[ci] = cs.cell()
	}
	return cells
}
