package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ripki/internal/stats"
)

// This file is the distributed sweep's data plane: the serialisable
// per-cell partials a worker ships to its coordinator, the worker-side
// entry point that produces them (RunCells), and the coordinator-side
// assembly that turns a complete set of partials back into a Result
// whose WriteTSV/WriteJSON bytes are identical to a single-process run.
//
// The byte-identity argument rests on leases being whole cells: every
// replicate of a cell runs on ONE worker, which folds them in replicate
// order exactly like a local sweep. Exact-mode partials therefore carry
// finished per-cell aggregates (stats.Summary values, which round-trip
// JSON exactly — see stats.Summary's marshalling); streaming-mode
// partials carry the raw accumulator states (stats.StreamingSummary,
// whose serialisation is proven to continue bit-identically). Nothing
// is ever merged across workers — the coordinator only *places* cells
// and runs at their grid positions.

// RunPartial is one run's scalar summary keyed by its plan index. The
// worker re-expands the plan from the grid, so the spec itself (config,
// seed, cell, rep) never crosses the wire — only the index and what the
// run measured.
type RunPartial struct {
	Run           int             `json:"run"`
	Err           string          `json:"error,omitempty"`
	Rows          int             `json:"rows"`
	MeanValid     stats.JSONFloat `json:"mean_valid"`
	MinValid      stats.JSONFloat `json:"min_valid"`
	FinalCoverage stats.JSONFloat `json:"final_coverage"`
	MaxHijacks    stats.JSONFloat `json:"max_hijacks"`
	Hijacks       []RPHijack      `json:"hijacks,omitempty"`
}

// HijackTally is one relying party's raw outcome counts within a cell —
// the integer form of RPHijackRate, divided only at render time so the
// wire carries no derived floats.
type HijackTally struct {
	RP        string `json:"rp"`
	Runs      int    `json:"runs"`
	Successes int    `json:"successes"`
	Ticks     int    `json:"ticks"`
}

// CellStreamState is one cell's streaming accumulator state: everything
// cellStream holds after folding its runs in replicate order, in
// serialisable form. A coordinator restores it and renders the Cell;
// because stats.StreamingSummary round-trips exactly, the rendered
// summaries are bit-identical to finalizing in-process.
type CellStreamState struct {
	Runs    int                         `json:"runs"`
	Errors  int                         `json:"errors"`
	Columns []string                    `json:"columns,omitempty"`
	T       []float64                   `json:"t,omitempty"`
	Tick    []float64                   `json:"tick,omitempty"`
	Rows    int                         `json:"rows"`
	Accs    [][]*stats.StreamingSummary `json:"accs,omitempty"`
	Hijacks []HijackTally               `json:"hijacks,omitempty"`
}

// CellPartial is one completed cell crossing the worker→coordinator
// wire: the cell's run summaries in replicate order plus exactly one of
// the two aggregate forms — Agg (exact mode: the finished aggregate) or
// Stream (streaming mode: the accumulator state).
type CellPartial struct {
	Cell   int              `json:"cell"`
	Runs   []RunPartial     `json:"runs"`
	Agg    *Cell            `json:"agg,omitempty"`
	Stream *CellStreamState `json:"stream,omitempty"`
}

// state exports the accumulators for the wire.
func (cs *cellStream) state() *CellStreamState {
	st := &CellStreamState{
		Runs:    cs.runs,
		Errors:  cs.errors,
		Columns: cs.columns,
		T:       cs.t,
		Tick:    cs.tick,
		Rows:    cs.rows,
		Accs:    cs.accs,
	}
	for _, rp := range cs.hijackOrder {
		tl := cs.hijacks[rp]
		st.Hijacks = append(st.Hijacks, HijackTally{
			RP: rp, Runs: tl.runs, Successes: tl.successes, Ticks: tl.ticks,
		})
	}
	return st
}

// restoreCellStream rebuilds a cellStream from its exported state; the
// CellInfo comes from the coordinator's own plan expansion, never the
// wire. Only cell() is meaningful on the result — a restored stream is
// for rendering, not further folding (whole-cell leases mean no
// coordinator ever folds).
func restoreCellStream(info CellInfo, st *CellStreamState) *cellStream {
	cs := newCellStream(info)
	cs.runs, cs.errors = st.Runs, st.Errors
	cs.columns, cs.t, cs.tick = st.Columns, st.T, st.Tick
	cs.rows, cs.accs = st.Rows, st.Accs
	for _, h := range st.Hijacks {
		cs.hijackOrder = append(cs.hijackOrder, h.RP)
		cs.hijacks[h.RP] = &hijackTally{runs: h.Runs, successes: h.Successes, ticks: h.Ticks}
	}
	return cs
}

// runPartial summarises one completed RunResult for the wire.
func runPartial(rr *RunResult) RunPartial {
	return RunPartial{
		Run:           rr.Spec.Index,
		Err:           rr.Err,
		Rows:          rr.Rows,
		MeanValid:     stats.JSONFloat(rr.MeanValid),
		MinValid:      stats.JSONFloat(rr.MinValid),
		FinalCoverage: stats.JSONFloat(rr.FinalCoverage),
		MaxHijacks:    stats.JSONFloat(rr.MaxHijacks),
		Hijacks:       rr.Hijacks,
	}
}

// RunCells executes every run of the contiguous cell range
// [first, first+count) — the distributed sweep's lease unit — with the
// same pool, world-sharing and streaming machinery as a local sweep,
// and returns one CellPartial per cell, in cell order. Cancelling ctx
// abandons the lease and returns ctx's error.
func RunCells(ctx context.Context, plan *Plan, opt Options, first, count int) ([]CellPartial, error) {
	if first < 0 || count <= 0 || first+count > len(plan.Cells) {
		return nil, fmt.Errorf("sweep: cell range [%d,%d) outside plan's %d cells", first, first+count, len(plan.Cells))
	}
	var specs []int
	for i := range plan.Specs {
		if c := plan.Specs[i].Cell; c >= first && c < first+count {
			specs = append(specs, i)
		}
	}
	// Exact-mode partials need each run's series until its cell is
	// aggregated below, so runSpecs must not be streaming it away unless
	// asked to.
	results, stream, err := runSpecs(ctx, plan, opt, specs)
	if err != nil {
		return nil, err
	}
	partials := make([]CellPartial, count)
	for ci := first; ci < first+count; ci++ {
		p := CellPartial{Cell: ci}
		var cellRuns []*RunResult
		for _, idx := range specs {
			if plan.Specs[idx].Cell != ci {
				continue
			}
			rr := &results[idx]
			p.Runs = append(p.Runs, runPartial(rr))
			cellRuns = append(cellRuns, rr)
		}
		if stream != nil {
			p.Stream = stream.cells[ci].state()
		} else {
			agg := aggregateCell(plan.Cells[ci], cellRuns)
			p.Agg = &agg
			for _, rr := range cellRuns {
				rr.Series = nil
			}
		}
		partials[ci-first] = p
	}
	return partials, nil
}

// AssembleResult places a complete set of cell partials into a Result.
// Every plan cell must be covered exactly once and every run index must
// belong to its partial's cell; gaps and overlaps are coordinator bugs
// and error loudly rather than producing silently-wrong output. The
// assembled Result's WriteTSV/WriteJSON bytes are identical to running
// the plan in one process with the same Options mode.
func AssembleResult(plan *Plan, streaming bool, partials []CellPartial) (*Result, error) {
	seen := make([]bool, len(plan.Cells))
	res := &Result{
		Plan:      plan,
		Runs:      make([]RunResult, len(plan.Specs)),
		Cells:     make([]Cell, len(plan.Cells)),
		Streaming: streaming,
	}
	for pi := range partials {
		p := &partials[pi]
		if p.Cell < 0 || p.Cell >= len(plan.Cells) {
			return nil, fmt.Errorf("sweep: partial for cell %d outside plan's %d cells", p.Cell, len(plan.Cells))
		}
		if seen[p.Cell] {
			return nil, fmt.Errorf("sweep: cell %d assembled twice", p.Cell)
		}
		seen[p.Cell] = true
		for _, rp := range p.Runs {
			if rp.Run < 0 || rp.Run >= len(plan.Specs) {
				return nil, fmt.Errorf("sweep: cell %d partial names run %d outside plan's %d runs", p.Cell, rp.Run, len(plan.Specs))
			}
			spec := &plan.Specs[rp.Run]
			if spec.Cell != p.Cell {
				return nil, fmt.Errorf("sweep: run %d belongs to cell %d, not cell %d", rp.Run, spec.Cell, p.Cell)
			}
			res.Runs[rp.Run] = RunResult{
				Spec:          *spec,
				Err:           rp.Err,
				Rows:          rp.Rows,
				MeanValid:     float64(rp.MeanValid),
				MinValid:      float64(rp.MinValid),
				FinalCoverage: float64(rp.FinalCoverage),
				MaxHijacks:    float64(rp.MaxHijacks),
				Hijacks:       rp.Hijacks,
			}
		}
		info := plan.Cells[p.Cell]
		switch {
		case streaming && p.Stream != nil:
			res.Cells[p.Cell] = restoreCellStream(info, p.Stream).cell()
		case !streaming && p.Agg != nil:
			cell := *p.Agg
			// Config never crosses the wire (CellInfo marshals without it);
			// the coordinator's own expansion supplies the identity.
			cell.CellInfo = info
			res.Cells[p.Cell] = cell
		default:
			return nil, fmt.Errorf("sweep: cell %d partial carries no %s aggregate", p.Cell, modeWord(streaming))
		}
	}
	for ci, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("sweep: no partial for cell %d", ci)
		}
	}
	return res, nil
}

func modeWord(streaming bool) string {
	if streaming {
		return "streaming"
	}
	return "exact"
}

// Hash fingerprints the expanded plan: master seed, the derived seed
// axis, and every cell's identity (scenario, label, config axes,
// params). Workers refuse leases against a coordinator whose plan hash
// differs from their own expansion, and checkpoint records are stamped
// with it so a resume can never mix grids.
func (p *Plan) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "master_seed=%d\nseeds=%s\nruns=%d\n",
		p.Grid.MasterSeed, formatSeeds(p.Seeds), len(p.Specs))
	for i := range p.Cells {
		c := &p.Cells[i]
		cfg := &c.Config
		fmt.Fprintf(h, "cell %d scenario=%s label=%q domains=%d tick=%s duration=%s sample_every=%d sample_domains=%d params=%s\n",
			c.Index, c.Scenario, c.Label, cfg.Domains, cfg.Tick, cfg.Duration,
			cfg.SampleEvery, cfg.SampleDomains, FormatParams(cfg.Params))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// MarshalGrid renders a Grid in the grid-file schema ParseGrid accepts
// (durations as human strings) — the coordinator ships its grid to
// workers this way, and both sides re-expand the identical Plan.
func MarshalGrid(g Grid) ([]byte, error) {
	gj := gridJSON{Grid: g}
	gj.Grid.Ticks, gj.Grid.Durations = nil, nil
	for _, d := range g.Ticks {
		gj.Ticks = append(gj.Ticks, d.String())
	}
	for _, d := range g.Durations {
		gj.Durations = append(gj.Durations, d.String())
	}
	return json.Marshal(gj)
}
