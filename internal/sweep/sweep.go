// Package sweep runs grids of scenario simulations across worker
// goroutines and folds the per-run time series into deterministic
// cross-run aggregates.
//
// The paper's claim — popular, CDN-hosted sites are systematically less
// RPKI-protected and therefore exposed during hijack windows — is a
// statement about a *distribution* of possible worlds, not one run.
// internal/sim evaluates a single (scenario, seed, config) point; this
// package expands a parameter grid (scenario × seed × domains × tick ×
// duration × any scenario parameter), shards the independent worlds
// across a worker pool, and aggregates each cell's runs (the replicates
// differing only in seed) into per-tick min/mean/max/p50/p95 summaries
// and per-relying-party hijack-success rates.
//
// The scenario axis accepts compositions: a grid point like
// "roa-churn+rp-lag" runs both components' event streams in one world
// (see sim.Composite), and a param axis keyed "roa-churn.issue" is
// routed to that component only — so compound incidents sweep exactly
// like single scenarios, in every execution mode.
//
// Determinism is the contract PR 1 established, lifted to fleets: the
// same Grid and master seed produce byte-identical WriteTSV/WriteJSON
// output at ANY worker count. Three ingredients make that true — every
// run's seed derives from its grid position (never from scheduling),
// each sim.Simulation is already a pure function of its Config, and
// results are merged in grid order, not completion order.
package sweep

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ripki/internal/sim"
)

// Grid is a parameter grid: the cross product of every axis. Empty axes
// collapse to a single default entry (the sim.Config zero value, which
// sim fills with its own defaults), so the zero Grid is one baseline
// run.
type Grid struct {
	// Scenarios is the scenario axis (default: baseline). Each entry is
	// a registered scenario or a "+"-joined composition spec
	// ("roa-churn+rp-lag").
	Scenarios []string `json:"scenarios,omitempty"`
	// MasterSeed drives per-replicate seed derivation.
	MasterSeed int64 `json:"master_seed,omitempty"`
	// Replicates is how many seeds to derive per cell (default 1).
	// Replicate r uses the same derived seed in every cell, so cells
	// are compared across identical worlds (paired replication).
	Replicates int `json:"replicates,omitempty"`
	// Seeds overrides derivation with an explicit seed axis.
	Seeds []int64 `json:"seeds,omitempty"`
	// Domains, Ticks, Durations, SampleEvery and SampleDomains are the
	// sim.Config axes.
	Domains       []int           `json:"domains,omitempty"`
	Ticks         []time.Duration `json:"-"`
	Durations     []time.Duration `json:"-"`
	SampleEvery   []int           `json:"sample_every,omitempty"`
	SampleDomains []int           `json:"sample_domains,omitempty"`
	// Params crosses free-form scenario parameters: each key is an axis,
	// its values the points ("hijack_frac": ["0.1", "0.3"]). Keys are
	// iterated in sorted order, so expansion is deterministic. A dotted
	// key ("roa-churn.issue") targets one component of a composed
	// scenario; composed cells reject keys addressing a non-member.
	Params map[string][]string `json:"params,omitempty"`
}

// CellInfo describes one grid cell: a unique combination of every axis
// except the seed.
type CellInfo struct {
	// Index is the cell's position in grid order.
	Index int `json:"cell"`
	// Scenario names the cell's scenario.
	Scenario string `json:"scenario"`
	// Label renders the cell's varied axes ("scenario=route-leak
	// domains=4000 leak_frac=0.2"), for tables and progress lines.
	Label string `json:"label"`
	// Config is the cell's simulation configuration with a zero Seed;
	// each run stamps its own.
	Config sim.Config `json:"-"`
}

// RunSpec is one planned simulation: a cell plus a seed.
type RunSpec struct {
	// Index is the run's position in grid order (cell-major).
	Index int `json:"run"`
	// Cell indexes into Plan.Cells.
	Cell int `json:"cell"`
	// Rep is the seed-axis position within the cell.
	Rep int `json:"rep"`
	// Config is the full simulation configuration, seed included.
	Config sim.Config `json:"-"`
}

// Plan is an expanded grid: every cell and every run, in grid order.
type Plan struct {
	Grid  Grid
	Seeds []int64
	Cells []CellInfo
	Specs []RunSpec
}

// deriveSeed maps (master seed, replicate) to a run seed via one
// splitmix64 round — well-spread, and a pure function of grid position
// so worker scheduling can never influence it.
func deriveSeed(master int64, rep int) int64 {
	z := uint64(master) + uint64(rep+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// axis returns vs, or the single fallback when the axis is empty.
func axis[T any](vs []T, fallback T) []T {
	if len(vs) == 0 {
		return []T{fallback}
	}
	return vs
}

// Plan expands the grid into cells and run specs, validating every
// scenario name against the sim registry.
func (g Grid) Plan() (*Plan, error) {
	scenarios := axis(g.Scenarios, "baseline")
	seeds := g.Seeds
	if len(seeds) == 0 {
		reps := g.Replicates
		if reps <= 0 {
			reps = 1
		}
		seeds = make([]int64, reps)
		for r := range seeds {
			seeds[r] = deriveSeed(g.MasterSeed, r)
		}
	}
	domains := axis(g.Domains, 0)
	ticks := axis(g.Ticks, 0)
	durations := axis(g.Durations, 0)
	sampleEvery := axis(g.SampleEvery, 0)
	sampleDomains := axis(g.SampleDomains, 0)

	keys := make([]string, 0, len(g.Params))
	for k := range g.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if len(g.Params[k]) == 0 {
			return nil, fmt.Errorf("sweep: param axis %q has no values", k)
		}
	}

	p := &Plan{Grid: g, Seeds: seeds}
	for _, scenario := range scenarios {
		for _, dom := range domains {
			for _, tick := range ticks {
				for _, dur := range durations {
					for _, se := range sampleEvery {
						for _, sd := range sampleDomains {
							p.expandParams(scenario, sim.Config{
								Scenario:      scenario,
								Domains:       dom,
								Tick:          tick,
								Duration:      dur,
								SampleEvery:   se,
								SampleDomains: sd,
							}, keys, 0, nil)
						}
					}
				}
			}
		}
	}
	// Validate every cell's (scenario, params) pair — unknown scenario
	// names, malformed composition specs, and mis-routed dotted param
	// axes all fail at plan time, not as per-run errors in the pool.
	for i := range p.Cells {
		if _, err := sim.NewScenario(p.Cells[i].Scenario, p.Cells[i].Config.Params); err != nil {
			return nil, fmt.Errorf("sweep: cell %d (%s): %w", i, p.Cells[i].Label, err)
		}
	}
	return p, nil
}

// expandParams walks the param-axis odometer (keys in sorted order) and
// emits one cell per combination.
func (p *Plan) expandParams(scenario string, base sim.Config, keys []string, ki int, chosen []string) {
	if ki < len(keys) {
		for _, v := range p.Grid.Params[keys[ki]] {
			p.expandParams(scenario, base, keys, ki+1, append(chosen, v))
		}
		return
	}
	params := sim.Params{}
	for i, k := range keys {
		params[k] = chosen[i]
	}
	base.Params = params
	base = base.WithDefaults()
	cell := CellInfo{
		Index:    len(p.Cells),
		Scenario: scenario,
		Label:    p.label(base, keys, chosen),
		Config:   base,
	}
	p.Cells = append(p.Cells, cell)
	for rep, seed := range p.Seeds {
		cfg := base
		cfg.Seed = seed
		// Each run gets its own Params map so scenarios can never share
		// state across concurrent worlds.
		cfg.Params = sim.Params{}
		for k, v := range params {
			cfg.Params[k] = v
		}
		p.Specs = append(p.Specs, RunSpec{
			Index:  len(p.Specs),
			Cell:   cell.Index,
			Rep:    rep,
			Config: cfg,
		})
	}
}

// label renders a cell: the scenario, every config axis with more than
// one grid value, and every param axis.
func (p *Plan) label(cfg sim.Config, keys, chosen []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario=%s", cfg.Scenario)
	if len(axis(p.Grid.Domains, 0)) > 1 {
		fmt.Fprintf(&sb, " domains=%d", cfg.Domains)
	}
	if len(axis(p.Grid.Ticks, 0)) > 1 {
		fmt.Fprintf(&sb, " tick=%s", cfg.Tick)
	}
	if len(axis(p.Grid.Durations, 0)) > 1 {
		fmt.Fprintf(&sb, " duration=%s", cfg.Duration)
	}
	if len(axis(p.Grid.SampleEvery, 0)) > 1 {
		fmt.Fprintf(&sb, " sample_every=%d", cfg.SampleEvery)
	}
	if len(axis(p.Grid.SampleDomains, 0)) > 1 {
		fmt.Fprintf(&sb, " sample_domains=%d", cfg.SampleDomains)
	}
	for i, k := range keys {
		fmt.Fprintf(&sb, " %s=%s", k, chosen[i])
	}
	return sb.String()
}

// FormatParams renders a Params map deterministically (sorted keys,
// comma-joined), "-" when empty — the TSV cell for a run's parameters.
func FormatParams(p sim.Params) string {
	if len(p) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + p[k]
	}
	return strings.Join(parts, ",")
}
