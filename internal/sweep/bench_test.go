package sweep

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// benchGrid is the benchmark's 32-run grid: 8 scenarios × 4 replicates,
// so each of the 4 seed worlds is shared by 8 cells. Every run is a
// full simulation — world (generated or cloned), RTR cache over
// loopback TCP, relying parties, 8 ticks of events.
func benchGrid() Grid {
	return Grid{
		Scenarios: []string{"baseline", "roa-churn", "hijack-window", "route-leak",
			"maxlen-misissuance", "rtr-restart", "rp-lag", "delegated-ca-compromise"},
		MasterSeed:    1,
		Replicates:    4, // × 8 scenarios = 32 runs
		Domains:       []int{4000},
		Ticks:         []time.Duration{15 * time.Second},
		Durations:     []time.Duration{2 * time.Minute},
		SampleEvery:   []int{6},
		SampleDomains: []int{100},
	}
}

func runSweepBench(b *testing.B, opt Options) {
	grid := benchGrid()
	totalRuns := 0
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), grid, opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, rr := range res.Runs {
			if rr.Err != "" {
				b.Fatalf("run %d: %s", rr.Spec.Index, rr.Err)
			}
		}
		totalRuns += len(res.Runs)
	}
	b.ReportMetric(float64(totalRuns)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkSweep measures simulated runs/sec on the 32-run grid.
//
// The workers=N variants regenerate every world per run (the PR 2
// execution model) and track pool scaling. The shared variant generates
// each of the 4 seed worlds once and clones it across the 8 cells that
// share it — the per-run world tax (generation + certificate-path
// validation) drops 8×, worth ≥1.5× runs/s at this grid shape. The
// streaming variant additionally folds series into online accumulators
// as runs complete; its runs/s matches shared (the fold is cheap) while
// peak series memory drops from O(runs × ticks) to O(cells × ticks).
// All variants feed the committed BENCH_baseline.json regression gate
// (make bench-check).
func BenchmarkSweep(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runSweepBench(b, Options{Workers: workers})
		})
	}
	b.Run("shared/workers=4", func(b *testing.B) {
		runSweepBench(b, Options{Workers: 4, ShareWorlds: true})
	})
	b.Run("shared-streaming/workers=4", func(b *testing.B) {
		runSweepBench(b, Options{Workers: 4, ShareWorlds: true, Streaming: true})
	})
}
