package sweep

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkSweep measures simulated runs/sec on a 32-run grid at rising
// worker counts — the scaling trajectory for future BENCH snapshots.
// Each run is a full world: generation, validation, an RTR cache over
// loopback TCP, three relying parties, and ~24 ticks of events.
func BenchmarkSweep(b *testing.B) {
	grid := Grid{
		Scenarios:     []string{"baseline", "roa-churn", "hijack-window", "route-leak"},
		MasterSeed:    1,
		Replicates:    8, // × 4 scenarios = 32 runs
		Domains:       []int{1500},
		Ticks:         []time.Duration{10 * time.Second},
		Durations:     []time.Duration{4 * time.Minute},
		SampleEvery:   []int{4},
		SampleDomains: []int{150},
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			totalRuns := 0
			for i := 0; i < b.N; i++ {
				res, err := Run(grid, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, rr := range res.Runs {
					if rr.Err != "" {
						b.Fatalf("run %d: %s", rr.Spec.Index, rr.Err)
					}
				}
				totalRuns += len(res.Runs)
			}
			b.ReportMetric(float64(totalRuns)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}
