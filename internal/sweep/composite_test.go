package sweep

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// composedGrid is one composed cell with a routed param axis: the
// compound workload the composition refactor exists for.
func composedGrid() Grid {
	return Grid{
		Scenarios:     []string{"roa-churn+rp-lag"},
		MasterSeed:    1,
		Replicates:    2,
		Domains:       []int{1500},
		Ticks:         []time.Duration{10 * time.Second},
		Durations:     []time.Duration{4 * time.Minute},
		SampleEvery:   []int{4},
		SampleDomains: []int{150},
		Params:        map[string][]string{"roa-churn.issue": {"2", "4"}},
	}
}

// TestComposedCellDeterminism lifts the worker-count and world-sharing
// contracts to composed cells: byte-identical TSV at 2 vs 8 workers,
// streaming or exact, and shared worlds vs per-run regeneration.
func TestComposedCellDeterminism(t *testing.T) {
	render := func(opt Options) []byte {
		t.Helper()
		res, err := Run(context.Background(), composedGrid(), opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, rr := range res.Runs {
			if rr.Err != "" {
				t.Fatalf("composed run failed: %s", rr.Err)
			}
		}
		var buf bytes.Buffer
		if err := res.WriteTSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := render(Options{Workers: 2, ShareWorlds: true})
	for name, opt := range map[string]Options{
		"8 workers":      {Workers: 8, ShareWorlds: true},
		"regenerated":    {Workers: 2, ShareWorlds: false},
		"streaming base": {Workers: 2, ShareWorlds: true, Streaming: true},
	} {
		got := render(opt)
		if name == "streaming base" {
			// Streaming output marks its mode; compare against its own
			// 8-worker rerun instead of the exact-mode bytes.
			again := render(Options{Workers: 8, ShareWorlds: true, Streaming: true})
			if !bytes.Equal(got, again) {
				t.Errorf("streaming composed sweep differs between 2 and 8 workers")
			}
			continue
		}
		if !bytes.Equal(base, got) {
			t.Errorf("composed sweep differs for %s", name)
		}
	}
}

// TestComposedPlanValidation: bad composition specs and mis-routed
// param axes fail at plan time, not as per-run errors.
func TestComposedPlanValidation(t *testing.T) {
	g := composedGrid()
	g.Scenarios = []string{"roa-churn+no-such-thing"}
	if _, err := g.Plan(); err == nil {
		t.Error("unknown composition component accepted")
	}
	g = composedGrid()
	g.Params = map[string][]string{"hijack-window.cdn": {"akamai"}}
	if _, err := g.Plan(); err == nil {
		t.Error("param axis addressing a non-member component accepted")
	}
}

// TestComposedCellLabels: the composition spec is the scenario label,
// and routed param axes appear verbatim.
func TestComposedCellLabels(t *testing.T) {
	plan, err := composedGrid().Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cells) != 2 {
		t.Fatalf("cells = %d, want 2 (one per routed param value)", len(plan.Cells))
	}
	for _, cell := range plan.Cells {
		if cell.Scenario != "roa-churn+rp-lag" {
			t.Errorf("cell scenario = %q", cell.Scenario)
		}
		if !bytes.Contains([]byte(cell.Label), []byte("roa-churn.issue=")) {
			t.Errorf("label missing routed param axis: %q", cell.Label)
		}
	}
}
