package sweep

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"ripki/internal/sim"
	"ripki/internal/stats"
)

// Options controls sweep execution. Workers and ShareWorlds are pure
// scheduling: they can never influence the output bytes. Streaming
// trades exact percentiles for O(cells × ticks) memory — its output is
// still byte-identical at any worker count and world-sharing mode, but
// p50/p95 become P² estimates once a cell folds more than 25 runs (see
// stats.StreamingSummary for the exact-phase buffer and error bounds).
type Options struct {
	// Workers is the number of concurrent simulations (default
	// GOMAXPROCS). Output is byte-identical at any value.
	Workers int
	// ShareWorlds generates each distinct (seed, domains) world once and
	// hands every run sharing it an immutable-layers clone, instead of
	// regenerating the world per run. Output is byte-identical to the
	// per-run-regeneration path.
	ShareWorlds bool
	// Streaming folds each run's series into per-cell online
	// accumulators as runs complete and releases the series, bounding
	// sweep memory by the grid (cells × ticks), not the run count.
	Streaming bool
	// Progress, when set, is called after each completed run with the
	// completion count. Runs finish in scheduling order, not grid order;
	// progress is presentation only. In streaming mode the RunResult's
	// Series has already been folded and released.
	Progress func(done, total int, r *RunResult)
}

// RPHijack is one relying party's hijack outcome in one run.
type RPHijack struct {
	// RP names the relying party.
	RP string `json:"rp"`
	// HijackedTicks counts sampled ticks with at least one active
	// hijack forwarded by this RP.
	HijackedTicks int `json:"hijacked_ticks"`
	// Success is whether the RP ever forwarded to a hijacked prefix.
	Success bool `json:"success"`
}

// RunResult is one completed simulation plus its scalar summary.
type RunResult struct {
	Spec RunSpec
	// Series is the run's full time series (nil when the run failed);
	// the aggregator folds it, the JSON export carries only summaries.
	Series *sim.TimeSeries `json:"-"`
	// Err is the run's failure, empty on success.
	Err string `json:"error,omitempty"`
	// Rows is the number of recorded samples.
	Rows int `json:"rows"`
	// MeanValid / MinValid / FinalCoverage / MaxHijacks summarise the
	// run's exposure columns.
	MeanValid     float64 `json:"mean_valid"`
	MinValid      float64 `json:"min_valid"`
	FinalCoverage float64 `json:"final_coverage"`
	MaxHijacks    float64 `json:"max_hijacks"`
	// Hijacks is the per-RP attack outcome.
	Hijacks []RPHijack `json:"hijacks"`
}

// Result is a completed sweep: the plan, every run in grid order, and
// the per-cell aggregates.
type Result struct {
	Plan  *Plan
	Runs  []RunResult
	Cells []Cell
	// Streaming records that the cell aggregates came from the online
	// accumulators (and run series were released); the output marks it.
	Streaming bool
}

// Run expands the grid, shards the runs across a worker pool, and
// aggregates. Individual run failures are recorded in their RunResult
// (and excluded from aggregates), not fatal; only a malformed grid
// errors. Cancelling ctx stops dispatching, cancels in-flight
// simulations within one tick, and returns ctx's error.
func Run(ctx context.Context, g Grid, opt Options) (*Result, error) {
	plan, err := g.Plan()
	if err != nil {
		return nil, err
	}
	return RunPlan(ctx, plan, opt)
}

// RunPlan executes an already-expanded plan — callers that need the
// plan up front (progress headers, sizing) expand once and hand it in
// instead of paying the grid expansion twice.
func RunPlan(ctx context.Context, plan *Plan, opt Options) (*Result, error) {
	specs := make([]int, len(plan.Specs))
	for i := range specs {
		specs[i] = i
	}
	results, stream, err := runSpecs(ctx, plan, opt, specs)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: plan, Runs: results, Streaming: opt.Streaming}
	if stream != nil {
		res.Cells = stream.finalize()
	} else {
		res.Cells = aggregate(plan, results)
	}
	return res, nil
}

// runSpecs shards the given spec indices (a subset of plan.Specs, in
// grid order) across the pool. It returns a results slice indexed like
// plan.Specs (entries outside the subset are zero) and, in streaming
// mode, the aggregator holding every folded cell. Both Run/RunPlan and
// the distributed-sweep worker (RunCells) funnel through here, so every
// execution mode shares one scheduling and determinism story.
func runSpecs(ctx context.Context, plan *Plan, opt Options, specs []int) ([]RunResult, *streamAggregator, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	var worlds *worldCache
	if opt.ShareWorlds {
		worlds = newWorldCache(plan, specs)
	}
	var stream *streamAggregator
	if opt.Streaming {
		stream = newStreamAggregator(plan)
	}

	// Results land at their grid index no matter which worker ran them
	// or when; nothing downstream can observe completion order. In
	// streaming mode each result's series is folded (in replicate order)
	// and released before the result is stored.
	results := make([]RunResult, len(plan.Specs))
	jobs := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				rr := runOne(ctx, &plan.Specs[idx], worlds)
				if stream != nil {
					// The aggregator takes over the series (folded in
					// replicate order, then released); the stored result
					// keeps only the scalar summaries.
					stream.add(rr)
					rr.Series = nil
				}
				results[idx] = rr
				if opt.Progress != nil {
					mu.Lock()
					done++
					opt.Progress(done, len(specs), &results[idx])
					mu.Unlock()
				}
			}
		}()
	}
dispatch:
	for _, idx := range specs {
		select {
		case jobs <- idx:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return results, stream, nil
}

// runOne executes one spec and summarises its series. With a world
// cache it claims a clone of the spec's shared world (releasing its
// reference either way); without one, sim.New generates the world.
func runOne(ctx context.Context, spec *RunSpec, worlds *worldCache) RunResult {
	rr := RunResult{Spec: *spec}
	cfg := spec.Config
	if worlds != nil {
		defer worlds.release(spec)
		world, err := worlds.clone(spec)
		if err != nil {
			rr.Err = err.Error()
			return rr
		}
		cfg.World = world
	}
	series, err := sim.RunScenarioContext(ctx, cfg)
	if err != nil {
		rr.Err = err.Error()
		return rr
	}
	rr.Series = series
	rr.Rows = len(series.Rows)
	if valid := series.Column("valid"); valid != nil {
		s := stats.Summarize(valid)
		rr.MeanValid, rr.MinValid = s.Mean, s.Min
	}
	if cov := series.Column("coverage"); len(cov) > 0 {
		rr.FinalCoverage = cov[len(cov)-1]
	}
	if hj := series.Column("hijacks"); hj != nil {
		rr.MaxHijacks = stats.Summarize(hj).Max
	}
	for _, col := range series.Columns {
		rp, ok := strings.CutPrefix(col, "hijacked_")
		if !ok {
			continue
		}
		h := RPHijack{RP: rp}
		for _, v := range series.Column(col) {
			if v > 0 {
				h.HijackedTicks++
			}
		}
		h.Success = h.HijackedTicks > 0
		rr.Hijacks = append(rr.Hijacks, h)
	}
	return rr
}

// String renders a run for progress lines.
func (rr *RunResult) String() string {
	status := "ok"
	if rr.Err != "" {
		status = "ERROR " + rr.Err
	}
	return fmt.Sprintf("run %d cell %d seed %d %s: %s",
		rr.Spec.Index, rr.Spec.Cell, rr.Spec.Config.Seed, rr.Spec.Config.Scenario, status)
}
