package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// wireTrip pushes partials through their JSON serialisation — exactly
// what the distributed protocol does — and returns the decoded copies.
func wireTrip(t *testing.T, partials []CellPartial) []CellPartial {
	t.Helper()
	out := make([]CellPartial, len(partials))
	for i := range partials {
		data, err := json.Marshal(&partials[i])
		if err != nil {
			t.Fatalf("marshal partial %d: %v", i, err)
		}
		if err := json.Unmarshal(data, &out[i]); err != nil {
			t.Fatalf("unmarshal partial %d: %v", i, err)
		}
	}
	return out
}

// runSharded runs the plan as a set of RunCells leases (each range run
// independently, like separate workers), wire-trips every partial, and
// assembles.
func runSharded(t *testing.T, plan *Plan, opt Options, ranges [][2]int) *Result {
	t.Helper()
	var all []CellPartial
	for _, r := range ranges {
		ps, err := RunCells(context.Background(), plan, opt, r[0], r[1])
		if err != nil {
			t.Fatalf("RunCells(%d, %d): %v", r[0], r[1], err)
		}
		all = append(all, ps...)
	}
	res, err := AssembleResult(plan, opt.Streaming, wireTrip(t, all))
	if err != nil {
		t.Fatalf("AssembleResult: %v", err)
	}
	return res
}

// TestShardedRunsAreByteIdentical is the distributed sweep's core
// contract at the data-plane level, with no sockets in the way: a plan
// split into per-cell and uneven multi-cell leases, run independently,
// serialised, and assembled renders the same TSV and JSON bytes as one
// in-process sweep — in exact mode and in streaming mode.
func TestShardedRunsAreByteIdentical(t *testing.T) {
	g := testGrid()
	g.Scenarios = []string{"baseline", "roa-churn", "hijack-window"}
	plan, err := g.Plan()
	if err != nil {
		t.Fatal(err)
	}
	shardings := [][][2]int{
		{{0, 1}, {1, 1}, {2, 1}}, // one cell per lease
		{{0, 2}, {2, 1}},         // uneven contiguous ranges
		{{2, 1}, {0, 2}},         // delivered out of order
		{{0, 3}},                 // one lease, still through the wire
	}
	for _, streaming := range []bool{false, true} {
		opt := Options{Workers: 2, ShareWorlds: true, Streaming: streaming}
		// The reference plan must be re-expanded: Run mutates nothing, but
		// keep the comparison honest by sharing the identical plan value.
		want, err := RunPlan(context.Background(), plan, opt)
		if err != nil {
			t.Fatal(err)
		}
		wantTSV, wantJSON := render(t, want)
		for si, ranges := range shardings {
			got := runSharded(t, plan, opt, ranges)
			gotTSV, gotJSON := render(t, got)
			if !bytes.Equal(wantTSV, gotTSV) {
				t.Fatalf("streaming=%v sharding %d: TSV diverged from single-process run:\n%s", streaming, si, firstDiff(wantTSV, gotTSV))
			}
			if !bytes.Equal(wantJSON, gotJSON) {
				t.Fatalf("streaming=%v sharding %d: JSON diverged from single-process run:\n%s", streaming, si, firstDiff(wantJSON, gotJSON))
			}
		}
	}
}

// firstDiff renders the first differing line pair for a readable
// failure.
func firstDiff(want, got []byte) string {
	w, g := strings.Split(string(want), "\n"), strings.Split(string(got), "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return "want: " + w[i] + "\ngot:  " + g[i]
		}
	}
	return "outputs differ in length"
}

// TestRunCellsValidatesRange: a lease outside the plan is a caller bug.
func TestRunCellsValidatesRange(t *testing.T) {
	plan, err := testGrid().Plan()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 1}, {0, 0}, {0, 3}, {2, 1}} {
		if _, err := RunCells(context.Background(), plan, Options{}, r[0], r[1]); err == nil {
			t.Errorf("RunCells(%d, %d) accepted an invalid range", r[0], r[1])
		}
	}
}

// TestAssembleResultRejectsBadPartials: gaps, overlaps, foreign runs
// and mode mismatches must error, never assemble silently-wrong output.
func TestAssembleResultRejectsBadPartials(t *testing.T) {
	plan, err := testGrid().Plan()
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Workers: 2, ShareWorlds: true}
	partials, err := RunCells(context.Background(), plan, opt, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssembleResult(plan, false, partials[:1]); err == nil {
		t.Error("missing cell assembled")
	}
	if _, err := AssembleResult(plan, false, append(append([]CellPartial{}, partials...), partials[0])); err == nil {
		t.Error("duplicate cell assembled")
	}
	if _, err := AssembleResult(plan, true, partials); err == nil {
		t.Error("exact partials assembled as streaming")
	}
	mixed := append([]CellPartial{}, partials...)
	mixed[0].Runs = append([]RunPartial{}, mixed[0].Runs...)
	mixed[0].Runs[0].Run = len(plan.Specs) - 1 // belongs to cell 1
	if _, err := AssembleResult(plan, false, mixed); err == nil {
		t.Error("run attributed to the wrong cell assembled")
	}
}

// TestRunCellsCancellation: a cancelled context abandons the lease with
// the context's error, the signal a worker uses to stop computing for a
// vanished coordinator.
func TestRunCellsCancellation(t *testing.T) {
	plan, err := testGrid().Plan()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCells(ctx, plan, Options{}, 0, 1); err != context.Canceled {
		t.Fatalf("RunCells on a cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestMarshalGridRoundTrip: the wire form the coordinator ships
// re-parses (through ParseGrid's strict decoder) into a grid whose plan
// hash matches — the exact check workers perform at hello time.
func TestMarshalGridRoundTrip(t *testing.T) {
	g := testGrid()
	g.Params = map[string][]string{"issue": {"2", "4"}}
	g.Ticks = []time.Duration{10 * time.Second, 30 * time.Second}
	data, err := MarshalGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseGrid(data)
	if err != nil {
		t.Fatalf("ParseGrid rejected MarshalGrid output: %v\n%s", err, data)
	}
	p1, err := g.Plan()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := back.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p1.Hash() != p2.Hash() {
		t.Fatalf("plan hash changed across the grid wire:\n%s\nvs\n%s", p1.Hash(), p2.Hash())
	}
	if len(p2.Cells) != len(p1.Cells) || len(p2.Specs) != len(p1.Specs) {
		t.Fatalf("expansion changed: %d/%d cells, %d/%d specs", len(p2.Cells), len(p1.Cells), len(p2.Specs), len(p1.Specs))
	}
}

// TestPlanHashDiscriminates: the hash must move when anything that
// changes the output moves — scenario set, seeds, params, axes.
func TestPlanHashDiscriminates(t *testing.T) {
	base := testGrid()
	hash := func(g Grid) string {
		t.Helper()
		p, err := g.Plan()
		if err != nil {
			t.Fatal(err)
		}
		return p.Hash()
	}
	h0 := hash(base)
	vary := map[string]func(*Grid){
		"master seed": func(g *Grid) { g.MasterSeed = 2 },
		"replicates":  func(g *Grid) { g.Replicates = 3 },
		"scenarios":   func(g *Grid) { g.Scenarios = []string{"baseline"} },
		"domains":     func(g *Grid) { g.Domains = []int{1600} },
		"duration":    func(g *Grid) { g.Durations = []time.Duration{5 * time.Minute} },
		"params":      func(g *Grid) { g.Params = map[string][]string{"issue": {"3"}} },
	}
	for name, mutate := range vary {
		g := base
		mutate(&g)
		if hash(g) == h0 {
			t.Errorf("changing %s did not change the plan hash", name)
		}
	}
	if hash(base) != h0 {
		t.Error("hash is not deterministic")
	}
}
