package sweep

import (
	"bytes"
	"context"
	"runtime"
	"testing"
)

// TestWorldShardingInvariantOutput is the end-to-end property behind
// webworld's interned, sharded representation: a composed grid renders
// byte-identical sweep output whether its worlds were generated on one
// shard or many. Shard count follows GOMAXPROCS (the cache key ignores
// it — see worldKey), so pinning GOMAXPROCS exercises the sequential
// and the parallel generator through the full sim/sweep pipeline.
func TestWorldShardingInvariantOutput(t *testing.T) {
	render := func(procs int) []byte {
		t.Helper()
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		res, err := Run(context.Background(), composedGrid(), Options{Workers: 2, ShareWorlds: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, rr := range res.Runs {
			if rr.Err != "" {
				t.Fatalf("run failed: %s", rr.Err)
			}
		}
		var buf bytes.Buffer
		if err := res.WriteTSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	sequential := render(1)
	parallel := render(4)
	if !bytes.Equal(sequential, parallel) {
		t.Fatal("sweep output differs between 1-shard and 4-shard world generation")
	}
}
