package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"ripki/internal/sim"
)

// testGrid is a small, fast grid: 2 scenarios × 2 replicates over tiny
// worlds (~24 ticks each).
func testGrid() Grid {
	return Grid{
		Scenarios:     []string{"baseline", "roa-churn"},
		MasterSeed:    1,
		Replicates:    2,
		Domains:       []int{1500},
		Ticks:         []time.Duration{10 * time.Second},
		Durations:     []time.Duration{4 * time.Minute},
		SampleEvery:   []int{4},
		SampleDomains: []int{150},
	}
}

func TestPlanExpansion(t *testing.T) {
	g := testGrid()
	g.Domains = []int{1500, 3000}
	g.Params = map[string][]string{"issue": {"2", "4"}}
	plan, err := g.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// 2 scenarios × 2 domains × 2 param values = 8 cells, × 2 reps = 16 runs.
	if len(plan.Cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(plan.Cells))
	}
	if len(plan.Specs) != 16 {
		t.Fatalf("specs = %d, want 16", len(plan.Specs))
	}
	for i, spec := range plan.Specs {
		if spec.Index != i {
			t.Errorf("spec %d has index %d", i, spec.Index)
		}
		if spec.Cell != i/2 || spec.Rep != i%2 {
			t.Errorf("spec %d: cell=%d rep=%d, want cell-major order", i, spec.Cell, spec.Rep)
		}
		// Paired replication: replicate r shares its seed across cells.
		if spec.Config.Seed != plan.Seeds[spec.Rep] {
			t.Errorf("spec %d: seed %d, want %d", i, spec.Config.Seed, plan.Seeds[spec.Rep])
		}
	}
	if plan.Seeds[0] == plan.Seeds[1] {
		t.Error("derived seeds collide")
	}
	// Labels carry the varied axes.
	label := plan.Cells[0].Label
	if !strings.Contains(label, "scenario=baseline") || !strings.Contains(label, "domains=1500") || !strings.Contains(label, "issue=2") {
		t.Errorf("label missing varied axes: %q", label)
	}
	if strings.Contains(label, "tick=") {
		t.Errorf("label includes unvaried axis: %q", label)
	}
}

func TestPlanDefaultsAndExplicitSeeds(t *testing.T) {
	plan, err := Grid{Seeds: []int64{7, 8, 9}}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cells) != 1 || len(plan.Specs) != 3 {
		t.Fatalf("cells=%d specs=%d, want 1/3", len(plan.Cells), len(plan.Specs))
	}
	if plan.Cells[0].Scenario != "baseline" {
		t.Errorf("default scenario = %q", plan.Cells[0].Scenario)
	}
	if plan.Specs[1].Config.Seed != 8 {
		t.Errorf("explicit seed not used: %d", plan.Specs[1].Config.Seed)
	}
	// WithDefaults applied: the cell shows effective values.
	if plan.Cells[0].Config.Domains != 20000 || plan.Cells[0].Config.Tick != 30*time.Second {
		t.Errorf("cell config not defaulted: %+v", plan.Cells[0].Config)
	}
}

func TestPlanRejectsBadGrids(t *testing.T) {
	if _, err := (Grid{Scenarios: []string{"no-such-scenario"}}).Plan(); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := (Grid{Params: map[string][]string{"x": {}}}).Plan(); err == nil {
		t.Error("empty param axis accepted")
	}
}

func TestDeriveSeedStable(t *testing.T) {
	// Locked values: changing the derivation silently changes every
	// sweep; make that loud.
	if got := deriveSeed(1, 0); got != deriveSeed(1, 0) {
		t.Fatalf("deriveSeed not pure: %d", got)
	}
	seen := map[int64]bool{}
	for r := 0; r < 100; r++ {
		s := deriveSeed(1, r)
		if seen[s] {
			t.Fatalf("seed collision at rep %d", r)
		}
		seen[s] = true
	}
}

// TestDeterminismAcrossWorkers is the subsystem's hard requirement:
// byte-identical TSV and JSON at any worker count.
func TestDeterminismAcrossWorkers(t *testing.T) {
	outputs := make([][2][]byte, 0, 2)
	for _, workers := range []int{1, 4} {
		res, err := Run(context.Background(), testGrid(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var tsv, js bytes.Buffer
		if err := res.WriteTSV(&tsv); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, [2][]byte{tsv.Bytes(), js.Bytes()})
	}
	if !bytes.Equal(outputs[0][0], outputs[1][0]) {
		t.Error("TSV differs between 1 and 4 workers")
	}
	if !bytes.Equal(outputs[0][1], outputs[1][1]) {
		t.Error("JSON differs between 1 and 4 workers")
	}
	if !json.Valid(outputs[0][1]) {
		t.Error("sweep JSON is not valid JSON")
	}
}

// TestAggregates sanity-checks the folded output on a real small sweep.
func TestAggregates(t *testing.T) {
	res, err := Run(context.Background(), testGrid(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || len(res.Runs) != 4 {
		t.Fatalf("cells=%d runs=%d", len(res.Cells), len(res.Runs))
	}
	for _, cell := range res.Cells {
		if cell.Runs != 2 || cell.Errors != 0 {
			t.Fatalf("cell %d: runs=%d errors=%d", cell.Index, cell.Runs, cell.Errors)
		}
		if len(cell.Ticks) == 0 {
			t.Fatal("no tick aggregates")
		}
		for _, ta := range cell.Ticks {
			for mi, s := range ta.Metrics {
				if s.Count != 2 {
					t.Fatalf("cell %d metric %s: count=%d, want 2", cell.Index, cell.Columns[mi], s.Count)
				}
				if s.Min > s.P50 || s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
					t.Fatalf("metric %s: unordered summary %+v", cell.Columns[mi], s)
				}
			}
		}
		if len(cell.Hijacks) == 0 {
			t.Error("no per-RP hijack rates")
		}
	}
	// roa-churn ramps coverage: its final mean vrps must exceed baseline's.
	last := func(c Cell, name string) float64 {
		for i, col := range c.Columns {
			if col == name {
				return c.Ticks[len(c.Ticks)-1].Metrics[i].Mean
			}
		}
		t.Fatalf("column %s missing from %v", name, c.Columns)
		return 0
	}
	if last(res.Cells[1], "vrps") <= last(res.Cells[0], "vrps") {
		t.Error("churn cell did not ramp VRPs over baseline")
	}
}

// TestRunErrorsRecorded: a failing cell is reported per run and
// excluded from aggregates without failing the sweep.
func TestRunErrorsRecorded(t *testing.T) {
	g := testGrid()
	g.Scenarios = []string{"cdn-migration"}
	g.Replicates = 1
	g.Params = map[string][]string{"from": {"no-such-cdn"}}
	res, err := Run(context.Background(), g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs[0].Err == "" {
		t.Fatal("scenario setup failure not recorded")
	}
	if res.Cells[0].Errors != 1 || res.Cells[0].Runs != 0 {
		t.Errorf("cell: runs=%d errors=%d, want 0/1", res.Cells[0].Runs, res.Cells[0].Errors)
	}
	var tsv, js bytes.Buffer
	if err := res.WriteTSV(&tsv); err != nil {
		t.Fatalf("TSV with errors: %v", err)
	}
	if !strings.Contains(tsv.String(), "no-such-cdn") {
		t.Error("error missing from runs table")
	}
	if err := res.WriteJSON(&js); err != nil {
		t.Fatalf("JSON with errors: %v", err)
	}
}

// TestAggregateSkipsNaN feeds the folding layer a synthetic series with
// NaN cells — one empty-bin column must not poison the summary.
func TestAggregateSkipsNaN(t *testing.T) {
	plan, err := Grid{Replicates: 2}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(headValid float64, rows int) *sim.TimeSeries {
		ts := &sim.TimeSeries{Columns: []string{"t", "tick", "head_valid"}}
		for i := 0; i < rows; i++ {
			ts.Rows = append(ts.Rows, []float64{float64(i * 30), float64(i), headValid})
		}
		return ts
	}
	runs := []RunResult{
		{Spec: plan.Specs[0], Series: mk(math.NaN(), 3), Rows: 3},
		{Spec: plan.Specs[1], Series: mk(0.5, 2), Rows: 2},
	}
	cells := aggregate(plan, runs)
	if cells[0].Runs != 2 {
		t.Fatalf("runs = %d", cells[0].Runs)
	}
	// Row count clamps to the shortest run.
	if len(cells[0].Ticks) != 2 {
		t.Fatalf("ticks = %d, want 2 (clamped)", len(cells[0].Ticks))
	}
	s := cells[0].Ticks[0].Metrics[0]
	if s.Count != 1 || s.Mean != 0.5 {
		t.Errorf("NaN not skipped: %+v", s)
	}
}

func TestParseGrid(t *testing.T) {
	g, err := ParseGrid([]byte(`{
		"scenarios": ["route-leak"],
		"master_seed": 7,
		"replicates": 2,
		"domains": [4000],
		"ticks": ["10s"],
		"durations": ["8m"],
		"params": {"leak_frac": ["0.2", "0.4"]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.MasterSeed != 7 || g.Ticks[0] != 10*time.Second || g.Durations[0] != 8*time.Minute {
		t.Errorf("grid parsed wrong: %+v", g)
	}
	if len(g.Params["leak_frac"]) != 2 {
		t.Errorf("params parsed wrong: %v", g.Params)
	}
	if _, err := ParseGrid([]byte(`{"ticks": ["ten seconds"]}`)); err == nil {
		t.Error("bad duration accepted")
	}
	if _, err := ParseGrid([]byte(`{"scenario": ["baseline"]}`)); err == nil {
		t.Error("unknown field (typo'd axis) accepted")
	}
}

func TestFormatParams(t *testing.T) {
	if got := FormatParams(nil); got != "-" {
		t.Errorf("empty params = %q", got)
	}
	if got := FormatParams(sim.Params{"b": "2", "a": "1"}); got != "a=1,b=2" {
		t.Errorf("params = %q, want sorted", got)
	}
}
