package sweep

import (
	"ripki/internal/stats"
)

// Cell is one grid cell's cross-run aggregate: the runs differing only
// in seed, folded tick by tick.
type Cell struct {
	CellInfo
	// Runs and Errors count the cell's completed and failed runs;
	// aggregates cover only the completed ones.
	Runs   int `json:"runs"`
	Errors int `json:"errors"`
	// Columns names the aggregated metrics — the cell's time-series
	// columns minus the row keys t and tick.
	Columns []string `json:"columns"`
	// Ticks is the per-sample aggregate: Metrics[i] summarises
	// Columns[i] across the cell's runs.
	Ticks []TickAggregate `json:"ticks"`
	// Hijacks is the per-RP success rate across the cell's runs.
	Hijacks []RPHijackRate `json:"hijacks"`
}

// TickAggregate is one sampled instant across a cell's runs.
type TickAggregate struct {
	T       float64         `json:"t"`
	Tick    float64         `json:"tick"`
	Metrics []stats.Summary `json:"metrics"`
}

// RPHijackRate is one relying party's hijack-success rate across a
// cell's runs — the sweep-level answer to "how often does this attack
// land on this kind of router?".
type RPHijackRate struct {
	RP string `json:"rp"`
	// Runs is how many completed runs had this RP.
	Runs int `json:"runs"`
	// SuccessRate is the fraction of runs where the RP ever forwarded
	// to a hijacked prefix.
	SuccessRate float64 `json:"success_rate"`
	// MeanHijackedTicks is the mean attack window in sampled ticks.
	MeanHijackedTicks float64 `json:"mean_hijacked_ticks"`
}

// aggregate folds run results into per-cell aggregates, in grid order.
// Failed runs are counted and skipped; a cell whose runs all failed has
// empty aggregates.
func aggregate(plan *Plan, runs []RunResult) []Cell {
	byCell := make([][]*RunResult, len(plan.Cells))
	for i := range runs {
		rr := &runs[i]
		byCell[rr.Spec.Cell] = append(byCell[rr.Spec.Cell], rr)
	}
	cells := make([]Cell, len(plan.Cells))
	for ci, info := range plan.Cells {
		cells[ci] = aggregateCell(info, byCell[ci])
	}
	return cells
}

// aggregateCell folds one cell's run results (series attached, in
// replicate order) into its aggregate. Shared by the whole-plan
// aggregate above and the distributed worker, which aggregates only its
// leased cells before shipping them.
func aggregateCell(info CellInfo, runs []*RunResult) Cell {
	cell := Cell{CellInfo: info}
	var ok []*RunResult
	for _, rr := range runs {
		if rr.Err != "" || rr.Series == nil {
			cell.Errors++
			continue
		}
		ok = append(ok, rr)
	}
	cell.Runs = len(ok)
	if len(ok) > 0 {
		aggregateTicks(&cell, ok)
		aggregateHijacks(&cell, ok)
	}
	return cell
}

// aggregateTicks summarises every non-key column at every sampled tick
// across the cell's runs. All runs share a config (bar the seed), so
// they share columns and cadence; the row count is clamped to the
// shortest run as a guard.
func aggregateTicks(cell *Cell, ok []*RunResult) {
	first := ok[0].Series
	keyIdx := map[int]bool{}
	var metricIdx []int
	for i, c := range first.Columns {
		if c == "t" || c == "tick" {
			keyIdx[i] = true
			continue
		}
		metricIdx = append(metricIdx, i)
		cell.Columns = append(cell.Columns, c)
	}
	rows := len(first.Rows)
	for _, rr := range ok[1:] {
		if len(rr.Series.Rows) < rows {
			rows = len(rr.Series.Rows)
		}
	}
	tCol, tickCol := first.Column("t"), first.Column("tick")
	vals := make([]float64, len(ok))
	for row := 0; row < rows; row++ {
		ta := TickAggregate{Metrics: make([]stats.Summary, 0, len(metricIdx))}
		if tCol != nil {
			ta.T = tCol[row]
		}
		if tickCol != nil {
			ta.Tick = tickCol[row]
		}
		for _, mi := range metricIdx {
			for ri, rr := range ok {
				vals[ri] = rr.Series.Rows[row][mi]
			}
			ta.Metrics = append(ta.Metrics, stats.Summarize(vals))
		}
		cell.Ticks = append(cell.Ticks, ta)
	}
}

// aggregateHijacks folds the per-run RP outcomes into success rates, in
// the RP order of the cell's first completed run.
func aggregateHijacks(cell *Cell, ok []*RunResult) {
	order := make([]string, 0, len(ok[0].Hijacks))
	acc := make(map[string]*RPHijackRate)
	for _, rr := range ok {
		for _, h := range rr.Hijacks {
			r, exists := acc[h.RP]
			if !exists {
				r = &RPHijackRate{RP: h.RP}
				acc[h.RP] = r
				order = append(order, h.RP)
			}
			r.Runs++
			if h.Success {
				r.SuccessRate++
			}
			r.MeanHijackedTicks += float64(h.HijackedTicks)
		}
	}
	for _, rp := range order {
		r := acc[rp]
		r.SuccessRate /= float64(r.Runs)
		r.MeanHijackedTicks /= float64(r.Runs)
		cell.Hijacks = append(cell.Hijacks, *r)
	}
}
