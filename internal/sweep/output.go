package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"ripki/internal/sim"
	"ripki/internal/stats"
)

// The sweep output contract mirrors PR 1's: the same grid + master seed
// produce byte-identical TSV and JSON at any worker count. Everything
// below iterates plan-ordered slices only — no maps, no wall-clock, no
// worker identity.

// WriteTSV renders the sweep as three tab-separated sections: one row
// per run (scalar summaries), one row per cell × tick × metric (the
// cross-run distribution), and one row per cell × relying party (hijack
// success rates).
func (r *Result) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	scenarios := axis(r.Plan.Grid.Scenarios, "baseline")
	// Streaming aggregates mark themselves (their percentiles are P²
	// estimates); exact-mode output stays byte-for-byte what it always
	// was, at any worker count and world-sharing mode.
	mode := ""
	if r.Streaming {
		mode = " mode=streaming"
	}
	fmt.Fprintf(bw, "# ripki-sweep master_seed=%d seeds=%s scenarios=%s cells=%d runs=%d%s\n",
		r.Plan.Grid.MasterSeed, formatSeeds(r.Plan.Seeds), strings.Join(scenarios, ","),
		len(r.Cells), len(r.Runs), mode)

	fmt.Fprintln(bw, "# runs")
	fmt.Fprintln(bw, "run\tcell\trep\tscenario\tseed\tdomains\ttick\tduration\tparams\trows\tmean_valid\tmin_valid\tfinal_coverage\tmax_hijacks\thijacked_rps\thijacked_ticks\terror")
	for i := range r.Runs {
		rr := &r.Runs[i]
		cfg := rr.Spec.Config
		hijackedRPs, hijackedTicks := 0, 0
		for _, h := range rr.Hijacks {
			if h.Success {
				hijackedRPs++
			}
			hijackedTicks += h.HijackedTicks
		}
		errCell := "-"
		if rr.Err != "" {
			errCell = strings.ReplaceAll(strings.ReplaceAll(rr.Err, "\t", " "), "\n", " ")
		}
		fmt.Fprintf(bw, "%d\t%d\t%d\t%s\t%d\t%d\t%s\t%s\t%s\t%d\t%s\t%s\t%s\t%s\t%d\t%d\t%s\n",
			rr.Spec.Index, rr.Spec.Cell, rr.Spec.Rep, cfg.Scenario, cfg.Seed, cfg.Domains,
			cfg.Tick, cfg.Duration, FormatParams(cfg.Params), rr.Rows,
			sim.FormatValue(rr.MeanValid), sim.FormatValue(rr.MinValid),
			sim.FormatValue(rr.FinalCoverage), sim.FormatValue(rr.MaxHijacks),
			hijackedRPs, hijackedTicks, errCell)
	}

	fmt.Fprintln(bw, "# cell ticks")
	fmt.Fprintln(bw, "cell\tscenario\ttick\tt\tmetric\tcount\tmin\tmean\tmax\tp50\tp95\tp99")
	for ci := range r.Cells {
		cell := &r.Cells[ci]
		for _, ta := range cell.Ticks {
			for mi, name := range cell.Columns {
				s := ta.Metrics[mi]
				fmt.Fprintf(bw, "%d\t%s\t%s\t%s\t%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
					cell.Index, cell.Scenario, sim.FormatValue(ta.Tick), sim.FormatValue(ta.T), name,
					s.Count, sim.FormatValue(s.Min), sim.FormatValue(s.Mean),
					sim.FormatValue(s.Max), sim.FormatValue(s.P50), sim.FormatValue(s.P95),
					sim.FormatValue(s.P99))
			}
		}
	}

	fmt.Fprintln(bw, "# cell hijack rates")
	fmt.Fprintln(bw, "cell\tscenario\tlabel\trp\truns\tsuccess_rate\tmean_hijacked_ticks")
	for ci := range r.Cells {
		cell := &r.Cells[ci]
		for _, h := range cell.Hijacks {
			fmt.Fprintf(bw, "%d\t%s\t%s\t%s\t%d\t%s\t%s\n",
				cell.Index, cell.Scenario, cell.Label, h.RP, h.Runs,
				sim.FormatValue(h.SuccessRate), sim.FormatValue(h.MeanHijackedTicks))
		}
	}
	return bw.Flush()
}

// runJSON is the serialised view of one run: spec identity plus scalar
// summaries, no full series (those fold into the cell aggregates).
type runJSON struct {
	Run           int               `json:"run"`
	Cell          int               `json:"cell"`
	Rep           int               `json:"rep"`
	Scenario      string            `json:"scenario"`
	Seed          int64             `json:"seed"`
	Domains       int               `json:"domains"`
	Tick          string            `json:"tick"`
	Duration      string            `json:"duration"`
	Params        map[string]string `json:"params,omitempty"`
	Rows          int               `json:"rows"`
	Error         string            `json:"error,omitempty"`
	MeanValid     stats.JSONFloat   `json:"mean_valid"`
	MinValid      stats.JSONFloat   `json:"min_valid"`
	FinalCoverage stats.JSONFloat   `json:"final_coverage"`
	MaxHijacks    stats.JSONFloat   `json:"max_hijacks"`
	Hijacks       []RPHijack        `json:"hijacks,omitempty"`
}

// WriteJSON emits the sweep as one document: grid identity, per-cell
// aggregates, and per-run summaries.
func (r *Result) WriteJSON(w io.Writer) error {
	runs := make([]runJSON, len(r.Runs))
	for i := range r.Runs {
		rr := &r.Runs[i]
		cfg := rr.Spec.Config
		runs[i] = runJSON{
			Run:       rr.Spec.Index,
			Cell:      rr.Spec.Cell,
			Rep:       rr.Spec.Rep,
			Scenario:  cfg.Scenario,
			Seed:      cfg.Seed,
			Domains:   cfg.Domains,
			Tick:      cfg.Tick.String(),
			Duration:  cfg.Duration.String(),
			Params:    cfg.Params,
			Rows:      rr.Rows,
			Error:     rr.Err,
			MeanValid: stats.JSONFloat(rr.MeanValid), MinValid: stats.JSONFloat(rr.MinValid),
			FinalCoverage: stats.JSONFloat(rr.FinalCoverage), MaxHijacks: stats.JSONFloat(rr.MaxHijacks),
			Hijacks: rr.Hijacks,
		}
	}
	mode := ""
	if r.Streaming {
		mode = "streaming"
	}
	doc := struct {
		MasterSeed int64     `json:"master_seed"`
		Seeds      []int64   `json:"seeds"`
		Scenarios  []string  `json:"scenarios"`
		Mode       string    `json:"mode,omitempty"`
		Cells      []Cell    `json:"cells"`
		Runs       []runJSON `json:"runs"`
	}{
		MasterSeed: r.Plan.Grid.MasterSeed,
		Seeds:      r.Plan.Seeds,
		Scenarios:  axis(r.Plan.Grid.Scenarios, "baseline"),
		Mode:       mode,
		Cells:      r.Cells,
		Runs:       runs,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// formatSeeds renders the seed axis compactly for the TSV header.
func formatSeeds(seeds []int64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = strconv.FormatInt(s, 10)
	}
	return strings.Join(parts, ",")
}

// gridJSON is the grid-file schema: Grid with durations as strings
// ("30s", "10m"), the way humans write them.
type gridJSON struct {
	Grid
	Ticks     []string `json:"ticks,omitempty"`
	Durations []string `json:"durations,omitempty"`
}

// ParseGrid reads a JSON grid file. Unknown fields are rejected, so a
// typo'd axis name fails loudly instead of silently sweeping nothing.
func ParseGrid(data []byte) (Grid, error) {
	var gj gridJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&gj); err != nil {
		return Grid{}, fmt.Errorf("sweep: parsing grid: %w", err)
	}
	g := gj.Grid
	for _, s := range gj.Ticks {
		d, err := time.ParseDuration(s)
		if err != nil {
			return Grid{}, fmt.Errorf("sweep: grid tick %q: %w", s, err)
		}
		g.Ticks = append(g.Ticks, d)
	}
	for _, s := range gj.Durations {
		d, err := time.ParseDuration(s)
		if err != nil {
			return Grid{}, fmt.Errorf("sweep: grid duration %q: %w", s, err)
		}
		g.Durations = append(g.Durations, d)
	}
	return g, nil
}
