package mrt

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"ripki/internal/bgp"
	"ripki/internal/netutil"
)

var stamp = time.Date(2015, 7, 1, 8, 0, 0, 0, time.UTC)

func peers() []Peer {
	return []Peer{
		{BGPID: netutil.MustAddr("193.0.4.1"), Addr: netutil.MustAddr("193.0.4.1"), ASN: 3333},
		{BGPID: netutil.MustAddr("10.0.0.2"), Addr: netutil.MustAddr("2001:db8::2"), ASN: 196615},
	}
}

func seq(asns ...uint32) []bgp.Segment {
	return []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: asns}}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, stamp)
	if err := w.WritePeerIndexTable(netutil.MustAddr("193.0.4.28"), "rrc00", peers()); err != nil {
		t.Fatal(err)
	}
	recs := []struct {
		prefix  string
		entries []RIBEntry
	}{
		{"193.0.6.0/24", []RIBEntry{
			{PeerIndex: 0, Originated: stamp, Attrs: bgp.PathAttrs{Origin: bgp.OriginIGP, ASPath: seq(3333), NextHop: netutil.MustAddr("193.0.4.1")}},
			{PeerIndex: 1, Originated: stamp.Add(-time.Hour), Attrs: bgp.PathAttrs{Origin: bgp.OriginIGP, ASPath: seq(196615, 3333), NextHop: netutil.MustAddr("193.0.4.9")}},
		}},
		{"2001:67c:2e8::/48", []RIBEntry{
			{PeerIndex: 1, Originated: stamp, Attrs: bgp.PathAttrs{Origin: bgp.OriginIGP, ASPath: seq(196615, 680), NextHop: netutil.MustAddr("2001:db8::9")}},
		}},
		{"0.0.0.0/0", []RIBEntry{
			{PeerIndex: 0, Originated: stamp, Attrs: bgp.PathAttrs{Origin: bgp.OriginIncomplete, ASPath: seq(3333, 1), NextHop: netutil.MustAddr("193.0.4.1")}},
		}},
	}
	for _, r := range recs {
		if err := w.WriteRIB(netutil.MustPrefix(r.prefix), r.entries); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	pit, ok := rec.(*PeerIndexTable)
	if !ok {
		t.Fatalf("first record is %T", rec)
	}
	if pit.ViewName != "rrc00" || pit.CollectorID != netutil.MustAddr("193.0.4.28") {
		t.Errorf("peer table header: %+v", pit)
	}
	if !reflect.DeepEqual(pit.Peers, peers()) {
		t.Errorf("peers: %+v vs %+v", pit.Peers, peers())
	}
	if r.Peers() != pit {
		t.Error("Peers() does not return the parsed table")
	}
	for i, want := range recs {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		rr, ok := rec.(*RIBRecord)
		if !ok {
			t.Fatalf("record %d is %T", i, rec)
		}
		if rr.Sequence != uint32(i) {
			t.Errorf("record %d sequence = %d", i, rr.Sequence)
		}
		if rr.Prefix != netutil.MustPrefix(want.prefix) {
			t.Errorf("record %d prefix = %v, want %s", i, rr.Prefix, want.prefix)
		}
		if len(rr.Entries) != len(want.entries) {
			t.Fatalf("record %d entries = %d, want %d", i, len(rr.Entries), len(want.entries))
		}
		for j, e := range rr.Entries {
			we := want.entries[j]
			if e.PeerIndex != we.PeerIndex || !e.Originated.Equal(we.Originated) {
				t.Errorf("record %d entry %d header mismatch: %+v vs %+v", i, j, e, we)
			}
			if e.Attrs.Origin != we.Attrs.Origin || !reflect.DeepEqual(e.Attrs.ASPath, we.Attrs.ASPath) || e.Attrs.NextHop != we.Attrs.NextHop {
				t.Errorf("record %d entry %d attrs mismatch: %+v vs %+v", i, j, e.Attrs, we.Attrs)
			}
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestWriterRequiresPeerTableFirst(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, stamp)
	err := w.WriteRIB(netutil.MustPrefix("10.0.0.0/8"), nil)
	if err == nil {
		t.Error("WriteRIB before peer table accepted")
	}
	if err := w.WritePeerIndexTable(netutil.MustAddr("1.2.3.4"), "v", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePeerIndexTable(netutil.MustAddr("1.2.3.4"), "v", nil); err == nil {
		t.Error("double peer table accepted")
	}
}

func TestReaderRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, stamp)
	w.WritePeerIndexTable(netutil.MustAddr("1.2.3.4"), "v", peers())
	w.WriteRIB(netutil.MustPrefix("10.0.0.0/8"), []RIBEntry{
		{PeerIndex: 0, Originated: stamp, Attrs: bgp.PathAttrs{ASPath: seq(1), NextHop: netutil.MustAddr("10.0.0.1")}},
	})
	w.Flush()
	wire := buf.Bytes()

	// Truncations must error, never panic.
	for i := 0; i < len(wire); i += 5 {
		r := NewReader(bytes.NewReader(wire[:i]))
		for {
			_, err := r.Next()
			if err != nil {
				break
			}
		}
	}
	// Random corruption must error or parse, never panic.
	rnd := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		mut := append([]byte(nil), wire...)
		mut[rnd.Intn(len(mut))] ^= byte(1 << rnd.Intn(8))
		r := NewReader(bytes.NewReader(mut))
		for {
			_, err := r.Next()
			if err != nil {
				break
			}
		}
	}
}

func TestReaderRejectsWrongType(t *testing.T) {
	raw := make([]byte, 12)
	raw[5] = 12 // TABLE_DUMP (v1), unsupported
	if _, err := NewReader(bytes.NewReader(raw)).Next(); err == nil {
		t.Error("accepted unsupported MRT type")
	}
}

func TestLargeTableRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	var buf bytes.Buffer
	w := NewWriter(&buf, stamp)
	if err := w.WritePeerIndexTable(netutil.MustAddr("193.0.4.28"), "rrc00", peers()); err != nil {
		t.Fatal(err)
	}
	n := 5000
	want := make([]netip.Prefix, 0, n)
	for i := 0; i < n; i++ {
		var b [4]byte
		rnd.Read(b[:])
		bits := 8 + rnd.Intn(17)
		p := netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
		want = append(want, p)
		err := w.WriteRIB(p, []RIBEntry{{
			PeerIndex:  uint16(i % 2),
			Originated: stamp,
			Attrs:      bgp.PathAttrs{ASPath: seq(uint32(i), uint32(i+1)), NextHop: netutil.MustAddr("10.0.0.1")},
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r := NewReader(&buf)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		rr := rec.(*RIBRecord)
		if rr.Prefix != want[i] {
			t.Fatalf("record %d prefix = %v, want %v", i, rr.Prefix, want[i])
		}
		if origin, ok := bgp.OriginAS(rr.Entries[0].Attrs.ASPath); !ok || origin != uint32(i+1) {
			t.Fatalf("record %d origin = %d, %v", i, origin, ok)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func BenchmarkWriteRIB(b *testing.B) {
	w := NewWriter(io.Discard, stamp)
	w.WritePeerIndexTable(netutil.MustAddr("1.2.3.4"), "v", peers())
	entry := []RIBEntry{{PeerIndex: 0, Originated: stamp, Attrs: bgp.PathAttrs{ASPath: seq(1, 2, 3), NextHop: netutil.MustAddr("10.0.0.1")}}}
	p := netutil.MustPrefix("193.0.6.0/24")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.WriteRIB(p, entry); err != nil {
			b.Fatal(err)
		}
	}
}
